package sits

import (
	"io"

	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/sample"
	"github.com/sitstats/sits/internal/sit"
)

// BuildHistogramVOptimal builds a V-Optimal histogram (minimal within-bucket
// frequency variance; the accuracy gold standard MaxDiff approximates).
func BuildHistogramVOptimal(vals []int64, nb int) (*Histogram, error) {
	return histogram.FromValuesVOptimal(vals, nb)
}

// MergeHistograms combines two histograms over disjoint tuple sets of the
// same attribute into one with at most nb buckets.
func MergeHistograms(a, b *Histogram, nb int, m HistogramMethod) (*Histogram, error) {
	return histogram.Merge(a, b, nb, m)
}

// WriteHistogram serializes a histogram as JSON.
func WriteHistogram(h *Histogram, w io.Writer) error { return h.Write(w) }

// ReadHistogram deserializes a histogram written by WriteHistogram.
func ReadHistogram(r io.Reader) (*Histogram, error) { return histogram.Read(r) }

// Hist2D is a two-dimensional histogram over attribute pairs, used by the
// multidimensional m-Oracle extension (Config.Use2DOracles).
type Hist2D = histogram.Hist2D

// Build2DHistogram constructs a PHASED equi-depth 2-D histogram.
func Build2DHistogram(col1, col2 []int64, slices1, slices2 int) (*Hist2D, error) {
	return histogram.Build2D(col1, col2, slices1, slices2)
}

// DistinctEstimator selects a distinct-value estimator (GEE, Chao,
// Jackknife).
type DistinctEstimator = sample.DistinctEstimator

// The shipped distinct-value estimators.
const (
	// GEE is the Guaranteed-Error Estimator (the default).
	GEE = sample.GEE
	// Chao is Chao's lower-bound estimator.
	Chao = sample.Chao
	// Jackknife is the first-order jackknife.
	Jackknife = sample.Jackknife
)

// EstimateDistinct estimates the number of distinct values in a population of
// the given size from a uniform sample.
func EstimateDistinct(e DistinctEstimator, sampleVals []int64, total int64) (float64, error) {
	return sample.EstimateDistinctWith(e, sampleVals, total)
}

// SaveSITs serializes built SITs as JSON for reuse across runs.
func SaveSITs(w io.Writer, sits []*SIT) error { return sit.SaveSITs(w, sits) }

// LoadSITs restores SITs written by SaveSITs; adopt them into a Builder with
// Builder.AdoptCached or register them with an Estimator.
func LoadSITs(r io.Reader) ([]*SIT, error) { return sit.LoadSITs(r) }

// Staleness describes how far a SIT has drifted from its base tables.
type Staleness = sit.Staleness
