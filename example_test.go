package sits_test

import (
	"fmt"
	"log"

	"github.com/sitstats/sits"
)

// ExampleBuilder_Build creates a SIT over a join expression with SweepExact
// and estimates a range cardinality from it.
func ExampleBuilder_Build() {
	cat := sits.NewCatalog()
	r, err := sits.NewTable("R", "x")
	if err != nil {
		log.Fatal(err)
	}
	s, err := sits.NewTable("S", "y", "a")
	if err != nil {
		log.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		r.AppendRow(i % 10)
		s.AppendRow(i%10, i%20)
	}
	cat.MustAdd(r)
	cat.MustAdd(s)

	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	spec, err := sits.ParseSIT("S.a | R JOIN S ON R.x = S.y")
	if err != nil {
		log.Fatal(err)
	}
	stat, err := builder.Build(spec, sits.SweepExact)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("|R join S| = %.0f\n", stat.EstimatedCard)
	fmt.Printf("|sigma_{0<=a<=9}(R join S)| = %.0f\n", stat.EstimateRange(0, 9))
	// Output:
	// |R join S| = 1000
	// |sigma_{0<=a<=9}(R join S)| = 500
}

// ExampleOptSchedule schedules the paper's Example 6 instance: three
// dependency sequences sharing scans under a memory budget.
func ExampleOptSchedule() {
	tasks := []sits.ScheduleTask{
		{ID: "chain", Seq: []string{"T", "S", "R"}},
		{ID: "left", Seq: []string{"S", "R"}},
		{ID: "right", Seq: []string{"U", "R"}},
	}
	env := sits.ScheduleEnv{
		Cost:       map[string]float64{"R": 10, "S": 10, "T": 20, "U": 20},
		SampleSize: map[string]float64{"R": 10000, "S": 10000, "T": 10000, "U": 10000},
		Memory:     50000,
	}
	schedule, _, err := sits.OptSchedule(tasks, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal cost: %.0f in %d scans\n", schedule.Cost, len(schedule.Steps))
	// Output:
	// optimal cost: 60 in 4 scans
}

// ExampleParseSIT shows the textual SIT notation.
func ExampleParseSIT() {
	spec, err := sits.ParseSIT("T.a | R JOIN S ON R.x = S.y JOIN T ON S.z = T.w")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(spec.String())
	fmt.Println(spec.Table, spec.Attr, spec.Expr.NumTables())
	// Output:
	// SIT(T.a | R JOIN S ON R.x = S.y JOIN T ON S.z = T.w)
	// T a 3
}
