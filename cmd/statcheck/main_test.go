package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// lintDir resolves internal/lint relative to this file, so the tests run the
// command's own pipeline against the lint package's fixtures.
func lintDir(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Join(filepath.Dir(file), "..", "..", "internal", "lint")
}

// TestRunJSONOnFixture: -json emits one valid JSON object per finding per
// line with the documented fields, and the count matches the line count.
func TestRunJSONOnFixture(t *testing.T) {
	fixture := filepath.Join(lintDir(t), "testdata", "src", "poolblockfix")
	var buf bytes.Buffer
	n, err := run(&buf, fixture, []string{"."}, "poolblock", true)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("poolblockfix should produce findings")
	}
	lines := 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		lines++
		var f finding
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			t.Fatalf("line %d is not valid JSON: %v: %s", lines, err, sc.Text())
		}
		if f.Check != "poolblock" || f.File == "" || f.Line <= 0 || f.Col <= 0 || f.Message == "" {
			t.Errorf("incomplete finding: %+v", f)
		}
	}
	if lines != n {
		t.Errorf("run reported %d findings but emitted %d JSON lines", n, lines)
	}
}

// TestRunTextOnFixture: the default text form stays file:line:col: check: msg.
func TestRunTextOnFixture(t *testing.T) {
	fixture := filepath.Join(lintDir(t), "testdata", "src", "poolblockfix")
	var buf bytes.Buffer
	n, err := run(&buf, fixture, []string{"."}, "poolblock", false)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("poolblockfix should produce findings")
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !strings.Contains(line, ": poolblock: ") {
			t.Errorf("malformed text diagnostic: %s", line)
		}
	}
}

// TestSelectChecksUnknown: an unknown -checks name is a load error (exit 2
// path), not a silent no-op.
func TestSelectChecksUnknown(t *testing.T) {
	if _, err := selectChecks("nosuchcheck"); err == nil {
		t.Fatal("want error for unknown check name")
	}
	cs, err := selectChecks("grantleak, planclose")
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Name != "grantleak" || cs[1].Name != "planclose" {
		t.Fatalf("unexpected selection: %+v", cs)
	}
}
