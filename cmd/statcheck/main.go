// Command statcheck runs the repository's static-analysis suite (package
// internal/lint) over the module:
//
//	go run ./cmd/statcheck ./...
//	go run ./cmd/statcheck -checks maprange,grantleak ./internal/sit
//	go run ./cmd/statcheck -json ./... > findings.jsonl
//	go run ./cmd/statcheck -list
//
// It loads every matched package, type-checks it with the standard library's
// go/types (source importer, no third-party tooling), runs the registered
// checks, and prints file:line:col diagnostics — or, with -json, one JSON
// object per finding per line ({"check","file","line","col","message"}) for
// CI artifact upload and PR annotation. The exit status is 0 when the tree
// is clean, 1 when there are findings, and 2 on load errors — so CI can gate
// on it directly. Findings are suppressed case by case with
// //statcheck:ignore directives next to the excused code, and lifecycle
// hand-offs are declared with //statcheck:transfers (see package lint for
// the annotation grammar).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"github.com/sitstats/sits/internal/lint"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list registered checks and exit")
		checks   = flag.String("checks", "", "comma-separated checks to run (default: all)")
		jsonMode = flag.Bool("json", false, "emit one JSON object per finding per line")
	)
	flag.Parse()
	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "statcheck:", err)
		os.Exit(2)
	}
	n, err := run(os.Stdout, cwd, flag.Args(), *checks, *jsonMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "statcheck:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "statcheck: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// finding is the -json wire form: one object per diagnostic per line.
type finding struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// run loads the patterns relative to cwd, executes the selected checks, and
// writes findings to out in text or JSON-lines form, returning the count.
func run(out io.Writer, cwd string, patterns []string, checkNames string, jsonMode bool) (int, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return 0, err
	}
	world, err := lint.NewWorld(root)
	if err != nil {
		return 0, err
	}
	selected, err := selectChecks(checkNames)
	if err != nil {
		return 0, err
	}
	pkgs, err := world.LoadPatterns(cwd, patterns)
	if err != nil {
		return 0, err
	}
	diags := lint.Run(pkgs, selected)
	enc := json.NewEncoder(out)
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		if jsonMode {
			if err := enc.Encode(finding{
				Check: d.Check, File: file, Line: d.Pos.Line, Col: d.Pos.Column, Message: d.Message,
			}); err != nil {
				return 0, err
			}
			continue
		}
		fmt.Fprintf(out, "%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	return len(diags), nil
}

func selectChecks(names string) ([]lint.Check, error) {
	all := lint.AllChecks()
	if names == "" {
		return all, nil
	}
	byName := map[string]lint.Check{}
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []lint.Check
	for _, name := range strings.Split(names, ",") {
		c, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", name)
		}
		out = append(out, c)
	}
	return out, nil
}
