// Command statcheck runs the repository's static-analysis suite (package
// internal/lint) over the module:
//
//	go run ./cmd/statcheck ./...
//	go run ./cmd/statcheck -checks maprange,rawrand ./internal/sched
//	go run ./cmd/statcheck -list
//
// It loads every matched package, type-checks it with the standard library's
// go/types (source importer, no third-party tooling), runs the registered
// checks, and prints file:line:col diagnostics. The exit status is 0 when the
// tree is clean, 1 when there are findings, and 2 on load errors — so CI can
// gate on it directly. Findings are suppressed case by case with
// //statcheck:ignore directives next to the excused code (see package lint
// for the annotation grammar).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/sitstats/sits/internal/lint"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list registered checks and exit")
		checks = flag.String("checks", "", "comma-separated checks to run (default: all)")
	)
	flag.Parse()
	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-14s %s\n", c.Name, c.Doc)
		}
		return
	}
	if err := run(flag.Args(), *checks); err != nil {
		fmt.Fprintln(os.Stderr, "statcheck:", err)
		os.Exit(2)
	}
}

func run(patterns []string, checkNames string) error {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return err
	}
	world, err := lint.NewWorld(root)
	if err != nil {
		return err
	}
	selected, err := selectChecks(checkNames)
	if err != nil {
		return err
	}
	pkgs, err := world.LoadPatterns(cwd, patterns)
	if err != nil {
		return err
	}
	diags := lint.Run(pkgs, selected)
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(cwd, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", file, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "statcheck: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	return nil
}

func selectChecks(names string) ([]lint.Check, error) {
	all := lint.AllChecks()
	if names == "" {
		return all, nil
	}
	byName := map[string]lint.Check{}
	for _, c := range all {
		byName[c.Name] = c
	}
	var out []lint.Check
	for _, name := range strings.Split(names, ",") {
		c, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown check %q", name)
		}
		out = append(out, c)
	}
	return out, nil
}
