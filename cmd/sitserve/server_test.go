package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/sitstats/sits"
)

func newTestServer(t *testing.T) (http.Handler, *sits.Catalog) {
	t.Helper()
	cat, err := sits.GenerateChainDB(sits.DefaultChainConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := sits.NewRegistry(cat, sits.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	})
	spec, err := sits.ParseSIT("T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Get(spec, sits.SweepFull); err != nil {
		t.Fatal(err)
	}
	svc, err := sits.NewService(reg, sits.ServeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return newServer(svc, 0.2), cat
}

func getJSON(t *testing.T, h http.Handler, method, target, body string, wantStatus int, out any) {
	t.Helper()
	var req *http.Request
	if body != "" {
		req = httptest.NewRequest(method, target, strings.NewReader(body))
	} else {
		req = httptest.NewRequest(method, target, nil)
	}
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	if rr.Code != wantStatus {
		t.Fatalf("%s %s: status %d (body %s), want %d", method, target, rr.Code, rr.Body.String(), wantStatus)
	}
	if out != nil {
		if err := json.Unmarshal(rr.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, target, rr.Body.String(), err)
		}
	}
}

func estimateURL(preds string) string {
	v := url.Values{"query": {"T1 JOIN T2 ON T1.jnext = T2.jprev"}}
	if preds != "" {
		v.Set("pred", preds)
	}
	return "/estimate?" + v.Encode()
}

func TestServerEstimate(t *testing.T) {
	h, _ := newTestServer(t)

	var first, second, posted estimateResponse
	getJSON(t, h, http.MethodGet, estimateURL("T2.a:0:900"), "", http.StatusOK, &first)
	if first.Cardinality <= 0 {
		t.Fatalf("cardinality %v, want > 0", first.Cardinality)
	}
	if first.Cached || first.Tier != "cold" {
		t.Fatalf("cold request reported cached=%v tier=%q", first.Cached, first.Tier)
	}
	if len(first.Sources) != 1 || !strings.Contains(first.Sources[0].Stat, "SIT") {
		t.Fatalf("sources %+v, want one SIT-backed predicate", first.Sources)
	}

	getJSON(t, h, http.MethodGet, estimateURL("T2.a:0:900"), "", http.StatusOK, &second)
	if !second.Cached || second.Tier != "result-hit" {
		t.Fatalf("repeat request reported cached=%v tier=%q", second.Cached, second.Tier)
	}
	if second.Cardinality != first.Cardinality || second.JoinCard != first.JoinCard {
		t.Fatalf("cached answer differs: %+v vs %+v", second, first)
	}

	// New constants over the same shape re-probe the cached plan.
	var planned estimateResponse
	getJSON(t, h, http.MethodGet, estimateURL("T2.a:10:910"), "", http.StatusOK, &planned)
	if planned.Cached || planned.Tier != "plan-hit" {
		t.Fatalf("shifted constants reported cached=%v tier=%q, want plan-hit", planned.Cached, planned.Tier)
	}

	// The POST body form answers identically and shares the cache entry.
	body := `{"query": "T1 JOIN T2 ON T1.jnext = T2.jprev", "preds": [{"table":"T2","attr":"a","lo":0,"hi":900}]}`
	getJSON(t, h, http.MethodPost, "/estimate", body, http.StatusOK, &posted)
	if !posted.Cached || posted.Cardinality != first.Cardinality {
		t.Fatalf("POST form diverges from GET: %+v vs %+v", posted, first)
	}
}

func TestServerErrors(t *testing.T) {
	h, _ := newTestServer(t)
	getJSON(t, h, http.MethodGet, "/estimate", "", http.StatusBadRequest, nil)
	getJSON(t, h, http.MethodGet, "/estimate?query=not+a+join", "", http.StatusBadRequest, nil)
	getJSON(t, h, http.MethodGet, estimateURL("T2.a:bad:0"), "", http.StatusBadRequest, nil)
	getJSON(t, h, http.MethodGet, estimateURL("T9.a:0:1"), "", http.StatusUnprocessableEntity, nil)
	getJSON(t, h, http.MethodDelete, "/estimate", "", http.StatusMethodNotAllowed, nil)
	getJSON(t, h, http.MethodPost, "/stats", "", http.StatusMethodNotAllowed, nil)
	getJSON(t, h, http.MethodGet, "/refresh", "", http.StatusMethodNotAllowed, nil)
}

func TestServerStatsAndRefresh(t *testing.T) {
	h, cat := newTestServer(t)

	var est estimateResponse
	getJSON(t, h, http.MethodGet, estimateURL("T2.a:0:500"), "", http.StatusOK, &est)
	getJSON(t, h, http.MethodGet, estimateURL("T2.a:0:500"), "", http.StatusOK, &est)

	var stats sits.ServeStats
	getJSON(t, h, http.MethodGet, "/stats", "", http.StatusOK, &stats)
	if stats.Hits != 1 || stats.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss", stats)
	}
	epoch := stats.Registry.Epoch

	// A no-op sweep first, then growth past the threshold forces a rebuild.
	var ref refreshResponse
	getJSON(t, h, http.MethodPost, "/refresh", "", http.StatusOK, &ref)
	if len(ref.Rebuilt) != 0 || ref.Epoch != epoch {
		t.Fatalf("fresh sweep rebuilt %v at epoch %d", ref.Rebuilt, ref.Epoch)
	}
	t1 := cat.MustTable("T1")
	row, err := t1.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := 0, t1.NumRows()/2; i < n; i++ {
		if err := t1.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	getJSON(t, h, http.MethodPost, "/refresh", "", http.StatusOK, &ref)
	if len(ref.Rebuilt) != 1 || ref.Epoch != epoch+1 {
		t.Fatalf("sweep after growth: rebuilt %v epoch %d, want 1 spec at epoch %d", ref.Rebuilt, ref.Epoch, epoch+1)
	}

	// The rebuilt SIT strands the old cache entry: next request recomputes.
	getJSON(t, h, http.MethodGet, estimateURL("T2.a:0:500"), "", http.StatusOK, &est)
	if est.Cached {
		t.Fatal("post-refresh request served the stale cache entry")
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rr.Code != http.StatusOK || rr.Body.String() != "ok\n" {
		t.Fatalf("healthz: %d %q", rr.Code, rr.Body.String())
	}
}

// TestServerOverload floods a budget-starved server whose builder is held:
// cold requests past the queue bound must shed with 429 + Retry-After, the
// liveness probe must stay green throughout, and once the builder frees the
// queued request completes and no request goroutines are left behind.
func TestServerOverload(t *testing.T) {
	cat, err := sits.GenerateChainDB(sits.DefaultChainConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sits.DefaultConfig()
	cfg.MemBudget = 1 // the governor can never admit a build probe
	reg, err := sits.NewRegistry(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	})
	svc, err := sits.NewService(reg, sits.ServeConfig{ShedQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := newServer(svc, 0.2)
	baseline := runtime.NumGoroutine()

	// Hold the builder so cold requests pile up behind it.
	release := make(chan struct{})
	held := make(chan struct{})
	builderDone := make(chan error, 1)
	go func() {
		builderDone <- reg.WithBuilder(func(*sits.Builder) error {
			close(held)
			<-release
			return nil
		})
	}()
	<-held

	// One request queues on the held builder; it must eventually succeed.
	queuedDone := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, estimateURL("T2.a:0:900"), nil))
		queuedDone <- rr
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued on the builder")
		}
		time.Sleep(time.Millisecond)
	}

	// Flood with distinct cold queries: every one sheds with a backoff hint,
	// and liveness never degrades.
	const flood = 32
	for i := 0; i < flood; i++ {
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, estimateURL(fmt.Sprintf("T2.a:0:%d", 100+i)), nil))
		if rr.Code != http.StatusTooManyRequests {
			t.Fatalf("flood request %d: status %d (body %s), want 429", i, rr.Code, rr.Body.String())
		}
		if rr.Header().Get("Retry-After") == "" {
			t.Fatalf("flood request %d: 429 without Retry-After", i)
		}
		health := httptest.NewRecorder()
		h.ServeHTTP(health, httptest.NewRequest(http.MethodGet, "/healthz", nil))
		if health.Code != http.StatusOK {
			t.Fatalf("healthz degraded to %d mid-flood", health.Code)
		}
	}
	var stats sits.ServeStats
	getJSON(t, h, http.MethodGet, "/stats", "", http.StatusOK, &stats)
	if stats.Sheds != flood || stats.Queued != 1 {
		t.Fatalf("stats %+v, want %d sheds and 1 queued", stats, flood)
	}

	// Free the builder: the queued request completes, nothing leaks.
	close(release)
	if err := <-builderDone; err != nil {
		t.Fatal(err)
	}
	rr := <-queuedDone
	if rr.Code != http.StatusOK {
		t.Fatalf("queued request: status %d (body %s), want 200", rr.Code, rr.Body.String())
	}
	var est estimateResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &est); err != nil {
		t.Fatal(err)
	}
	if est.Tier != "cold" || est.Cardinality <= 0 {
		t.Fatalf("queued request answered tier=%q cardinality=%v", est.Tier, est.Cardinality)
	}
	for deadline = time.Now().Add(5 * time.Second); runtime.NumGoroutine() > baseline+2; {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after the flood", baseline, runtime.NumGoroutine())
		}
		time.Sleep(time.Millisecond)
	}
}
