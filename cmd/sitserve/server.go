package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/sitstats/sits"
)

// now times the serving path so clients can see the cache's compute saving
// without HTTP round-trip noise. Wall-clock timing columns are inherently
// nondeterministic and never part of a seed-deterministic result.
var now = time.Now //statcheck:ignore rawrand serving-latency timing column, not part of the result

// server wires one serving layer behind the HTTP API:
//
//	GET/POST /estimate  — answer one SPJ estimation request
//	GET      /stats     — cache + registry counters
//	POST     /refresh   — run one staleness sweep now
//	GET      /healthz   — liveness probe
type server struct {
	svc       *sits.Service
	threshold float64 // staleness threshold for POST /refresh
}

func newServer(svc *sits.Service, threshold float64) http.Handler {
	s := &server{svc: svc, threshold: threshold}
	mux := http.NewServeMux()
	mux.HandleFunc("/estimate", s.handleEstimate)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/refresh", s.handleRefresh)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// estimateRequest is the POST body form of an estimation request. The GET
// form carries the same fields as ?query=...&pred=T.a:lo:hi[,...].
type estimateRequest struct {
	Query string     `json:"query"`
	Preds []predBody `json:"preds,omitempty"`
}

type predBody struct {
	Table string `json:"table"`
	Attr  string `json:"attr"`
	Lo    int64  `json:"lo"`
	Hi    int64  `json:"hi"`
}

// estimateResponse mirrors sits.Estimate with provenance flattened for
// clients, plus which serving tier answered.
type estimateResponse struct {
	Cardinality float64          `json:"cardinality"`
	JoinCard    float64          `json:"join_cardinality"`
	JoinStat    string           `json:"join_stat"`
	Sources     []sourceResponse `json:"sources,omitempty"`
	// Tier is the serving tier that answered: "result-hit" (estimate cache),
	// "plan-hit" (cached plan re-probed with this request's constants), or
	// "cold" (full preparation under the builder lock). Cached preserves the
	// pre-tier client field: it is true exactly for result-hit.
	Tier   string `json:"tier"`
	Cached bool   `json:"cached"`
	// EstimateUS is the server-side time spent answering (microseconds):
	// a cache probe for result hits, histogram probing for plan hits, the
	// full estimation for cold requests.
	EstimateUS float64 `json:"estimate_us"`
}

type sourceResponse struct {
	Pred        string  `json:"pred"`
	Stat        string  `json:"stat"`
	Tables      int     `json:"tables"`
	Selectivity float64 `json:"selectivity"`
}

func (s *server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req estimateRequest
	switch r.Method {
	case http.MethodGet:
		req.Query = r.URL.Query().Get("query")
		preds, err := parsePreds(r.URL.Query().Get("pred"))
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		for _, p := range preds {
			req.Preds = append(req.Preds, predBody{Table: p.Table, Attr: p.Attr, Lo: p.Lo, Hi: p.Hi})
		}
	case http.MethodPost:
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
	default:
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET or POST"))
		return
	}
	if req.Query == "" {
		httpError(w, http.StatusBadRequest, fmt.Errorf("missing query"))
		return
	}
	expr, err := sits.ParseExpr(req.Query)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	q := sits.SPJQuery{Expr: expr}
	for _, p := range req.Preds {
		q.Preds = append(q.Preds, sits.Predicate{Table: p.Table, Attr: p.Attr, Lo: p.Lo, Hi: p.Hi})
	}
	t0 := now()
	est, tier, err := s.svc.Estimate(q)
	if err != nil {
		if errors.Is(err, sits.ErrOverloaded) {
			// Shed: the builder queue is full under budget pressure. 429 with
			// a Retry-After tells well-behaved clients to back off instead of
			// hammering the queue they just got rejected from.
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusTooManyRequests, err)
			return
		}
		httpError(w, http.StatusUnprocessableEntity, err)
		return
	}
	resp := estimateResponse{
		Cardinality: est.Cardinality,
		JoinCard:    est.JoinCard,
		JoinStat:    est.JoinStat,
		Tier:        tier.String(),
		Cached:      tier == sits.TierResult,
		EstimateUS:  float64(now().Sub(t0)) / float64(time.Microsecond),
	}
	for _, src := range est.Sources {
		resp.Sources = append(resp.Sources, sourceResponse{
			Pred:        src.Pred.String(),
			Stat:        src.Stat,
			Tables:      src.Tables,
			Selectivity: src.Selectivity,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

type refreshResponse struct {
	Rebuilt []string `json:"rebuilt"`
	Epoch   uint64   `json:"epoch"`
}

func (s *server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return
	}
	rebuilt, err := s.svc.Registry().Refresh(s.threshold)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if rebuilt == nil {
		rebuilt = []string{}
	}
	writeJSON(w, http.StatusOK, refreshResponse{Rebuilt: rebuilt, Epoch: s.svc.Registry().Epoch()})
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	// A failed liveness write means the client is gone; nothing to do.
	_, _ = w.Write([]byte("ok\n"))
}

// writeJSON sends v as a JSON response. Encoding errors past the header are
// undeliverable (the status is already on the wire), so they are dropped.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// parsePreds parses the CLI/query-string predicate form
// "T.a:lo:hi[,T.b:lo:hi...]".
func parsePreds(s string) ([]sits.Predicate, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []sits.Predicate
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad predicate %q (want T.a:lo:hi)", part)
		}
		ta := strings.Split(fields[0], ".")
		if len(ta) != 2 || ta[0] == "" || ta[1] == "" {
			return nil, fmt.Errorf("bad predicate attribute %q", fields[0])
		}
		lo, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad predicate bound %q: %v", fields[1], err)
		}
		hi, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad predicate bound %q: %v", fields[2], err)
		}
		out = append(out, sits.Predicate{Table: ta[0], Attr: ta[1], Lo: lo, Hi: hi})
	}
	return out, nil
}
