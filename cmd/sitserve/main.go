// Command sitserve runs the statistics service: a long-lived HTTP daemon
// that serves SIT-based cardinality estimates over a loaded catalog.
//
//	sitserve -addr :8642 [-csv dir | -segments dir] [-tables T1,T2] \
//	         [-sits stats.json] [-build "spec;spec"] [-method sweepfull] \
//	         [-mem-budget 512M] [-parallel 0] [-cache 4096] \
//	         [-refresh 30s] [-stale-threshold 0.2]
//
// Endpoints:
//
//	GET  /estimate?query=T1+JOIN+T2+ON+T1.jnext+=+T2.jprev&pred=T2.a:0:100
//	POST /estimate   {"query": "...", "preds": [{"table":"T2","attr":"a","lo":0,"hi":100}]}
//	GET  /stats      cache hit/miss counters, registry epoch, SIT count
//	POST /refresh    run one staleness sweep immediately
//	GET  /healthz    liveness
//
// The catalog comes from -csv or -segments (the shared loader also used by
// sitcreate and estimate); with neither, the synthetic chain database is
// generated. SITs are preloaded from -sits (a file written by estimate
// -save) and/or built at startup from the semicolon-separated -build specs.
// All concurrent requests share one memory governor bounded by -mem-budget;
// estimates are cached (bit-identical to recomputation) and invalidated by
// table mutations and SIT refreshes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/sitstats/sits"
)

func main() {
	var (
		addr      = flag.String("addr", ":8642", "HTTP listen address")
		csvDir    = flag.String("csv", "", "directory of <table>.csv files; default: generated chain database")
		segDir    = flag.String("segments", "", "directory of <table>.seg segment files; tables stream off disk block by block")
		tables    = flag.String("tables", "", "comma-separated tables to load from -csv/-segments (default: every table file)")
		sitsFile  = flag.String("sits", "", "preload SITs from this JSON file (written by estimate -save)")
		builds    = flag.String("build", "", "semicolon-separated SIT specs to build at startup")
		method    = flag.String("method", "sweepfull", "creation method for -build and staleness rebuilds")
		memFlag   = flag.String("mem-budget", "0", "memory budget shared by every concurrent request, e.g. 512M (0 = unlimited)")
		parallel  = flag.Int("parallel", 0, "exec pool width for builds (0 = all CPUs, 1 = serial)")
		batch     = flag.Int("batch", 0, "executor rows per batch (0 = adaptive)")
		spillOn   = flag.Bool("spill-compress", true, "spill block-compressed SRN2 runs beyond the budget")
		cacheSize = flag.Int("cache", 0, "estimate result-cache entries (0 = default, negative = disabled)")
		planSize  = flag.Int("plan-cache", 0, "prepared-plan cache entries (0 = default, negative = disabled)")
		shedQueue = flag.Int("shed-queue", 64, "cold requests queued on the builder before /estimate sheds with 429 under budget pressure (0 = never shed)")
		refresh   = flag.Duration("refresh", 0, "background staleness sweep interval (0 = disabled)")
		threshold = flag.Float64("stale-threshold", 0.2, "relative base-table growth that triggers a SIT rebuild")
		seed      = flag.Int64("seed", 1, "random seed for sampling builds")
	)
	flag.Parse()
	if err := run(*addr, *csvDir, *segDir, *tables, *sitsFile, *builds, *method,
		*memFlag, *parallel, *batch, *spillOn, *cacheSize, *planSize, *shedQueue, *refresh, *threshold, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sitserve:", err)
		os.Exit(1)
	}
}

func run(addr, csvDir, segDir, tables, sitsFile, builds, methodName,
	memFlag string, parallel, batch int, spillOn bool, cacheSize, planSize, shedQueue int,
	refresh time.Duration, threshold float64, seed int64) error {
	cat, err := loadCatalog(csvDir, segDir, tables)
	if err != nil {
		return err
	}
	cfg := sits.DefaultConfig()
	cfg.Seed = seed
	cfg.Parallelism = parallel
	cfg.BatchSize = batch
	cfg.SpillCompress = spillOn
	if cfg.MemBudget, err = sits.ParseMemBudget(memFlag); err != nil {
		return err
	}
	reg, err := sits.NewRegistry(cat, cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := reg.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "sitserve: closing registry:", cerr)
		}
	}()

	if sitsFile != "" {
		f, err := os.Open(sitsFile)
		if err != nil {
			return err
		}
		loaded, err := sits.LoadSITs(f)
		_ = f.Close()
		if err != nil {
			return err
		}
		if err := reg.Adopt(loaded); err != nil {
			return err
		}
		fmt.Printf("adopted %d SIT(s) from %s\n", len(loaded), sitsFile)
	}
	if builds != "" {
		m, err := parseMethod(methodName)
		if err != nil {
			return err
		}
		for _, specText := range strings.Split(builds, ";") {
			spec, err := sits.ParseSIT(strings.TrimSpace(specText))
			if err != nil {
				return err
			}
			if _, err := reg.Get(spec, m); err != nil {
				return err
			}
			fmt.Printf("built %s (%s)\n", spec.String(), m)
		}
	}

	svc, err := sits.NewService(reg, sits.ServeConfig{
		CacheEntries:     cacheSize,
		PlanCacheEntries: planSize,
		ShedQueue:        shedQueue,
	})
	if err != nil {
		return err
	}
	if refresh > 0 {
		if err := reg.StartRefresh(refresh, threshold); err != nil {
			return err
		}
		fmt.Printf("background refresh every %v at staleness threshold %.2f\n", refresh, threshold)
	}

	srv := &http.Server{Addr: addr, Handler: newServer(svc, threshold)}
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		fmt.Printf("serving %d SIT(s) on %s\n", reg.Len(), addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Println("shutting down")
	shutCtx, shutCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer shutCancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// loadCatalog loads tables through the shared -csv/-segments path, or
// generates the synthetic chain database when neither directory is given.
func loadCatalog(csvDir, segDir, tables string) (*sits.Catalog, error) {
	if csvDir == "" && segDir == "" {
		return sits.GenerateChainDB(sits.DefaultChainConfig())
	}
	var names []string
	for _, t := range strings.Split(tables, ",") {
		if t = strings.TrimSpace(t); t != "" {
			names = append(names, t)
		}
	}
	return sits.LoadCatalog(csvDir, segDir, names)
}

func parseMethod(name string) (sits.Method, error) {
	switch strings.ToLower(name) {
	case "histsit", "hist-sit":
		return sits.HistSIT, nil
	case "sweep":
		return sits.Sweep, nil
	case "sweepindex":
		return sits.SweepIndex, nil
	case "sweepfull":
		return sits.SweepFull, nil
	case "sweepexact":
		return sits.SweepExact, nil
	case "materialize":
		return sits.Materialize, nil
	default:
		return 0, fmt.Errorf("unknown method %q", name)
	}
}
