// Command sitbench regenerates every figure of the paper's evaluation
// (Section 5) as text tables:
//
//	sitbench -experiment fig7     # Figures 7(a)-(c): single-SIT accuracy
//	sitbench -experiment uniform  # Section 5.1 prose: independent attributes
//	sitbench -experiment fig8     # Figure 8: scheduling vs numSITs
//	sitbench -experiment fig9     # Figure 9: scheduling vs number of tables
//	sitbench -experiment fig10    # Figure 10: scheduling vs memory budget
//	sitbench -experiment all      # everything
//
// Flags scale the workloads between quick smoke runs and the paper's full
// setting (e.g. -instances 100 restores the paper's instance count).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"github.com/sitstats/sits/internal/experiments"
	"github.com/sitstats/sits/internal/mem"
)

func main() {
	var (
		exp       = flag.String("experiment", "all", "fig7 | uniform | fig8 | fig9 | fig10 | all")
		queries   = flag.Int("queries", 1000, "random range queries per accuracy measurement (paper: 1000)")
		buckets   = flag.String("buckets", "", "comma-separated histogram sizes for fig7 (default 20,50,100,200)")
		instances = flag.Int("instances", 20, "random instances per scheduling point (paper: 100)")
		numSITs   = flag.Int("numsits", 10, "default number of SITs per scheduling instance (paper: 10)")
		lenSITs   = flag.Int("lensits", 5, "maximum dependency-sequence length (paper: 5)")
		tables    = flag.Int("tables", 10, "number of tables in scheduling instances (paper: 10)")
		memory    = flag.Float64("memory", 50000, "memory budget M (paper: 50000)")
		hybridMS  = flag.Int("hybrid-ms", 1000, "Hybrid's A* budget in milliseconds (paper: 1000)")
		optCap    = flag.Int("opt-cap", 2000000, "abort Opt after this many A* expansions (0 = unlimited); capped instances count as failures")
		parallel  = flag.Int("parallel", 0, "width of the shared exec worker pool, used by experiment cells, shared scans, and query pipelines (0 = all CPUs, 1 = serial; output is bit-identical at every width)")
		batch     = flag.Int("batch", 0, "executor rows per batch (0 = adaptive from plan width)")
		memBudget = flag.String("mem-budget", "0", "executor memory budget, e.g. 512M or 2G (0 = unlimited); joins and sorts spill beyond it")
		spillOn   = flag.Bool("spill-compress", true, "spill block-compressed SRN2 runs; =false spills raw SRN1 (same results, more spill bytes)")
		seed      = flag.Int64("seed", 11, "random seed")
	)
	flag.Parse()
	budget, err := mem.ParseBytes(*memBudget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sitbench:", err)
		os.Exit(1)
	}
	if err := run(*exp, *queries, *buckets, *instances, *numSITs, *lenSITs, *tables, *memory, *hybridMS, *optCap, *parallel, *batch, budget, !*spillOn, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sitbench:", err)
		os.Exit(1)
	}
}

func run(exp string, queries int, buckets string, instances, numSITs, lenSITs, tables int,
	memory float64, hybridMS, optCap, parallel, batch int, memBudget int64, spillRaw bool, seed int64) error {

	schedCfg := experiments.DefaultSchedConfig()
	schedCfg.Instances = instances
	schedCfg.NumSITs = numSITs
	schedCfg.LenSITs = lenSITs
	schedCfg.NumTables = tables
	schedCfg.Memory = memory
	schedCfg.HybridBudget = time.Duration(hybridMS) * time.Millisecond
	schedCfg.OptExpansionCap = optCap
	schedCfg.Parallelism = parallel
	schedCfg.Seed = seed

	all := exp == "all"
	ran := false
	if exp == "fig7" || all {
		ran = true
		cfg := experiments.DefaultFig7Config()
		cfg.Queries = queries
		cfg.Seed = seed
		cfg.Parallelism = parallel
		cfg.BatchSize = batch
		cfg.MemBudget = memBudget
		cfg.SpillRaw = spillRaw
		if buckets != "" {
			var err error
			cfg.Buckets, err = parseInts(buckets)
			if err != nil {
				return err
			}
		}
		fmt.Println("== Figure 7: single-SIT accuracy, skewed correlated join attributes (z=1) ==")
		res, err := experiments.RunFigure7(cfg)
		if err != nil {
			return err
		}
		if err := experiments.PrintFigure7(os.Stdout, res, "Figure 7"); err != nil {
			return err
		}
		if err := experiments.PrintFigure7BuildTimes(os.Stdout, res); err != nil {
			return err
		}
		fmt.Println()
	}
	if exp == "uniform" || all {
		ran = true
		cfg := experiments.UniformConfig()
		cfg.Queries = queries
		cfg.Seed = seed
		cfg.Parallelism = parallel
		cfg.BatchSize = batch
		cfg.MemBudget = memBudget
		cfg.SpillRaw = spillRaw
		fmt.Println("== Section 5.1 (prose): uniform, independent join attributes ==")
		res, err := experiments.RunFigure7(cfg)
		if err != nil {
			return err
		}
		if err := experiments.PrintFigure7(os.Stdout, res, "Uniform data"); err != nil {
			return err
		}
		fmt.Println()
	}
	if exp == "fig8" || all {
		ran = true
		fmt.Printf("== Figure 8: multi-SIT scheduling vs numSITs (%d instances/point) ==\n", schedCfg.Instances)
		points, err := experiments.RunFigure8(schedCfg, []int{2, 5, 10, 15, 20})
		if err != nil {
			return err
		}
		if err := experiments.PrintSchedSweep(os.Stdout, points, "numSITs", "Figure 8"); err != nil {
			return err
		}
		fmt.Println()
	}
	if exp == "fig9" || all {
		ran = true
		fmt.Printf("== Figure 9: multi-SIT scheduling vs number of tables (%d instances/point) ==\n", schedCfg.Instances)
		points, err := experiments.RunFigure9(schedCfg, []int{5, 10, 20, 30, 40})
		if err != nil {
			return err
		}
		if err := experiments.PrintSchedSweep(os.Stdout, points, "tables", "Figure 9"); err != nil {
			return err
		}
		fmt.Println()
	}
	if exp == "fig10" || all {
		ran = true
		fmt.Printf("== Figure 10: multi-SIT scheduling vs memory budget (%d instances/point) ==\n", schedCfg.Instances)
		rng := rand.New(rand.NewSource(schedCfg.Seed))
		_, env, err := experiments.RandomInstance(rng, schedCfg)
		if err != nil {
			return err
		}
		floor := experiments.MinFeasibleMemory(env)
		memories := []float64{floor * 1.05, floor * 1.5, floor * 2, floor * 3, floor * 5, floor * 10}
		points, err := experiments.RunFigure10(schedCfg, memories)
		if err != nil {
			return err
		}
		if err := experiments.PrintSchedSweep(os.Stdout, points, "memory", "Figure 10"); err != nil {
			return err
		}
		fmt.Println()
	}
	if exp == "ablation" || all {
		ran = true
		fmt.Println("== Ablation: histogram construction algorithms (extension) ==")
		cfg := experiments.DefaultAblationConfig()
		cfg.Queries = queries
		cfg.Seed = seed
		cfg.Parallelism = parallel
		cfg.BatchSize = batch
		cfg.MemBudget = memBudget
		cfg.SpillRaw = spillRaw
		cells, err := experiments.RunHistogramAblation(cfg)
		if err != nil {
			return err
		}
		if err := experiments.PrintHistogramAblation(os.Stdout, cfg, cells); err != nil {
			return err
		}
		fmt.Println()
	}
	if exp == "acyclic" || all {
		ran = true
		fmt.Println("== Acyclic generating queries: snowflake SIT accuracy (extension) ==")
		cfg := experiments.DefaultAcyclicConfig()
		cfg.Queries = queries
		cfg.Seed = seed
		cfg.Parallelism = parallel
		cfg.BatchSize = batch
		cfg.MemBudget = memBudget
		cfg.SpillRaw = spillRaw
		cells, err := experiments.RunAcyclic(cfg)
		if err != nil {
			return err
		}
		if err := experiments.PrintAcyclic(os.Stdout, cfg, cells); err != nil {
			return err
		}
		fmt.Println()
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig7, uniform, fig8, fig9, fig10, ablation, acyclic or all)", exp)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitComma(s) {
		var v int
		if _, err := fmt.Sscanf(part, "%d", &v); err != nil || v <= 0 {
			return nil, fmt.Errorf("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func splitComma(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == ',' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}
