package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("20,50,100")
	if err != nil || len(got) != 3 || got[0] != 20 || got[2] != 100 {
		t.Errorf("parseInts = %v, %v", got, err)
	}
	if _, err := parseInts("20,x"); err == nil {
		t.Error("bad list: want error")
	}
	if _, err := parseInts("0"); err == nil {
		t.Error("non-positive: want error")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("bogus", 10, "", 1, 4, 3, 5, 1e6, 10, 0, 0, 0, 0, false, 1); err == nil {
		t.Error("unknown experiment: want error")
	}
}

func TestRunBadBuckets(t *testing.T) {
	if err := run("fig7", 10, "1,x", 1, 4, 3, 5, 1e6, 10, 0, 0, 0, 0, false, 1); err == nil {
		t.Error("bad buckets list: want error")
	}
}

// TestRunTinySweeps exercises the experiment plumbing end to end with tiny
// parameters (few queries, few instances, small instances).
func TestRunTinySweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full figure plumbing")
	}
	if err := run("fig9", 10, "", 2, 4, 3, 6, 100000, 50, 0, 0, 0, 0, false, 7); err != nil {
		t.Fatal(err)
	}
}
