package main

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGenRequestDeterministicAndQuantized(t *testing.T) {
	templates := chainTemplates(2000)
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		ra := genRequest(a, "http://x", templates, 250)
		rb := genRequest(b, "http://x", templates, 250)
		if ra != rb {
			t.Fatalf("request %d diverges under one seed:\n%s\n%s", i, ra, rb)
		}
		if !strings.Contains(ra, "/estimate?") || !strings.Contains(ra, "query=") {
			t.Fatalf("malformed request %s", ra)
		}
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	if p := percentile(vals, 50); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := percentile(vals, 99); p != 5 {
		t.Fatalf("p99 = %v, want 5", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Fatalf("empty p50 = %v, want 0", p)
	}
	if vals[0] != 5 {
		t.Fatal("percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	samples := []sample{
		{ms: 1, serverUS: 4, cached: true},
		{ms: 2, serverUS: 6, cached: true},
		{ms: 10, serverUS: 100},
		{err: http.ErrHandlerTimeout},
	}
	res := summarize(samples, 2, time.Second)
	if res.Errors != 1 || res.Requests != 4 {
		t.Fatalf("summary %+v", res)
	}
	if res.HitRatio != 2.0/3.0 {
		t.Fatalf("hit ratio %v, want 2/3", res.HitRatio)
	}
	if res.MissP50MS != 10 || res.HitP99MS != 2 {
		t.Fatalf("percentiles %+v", res)
	}
	if res.HitComputeP50US != 4 || res.MissComputeP50US != 100 {
		t.Fatalf("compute percentiles %+v", res)
	}
	if res.ComputeSpeedup != 25 {
		t.Fatalf("compute speedup %v, want 25", res.ComputeSpeedup)
	}
}

// TestRunAgainstStub drives the full generator loop against a stub daemon,
// including the -json artifact.
func TestRunAgainstStub(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/estimate", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.RawQuery
		mu.Lock()
		cached := seen[key]
		seen[key] = true
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if cached {
			_, _ = w.Write([]byte(`{"cardinality": 1, "cached": true, "estimate_us": 2}`))
		} else {
			_, _ = w.Write([]byte(`{"cardinality": 1, "cached": false, "estimate_us": 100}`))
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(srv.URL, 300, 50, 1, 2000, 500, out, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(out); err != nil {
		t.Fatal(err)
	}
}
