package main

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGenRequestDeterministicAndQuantized(t *testing.T) {
	templates := chainTemplates(2000)
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		ra := genRequest(a, "http://x", templates, 250)
		rb := genRequest(b, "http://x", templates, 250)
		if ra != rb {
			t.Fatalf("request %d diverges under one seed:\n%s\n%s", i, ra, rb)
		}
		if !strings.Contains(ra, "/estimate?") || !strings.Contains(ra, "query=") {
			t.Fatalf("malformed request %s", ra)
		}
	}
}

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	if p := percentile(vals, 50); p != 3 {
		t.Fatalf("p50 = %v, want 3", p)
	}
	if p := percentile(vals, 99); p != 5 {
		t.Fatalf("p99 = %v, want 5", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Fatalf("empty p50 = %v, want 0", p)
	}
	if vals[0] != 5 {
		t.Fatal("percentile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	samples := []sample{
		{ms: 1, serverUS: 4, tier: "result-hit"},
		{ms: 2, serverUS: 6, tier: "result-hit"},
		{ms: 10, serverUS: 100, tier: "cold"},
		{err: http.ErrHandlerTimeout},
	}
	res := summarize(samples, 2, time.Second)
	if res.Errors != 1 || res.Requests != 4 {
		t.Fatalf("summary %+v", res)
	}
	if res.HitRatio != 2.0/3.0 {
		t.Fatalf("hit ratio %v, want 2/3", res.HitRatio)
	}
	if res.MissP50MS != 10 || res.HitP99MS != 2 {
		t.Fatalf("percentiles %+v", res)
	}
	if res.HitComputeP50US != 4 || res.MissComputeP50US != 100 {
		t.Fatalf("compute percentiles %+v", res)
	}
	if res.ComputeSpeedup != 25 {
		t.Fatalf("compute speedup %v, want 25", res.ComputeSpeedup)
	}
	if res.ResultHits != 2 || res.PlanHits != 0 || res.Cold != 1 {
		t.Fatalf("tier split %+v, want 2/0/1", res)
	}
}

func TestSummarizeTiers(t *testing.T) {
	samples := []sample{
		{ms: 1, serverUS: 2, tier: "result-hit"},
		{ms: 2, serverUS: 10, tier: "plan-hit"},
		{ms: 2, serverUS: 12, tier: "plan-hit"},
		{ms: 10, serverUS: 60, tier: "cold"},
	}
	res := summarize(samples, 1, time.Second)
	if res.ResultHits != 1 || res.PlanHits != 2 || res.Cold != 1 {
		t.Fatalf("tier split %+v, want 1/2/1", res)
	}
	if res.PlanHitP50US != 10 || res.ColdP50US != 60 {
		t.Fatalf("tier percentiles %+v", res)
	}
	if res.PlanSpeedup != 6 {
		t.Fatalf("plan speedup %v, want 6", res.PlanSpeedup)
	}
	// Plan hits computed, so they fold into the legacy miss bucket.
	if res.HitRatio != 0.25 || res.MissComputeP50US != 12 {
		t.Fatalf("legacy split %+v", res)
	}
}

// TestRunAgainstStub drives the full generator loop against a stub daemon,
// including the -json artifact.
func TestRunAgainstStub(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/estimate", func(w http.ResponseWriter, r *http.Request) {
		key := r.URL.RawQuery
		mu.Lock()
		cached := seen[key]
		seen[key] = true
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if cached {
			_, _ = w.Write([]byte(`{"cardinality": 1, "cached": true, "estimate_us": 2}`))
		} else {
			_, _ = w.Write([]byte(`{"cardinality": 1, "cached": false, "estimate_us": 100}`))
		}
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(srv.URL, "mix", 300, 50, 1, 2000, 500, out, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(out); err != nil {
		t.Fatal(err)
	}
}

// TestRunPlansWorkload drives the plans workload against a stub that mimics
// the three-tier daemon: first sight of a shape is cold, repeats of the
// exact query are result hits, new constants over a seen shape are plan
// hits. The summary must carry the tier split and speedup.
func TestRunPlansWorkload(t *testing.T) {
	var mu sync.Mutex
	seenShape := map[string]bool{}
	seenExact := map[string]bool{}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/estimate", func(w http.ResponseWriter, r *http.Request) {
		shape := r.URL.Query().Get("query")
		exact := r.URL.RawQuery
		mu.Lock()
		tier := "cold"
		switch {
		case seenExact[exact]:
			tier = "result-hit"
		case seenShape[shape]:
			tier = "plan-hit"
		}
		seenShape[shape], seenExact[exact] = true, true
		mu.Unlock()
		us := map[string]string{"cold": "100", "plan-hit": "10", "result-hit": "2"}[tier]
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"cardinality": 1, "tier": "` + tier + `", "cached": ` +
			strconv.FormatBool(tier == "result-hit") + `, "estimate_us": ` + us + `}`))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	out := filepath.Join(t.TempDir(), "bench.json")
	if err := run(srv.URL, "plans", 200, 20, 1, 2000, 250, out, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var res result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Cold == 0 || res.PlanHits == 0 {
		t.Fatalf("tier split %+v: plans workload produced no cold or no plan-hit samples", res)
	}
	if res.PlanHits < res.Cold {
		t.Fatalf("tier split %+v: plans workload should be plan-hit heavy", res)
	}
	if res.PlanSpeedup != 10 {
		t.Fatalf("plan speedup %v, want 10 from the stub's timings", res.PlanSpeedup)
	}

	if err := run(srv.URL, "bogus", 1, 1, 1, 2000, 250, "", time.Second); err == nil {
		t.Fatal("unknown workload must fail")
	}
}
