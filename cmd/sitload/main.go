// Command sitload drives a running sitserve daemon with concurrent estimate
// requests and reports latency percentiles and the cache hit ratio:
//
//	sitload -url http://localhost:8642 -n 5000 -c 1000 [-seed 1] \
//	        [-workload mix] [-domain 2000] [-quantum 250] [-json BENCH_serve.json]
//
// Two workloads:
//
//   - mix (default): a seeded random mix of chain-join SPJ queries (the
//     shapes of the default synthetic chain database) with range predicates
//     quantized to -quantum, so a bounded key population repeats and
//     exercises the estimate result cache; -quantum 1 makes almost every
//     request distinct.
//   - plans: the same fixed expression set with unquantized constants, so
//     nearly every request misses the result cache but re-probes the shape's
//     cached plan — the plan-cache steady state. The summary reports the
//     plan-hit/result-hit/cold split and per-tier server-side estimate time,
//     including the plan-vs-cold speedup the tier exists for.
//
// Latencies are reported overall and split by serving tier. With -json the
// summary is also written as a JSON benchmark artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"sync"
	"time"
)

// now is the load generator's clock. Latency is wall-clock by definition and
// never part of a seed-deterministic result, so the read is sanctioned here
// once; everything else about the workload derives from -seed.
var now = time.Now //statcheck:ignore rawrand latency measurement is wall-clock by definition

// template is one query shape; preds names the attributes that get a random
// quantized range each.
type template struct {
	query string
	preds []pred
}

type pred struct {
	table, attr string
	domain      int64 // value domain the random ranges are drawn from
}

// chainTemplates are the query shapes of the default synthetic chain
// database (tables T1..T4 chained on jnext/jprev). The "a" payload spans the
// join domain; "b" is uniform over the payload domain.
func chainTemplates(domain int64) []template {
	join2 := "T1 JOIN T2 ON T1.jnext = T2.jprev"
	join23 := "T2 JOIN T3 ON T2.jnext = T3.jprev"
	join3 := "T1 JOIN T2 ON T1.jnext = T2.jprev JOIN T3 ON T2.jnext = T3.jprev"
	return []template{
		{query: join2, preds: []pred{{"T2", "a", domain}}},
		{query: join2, preds: []pred{{"T2", "a", domain}, {"T1", "b", 5 * domain}}},
		{query: join23, preds: []pred{{"T3", "a", domain}}},
		{query: join3, preds: []pred{{"T3", "a", domain}}},
		{query: join3, preds: []pred{{"T3", "a", domain}, {"T2", "a", domain}}},
	}
}

// genRequest renders one random request URL from the seeded generator.
func genRequest(rng *rand.Rand, base string, templates []template, quantum int64) string {
	t := templates[rng.Intn(len(templates))]
	v := url.Values{"query": {t.query}}
	predStr := ""
	for i, p := range t.preds {
		steps := p.domain / quantum
		if steps < 1 {
			steps = 1
		}
		lo := quantum * rng.Int63n(steps)
		hi := lo + quantum*(1+rng.Int63n(steps-lo/quantum))
		if i > 0 {
			predStr += ","
		}
		predStr += fmt.Sprintf("%s.%s:%d:%d", p.table, p.attr, lo, hi)
	}
	if predStr != "" {
		v.Set("pred", predStr)
	}
	return base + "/estimate?" + v.Encode()
}

// sample is one completed request.
type sample struct {
	ms       float64 // end-to-end latency
	serverUS float64 // server-side estimate time (cache probe or computation)
	tier     string  // serving tier: "result-hit", "plan-hit", or "cold"
	err      error
}

// result is the benchmark summary, written as JSON with -json.
type result struct {
	Requests    int     `json:"requests"`
	Concurrency int     `json:"concurrency"`
	Errors      int     `json:"errors"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	Throughput  float64 `json:"requests_per_sec"`
	HitRatio    float64 `json:"hit_ratio"`
	P50MS       float64 `json:"p50_ms"`
	P99MS       float64 `json:"p99_ms"`
	HitP50MS    float64 `json:"hit_p50_ms"`
	HitP99MS    float64 `json:"hit_p99_ms"`
	MissP50MS   float64 `json:"miss_p50_ms"`
	MissP99MS   float64 `json:"miss_p99_ms"`
	// Server-side estimate time, split by cache outcome: the cache's
	// compute saving without HTTP round-trip noise. ComputeSpeedup is
	// miss p50 over hit p50.
	HitComputeP50US  float64 `json:"hit_compute_p50_us"`
	HitComputeP99US  float64 `json:"hit_compute_p99_us"`
	MissComputeP50US float64 `json:"miss_compute_p50_us"`
	MissComputeP99US float64 `json:"miss_compute_p99_us"`
	ComputeSpeedup   float64 `json:"compute_speedup"`
	// Per-tier split: how many requests each serving tier answered and its
	// server-side estimate time. PlanSpeedup is cold p50 over plan-hit p50 —
	// the compute the prepare/execute split saves once a shape's plan is
	// cached.
	ResultHits     int     `json:"result_hits"`
	PlanHits       int     `json:"plan_hits"`
	Cold           int     `json:"cold"`
	ResultHitP50US float64 `json:"result_hit_p50_us"`
	ResultHitP99US float64 `json:"result_hit_p99_us"`
	PlanHitP50US   float64 `json:"plan_hit_p50_us"`
	PlanHitP99US   float64 `json:"plan_hit_p99_us"`
	ColdP50US      float64 `json:"cold_p50_us"`
	ColdP99US      float64 `json:"cold_p99_us"`
	PlanSpeedup    float64 `json:"plan_speedup"`
}

func main() {
	var (
		baseURL  = flag.String("url", "http://localhost:8642", "sitserve base URL")
		n        = flag.Int("n", 5000, "total requests")
		c        = flag.Int("c", 1000, "concurrent requests in flight")
		seed     = flag.Int64("seed", 1, "workload seed")
		workload = flag.String("workload", "mix", `workload shape: "mix" (quantized constants, result-cache heavy) or "plans" (fixed expressions, fresh constants each request — plan-cache heavy)`)
		domain   = flag.Int64("domain", 2000, "predicate value domain (the chain DB join domain)")
		quantum  = flag.Int64("quantum", 250, "predicate range granularity; smaller = more distinct queries, fewer cache hits")
		jsonPath = flag.String("json", "", "also write the summary to this JSON file")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request timeout")
	)
	flag.Parse()
	if err := run(*baseURL, *workload, *n, *c, *seed, *domain, *quantum, *jsonPath, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "sitload:", err)
		os.Exit(1)
	}
}

func run(baseURL, workload string, n, c int, seed, domain, quantum int64, jsonPath string, timeout time.Duration) error {
	if n <= 0 || c <= 0 {
		return fmt.Errorf("-n and -c must be positive")
	}
	if quantum <= 0 || domain <= 0 || quantum > domain {
		return fmt.Errorf("need 0 < -quantum <= -domain")
	}
	switch workload {
	case "mix":
	case "plans":
		// Fixed expression set, fresh constants every request: nearly every
		// request misses the result cache and executes the shape's plan.
		quantum = 1
	default:
		return fmt.Errorf("unknown -workload %q (want mix or plans)", workload)
	}
	if c > n {
		c = n
	}
	client := &http.Client{
		Timeout: timeout,
		Transport: &http.Transport{
			MaxIdleConns:        c,
			MaxIdleConnsPerHost: c,
		},
	}
	if err := healthcheck(client, baseURL); err != nil {
		return err
	}

	// Every worker renders its own request stream from a distinct
	// deterministic seed, so the union workload is reproducible at any
	// concurrency (the interleaving is not — that's the point of the test).
	templates := chainTemplates(domain)
	samples := make([]sample, n)
	var wg sync.WaitGroup
	start := now()
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			// Worker w owns samples[w], samples[w+c], ... — no contention.
			for i := w; i < n; i += c {
				samples[i] = one(client, genRequest(rng, baseURL, templates, quantum))
			}
		}(w)
	}
	wg.Wait()
	elapsed := now().Sub(start)

	res := summarize(samples, c, elapsed)
	fmt.Printf("%d requests, %d concurrent, %d errors in %.1fms (%.0f req/s)\n",
		res.Requests, res.Concurrency, res.Errors, res.ElapsedMS, res.Throughput)
	fmt.Printf("cache hit ratio %.3f\n", res.HitRatio)
	fmt.Printf("latency    p50 %8.3fms  p99 %8.3fms\n", res.P50MS, res.P99MS)
	fmt.Printf("  hits     p50 %8.3fms  p99 %8.3fms\n", res.HitP50MS, res.HitP99MS)
	fmt.Printf("  misses   p50 %8.3fms  p99 %8.3fms\n", res.MissP50MS, res.MissP99MS)
	fmt.Printf("server estimate time: hit p50 %.1fus, miss p50 %.1fus (%.1fx speedup from cache)\n",
		res.HitComputeP50US, res.MissComputeP50US, res.ComputeSpeedup)
	fmt.Printf("tiers: %d result-hit / %d plan-hit / %d cold\n", res.ResultHits, res.PlanHits, res.Cold)
	fmt.Printf("  result-hit p50 %8.1fus  p99 %8.1fus\n", res.ResultHitP50US, res.ResultHitP99US)
	fmt.Printf("  plan-hit   p50 %8.1fus  p99 %8.1fus\n", res.PlanHitP50US, res.PlanHitP99US)
	fmt.Printf("  cold       p50 %8.1fus  p99 %8.1fus\n", res.ColdP50US, res.ColdP99US)
	if workload == "plans" {
		verdict := "PASS"
		if res.PlanSpeedup < 3 {
			verdict = "FAIL"
		}
		fmt.Printf("acceptance: plan-hit p50 %.1fus vs cold p50 %.1fus — %.1fx speedup (want >= 3x): %s\n",
			res.PlanHitP50US, res.ColdP50US, res.PlanSpeedup, verdict)
	}
	for _, s := range samples {
		if s.err != nil {
			fmt.Fprintln(os.Stderr, "sitload: first error:", s.err)
			break
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Println("wrote", jsonPath)
	}
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", res.Errors, res.Requests)
	}
	return nil
}

func healthcheck(client *http.Client, baseURL string) error {
	resp, err := client.Get(baseURL + "/healthz")
	if err != nil {
		return fmt.Errorf("sitserve not reachable at %s: %w", baseURL, err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("healthz returned %s", resp.Status)
	}
	return nil
}

// one issues a single estimate request and classifies the reply.
func one(client *http.Client, target string) sample {
	t0 := now()
	resp, err := client.Get(target)
	if err != nil {
		return sample{err: err}
	}
	var body struct {
		Cached     bool    `json:"cached"`
		Tier       string  `json:"tier"`
		EstimateUS float64 `json:"estimate_us"`
		Error      string  `json:"error"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&body)
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	ms := float64(now().Sub(t0)) / float64(time.Millisecond)
	switch {
	case resp.StatusCode != http.StatusOK:
		return sample{ms: ms, err: fmt.Errorf("%s: %s %s", target, resp.Status, body.Error)}
	case decErr != nil:
		return sample{ms: ms, err: fmt.Errorf("%s: decoding response: %v", target, decErr)}
	}
	// Pre-tier daemons only report the cached bool; fold it into the tiers.
	tier := body.Tier
	if tier == "" {
		if body.Cached {
			tier = "result-hit"
		} else {
			tier = "cold"
		}
	}
	return sample{ms: ms, serverUS: body.EstimateUS, tier: tier}
}

func summarize(samples []sample, c int, elapsed time.Duration) result {
	// The legacy hit/miss split folds the tiers in two: a "hit" is a
	// result-cache hit, a "miss" is anything that computed (plan-hit or cold).
	var all, hits, misses, hitUS, missUS []float64
	var resultUS, planUS, coldUS []float64
	res := result{Requests: len(samples), Concurrency: c}
	for _, s := range samples {
		if s.err != nil {
			res.Errors++
			continue
		}
		all = append(all, s.ms)
		switch s.tier {
		case "result-hit":
			res.ResultHits++
			hits = append(hits, s.ms)
			hitUS = append(hitUS, s.serverUS)
			resultUS = append(resultUS, s.serverUS)
		case "plan-hit":
			res.PlanHits++
			misses = append(misses, s.ms)
			missUS = append(missUS, s.serverUS)
			planUS = append(planUS, s.serverUS)
		default:
			res.Cold++
			misses = append(misses, s.ms)
			missUS = append(missUS, s.serverUS)
			coldUS = append(coldUS, s.serverUS)
		}
	}
	res.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	if res.ElapsedMS > 0 {
		res.Throughput = float64(len(all)) / (res.ElapsedMS / 1000)
	}
	if len(all) > 0 {
		res.HitRatio = float64(len(hits)) / float64(len(all))
	}
	res.P50MS, res.P99MS = percentile(all, 50), percentile(all, 99)
	res.HitP50MS, res.HitP99MS = percentile(hits, 50), percentile(hits, 99)
	res.MissP50MS, res.MissP99MS = percentile(misses, 50), percentile(misses, 99)
	res.HitComputeP50US, res.HitComputeP99US = percentile(hitUS, 50), percentile(hitUS, 99)
	res.MissComputeP50US, res.MissComputeP99US = percentile(missUS, 50), percentile(missUS, 99)
	if res.HitComputeP50US > 0 {
		res.ComputeSpeedup = res.MissComputeP50US / res.HitComputeP50US
	}
	res.ResultHitP50US, res.ResultHitP99US = percentile(resultUS, 50), percentile(resultUS, 99)
	res.PlanHitP50US, res.PlanHitP99US = percentile(planUS, 50), percentile(planUS, 99)
	res.ColdP50US, res.ColdP99US = percentile(coldUS, 50), percentile(coldUS, 99)
	if res.PlanHitP50US > 0 {
		res.PlanSpeedup = res.ColdP50US / res.PlanHitP50US
	}
	return res
}

// percentile returns the p-th percentile (nearest-rank) of the values, or 0
// for an empty set.
func percentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}
