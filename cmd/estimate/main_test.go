package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParsePreds(t *testing.T) {
	preds, err := parsePreds("T2.a:1:100, T2.b:5:6")
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 || preds[0].Table != "T2" || preds[0].Attr != "a" || preds[0].Lo != 1 || preds[0].Hi != 100 {
		t.Errorf("preds = %+v", preds)
	}
	if got, err := parsePreds("  "); err != nil || got != nil {
		t.Errorf("empty preds = %v, %v", got, err)
	}
	for _, bad := range []string{"T2.a:1", "noattr:1:2", "T2.a:x:2", "T2.a:1:y", "T2.:1:2"} {
		if _, err := parsePreds(bad); err == nil {
			t.Errorf("parsePreds(%q): want error", bad)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	statsFile := filepath.Join(dir, "stats.json")
	// Build + estimate + save.
	err := run("T1 JOIN T2 ON T1.jnext = T2.jprev", "T2.a:1:100",
		"T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev", "sweepfull", "", statsFile, "", "", true, 0, 0, "0", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(statsFile); err != nil {
		t.Fatalf("stats file not written: %v", err)
	}
	// Load the saved SITs and estimate again.
	err = run("T1 JOIN T2 ON T1.jnext = T2.jprev", "T2.a:1:100", "", "sweep", statsFile, "", "", "", false, 0, 0, "0", true, 1)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", "sweep", "", "", "", "", false, 0, 0, "0", true, 1); err == nil {
		t.Error("missing query: want error")
	}
	if err := run("not a query ON", "", "", "sweep", "", "", "", "", false, 0, 0, "0", true, 1); err == nil {
		t.Error("bad query: want error")
	}
	if err := run("T1 JOIN T2 ON T1.jnext = T2.jprev", "bad", "", "sweep", "", "", "", "", false, 0, 0, "0", true, 1); err == nil {
		t.Error("bad predicate: want error")
	}
	if err := run("T1 JOIN T2 ON T1.jnext = T2.jprev", "", "zz", "sweep", "", "", "", "", false, 0, 0, "0", true, 1); err == nil {
		t.Error("bad build spec: want error")
	}
	if err := run("T1 JOIN T2 ON T1.jnext = T2.jprev", "", "T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev", "bogus", "", "", "", "", false, 0, 0, "0", true, 1); err == nil {
		t.Error("bad method: want error")
	}
	if err := run("T1 JOIN T2 ON T1.jnext = T2.jprev", "", "", "sweep", "/no/such/file.json", "", "", "", false, 0, 0, "0", true, 1); err == nil {
		t.Error("missing sits file: want error")
	}
	if err := run("T1 JOIN T2 ON T1.jnext = T2.jprev", "T2.a:1:2,T2.b:1:2", "", "sweep", "", "", "", "", true, 0, 0, "0", true, 1); err == nil {
		t.Error("-truth with two predicates: want error")
	}
}
