// Command estimate runs the SIT-aware cardinality estimator (Section 2.2's
// optimizer integration) over an SPJ query:
//
//	estimate -query "T1 JOIN T2 ON T1.jnext = T2.jprev" -pred "T2.a:1:100" \
//	         [-build "T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev"] [-method sweep] \
//	         [-sits stats.json] [-save stats.json] [-csv dir] [-truth]
//
// Predicates are "Table.attr:lo:hi", comma-separated. With -build, the named
// SITs are created first and registered; with -sits, previously saved SITs
// are loaded and registered. -truth additionally executes the query for the
// exact answer. Without -csv the synthetic chain database is generated.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/sitstats/sits"
)

func main() {
	var (
		queryStr = flag.String("query", "", "join expression, e.g. \"T1 JOIN T2 ON T1.jnext = T2.jprev\" (required)")
		predStr  = flag.String("pred", "", "range predicates \"T.a:lo:hi[,T.b:lo:hi...]\"")
		builds   = flag.String("build", "", "semicolon-separated SIT specs to create and register first")
		method   = flag.String("method", "sweep", "creation method for -build")
		sitsFile = flag.String("sits", "", "load previously saved SITs from this JSON file")
		saveFile = flag.String("save", "", "save all built/loaded SITs to this JSON file")
		csvDir   = flag.String("csv", "", "directory of <table>.csv files; default: generated chain database")
		segDir   = flag.String("segments", "", "directory of <table>.seg segment files; tables stream off disk block by block instead of loading into memory")
		truth    = flag.Bool("truth", false, "also execute the query for the exact cardinality")
		parallel = flag.Int("parallel", 0, "width of the shared exec worker pool for -build scans and query pipelines (0 = all CPUs, 1 = serial; output is bit-identical at every width)")
		batch    = flag.Int("batch", 0, "executor rows per batch (0 = adaptive from plan width)")
		memFlag  = flag.String("mem-budget", "0", "executor memory budget, e.g. 512M or 2G (0 = unlimited); joins and sorts spill beyond it")
		spillOn  = flag.Bool("spill-compress", true, "spill block-compressed SRN2 runs; =false spills raw SRN1 (same results, more spill bytes)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*queryStr, *predStr, *builds, *method, *sitsFile, *saveFile, *csvDir, *segDir, *truth, *parallel, *batch, *memFlag, *spillOn, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "estimate:", err)
		os.Exit(1)
	}
}

func run(queryStr, predStr, builds, methodName, sitsFile, saveFile, csvDir, segDir string, truth bool, parallel, batch int, memFlag string, spillCompress bool, seed int64) error {
	if queryStr == "" {
		return fmt.Errorf("missing -query")
	}
	expr, err := sits.ParseExpr(queryStr)
	if err != nil {
		return err
	}
	preds, err := parsePreds(predStr)
	if err != nil {
		return err
	}
	cat, err := loadCatalog(csvDir, segDir, expr)
	if err != nil {
		return err
	}
	cfg := sits.DefaultConfig()
	cfg.Seed = seed
	cfg.Parallelism = parallel
	cfg.BatchSize = batch
	cfg.SpillCompress = spillCompress
	cfg.MemBudget, err = sits.ParseMemBudget(memFlag)
	if err != nil {
		return err
	}
	builder, err := sits.NewBuilder(cat, cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := builder.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "estimate: closing spill store:", cerr)
		}
	}()
	est, err := sits.NewEstimator(builder)
	if err != nil {
		return err
	}
	var registered []*sits.SIT
	if sitsFile != "" {
		f, err := os.Open(sitsFile)
		if err != nil {
			return err
		}
		loaded, err := sits.LoadSITs(f)
		_ = f.Close()
		if err != nil {
			return err
		}
		if err := builder.AdoptCached(loaded); err != nil {
			return err
		}
		for _, s := range loaded {
			if err := est.Register(s); err != nil {
				return err
			}
		}
		registered = append(registered, loaded...)
		fmt.Printf("loaded %d SIT(s) from %s\n", len(loaded), sitsFile)
	}
	if builds != "" {
		m, err := parseMethod(methodName)
		if err != nil {
			return err
		}
		for _, specText := range strings.Split(builds, ";") {
			spec, err := sits.ParseSIT(strings.TrimSpace(specText))
			if err != nil {
				return err
			}
			s, err := builder.Build(spec, m)
			if err != nil {
				return err
			}
			if err := est.Register(s); err != nil {
				return err
			}
			registered = append(registered, s)
			fmt.Printf("built and registered %s (%s)\n", spec.String(), m)
		}
	}
	res, err := est.Estimate(sits.SPJQuery{Expr: expr, Preds: preds})
	if err != nil {
		return err
	}
	fmt.Printf("\nestimated cardinality: %.1f\n", res.Cardinality)
	fmt.Printf("join cardinality:      %.1f (from %s)\n", res.JoinCard, res.JoinStat)
	for _, src := range res.Sources {
		fmt.Printf("  %-30s selectivity %.4f from %s\n", src.Pred.String(), src.Selectivity, src.Stat)
	}
	if truth {
		card, err := exactCardinality(cat, expr, preds)
		if err != nil {
			return err
		}
		fmt.Printf("true cardinality:      %d\n", card)
	}
	if saveFile != "" {
		f, err := os.Create(saveFile)
		if err != nil {
			return err
		}
		if err := sits.SaveSITs(f, registered); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved %d SIT(s) to %s\n", len(registered), saveFile)
	}
	return nil
}

// exactCardinality executes the query with every predicate applied.
func exactCardinality(cat *sits.Catalog, expr *sits.Expr, preds []sits.Predicate) (int64, error) {
	if len(preds) == 0 {
		return sits.TrueCardinality(cat, expr)
	}
	// Apply the first predicate through GroundTruth; additional predicates
	// need full row filtering, which the facade exposes only one attribute at
	// a time — fall back to intersect counts conservatively for the CLI.
	if len(preds) == 1 {
		truth, err := sits.GroundTruth(cat, expr, preds[0].Table, preds[0].Attr)
		if err != nil {
			return 0, err
		}
		return truth.Count(sits.RangeQuery{Lo: preds[0].Lo, Hi: preds[0].Hi}), nil
	}
	return 0, fmt.Errorf("-truth supports at most one predicate")
}

func parsePreds(s string) ([]sits.Predicate, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []sits.Predicate
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("bad predicate %q (want T.a:lo:hi)", part)
		}
		ta := strings.Split(fields[0], ".")
		if len(ta) != 2 || ta[0] == "" || ta[1] == "" {
			return nil, fmt.Errorf("bad predicate attribute %q", fields[0])
		}
		lo, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad predicate bound %q: %v", fields[1], err)
		}
		hi, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad predicate bound %q: %v", fields[2], err)
		}
		out = append(out, sits.Predicate{Table: ta[0], Attr: ta[1], Lo: lo, Hi: hi})
	}
	return out, nil
}

func parseMethod(name string) (sits.Method, error) {
	switch strings.ToLower(name) {
	case "histsit", "hist-sit":
		return sits.HistSIT, nil
	case "sweep":
		return sits.Sweep, nil
	case "sweepindex":
		return sits.SweepIndex, nil
	case "sweepfull":
		return sits.SweepFull, nil
	case "sweepexact":
		return sits.SweepExact, nil
	case "materialize":
		return sits.Materialize, nil
	default:
		return 0, fmt.Errorf("unknown method %q", name)
	}
}

// loadCatalog loads the query's tables through the shared -csv/-segments
// path, or generates the synthetic chain database when neither is given.
func loadCatalog(csvDir, segDir string, expr *sits.Expr) (*sits.Catalog, error) {
	if csvDir == "" && segDir == "" {
		return sits.GenerateChainDB(sits.DefaultChainConfig())
	}
	return sits.LoadCatalog(csvDir, segDir, expr.Tables())
}
