package main

import (
	"path/filepath"
	"testing"

	"github.com/sitstats/sits"
)

func TestParseMethod(t *testing.T) {
	cases := map[string]sits.Method{
		"histsit":     sits.HistSIT,
		"Hist-SIT":    sits.HistSIT,
		"sweep":       sits.Sweep,
		"SWEEPINDEX":  sits.SweepIndex,
		"sweepfull":   sits.SweepFull,
		"sweepexact":  sits.SweepExact,
		"materialize": sits.Materialize,
	}
	for name, want := range cases {
		got, err := parseMethod(name)
		if err != nil || got != want {
			t.Errorf("parseMethod(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := parseMethod("bogus"); err == nil {
		t.Error("unknown method: want error")
	}
}

func TestRunOnGeneratedData(t *testing.T) {
	err := run("T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev", "sweep", 50, 0.1, "", "", true, 100, 0, 0, "0", true, 1)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "sweep", 50, 0.1, "", "", false, 10, 0, 0, "0", true, 1); err == nil {
		t.Error("missing spec: want error")
	}
	if err := run("not a spec", "sweep", 50, 0.1, "", "", false, 10, 0, 0, "0", true, 1); err == nil {
		t.Error("bad spec: want error")
	}
	if err := run("T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev", "bogus", 50, 0.1, "", "", false, 10, 0, 0, "0", true, 1); err == nil {
		t.Error("bad method: want error")
	}
	if err := run("T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev", "sweep", 50, 0.1, "/nonexistent", "", false, 10, 0, 0, "0", true, 1); err == nil {
		t.Error("missing CSV dir: want error")
	}
}

func TestRunOnCSV(t *testing.T) {
	dir := t.TempDir()
	r, err := sits.NewTable("R", "x")
	if err != nil {
		t.Fatal(err)
	}
	s, err := sits.NewTable("S", "y", "a")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 200; i++ {
		r.AppendRow(i % 20)
		s.AppendRow(i%20, i%50)
	}
	if err := sits.WriteCSVFile(r, filepath.Join(dir, "R.csv")); err != nil {
		t.Fatal(err)
	}
	if err := sits.WriteCSVFile(s, filepath.Join(dir, "S.csv")); err != nil {
		t.Fatal(err)
	}
	if err := run("S.a | R JOIN S ON R.x = S.y", "sweepexact", 100, 0.1, dir, "", true, 100, 0, 0, "0", true, 1); err != nil {
		t.Fatal(err)
	}
}
