// Command sitcreate builds a SIT over a database from a textual spec and
// reports its histogram and accuracy:
//
//	sitcreate -sit "T4.a | T1 JOIN T2 ON T1.jnext = T2.jprev ..." \
//	          [-method sweep] [-buckets 100] [-rate 0.1] [-csv dir] [-verify]
//
// With -csv the database is loaded from <dir>/<table>.csv files (header row,
// int64 fields); without it the paper's synthetic chain database is
// generated, whose tables are T1..T4 with join columns jnext/jprev and
// payload columns a, b, c.
//
// With -verify the generating query is also executed and the SIT's range
// estimates are scored against the true result distribution.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/sitstats/sits"
)

func main() {
	var (
		sitSpec  = flag.String("sit", "", "SIT spec, e.g. \"S.a | R JOIN S ON R.x = S.y\" (required)")
		method   = flag.String("method", "sweep", "histsit | sweep | sweepindex | sweepfull | sweepexact | materialize")
		buckets  = flag.Int("buckets", 100, "histogram buckets")
		rate     = flag.Float64("rate", 0.10, "sampling rate for sweep/sweepindex")
		csvDir   = flag.String("csv", "", "directory of <table>.csv files; default: generated chain database")
		segDir   = flag.String("segments", "", "directory of <table>.seg segment files; tables stream off disk block by block instead of loading into memory")
		verify   = flag.Bool("verify", false, "execute the generating query and score the SIT's accuracy")
		queries  = flag.Int("queries", 1000, "range queries used by -verify")
		parallel = flag.Int("parallel", 0, "width of the shared exec worker pool for scans and query pipelines (0 = all CPUs, 1 = serial; output is bit-identical at every width)")
		batch    = flag.Int("batch", 0, "executor rows per batch (0 = adaptive from plan width)")
		memFlag  = flag.String("mem-budget", "0", "executor memory budget, e.g. 512M or 2G (0 = unlimited); joins and sorts spill beyond it")
		spillOn  = flag.Bool("spill-compress", true, "spill block-compressed SRN2 runs; =false spills raw SRN1 (same results, more spill bytes)")
		seed     = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*sitSpec, *method, *buckets, *rate, *csvDir, *segDir, *verify, *queries, *parallel, *batch, *memFlag, *spillOn, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "sitcreate:", err)
		os.Exit(1)
	}
}

func run(sitSpec, methodName string, buckets int, rate float64, csvDir, segDir string, verify bool, queries, parallel, batch int, memFlag string, spillCompress bool, seed int64) error {
	if sitSpec == "" {
		return fmt.Errorf("missing -sit (e.g. -sit \"T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev\")")
	}
	spec, err := sits.ParseSIT(sitSpec)
	if err != nil {
		return err
	}
	method, err := parseMethod(methodName)
	if err != nil {
		return err
	}
	cat, err := loadCatalog(csvDir, segDir, spec)
	if err != nil {
		return err
	}
	cfg := sits.DefaultConfig()
	cfg.Buckets = buckets
	cfg.SampleRate = rate
	cfg.Seed = seed
	cfg.Parallelism = parallel
	cfg.BatchSize = batch
	cfg.SpillCompress = spillCompress
	cfg.MemBudget, err = sits.ParseMemBudget(memFlag)
	if err != nil {
		return err
	}
	b, err := sits.NewBuilder(cat, cfg)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := b.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "sitcreate: closing spill store:", cerr)
		}
	}()
	start := time.Now() //statcheck:ignore rawrand wall-clock timing column, not part of the result
	s, err := b.Build(spec, method)
	if err != nil {
		return err
	}
	elapsed := time.Since(start) //statcheck:ignore rawrand wall-clock timing column, not part of the result
	fmt.Printf("built %s with %s in %v\n", spec.String(), method, elapsed.Round(time.Microsecond))
	if gov := b.Governor(); gov != nil {
		line := fmt.Sprintf("memory: peak %d of %d budget bytes", gov.Peak(), gov.Budget())
		if store, rerr := gov.Runs(); rerr == nil {
			if st := store.Stats(); st.SpilledBytes > 0 {
				line += fmt.Sprintf(", spilled %d bytes (%.2fx raw)", st.SpilledBytes, st.Ratio())
			}
		}
		fmt.Println(line)
	}
	fmt.Printf("estimated result cardinality: %.0f\n", s.EstimatedCard)
	fmt.Printf("histogram: %v\n", s.Hist)
	if !verify {
		return nil
	}
	truth, err := sits.GroundTruth(cat, spec.Expr, spec.Table, spec.Attr)
	if err != nil {
		return err
	}
	lo, ok := truth.Min()
	if !ok {
		fmt.Println("generating query result is empty; nothing to verify")
		return nil
	}
	hi, _ := truth.Max()
	qs, err := sits.RandomRangeQueries(seed, lo, hi, queries)
	if err != nil {
		return err
	}
	acc, err := sits.EvaluateAccuracy(s, truth, qs)
	if err != nil {
		return err
	}
	fmt.Printf("true result cardinality:      %d\n", truth.Len())
	fmt.Printf("accuracy over %d range queries: avg relative error %.2f%%, median %.2f%%, max %.2f%%\n",
		acc.Queries, 100*acc.AvgRelError, 100*acc.MedianRelError, 100*acc.MaxRelError)
	return nil
}

func parseMethod(name string) (sits.Method, error) {
	switch strings.ToLower(name) {
	case "histsit", "hist-sit":
		return sits.HistSIT, nil
	case "sweep":
		return sits.Sweep, nil
	case "sweepindex":
		return sits.SweepIndex, nil
	case "sweepfull":
		return sits.SweepFull, nil
	case "sweepexact":
		return sits.SweepExact, nil
	case "materialize":
		return sits.Materialize, nil
	default:
		return 0, fmt.Errorf("unknown method %q", name)
	}
}

// loadCatalog loads the referenced tables — streamed from segment files with
// -segments, loaded from CSV files with -csv — or generates the synthetic
// chain database when neither directory is given.
func loadCatalog(csvDir, segDir string, spec sits.SITSpec) (*sits.Catalog, error) {
	if csvDir == "" && segDir == "" {
		return sits.GenerateChainDB(sits.DefaultChainConfig())
	}
	return sits.LoadCatalog(csvDir, segDir, spec.Expr.Tables())
}
