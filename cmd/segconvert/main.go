// Command segconvert converts tables into the engine's block-compressed
// segment format and inspects existing segment files:
//
//	segconvert -csv T.csv -o T.seg [-name T] [-block 4096] [-raw]
//	segconvert -gen 10000000 -o big.seg [-name S] [-seed 1]
//	segconvert -inspect T.seg
//
// -csv streams a CSV file (header row, int64 fields) into a segment without
// ever materializing the table: peak memory is one parse batch plus one
// pending row group, whatever the row count. -gen writes a deterministic
// synthetic table (columns id, dim, val) of the given size the same way —
// handy for exercising out-of-core scans without shipping gigabytes of CSV.
// -inspect prints a segment's footer: schema, row groups, per-column
// min/max, and the on-disk compression ratio.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/exec"
)

func main() {
	var (
		csvPath = flag.String("csv", "", "CSV file to convert (header row, one int64 per column)")
		gen     = flag.Int64("gen", 0, "generate a synthetic table with this many rows instead of reading CSV")
		inspect = flag.String("inspect", "", "print the footer and stats of an existing segment file")
		out     = flag.String("o", "", "output segment path (required with -csv or -gen)")
		name    = flag.String("name", "", "table name stored in the segment (default: input file base name, or S for -gen)")
		block   = flag.Int("block", 0, "rows per block (0 = default; the scan chunk grid is fastest at the default)")
		raw     = flag.Bool("raw", false, "store blocks uncompressed (encoding is still chosen per block otherwise)")
		seed    = flag.Int64("seed", 1, "seed for -gen")
	)
	flag.Parse()
	if err := run(*csvPath, *gen, *inspect, *out, *name, *block, *raw, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "segconvert:", err)
		os.Exit(1)
	}
}

func run(csvPath string, gen int64, inspect, out, name string, block int, raw bool, seed int64) error {
	switch {
	case inspect != "":
		return inspectSegment(inspect)
	case csvPath != "" && gen > 0:
		return fmt.Errorf("-csv and -gen are mutually exclusive")
	case csvPath == "" && gen <= 0:
		return fmt.Errorf("nothing to do: pass -csv, -gen, or -inspect")
	case out == "":
		return fmt.Errorf("missing -o output path")
	}
	if csvPath != "" {
		if name == "" {
			name = strings.TrimSuffix(filepath.Base(csvPath), filepath.Ext(csvPath))
		}
		return convertCSV(csvPath, out, name, block, raw)
	}
	if name == "" {
		name = "S"
	}
	return generate(out, name, gen, block, raw, seed)
}

// newWriter creates a segment writer with the shared exec pool driving the
// per-column block encodes.
func newWriter(out, name string, columns []string, block int, raw bool) (*data.SegmentWriter, error) {
	w, err := data.CreateSegment(out, name, columns)
	if err != nil {
		return nil, err
	}
	w.SetBlockRows(block)
	w.SetForceRaw(raw)
	w.SetFork(exec.Default().ForkJoin)
	return w, nil
}

func convertCSV(csvPath, out, name string, block int, raw bool) error {
	f, err := os.Open(csvPath)
	if err != nil {
		return err
	}
	defer f.Close() //statcheck:ignore droppederr read-only file, close errors carry no data loss

	// Peek the header to learn the schema, then rewind and stream.
	header, err := csvHeader(f)
	if err != nil {
		return err
	}
	if _, err := f.Seek(0, 0); err != nil {
		return err
	}
	w, err := newWriter(out, name, header, block, raw)
	if err != nil {
		return err
	}
	rows, err := data.StreamCSVToSegment(name, f, w)
	if err != nil {
		return err
	}
	if err := w.Finish(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: table %q, %d rows, %d columns\n", out, name, rows, len(header))
	return inspectSegment(out)
}

// csvHeader reads just the first CSV record of f.
func csvHeader(f *os.File) ([]string, error) {
	rec, err := csv.NewReader(f).Read()
	if err != nil {
		return nil, fmt.Errorf("reading CSV header: %w", err)
	}
	return rec, nil
}

// generate streams a deterministic synthetic table into a segment: id is a
// sorted sequence (delta-friendly), dim cycles over a small domain
// (const/delta-friendly), and val is a seeded xorshift stream (incompressible
// — keeps raw-block coverage honest).
func generate(out, name string, rows int64, block int, raw bool, seed int64) error {
	w, err := newWriter(out, name, []string{"id", "dim", "val"}, block, raw)
	if err != nil {
		return err
	}
	const batch = 8192
	cols := [][]int64{
		make([]int64, 0, batch),
		make([]int64, 0, batch),
		make([]int64, 0, batch),
	}
	x := uint64(seed)*2862933555777941757 + 3037000493
	for i := int64(0); i < rows; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		cols[0] = append(cols[0], i*2)
		cols[1] = append(cols[1], (i/1000)%7)
		cols[2] = append(cols[2], int64(x%1_000_000))
		if len(cols[0]) == batch {
			if err := w.Append(cols); err != nil {
				return err
			}
			for c := range cols {
				cols[c] = cols[c][:0]
			}
		}
	}
	if len(cols[0]) > 0 {
		if err := w.Append(cols); err != nil {
			return err
		}
	}
	if err := w.Finish(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: table %q, %d rows, 3 columns\n", out, name, rows)
	return inspectSegment(out)
}

func inspectSegment(path string) error {
	s, err := data.OpenSegment(path)
	if err != nil {
		return err
	}
	defer s.Close() //statcheck:ignore droppederr read-only file, close errors carry no data loss
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	rawBytes := s.NumRows() * int64(len(s.ColumnNames())) * 8
	fmt.Printf("segment %s\n", path)
	fmt.Printf("  table      %s\n", s.Name())
	fmt.Printf("  rows       %d\n", s.NumRows())
	fmt.Printf("  groups     %d x %d rows\n", s.NumGroups(), s.BlockRows())
	fmt.Printf("  file       %d bytes (blocks %d, raw equivalent %d, ratio %.3f)\n",
		info.Size(), s.DataBytes(), rawBytes, ratio(s.DataBytes(), rawBytes))
	for _, c := range s.ColumnNames() {
		lo, hi, ok, err := s.ColumnMinMax(c)
		if err != nil {
			return err
		}
		if !ok {
			fmt.Printf("  column %-10s (empty)\n", c)
			continue
		}
		fmt.Printf("  column %-10s min %d  max %d\n", c, lo, hi)
	}
	return nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
