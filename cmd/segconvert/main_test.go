package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/sitstats/sits/internal/data"
)

func TestConvertCSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "T.csv")
	body := "a,b\n1,10\n2,20\n3,-30\n"
	if err := os.WriteFile(csvPath, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, "T.seg")
	if err := run(csvPath, 0, "", segPath, "", 0, false, 1); err != nil {
		t.Fatal(err)
	}
	tab, err := data.OpenSegmentTable(segPath)
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	if tab.Name() != "T" {
		t.Fatalf("table name %q, want T (from the file base name)", tab.Name())
	}
	a, err := tab.Column("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := tab.Column("b")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, []int64{1, 2, 3}) || !reflect.DeepEqual(b, []int64{10, 20, -30}) {
		t.Fatalf("round-tripped columns a=%v b=%v", a, b)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	dir := t.TempDir()
	p1 := filepath.Join(dir, "a.seg")
	p2 := filepath.Join(dir, "b.seg")
	for _, p := range []string{p1, p2} {
		if err := run("", 10_000, "", p, "S", 0, false, 7); err != nil {
			t.Fatal(err)
		}
	}
	b1, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(p2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b2) {
		t.Fatal("two -gen runs with the same seed produced different files")
	}
	if err := run("", 0, p1, "", "", 0, false, 1); err != nil {
		t.Fatalf("inspect: %v", err)
	}
}

func TestRunFlagValidation(t *testing.T) {
	if err := run("x.csv", 5, "", "out", "", 0, false, 1); err == nil {
		t.Fatal("want error for -csv with -gen")
	}
	if err := run("", 0, "", "", "", 0, false, 1); err == nil {
		t.Fatal("want error for no action")
	}
	if err := run("", 5, "", "", "", 0, false, 1); err == nil {
		t.Fatal("want error for missing -o")
	}
}
