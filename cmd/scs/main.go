// Command scs solves (weighted) Shortest Common Supersequence instances from
// the command line — the combinatorial core of the paper's multi-SIT
// scheduler (Section 4):
//
//	scs abdc bca                 # classic SCS over single-letter symbols
//	scs -sep , T1,T2,T3 T2,T4    # comma-separated symbols
//	scs -cost a=1,b=5 ab ba      # weighted symbols
//	scs -dijkstra ...            # disable the A* heuristic
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/sitstats/sits/internal/scs"
)

func main() {
	var (
		sep      = flag.String("sep", "", "symbol separator within each sequence; empty means one letter per symbol")
		costSpec = flag.String("cost", "", "symbol costs, e.g. \"a=1,b=5\"; default unit costs")
		dijkstra = flag.Bool("dijkstra", false, "disable the A* heuristic")
	)
	flag.Parse()
	if err := run(flag.Args(), *sep, *costSpec, *dijkstra); err != nil {
		fmt.Fprintln(os.Stderr, "scs:", err)
		os.Exit(1)
	}
}

func run(args []string, sep, costSpec string, dijkstra bool) error {
	if len(args) == 0 {
		return fmt.Errorf("no sequences given")
	}
	seqs := make([][]string, len(args))
	for i, a := range args {
		if sep == "" {
			for _, r := range a {
				seqs[i] = append(seqs[i], string(r))
			}
		} else {
			seqs[i] = strings.Split(a, sep)
		}
	}
	opts := scs.Options{DisableHeuristic: dijkstra}
	if costSpec != "" {
		opts.Cost = map[string]float64{}
		for _, part := range strings.Split(costSpec, ",") {
			kv := strings.SplitN(part, "=", 2)
			if len(kv) != 2 {
				return fmt.Errorf("bad cost entry %q", part)
			}
			w, err := strconv.ParseFloat(kv[1], 64)
			if err != nil {
				return fmt.Errorf("bad cost entry %q: %v", part, err)
			}
			opts.Cost[kv[0]] = w
		}
	}
	res, err := scs.Solve(seqs, opts)
	if err != nil {
		return err
	}
	joiner := sep
	if joiner == "" {
		joiner = ""
	}
	fmt.Printf("supersequence: %s\n", strings.Join(res.Sequence, joiner))
	fmt.Printf("cost:          %g\n", res.Cost)
	fmt.Printf("length:        %d\n", len(res.Sequence))
	fmt.Printf("expanded:      %d states (%d generated)\n", res.Stats.Expanded, res.Stats.Generated)
	return nil
}
