package main

import "testing"

func TestRunBasic(t *testing.T) {
	if err := run([]string{"abdc", "bca"}, "", "", false); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"abdc", "bca"}, "", "", true); err != nil {
		t.Fatal(err)
	}
}

func TestRunSeparator(t *testing.T) {
	if err := run([]string{"T1,T2,T3", "T2,T4"}, ",", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWeighted(t *testing.T) {
	if err := run([]string{"ab", "ba"}, "", "a=1,b=5", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, "", "", false); err == nil {
		t.Error("no sequences: want error")
	}
	if err := run([]string{"ab"}, "", "a=x", false); err == nil {
		t.Error("bad cost value: want error")
	}
	if err := run([]string{"ab"}, "", "nocost", false); err == nil {
		t.Error("bad cost entry: want error")
	}
	if err := run([]string{"ab"}, "", "a=1", false); err == nil {
		t.Error("missing symbol cost: want error")
	}
}
