// Facade tests: exercise the public API end to end, the way a downstream
// user would. The implementation details are tested in internal/...; these
// tests pin the public surface and the cross-package user journeys.
package sits_test

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"github.com/sitstats/sits"
)

func smallChain(t *testing.T) *sits.Catalog {
	t.Helper()
	cfg := sits.DefaultChainConfig()
	cfg.Rows = []int{600, 500, 400, 300}
	cat, err := sits.GenerateChainDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func TestFacadeBuildAndEstimate(t *testing.T) {
	cat := smallChain(t)
	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sits.ParseSIT("T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range sits.Methods() {
		s, err := builder.Build(spec, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if s.EstimatedCard <= 0 {
			t.Errorf("%v: non-positive cardinality", m)
		}
		if got := s.EstimateRange(math.MinInt32, math.MaxInt32); math.Abs(got-s.Hist.TotalFreq()) > 1e-6 {
			t.Errorf("%v: full-range estimate %v != total %v", m, got, s.Hist.TotalFreq())
		}
	}
}

func TestFacadeGroundTruthAndAccuracy(t *testing.T) {
	cat := smallChain(t)
	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec, err := sits.ParseSIT("T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev")
	if err != nil {
		t.Fatal(err)
	}
	truth, err := sits.GroundTruth(cat, spec.Expr, spec.Table, spec.Attr)
	if err != nil {
		t.Fatal(err)
	}
	card, err := sits.TrueCardinality(cat, spec.Expr)
	if err != nil {
		t.Fatal(err)
	}
	if int64(truth.Len()) != card {
		t.Errorf("GroundTruth length %d != TrueCardinality %d", truth.Len(), card)
	}
	lo, _ := truth.Min()
	hi, _ := truth.Max()
	qs, err := sits.RandomRangeQueries(3, lo, hi, 200)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := builder.Build(spec, sits.Materialize)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sits.EvaluateAccuracy(exact, truth, qs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 200 {
		t.Errorf("Queries = %d", res.Queries)
	}
	sweep, err := builder.Build(spec, sits.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sits.EvaluateAccuracy(sweep, truth, qs)
	if err != nil {
		t.Fatal(err)
	}
	if sres.AvgRelError < res.AvgRelError-1e-9 && res.AvgRelError > 0.01 {
		t.Logf("sweep (%.4f) beat materialize (%.4f) on this seed — acceptable", sres.AvgRelError, res.AvgRelError)
	}
}

func TestFacadeSchedulingJourney(t *testing.T) {
	cat := smallChain(t)
	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	specs := []string{
		"T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev",
		"T3.a | T1 JOIN T2 ON T1.jnext = T2.jprev JOIN T3 ON T2.jnext = T3.jprev",
	}
	var tasks []sits.SITTask
	for _, s := range specs {
		spec, err := sits.ParseSIT(s)
		if err != nil {
			t.Fatal(err)
		}
		task, err := sits.NewSITTask(spec)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	env := sits.ScheduleEnv{Cost: map[string]float64{}, SampleSize: map[string]float64{}, Memory: 200}
	for _, n := range cat.Names() {
		tab, _ := cat.Table(n)
		env.Cost[n] = float64(tab.NumRows()) / 1000
		env.SampleSize[n] = 0.1 * float64(tab.NumRows())
	}
	abstract := sits.ScheduleTasks(tasks)
	opt, _, err := sits.OptSchedule(abstract, env)
	if err != nil {
		t.Fatal(err)
	}
	if err := sits.ValidateSchedule(opt, abstract, env); err != nil {
		t.Fatal(err)
	}
	greedy, _, err := sits.GreedySchedule(abstract, env)
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Cost < opt.Cost-1e-9 {
		t.Errorf("greedy (%v) beat opt (%v)", greedy.Cost, opt.Cost)
	}
	hybrid, _, err := sits.HybridSchedule(abstract, env, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if hybrid.Cost < opt.Cost-1e-9 {
		t.Errorf("hybrid (%v) beat opt (%v)", hybrid.Cost, opt.Cost)
	}
	naive, err := sits.NaiveSchedule(abstract, env)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Cost < opt.Cost-1e-9 {
		t.Errorf("naive (%v) beat opt (%v)", naive.Cost, opt.Cost)
	}
	built, err := sits.ExecuteSchedule(opt, tasks, builder, sits.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 2 || built[0] == nil || built[1] == nil {
		t.Fatalf("built = %v", built)
	}
}

func TestFacadeEstimatorJourney(t *testing.T) {
	cat := smallChain(t)
	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	est, err := sits.NewEstimator(builder)
	if err != nil {
		t.Fatal(err)
	}
	expr, err := sits.ParseExpr("T1 JOIN T2 ON T1.jnext = T2.jprev")
	if err != nil {
		t.Fatal(err)
	}
	q := sits.SPJQuery{Expr: expr, Preds: []sits.Predicate{{Table: "T2", Attr: "a", Lo: 1, Hi: 500}}}
	before, err := est.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := sits.NewSITSpec("T2", "a", expr)
	s, err := builder.Build(spec, sits.SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Register(s); err != nil {
		t.Fatal(err)
	}
	after, err := est.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.Sources[0].Tables <= before.Sources[0].Tables {
		t.Errorf("registered SIT not used: before %+v after %+v", before.Sources[0], after.Sources[0])
	}
}

func TestFacadeAdvisorJourney(t *testing.T) {
	cat := smallChain(t)
	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	adv, err := sits.NewAdvisor(builder, sits.DefaultAdvisorConfig())
	if err != nil {
		t.Fatal(err)
	}
	expr, err := sits.ParseExpr("T1 JOIN T2 ON T1.jnext = T2.jprev")
	if err != nil {
		t.Fatal(err)
	}
	w := sits.Workload{{Expr: expr, Preds: []sits.Predicate{{Table: "T2", Attr: "a", Lo: 1, Hi: 100}}}}
	cands, err := adv.Candidates(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	sel := sits.SelectCandidates(cands, 1e9)
	if len(sel) != len(cands) {
		t.Errorf("unbounded budget dropped candidates")
	}
	tasks, direct := sits.CreationTasks(sel)
	if len(tasks)+len(direct) != len(sel) {
		t.Errorf("tasks %d + direct %d != selected %d", len(tasks), len(direct), len(sel))
	}
}

func TestFacadeCSVAndHistogram(t *testing.T) {
	cat := smallChain(t)
	tab, err := cat.Table("T1")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "T1.csv")
	if err := sits.WriteCSVFile(tab, path); err != nil {
		t.Fatal(err)
	}
	back, err := sits.ReadCSVFile("T1", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() {
		t.Errorf("rows = %d, want %d", back.NumRows(), tab.NumRows())
	}
	vals, err := back.Column("a")
	if err != nil {
		t.Fatal(err)
	}
	h, err := sits.BuildHistogram(vals, 50, sits.MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.TotalFreq()-float64(len(vals))) > 1e-6 {
		t.Errorf("histogram total = %v", h.TotalFreq())
	}
}
