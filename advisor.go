package sits

import (
	"github.com/sitstats/sits/internal/advisor"
	"github.com/sitstats/sits/internal/cardest"
)

// Advisor proposes which SITs to create for a query workload under a
// creation-cost budget (an extension beyond the paper; see package advisor).
type Advisor = advisor.Advisor

// AdvisorConfig tunes candidate enumeration and scoring.
type AdvisorConfig = advisor.Config

// SITCandidate is one proposed SIT with benefit and creation-cost estimates.
type SITCandidate = advisor.Candidate

// DefaultAdvisorConfig returns the default advisor configuration.
func DefaultAdvisorConfig() AdvisorConfig { return advisor.DefaultConfig() }

// NewAdvisor creates an advisor over the builder's catalog.
func NewAdvisor(b *Builder, cfg AdvisorConfig) (*Advisor, error) { return advisor.New(b, cfg) }

// SelectCandidates greedily picks candidates by benefit density within the
// creation budget.
func SelectCandidates(cands []SITCandidate, budget float64) []SITCandidate {
	return advisor.Select(cands, budget)
}

// CreationTasks converts selected chain-shaped candidates into schedulable
// SIT tasks; bushier candidates are returned for direct builds.
func CreationTasks(selected []SITCandidate) ([]SITTask, []SITSpec) {
	return advisor.CreationTasks(selected)
}

// Workload is a set of SPJ queries driving advisor-based SIT selection.
type Workload = []cardest.SPJQuery
