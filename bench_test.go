// Benchmarks regenerating the paper's evaluation (one family per figure) plus
// ablation benches for the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Figure benches measure the creation/optimization work the paper's figures
// time; the full accuracy/cost tables are printed by cmd/sitbench.
package sits_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/sitstats/sits"
	"github.com/sitstats/sits/internal/btree"
	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/experiments"
	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/sample"
	"github.com/sitstats/sits/internal/sched"
)

// benchCatalog builds the Figure 7 synthetic database once.
var benchCatalog *sits.Catalog

func catalogForBench(b *testing.B) *sits.Catalog {
	b.Helper()
	if benchCatalog == nil {
		cat, err := sits.GenerateChainDB(sits.DefaultChainConfig())
		if err != nil {
			b.Fatal(err)
		}
		benchCatalog = cat
	}
	return benchCatalog
}

func chainSpecForBench(b *testing.B, way int) sits.SITSpec {
	b.Helper()
	tables := make([]string, way)
	outs := make([]string, way-1)
	ins := make([]string, way-1)
	for i := range tables {
		tables[i] = fmt.Sprintf("T%d", i+1)
	}
	for i := range outs {
		outs[i] = "jnext"
		ins[i] = "jprev"
	}
	e, err := sits.ChainExpr(tables, outs, ins)
	if err != nil {
		b.Fatal(err)
	}
	spec, err := sits.NewSITSpec(tables[way-1], "a", e)
	if err != nil {
		b.Fatal(err)
	}
	return spec
}

// benchFigure7 measures SIT creation cost per technique and join width — the
// work behind Figures 7(a)-(c).
func benchFigure7(b *testing.B, way int) {
	cat := catalogForBench(b)
	spec := chainSpecForBench(b, way)
	for _, m := range sits.Methods() {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := sits.DefaultConfig()
				cfg.Seed = int64(i + 1)
				builder, err := sits.NewBuilder(cat, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := builder.Build(spec, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFigure7a2WayCreate(b *testing.B) { benchFigure7(b, 2) }
func BenchmarkFigure7b3WayCreate(b *testing.B) { benchFigure7(b, 3) }
func BenchmarkFigure7c4WayCreate(b *testing.B) { benchFigure7(b, 4) }

// BenchmarkFigure7Accuracy runs the complete accuracy harness (all widths,
// all techniques, 200 queries) once per iteration.
func BenchmarkFigure7Accuracy(b *testing.B) {
	cfg := experiments.DefaultFig7Config()
	cfg.Buckets = []int{100}
	cfg.Queries = 200
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFigure7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSched measures scheduler optimization time on the paper's default
// instance distribution — Figure 8(b)'s quantity.
func benchSched(b *testing.B, numSITs int, tech experiments.TechName) {
	cfg := experiments.DefaultSchedConfig()
	cfg.NumSITs = numSITs
	rng := rand.New(rand.NewSource(42))
	type instance struct {
		tasks []sched.Task
		env   sched.Env
	}
	// Pre-draw instances so the generator is outside the timer.
	instances := make([]instance, 16)
	for i := range instances {
		tasks, env, err := experiments.RandomInstance(rng, cfg)
		if err != nil {
			b.Fatal(err)
		}
		instances[i] = instance{tasks, env}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := instances[i%len(instances)]
		var err error
		switch tech {
		case experiments.TechNaive:
			_, err = sched.Naive(inst.tasks, inst.env)
		case experiments.TechOpt:
			_, _, err = sched.Opt(inst.tasks, inst.env)
		case experiments.TechGreedy:
			_, _, err = sched.Greedy(inst.tasks, inst.env)
		case experiments.TechHybrid:
			_, _, err = sched.Hybrid(inst.tasks, inst.env, time.Second)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8OptimizeNaive10SITs(b *testing.B)  { benchSched(b, 10, experiments.TechNaive) }
func BenchmarkFigure8OptimizeOpt10SITs(b *testing.B)    { benchSched(b, 10, experiments.TechOpt) }
func BenchmarkFigure8OptimizeGreedy10SITs(b *testing.B) { benchSched(b, 10, experiments.TechGreedy) }
func BenchmarkFigure8OptimizeHybrid10SITs(b *testing.B) { benchSched(b, 10, experiments.TechHybrid) }
func BenchmarkFigure8OptimizeOpt14SITs(b *testing.B)    { benchSched(b, 14, experiments.TechOpt) }
func BenchmarkFigure8OptimizeGreedy20SITs(b *testing.B) { benchSched(b, 20, experiments.TechGreedy) }

// BenchmarkFigure9 varies the table count (overlap density).
func BenchmarkFigure9Opt20Tables(b *testing.B) {
	cfg := experiments.DefaultSchedConfig()
	cfg.NumTables = 20
	rng := rand.New(rand.NewSource(43))
	tasks, env, err := experiments.RandomInstance(rng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.Opt(tasks, env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10 varies the memory budget around the feasibility floor.
func BenchmarkFigure10OptTightMemory(b *testing.B) { benchFigure10(b, 1.1) }
func BenchmarkFigure10Optics3xMemory(b *testing.B) { benchFigure10(b, 3) }
func BenchmarkFigure10OptAmpleMemory(b *testing.B) { benchFigure10(b, 10) }

func benchFigure10(b *testing.B, memFactor float64) {
	cfg := experiments.DefaultSchedConfig()
	rng := rand.New(rand.NewSource(44))
	tasks, env, err := experiments.RandomInstance(rng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	env.Memory = experiments.MinFeasibleMemory(env) * memFactor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sched.Opt(tasks, env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices, DESIGN.md Section 6) ---

// BenchmarkAblationHistogram compares construction algorithms on skewed data.
func BenchmarkAblationHistogram(b *testing.B) {
	rng := rand.New(rand.NewSource(45))
	vals, err := datagen.ZipfValues(rng, 200000, 5000, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []histogram.Method{histogram.MaxDiffArea, histogram.MaxDiffFreq, histogram.EquiDepth, histogram.EquiWidth} {
		b.Run(m.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := histogram.FromValues(vals, 100, m); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReservoir compares the stochastic-rounding reservoir with
// the weighted reservoir on a multiplicity-weighted stream.
func BenchmarkAblationReservoir(b *testing.B) {
	const n = 100000
	weights := make([]float64, n)
	rng := rand.New(rand.NewSource(46))
	for i := range weights {
		weights[i] = rng.Float64() * 5
	}
	b.Run("algorithm-r", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := sample.NewReservoir(10000, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < n; j++ {
				r.AddWeighted(int64(j), weights[j])
			}
		}
	})
	b.Run("weighted-a-res", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r, err := sample.NewWeightedReservoir(10000, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < n; j++ {
				r.Add(int64(j), weights[j])
			}
		}
	})
}

// BenchmarkAblationSuccessors compares the dominance-pruned successor
// generation against the paper's literal all-subsets generateSuccessors.
func BenchmarkAblationSuccessors(b *testing.B) {
	cfg := experiments.DefaultSchedConfig()
	cfg.NumSITs = 7
	rng := rand.New(rand.NewSource(47))
	tasks, env, err := experiments.RandomInstance(rng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("maximal-sets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sched.Opt(tasks, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("all-subsets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sched.OptWith(tasks, env, sched.Options{AllSubsets: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationHeuristic compares A* against Dijkstra on the scheduler.
func BenchmarkAblationHeuristic(b *testing.B) {
	cfg := experiments.DefaultSchedConfig()
	cfg.NumSITs = 8
	rng := rand.New(rand.NewSource(48))
	tasks, env, err := experiments.RandomInstance(rng, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("astar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sched.Opt(tasks, env); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := sched.OptWith(tasks, env, sched.Options{DisableHeuristic: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationVOptimal compares the V-Optimal dynamic program with the
// cheap constructions on a moderate domain.
func BenchmarkAblationVOptimal(b *testing.B) {
	rng := rand.New(rand.NewSource(49))
	vals, err := datagen.ZipfValues(rng, 50000, 1000, 1.0)
	if err != nil {
		b.Fatal(err)
	}
	pairs := histogram.Tally(vals)
	b.Run("voptimal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := histogram.FromPairsVOptimal(pairs, 50); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("maxdiff-area", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := histogram.FromPairs(pairs, 50, histogram.MaxDiffArea); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationDistinctEstimators compares GEE, Chao and Jackknife.
func BenchmarkAblationDistinctEstimators(b *testing.B) {
	rng := rand.New(rand.NewSource(50))
	smp := make([]int64, 10000)
	for i := range smp {
		smp[i] = rng.Int63n(3000)
	}
	for _, e := range []sample.DistinctEstimator{sample.GEE, sample.Chao, sample.Jackknife} {
		b.Run(e.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sample.EstimateDistinctWith(e, smp, 100000); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBTreeVsSortedSlice measures the SweepIndex multiplicity lookup
// against a binary-searched sorted slice, the design alternative DESIGN.md
// discusses.
func BenchmarkBTreeLookup(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	vals := make([]int64, 200000)
	for i := range vals {
		vals[i] = rng.Int63n(50000)
	}
	tree := btree.Build(vals)
	probes := make([]int64, 4096)
	for i := range probes {
		probes[i] = rng.Int63n(50000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.Count(probes[i%len(probes)])
	}
}
