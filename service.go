package sits

// This file re-exports the statistics-service layer: the shared memory
// governor, the concurrent SIT catalog (Registry), and the estimate-serving
// cache (Service) that cmd/sitserve wires behind HTTP. The one-shot journey
// (NewBuilder -> Build -> Estimator) stays available for batch use; these
// types are its long-lived concurrent counterpart.

import (
	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/mem"
	"github.com/sitstats/sits/internal/serve"
	"github.com/sitstats/sits/internal/sit"
)

// --- Catalog loading ---

// LoadCatalog loads a catalog from a directory of <name>.csv files (csvDir)
// or <name>.seg segment files (segDir; tables stream off disk block by
// block). Exactly one directory must be non-empty; a nil table list
// discovers every table file in it. This is the shared -csv/-segments flag
// handling of the CLIs.
func LoadCatalog(csvDir, segDir string, tables []string) (*Catalog, error) {
	return data.LoadCatalog(csvDir, segDir, tables)
}

// --- Shared memory governance ---

// Governor is the engine's memory ledger: operators reserve against it and
// spill when denied. Its accounting is safe for concurrent use, so one
// governor can budget every builder, registry, and request of a process;
// inject it through Config.Governor.
type Governor = mem.Governor

// NewGovernor creates a governor with a byte budget (<= 0 = unlimited).
func NewGovernor(budget int64) *Governor { return mem.NewGovernor(budget) }

// --- Concurrent SIT catalog ---

// Registry is the concurrent SIT catalog: lock-free epoch-swapped reads,
// single-flighted builds, background staleness refresh. See sit.Registry.
type Registry = sit.Registry

// RegistryStats is a point-in-time view of a registry for monitoring.
type RegistryStats = sit.RegistryStats

// NewRegistry creates a concurrent SIT catalog over the data catalog.
func NewRegistry(cat *Catalog, cfg Config) (*Registry, error) {
	return sit.NewRegistry(cat, cfg)
}

// --- Estimate serving ---

// Service answers SPJ estimation requests from a registry's served SIT set
// through the three-tier serving pipeline (result cache, plan cache, cold
// estimation); see serve.Service.
type Service = serve.Service

// ServeConfig parameterizes the serving layer: result-cache and plan-cache
// bounds plus the overload shed threshold.
type ServeConfig = serve.Config

// ServeStats is a point-in-time view of the serving layer.
type ServeStats = serve.Stats

// Tier identifies which serving tier answered an estimation request.
type Tier = serve.Tier

// The serving tiers, cheapest first.
const (
	TierCold   = serve.TierCold
	TierPlan   = serve.TierPlan
	TierResult = serve.TierResult
)

// ErrOverloaded is returned by Service.Estimate when a cold request is shed
// under budget pressure instead of queueing on the builder.
var ErrOverloaded = serve.ErrOverloaded

// NewService creates a serving layer over the registry.
func NewService(reg *Registry, cfg ServeConfig) (*Service, error) {
	return serve.NewService(reg, cfg)
}
