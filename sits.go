// Package sits is a from-scratch Go implementation of "Efficient Creation of
// Statistics over Query Expressions" (Bruno and Chaudhuri, ICDE 2003): SITs —
// statistics built on the results of query expressions — together with the
// Sweep family of creation techniques and the SCS-based scheduler that
// creates many SITs with shared sequential scans.
//
// The package is a facade over the implementation packages in internal/; it
// exposes everything a downstream user needs for the full journey:
//
//  1. Load or generate data (Catalog, Table, GenerateChainDB, ReadCSVFile).
//  2. Describe a statistic over a query expression (ParseSIT, NewSITSpec).
//  3. Create it with a chosen accuracy/efficiency trade-off
//     (NewBuilder, Build with Sweep / SweepIndex / SweepFull / SweepExact,
//     or the Hist-SIT propagation baseline).
//  4. Use it for cardinality estimation (Estimator).
//  5. Create many SITs at once under a memory budget with shared scans
//     (ScheduleTasks, Opt / Greedy / Hybrid / Naive, ExecuteSchedule).
//
// See the examples directory for runnable walkthroughs and DESIGN.md /
// EXPERIMENTS.md for the mapping to the paper's sections and figures.
package sits

import (
	"time"

	"github.com/sitstats/sits/internal/cardest"
	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/exec"
	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/mem"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sched"
	"github.com/sitstats/sits/internal/sit"
	"github.com/sitstats/sits/internal/workload"
)

// --- Data substrate ---

// Table is an in-memory, append-only, column-oriented relation.
type Table = data.Table

// Catalog maps table names to tables.
type Catalog = data.Catalog

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return data.NewCatalog() }

// NewTable creates an empty table with the given column names.
func NewTable(name string, columns ...string) (*Table, error) {
	return data.NewTable(name, columns...)
}

// ReadCSVFile loads a table from a CSV file with a header row and int64
// fields.
func ReadCSVFile(name, path string) (*Table, error) { return data.ReadCSVFile(name, path) }

// WriteCSVFile writes a table as CSV.
func WriteCSVFile(t *Table, path string) error { return data.WriteCSVFile(t, path) }

// --- Out-of-core segments ---

// Segment is a read-only handle on a block-compressed columnar segment file.
type Segment = data.Segment

// SegmentWriter streams rows into a segment file, one row group at a time.
type SegmentWriter = data.SegmentWriter

// CreateSegment opens a segment writer at path for a table with the given
// name and columns.
func CreateSegment(path, name string, columns []string) (*SegmentWriter, error) {
	return data.CreateSegment(path, name, columns)
}

// WriteSegment writes an in-memory table to a segment file at path.
func WriteSegment(path string, t *Table) error { return data.WriteSegment(path, t) }

// OpenSegment opens a segment file, reading only its footer.
func OpenSegment(path string) (*Segment, error) { return data.OpenSegment(path) }

// OpenSegmentTable opens a segment file as a read-only table whose scans
// stream blocks off disk instead of materializing columns; see
// data.OpenSegmentTable.
func OpenSegmentTable(path string) (*Table, error) { return data.OpenSegmentTable(path) }

// --- Synthetic data ---

// ChainConfig parameterizes the paper's chain-join evaluation database.
type ChainConfig = datagen.ChainConfig

// DefaultChainConfig returns the configuration used to regenerate Figure 7.
func DefaultChainConfig() ChainConfig { return datagen.DefaultChainConfig() }

// GenerateChainDB builds the chain-join synthetic database of Section 5.1.
func GenerateChainDB(cfg ChainConfig) (*Catalog, error) { return datagen.ChainDB(cfg) }

// --- Histograms ---

// Histogram is a single-attribute bucket histogram with frequency and
// distinct-value counts per bucket.
type Histogram = histogram.Histogram

// Bucket is one histogram bucket.
type Bucket = histogram.Bucket

// HistogramMethod selects a histogram construction algorithm.
type HistogramMethod = histogram.Method

// Histogram construction algorithms.
const (
	// MaxDiffArea is the paper's MaxDiff variant (default).
	MaxDiffArea = histogram.MaxDiffArea
	// MaxDiffFreq places boundaries at the largest frequency differences.
	MaxDiffFreq = histogram.MaxDiffFreq
	// EquiDepth builds equal-frequency buckets.
	EquiDepth = histogram.EquiDepth
	// EquiWidth builds equal-range buckets.
	EquiWidth = histogram.EquiWidth
)

// BuildHistogram builds a histogram with at most nb buckets over raw values.
func BuildHistogram(vals []int64, nb int, m HistogramMethod) (*Histogram, error) {
	return histogram.FromValues(vals, nb, m)
}

// --- Query expressions and SIT specifications ---

// Expr is a join generating query expression.
type Expr = query.Expr

// JoinPred is one equality join predicate.
type JoinPred = query.JoinPred

// SITSpec names a statistic over a query expression (Definition 1).
type SITSpec = query.SITSpec

// NewExpr builds an expression from join predicates.
func NewExpr(joins ...JoinPred) (*Expr, error) { return query.NewExpr(joins...) }

// NewBaseExpr builds the trivial expression over a single base table.
func NewBaseExpr(table string) (*Expr, error) { return query.NewBaseExpr(table) }

// ChainExpr builds a chain-join expression.
func ChainExpr(tables, outAttrs, inAttrs []string) (*Expr, error) {
	return query.Chain(tables, outAttrs, inAttrs)
}

// NewSITSpec builds a SIT specification, validating that the attribute's
// table appears in the expression.
func NewSITSpec(table, attr string, expr *Expr) (SITSpec, error) {
	return query.NewSITSpec(table, attr, expr)
}

// ParseSIT parses the textual notation "T.a | R JOIN S ON R.x = S.y ...".
func ParseSIT(s string) (SITSpec, error) { return query.ParseSIT(s) }

// ParseExpr parses a join generating expression.
func ParseExpr(s string) (*Expr, error) { return query.ParseExpr(s) }

// --- SIT creation (the paper's core) ---

// SIT is a statistic over a query expression.
type SIT = sit.SIT

// Builder creates SITs over a catalog, caching base histograms, indexes and
// intermediate SITs.
type Builder = sit.Builder

// Config parameterizes a Builder.
type Config = sit.Config

// Method selects a SIT creation technique.
type Method = sit.Method

// The SIT creation techniques of Section 3.
const (
	// HistSIT is the traditional base-histogram propagation baseline.
	HistSIT = sit.HistSIT
	// Sweep is the paper's main technique: one scan, histogram m-Oracle,
	// reservoir sampling.
	Sweep = sit.Sweep
	// SweepIndex uses exact index lookups for multiplicities.
	SweepIndex = sit.SweepIndex
	// SweepFull skips sampling.
	SweepFull = sit.SweepFull
	// SweepExact combines SweepIndex and SweepFull; equals materialization.
	SweepExact = sit.SweepExact
	// Materialize executes the generating query and builds the histogram
	// over the result (ground truth).
	Materialize = sit.Materialize
)

// Methods lists the creation techniques in the paper's comparison order.
func Methods() []Method { return sit.Methods() }

// DefaultConfig returns the paper's experimental defaults (100 buckets,
// MaxDiff histograms, 10% sampling).
func DefaultConfig() Config { return sit.DefaultConfig() }

// NewBuilder creates a Builder over the catalog.
func NewBuilder(cat *Catalog, cfg Config) (*Builder, error) { return sit.NewBuilder(cat, cfg) }

// ParseMemBudget parses a human byte-size string for Config.MemBudget: a
// non-negative integer with an optional binary K/M/G/T suffix ("512M",
// "2GiB"); "0" means unlimited.
func ParseMemBudget(s string) (int64, error) { return mem.ParseBytes(s) }

// --- Cardinality estimation (optimizer integration, Section 2.2) ---

// Estimator estimates SPJ query cardinalities, exploiting registered SITs
// with materialized-view-style matching and falling back to base-histogram
// propagation.
type Estimator = cardest.Estimator

// SPJQuery is a select-project-join query: a join expression plus range
// predicates.
type SPJQuery = cardest.SPJQuery

// Predicate is one inclusive range predicate over an attribute.
type Predicate = cardest.Predicate

// Estimate is a cardinality estimate with provenance.
type Estimate = cardest.Estimate

// NewEstimator creates a cardinality estimator over the builder's catalog.
func NewEstimator(b *Builder) (*Estimator, error) { return cardest.New(b) }

// --- Multi-SIT scheduling (Section 4) ---

// ScheduleTask is one SIT abstracted as its dependency sequence of scans.
type ScheduleTask = sched.Task

// ScheduleEnv is the scheduling cost model: per-table scan costs and sample
// sizes plus the memory budget M.
type ScheduleEnv = sched.Env

// Schedule is an ordered list of shared sequential scans.
type Schedule = sched.Schedule

// ScheduleStats reports solver effort.
type ScheduleStats = sched.Stats

// SITTask binds a schedulable task to a concrete chain SIT.
type SITTask = sched.SITTask

// NewSITTask derives the dependency sequence and per-scan sub-specs of a
// chain SIT.
func NewSITTask(spec SITSpec) (SITTask, error) { return sched.NewSITTask(spec) }

// ScheduleTasks extracts the abstract scheduling tasks from SIT tasks.
func ScheduleTasks(sts []SITTask) []ScheduleTask { return sched.Tasks(sts) }

// OptSchedule finds the optimal schedule with the memory-constrained
// weighted-SCS A* of Section 4.3.1.
func OptSchedule(tasks []ScheduleTask, env ScheduleEnv) (Schedule, ScheduleStats, error) {
	return sched.Opt(tasks, env)
}

// GreedySchedule is the fast greedy variant of Section 4.3.2.
func GreedySchedule(tasks []ScheduleTask, env ScheduleEnv) (Schedule, ScheduleStats, error) {
	return sched.Greedy(tasks, env)
}

// HybridSchedule runs A* within the budget, then continues greedily.
func HybridSchedule(tasks []ScheduleTask, env ScheduleEnv, budget time.Duration) (Schedule, ScheduleStats, error) {
	return sched.Hybrid(tasks, env, budget)
}

// NaiveSchedule creates each SIT separately with no scan sharing.
func NaiveSchedule(tasks []ScheduleTask, env ScheduleEnv) (Schedule, error) {
	return sched.Naive(tasks, env)
}

// ValidateSchedule simulates a schedule and checks it is executable within
// the memory budget.
func ValidateSchedule(s Schedule, tasks []ScheduleTask, env ScheduleEnv) error {
	return sched.Validate(s, tasks, env)
}

// ExecuteSchedule runs a schedule against the builder, performing one shared
// sequential scan per step, and returns the final SITs in task order.
func ExecuteSchedule(s Schedule, sts []SITTask, b *Builder, m Method) ([]*SIT, error) {
	return sched.Execute(s, sts, b, m)
}

// --- Evaluation helpers ---

// RangeQuery is one inclusive range predicate over the SIT's attribute.
type RangeQuery = workload.RangeQuery

// Truth answers exact range counts over a materialized result attribute.
type Truth = workload.Truth

// AccuracyResult aggregates relative-error metrics over a query batch.
type AccuracyResult = workload.Result

// GroundTruth executes the generating expression and indexes the exact
// distribution of table.attr in its result.
func GroundTruth(cat *Catalog, e *Expr, table, attr string) (*Truth, error) {
	vals, err := exec.AttrValues(cat, e, table, attr)
	if err != nil {
		return nil, err
	}
	return workload.NewTruth(vals), nil
}

// TrueCardinality executes the expression and counts result rows.
func TrueCardinality(cat *Catalog, e *Expr) (int64, error) { return exec.Cardinality(cat, e) }

// EvaluateAccuracy measures a SIT (or any range estimator) against the ground
// truth over the given queries.
func EvaluateAccuracy(s *SIT, truth *Truth, queries []RangeQuery) (AccuracyResult, error) {
	return workload.Evaluate(s, truth, queries)
}

// RandomRangeQueries draws n random inclusive ranges within [lo, hi].
func RandomRangeQueries(seed int64, lo, hi int64, n int) ([]RangeQuery, error) {
	return workload.RandomRangeQueries(newRand(seed), lo, hi, n)
}

// ScheduleEnvFor derives the paper's scheduling cost model from a catalog:
// Cost(T) = |T| * costPerRow and SampleSize(T) = sampleRate * |T|, with the
// given memory budget M (<= 0 means unbounded).
func ScheduleEnvFor(cat *Catalog, costPerRow, sampleRate, memory float64) (ScheduleEnv, error) {
	sizes := map[string]int{}
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			return ScheduleEnv{}, err
		}
		sizes[name] = t.NumRows()
	}
	return sched.EnvFromSizes(sizes, costPerRow, sampleRate, memory)
}
