package sits

import "math/rand"

// newRand returns a deterministic rand.Rand for the facade's seeded helpers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
