// Optimizer integration: the motivating scenario of the paper's Section 1.
// A cardinality-estimation module answers SPJ queries of the form
//
//	SELECT * FROM T1, T2 WHERE T1.jnext = T2.jprev AND lo <= T2.a <= hi
//
// first with base-table histograms only (the traditional estimation with its
// independence/containment assumptions), then again after a SIT over the join
// expression is registered — showing how the SIT sidesteps the error-prone
// histogram propagation.
//
//	go run ./examples/optimizer
package main

import (
	"fmt"
	"log"

	"github.com/sitstats/sits"
)

func main() {
	cat, err := sits.GenerateChainDB(sits.DefaultChainConfig())
	if err != nil {
		log.Fatal(err)
	}
	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	estimator, err := sits.NewEstimator(builder)
	if err != nil {
		log.Fatal(err)
	}

	expr, err := sits.ParseExpr("T1 JOIN T2 ON T1.jnext = T2.jprev")
	if err != nil {
		log.Fatal(err)
	}
	// Three range predicates of increasing selectivity over the correlated
	// attribute T2.a.
	preds := []sits.Predicate{
		{Table: "T2", Attr: "a", Lo: 1, Hi: 10},
		{Table: "T2", Attr: "a", Lo: 1, Hi: 100},
		{Table: "T2", Attr: "a", Lo: 500, Hi: 1500},
	}

	// Baseline estimates: no SITs registered yet.
	baselines := make([]sits.Estimate, len(preds))
	for i, p := range preds {
		est, err := estimator.Estimate(sits.SPJQuery{Expr: expr, Preds: []sits.Predicate{p}})
		if err != nil {
			log.Fatal(err)
		}
		baselines[i] = est
	}

	// Create and register SIT(T2.a | T1 ⋈ T2) with Sweep, then re-estimate.
	spec, err := sits.NewSITSpec("T2", "a", expr)
	if err != nil {
		log.Fatal(err)
	}
	s, err := builder.Build(spec, sits.Sweep)
	if err != nil {
		log.Fatal(err)
	}
	if err := estimator.Register(s); err != nil {
		log.Fatal(err)
	}

	truth, err := sits.GroundTruth(cat, expr, "T2", "a")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("query: SELECT * FROM T1, T2 WHERE T1.jnext = T2.jprev AND lo <= T2.a <= hi")
	fmt.Println()
	fmt.Printf("%-26s %12s %14s %14s\n", "predicate", "true card", "base hists", "with SIT")
	for i, p := range preds {
		withSIT, err := estimator.Estimate(sits.SPJQuery{Expr: expr, Preds: []sits.Predicate{p}})
		if err != nil {
			log.Fatal(err)
		}
		actual := truth.Count(sits.RangeQuery{Lo: p.Lo, Hi: p.Hi})
		fmt.Printf("%-26s %12d %14.0f %14.0f\n", p.String(), actual, baselines[i].Cardinality, withSIT.Cardinality)
	}
	fmt.Println()
	fmt.Println("the SIT-based estimates avoid propagating base histograms through the")
	fmt.Println("join (independence assumption) and track the true cardinalities closely.")
}
