// Advisor walkthrough: the full SIT lifecycle. A query workload is analyzed
// for SIT candidates, a creation-cost budget picks a subset, the scheduler
// plans their creation with shared scans (Section 4), the builder executes
// the plan (Section 3), and the resulting SITs are registered with the
// cardinality estimator — whose workload estimates improve measurably.
//
//	go run ./examples/advisor
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/sitstats/sits"
)

func main() {
	cat, err := sits.GenerateChainDB(sits.DefaultChainConfig())
	if err != nil {
		log.Fatal(err)
	}
	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// A workload of SPJ queries over the chain schema, with range predicates
	// on the correlated attribute "a".
	join2, err := sits.ParseExpr("T1 JOIN T2 ON T1.jnext = T2.jprev")
	if err != nil {
		log.Fatal(err)
	}
	join3, err := sits.ParseExpr(
		"T1 JOIN T2 ON T1.jnext = T2.jprev JOIN T3 ON T2.jnext = T3.jprev")
	if err != nil {
		log.Fatal(err)
	}
	workload := sits.Workload{
		{Expr: join2, Preds: []sits.Predicate{{Table: "T2", Attr: "a", Lo: 1, Hi: 200}}},
		{Expr: join2, Preds: []sits.Predicate{{Table: "T2", Attr: "a", Lo: 500, Hi: 900}}},
		{Expr: join3, Preds: []sits.Predicate{{Table: "T3", Attr: "a", Lo: 1, Hi: 400}}},
	}

	// 1. Enumerate and score candidates.
	adv, err := sits.NewAdvisor(builder, sits.DefaultAdvisorConfig())
	if err != nil {
		log.Fatal(err)
	}
	cands, err := adv.Candidates(workload)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("candidates (by benefit density):")
	for _, c := range cands {
		fmt.Printf("  %-70s benefit %6.2f cost %6.2f (queries %v)\n",
			c.Spec.String(), c.Benefit, c.Cost, c.Queries)
	}

	// 2. Pick a set under a creation budget.
	const budget = 4.0
	selected := sits.SelectCandidates(cands, budget)
	fmt.Printf("\nselected %d candidate(s) under budget %.1f\n", len(selected), budget)

	// 3. Schedule their creation with shared scans and execute.
	tasks, direct := sits.CreationTasks(selected)
	env := sits.ScheduleEnv{Cost: map[string]float64{}, SampleSize: map[string]float64{}}
	for _, n := range cat.Names() {
		tab, _ := cat.Table(n)
		env.Cost[n] = float64(tab.NumRows()) / 1000
		env.SampleSize[n] = 0.1 * float64(tab.NumRows())
	}
	env.Memory = 3 * env.SampleSize["T2"]
	schedule, _, err := sits.OptSchedule(sits.ScheduleTasks(tasks), env)
	if err != nil {
		log.Fatal(err)
	}
	built, err := sits.ExecuteSchedule(schedule, tasks, builder, sits.Sweep)
	if err != nil {
		log.Fatal(err)
	}
	for _, spec := range direct { // bushy candidates, if any
		s, err := builder.Build(spec, sits.Sweep)
		if err != nil {
			log.Fatal(err)
		}
		built = append(built, s)
	}
	fmt.Printf("created %d SIT(s) with schedule cost %.2f (%d scans)\n",
		len(built), schedule.Cost, len(schedule.Steps))

	// 4. Register with the estimator and measure the improvement.
	before, err := sits.NewEstimator(builder)
	if err != nil {
		log.Fatal(err)
	}
	after, err := sits.NewEstimator(builder)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range built {
		if err := after.Register(s); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nworkload estimates (true vs base-histograms vs with SITs):")
	for i, q := range workload {
		p := q.Preds[0]
		truth, err := sits.GroundTruth(cat, q.Expr, p.Table, p.Attr)
		if err != nil {
			log.Fatal(err)
		}
		actual := float64(truth.Count(sits.RangeQuery{Lo: p.Lo, Hi: p.Hi}))
		b, err := before.Estimate(q)
		if err != nil {
			log.Fatal(err)
		}
		a, err := after.Estimate(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  Q%d: true %8.0f | base %8.0f (err %5.1f%%) | SIT %8.0f (err %5.1f%%)\n",
			i+1, actual, b.Cardinality, relErr(actual, b.Cardinality), a.Cardinality, relErr(actual, a.Cardinality))
	}
}

func relErr(actual, est float64) float64 {
	den := actual
	if den < 1 {
		den = 1
	}
	return 100 * math.Abs(actual-est) / den
}
