// Multi-SIT creation: the paper's Section 4 end to end. Several SITs with
// overlapping generating queries are scheduled with the optimal A* scheduler,
// the greedy variant and the naive one-at-a-time baseline; the optimal
// schedule is then executed with shared sequential scans and the resulting
// SITs are verified against direct builds.
//
//	go run ./examples/multisit
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/sitstats/sits"
)

func main() {
	cat, err := sits.GenerateChainDB(sits.DefaultChainConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Three SITs over overlapping chain expressions (Example 3's pattern):
	// all need a scan of T2; the longer chains also scan T3 / T4.
	specs := []string{
		"T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev",
		"T3.a | T1 JOIN T2 ON T1.jnext = T2.jprev JOIN T3 ON T2.jnext = T3.jprev",
		"T4.a | T1 JOIN T2 ON T1.jnext = T2.jprev JOIN T3 ON T2.jnext = T3.jprev JOIN T4 ON T3.jnext = T4.jprev",
		"T2.b | T1 JOIN T2 ON T1.jnext = T2.jprev",
	}
	var tasks []sits.SITTask
	for _, sp := range specs {
		spec, err := sits.ParseSIT(sp)
		if err != nil {
			log.Fatal(err)
		}
		task, err := sits.NewSITTask(spec)
		if err != nil {
			log.Fatal(err)
		}
		tasks = append(tasks, task)
		fmt.Printf("SIT %-60s scans %v\n", spec.String(), task.Task.Seq)
	}

	// Cost model: Cost(T) = |T|/1000, SampleSize(T) = 10% of |T|, and a
	// memory budget that fits roughly three concurrent samples.
	env := sits.ScheduleEnv{
		Cost:       map[string]float64{},
		SampleSize: map[string]float64{},
	}
	for _, name := range cat.Names() {
		t, err := cat.Table(name)
		if err != nil {
			log.Fatal(err)
		}
		env.Cost[name] = float64(t.NumRows()) / 1000
		env.SampleSize[name] = 0.10 * float64(t.NumRows())
	}
	env.Memory = 3 * env.SampleSize["T2"]

	abstract := sits.ScheduleTasks(tasks)
	naive, err := sits.NaiveSchedule(abstract, env)
	if err != nil {
		log.Fatal(err)
	}
	opt, optStats, err := sits.OptSchedule(abstract, env)
	if err != nil {
		log.Fatal(err)
	}
	greedy, greedyStats, err := sits.GreedySchedule(abstract, env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("naive  schedule cost: %6.2f (%d scans)\n", naive.Cost, len(naive.Steps))
	fmt.Printf("greedy schedule cost: %6.2f (%d scans, %d states expanded)\n",
		greedy.Cost, len(greedy.Steps), greedyStats.Expanded)
	fmt.Printf("opt    schedule cost: %6.2f (%d scans, %d states expanded, %v)\n",
		opt.Cost, len(opt.Steps), optStats.Expanded, optStats.Elapsed.Round(time.Microsecond))
	fmt.Println()
	for i, step := range opt.Steps {
		fmt.Printf("  step %d: scan %-3s -> builds %d SIT(s)\n", i+1, step.Table, len(step.Advance))
	}

	// Execute the optimal schedule: each step is one shared sequential scan.
	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	built, err := sits.ExecuteSchedule(opt, tasks, builder, sits.SweepFull)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for i, s := range built {
		fmt.Printf("built %-60s card estimate %.0f\n", tasks[i].Spec.String(), s.EstimatedCard)
	}
}
