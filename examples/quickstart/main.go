// Quickstart: generate a small database, create a SIT over a join expression
// with Sweep, and compare its range estimates against the true result
// distribution and the traditional Hist-SIT baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/sitstats/sits"
)

func main() {
	// 1. Generate the paper's synthetic chain database: tables T1..T4 with
	// skewed join attributes (jnext/jprev, zipf z=1) and a SIT attribute "a"
	// correlated with the join attribute — the setting where traditional
	// optimizer estimates fail.
	cat, err := sits.GenerateChainDB(sits.DefaultChainConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("tables:", cat.Names())

	// 2. Describe the statistic: SIT(T2.a | T1 ⋈ T2).
	spec, err := sits.ParseSIT("T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("creating", spec.String())

	// 3. Create it with Sweep: one sequential scan over T2, a histogram
	// m-Oracle for multiplicities, and reservoir sampling.
	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sweepSIT, err := builder.Build(spec, sits.Sweep)
	if err != nil {
		log.Fatal(err)
	}
	histSIT, err := builder.Build(spec, sits.HistSIT)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Score both against the true distribution of T2.a in the join result.
	truth, err := sits.GroundTruth(cat, spec.Expr, spec.Table, spec.Attr)
	if err != nil {
		log.Fatal(err)
	}
	lo, _ := truth.Min()
	hi, _ := truth.Max()
	queries, err := sits.RandomRangeQueries(1, lo, hi, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true join cardinality: %d (Sweep estimated %.0f)\n", truth.Len(), sweepSIT.EstimatedCard)
	for name, s := range map[string]*sits.SIT{"Sweep": sweepSIT, "Hist-SIT": histSIT} {
		acc, err := sits.EvaluateAccuracy(s, truth, queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s avg relative error over %d range queries: %.1f%%\n",
			name, acc.Queries, 100*acc.AvgRelError)
	}
}
