// Acyclic generating queries: the Section 3.2 extension. A SIT is created
// over a tree-shaped (non-chain) join expression — a fact table joining two
// dimension chains — by post-order construction of intermediate SITs, with
// per-child multiplicities multiplied at the root scan. The result is
// compared against the exact distribution for every creation technique.
//
//	go run ./examples/acyclic
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"github.com/sitstats/sits"
)

func main() {
	cat := buildStarSchema()

	// SIT(F.amount | F ⋈ C (⋈ R) ⋈ P): the join-tree rooted at F has two
	// children; the customer side is itself a chain through regions.
	spec, err := sits.ParseSIT(
		"F.amount | F JOIN C ON F.cust = C.id JOIN P ON F.prod = P.id JOIN R ON C.region = R.id")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("creating", spec.String())

	truth, err := sits.GroundTruth(cat, spec.Expr, spec.Table, spec.Attr)
	if err != nil {
		log.Fatal(err)
	}
	lo, _ := truth.Min()
	hi, _ := truth.Max()
	queries, err := sits.RandomRangeQueries(5, lo, hi, 1000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true result cardinality: %d\n\n", truth.Len())
	fmt.Printf("%-12s %14s %18s %12s\n", "technique", "est. card", "avg rel error", "build time")

	builder, err := sits.NewBuilder(cat, sits.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range sits.Methods() {
		start := time.Now() //statcheck:ignore rawrand wall-clock timing column, not part of the result
		s, err := builder.Build(spec, m)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start) //statcheck:ignore rawrand wall-clock timing column, not part of the result
		acc, err := sits.EvaluateAccuracy(s, truth, queries)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %14.0f %17.1f%% %12v\n",
			m.String(), s.EstimatedCard, 100*acc.AvgRelError, elapsed.Round(time.Microsecond))
	}
}

// buildStarSchema creates a fact table F(cust, prod, amount) with skewed
// foreign keys, dimensions C(id, region) and P(id), and a region table R(id):
// the join graph is the tree F-{C-R, P}.
func buildStarSchema() *sits.Catalog {
	rng := rand.New(rand.NewSource(99))
	cat := sits.NewCatalog()

	mustTable := func(name string, cols ...string) *sits.Table {
		t, err := sits.NewTable(name, cols...)
		if err != nil {
			log.Fatal(err)
		}
		return t
	}
	f := mustTable("F", "cust", "prod", "amount")
	for i := 0; i < 4000; i++ {
		cust := skewed(rng, 300)
		// amount correlates with the customer id: exactly the correlation
		// that breaks base-histogram propagation.
		amount := cust*10 + rng.Int63n(50)
		f.AppendRow(cust, skewed(rng, 100), amount)
	}
	c := mustTable("C", "id", "region")
	for i := int64(1); i <= 300; i++ {
		// Customers appear once per source system, and low-id (old) customers
		// exist in many more systems. Low ids are also the frequent ones in F
		// and carry the low amounts — so join fan-out correlates with the SIT
		// attribute, which is precisely what breaks histogram propagation.
		copies := 1 + (300-i)/50
		for n := int64(0); n < copies; n++ {
			c.AppendRow(i, i%20+1)
		}
	}
	p := mustTable("P", "id")
	for i := int64(1); i <= 100; i++ {
		for n := int64(0); n <= i%2; n++ {
			p.AppendRow(i)
		}
	}
	r := mustTable("R", "id")
	for i := int64(1); i <= 20; i++ {
		r.AppendRow(i)
	}
	for _, t := range []*sits.Table{f, c, p, r} {
		if err := cat.Add(t); err != nil {
			log.Fatal(err)
		}
	}
	return cat
}

// skewed draws a zipf-ish value in [1, n]: low ids are much more frequent.
func skewed(rng *rand.Rand, n int64) int64 {
	v := int64(float64(n)*rng.Float64()*rng.Float64()*rng.Float64()) + 1
	if v > n {
		v = n
	}
	return v
}
