package btree

import (
	"math/rand"
	"sort"
	"testing"
)

// TestCountsSortedMatchesCount: the leaf-chain batch lookup must agree with
// one Count call per key, including keys absent from the tree, keys below the
// minimum and past the maximum, and duplicate probe runs.
func TestCountsSortedMatchesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := trial * 37 // includes the empty tree
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = rng.Int63n(1000) - 500
		}
		tr := Build(vals)
		probes := make([]int64, 400)
		for i := range probes {
			// Wider domain than the tree, so probes fall off both ends.
			probes[i] = rng.Int63n(2000) - 1000
		}
		sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
		out := make([]int64, len(probes))
		tr.CountsSorted(probes, out)
		for i, k := range probes {
			if want := tr.Count(k); out[i] != want {
				t.Fatalf("trial %d: CountsSorted(%d) = %d, Count = %d", trial, k, out[i], want)
			}
		}
	}
}

// TestCountsSortedSparseJumps probes with large gaps between consecutive
// keys, forcing the cursor's re-descent path rather than leaf-chain hops.
func TestCountsSortedSparseJumps(t *testing.T) {
	var vals []int64
	for i := int64(0); i < 5000; i++ {
		vals = append(vals, i*3)
	}
	tr := Build(vals)
	probes := []int64{-100, 0, 0, 1, 2999, 3000, 3000, 7500, 7502, 14997, 14998, 20000}
	out := make([]int64, len(probes))
	tr.CountsSorted(probes, out)
	for i, k := range probes {
		if want := tr.Count(k); out[i] != want {
			t.Fatalf("CountsSorted(%d) = %d, Count = %d", k, out[i], want)
		}
	}
	tr.CountsSorted(nil, nil) // must not panic
}
