// Package btree implements a B+tree over int64 keys with per-key occurrence
// counts. It is the index substrate behind SweepIndex (Section 3.1.2): "if an
// index over attribute R.x is available, we can issue repeated index lookups
// to find exact multiplicity values". Count(key) is exactly that lookup.
//
// Duplicates are stored as counts rather than repeated entries, which is all
// the multiplicity oracle needs and keeps the tree compact under the skewed
// distributions used in the evaluation.
package btree

import (
	"fmt"
	"sort"
)

// DefaultDegree is the default maximum number of keys per node.
const DefaultDegree = 64

// Tree is a B+tree multiset of int64 keys.
type Tree struct {
	degree int
	root   node
	size   int64 // total inserted keys, counting duplicates
	keys   int   // distinct keys
}

type node interface {
	// insert adds the key and returns a split result when the node overflows:
	// the new right sibling and the key separating the two halves.
	insert(key int64, count int64, degree int) (sep int64, right node, split bool)
	count(key int64) int64
	countRange(lo, hi int64) int64
	firstLeaf() *leaf
	depth() int
	validate(degree int, isRoot bool, lo, hi *int64) error
}

type leaf struct {
	keys   []int64
	counts []int64
	next   *leaf
}

type inner struct {
	// children[i] covers keys < keys[i]; children[len(keys)] covers the rest.
	keys     []int64
	children []node
}

// New creates an empty tree with the default degree.
func New() *Tree { return NewWithDegree(DefaultDegree) }

// NewWithDegree creates an empty tree whose nodes hold at most degree keys.
// The degree must be at least 3.
func NewWithDegree(degree int) *Tree {
	if degree < 3 {
		panic(fmt.Sprintf("btree: degree %d must be >= 3", degree))
	}
	return &Tree{degree: degree, root: &leaf{}}
}

// Build constructs a tree from a value slice; equivalent to inserting every
// value but sorts once, pre-aggregates duplicates, and bulk-loads the tree
// bottom-up instead of descending from the root per key.
func Build(vals []int64) *Tree {
	t := New()
	if len(vals) == 0 {
		return t
	}
	sorted := make([]int64, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	keys := make([]int64, 0, len(sorted))
	counts := make([]int64, 0, len(sorted))
	i := 0
	for i < len(sorted) {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		keys = append(keys, sorted[i])
		counts = append(counts, int64(j-i))
		i = j
	}
	loaded, err := BulkLoad(keys, counts)
	if err != nil {
		panic(err) // unreachable: keys are strictly increasing with positive counts
	}
	return loaded
}

// BulkLoad builds a tree bottom-up from pre-sorted (key, count) pairs: keys
// must be strictly increasing and counts positive. It produces the same
// multiset as inserting every pair incrementally but runs in O(n) after
// sorting, packing leaves left to right and stitching inner levels over them —
// the standard bottom-up B+tree load used for index creation after an
// external sort.
func BulkLoad(keys, counts []int64) (*Tree, error) {
	return BulkLoadWithDegree(keys, counts, DefaultDegree)
}

// BulkLoadWithDegree is BulkLoad with an explicit node capacity.
func BulkLoadWithDegree(keys, counts []int64, degree int) (*Tree, error) {
	if degree < 3 {
		return nil, fmt.Errorf("btree: degree %d must be >= 3", degree)
	}
	if len(keys) != len(counts) {
		return nil, fmt.Errorf("btree: bulk load got %d keys but %d counts", len(keys), len(counts))
	}
	t := NewWithDegree(degree)
	if len(keys) == 0 {
		return t, nil
	}
	var size int64
	for i := range keys {
		if i > 0 && keys[i-1] >= keys[i] {
			return nil, fmt.Errorf("btree: bulk load keys not strictly increasing at %d (%d >= %d)", i, keys[i-1], keys[i])
		}
		if counts[i] <= 0 {
			return nil, fmt.Errorf("btree: bulk load count %d for key %d must be positive", counts[i], keys[i])
		}
		size += counts[i]
	}

	// Pack leaves with `degree` keys each; a trailing underfull leaf borrows
	// from its (full) left sibling so every non-root leaf holds >= degree/2.
	var leaves []*leaf
	for start := 0; start < len(keys); start += degree {
		end := start + degree
		if end > len(keys) {
			end = len(keys)
		}
		leaves = append(leaves, &leaf{
			keys:   append([]int64(nil), keys[start:end]...),
			counts: append([]int64(nil), counts[start:end]...),
		})
	}
	if n := len(leaves); n > 1 && len(leaves[n-1].keys) < degree/2 {
		prev, last := leaves[n-2], leaves[n-1]
		move := degree/2 - len(last.keys)
		cut := len(prev.keys) - move
		last.keys = append(append([]int64(nil), prev.keys[cut:]...), last.keys...)
		last.counts = append(append([]int64(nil), prev.counts[cut:]...), last.counts...)
		prev.keys = prev.keys[:cut:cut]
		prev.counts = prev.counts[:cut:cut]
	}
	for i := 0; i < len(leaves)-1; i++ {
		leaves[i].next = leaves[i+1]
	}

	// Stitch inner levels bottom-up. mins[i] is the smallest key in the
	// subtree of level[i]; the separator left of a child is exactly that
	// subtree minimum, preserving the "children[i] covers keys < keys[i]"
	// invariant.
	level := make([]node, len(leaves))
	mins := make([]int64, len(leaves))
	for i, l := range leaves {
		level[i] = l
		mins[i] = l.keys[0]
	}
	maxChildren := degree + 1
	minChildren := degree/2 + 1
	for len(level) > 1 {
		var nextLevel []node
		var nextMins []int64
		for start := 0; start < len(level); start += maxChildren {
			end := start + maxChildren
			if end > len(level) {
				end = len(level)
			}
			nextLevel = append(nextLevel, &inner{
				keys:     append([]int64(nil), mins[start+1:end]...),
				children: append([]node(nil), level[start:end]...),
			})
			nextMins = append(nextMins, mins[start])
		}
		if n := len(nextLevel); n > 1 {
			last := nextLevel[n-1].(*inner)
			if len(last.children) < minChildren {
				prev := nextLevel[n-2].(*inner)
				move := minChildren - len(last.children)
				cut := len(prev.children) - move
				// The separators of the moved children are the subtree minima
				// of all but the first moved child, plus the old minimum of
				// the last node (now an internal separator).
				sepCut := len(prev.keys) - move + 1
				last.keys = append(append([]int64(nil), prev.keys[sepCut:]...), append([]int64{nextMins[n-1]}, last.keys...)...)
				last.children = append(append([]node(nil), prev.children[cut:]...), last.children...)
				nextMins[n-1] = prev.keys[sepCut-1]
				prev.keys = prev.keys[: sepCut-1 : sepCut-1]
				prev.children = prev.children[:cut:cut]
			}
		}
		level, mins = nextLevel, nextMins
	}
	t.root = level[0]
	t.size = size
	t.keys = len(keys)
	return t, nil
}

// Insert adds one occurrence of key.
func (t *Tree) Insert(key int64) { t.InsertCount(key, 1) }

// InsertCount adds count occurrences of key; count must be positive.
func (t *Tree) InsertCount(key int64, count int64) {
	if count <= 0 {
		return
	}
	before := t.root.countRange(key, key) > 0
	sep, right, split := t.root.insert(key, count, t.degree)
	if split {
		t.root = &inner{keys: []int64{sep}, children: []node{t.root, right}}
	}
	t.size += count
	if !before {
		t.keys++
	}
}

// Count returns the number of occurrences of key — the exact multiplicity
// lookup SweepIndex issues per scanned tuple.
func (t *Tree) Count(key int64) int64 { return t.root.count(key) }

// leafFor returns the leaf whose key space covers key.
func (t *Tree) leafFor(key int64) *leaf {
	switch r := t.root.(type) {
	case *inner:
		return r.leafFor(key)
	case *leaf:
		return r
	}
	return nil
}

// CountsSorted fills out[i] = Count(keys[i]) for an ascending keys slice —
// the batched form of SweepIndex's multiplicity lookup. A leaf cursor follows
// the probes along the linked leaf chain: consecutive keys landing in the
// same or the next leaf cost a binary search within that leaf instead of a
// root-to-leaf descent, and the tree is only re-descended when a probe jumps
// past the next leaf. Duplicate keys reuse the preceding answer.
func (t *Tree) CountsSorted(keys []int64, out []int64) {
	if len(keys) == 0 {
		return
	}
	cur := t.leafFor(keys[0])
	for i, k := range keys {
		if i > 0 && k == keys[i-1] {
			out[i] = out[i-1]
			continue
		}
		for cur != nil && (len(cur.keys) == 0 || k > cur.keys[len(cur.keys)-1]) {
			nxt := cur.next
			if nxt == nil {
				cur = nil
				break
			}
			if len(nxt.keys) > 0 && k > nxt.keys[len(nxt.keys)-1] {
				// Probe jumps past the neighbouring leaf: descend once.
				cur = t.leafFor(k)
				break
			}
			cur = nxt
		}
		if cur == nil {
			out[i] = 0
			continue
		}
		j := sort.Search(len(cur.keys), func(j int) bool { return cur.keys[j] >= k })
		if j < len(cur.keys) && cur.keys[j] == k {
			out[i] = cur.counts[j]
		} else {
			out[i] = 0
		}
	}
}

// CountRange returns the number of occurrences with lo <= key <= hi.
func (t *Tree) CountRange(lo, hi int64) int64 {
	if hi < lo {
		return 0
	}
	return t.root.countRange(lo, hi)
}

// Len returns the total number of inserted occurrences.
func (t *Tree) Len() int64 { return t.size }

// DistinctKeys returns the number of distinct keys.
func (t *Tree) DistinctKeys() int { return t.keys }

// Depth returns the tree height (1 for a lone leaf).
func (t *Tree) Depth() int { return t.root.depth() }

// Ascend calls fn for every (key, count) pair in ascending key order until fn
// returns false.
func (t *Tree) Ascend(fn func(key, count int64) bool) {
	for l := t.root.firstLeaf(); l != nil; l = l.next {
		for i, k := range l.keys {
			if !fn(k, l.counts[i]) {
				return
			}
		}
	}
}

// AscendRange calls fn for every (key, count) pair with lo <= key <= hi in
// ascending order until fn returns false.
func (t *Tree) AscendRange(lo, hi int64, fn func(key, count int64) bool) {
	if hi < lo {
		return
	}
	var start *leaf
	switch r := t.root.(type) {
	case *leaf:
		start = r
	case *inner:
		start = r.leafFor(lo)
	}
	for l := start; l != nil; l = l.next {
		for i, k := range l.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return
			}
			if !fn(k, l.counts[i]) {
				return
			}
		}
	}
}

// Min returns the smallest key; ok is false for an empty tree.
func (t *Tree) Min() (int64, bool) {
	l := t.root.firstLeaf()
	if len(l.keys) == 0 {
		return 0, false
	}
	return l.keys[0], true
}

// Max returns the largest key; ok is false for an empty tree.
func (t *Tree) Max() (int64, bool) {
	n := t.root
	for {
		switch v := n.(type) {
		case *inner:
			n = v.children[len(v.children)-1]
		case *leaf:
			if len(v.keys) == 0 {
				return 0, false
			}
			return v.keys[len(v.keys)-1], true
		}
	}
}

// Validate checks the B+tree structural invariants: sorted keys, fanout
// bounds, separator correctness, uniform depth, and positive counts.
func (t *Tree) Validate() error {
	return t.root.validate(t.degree, true, nil, nil)
}

// --- leaf ---

func (l *leaf) insert(key int64, count int64, degree int) (int64, node, bool) {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if i < len(l.keys) && l.keys[i] == key {
		l.counts[i] += count
		return 0, nil, false
	}
	l.keys = append(l.keys, 0)
	copy(l.keys[i+1:], l.keys[i:])
	l.keys[i] = key
	l.counts = append(l.counts, 0)
	copy(l.counts[i+1:], l.counts[i:])
	l.counts[i] = count
	if len(l.keys) <= degree {
		return 0, nil, false
	}
	mid := len(l.keys) / 2
	right := &leaf{
		keys:   append([]int64(nil), l.keys[mid:]...),
		counts: append([]int64(nil), l.counts[mid:]...),
		next:   l.next,
	}
	l.keys = l.keys[:mid:mid]
	l.counts = l.counts[:mid:mid]
	l.next = right
	return right.keys[0], right, true
}

func (l *leaf) count(key int64) int64 {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= key })
	if i < len(l.keys) && l.keys[i] == key {
		return l.counts[i]
	}
	return 0
}

func (l *leaf) countRange(lo, hi int64) int64 {
	i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= lo })
	var total int64
	for ; i < len(l.keys) && l.keys[i] <= hi; i++ {
		total += l.counts[i]
	}
	// countRange on a leaf only sees this leaf; inner nodes stitch leaves
	// together via the child walk, and the tree-level call starts at the
	// root, so cross-leaf ranges are handled by inner.countRange.
	return total
}

func (l *leaf) firstLeaf() *leaf { return l }
func (l *leaf) depth() int       { return 1 }

func (l *leaf) validate(degree int, isRoot bool, lo, hi *int64) error {
	if !isRoot && len(l.keys) < degree/2 {
		return fmt.Errorf("btree: leaf underflow: %d keys, want >= %d", len(l.keys), degree/2)
	}
	if len(l.keys) > degree {
		return fmt.Errorf("btree: leaf overflow: %d keys, max %d", len(l.keys), degree)
	}
	if len(l.keys) != len(l.counts) {
		return fmt.Errorf("btree: leaf keys/counts length mismatch")
	}
	for i, k := range l.keys {
		if i > 0 && l.keys[i-1] >= k {
			return fmt.Errorf("btree: leaf keys not strictly sorted at %d", i)
		}
		if l.counts[i] <= 0 {
			return fmt.Errorf("btree: non-positive count for key %d", k)
		}
		if lo != nil && k < *lo {
			return fmt.Errorf("btree: key %d below separator bound %d", k, *lo)
		}
		if hi != nil && k >= *hi {
			return fmt.Errorf("btree: key %d not below separator bound %d", k, *hi)
		}
	}
	return nil
}

// --- inner ---

func (in *inner) childFor(key int64) int {
	return sort.Search(len(in.keys), func(i int) bool { return in.keys[i] > key })
}

func (in *inner) insert(key int64, count int64, degree int) (int64, node, bool) {
	ci := in.childFor(key)
	sep, right, split := in.children[ci].insert(key, count, degree)
	if !split {
		return 0, nil, false
	}
	in.keys = append(in.keys, 0)
	copy(in.keys[ci+1:], in.keys[ci:])
	in.keys[ci] = sep
	in.children = append(in.children, nil)
	copy(in.children[ci+2:], in.children[ci+1:])
	in.children[ci+1] = right
	if len(in.keys) <= degree {
		return 0, nil, false
	}
	mid := len(in.keys) / 2
	upKey := in.keys[mid]
	newRight := &inner{
		keys:     append([]int64(nil), in.keys[mid+1:]...),
		children: append([]node(nil), in.children[mid+1:]...),
	}
	in.keys = in.keys[:mid:mid]
	in.children = in.children[: mid+1 : mid+1]
	return upKey, newRight, true
}

func (in *inner) count(key int64) int64 {
	return in.children[in.childFor(key)].count(key)
}

func (in *inner) countRange(lo, hi int64) int64 {
	// Walk the leaf chain from the first candidate leaf; this is the classic
	// B+tree range scan.
	l := in.leafFor(lo)
	var total int64
	for ; l != nil; l = l.next {
		i := sort.Search(len(l.keys), func(i int) bool { return l.keys[i] >= lo })
		for ; i < len(l.keys); i++ {
			if l.keys[i] > hi {
				return total
			}
			total += l.counts[i]
		}
	}
	return total
}

func (in *inner) leafFor(key int64) *leaf {
	n := node(in)
	for {
		switch v := n.(type) {
		case *inner:
			n = v.children[v.childFor(key)]
		case *leaf:
			return v
		}
	}
}

func (in *inner) firstLeaf() *leaf { return in.children[0].firstLeaf() }

func (in *inner) depth() int { return 1 + in.children[0].depth() }

func (in *inner) validate(degree int, isRoot bool, lo, hi *int64) error {
	if len(in.children) != len(in.keys)+1 {
		return fmt.Errorf("btree: inner fanout mismatch: %d keys, %d children", len(in.keys), len(in.children))
	}
	minKeys := degree / 2
	if isRoot {
		minKeys = 1
	}
	if len(in.keys) < minKeys {
		return fmt.Errorf("btree: inner underflow: %d keys, want >= %d", len(in.keys), minKeys)
	}
	if len(in.keys) > degree {
		return fmt.Errorf("btree: inner overflow: %d keys, max %d", len(in.keys), degree)
	}
	d := in.children[0].depth()
	for i, k := range in.keys {
		if i > 0 && in.keys[i-1] >= k {
			return fmt.Errorf("btree: inner keys not strictly sorted at %d", i)
		}
		if lo != nil && k < *lo {
			return fmt.Errorf("btree: separator %d below bound %d", k, *lo)
		}
		if hi != nil && k >= *hi {
			return fmt.Errorf("btree: separator %d not below bound %d", k, *hi)
		}
	}
	for i, c := range in.children {
		if c.depth() != d {
			return fmt.Errorf("btree: ragged depth under inner node")
		}
		var cLo, cHi *int64
		if i > 0 {
			cLo = &in.keys[i-1]
		} else {
			cLo = lo
		}
		if i < len(in.keys) {
			cHi = &in.keys[i]
		} else {
			cHi = hi
		}
		if err := c.validate(degree, false, cLo, cHi); err != nil {
			return err
		}
	}
	return nil
}
