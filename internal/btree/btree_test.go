package btree

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyTree(t *testing.T) {
	tr := New()
	if tr.Len() != 0 || tr.DistinctKeys() != 0 || tr.Depth() != 1 {
		t.Errorf("empty tree: len=%d distinct=%d depth=%d", tr.Len(), tr.DistinctKeys(), tr.Depth())
	}
	if tr.Count(5) != 0 {
		t.Error("Count on empty tree != 0")
	}
	if tr.CountRange(0, 100) != 0 {
		t.Error("CountRange on empty tree != 0")
	}
	if err := tr.Validate(); err != nil {
		t.Error(err)
	}
}

func TestNewWithDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("degree 2: want panic")
		}
	}()
	NewWithDegree(2)
}

func TestInsertAndCount(t *testing.T) {
	tr := NewWithDegree(4)
	vals := []int64{5, 3, 8, 3, 3, 9, 1, 5}
	for _, v := range vals {
		tr.Insert(v)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != int64(len(vals)) {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.DistinctKeys() != 5 {
		t.Errorf("DistinctKeys = %d, want 5", tr.DistinctKeys())
	}
	want := map[int64]int64{1: 1, 3: 3, 5: 2, 8: 1, 9: 1, 2: 0, 100: 0}
	for k, c := range want {
		if got := tr.Count(k); got != c {
			t.Errorf("Count(%d) = %d, want %d", k, got, c)
		}
	}
	if got := tr.CountRange(3, 8); got != 6 {
		t.Errorf("CountRange(3,8) = %d, want 6", got)
	}
	if got := tr.CountRange(8, 3); got != 0 {
		t.Errorf("inverted range = %d, want 0", got)
	}
	tr.InsertCount(7, 0)
	tr.InsertCount(7, -2)
	if tr.Count(7) != 0 {
		t.Error("non-positive InsertCount must be a no-op")
	}
}

func TestSplitsAndDepth(t *testing.T) {
	tr := NewWithDegree(3)
	for i := int64(0); i < 1000; i++ {
		tr.Insert(i)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() < 4 {
		t.Errorf("depth = %d, expected a multi-level tree", tr.Depth())
	}
	for i := int64(0); i < 1000; i++ {
		if tr.Count(i) != 1 {
			t.Fatalf("Count(%d) != 1", i)
		}
	}
	if tr.CountRange(100, 199) != 100 {
		t.Errorf("CountRange(100,199) = %d", tr.CountRange(100, 199))
	}
}

func TestAscend(t *testing.T) {
	tr := Build([]int64{4, 2, 2, 9, -1})
	var keys []int64
	var counts []int64
	tr.Ascend(func(k, c int64) bool {
		keys = append(keys, k)
		counts = append(counts, c)
		return true
	})
	wantK := []int64{-1, 2, 4, 9}
	wantC := []int64{1, 2, 1, 1}
	if len(keys) != len(wantK) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range wantK {
		if keys[i] != wantK[i] || counts[i] != wantC[i] {
			t.Errorf("ascend[%d] = (%d,%d), want (%d,%d)", i, keys[i], counts[i], wantK[i], wantC[i])
		}
	}
	// Early stop.
	n := 0
	tr.Ascend(func(k, c int64) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Errorf("early stop visited %d keys", n)
	}
}

func TestBuildEmpty(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Errorf("Build(nil).Len() = %d", tr.Len())
	}
}

func TestAgainstReferenceMap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tr := NewWithDegree(5)
	ref := map[int64]int64{}
	var total int64
	for i := 0; i < 20000; i++ {
		k := rng.Int63n(500) - 250
		c := rng.Int63n(3) + 1
		tr.InsertCount(k, c)
		ref[k] += c
		total += c
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != total {
		t.Errorf("Len = %d, want %d", tr.Len(), total)
	}
	if tr.DistinctKeys() != len(ref) {
		t.Errorf("DistinctKeys = %d, want %d", tr.DistinctKeys(), len(ref))
	}
	for k, c := range ref {
		if got := tr.Count(k); got != c {
			t.Errorf("Count(%d) = %d, want %d", k, got, c)
		}
	}
	// Random ranges vs reference.
	keys := make([]int64, 0, len(ref))
	for k := range ref {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for trial := 0; trial < 200; trial++ {
		lo := rng.Int63n(600) - 300
		hi := lo + rng.Int63n(200)
		var want int64
		for _, k := range keys {
			if k >= lo && k <= hi {
				want += ref[k]
			}
		}
		if got := tr.CountRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
}

// Property: for any insertion sequence and any degree, the tree validates and
// agrees with a reference map on counts, totals and ascending order.
func TestTreeQuick(t *testing.T) {
	f := func(keys []int16, degSeed uint8) bool {
		deg := int(degSeed%14) + 3
		tr := NewWithDegree(deg)
		ref := map[int64]int64{}
		for _, k := range keys {
			tr.Insert(int64(k))
			ref[int64(k)]++
		}
		if tr.Validate() != nil {
			return false
		}
		if tr.Len() != int64(len(keys)) || tr.DistinctKeys() != len(ref) {
			return false
		}
		for k, c := range ref {
			if tr.Count(k) != c {
				return false
			}
		}
		prev := int64(-1 << 62)
		ok := true
		var seen int64
		tr.Ascend(func(k, c int64) bool {
			if k <= prev || c != ref[k] {
				ok = false
				return false
			}
			prev = k
			seen += c
			return true
		})
		return ok && seen == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CountRange equals the sum of Counts over the range endpoints
// drawn from the inserted keys.
func TestCountRangeQuick(t *testing.T) {
	f := func(keys []int8, lo, hi int8) bool {
		tr := Build(int8sTo64(keys))
		l, h := int64(lo), int64(hi)
		if l > h {
			l, h = h, l
		}
		var want int64
		for _, k := range keys {
			if int64(k) >= l && int64(k) <= h {
				want++
			}
		}
		return tr.CountRange(l, h) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func int8sTo64(in []int8) []int64 {
	out := make([]int64, len(in))
	for i, v := range in {
		out[i] = int64(v)
	}
	return out
}

func TestMinMax(t *testing.T) {
	tr := New()
	if _, ok := tr.Min(); ok {
		t.Error("Min on empty tree: want ok=false")
	}
	if _, ok := tr.Max(); ok {
		t.Error("Max on empty tree: want ok=false")
	}
	rng := rand.New(rand.NewSource(29))
	lo, hi := int64(1<<62), int64(-1<<62)
	for i := 0; i < 5000; i++ {
		k := rng.Int63n(100000) - 50000
		tr.Insert(k)
		if k < lo {
			lo = k
		}
		if k > hi {
			hi = k
		}
	}
	if got, ok := tr.Min(); !ok || got != lo {
		t.Errorf("Min = %d,%v want %d", got, ok, lo)
	}
	if got, ok := tr.Max(); !ok || got != hi {
		t.Errorf("Max = %d,%v want %d", got, ok, hi)
	}
}

func TestAscendRange(t *testing.T) {
	tr := Build([]int64{1, 3, 3, 5, 7, 9})
	var keys []int64
	var total int64
	tr.AscendRange(3, 7, func(k, c int64) bool {
		keys = append(keys, k)
		total += c
		return true
	})
	if !reflect.DeepEqual(keys, []int64{3, 5, 7}) {
		t.Errorf("keys = %v", keys)
	}
	if total != 4 {
		t.Errorf("total = %d, want 4", total)
	}
	// Inverted range visits nothing.
	tr.AscendRange(7, 3, func(k, c int64) bool { t.Error("visited"); return true })
	// Early stop.
	n := 0
	tr.AscendRange(1, 9, func(k, c int64) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// Property: AscendRange agrees with CountRange and visits sorted keys.
func TestAscendRangeQuick(t *testing.T) {
	f := func(keys []int16, lo, hi int16) bool {
		vals := make([]int64, len(keys))
		for i, k := range keys {
			vals[i] = int64(k % 64)
		}
		tr := Build(vals)
		l, h := int64(lo%64), int64(hi%64)
		if l > h {
			l, h = h, l
		}
		var total int64
		prev := int64(-1 << 62)
		ok := true
		tr.AscendRange(l, h, func(k, c int64) bool {
			if k < l || k > h || k <= prev {
				ok = false
				return false
			}
			prev = k
			total += c
			return true
		})
		return ok && total == tr.CountRange(l, h)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
