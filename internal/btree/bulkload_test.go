package btree

import (
	"math/rand"
	"testing"
)

// bulkInputs generates n strictly-increasing keys (spanning negatives) with
// positive counts.
func bulkInputs(rng *rand.Rand, n int) (keys, counts []int64) {
	keys = make([]int64, n)
	counts = make([]int64, n)
	k := -int64(n) * 3
	for i := 0; i < n; i++ {
		k += 1 + rng.Int63n(5)
		keys[i] = k
		counts[i] = 1 + rng.Int63n(9)
	}
	return keys, counts
}

// TestBulkLoadMatchesIncremental: a bulk-loaded tree must be observationally
// identical to one built by incremental InsertCount calls — same validity
// invariants, size, distinct keys, per-key counts, range counts, iteration
// order, and extrema — across sizes that hit empty trees, a root-only leaf,
// trailing-leaf underflow, and multi-level inner underflow, at several
// degrees.
func TestBulkLoadMatchesIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sizes := []int{0, 1, 2, 3, 7, 8, 64, 65, 100, 513, 2000}
	for _, degree := range []int{3, 4, 5, 7, 64} {
		for _, n := range sizes {
			keys, counts := bulkInputs(rng, n)
			bulk, err := BulkLoadWithDegree(keys, counts, degree)
			if err != nil {
				t.Fatalf("degree %d n %d: %v", degree, n, err)
			}
			if err := bulk.Validate(); err != nil {
				t.Fatalf("degree %d n %d: bulk-loaded tree invalid: %v", degree, n, err)
			}
			inc := NewWithDegree(degree)
			for i, k := range keys {
				inc.InsertCount(k, counts[i])
			}
			if bulk.Len() != inc.Len() || bulk.DistinctKeys() != inc.DistinctKeys() {
				t.Fatalf("degree %d n %d: len/distinct = %d/%d, want %d/%d",
					degree, n, bulk.Len(), bulk.DistinctKeys(), inc.Len(), inc.DistinctKeys())
			}
			// Full ascent must visit the input pairs in order.
			i := 0
			bulk.Ascend(func(k, c int64) bool {
				if k != keys[i] || c != counts[i] {
					t.Fatalf("degree %d n %d: ascend[%d] = (%d,%d), want (%d,%d)",
						degree, n, i, k, c, keys[i], counts[i])
				}
				i++
				return true
			})
			if i != n {
				t.Fatalf("degree %d n %d: ascend visited %d keys", degree, n, i)
			}
			for trial := 0; trial < 20; trial++ {
				k := rng.Int63n(int64(4*n+8)) - int64(2*n+4)
				if got, want := bulk.Count(k), inc.Count(k); got != want {
					t.Fatalf("degree %d n %d: Count(%d) = %d, want %d", degree, n, k, got, want)
				}
				lo := rng.Int63n(int64(4*n+8)) - int64(2*n+4)
				hi := lo + rng.Int63n(int64(2*n+4))
				if got, want := bulk.CountRange(lo, hi), inc.CountRange(lo, hi); got != want {
					t.Fatalf("degree %d n %d: CountRange(%d,%d) = %d, want %d", degree, n, lo, hi, got, want)
				}
			}
			bmin, bok := bulk.Min()
			imin, iok := inc.Min()
			if bok != iok || bmin != imin {
				t.Fatalf("degree %d n %d: Min = (%d,%v), want (%d,%v)", degree, n, bmin, bok, imin, iok)
			}
			bmax, bok := bulk.Max()
			imax, iok := inc.Max()
			if bok != iok || bmax != imax {
				t.Fatalf("degree %d n %d: Max = (%d,%v), want (%d,%v)", degree, n, bmax, bok, imax, iok)
			}
		}
	}
}

func TestBulkLoadErrors(t *testing.T) {
	if _, err := BulkLoad([]int64{1, 2}, []int64{1}); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := BulkLoad([]int64{2, 1}, []int64{1, 1}); err == nil {
		t.Error("descending keys: want error")
	}
	if _, err := BulkLoad([]int64{1, 1}, []int64{1, 1}); err == nil {
		t.Error("duplicate keys: want error")
	}
	if _, err := BulkLoad([]int64{1}, []int64{0}); err == nil {
		t.Error("zero count: want error")
	}
	if _, err := BulkLoad([]int64{1}, []int64{-3}); err == nil {
		t.Error("negative count: want error")
	}
	if _, err := BulkLoadWithDegree([]int64{1}, []int64{1}, 2); err == nil {
		t.Error("degree 2: want error")
	}
	tr, err := BulkLoad(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 || tr.Validate() != nil {
		t.Error("empty bulk load must yield a valid empty tree")
	}
}

// TestBuildUsesBulkLoad: Build remains equivalent to incremental insertion
// now that it routes through BulkLoad.
func TestBuildUsesBulkLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(700) - 350
	}
	built := Build(vals)
	if err := built.Validate(); err != nil {
		t.Fatal(err)
	}
	inc := New()
	for _, v := range vals {
		inc.Insert(v)
	}
	if built.Len() != inc.Len() || built.DistinctKeys() != inc.DistinctKeys() {
		t.Fatalf("len/distinct = %d/%d, want %d/%d",
			built.Len(), built.DistinctKeys(), inc.Len(), inc.DistinctKeys())
	}
	for v := int64(-360); v <= 360; v += 7 {
		if built.Count(v) != inc.Count(v) {
			t.Fatalf("Count(%d) = %d, want %d", v, built.Count(v), inc.Count(v))
		}
	}
}
