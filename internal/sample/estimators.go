package sample

import (
	"fmt"
	"math"
	"math/rand"
)

// This file collects additional sampling machinery around the core
// reservoirs: a Bernoulli row sampler (the other standard way systems draw
// statistics samples) and the classic distinct-value estimators that the
// "sampling assumption" of Section 2.1 is about — estimating the number of
// distinct values from a sample is provably hard [3], and different
// estimators fail differently, so the library ships several.

// Bernoulli samples each offered element independently with probability p.
// Unlike a reservoir its sample size is binomial rather than fixed, but it
// needs no per-element random index and supports merging across partitions.
type Bernoulli struct {
	p     float64
	rng   *rand.Rand
	seen  int64
	items []int64
}

// NewBernoulli creates a sampler with inclusion probability p in (0, 1].
func NewBernoulli(p float64, seed int64) (*Bernoulli, error) {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		return nil, fmt.Errorf("sample: Bernoulli probability %v out of (0,1]", p)
	}
	return &Bernoulli{p: p, rng: rand.New(rand.NewSource(seed))}, nil
}

// Add offers one element.
func (b *Bernoulli) Add(v int64) {
	b.seen++
	if b.rng.Float64() < b.p {
		b.items = append(b.items, v)
	}
}

// Sample returns the retained elements.
func (b *Bernoulli) Sample() []int64 { return b.items }

// Seen returns the number of offered elements.
func (b *Bernoulli) Seen() int64 { return b.seen }

// ScaleFactor returns 1/p, the factor converting sample counts to population
// estimates.
func (b *Bernoulli) ScaleFactor() float64 { return 1 / b.p }

// frequencyOfFrequencies computes f[j] = number of sample values occurring
// exactly j times, plus the number of distinct sample values.
func frequencyOfFrequencies(sampleVals []int64) (map[int]int, int) {
	counts := make(map[int64]int, len(sampleVals))
	for _, v := range sampleVals {
		counts[v]++
	}
	f := map[int]int{}
	for _, c := range counts {
		f[c]++
	}
	return f, len(counts)
}

// clampDistinct bounds an estimate to [observed distinct, population size].
func clampDistinct(est float64, observed int, total int64) float64 {
	if est > float64(total) {
		est = float64(total)
	}
	if est < float64(observed) {
		est = float64(observed)
	}
	return est
}

// EstimateDistinctChao is Chao's lower-bound estimator:
// d + f1^2 / (2 f2), with f1 singletons and f2 doubletons. It needs no
// knowledge of the population size; when f2 = 0 it degrades to
// d + f1*(f1-1)/2.
func EstimateDistinctChao(sampleVals []int64, total int64) float64 {
	if len(sampleVals) == 0 {
		return 0
	}
	f, d := frequencyOfFrequencies(sampleVals)
	f1, f2 := float64(f[1]), float64(f[2])
	var est float64
	if f2 > 0 {
		est = float64(d) + f1*f1/(2*f2)
	} else {
		est = float64(d) + f1*(f1-1)/2
	}
	return clampDistinct(est, d, total)
}

// EstimateDistinctJackknife is the first-order jackknife for a uniform sample
// of n of total rows: d / (1 - (1 - q) * f1 / n) with q = n/total; it scales
// the observed distinct count up by the fraction of classes estimated to have
// escaped the sample entirely.
func EstimateDistinctJackknife(sampleVals []int64, total int64) float64 {
	n := int64(len(sampleVals))
	if n == 0 {
		return 0
	}
	if total < n {
		total = n
	}
	f, d := frequencyOfFrequencies(sampleVals)
	q := float64(n) / float64(total)
	denom := 1 - (1-q)*float64(f[1])/float64(n)
	if denom <= 0 {
		return float64(total)
	}
	return clampDistinct(float64(d)/denom, d, total)
}

// DistinctEstimator names one of the shipped estimators.
type DistinctEstimator int

// The distinct-value estimators.
const (
	// GEE is the Guaranteed-Error Estimator (the default; see
	// EstimateDistinct).
	GEE DistinctEstimator = iota
	// Chao is Chao's f1^2/(2 f2) lower bound.
	Chao
	// Jackknife is the first-order jackknife.
	Jackknife
)

// String returns the estimator name.
func (e DistinctEstimator) String() string {
	switch e {
	case GEE:
		return "GEE"
	case Chao:
		return "Chao"
	case Jackknife:
		return "Jackknife"
	default:
		return fmt.Sprintf("DistinctEstimator(%d)", int(e))
	}
}

// EstimateDistinctWith dispatches to the named estimator.
func EstimateDistinctWith(e DistinctEstimator, sampleVals []int64, total int64) (float64, error) {
	switch e {
	case GEE:
		return EstimateDistinct(sampleVals, total), nil
	case Chao:
		return EstimateDistinctChao(sampleVals, total), nil
	case Jackknife:
		return EstimateDistinctJackknife(sampleVals, total), nil
	default:
		return 0, fmt.Errorf("sample: unknown distinct estimator %v", e)
	}
}
