// Package sample implements the sampling substrate of Section 3.1 step 4:
// one-pass reservoir sampling over the streamed (value, multiplicity) pairs
// Sweep produces, in two flavors — Vitter's classic Algorithm R over
// replicated values (the paper's formulation, "we append n copies of a_i"),
// and an Efraimidis–Spirakis weighted reservoir that consumes the fractional
// multiplicities directly (an extension that removes rounding noise).
//
// It also provides the GEE distinct-value estimator used when deriving
// distinct counts from samples (the "sampling assumption" of Section 2.1).
package sample

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
)

// Reservoir is a uniform fixed-size sample over a stream of int64 values,
// maintained with Vitter's Algorithm R.
type Reservoir struct {
	k     int
	seen  int64
	items []int64
	rng   *rand.Rand
}

// NewReservoir creates a reservoir holding at most k items, driven by the
// given seed.
func NewReservoir(k int, seed int64) (*Reservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sample: reservoir size %d must be positive", k)
	}
	return &Reservoir{k: k, rng: rand.New(rand.NewSource(seed))}, nil
}

// Add offers one stream element to the reservoir.
func (r *Reservoir) Add(v int64) {
	r.seen++
	if len(r.items) < r.k {
		r.items = append(r.items, v)
		return
	}
	if j := r.rng.Int63n(r.seen); j < int64(r.k) {
		r.items[j] = v
	}
}

// AddN offers count identical stream elements. It is equivalent to calling
// Add(v) count times and is how Sweep streams the "n copies of a_i" of
// Section 3.1 step 3 without materializing them.
func (r *Reservoir) AddN(v int64, count int64) {
	for ; count > 0 && len(r.items) < r.k; count-- {
		r.seen++
		r.items = append(r.items, v)
	}
	if count <= 0 {
		return
	}
	// Reservoir is full. Out of the next count arrivals, arrival i (1-based
	// after seen) replaces a random slot with probability k/(seen+i). Draw
	// the number of replacements and apply them to uniform random slots; the
	// replaced values are all v, so only the count of replacements matters.
	replacements := 0
	for i := int64(1); i <= count; i++ {
		if r.rng.Int63n(r.seen+i) < int64(r.k) {
			replacements++
		}
	}
	r.seen += count
	for ; replacements > 0; replacements-- {
		r.items[r.rng.Intn(r.k)] = v
	}
}

// AddWeighted offers a fractional multiplicity using stochastic rounding:
// floor(w) copies plus one more with probability frac(w). This is the default
// way Sweep feeds its estimated multiplicities into the reservoir.
func (r *Reservoir) AddWeighted(v int64, w float64) {
	if w <= 0 || math.IsNaN(w) {
		return
	}
	n := int64(w)
	if r.rng.Float64() < w-float64(n) {
		n++
	}
	r.AddN(v, n)
}

// Merge folds another reservoir into r. The two reservoirs must have equal
// capacity and must have sampled disjoint partitions of one logical stream;
// the result is then distributed as a uniform k-sample of the concatenated
// stream (the standard distributed-reservoir merge: each output slot draws
// from r's or o's sample with probability proportional to the unconsumed
// portion of that partition). All randomness comes from r's generator, so the
// merge is deterministic given r's seed and the two samples. o is left
// unchanged.
func (r *Reservoir) Merge(o *Reservoir) error {
	if o == nil {
		return fmt.Errorf("sample: cannot merge nil reservoir")
	}
	if o.k != r.k {
		return fmt.Errorf("sample: cannot merge reservoirs of capacity %d and %d", r.k, o.k)
	}
	if o.seen == 0 {
		return nil
	}
	if r.seen == 0 {
		r.items = append(r.items[:0], o.items...)
		r.seen = o.seen
		return nil
	}
	a := append([]int64(nil), r.items...)
	b := append([]int64(nil), o.items...)
	remainA, remainB := r.seen, o.seen
	merged := make([]int64, 0, r.k)
	take := func(s []int64) (int64, []int64) {
		i := r.rng.Intn(len(s))
		v := s[i]
		s[i] = s[len(s)-1]
		return v, s[:len(s)-1]
	}
	for len(merged) < r.k && (len(a) > 0 || len(b) > 0) {
		var v int64
		// remainA/remainB hit zero exactly when the corresponding sample is
		// exhausted (a sample holds min(seen, k) items and at most k are ever
		// drawn), so the chosen side always has an item left.
		if r.rng.Int63n(remainA+remainB) < remainA {
			v, a = take(a)
			remainA--
		} else {
			v, b = take(b)
			remainB--
		}
		merged = append(merged, v)
	}
	r.items = merged
	r.seen += o.seen
	return nil
}

// Sample returns the current sample. The returned slice is the reservoir's
// backing storage and must not be modified.
func (r *Reservoir) Sample() []int64 { return r.items }

// Seen returns the number of stream elements offered so far.
func (r *Reservoir) Seen() int64 { return r.seen }

// Cap returns the reservoir capacity k.
func (r *Reservoir) Cap() int { return r.k }

// weightedItem is one candidate in the A-Res weighted reservoir with its key
// u^(1/w); the k items with the largest keys form the sample.
type weightedItem struct {
	value int64
	key   float64
}

type weightedHeap []weightedItem

func (h weightedHeap) Len() int            { return len(h) }
func (h weightedHeap) Less(i, j int) bool  { return h[i].key < h[j].key }
func (h weightedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *weightedHeap) Push(x interface{}) { *h = append(*h, x.(weightedItem)) }
func (h *weightedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// WeightedReservoir is a weighted sample without replacement (Efraimidis and
// Spirakis A-Res): each offered item gets key u^(1/w) and the k largest keys
// survive. For Sweep it consumes the fractional multiplicity directly, so no
// rounding noise enters the sample.
type WeightedReservoir struct {
	k    int
	h    weightedHeap
	rng  *rand.Rand
	seen int64
	mass float64
}

// NewWeightedReservoir creates a weighted reservoir holding at most k items.
func NewWeightedReservoir(k int, seed int64) (*WeightedReservoir, error) {
	if k <= 0 {
		return nil, fmt.Errorf("sample: weighted reservoir size %d must be positive", k)
	}
	return &WeightedReservoir{k: k, rng: rand.New(rand.NewSource(seed))}, nil
}

// Add offers a value with the given weight; non-positive weights are ignored.
func (w *WeightedReservoir) Add(v int64, weight float64) {
	if weight <= 0 || math.IsNaN(weight) || math.IsInf(weight, 0) {
		return
	}
	w.seen++
	w.mass += weight
	key := math.Pow(w.rng.Float64(), 1/weight)
	if len(w.h) < w.k {
		heap.Push(&w.h, weightedItem{value: v, key: key})
		return
	}
	if key > w.h[0].key {
		w.h[0] = weightedItem{value: v, key: key}
		heap.Fix(&w.h, 0)
	}
}

// Merge folds another weighted reservoir into w. A-Res keys are exchangeable
// across independently seeded reservoirs (each item's key is u^(1/weight)
// regardless of which generator drew u), so merging is exact: keep the k
// largest keys of the union. The two reservoirs must have equal capacity and
// must have consumed disjoint partitions of one logical stream. o is left
// unchanged.
func (w *WeightedReservoir) Merge(o *WeightedReservoir) error {
	if o == nil {
		return fmt.Errorf("sample: cannot merge nil weighted reservoir")
	}
	if o.k != w.k {
		return fmt.Errorf("sample: cannot merge weighted reservoirs of capacity %d and %d", w.k, o.k)
	}
	for _, it := range o.h {
		if len(w.h) < w.k {
			heap.Push(&w.h, it)
			continue
		}
		if it.key > w.h[0].key {
			w.h[0] = it
			heap.Fix(&w.h, 0)
		}
	}
	w.seen += o.seen
	w.mass += o.mass
	return nil
}

// Sample returns the sampled values in unspecified order.
func (w *WeightedReservoir) Sample() []int64 {
	out := make([]int64, len(w.h))
	for i, it := range w.h {
		out[i] = it.value
	}
	return out
}

// Seen returns the number of items offered with positive weight.
func (w *WeightedReservoir) Seen() int64 { return w.seen }

// Mass returns the total weight offered, i.e. the estimated stream length.
func (w *WeightedReservoir) Mass() float64 { return w.mass }

// Cap returns the reservoir capacity k.
func (w *WeightedReservoir) Cap() int { return w.k }

// EstimateDistinct applies the GEE (Guaranteed-Error Estimator) of Charikar
// et al. to estimate the number of distinct values in a population of size
// total from a uniform sample: sqrt(total/|sample|)·f1 + sum_{j>=2} fj, where
// fj counts sample values occurring exactly j times. This is the standard
// answer to the sampling assumption's weak spot — distinct counts are hard to
// sample (Section 2.1, [3]).
func EstimateDistinct(sampleVals []int64, total int64) float64 {
	n := int64(len(sampleVals))
	if n == 0 {
		return 0
	}
	if total < n {
		total = n
	}
	counts := make(map[int64]int, len(sampleVals))
	for _, v := range sampleVals {
		counts[v]++
	}
	singletons := 0
	higher := 0
	for _, c := range counts {
		if c == 1 {
			singletons++
		} else {
			higher++
		}
	}
	est := math.Sqrt(float64(total)/float64(n))*float64(singletons) + float64(higher)
	if est > float64(total) {
		est = float64(total)
	}
	if est < float64(len(counts)) {
		est = float64(len(counts))
	}
	return est
}
