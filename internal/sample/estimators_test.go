package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBernoulli(t *testing.T) {
	if _, err := NewBernoulli(0, 1); err == nil {
		t.Error("p=0: want error")
	}
	if _, err := NewBernoulli(1.5, 1); err == nil {
		t.Error("p>1: want error")
	}
	if _, err := NewBernoulli(math.NaN(), 1); err == nil {
		t.Error("NaN: want error")
	}
	b, err := NewBernoulli(0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50000
	for i := int64(0); i < n; i++ {
		b.Add(i)
	}
	if b.Seen() != n {
		t.Errorf("Seen = %d", b.Seen())
	}
	got := float64(len(b.Sample()))
	want := 0.2 * n
	if math.Abs(got-want) > 0.05*want {
		t.Errorf("sample size = %v, want ~%v", got, want)
	}
	if b.ScaleFactor() != 5 {
		t.Errorf("ScaleFactor = %v", b.ScaleFactor())
	}
}

// population builds total values with the given number of distinct values,
// each appearing total/distinct times, shuffled.
func population(rng *rand.Rand, total, distinct int) []int64 {
	out := make([]int64, total)
	for i := range out {
		out[i] = int64(i % distinct)
	}
	rng.Shuffle(total, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func TestDistinctEstimatorsOnUniformClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pop := population(rng, 50000, 2000)
	smp := pop[:5000] // 10% sample
	for _, e := range []DistinctEstimator{GEE, Chao, Jackknife} {
		got, err := EstimateDistinctWith(e, smp, int64(len(pop)))
		if err != nil {
			t.Fatal(err)
		}
		if got < 1000 || got > 4000 {
			t.Errorf("%v estimate = %v, want within factor 2 of 2000", e, got)
		}
	}
}

func TestDistinctEstimatorsEdgeCases(t *testing.T) {
	for _, e := range []DistinctEstimator{GEE, Chao, Jackknife} {
		got, err := EstimateDistinctWith(e, nil, 100)
		if err != nil || got != 0 {
			t.Errorf("%v on empty sample = %v, %v", e, got, err)
		}
		// Full sample: estimate within [observed, total] and near observed.
		full := []int64{1, 1, 2, 2, 3, 3}
		got, err = EstimateDistinctWith(e, full, 6)
		if err != nil {
			t.Fatal(err)
		}
		if got < 3 || got > 6 {
			t.Errorf("%v full-sample estimate = %v, want within [3,6]", e, got)
		}
	}
	if _, err := EstimateDistinctWith(DistinctEstimator(99), []int64{1}, 1); err == nil {
		t.Error("unknown estimator: want error")
	}
	if got := DistinctEstimator(99).String(); got != "DistinctEstimator(99)" {
		t.Errorf("String = %q", got)
	}
	if GEE.String() != "GEE" || Chao.String() != "Chao" || Jackknife.String() != "Jackknife" {
		t.Error("estimator names wrong")
	}
}

func TestChaoNoDoubletons(t *testing.T) {
	// All singletons: f2 = 0 branch.
	smp := []int64{1, 2, 3, 4}
	got := EstimateDistinctChao(smp, 1000)
	if got < 4 {
		t.Errorf("Chao with singletons = %v, want >= 4", got)
	}
	if got > 1000 {
		t.Errorf("Chao exceeded population: %v", got)
	}
}

// Property: every estimator stays within [observed distinct, population].
func TestDistinctBoundsQuick(t *testing.T) {
	f := func(raw []uint8, extra uint16) bool {
		smp := make([]int64, len(raw))
		seen := map[int64]bool{}
		for i, v := range raw {
			smp[i] = int64(v % 32)
			seen[smp[i]] = true
		}
		total := int64(len(raw)) + int64(extra)
		for _, e := range []DistinctEstimator{GEE, Chao, Jackknife} {
			got, err := EstimateDistinctWith(e, smp, total)
			if err != nil {
				return false
			}
			if len(smp) == 0 {
				if got != 0 {
					return false
				}
				continue
			}
			if got < float64(len(seen))-1e-9 || got > float64(total)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
