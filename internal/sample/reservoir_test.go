package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewReservoirErrors(t *testing.T) {
	if _, err := NewReservoir(0, 1); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := NewWeightedReservoir(-1, 1); err == nil {
		t.Error("k<0: want error")
	}
}

func TestReservoirFillsThenStaysFixed(t *testing.T) {
	r, err := NewReservoir(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		r.Add(i)
	}
	if len(r.Sample()) != 5 || r.Seen() != 5 {
		t.Fatalf("partial fill: len=%d seen=%d", len(r.Sample()), r.Seen())
	}
	for i := int64(5); i < 1000; i++ {
		r.Add(i)
	}
	if len(r.Sample()) != 10 {
		t.Errorf("len = %d, want 10", len(r.Sample()))
	}
	if r.Seen() != 1000 {
		t.Errorf("seen = %d, want 1000", r.Seen())
	}
	if r.Cap() != 10 {
		t.Errorf("cap = %d", r.Cap())
	}
}

// TestReservoirUniform: every stream position should appear in the sample
// with probability k/n. Run many trials and check per-element inclusion
// frequencies are within a loose band.
func TestReservoirUniform(t *testing.T) {
	const (
		k      = 5
		n      = 50
		trials = 20000
	)
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		r, err := NewReservoir(k, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < n; i++ {
			r.Add(i)
		}
		for _, v := range r.Sample() {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Errorf("position %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
}

// TestAddNMatchesRepeatedAdd: AddN must preserve the inclusion probability of
// earlier elements: after k distinct fills and a huge batch of v, the
// fraction of slots still holding early values should be ~k/(k+batch).
func TestAddNInclusionProbability(t *testing.T) {
	const (
		k     = 100
		batch = 900
	)
	early := 0
	const trials = 2000
	for trial := 0; trial < trials; trial++ {
		r, err := NewReservoir(k, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < k; i++ {
			r.Add(-1) // early marker
		}
		r.AddN(7, batch)
		for _, v := range r.Sample() {
			if v == -1 {
				early++
			}
		}
	}
	got := float64(early) / float64(trials*k)
	want := float64(k) / float64(k+batch) // 0.1
	if math.Abs(got-want) > 0.02 {
		t.Errorf("early survival = %.4f, want ~%.4f", got, want)
	}
}

func TestAddNPartialFill(t *testing.T) {
	r, err := NewReservoir(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	r.AddN(5, 4)
	if len(r.Sample()) != 4 || r.Seen() != 4 {
		t.Fatalf("after AddN(5,4): len=%d seen=%d", len(r.Sample()), r.Seen())
	}
	r.AddN(6, 20)
	if len(r.Sample()) != 10 || r.Seen() != 24 {
		t.Fatalf("after AddN(6,20): len=%d seen=%d", len(r.Sample()), r.Seen())
	}
	r.AddN(7, 0)
	if r.Seen() != 24 {
		t.Errorf("AddN with count=0 changed seen to %d", r.Seen())
	}
}

func TestAddWeighted(t *testing.T) {
	r, err := NewReservoir(1000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Weight 2.5 should add on average 2.5 copies.
	for i := 0; i < 10000; i++ {
		r.AddWeighted(1, 2.5)
	}
	got := float64(r.Seen()) / 10000
	if math.Abs(got-2.5) > 0.1 {
		t.Errorf("mean copies = %.3f, want ~2.5", got)
	}
	seen := r.Seen()
	r.AddWeighted(1, 0)
	r.AddWeighted(1, -3)
	r.AddWeighted(1, math.NaN())
	if r.Seen() != seen {
		t.Error("non-positive/NaN weights must be ignored")
	}
}

func TestWeightedReservoirBias(t *testing.T) {
	// Two values, weight 9:1. Sample of 1 should pick the heavy value ~90%.
	heavy := 0
	const trials = 5000
	for trial := 0; trial < trials; trial++ {
		w, err := NewWeightedReservoir(1, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		w.Add(1, 9)
		w.Add(2, 1)
		if w.Sample()[0] == 1 {
			heavy++
		}
	}
	got := float64(heavy) / trials
	if got < 0.85 || got > 0.95 {
		t.Errorf("heavy value sampled %.3f, want ~0.9", got)
	}
}

func TestWeightedReservoirBookkeeping(t *testing.T) {
	w, err := NewWeightedReservoir(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(1, 2)
	w.Add(2, 3.5)
	w.Add(3, 0)           // ignored
	w.Add(4, math.Inf(1)) // ignored
	if w.Seen() != 2 {
		t.Errorf("seen = %d, want 2", w.Seen())
	}
	if math.Abs(w.Mass()-5.5) > 1e-9 {
		t.Errorf("mass = %v, want 5.5", w.Mass())
	}
	if w.Cap() != 3 {
		t.Errorf("cap = %d", w.Cap())
	}
	w.Add(5, 1)
	w.Add(6, 1)
	if len(w.Sample()) != 3 {
		t.Errorf("sample len = %d, want 3", len(w.Sample()))
	}
}

func TestReservoirMergeErrors(t *testing.T) {
	r, err := NewReservoir(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Merge(nil); err == nil {
		t.Error("merge nil: want error")
	}
	o, err := NewReservoir(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Merge(o); err == nil {
		t.Error("capacity mismatch: want error")
	}
}

func TestReservoirMergeBookkeeping(t *testing.T) {
	r, _ := NewReservoir(10, 1)
	o, _ := NewReservoir(10, 2)

	// Merging an empty shard is a no-op.
	for i := int64(0); i < 3; i++ {
		r.Add(i)
	}
	if err := r.Merge(o); err != nil {
		t.Fatal(err)
	}
	if r.Seen() != 3 || len(r.Sample()) != 3 {
		t.Fatalf("after empty merge: seen=%d len=%d", r.Seen(), len(r.Sample()))
	}

	// Merging into an empty reservoir adopts the shard's sample.
	for i := int64(10); i < 14; i++ {
		o.Add(i)
	}
	empty, _ := NewReservoir(10, 3)
	if err := empty.Merge(o); err != nil {
		t.Fatal(err)
	}
	if empty.Seen() != 4 || len(empty.Sample()) != 4 {
		t.Fatalf("merge into empty: seen=%d len=%d", empty.Seen(), len(empty.Sample()))
	}

	// Two under-full partitions merge into their exact union.
	if err := r.Merge(o); err != nil {
		t.Fatal(err)
	}
	if r.Seen() != 7 || len(r.Sample()) != 7 {
		t.Fatalf("under-full merge: seen=%d len=%d", r.Seen(), len(r.Sample()))
	}
	got := map[int64]bool{}
	for _, v := range r.Sample() {
		got[v] = true
	}
	for _, v := range []int64{0, 1, 2, 10, 11, 12, 13} {
		if !got[v] {
			t.Errorf("under-full merge lost value %d", v)
		}
	}
	// o is untouched.
	if o.Seen() != 4 || len(o.Sample()) != 4 {
		t.Errorf("merge mutated source: seen=%d len=%d", o.Seen(), len(o.Sample()))
	}

	// Over-full merge caps at capacity and sums seen.
	a, _ := NewReservoir(10, 4)
	b, _ := NewReservoir(10, 5)
	for i := int64(0); i < 100; i++ {
		a.Add(i)
		b.Add(100 + i)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Seen() != 200 || len(a.Sample()) != 10 {
		t.Fatalf("full merge: seen=%d len=%d", a.Seen(), len(a.Sample()))
	}
}

// TestReservoirMergeUnbiased: splitting a stream across two shard reservoirs
// and merging must leave every stream position with inclusion probability
// k/n, exactly as if one reservoir had sampled the whole stream. This is the
// distributional guarantee parallel Sweep relies on.
func TestReservoirMergeUnbiased(t *testing.T) {
	const (
		k      = 5
		n      = 50
		split  = 20 // shard A samples [0,split), shard B samples [split,n)
		trials = 20000
	)
	counts := make([]int, n)
	for trial := 0; trial < trials; trial++ {
		a, err := NewReservoir(k, int64(3*trial+1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewReservoir(k, int64(3*trial+2))
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < split; i++ {
			a.Add(i)
		}
		for i := int64(split); i < n; i++ {
			b.Add(i)
		}
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if a.Seen() != n || len(a.Sample()) != k {
			t.Fatalf("merged: seen=%d len=%d", a.Seen(), len(a.Sample()))
		}
		for _, v := range a.Sample() {
			counts[v]++
		}
	}
	want := float64(trials) * k / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Errorf("position %d sampled %d times, want ~%.0f", i, c, want)
		}
	}
}

func TestWeightedReservoirMergeErrors(t *testing.T) {
	w, _ := NewWeightedReservoir(3, 1)
	if err := w.Merge(nil); err == nil {
		t.Error("merge nil: want error")
	}
	o, _ := NewWeightedReservoir(4, 2)
	if err := w.Merge(o); err == nil {
		t.Error("capacity mismatch: want error")
	}
}

func TestWeightedReservoirMergeBookkeeping(t *testing.T) {
	w, _ := NewWeightedReservoir(3, 1)
	o, _ := NewWeightedReservoir(3, 2)
	w.Add(1, 2)
	w.Add(2, 3)
	o.Add(3, 1.5)
	o.Add(4, 0.5)
	o.Add(5, 1)
	o.Add(6, 1)
	if err := w.Merge(o); err != nil {
		t.Fatal(err)
	}
	if w.Seen() != 6 {
		t.Errorf("seen = %d, want 6", w.Seen())
	}
	if math.Abs(w.Mass()-9) > 1e-9 {
		t.Errorf("mass = %v, want 9", w.Mass())
	}
	if len(w.Sample()) != 3 {
		t.Errorf("sample len = %d, want 3", len(w.Sample()))
	}
	// o is untouched.
	if o.Seen() != 4 || math.Abs(o.Mass()-4) > 1e-9 {
		t.Errorf("merge mutated source: seen=%d mass=%v", o.Seen(), o.Mass())
	}
}

// TestWeightedReservoirMergeBias: the weighted-sampling bias must survive a
// merge — a heavy item offered to one shard should win a merged k=1 sample
// over a light item offered to the other shard ~weight proportionally.
func TestWeightedReservoirMergeBias(t *testing.T) {
	heavy := 0
	const trials = 5000
	for trial := 0; trial < trials; trial++ {
		a, err := NewWeightedReservoir(1, int64(2*trial+1))
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewWeightedReservoir(1, int64(2*trial+2))
		if err != nil {
			t.Fatal(err)
		}
		a.Add(1, 9)
		b.Add(2, 1)
		if err := a.Merge(b); err != nil {
			t.Fatal(err)
		}
		if a.Sample()[0] == 1 {
			heavy++
		}
	}
	got := float64(heavy) / trials
	if got < 0.85 || got > 0.95 {
		t.Errorf("heavy value sampled %.3f, want ~0.9", got)
	}
}

func TestEstimateDistinct(t *testing.T) {
	if got := EstimateDistinct(nil, 100); got != 0 {
		t.Errorf("empty sample = %v", got)
	}
	// Full "sample" of the population: estimate must equal true distinct.
	full := []int64{1, 1, 2, 3, 3, 3, 4}
	got := EstimateDistinct(full, int64(len(full)))
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("full sample estimate = %v, want 4", got)
	}
	// Never exceeds population size and never drops below observed distinct.
	got = EstimateDistinct([]int64{1, 2, 3}, 4)
	if got > 4 || got < 3 {
		t.Errorf("estimate = %v, want within [3,4]", got)
	}
}

func TestEstimateDistinctStatistical(t *testing.T) {
	// Population: 1000 distinct values each appearing 10 times. A 10% sample
	// should estimate distinct within a factor ~2 of 1000.
	rng := rand.New(rand.NewSource(8))
	var population []int64
	for v := int64(0); v < 1000; v++ {
		for c := 0; c < 10; c++ {
			population = append(population, v)
		}
	}
	rng.Shuffle(len(population), func(i, j int) { population[i], population[j] = population[j], population[i] })
	sampleVals := population[:1000]
	got := EstimateDistinct(sampleVals, int64(len(population)))
	if got < 500 || got > 2000 {
		t.Errorf("distinct estimate = %v, want within [500,2000] of 1000", got)
	}
}

// Property: the reservoir never exceeds its capacity, Seen counts correctly,
// and with fewer offers than capacity the sample is exactly the stream.
func TestReservoirQuick(t *testing.T) {
	f := func(vals []int64, kSeed uint8) bool {
		k := int(kSeed%50) + 1
		r, err := NewReservoir(k, 99)
		if err != nil {
			return false
		}
		for _, v := range vals {
			r.Add(v)
		}
		if r.Seen() != int64(len(vals)) {
			return false
		}
		if len(vals) <= k {
			s := r.Sample()
			if len(s) != len(vals) {
				return false
			}
			for i := range vals {
				if s[i] != vals[i] {
					return false
				}
			}
			return true
		}
		return len(r.Sample()) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: AddN(v, c) leaves the same Seen as c individual Adds and keeps
// every sampled element a member of the offered multiset.
func TestAddNQuick(t *testing.T) {
	f := func(counts []uint8, kSeed uint8) bool {
		k := int(kSeed%20) + 1
		r, err := NewReservoir(k, 7)
		if err != nil {
			return false
		}
		offered := map[int64]bool{}
		var total int64
		for i, c := range counts {
			v := int64(i)
			n := int64(c % 50)
			r.AddN(v, n)
			if n > 0 {
				offered[v] = true
			}
			total += n
		}
		if r.Seen() != total {
			return false
		}
		for _, v := range r.Sample() {
			if !offered[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
