package data

import (
	"fmt"

	"github.com/sitstats/sits/internal/mem"
)

// ChunkReader streams a table's rows as fixed-grid chunks in ascending Seq
// order. A returned Chunk (and its column slices) is valid until the next
// Next or Close call; readers over in-memory tables hand out zero-copy
// sub-slices, readers over segment-backed tables reuse per-reader decode
// buffers. Next reports done=false with a nil error when the window is
// exhausted.
type ChunkReader interface {
	Next() (c Chunk, ok bool, err error)
	Close() error
}

// RangeFilter asks a chunk reader to skip chunks that provably contain no
// row with Column's value in [Lo, Hi]. Skipping is best-effort — segment
// readers consult per-block min/max footers, in-memory readers skip nothing
// — so consumers must still filter rows; the filter only reduces decoded
// and streamed data. Skipped chunks leave gaps in the Seq sequence (the grid
// itself never shifts).
type RangeFilter struct {
	Column string
	Lo, Hi int64
}

// ScanSpec configures OpenChunksSpec: an optional memory grant that accounts
// the reader's decode scratch, an optional range filter for block skipping,
// and a chunk-index window.
type ScanSpec struct {
	// Grant accounts segment decode buffers (Force on open, released on
	// Close). nil means un-budgeted.
	Grant *mem.Grant
	// Filter enables block skipping; see RangeFilter.
	Filter *RangeFilter
	// Lo and Hi bound the chunk indexes streamed: [Lo, Hi). Hi <= 0 means
	// NumChunks(chunkSize). Parallel scans give each worker its own window
	// over one shared grid, so Seq values stay global.
	Lo, Hi int
}

// NumChunks returns the number of chunks a chunkSize-grid scan yields; the
// grid depends only on the table size, never on the consumer.
func (t *Table) NumChunks(chunkSize int) int {
	if chunkSize <= 0 {
		return 0
	}
	return (t.NumRows() + chunkSize - 1) / chunkSize
}

// OpenChunks streams the whole table as chunks over the named columns; see
// OpenChunksSpec.
func (t *Table) OpenChunks(chunkSize int, columns ...string) (ChunkReader, error) {
	return t.OpenChunksSpec(chunkSize, ScanSpec{}, columns...)
}

// OpenChunksSpec opens a streaming chunk reader over the named columns.
// Chunk boundaries and Seq numbering are identical to ScanChunks on the same
// table, so chunked consumers that merge per-chunk partials in Seq order get
// the same result whether the table is in-memory or segment-backed, at any
// parallelism. Unlike ScanChunks, a segment-backed table is never
// materialized: blocks decode on demand into reader-owned buffers.
func (t *Table) OpenChunksSpec(chunkSize int, spec ScanSpec, columns ...string) (ChunkReader, error) {
	if chunkSize <= 0 {
		return nil, fmt.Errorf("data: table %q: chunk size %d must be positive", t.name, chunkSize)
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("data: table %q: scan needs at least one column", t.name)
	}
	n := t.NumChunks(chunkSize)
	lo, hi := spec.Lo, spec.Hi
	if hi <= 0 || hi > n {
		hi = n
	}
	if lo < 0 {
		lo = 0
	}
	if lo > hi {
		lo = hi
	}
	if t.seg != nil && !t.materialized() {
		return t.seg.openChunks(chunkSize, lo, hi, spec, columns...)
	}
	cols := make([][]int64, len(columns))
	for i, c := range columns {
		vals, err := t.Column(c)
		if err != nil {
			return nil, err
		}
		cols[i] = vals
	}
	// In-memory tables ignore the filter: there are no block statistics, so
	// nothing is provably skippable.
	return &memChunkReader{cols: cols, chunkSize: chunkSize, nrows: t.NumRows(), next: lo, hi: hi,
		sub: make([][]int64, len(cols))}, nil
}

// memChunkReader yields zero-copy sub-slice chunks of in-memory columns.
type memChunkReader struct {
	cols      [][]int64
	sub       [][]int64
	chunkSize int
	nrows     int
	next, hi  int
}

func (r *memChunkReader) Next() (Chunk, bool, error) {
	if r.next >= r.hi {
		return Chunk{}, false, nil
	}
	ci := r.next
	r.next++
	start := ci * r.chunkSize
	end := start + r.chunkSize
	if end > r.nrows {
		end = r.nrows
	}
	for i := range r.cols {
		r.sub[i] = r.cols[i][start:end]
	}
	return Chunk{Start: start, Seq: ci, Cols: r.sub}, true, nil
}

func (r *memChunkReader) Close() error { return nil }

// openChunks builds a streaming reader over the segment's blocks.
func (s *Segment) openChunks(chunkSize, lo, hi int, spec ScanSpec, columns ...string) (ChunkReader, error) {
	r := &segChunkReader{
		seg:       s,
		colIdx:    make([]int, len(columns)),
		chunkSize: chunkSize,
		next:      lo,
		hi:        hi,
		filterCol: -1,
		decGroup:  -1,
		grant:     spec.Grant,
		dec:       make([][]int64, len(columns)),
		out:       make([][]int64, len(columns)),
	}
	for i, c := range columns {
		ci, err := s.columnIndex(c)
		if err != nil {
			return nil, err
		}
		r.colIdx[i] = ci
	}
	if f := spec.Filter; f != nil {
		ci, err := s.columnIndex(f.Column)
		if err != nil {
			return nil, err
		}
		r.filterCol, r.filterLo, r.filterHi = ci, f.Lo, f.Hi
	}
	// Account the reader's worst-case scratch: one decoded group per
	// requested column, the shared encoded-block buffer, and — when the
	// chunk grid is not block-aligned — per-column assembly buffers.
	r.reserved = int64(len(columns))*int64(s.blockRows)*8 + int64(s.maxPlen+4)
	if chunkSize != s.blockRows {
		r.reserved += int64(len(columns)) * int64(chunkSize) * 8
	}
	r.grant.Force(r.reserved)
	return r, nil
}

// segChunkReader streams chunks by decoding segment blocks on demand. One
// decoded row group per column is cached, so a grid finer than the block
// height decodes each block once, and the block-aligned grid (chunkSize ==
// BlockRows) hands decoded blocks out directly with no assembly copy.
type segChunkReader struct {
	seg       *Segment
	colIdx    []int
	chunkSize int
	next, hi  int

	filterCol          int
	filterLo, filterHi int64

	decGroup int       // group currently decoded in dec, -1 if none
	dec      [][]int64 // per requested column: decoded group values
	asm      [][]int64 // per requested column: assembly buffers
	out      [][]int64 // the Cols slice handed out, rebound per chunk
	scratch  []byte

	grant    *mem.Grant
	reserved int64
	closed   bool
}

// groupRange returns the first and last group indexes covering rows
// [start, end). Groups before the last are always full (blockRows rows), so
// the mapping is a plain division.
func (r *segChunkReader) groupRange(start, end int) (g0, g1 int) {
	return start / r.seg.blockRows, (end - 1) / r.seg.blockRows
}

// skippable reports whether every group covering the chunk provably misses
// the range filter.
func (r *segChunkReader) skippable(g0, g1 int) bool {
	if r.filterCol < 0 {
		return false
	}
	for g := g0; g <= g1; g++ {
		if r.seg.groupOverlaps(g, r.filterCol, r.filterLo, r.filterHi) {
			return false
		}
	}
	return true
}

// decodeGroup decodes group g for every requested column into r.dec.
func (r *segChunkReader) decodeGroup(g int) error {
	if r.decGroup == g {
		return nil
	}
	for i, c := range r.colIdx {
		var err error
		r.dec[i], r.scratch, err = r.seg.readBlock(g, c, r.dec[i], r.scratch)
		if err != nil {
			r.decGroup = -1
			return err
		}
	}
	r.decGroup = g
	return nil
}

func (r *segChunkReader) Next() (Chunk, bool, error) {
	nrows := int(r.seg.nrows)
	for r.next < r.hi {
		ci := r.next
		r.next++
		start := ci * r.chunkSize
		end := start + r.chunkSize
		if end > nrows {
			end = nrows
		}
		g0, g1 := r.groupRange(start, end)
		if r.skippable(g0, g1) {
			continue
		}
		if g0 == g1 {
			if err := r.decodeGroup(g0); err != nil {
				return Chunk{}, false, err
			}
			off := start - g0*r.seg.blockRows
			for i := range r.out {
				r.out[i] = r.dec[i][off : off+(end-start)]
			}
			return Chunk{Start: start, Seq: ci, Cols: r.out}, true, nil
		}
		// The chunk spans a group boundary: assemble it column-major from
		// each overlapped group's decoded block.
		if r.asm == nil {
			r.asm = make([][]int64, len(r.colIdx))
			for i := range r.asm {
				r.asm[i] = make([]int64, r.chunkSize)
			}
		}
		filled := 0
		for g := g0; g <= g1; g++ {
			if err := r.decodeGroup(g); err != nil {
				return Chunk{}, false, err
			}
			gStart := g * r.seg.blockRows
			from := start + filled - gStart
			take := len(r.dec[0]) - from
			if take > end-(start+filled) {
				take = end - (start + filled)
			}
			for i := range r.asm {
				copy(r.asm[i][filled:filled+take], r.dec[i][from:from+take])
			}
			filled += take
		}
		for i := range r.out {
			r.out[i] = r.asm[i][:filled]
		}
		return Chunk{Start: start, Seq: ci, Cols: r.out}, true, nil
	}
	return Chunk{}, false, nil
}

func (r *segChunkReader) Close() error {
	if !r.closed {
		r.closed = true
		r.grant.Release(r.reserved)
	}
	return nil
}
