package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// ReadCSV loads a table from CSV. The first record must be a header with the
// column names; every subsequent record must contain one base-10 int64 per
// column. The table is named by the name argument.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV header for %q: %w", name, err)
	}
	cols := make([]string, len(header))
	copy(cols, header)
	t, err := NewTable(name, cols...)
	if err != nil {
		return nil, err
	}
	// Parse into column-major buffers and flush them in batches through the
	// bulk-append API: one copy per column per batch instead of one append
	// per field.
	const batchRows = 4096
	buf := make([][]int64, len(cols))
	for i := range buf {
		buf[i] = make([]int64, 0, batchRows)
	}
	flush := func() error {
		if len(buf[0]) == 0 {
			return nil
		}
		t.Grow(len(buf[0]))
		if err := t.AppendColumns(buf...); err != nil {
			return err
		}
		for i := range buf {
			buf[i] = buf[i][:0]
		}
		return nil
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading CSV for %q line %d: %w", name, line, err)
		}
		if len(rec) != len(cols) {
			return nil, fmt.Errorf("data: CSV for %q line %d: got %d fields, want %d", name, line, len(rec), len(cols))
		}
		for i, field := range rec {
			v, err := strconv.ParseInt(field, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("data: CSV for %q line %d column %q: %w", name, line, cols[i], err)
			}
			buf[i] = append(buf[i], v)
		}
		if len(buf[0]) == batchRows {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return t, nil
}

// StreamCSVToSegment converts CSV (header row, one base-10 int64 per column)
// into an already-created segment writer, batch by batch: peak memory is one
// parse batch plus the writer's pending group, independent of the row count,
// so tables far larger than RAM convert in bounded space. The writer must
// have been created with CreateSegment over exactly the CSV's header columns;
// the caller still owns Finish. Returns the number of data rows streamed.
func StreamCSVToSegment(name string, r io.Reader, w *SegmentWriter) (int, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return 0, fmt.Errorf("data: reading CSV header for %q: %w", name, err)
	}
	want := w.ColumnNames()
	if len(header) != len(want) {
		return 0, fmt.Errorf("data: CSV for %q has %d columns, segment expects %d", name, len(header), len(want))
	}
	for i, h := range header {
		if h != want[i] {
			return 0, fmt.Errorf("data: CSV for %q column %d is %q, segment expects %q", name, i, h, want[i])
		}
	}
	const batchRows = 4096
	buf := make([][]int64, len(header))
	for i := range buf {
		buf[i] = make([]int64, 0, batchRows)
	}
	rows := 0
	flush := func() error {
		if len(buf[0]) == 0 {
			return nil
		}
		if err := w.Append(buf); err != nil {
			return err
		}
		rows += len(buf[0])
		for i := range buf {
			buf[i] = buf[i][:0]
		}
		return nil
	}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return rows, fmt.Errorf("data: reading CSV for %q line %d: %w", name, line, err)
		}
		if len(rec) != len(header) {
			return rows, fmt.Errorf("data: CSV for %q line %d: got %d fields, want %d", name, line, len(rec), len(header))
		}
		for i, field := range rec {
			v, err := strconv.ParseInt(field, 10, 64)
			if err != nil {
				return rows, fmt.Errorf("data: CSV for %q line %d column %q: %w", name, line, header[i], err)
			}
			buf[i] = append(buf[i], v)
		}
		if len(buf[0]) == batchRows {
			if err := flush(); err != nil {
				return rows, err
			}
		}
	}
	if err := flush(); err != nil {
		return rows, err
	}
	return rows, nil
}

// ReadCSVFile loads a table from the CSV file at path; see ReadCSV.
func ReadCSVFile(name, path string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() //statcheck:ignore droppederr read-only file, close errors carry no data loss
	return ReadCSV(name, f)
}

// WriteCSV writes the table as CSV with a header row.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.ColumnNames()); err != nil {
		return err
	}
	n := t.NumRows()
	cols := make([][]int64, t.NumCols())
	for i, name := range t.ColumnNames() {
		c, err := t.Column(name)
		if err != nil {
			return err
		}
		cols[i] = c
	}
	rec := make([]string, len(cols))
	for r := 0; r < n; r++ {
		for i := range cols {
			rec[i] = strconv.FormatInt(cols[i][r], 10)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the table as CSV to the file at path.
func WriteCSVFile(t *Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteCSV(t, f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
