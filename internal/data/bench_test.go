package data

import (
	"math/rand"
	"testing"
)

func benchTable(b *testing.B, rows int) *Table {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	t := MustNewTable("B", "x", "y", "a")
	for i := 0; i < rows; i++ {
		t.AppendRow(rng.Int63n(1000), rng.Int63n(1000), rng.Int63n(1000))
	}
	return t
}

// BenchmarkScan measures the sequential-scan throughput Sweep depends on.
func BenchmarkScan(b *testing.B) {
	t := benchTable(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc, err := t.Scan("x", "a")
		if err != nil {
			b.Fatal(err)
		}
		var sum int64
		for sc.Next() {
			sum += sc.Row()[0]
		}
		_ = sum
	}
	b.SetBytes(int64(t.NumRows() * 16))
}

// BenchmarkScanChunks measures the same traversal through the chunked scan
// API the parallel engine uses: columns are read directly from chunk
// sub-slices instead of being copied into a per-row buffer.
func BenchmarkScanChunks(b *testing.B) {
	t := benchTable(b, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chunks, err := t.ScanChunks(4096, "x", "a")
		if err != nil {
			b.Fatal(err)
		}
		var sum int64
		for _, ch := range chunks {
			xs := ch.Cols[0]
			for r := range xs {
				sum += xs[r]
			}
		}
		_ = sum
	}
	b.SetBytes(int64(t.NumRows() * 16))
}

func BenchmarkAppendRow(b *testing.B) {
	t := MustNewTable("B", "x", "y")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.AppendRow(int64(i), int64(i))
	}
}
