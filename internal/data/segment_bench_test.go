package data

import (
	"path/filepath"
	"testing"
)

// benchSegment writes a 1M-row, 3-column segment (sorted id, small-domain
// dim, noisy val — one column per encoding class) and returns its path.
func benchSegment(b *testing.B, raw bool) string {
	b.Helper()
	const rows = 1 << 20
	path := filepath.Join(b.TempDir(), "bench.seg")
	w, err := CreateSegment(path, "B", []string{"id", "dim", "val"})
	if err != nil {
		b.Fatal(err)
	}
	w.SetForceRaw(raw)
	const batch = 8192
	cols := [][]int64{make([]int64, batch), make([]int64, batch), make([]int64, batch)}
	x := uint64(1)
	for start := 0; start < rows; start += batch {
		for i := range cols[0] {
			r := int64(start + i)
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			cols[0][i] = r * 2
			cols[1][i] = (r / 1000) % 7
			cols[2][i] = int64(x % 1_000_000)
		}
		if err := w.Append(cols); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		b.Fatal(err)
	}
	return path
}

// BenchmarkSegmentScan measures streamed chunk-reader throughput over a
// segment file — decode included — in MB/s of decoded column data, for
// block-compressed and raw segments.
func BenchmarkSegmentScan(b *testing.B) {
	for _, mode := range []struct {
		name string
		raw  bool
	}{{"compressed", false}, {"raw", true}} {
		b.Run(mode.name, func(b *testing.B) {
			path := benchSegment(b, mode.raw)
			t, err := OpenSegmentTable(path)
			if err != nil {
				b.Fatal(err)
			}
			defer t.Close()
			b.SetBytes(int64(t.NumRows()) * 3 * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rd, err := t.OpenChunks(DefaultBlockRows, "id", "dim", "val")
				if err != nil {
					b.Fatal(err)
				}
				var sum int64
				for {
					ch, ok, err := rd.Next()
					if err != nil {
						b.Fatal(err)
					}
					if !ok {
						break
					}
					for _, v := range ch.Cols[2] {
						sum += v
					}
				}
				if err := rd.Close(); err != nil {
					b.Fatal(err)
				}
				if sum == 0 {
					b.Fatal("scan consumed nothing")
				}
			}
		})
	}
}

// BenchmarkSegmentWrite measures segment creation throughput (encode + CRC +
// write) in MB/s of input column data.
func BenchmarkSegmentWrite(b *testing.B) {
	const rows = 1 << 20
	b.SetBytes(rows * 3 * 8)
	for i := 0; i < b.N; i++ {
		benchSegment(b, false)
	}
}
