package data

import (
	"path/filepath"
	"reflect"
	"testing"
)

func writeTestTable(t *testing.T, name string) *Table {
	t.Helper()
	tab := MustNewTable(name, "x", "y")
	for i := 0; i < 100; i++ {
		if err := tab.AppendRow(int64(i), int64(i%7)); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func TestLoadCatalogCSV(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"R", "S"} {
		if err := WriteCSVFile(writeTestTable(t, name), filepath.Join(dir, name+".csv")); err != nil {
			t.Fatal(err)
		}
	}

	// Explicit table list.
	cat, err := LoadCatalog(dir, "", []string{"R"})
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.Names(); !reflect.DeepEqual(got, []string{"R"}) {
		t.Fatalf("explicit list loaded %v, want [R]", got)
	}

	// Discovery loads every .csv in sorted order.
	cat, err = LoadCatalog(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.Names(); !reflect.DeepEqual(got, []string{"R", "S"}) {
		t.Fatalf("discovery loaded %v, want [R S]", got)
	}
	if n := cat.MustTable("S").NumRows(); n != 100 {
		t.Fatalf("S has %d rows, want 100", n)
	}
}

func TestLoadCatalogSegments(t *testing.T) {
	dir := t.TempDir()
	tab := writeTestTable(t, "R")
	if err := WriteSegment(filepath.Join(dir, "R.seg"), tab); err != nil {
		t.Fatal(err)
	}
	cat, err := LoadCatalog("", dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := cat.MustTable("R")
	if got.Segment() == nil {
		t.Fatal("segment-loaded table is not segment-backed")
	}
	want, _ := tab.Column("x")
	have, err := got.Column("x")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(have, want) {
		t.Fatal("segment round-trip changed column x")
	}
}

func TestLoadCatalogErrors(t *testing.T) {
	if _, err := LoadCatalog("a", "b", nil); err == nil {
		t.Fatal("want error for both -csv and -segments")
	}
	if _, err := LoadCatalog("", "", nil); err == nil {
		t.Fatal("want error for neither directory")
	}
	if _, err := LoadCatalog(t.TempDir(), "", nil); err == nil {
		t.Fatal("want error for empty directory")
	}
	if _, err := LoadCatalog(t.TempDir(), "", []string{"missing"}); err == nil {
		t.Fatal("want error for missing table file")
	}
}
