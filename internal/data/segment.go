package data

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"github.com/sitstats/sits/internal/colblk"
)

// Segment file format (SEG1). A segment is the disk-native columnar form of
// one table: rows are split into fixed-size row groups (DefaultBlockRows
// rows), and each group stores one block per column, encoded independently
// with the cheapest colblk encoding picked by trial sizing. Blocks are
// CRC32-checked like SRN1 spill runs, and the footer carries per-block
// min/max so scans can skip blocks that cannot match a range filter —
// streaming chunks straight off disk without ever materializing the table:
//
//	file:    magic "SEG1" (4 bytes) | blocks... | footer | trailer
//	block:   colblk payload (plen bytes) | crc32 uint32 (over the payload)
//	trailer: footerLen uint32 | footerCRC uint32 | magic "SEG1" (4 bytes)
//
// The footer (one blob, checksummed as a whole by footerCRC) holds:
//
//	name    uint16 len | bytes           table name
//	ncols   uint32, then per column:     uint16 len | bytes
//	nrows   uint64
//	blockRows uint32                     rows per full row group
//	ngroups uint32, then per group:
//	  count uint32                       rows in the group (< blockRows only
//	                                     for the final group)
//	  per column: off uint64 | plen uint32 | enc uint8 | min int64 | max int64
//
// Opening a segment reads and verifies only the footer; block payloads are
// fetched (and CRC-verified) on demand with ReadAt, so concurrent readers
// share one file handle.

const (
	segMagic = "SEG1"
	// DefaultBlockRows is the row-group height. It matches the shared-scan
	// chunk granularity (sit.scanChunkRows), so streamed scans hit the
	// aligned block-per-chunk fast path.
	DefaultBlockRows = 4096
	// segTrailerLen is footerLen + footerCRC + magic.
	segTrailerLen = 12
)

// blockMeta locates and describes one column block within a row group.
type blockMeta struct {
	off      int64
	plen     uint32
	enc      byte
	min, max int64
}

// segGroup is one row group's footer entry: its row count, the table row
// index of its first row, and one block per column.
type segGroup struct {
	count  int
	start  int64
	blocks []blockMeta
}

// SegmentWriter streams a table into a segment file, buffering at most one
// row group in memory.
type SegmentWriter struct {
	f         *os.File
	bw        *bufio.Writer
	path      string
	name      string
	cols      []string
	blockRows int
	forceRaw  bool
	fork      func(n int, task func(i int))

	pend    [][]int64 // buffered rows per column, < blockRows
	encBufs [][]byte  // per-column encode scratch: payload | crc
	metas   []blockMeta
	off     int64
	nrows   int64
	groups  []segGroup
	err     error
}

// CreateSegment opens a segment writer at path for a table with the given
// name and columns. Column names must be unique and non-empty.
func CreateSegment(path, name string, columns []string) (*SegmentWriter, error) {
	if name == "" {
		return nil, fmt.Errorf("data: segment table name must not be empty")
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("data: segment %q must have at least one column", name)
	}
	seen := make(map[string]bool, len(columns))
	for _, c := range columns {
		if c == "" {
			return nil, fmt.Errorf("data: segment %q: column name must not be empty", name)
		}
		if seen[c] {
			return nil, fmt.Errorf("data: segment %q: duplicate column %q", name, c)
		}
		seen[c] = true
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("data: create segment: %v", err)
	}
	w := &SegmentWriter{
		f:         f,
		bw:        bufio.NewWriterSize(f, 1<<18),
		path:      path,
		name:      name,
		cols:      append([]string(nil), columns...),
		blockRows: DefaultBlockRows,
		fork:      func(n int, task func(int)) { serialFork(n, task) },
		pend:      make([][]int64, len(columns)),
		encBufs:   make([][]byte, len(columns)),
		metas:     make([]blockMeta, len(columns)),
	}
	if _, err := w.bw.WriteString(segMagic); err != nil {
		w.abort()
		return nil, fmt.Errorf("data: write segment header: %v", err)
	}
	w.off = 4
	return w, nil
}

func serialFork(n int, task func(int)) {
	for i := 0; i < n; i++ {
		task(i)
	}
}

// ColumnNames returns the writer's column names in schema order.
func (w *SegmentWriter) ColumnNames() []string { return append([]string(nil), w.cols...) }

// SetBlockRows overrides the row-group height; it must be called before the
// first Append. Values below 1 keep the default.
func (w *SegmentWriter) SetBlockRows(n int) {
	if n > 0 && w.nrows == 0 {
		w.blockRows = n
	}
}

// SetForceRaw disables the codec, storing every block with EncRaw; used by
// benchmarks to measure the compression win.
func (w *SegmentWriter) SetForceRaw(on bool) { w.forceRaw = on }

// SetFork installs a parallel fork-join callback (fork(n, task) must run
// task(0..n-1) to completion before returning) used to encode the columns of
// a row group concurrently. The default encodes serially; callers with a
// worker pool inject it here, keeping this package free of an executor
// dependency.
func (w *SegmentWriter) SetFork(fork func(n int, task func(i int))) {
	if fork != nil {
		w.fork = fork
	}
}

// abort closes and removes a half-written segment.
func (w *SegmentWriter) abort() {
	if w.f == nil {
		return
	}
	_ = w.f.Close()
	_ = os.Remove(w.path)
	w.f = nil
}

// Append adds a column-major batch of rows: cols[i] belongs to the i-th
// declared column and all slices must have equal length. Full row groups are
// encoded and flushed as they accumulate; the caller may reuse cols.
func (w *SegmentWriter) Append(cols [][]int64) error {
	if w.err != nil {
		return w.err
	}
	if len(cols) != len(w.cols) {
		return fmt.Errorf("data: segment %q: Append got %d columns, want %d", w.name, len(cols), len(w.cols))
	}
	n := len(cols[0])
	for _, c := range cols[1:] {
		if len(c) != n {
			return fmt.Errorf("data: segment %q: ragged batch (%d vs %d rows)", w.name, len(c), n)
		}
	}
	done := 0
	for done < n {
		if len(w.pend[0]) == 0 && n-done >= w.blockRows {
			// Aligned fast path: encode a full group straight from the
			// caller's batch, no buffering copy.
			sub := make([][]int64, len(cols))
			for i := range cols {
				sub[i] = cols[i][done : done+w.blockRows]
			}
			if err := w.flushGroup(sub, w.blockRows); err != nil {
				return err
			}
			done += w.blockRows
			continue
		}
		take := w.blockRows - len(w.pend[0])
		if take > n-done {
			take = n - done
		}
		for i := range cols {
			w.pend[i] = append(w.pend[i], cols[i][done:done+take]...)
		}
		done += take
		if len(w.pend[0]) == w.blockRows {
			if err := w.flushGroup(w.pend, w.blockRows); err != nil {
				return err
			}
			for i := range w.pend {
				w.pend[i] = w.pend[i][:0]
			}
		}
	}
	return nil
}

// AppendTable appends every row of t (which must have exactly the writer's
// columns, in order).
func (w *SegmentWriter) AppendTable(t *Table) error {
	cols := make([][]int64, len(w.cols))
	for i, name := range w.cols {
		vals, err := t.Column(name)
		if err != nil {
			return err
		}
		cols[i] = vals
	}
	return w.Append(cols)
}

// flushGroup encodes one row group (n rows per column) and writes its
// blocks. Column encoding fans out through the injected fork callback; the
// sequential write afterwards assigns offsets.
func (w *SegmentWriter) flushGroup(cols [][]int64, n int) error {
	w.fork(len(cols), func(c int) {
		vals := cols[c][:n]
		enc, size := colblk.Choose(vals)
		if w.forceRaw {
			enc, size = colblk.EncRaw, 8*n
		}
		buf := colblk.Append(w.encBufs[c][:0], enc, vals)
		var tail [4]byte
		binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(buf))
		buf = append(buf, tail[:]...)
		w.encBufs[c] = buf
		minV, maxV := colblk.MinMax(vals)
		w.metas[c] = blockMeta{plen: uint32(size), enc: enc, min: minV, max: maxV}
	})
	g := segGroup{count: n, start: w.nrows, blocks: make([]blockMeta, len(cols))}
	for c := range cols {
		w.metas[c].off = w.off
		g.blocks[c] = w.metas[c]
		if _, err := w.bw.Write(w.encBufs[c]); err != nil {
			w.err = err
			w.abort()
			return fmt.Errorf("data: write segment %s: %v", w.path, err)
		}
		w.off += int64(len(w.encBufs[c]))
	}
	w.groups = append(w.groups, g)
	w.nrows += int64(n)
	return nil
}

// Finish flushes the final partial group, writes the footer and trailer, and
// closes the file.
func (w *SegmentWriter) Finish() error {
	if w.err != nil {
		return w.err
	}
	if len(w.pend[0]) > 0 {
		if err := w.flushGroup(w.pend, len(w.pend[0])); err != nil {
			return err
		}
	}
	footer := w.encodeFooter()
	var trailer [segTrailerLen]byte
	binary.LittleEndian.PutUint32(trailer[:], uint32(len(footer)))
	binary.LittleEndian.PutUint32(trailer[4:], crc32.ChecksumIEEE(footer))
	copy(trailer[8:], segMagic)
	if _, err := w.bw.Write(footer); err == nil {
		_, w.err = w.bw.Write(trailer[:])
	} else {
		w.err = err
	}
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	if w.err != nil {
		w.abort()
		return fmt.Errorf("data: write segment footer %s: %v", w.path, w.err)
	}
	if err := w.f.Close(); err != nil {
		_ = os.Remove(w.path)
		w.f = nil
		return fmt.Errorf("data: close segment %s: %v", w.path, err)
	}
	w.f = nil
	return nil
}

func appendString16(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...)
}

func (w *SegmentWriter) encodeFooter() []byte {
	var buf []byte
	buf = appendString16(buf, w.name)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.cols)))
	for _, c := range w.cols {
		buf = appendString16(buf, c)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w.nrows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w.blockRows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(w.groups)))
	for _, g := range w.groups {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g.count))
		for _, b := range g.blocks {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(b.off))
			buf = binary.LittleEndian.AppendUint32(buf, b.plen)
			buf = append(buf, b.enc)
			buf = binary.LittleEndian.AppendUint64(buf, uint64(b.min))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(b.max))
		}
	}
	return buf
}

// WriteSegment writes an in-memory table to a segment file at path.
func WriteSegment(path string, t *Table) error {
	w, err := CreateSegment(path, t.Name(), t.ColumnNames())
	if err != nil {
		return err
	}
	if err := w.AppendTable(t); err != nil {
		w.abort()
		return err
	}
	return w.Finish()
}

// Segment is an open, read-only segment file: the parsed footer plus a
// shared file handle. Block reads go through ReadAt, so a Segment is safe
// for concurrent readers.
type Segment struct {
	f         *os.File
	path      string
	name      string
	cols      []string
	byName    map[string]int
	blockRows int
	nrows     int64
	groups    []segGroup
	maxPlen   int
}

// OpenSegment opens and verifies the segment at path. Only the footer is
// read; blocks stream on demand.
func OpenSegment(path string) (*Segment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("data: open segment: %v", err)
	}
	s, err := parseSegment(f, path)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	return s, nil
}

func parseSegment(f *os.File, path string) (*Segment, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("data: segment %s: %v", path, err)
	}
	size := fi.Size()
	if size < 4+segTrailerLen {
		return nil, fmt.Errorf("data: segment %s: too short (%d bytes)", path, size)
	}
	var head [4]byte
	if _, err := f.ReadAt(head[:], 0); err != nil {
		return nil, fmt.Errorf("data: segment %s: read header: %v", path, err)
	}
	if string(head[:]) != segMagic {
		return nil, fmt.Errorf("data: segment %s: bad magic %q", path, head[:])
	}
	var trailer [segTrailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-segTrailerLen); err != nil {
		return nil, fmt.Errorf("data: segment %s: read trailer: %v", path, err)
	}
	if string(trailer[8:]) != segMagic {
		return nil, fmt.Errorf("data: segment %s: bad trailer magic %q", path, trailer[8:])
	}
	flen := int64(binary.LittleEndian.Uint32(trailer[:]))
	fcrc := binary.LittleEndian.Uint32(trailer[4:])
	if flen <= 0 || flen > size-4-segTrailerLen {
		return nil, fmt.Errorf("data: segment %s: footer length %d out of range", path, flen)
	}
	footer := make([]byte, flen)
	if _, err := f.ReadAt(footer, size-segTrailerLen-flen); err != nil {
		return nil, fmt.Errorf("data: segment %s: read footer: %v", path, err)
	}
	if got := crc32.ChecksumIEEE(footer); got != fcrc {
		return nil, fmt.Errorf("data: segment %s: footer checksum mismatch (file %08x, computed %08x)", path, fcrc, got)
	}
	s := &Segment{f: f, path: path}
	if err := s.parseFooter(footer, size-segTrailerLen-flen); err != nil {
		return nil, fmt.Errorf("data: segment %s: %v", path, err)
	}
	return s, nil
}

// footerReader walks the footer blob with bounds checks.
type footerReader struct {
	buf []byte
	off int
	err error
}

func (r *footerReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.buf) {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

func (r *footerReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *footerReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *footerReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *footerReader) str() string { return string(r.take(int(r.u16()))) }

func (s *Segment) parseFooter(footer []byte, dataEnd int64) error {
	r := &footerReader{buf: footer}
	s.name = r.str()
	ncols := int(r.u32())
	if r.err == nil && (ncols <= 0 || ncols > 1<<20) {
		return fmt.Errorf("footer declares %d columns", ncols)
	}
	if r.err != nil {
		return fmt.Errorf("footer truncated")
	}
	s.cols = make([]string, ncols)
	s.byName = make(map[string]int, ncols)
	for i := range s.cols {
		s.cols[i] = r.str()
		s.byName[s.cols[i]] = i
	}
	s.nrows = int64(r.u64())
	s.blockRows = int(r.u32())
	ngroups := int(r.u32())
	if r.err == nil && (s.blockRows <= 0 || ngroups < 0) {
		return fmt.Errorf("footer declares blockRows %d, %d groups", s.blockRows, ngroups)
	}
	var rows int64
	s.groups = make([]segGroup, 0, ngroups)
	for gi := 0; gi < ngroups && r.err == nil; gi++ {
		g := segGroup{count: int(r.u32()), start: rows, blocks: make([]blockMeta, ncols)}
		if r.err == nil && (g.count <= 0 || g.count > s.blockRows) {
			return fmt.Errorf("group %d declares %d rows (blockRows %d)", gi, g.count, s.blockRows)
		}
		for c := range g.blocks {
			b := blockMeta{off: int64(r.u64()), plen: r.u32()}
			if eb := r.take(1); eb != nil {
				b.enc = eb[0]
			}
			b.min = int64(r.u64())
			b.max = int64(r.u64())
			if r.err == nil && (b.off < 4 || b.off+int64(b.plen)+4 > dataEnd) {
				return fmt.Errorf("group %d column %d block [%d,+%d) outside data area", gi, c, b.off, b.plen)
			}
			if int(b.plen) > s.maxPlen {
				s.maxPlen = int(b.plen)
			}
			g.blocks[c] = b
		}
		rows += int64(g.count)
		s.groups = append(s.groups, g)
	}
	if r.err != nil {
		return fmt.Errorf("footer truncated")
	}
	if rows != s.nrows {
		return fmt.Errorf("footer groups sum to %d rows, header says %d", rows, s.nrows)
	}
	return nil
}

// Close closes the segment's file handle.
func (s *Segment) Close() error {
	if s.f == nil {
		return nil
	}
	f := s.f
	s.f = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("data: close segment %s: %v", s.path, err)
	}
	return nil
}

// Name returns the table name stored in the segment.
func (s *Segment) Name() string { return s.name }

// Path returns the segment's file path.
func (s *Segment) Path() string { return s.path }

// NumRows returns the segment's row count.
func (s *Segment) NumRows() int64 { return s.nrows }

// BlockRows returns the segment's row-group height.
func (s *Segment) BlockRows() int { return s.blockRows }

// NumGroups returns the number of row groups.
func (s *Segment) NumGroups() int { return len(s.groups) }

// ColumnNames returns the segment's column names in declaration order.
func (s *Segment) ColumnNames() []string { return append([]string(nil), s.cols...) }

// DataBytes returns the total encoded block bytes (CRCs included), the
// segment's on-disk scan volume.
func (s *Segment) DataBytes() int64 {
	var n int64
	for _, g := range s.groups {
		for _, b := range g.blocks {
			n += int64(b.plen) + 4
		}
	}
	return n
}

// columnIndex resolves a column name.
func (s *Segment) columnIndex(name string) (int, error) {
	i, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("data: segment %q has no column %q", s.name, name)
	}
	return i, nil
}

// readBlock reads, CRC-verifies and decodes the block of group g, column c
// into dst, reusing dst and scratch capacity. It returns the decoded values
// and the (possibly grown) scratch buffer.
func (s *Segment) readBlock(g, c int, dst []int64, scratch []byte) ([]int64, []byte, error) {
	bm := s.groups[g].blocks[c]
	need := int(bm.plen) + 4
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	buf := scratch[:need]
	if _, err := s.f.ReadAt(buf, bm.off); err != nil {
		return nil, scratch, fmt.Errorf("data: segment %s: read block g%d c%d: %v", s.path, g, c, err)
	}
	sum := crc32.ChecksumIEEE(buf[:bm.plen])
	if got := binary.LittleEndian.Uint32(buf[bm.plen:]); got != sum {
		return nil, scratch, fmt.Errorf("data: segment %s: block g%d c%d checksum mismatch (file %08x, computed %08x)", s.path, g, c, got, sum)
	}
	vals, err := colblk.Decode(dst, bm.enc, buf[:bm.plen], s.groups[g].count)
	if err != nil {
		return nil, scratch, fmt.Errorf("data: segment %s: decode block g%d c%d: %w", s.path, g, c, err)
	}
	return vals, scratch, nil
}

// ReadColumn decodes the named column in full. It is the materialization
// path for consumers that need random access (index builds, executor scans);
// streaming consumers should use the table's chunk readers instead.
func (s *Segment) ReadColumn(name string) ([]int64, error) {
	c, err := s.columnIndex(name)
	if err != nil {
		return nil, err
	}
	out := make([]int64, 0, s.nrows)
	var scratch []byte
	var block []int64
	for g := range s.groups {
		block, scratch, err = s.readBlock(g, c, block, scratch)
		if err != nil {
			return nil, err
		}
		out = append(out, block...)
	}
	return out, nil
}

// ColumnMinMax aggregates the footer's per-block extrema for the named
// column without touching block data. ok is false for an empty segment.
func (s *Segment) ColumnMinMax(name string) (minV, maxV int64, ok bool, err error) {
	c, err := s.columnIndex(name)
	if err != nil {
		return 0, 0, false, err
	}
	if len(s.groups) == 0 {
		return 0, 0, false, nil
	}
	minV, maxV = s.groups[0].blocks[c].min, s.groups[0].blocks[c].max
	for _, g := range s.groups[1:] {
		if b := g.blocks[c]; b.min < minV {
			minV = b.min
		}
		if b := g.blocks[c]; b.max > maxV {
			maxV = b.max
		}
	}
	return minV, maxV, true, nil
}

// groupOverlaps reports whether group g's block of column c can contain a
// value in [lo, hi].
func (s *Segment) groupOverlaps(g, c int, lo, hi int64) bool {
	b := s.groups[g].blocks[c]
	return b.max >= lo && b.min <= hi
}

// OpenSegmentTable opens the segment at path as a read-only, segment-backed
// Table: scans stream blocks off disk, and full columns materialize lazily
// only when a consumer needs random access. The caller owns the table's
// Close.
func OpenSegmentTable(path string) (*Table, error) {
	seg, err := OpenSegment(path)
	if err != nil {
		return nil, err
	}
	t, err := NewTable(seg.Name(), seg.cols...)
	if err != nil {
		_ = seg.Close()
		return nil, err
	}
	t.seg = seg
	t.segLoaded = make([]bool, len(seg.cols))
	return t, nil
}
