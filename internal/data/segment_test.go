package data

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/sitstats/sits/internal/mem"
)

// buildTestTable makes a three-column table mixing codec-friendly and
// incompressible data: a sorted id, a low-cardinality dim, and noise.
func buildTestTable(t *testing.T, rows int) *Table {
	t.Helper()
	tab := MustNewTable("seg", "id", "dim", "noise")
	rng := rand.New(rand.NewSource(11)) //statcheck:ignore rawrand seeded test data
	cols := [][]int64{make([]int64, rows), make([]int64, rows), make([]int64, rows)}
	for i := 0; i < rows; i++ {
		cols[0][i] = int64(i) * 2
		cols[1][i] = int64(i/1000) % 7
		cols[2][i] = int64(rng.Uint64())
	}
	if err := tab.AppendBatch(cols); err != nil {
		t.Fatal(err)
	}
	return tab
}

func writeTestSegment(t *testing.T, tab *Table) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), tab.Name()+".seg")
	if err := WriteSegment(path, tab); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSegmentRoundTrip(t *testing.T) {
	// 2.5 row groups: two full blocks and a partial tail.
	tab := buildTestTable(t, 2*DefaultBlockRows+DefaultBlockRows/2)
	path := writeTestSegment(t, tab)

	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := seg.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if seg.Name() != "seg" {
		t.Fatalf("segment name = %q", seg.Name())
	}
	if got, want := seg.NumRows(), int64(tab.NumRows()); got != want {
		t.Fatalf("NumRows = %d, want %d", got, want)
	}
	if seg.NumGroups() != 3 {
		t.Fatalf("NumGroups = %d, want 3", seg.NumGroups())
	}
	if !reflect.DeepEqual(seg.ColumnNames(), tab.ColumnNames()) {
		t.Fatalf("columns = %v, want %v", seg.ColumnNames(), tab.ColumnNames())
	}
	for _, name := range tab.ColumnNames() {
		got, err := seg.ReadColumn(name)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, tab.MustColumn(name)) {
			t.Fatalf("column %q decodes differently", name)
		}
	}
	// The sorted id and low-cardinality dim must compress below raw size.
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	raw := int64(tab.NumRows()) * 3 * 8
	if fi.Size() >= raw {
		t.Fatalf("segment %d bytes not smaller than raw %d", fi.Size(), raw)
	}
}

func TestSegmentTableSemantics(t *testing.T) {
	tab := buildTestTable(t, DefaultBlockRows+17)
	path := writeTestSegment(t, tab)
	st, err := OpenSegmentTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if st.Name() != "seg" || st.NumRows() != tab.NumRows() || st.NumCols() != 3 {
		t.Fatalf("segment table shape: name %q rows %d cols %d", st.Name(), st.NumRows(), st.NumCols())
	}
	if st.Segment() == nil {
		t.Fatal("Segment() nil on segment-backed table")
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	// Footer-only MinMax, before any column materializes.
	minV, maxV, ok, err := st.MinMax("id")
	if err != nil || !ok {
		t.Fatalf("MinMax: %v %v", ok, err)
	}
	if wantMin, wantMax := int64(0), int64(2*(tab.NumRows()-1)); minV != wantMin || maxV != wantMax {
		t.Fatalf("MinMax = (%d, %d), want (%d, %d)", minV, maxV, wantMin, wantMax)
	}
	// Mutations are rejected.
	if err := st.AppendRow(1, 2, 3); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("AppendRow on segment table: %v", err)
	}
	if err := st.AppendBatch([][]int64{{1}, {2}, {3}}); err == nil {
		t.Fatal("AppendBatch on segment table succeeded")
	}
	if err := st.SetColumn("id", nil); err == nil {
		t.Fatal("SetColumn on segment table succeeded")
	}
	st.Grow(10) // must be a no-op, not a panic
	// Lazy materialization serves full-column consumers identically.
	got, err := st.Column("noise")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tab.MustColumn("noise")) {
		t.Fatal("materialized column differs from source")
	}
	// The eager ScanChunks path also works (materializing on demand).
	chunks, err := st.ScanChunks(1024, "id", "dim")
	if err != nil {
		t.Fatal(err)
	}
	want, err := tab.ScanChunks(1024, "id", "dim")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(chunks, want) {
		t.Fatal("eager ScanChunks differs between segment-backed and in-memory table")
	}
}

// TestSegmentChunkIdentity streams segment chunks at aligned, finer, and
// coarser grids and checks Start/Seq/values are identical to the in-memory
// chunking of the same data.
func TestSegmentChunkIdentity(t *testing.T) {
	tab := buildTestTable(t, 2*DefaultBlockRows+931)
	path := writeTestSegment(t, tab)
	cols := []string{"id", "noise", "dim"}
	for _, chunkSize := range []int{DefaultBlockRows, 1000, 10000, 1, 7 * DefaultBlockRows} {
		st, err := OpenSegmentTable(path)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tab.ScanChunks(chunkSize, cols...)
		if err != nil {
			t.Fatal(err)
		}
		if n := st.NumChunks(chunkSize); n != len(want) {
			t.Fatalf("chunkSize %d: NumChunks = %d, want %d", chunkSize, n, len(want))
		}
		rd, err := st.OpenChunks(chunkSize, cols...)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			ch, ok, err := rd.Next()
			if err != nil || !ok {
				t.Fatalf("chunkSize %d: Next #%d = %v, %v", chunkSize, i, ok, err)
			}
			if ch.Start != want[i].Start || ch.Seq != want[i].Seq {
				t.Fatalf("chunkSize %d chunk %d: Start/Seq (%d,%d), want (%d,%d)",
					chunkSize, i, ch.Start, ch.Seq, want[i].Start, want[i].Seq)
			}
			if !reflect.DeepEqual(ch.Cols, want[i].Cols) {
				t.Fatalf("chunkSize %d chunk %d: values differ", chunkSize, i)
			}
		}
		if _, ok, err := rd.Next(); ok || err != nil {
			t.Fatalf("chunkSize %d: reader not exhausted (%v, %v)", chunkSize, ok, err)
		}
		if err := rd.Close(); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSegmentChunkWindows splits the grid into reader windows and checks the
// concatenation equals the full stream — the sharding pattern parallel scans
// use.
func TestSegmentChunkWindows(t *testing.T) {
	tab := buildTestTable(t, 3*DefaultBlockRows+55)
	path := writeTestSegment(t, tab)
	st, err := OpenSegmentTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	const chunkSize = 1500
	n := st.NumChunks(chunkSize)
	var seqs []int
	for _, w := range [][2]int{{0, n / 3}, {n / 3, 2 * n / 3}, {2 * n / 3, 0}} {
		rd, err := st.OpenChunksSpec(chunkSize, ScanSpec{Lo: w[0], Hi: w[1]}, "id")
		if err != nil {
			t.Fatal(err)
		}
		for {
			ch, ok, err := rd.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			seqs = append(seqs, ch.Seq)
		}
		if err := rd.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(seqs) != n {
		t.Fatalf("windows yielded %d chunks, want %d", len(seqs), n)
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("windowed Seq sequence broken at %d: %d", i, s)
		}
	}
}

// TestSegmentBlockSkipping scans with a range filter over the sorted id
// column and checks blocks outside the range are skipped without losing any
// matching row.
func TestSegmentBlockSkipping(t *testing.T) {
	rows := 4 * DefaultBlockRows
	tab := buildTestTable(t, rows)
	path := writeTestSegment(t, tab)
	st, err := OpenSegmentTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	// id = 2*row, so [2*blockRows, 3*2*blockRows) covers groups 1 and 2 only.
	lo, hi := int64(2*DefaultBlockRows), int64(6*DefaultBlockRows-1)
	rd, err := st.OpenChunksSpec(DefaultBlockRows,
		ScanSpec{Filter: &RangeFilter{Column: "id", Lo: lo, Hi: hi}}, "id")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rd.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	var got []int64
	var emitted []int
	for {
		ch, ok, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		emitted = append(emitted, ch.Seq)
		for _, v := range ch.Cols[0] {
			if v >= lo && v <= hi {
				got = append(got, v)
			}
		}
	}
	if !reflect.DeepEqual(emitted, []int{1, 2}) {
		t.Fatalf("emitted chunk seqs = %v, want [1 2] (blocks 0 and 3 skipped)", emitted)
	}
	var want []int64
	for _, v := range tab.MustColumn("id") {
		if v >= lo && v <= hi {
			want = append(want, v)
		}
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered scan returned %d rows, want %d", len(got), len(want))
	}
}

// TestSegmentReaderAccounting checks the streaming reader's scratch is
// Forced against the grant while open and released on Close.
func TestSegmentReaderAccounting(t *testing.T) {
	tab := buildTestTable(t, 2*DefaultBlockRows)
	path := writeTestSegment(t, tab)
	st, err := OpenSegmentTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	gov := mem.NewGovernor(1) // pathological budget: Force still admits
	grant := gov.Grant("scan")
	rd, err := st.OpenChunksSpec(DefaultBlockRows, ScanSpec{Grant: grant}, "id", "noise")
	if err != nil {
		t.Fatal(err)
	}
	if grant.Used() < int64(2*DefaultBlockRows*8) {
		t.Fatalf("grant holds %d bytes, want at least two decode buffers", grant.Used())
	}
	held := grant.Used()
	for {
		_, ok, err := rd.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if grant.Used() != held {
		t.Fatalf("grant usage drifted during scan: %d -> %d", held, grant.Used())
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	if grant.Used() != 0 {
		t.Fatalf("grant still holds %d bytes after Close", grant.Used())
	}
	if err := gov.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentCorruption bit-flips and truncates segment files: block damage
// must surface checksum errors on scan, footer damage must fail Open.
func TestSegmentCorruption(t *testing.T) {
	tab := buildTestTable(t, 2*DefaultBlockRows)
	path := writeTestSegment(t, tab)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	scanAll := func() error {
		st, err := OpenSegmentTable(path)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := st.Close(); cerr != nil {
				t.Errorf("close: %v", cerr)
			}
		}()
		rd, err := st.OpenChunks(DefaultBlockRows, "id", "dim", "noise")
		if err != nil {
			return err
		}
		defer func() {
			if cerr := rd.Close(); cerr != nil {
				t.Errorf("close: %v", cerr)
			}
		}()
		for {
			_, ok, err := rd.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}
	if err := scanAll(); err != nil {
		t.Fatalf("pristine scan: %v", err)
	}

	t.Run("block-bitflip", func(t *testing.T) {
		defer restore()
		corrupt := append([]byte(nil), pristine...)
		corrupt[len(corrupt)/3] ^= 0x10 // somewhere inside the block data area
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := scanAll(); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("bit-flipped block scan = %v, want checksum mismatch", err)
		}
	})
	t.Run("mid-block-truncation", func(t *testing.T) {
		defer restore()
		// Keep the intact footer (so Open succeeds) but punch the file short
		// underneath it by rewriting with a hole: simulate a torn write by
		// zeroing a block's tail instead, which the CRC must catch.
		corrupt := append([]byte(nil), pristine...)
		for i := 100; i < 200 && i < len(corrupt); i++ {
			corrupt[i] = 0
		}
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := scanAll(); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("zeroed block region scan = %v, want checksum mismatch", err)
		}
	})
	t.Run("truncated-file", func(t *testing.T) {
		defer restore()
		if err := os.WriteFile(path, pristine[:len(pristine)-200], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSegmentTable(path); err == nil {
			t.Fatal("truncated segment opened cleanly")
		}
	})
	t.Run("footer-bitflip", func(t *testing.T) {
		defer restore()
		corrupt := append([]byte(nil), pristine...)
		corrupt[len(corrupt)-20] ^= 0x01 // inside the footer blob
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenSegmentTable(path); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("footer bit-flip open = %v, want footer checksum mismatch", err)
		}
	})
}

func TestSegmentEmptyTable(t *testing.T) {
	tab := MustNewTable("empty", "a", "b")
	path := writeTestSegment(t, tab)
	st, err := OpenSegmentTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if st.NumRows() != 0 || st.NumChunks(4096) != 0 {
		t.Fatalf("empty segment: rows %d chunks %d", st.NumRows(), st.NumChunks(4096))
	}
	if _, _, ok, err := st.MinMax("a"); err != nil || ok {
		t.Fatalf("empty MinMax = %v, %v", ok, err)
	}
	rd, err := st.OpenChunks(4096, "a")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := rd.Next(); ok || err != nil {
		t.Fatalf("empty reader Next = %v, %v", ok, err)
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSegmentWriterBlockRows(t *testing.T) {
	// Odd block height exercises general grouping and the writer's buffered
	// (unaligned) path via small appends.
	path := filepath.Join(t.TempDir(), "odd.seg")
	w, err := CreateSegment(path, "odd", []string{"x"})
	if err != nil {
		t.Fatal(err)
	}
	w.SetBlockRows(100)
	var want []int64
	for i := 0; i < 1234; i += 7 {
		batch := make([]int64, 0, 7)
		for j := 0; j < 7 && i+j < 1234; j++ {
			batch = append(batch, int64((i+j)*13%997))
		}
		want = append(want, batch...)
		if err := w.Append([][]int64{batch}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	seg, err := OpenSegment(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := seg.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if seg.BlockRows() != 100 || seg.NumGroups() != 13 {
		t.Fatalf("blockRows %d groups %d, want 100 and 13", seg.BlockRows(), seg.NumGroups())
	}
	got, err := seg.ReadColumn("x")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("odd-block segment decodes differently")
	}
}
