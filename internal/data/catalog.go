package data

import (
	"fmt"
	"sort"
)

// Catalog maps table names to tables, mirroring a database schema catalog.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table. Adding a table whose name is already registered is
// an error; use Replace to overwrite.
func (c *Catalog) Add(t *Table) error {
	if t == nil {
		return fmt.Errorf("data: cannot add nil table")
	}
	if _, dup := c.tables[t.Name()]; dup {
		return fmt.Errorf("data: catalog already has table %q", t.Name())
	}
	c.tables[t.Name()] = t
	return nil
}

// MustAdd is Add that panics on error.
func (c *Catalog) MustAdd(t *Table) {
	if err := c.Add(t); err != nil {
		panic(err)
	}
}

// Replace registers a table, overwriting any table with the same name.
func (c *Catalog) Replace(t *Table) {
	c.tables[t.Name()] = t
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, error) {
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("data: catalog has no table %q", name)
	}
	return t, nil
}

// MustTable is Table that panics on error.
func (c *Catalog) MustTable(name string) *Table {
	t, err := c.Table(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Has reports whether a table with the given name is registered.
func (c *Catalog) Has(name string) bool {
	_, ok := c.tables[name]
	return ok
}

// Names returns the sorted names of all registered tables.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Len returns the number of registered tables.
func (c *Catalog) Len() int { return len(c.tables) }

// TotalRows returns the sum of row counts over all tables; the paper's
// scheduling experiments fix this to one million (Section 5.2).
func (c *Catalog) TotalRows() int {
	total := 0
	for _, t := range c.tables {
		total += t.NumRows()
	}
	return total
}

// Validate checks every table in the catalog.
func (c *Catalog) Validate() error {
	for _, name := range c.Names() {
		if err := c.tables[name].Validate(); err != nil {
			return err
		}
	}
	return nil
}
