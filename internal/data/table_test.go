package data

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable("", "a"); err == nil {
		t.Error("empty table name: want error")
	}
	if _, err := NewTable("R"); err == nil {
		t.Error("no columns: want error")
	}
	if _, err := NewTable("R", "a", "a"); err == nil {
		t.Error("duplicate column: want error")
	}
	if _, err := NewTable("R", "a", ""); err == nil {
		t.Error("empty column name: want error")
	}
}

func TestAppendAndColumn(t *testing.T) {
	tab := MustNewTable("R", "x", "a")
	if err := tab.AppendRow(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow(2, 20); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow(1); err == nil {
		t.Error("short row: want error")
	}
	if got := tab.NumRows(); got != 2 {
		t.Errorf("NumRows = %d, want 2", got)
	}
	x, err := tab.Column("x")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(x, []int64{1, 2}) {
		t.Errorf("column x = %v", x)
	}
	if _, err := tab.Column("nope"); err == nil {
		t.Error("missing column: want error")
	}
	row, err := tab.Row(1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(row, []int64{2, 20}) {
		t.Errorf("Row(1) = %v", row)
	}
	if _, err := tab.Row(2); err == nil {
		t.Error("row out of range: want error")
	}
}

func TestScanner(t *testing.T) {
	tab := MustNewTable("S", "y", "a", "b")
	for i := int64(0); i < 5; i++ {
		if err := tab.AppendRow(i, i*10, i*100); err != nil {
			t.Fatal(err)
		}
	}
	sc, err := tab.Scan("a", "y")
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int64
	for sc.Next() {
		r := sc.Row()
		got = append(got, []int64{r[0], r[1]})
	}
	want := [][]int64{{0, 0}, {10, 1}, {20, 2}, {30, 3}, {40, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("scan = %v, want %v", got, want)
	}
	if sc.Next() {
		t.Error("exhausted scanner returned Next=true")
	}
	sc.Reset()
	if sc.Remaining() != 5 {
		t.Errorf("Remaining after Reset = %d, want 5", sc.Remaining())
	}
	if _, err := tab.Scan(); err == nil {
		t.Error("scan with no columns: want error")
	}
	if _, err := tab.Scan("missing"); err == nil {
		t.Error("scan with bad column: want error")
	}
}

func TestMinMaxDistinctSorted(t *testing.T) {
	tab := MustNewTable("R", "x")
	for _, v := range []int64{5, -3, 5, 7, 0} {
		if err := tab.AppendRow(v); err != nil {
			t.Fatal(err)
		}
	}
	lo, hi, ok, err := tab.MinMax("x")
	if err != nil || !ok {
		t.Fatalf("MinMax: ok=%v err=%v", ok, err)
	}
	if lo != -3 || hi != 7 {
		t.Errorf("MinMax = (%d,%d), want (-3,7)", lo, hi)
	}
	dv, err := tab.DistinctCount("x")
	if err != nil {
		t.Fatal(err)
	}
	if dv != 4 {
		t.Errorf("DistinctCount = %d, want 4", dv)
	}
	sorted, err := tab.SortedCopy("x")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sorted, []int64{-3, 0, 5, 5, 7}) {
		t.Errorf("SortedCopy = %v", sorted)
	}
	// Original column is untouched.
	x := tab.MustColumn("x")
	if !reflect.DeepEqual(x, []int64{5, -3, 5, 7, 0}) {
		t.Errorf("original column mutated: %v", x)
	}

	empty := MustNewTable("E", "x")
	if _, _, ok, _ := empty.MinMax("x"); ok {
		t.Error("MinMax of empty table: want ok=false")
	}
}

func TestValidate(t *testing.T) {
	tab := MustNewTable("R", "x", "y")
	if err := tab.AppendRow(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Errorf("Validate on consistent table: %v", err)
	}
	if err := tab.SetColumn("y", []int64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err == nil {
		t.Error("Validate with ragged columns: want error")
	}
	if err := tab.SetColumn("zz", nil); err == nil {
		t.Error("SetColumn on missing column: want error")
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	r := MustNewTable("R", "x")
	s := MustNewTable("S", "y")
	c.MustAdd(r)
	c.MustAdd(s)
	if err := c.Add(MustNewTable("R", "z")); err == nil {
		t.Error("duplicate add: want error")
	}
	if err := c.Add(nil); err == nil {
		t.Error("nil add: want error")
	}
	got, err := c.Table("R")
	if err != nil || got != r {
		t.Errorf("Table(R) = %v, %v", got, err)
	}
	if _, err := c.Table("T"); err == nil {
		t.Error("missing table lookup: want error")
	}
	if !c.Has("S") || c.Has("T") {
		t.Error("Has misreported membership")
	}
	if names := c.Names(); !reflect.DeepEqual(names, []string{"R", "S"}) {
		t.Errorf("Names = %v", names)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	if err := r.AppendRow(1); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalRows(); got != 1 {
		t.Errorf("TotalRows = %d, want 1", got)
	}
	c.Replace(MustNewTable("R", "w"))
	if c.MustTable("R").HasColumn("x") {
		t.Error("Replace did not overwrite")
	}
	if err := c.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tab := MustNewTable("R", "x", "a")
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		if err := tab.AppendRow(rng.Int63n(1000)-500, rng.Int63()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("R", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.ColumnNames(), tab.ColumnNames()) {
		t.Errorf("columns = %v", back.ColumnNames())
	}
	for _, col := range tab.ColumnNames() {
		if !reflect.DeepEqual(back.MustColumn(col), tab.MustColumn(col)) {
			t.Errorf("column %q differs after round trip", col)
		}
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("R", strings.NewReader("")); err == nil {
		t.Error("empty CSV: want error")
	}
	if _, err := ReadCSV("R", strings.NewReader("x,y\n1\n")); err == nil {
		t.Error("ragged CSV: want error")
	}
	if _, err := ReadCSV("R", strings.NewReader("x\nnotanint\n")); err == nil {
		t.Error("non-integer CSV: want error")
	}
}

func TestScanChunks(t *testing.T) {
	tab := MustNewTable("C", "x", "a")
	const rows = 10
	for i := int64(0); i < rows; i++ {
		if err := tab.AppendRow(i, i*100); err != nil {
			t.Fatal(err)
		}
	}
	chunks, err := tab.ScanChunks(4, "a", "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("chunks = %d, want 3", len(chunks))
	}
	wantStarts := []int{0, 4, 8}
	wantLens := []int{4, 4, 2}
	row := int64(0)
	for ci, ch := range chunks {
		if ch.Start != wantStarts[ci] || ch.Len() != wantLens[ci] {
			t.Errorf("chunk %d: start=%d len=%d, want start=%d len=%d",
				ci, ch.Start, ch.Len(), wantStarts[ci], wantLens[ci])
		}
		if len(ch.Cols) != 2 {
			t.Fatalf("chunk %d: %d columns, want 2", ci, len(ch.Cols))
		}
		for r := 0; r < ch.Len(); r++ {
			if ch.Cols[0][r] != row*100 || ch.Cols[1][r] != row {
				t.Errorf("chunk %d row %d = (%d,%d), want (%d,%d)",
					ci, r, ch.Cols[0][r], ch.Cols[1][r], row*100, row)
			}
			row++
		}
	}
	if row != rows {
		t.Errorf("chunks covered %d rows, want %d", row, rows)
	}

	// A chunk size at least the table size yields a single chunk.
	one, err := tab.ScanChunks(rows, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0].Len() != rows {
		t.Errorf("single chunk: got %d chunks", len(one))
	}

	if _, err := tab.ScanChunks(0, "x"); err == nil {
		t.Error("chunk size 0: want error")
	}
	if _, err := tab.ScanChunks(4); err == nil {
		t.Error("no columns: want error")
	}
	if _, err := tab.ScanChunks(4, "missing"); err == nil {
		t.Error("missing column: want error")
	}
	empty := MustNewTable("E", "x")
	chunks, err = empty.ScanChunks(4, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 0 {
		t.Errorf("empty table: %d chunks, want 0", len(chunks))
	}
}

// Property: chunk boundaries depend only on the table size and chunk size,
// chunks are contiguous, and concatenating them reproduces every column.
func TestScanChunksCoverQuick(t *testing.T) {
	f := func(vals []int64, sizeSeed uint8) bool {
		tab := MustNewTable("Q", "v")
		for _, v := range vals {
			if err := tab.AppendRow(v); err != nil {
				return false
			}
		}
		size := int(sizeSeed%7) + 1
		chunks, err := tab.ScanChunks(size, "v")
		if err != nil {
			return false
		}
		var got []int64
		next := 0
		for _, ch := range chunks {
			if ch.Start != next || ch.Len() == 0 || ch.Len() > size {
				return false
			}
			got = append(got, ch.Cols[0]...)
			next += ch.Len()
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: scanning any generated table returns exactly the appended rows in
// order, for arbitrary column selections.
func TestScannerMatchesRowsQuick(t *testing.T) {
	f := func(rows [][3]int64, pick uint8) bool {
		tab := MustNewTable("Q", "a", "b", "c")
		for _, r := range rows {
			if err := tab.AppendRow(r[0], r[1], r[2]); err != nil {
				return false
			}
		}
		names := []string{"a", "b", "c"}
		// Pick a non-empty column subset from the 3 columns.
		var sel []string
		for i := 0; i < 3; i++ {
			if pick&(1<<i) != 0 {
				sel = append(sel, names[i])
			}
		}
		if len(sel) == 0 {
			sel = []string{"b"}
		}
		sc, err := tab.Scan(sel...)
		if err != nil {
			return false
		}
		i := 0
		for sc.Next() {
			got := sc.Row()
			for j, name := range sel {
				want := rows[i][int(name[0]-'a')]
				if got[j] != want {
					return false
				}
			}
			i++
		}
		return i == len(rows)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestGenerationCounter pins the staleness contract: every mutating
// operation bumps the table generation, and read-only accessors leave it
// untouched, so a cache that captured Generation() can detect any
// intervening mutation.
func TestGenerationCounter(t *testing.T) {
	tab := MustNewTable("G", "a", "b")
	if g := tab.Generation(); g != 0 {
		t.Fatalf("fresh table generation = %d, want 0", g)
	}
	last := tab.Generation()
	step := func(name string, f func() error) {
		t.Helper()
		if err := f(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g := tab.Generation(); g <= last {
			t.Fatalf("%s did not bump generation (still %d)", name, g)
		}
		last = tab.Generation()
	}
	step("AppendRow", func() error { return tab.AppendRow(1, 2) })
	step("Grow", func() error { tab.Grow(64); return nil })
	step("AppendColumns", func() error { return tab.AppendColumns([]int64{3}, []int64{4}) })
	step("AppendBatch", func() error { return tab.AppendBatch([][]int64{{5}, {6}}) })
	step("SetColumn", func() error { return tab.SetColumn("a", []int64{1, 3, 5}) })

	// Read-only paths must not bump.
	before := tab.Generation()
	_ = tab.NumRows()
	_, _ = tab.Column("a")
	_, _, _, _ = tab.MinMax("b")
	_, _ = tab.SortedCopy("b")
	if g := tab.Generation(); g != before {
		t.Fatalf("read-only access bumped generation: %d -> %d", before, g)
	}

	// Failed mutations must not bump either: a rejected append changed
	// nothing, so caches built before it are still valid.
	if err := tab.AppendRow(1); err == nil {
		t.Fatal("AppendRow with wrong arity unexpectedly succeeded")
	}
	if g := tab.Generation(); g != before {
		t.Fatalf("failed mutation bumped generation: %d -> %d", before, g)
	}
}
