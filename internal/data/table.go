// Package data implements the in-memory, column-oriented storage substrate
// used throughout the repository. It stands in for the relational storage
// engine of the RDBMS the paper's prototype ran on: it provides named tables
// with typed (int64) columns, sequential scans over column subsets, and a
// catalog that maps table names to tables.
//
// The Sweep family of SIT-creation algorithms only requires sequential scans
// over pairs (join attribute, target attribute) and per-table cardinalities,
// both of which this package provides. All attribute values are int64, which
// matches the integer-domain synthetic data sets used in the paper's
// evaluation (Section 5.1).
package data

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Column is a single named attribute of a table, stored contiguously.
type Column struct {
	Name string
	Vals []int64
}

// Table is an in-memory relation with column-major storage. Tables are
// append-only: rows are added with AppendRow and never removed, which mirrors
// the read-mostly statistics-creation workload of the paper.
type Table struct {
	name   string
	cols   []Column
	byName map[string]int
	// gen counts mutations (appends, column replacement, and capacity growth,
	// which may reallocate the backing arrays). Caches that retain derived
	// state keyed on a table — sorted runs, join intermediates, served
	// estimates — record the generation they were built against and must
	// assert it still matches before serving, so a mutated table can never
	// satisfy a stale lookup. The counter is atomic so concurrent cache
	// lookups can read it while a writer appends; the column data itself is
	// not synchronized — concurrent mutation and scanning still needs
	// external coordination.
	gen atomic.Uint64

	// seg backs a read-only, segment-backed table (OpenSegmentTable): scans
	// stream blocks off disk and full columns materialize lazily under segMu
	// on first Column access, with segLoaded[i] marking columns already
	// decoded into cols[i].Vals. Segment-backed tables reject mutation.
	seg       *Segment
	segMu     sync.Mutex
	segLoaded []bool
}

// NewTable creates an empty table with the given column names. Column names
// must be unique and non-empty.
func NewTable(name string, columns ...string) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("data: table name must not be empty")
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("data: table %q must have at least one column", name)
	}
	t := &Table{
		name:   name,
		cols:   make([]Column, len(columns)),
		byName: make(map[string]int, len(columns)),
	}
	for i, c := range columns {
		if c == "" {
			return nil, fmt.Errorf("data: table %q: column name must not be empty", name)
		}
		if _, dup := t.byName[c]; dup {
			return nil, fmt.Errorf("data: table %q: duplicate column %q", name, c)
		}
		t.cols[i] = Column{Name: c}
		t.byName[c] = i
	}
	return t, nil
}

// MustNewTable is NewTable that panics on error; intended for tests and
// statically correct construction sites such as generators.
func MustNewTable(name string, columns ...string) *Table {
	t, err := NewTable(name, columns...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the table's name.
func (t *Table) Name() string { return t.name }

// Generation returns the table's mutation counter. It starts at zero and is
// bumped by every operation that changes or may relocate the table's data
// (AppendRow, Grow, AppendColumns, AppendBatch, SetColumn). Any cache keyed
// on a table must capture the generation at build time and compare it on
// lookup; a mismatch means the cached state is stale.
func (t *Table) Generation() uint64 { return t.gen.Load() }

// NumRows returns the number of rows in the table.
func (t *Table) NumRows() int {
	if t.seg != nil {
		return int(t.seg.nrows)
	}
	if len(t.cols) == 0 {
		return 0
	}
	return len(t.cols[0].Vals)
}

// Segment returns the backing segment of a segment-backed table, or nil for
// an in-memory table.
func (t *Table) Segment() *Segment { return t.seg }

// Close releases the backing segment's file handle, if any. In-memory
// tables need no Close; calling it is a no-op.
func (t *Table) Close() error {
	if t.seg == nil {
		return nil
	}
	return t.seg.Close()
}

// materialized reports whether every column of a segment-backed table has
// been decoded into memory.
func (t *Table) materialized() bool {
	t.segMu.Lock()
	defer t.segMu.Unlock()
	for _, ok := range t.segLoaded {
		if !ok {
			return false
		}
	}
	return true
}

// NumCols returns the number of columns in the table.
func (t *Table) NumCols() int { return len(t.cols) }

// ColumnNames returns the column names in declaration order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.cols))
	for i := range t.cols {
		names[i] = t.cols[i].Name
	}
	return names
}

// HasColumn reports whether the table has a column with the given name.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// Column returns the full value slice of the named column. The returned slice
// is the table's backing storage and must not be modified by callers. On a
// segment-backed table the column is decoded from disk and cached on first
// access; consumers that only scan should prefer OpenChunks, which streams
// blocks without retaining them.
func (t *Table) Column(name string) ([]int64, error) {
	i, ok := t.byName[name]
	if !ok {
		return nil, fmt.Errorf("data: table %q has no column %q", t.name, name)
	}
	if t.seg != nil {
		t.segMu.Lock()
		defer t.segMu.Unlock()
		if !t.segLoaded[i] {
			vals, err := t.seg.ReadColumn(name)
			if err != nil {
				return nil, err
			}
			t.cols[i].Vals = vals
			t.segLoaded[i] = true
		}
	}
	return t.cols[i].Vals, nil
}

// MustColumn is Column that panics on error.
func (t *Table) MustColumn(name string) []int64 {
	v, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return v
}

// AppendRow appends one row. The number of values must equal the number of
// columns, in declaration order.
func (t *Table) AppendRow(vals ...int64) error {
	if t.seg != nil {
		return fmt.Errorf("data: table %q is segment-backed and read-only", t.name)
	}
	if len(vals) != len(t.cols) {
		return fmt.Errorf("data: table %q: AppendRow got %d values, want %d", t.name, len(vals), len(t.cols))
	}
	for i, v := range vals {
		t.cols[i].Vals = append(t.cols[i].Vals, v)
	}
	t.gen.Add(1)
	return nil
}

// Grow preallocates capacity for at least n additional rows in every column,
// so a sequence of appends totalling n rows performs at most one allocation
// per column. Growth is geometric (at least doubling), so calling Grow before
// every one of a long series of small batch appends stays amortized O(1) per
// row instead of copying the table each time. It never shrinks and is a no-op
// for n <= 0.
func (t *Table) Grow(n int) {
	if n <= 0 || t.seg != nil {
		return
	}
	// Growth may reallocate the backing arrays, so slices handed out before
	// Grow can go stale; that is a mutation as far as caches are concerned.
	t.gen.Add(1)
	for i := range t.cols {
		vals := t.cols[i].Vals
		if cap(vals)-len(vals) >= n {
			continue
		}
		newCap := len(vals) + n
		if c := 2 * cap(vals); c > newCap {
			newCap = c
		}
		grown := make([]int64, len(vals), newCap)
		copy(grown, vals)
		t.cols[i].Vals = grown
	}
}

// AppendColumns appends one value slice per column, in declaration order: all
// slices must have equal length, and vals[i] is appended to column i. This is
// the bulk counterpart of AppendRow — a batch of k rows costs one copy per
// column instead of k per-row appends.
func (t *Table) AppendColumns(vals ...[]int64) error {
	if t.seg != nil {
		return fmt.Errorf("data: table %q is segment-backed and read-only", t.name)
	}
	if len(vals) != len(t.cols) {
		return fmt.Errorf("data: table %q: AppendColumns got %d columns, want %d", t.name, len(vals), len(t.cols))
	}
	n := len(vals[0])
	for i := 1; i < len(vals); i++ {
		if len(vals[i]) != n {
			return fmt.Errorf("data: table %q: AppendColumns column %q has %d rows, want %d",
				t.name, t.cols[i].Name, len(vals[i]), n)
		}
	}
	for i, v := range vals {
		t.cols[i].Vals = append(t.cols[i].Vals, v...)
	}
	t.gen.Add(1)
	return nil
}

// AppendBatch appends a column-major batch: cols[i] is appended to column i.
// It is AppendColumns with a slice-of-slices signature, matching the batch
// layout the vectorized executor produces.
func (t *Table) AppendBatch(cols [][]int64) error {
	return t.AppendColumns(cols...)
}

// SetColumn replaces the contents of the named column. All columns of a table
// must have equal length once the table is used, which is validated by
// Validate; SetColumn itself only checks the column exists.
func (t *Table) SetColumn(name string, vals []int64) error {
	if t.seg != nil {
		return fmt.Errorf("data: table %q is segment-backed and read-only", t.name)
	}
	i, ok := t.byName[name]
	if !ok {
		return fmt.Errorf("data: table %q has no column %q", t.name, name)
	}
	t.cols[i].Vals = vals
	t.gen.Add(1)
	return nil
}

// Validate checks the structural invariants of the table: all columns have
// the same length. A segment-backed table is validated against its footer
// when opened, and unmaterialized columns have no in-memory length to check.
func (t *Table) Validate() error {
	if t.seg != nil {
		return nil
	}
	n := t.NumRows()
	for i := range t.cols {
		if len(t.cols[i].Vals) != n {
			return fmt.Errorf("data: table %q: column %q has %d rows, want %d",
				t.name, t.cols[i].Name, len(t.cols[i].Vals), n)
		}
	}
	return nil
}

// Row materializes row i as a fresh slice in column declaration order.
// It is intended for tests and small result sets; scans should use Scanner.
func (t *Table) Row(i int) ([]int64, error) {
	if i < 0 || i >= t.NumRows() {
		return nil, fmt.Errorf("data: table %q: row %d out of range [0,%d)", t.name, i, t.NumRows())
	}
	row := make([]int64, len(t.cols))
	for c := range t.cols {
		row[c] = t.cols[c].Vals[i]
	}
	return row, nil
}

// Scanner is a sequential scan over a subset of a table's columns. It is the
// access path Sweep uses (Section 3.1 step 1 of the paper).
type Scanner struct {
	cols [][]int64
	n    int
	pos  int
	row  []int64
}

// Scan returns a Scanner over the named columns in the given order.
func (t *Table) Scan(columns ...string) (*Scanner, error) {
	if len(columns) == 0 {
		return nil, fmt.Errorf("data: table %q: scan needs at least one column", t.name)
	}
	s := &Scanner{
		cols: make([][]int64, len(columns)),
		n:    t.NumRows(),
		row:  make([]int64, len(columns)),
	}
	for i, c := range columns {
		vals, err := t.Column(c)
		if err != nil {
			return nil, err
		}
		s.cols[i] = vals
	}
	return s, nil
}

// Chunk is one contiguous row range of a table, exposed as column sub-slices.
// Cols[i] holds the values of the i-th requested column for the chunk's rows;
// all sub-slices have equal length and share the table's backing storage, so
// they must not be modified. Chunks let scan consumers read columns directly
// (no per-row copy) and are the unit of work of parallel shared scans.
type Chunk struct {
	// Start is the table row index of the chunk's first row.
	Start int
	// Seq is the chunk's index in scan order — the sequence number parallel
	// consumers carry so per-chunk partials merge back in scan order no
	// matter which pool worker processed the chunk.
	Seq int
	// Cols holds one sub-slice per requested column, in request order.
	Cols [][]int64
}

// Len returns the number of rows in the chunk.
func (c Chunk) Len() int {
	if len(c.Cols) == 0 {
		return 0
	}
	return len(c.Cols[0])
}

// ScanChunks splits the table's rows into contiguous chunks of at most
// chunkSize rows over the named columns. Chunk boundaries depend only on the
// table size and chunkSize — not on who consumes the chunks — so chunked
// results that merge per-chunk partials in chunk order are independent of the
// consumer's parallelism. An empty table yields no chunks.
func (t *Table) ScanChunks(chunkSize int, columns ...string) ([]Chunk, error) {
	if chunkSize <= 0 {
		return nil, fmt.Errorf("data: table %q: chunk size %d must be positive", t.name, chunkSize)
	}
	if len(columns) == 0 {
		return nil, fmt.Errorf("data: table %q: scan needs at least one column", t.name)
	}
	cols := make([][]int64, len(columns))
	for i, c := range columns {
		vals, err := t.Column(c)
		if err != nil {
			return nil, err
		}
		cols[i] = vals
	}
	n := t.NumRows()
	chunks := make([]Chunk, 0, (n+chunkSize-1)/chunkSize)
	for start := 0; start < n; start += chunkSize {
		end := start + chunkSize
		if end > n {
			end = n
		}
		sub := make([][]int64, len(cols))
		for i := range cols {
			sub[i] = cols[i][start:end]
		}
		chunks = append(chunks, Chunk{Start: start, Seq: len(chunks), Cols: sub})
	}
	return chunks, nil
}

// Next advances the scanner and reports whether a row is available.
func (s *Scanner) Next() bool {
	if s.pos >= s.n {
		return false
	}
	for i := range s.cols {
		s.row[i] = s.cols[i][s.pos]
	}
	s.pos++
	return true
}

// Row returns the current row. The slice is reused across Next calls.
func (s *Scanner) Row() []int64 { return s.row }

// Reset rewinds the scanner to the first row.
func (s *Scanner) Reset() { s.pos = 0 }

// Remaining returns the number of rows not yet consumed.
func (s *Scanner) Remaining() int { return s.n - s.pos }

// MinMax returns the minimum and maximum values of the named column.
// ok is false when the table is empty. On a segment-backed table the
// extrema aggregate from the footer's per-block statistics, touching no
// block data.
func (t *Table) MinMax(column string) (minV, maxV int64, ok bool, err error) {
	if t.seg != nil {
		return t.seg.ColumnMinMax(column)
	}
	vals, err := t.Column(column)
	if err != nil {
		return 0, 0, false, err
	}
	if len(vals) == 0 {
		return 0, 0, false, nil
	}
	minV, maxV = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV, true, nil
}

// DistinctCount returns the number of distinct values of the named column.
func (t *Table) DistinctCount(column string) (int, error) {
	vals, err := t.Column(column)
	if err != nil {
		return 0, err
	}
	seen := make(map[int64]struct{}, len(vals))
	for _, v := range vals {
		seen[v] = struct{}{}
	}
	return len(seen), nil
}

// SortedCopy returns a sorted copy of the named column; used by histogram
// construction and the exact multiplicity index builder.
func (t *Table) SortedCopy(column string) ([]int64, error) {
	vals, err := t.Column(column)
	if err != nil {
		return nil, err
	}
	cp := make([]int64, len(vals))
	copy(cp, vals)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	return cp, nil
}
