package data

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAppendColumns(t *testing.T) {
	tab := MustNewTable("R", "x", "a")
	if err := tab.AppendColumns([]int64{1, 2, 3}, []int64{10, 20, 30}); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendColumns([]int64{4}, []int64{40}); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Errorf("NumRows = %d, want 4", tab.NumRows())
	}
	if !reflect.DeepEqual(tab.MustColumn("x"), []int64{1, 2, 3, 4}) {
		t.Errorf("x = %v", tab.MustColumn("x"))
	}
	if !reflect.DeepEqual(tab.MustColumn("a"), []int64{10, 20, 30, 40}) {
		t.Errorf("a = %v", tab.MustColumn("a"))
	}
	if err := tab.Validate(); err != nil {
		t.Error(err)
	}
	// Empty append is a no-op.
	if err := tab.AppendColumns(nil, nil); err != nil {
		t.Errorf("empty append: %v", err)
	}
	if tab.NumRows() != 4 {
		t.Errorf("NumRows after empty append = %d", tab.NumRows())
	}
}

func TestAppendColumnsErrors(t *testing.T) {
	tab := MustNewTable("R", "x", "a")
	if err := tab.AppendColumns([]int64{1}); err == nil {
		t.Error("wrong column count: want error")
	}
	if err := tab.AppendColumns([]int64{1, 2}, []int64{10}); err == nil {
		t.Error("ragged columns: want error")
	}
	if tab.NumRows() != 0 {
		t.Errorf("failed append mutated the table: %d rows", tab.NumRows())
	}
	if err := tab.AppendBatch([][]int64{{1}}); err == nil {
		t.Error("AppendBatch wrong column count: want error")
	}
}

func TestGrow(t *testing.T) {
	tab := MustNewTable("R", "x")
	tab.Grow(1000)
	x := tab.MustColumn("x")
	if len(x) != 0 {
		t.Fatalf("Grow changed length: %d", len(x))
	}
	if err := tab.AppendRow(7); err != nil {
		t.Fatal(err)
	}
	// After Grow(1000) the first append must not reallocate.
	grown := tab.MustColumn("x")
	if cap(grown) < 1000 {
		t.Errorf("cap = %d, want >= 1000", cap(grown))
	}
	tab.Grow(0)
	tab.Grow(-5)
	if tab.NumRows() != 1 {
		t.Errorf("NumRows = %d", tab.NumRows())
	}
}

// Property: bulk appends in arbitrary batch splits produce the same table as
// row-at-a-time appends.
func TestAppendBatchMatchesRowsQuick(t *testing.T) {
	f := func(rows [][2]int64, splitSeed uint8) bool {
		want := MustNewTable("W", "a", "b")
		for _, r := range rows {
			if err := want.AppendRow(r[0], r[1]); err != nil {
				return false
			}
		}
		got := MustNewTable("G", "a", "b")
		rng := rand.New(rand.NewSource(int64(splitSeed)))
		for i := 0; i < len(rows); {
			n := 1 + rng.Intn(len(rows)-i)
			batch := [][]int64{make([]int64, n), make([]int64, n)}
			for j := 0; j < n; j++ {
				batch[0][j] = rows[i+j][0]
				batch[1][j] = rows[i+j][1]
			}
			got.Grow(n)
			if err := got.AppendBatch(batch); err != nil {
				return false
			}
			i += n
		}
		return reflect.DeepEqual(got.MustColumn("a"), want.MustColumn("a")) &&
			reflect.DeepEqual(got.MustColumn("b"), want.MustColumn("b"))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
