package data

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadCatalog loads a catalog from a directory of table files: <name>.csv
// files under csvDir, or SEG1 segment files <name>.seg under segDir (which
// back read-only tables that stream off disk block by block). Exactly one of
// the two directories may be non-empty.
//
// tables selects which tables to load; a nil or empty list discovers every
// table file in the directory. This is the one catalog-loading path shared by
// the CLIs (sitcreate, estimate, sitserve) — the -csv/-segments flag handling
// they previously each reimplemented.
func LoadCatalog(csvDir, segDir string, tables []string) (*Catalog, error) {
	if csvDir != "" && segDir != "" {
		return nil, fmt.Errorf("data: -csv and -segments are mutually exclusive")
	}
	dir, ext := csvDir, ".csv"
	if segDir != "" {
		dir, ext = segDir, ".seg"
	}
	if dir == "" {
		return nil, fmt.Errorf("data: LoadCatalog needs a csv or segment directory")
	}
	if len(tables) == 0 {
		var err error
		tables, err = discoverTables(dir, ext)
		if err != nil {
			return nil, err
		}
		if len(tables) == 0 {
			return nil, fmt.Errorf("data: no %s table files in %s", ext, dir)
		}
	}
	cat := NewCatalog()
	for _, name := range tables {
		var (
			t   *Table
			err error
		)
		if segDir != "" {
			t, err = OpenSegmentTable(filepath.Join(dir, name+ext))
		} else {
			t, err = ReadCSVFile(name, filepath.Join(dir, name+ext))
		}
		if err != nil {
			return nil, err
		}
		if err := cat.Add(t); err != nil {
			return nil, err
		}
	}
	return cat, nil
}

// discoverTables lists the table names (file base names) with the given
// extension in dir, sorted for deterministic catalog construction.
func discoverTables(dir, ext string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("data: reading table directory: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ext) {
			continue
		}
		names = append(names, strings.TrimSuffix(e.Name(), ext))
	}
	sort.Strings(names)
	return names, nil
}
