package sched

import (
	"fmt"

	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sit"
)

// SITTask binds a schedulable Task to a concrete SIT: the dependency sequence
// plus, per position, the (intermediate) SIT spec whose construction that
// scan performs — the unfolding of Section 3.2. The last position's spec is
// the requested SIT itself.
//
// The executor handles SITs whose join-tree is a path (chain generating
// queries, the class the scheduling experiments of Section 5.2 draw from);
// bushier trees schedule fine as abstract Tasks but must be executed through
// sit.Builder.Build directly.
type SITTask struct {
	Spec query.SITSpec
	Task Task
	// SubSpecs[i] is the SIT built when Task.Seq[i] is scanned.
	SubSpecs []query.SITSpec
}

// NewSITTask derives the dependency sequence and per-scan sub-specs of a
// chain SIT.
func NewSITTask(spec query.SITSpec) (SITTask, error) {
	if spec.IsBase() {
		return SITTask{}, fmt.Errorf("sched: base-table statistic %s needs no scheduling", spec.String())
	}
	jt, err := spec.Expr.JoinTree(spec.Table)
	if err != nil {
		return SITTask{}, err
	}
	// Walk the path root -> leaf, collecting nodes.
	var pathNodes []*query.JoinTree
	var pathAttrs []string // attribute joining each node to its parent; "" for root
	node := jt
	attr := ""
	for {
		pathNodes = append(pathNodes, node)
		pathAttrs = append(pathAttrs, attr)
		if node.IsLeaf() {
			break
		}
		if len(node.Children) != 1 {
			return SITTask{}, fmt.Errorf("sched: executor supports chain generating queries; %q branches at %q",
				spec.Expr.String(), node.Table)
		}
		edge := node.Children[0]
		if len(edge.Preds) != 1 {
			return SITTask{}, fmt.Errorf("sched: executor supports single-predicate joins; %q has %d predicates below %q",
				spec.Expr.String(), len(edge.Preds), node.Table)
		}
		attr = edge.Preds[0].ChildAttr
		node = edge.Child
	}
	// Scan order: deepest internal node first, root last; the leaf is not
	// scanned.
	st := SITTask{Spec: spec, Task: Task{ID: spec.String()}}
	for i := len(pathNodes) - 2; i >= 0; i-- {
		n := pathNodes[i]
		subExpr, err := n.SubtreeExpr()
		if err != nil {
			return SITTask{}, err
		}
		targetAttr := pathAttrs[i]
		if i == 0 {
			targetAttr = spec.Attr
		}
		subSpec, err := query.NewSITSpec(n.Table, targetAttr, subExpr)
		if err != nil {
			return SITTask{}, err
		}
		st.Task.Seq = append(st.Task.Seq, n.Table)
		st.SubSpecs = append(st.SubSpecs, subSpec)
	}
	return st, nil
}

// Tasks extracts the abstract scheduling tasks.
func Tasks(sts []SITTask) []Task {
	out := make([]Task, len(sts))
	for i, st := range sts {
		out[i] = st.Task
	}
	return out
}

// Execute runs a validated schedule against the builder: each step performs
// one shared sequential scan building every advancing task's (intermediate)
// SIT for that position, via sit.Builder.BuildGroup. It returns the final
// SITs in task order.
func Execute(s Schedule, sts []SITTask, b *sit.Builder, method sit.Method) ([]*sit.SIT, error) {
	tasks := Tasks(sts)
	pos := make([]int, len(sts))
	out := make([]*sit.SIT, len(sts))
	for si, step := range s.Steps {
		var specs []query.SITSpec
		var advancing []int
		for _, ti := range step.Advance {
			if ti < 0 || ti >= len(sts) {
				return nil, fmt.Errorf("sched: step %d advances unknown task %d", si, ti)
			}
			if pos[ti] >= len(tasks[ti].Seq) {
				return nil, fmt.Errorf("sched: step %d advances completed task %q", si, tasks[ti].ID)
			}
			if tasks[ti].Seq[pos[ti]] != step.Table {
				return nil, fmt.Errorf("sched: step %d scans %q but task %q expects %q",
					si, step.Table, tasks[ti].ID, tasks[ti].Seq[pos[ti]])
			}
			specs = append(specs, sts[ti].SubSpecs[pos[ti]])
			advancing = append(advancing, ti)
		}
		built, err := b.BuildGroup(specs, method)
		if err != nil {
			return nil, err
		}
		for i, ti := range advancing {
			pos[ti]++
			if pos[ti] == len(tasks[ti].Seq) {
				out[ti] = built[i]
			}
		}
	}
	for ti := range sts {
		if out[ti] == nil {
			return nil, fmt.Errorf("sched: schedule left task %q incomplete", tasks[ti].ID)
		}
	}
	return out, nil
}
