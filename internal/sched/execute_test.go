package sched

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sit"
)

// example3Catalog builds data for the paper's Example 3:
//
//	SIT(T.a | R ⋈r1=s1 S ⋈s3=t3 T)   — dependency sequence (S, T)
//	SIT(S.b | R ⋈r2=s2 S)            — dependency sequence (S)
//
// The optimal strategy shares one sequential scan over S.
func example3Catalog(t *testing.T) (*data.Catalog, []query.SITSpec) {
	t.Helper()
	rng := rand.New(rand.NewSource(31))
	cat := data.NewCatalog()
	r := data.MustNewTable("R", "r1", "r2")
	for i := 0; i < 400; i++ {
		r.AppendRow(rng.Int63n(40), rng.Int63n(40))
	}
	s := data.MustNewTable("S", "s1", "s2", "s3", "b")
	for i := 0; i < 300; i++ {
		s.AppendRow(rng.Int63n(40), rng.Int63n(40), rng.Int63n(40), rng.Int63n(500))
	}
	tt := data.MustNewTable("T", "t3", "a")
	for i := 0; i < 200; i++ {
		tt.AppendRow(rng.Int63n(40), rng.Int63n(500))
	}
	cat.MustAdd(r)
	cat.MustAdd(s)
	cat.MustAdd(tt)

	e1, err := query.NewExpr(
		query.JoinPred{LeftTable: "R", LeftAttr: "r1", RightTable: "S", RightAttr: "s1"},
		query.JoinPred{LeftTable: "S", LeftAttr: "s3", RightTable: "T", RightAttr: "t3"},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec1, err := query.NewSITSpec("T", "a", e1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := query.NewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "r2", RightTable: "S", RightAttr: "s2"})
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := query.NewSITSpec("S", "b", e2)
	if err != nil {
		t.Fatal(err)
	}
	return cat, []query.SITSpec{spec1, spec2}
}

func TestNewSITTask(t *testing.T) {
	_, specs := example3Catalog(t)
	st, err := NewSITTask(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Task.Seq, []string{"S", "T"}) {
		t.Errorf("seq = %v, want [S T]", st.Task.Seq)
	}
	if len(st.SubSpecs) != 2 {
		t.Fatalf("subspecs = %v", st.SubSpecs)
	}
	// Scanning S builds the intermediate SIT(S.s3 | R ⋈ S).
	if st.SubSpecs[0].Table != "S" || st.SubSpecs[0].Attr != "s3" || st.SubSpecs[0].Expr.NumTables() != 2 {
		t.Errorf("intermediate spec = %s", st.SubSpecs[0].String())
	}
	// Scanning T builds the requested SIT.
	if st.SubSpecs[1].Canonical() != specs[0].Canonical() {
		t.Errorf("final spec = %s, want %s", st.SubSpecs[1].String(), specs[0].String())
	}

	base, _ := query.NewBaseExpr("R")
	baseSpec, _ := query.NewSITSpec("R", "r1", base)
	if _, err := NewSITTask(baseSpec); err == nil {
		t.Error("base spec: want error")
	}
	branching, err := query.NewExpr(
		query.JoinPred{LeftTable: "R", LeftAttr: "r1", RightTable: "S", RightAttr: "s1"},
		query.JoinPred{LeftTable: "R", LeftAttr: "r2", RightTable: "T", RightAttr: "t3"},
	)
	if err != nil {
		t.Fatal(err)
	}
	branchSpec, _ := query.NewSITSpec("R", "r1", branching)
	if _, err := NewSITTask(branchSpec); err == nil {
		t.Error("branching join-tree: want executor error")
	}
}

func TestExecuteExample3(t *testing.T) {
	cat, specs := example3Catalog(t)
	var sts []SITTask
	for _, sp := range specs {
		st, err := NewSITTask(sp)
		if err != nil {
			t.Fatal(err)
		}
		sts = append(sts, st)
	}
	env := Env{
		Cost:       map[string]float64{"S": 3, "T": 2},
		SampleSize: map[string]float64{"S": 30, "T": 20},
		Memory:     60,
	}
	sched, _, err := Opt(Tasks(sts), env)
	if err != nil {
		t.Fatal(err)
	}
	// One shared S scan + one T scan: cost 5, not the naive 8.
	if sched.Cost != 5 {
		t.Errorf("optimal cost = %v, want 5", sched.Cost)
	}
	if len(sched.Steps) != 2 || sched.Steps[0].Table != "S" || len(sched.Steps[0].Advance) != 2 {
		t.Errorf("steps = %+v, want shared S scan first", sched.Steps)
	}
	if err := Validate(sched, Tasks(sts), env); err != nil {
		t.Fatal(err)
	}

	b, err := sit.NewBuilder(cat, sit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	built, err := Execute(sched, sts, b, sit.SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	if len(built) != 2 {
		t.Fatalf("built = %d SITs", len(built))
	}
	// The executed results must match direct (unscheduled) builds.
	b2, err := sit.NewBuilder(cat, sit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		direct, err := b2.Build(sp, sit.SweepFull)
		if err != nil {
			t.Fatal(err)
		}
		if built[i] == nil {
			t.Fatalf("SIT %d not built", i)
		}
		if !reflect.DeepEqual(built[i].Hist.Buckets, direct.Hist.Buckets) {
			t.Errorf("scheduled build %d differs from direct build", i)
		}
	}
}

func TestExecuteRejectsBadSchedule(t *testing.T) {
	cat, specs := example3Catalog(t)
	st, err := NewSITTask(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	b, err := sit.NewBuilder(cat, sit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Scan T before S: out of order.
	bad := Schedule{Steps: []Step{{Table: "T", Advance: []int{0}}}, Cost: 2}
	if _, err := Execute(bad, []SITTask{st}, b, sit.Sweep); err == nil {
		t.Error("out-of-order schedule: want error")
	}
	// Incomplete.
	incomplete := Schedule{Steps: []Step{{Table: "S", Advance: []int{0}}}, Cost: 3}
	if _, err := Execute(incomplete, []SITTask{st}, b, sit.Sweep); err == nil {
		t.Error("incomplete schedule: want error")
	}
	// Unknown task index.
	unknown := Schedule{Steps: []Step{{Table: "S", Advance: []int{4}}}, Cost: 3}
	if _, err := Execute(unknown, []SITTask{st}, b, sit.Sweep); err == nil {
		t.Error("unknown task: want error")
	}
}
