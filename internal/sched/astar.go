package sched

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Options tunes the A*-based solvers.
type Options struct {
	// AllSubsets reproduces the paper's generateSuccessors literally: every
	// non-empty memory-feasible subset of the candidate tasks becomes a
	// successor. The default (false) generates only maximal feasible advance
	// sets, which provably preserves optimality and expands far fewer nodes.
	AllSubsets bool
	// DisableHeuristic turns A* into Dijkstra (for admissibility tests).
	DisableHeuristic bool
	// MaxExpansions aborts the search after expanding this many states
	// (0 = unlimited).
	MaxExpansions int
}

// Opt finds the optimal schedule with the memory-constrained weighted-SCS A*
// of Section 4.3.1.
func Opt(tasks []Task, env Env) (Schedule, Stats, error) {
	return OptWith(tasks, env, Options{})
}

// OptWith is Opt with explicit solver options.
func OptWith(tasks []Task, env Env, opts Options) (Schedule, Stats, error) {
	return solve(tasks, env, opts, searchAStar, 0)
}

// Greedy is the aggressive variant of Section 4.3.2: at each iteration only
// the successors of the best node survive, so the search commits to the
// locally best scan. It finishes in at most sum(|Seq_i|) steps but may return
// suboptimal schedules.
func Greedy(tasks []Task, env Env) (Schedule, Stats, error) {
	return solve(tasks, env, Options{}, searchGreedy, 0)
}

// Hybrid starts as A* and, once the time budget elapses without the optimum
// being found, continues greedily from the most promising node found so far
// (Section 4.3.2; the paper switches after one second).
func Hybrid(tasks []Task, env Env, budget time.Duration) (Schedule, Stats, error) {
	if budget <= 0 {
		return Schedule{}, Stats{}, fmt.Errorf("sched: hybrid needs a positive time budget")
	}
	return solve(tasks, env, Options{}, searchHybrid, budget)
}

// BruteForce solves the instance exactly with exhaustive subset successors
// and no heuristic; it is the reference implementation used in tests and is
// only practical on tiny instances.
func BruteForce(tasks []Task, env Env) (Schedule, error) {
	s, _, err := solve(tasks, env, Options{AllSubsets: true, DisableHeuristic: true}, searchAStar, 0)
	return s, err
}

type searchMode int

const (
	searchAStar searchMode = iota
	searchGreedy
	searchHybrid
)

// nodeInfo is per-state bookkeeping. The schedule is reconstructed from the
// parent chain alone: the advanced tasks are the positions that differ
// between a node and its parent, so no per-node Step is stored — with tens of
// millions of generated states this matters.
type nodeInfo struct {
	g      float64
	parent string
	closed bool
}

func solve(tasks []Task, env Env, opts Options, mode searchMode, budget time.Duration) (Schedule, Stats, error) {
	start := time.Now() //statcheck:ignore rawrand Stats.Elapsed and the Hybrid budget are wall-clock by contract
	if err := env.validate(tasks); err != nil {
		return Schedule{}, Stats{}, err
	}
	var stats Stats
	if len(tasks) == 0 {
		return Schedule{}, stats, nil
	}

	h := makeHeuristic(tasks, env)
	if opts.DisableHeuristic {
		h = func([]int) float64 { return 0 }
	}

	pos0 := make([]int, len(tasks))
	key0 := stateKey(pos0)
	info := map[string]*nodeInfo{key0: {}}
	open := &openHeap{}
	heap.Push(open, openItem{key: key0, f: h(pos0)})
	stats.Generated = 1

	greedyNow := mode == searchGreedy
	for open.Len() > 0 {
		cur := heap.Pop(open).(openItem)
		ci := info[cur.key]
		if ci.closed {
			continue
		}
		ci.closed = true
		stats.Expanded++
		if opts.MaxExpansions > 0 && stats.Expanded > opts.MaxExpansions {
			return Schedule{}, stats, fmt.Errorf("sched: expansion budget %d exhausted", opts.MaxExpansions)
		}
		curPos := posFromKey(cur.key, len(tasks))
		if isGoal(curPos, tasks) {
			stats.Elapsed = time.Since(start) //statcheck:ignore rawrand solver-effort report, not part of the schedule
			return reconstruct(info, cur.key, ci.g, tasks), stats, nil
		}
		//statcheck:ignore rawrand the Hybrid time budget is wall-clock by definition (Section 4.3.2)
		if mode == searchHybrid && !greedyNow && time.Since(start) > budget {
			greedyNow = true
			stats.SwitchedToGreedy = true
		}
		if greedyNow {
			// Keep only this node's successors: empty OPEN before expansion.
			*open = (*open)[:0]
		}
		expand(cur.key, curPos, ci, tasks, env, opts, h, info, open, &stats)
	}
	return Schedule{}, stats, fmt.Errorf("sched: no feasible schedule found")
}

// expand pushes the successors of the current state: for every table T that
// is some task's next scan, and every chosen advance set of the candidate
// tasks, a new state with cost g + Cost(T).
func expand(curKey string, curPos []int, ci *nodeInfo, tasks []Task, env Env, opts Options,
	h func([]int) float64, info map[string]*nodeInfo, open *openHeap, stats *Stats) {

	byTable := map[string][]int{}
	for ti, t := range tasks {
		if p := curPos[ti]; p < len(t.Seq) {
			byTable[t.Seq[p]] = append(byTable[t.Seq[p]], ti)
		}
	}
	// Expand tables in sorted order: successor generation order decides how
	// equal-f ties pop off the OPEN heap, so map-order iteration here would
	// make the returned (still optimal) schedule vary run to run.
	tables := make([]string, 0, len(byTable))
	for table := range byTable {
		tables = append(tables, table)
	}
	sort.Strings(tables)
	npos := make([]int, len(curPos))
	for _, table := range tables {
		candidates := byTable[table]
		maxK := len(candidates)
		if env.Memory > 0 {
			if fit := int(env.Memory / env.SampleSize[table]); fit < maxK {
				maxK = fit
			}
		}
		if maxK == 0 {
			continue // table's single sample would already exceed M; caught by env.validate
		}
		push := func(set []int) {
			copy(npos, curPos)
			for _, ti := range set {
				npos[ti]++
			}
			nk := stateKey(npos)
			ng := ci.g + env.Cost[table]
			ni, seen := info[nk]
			if seen && (ni.closed || ni.g <= ng) {
				return
			}
			if !seen {
				ni = &nodeInfo{}
				info[nk] = ni
			}
			ni.g = ng
			ni.parent = curKey
			heap.Push(open, openItem{key: nk, f: ng + h(npos)})
			stats.Generated++
		}
		if opts.AllSubsets {
			forEachSubset(candidates, maxK, push)
		} else {
			// Dominance pruning: only maximal feasible advance sets. All
			// candidates share SampleSize(table), so maximal means size
			// exactly min(len(candidates), maxK).
			forEachCombination(candidates, maxK, push)
		}
	}
}

// forEachSubset invokes fn on every non-empty subset of items with size <= k
// (the paper's literal generateSuccessors).
func forEachSubset(items []int, k int, fn func([]int)) {
	n := len(items)
	var rec func(i int, cur []int)
	rec = func(i int, cur []int) {
		if i == n {
			if len(cur) > 0 {
				fn(append([]int(nil), cur...))
			}
			return
		}
		if len(cur) < k {
			rec(i+1, append(cur, items[i]))
		}
		rec(i+1, cur)
	}
	rec(0, nil)
}

// forEachCombination invokes fn on every subset of items of size exactly
// min(len(items), k).
func forEachCombination(items []int, k int, fn func([]int)) {
	if k >= len(items) {
		fn(items)
		return
	}
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			fn(append([]int(nil), cur...))
			return
		}
		// Prune: not enough items left to reach size k.
		for i := start; i <= len(items)-(k-len(cur)); i++ {
			rec(i+1, append(cur, items[i]))
		}
	}
	rec(0, nil)
}

// makeHeuristic precomputes suffix occurrence counts and returns the
// admissible heuristic
//
//	h(u) = sum_c Cost(c) * max( o(u,c), ceil(R_c(u) / k_c) )
//
// where o(u,c) is the Section 4.3 bound (the maximum remaining occurrences of
// c in any one sequence — every supersequence must scan c that often), R_c(u)
// is the total remaining occurrences of c across all sequences, and k_c =
// floor(M / SampleSize(c)) is the most sequence-positions one scan of c can
// advance under the memory budget — so at least ceil(R_c/k_c) scans of c are
// unavoidable. Both terms are lower bounds and each drops by at most one per
// scan of c, so the heuristic stays consistent; the memory term prunes
// dramatically when M binds.
func makeHeuristic(tasks []Task, env Env) func([]int) float64 {
	tables := sortedTables(tasks)
	// cnt[ti][c][p] = occurrences of table c in tasks[ti].Seq[p:].
	cnt := make([]map[string][]int, len(tasks))
	for ti, t := range tasks {
		cnt[ti] = map[string][]int{}
		for _, c := range tables {
			counts := make([]int, len(t.Seq)+1)
			for p := len(t.Seq) - 1; p >= 0; p-- {
				counts[p] = counts[p+1]
				if t.Seq[p] == c {
					counts[p]++
				}
			}
			cnt[ti][c] = counts
		}
	}
	share := map[string]int{}
	for _, c := range tables {
		k := len(tasks)
		if env.Memory > 0 {
			if fit := int(env.Memory / env.SampleSize[c]); fit < k {
				k = fit
			}
		}
		if k < 1 {
			k = 1 // env.validate rejects truly infeasible instances
		}
		share[c] = k
	}
	return func(pos []int) float64 {
		total := 0.0
		for _, c := range tables {
			o, r := 0, 0
			for ti := range tasks {
				n := cnt[ti][c][pos[ti]]
				r += n
				if n > o {
					o = n
				}
			}
			k := share[c]
			if byMem := (r + k - 1) / k; byMem > o {
				o = byMem
			}
			total += env.Cost[c] * float64(o)
		}
		return total
	}
}

func isGoal(pos []int, tasks []Task) bool {
	for ti, p := range pos {
		if p < len(tasks[ti].Seq) {
			return false
		}
	}
	return true
}

// reconstruct rebuilds the schedule from the parent chain: the advanced tasks
// of each step are the positions that differ between child and parent, and
// the scanned table is the parent-position element of any advanced sequence.
func reconstruct(info map[string]*nodeInfo, key string, cost float64, tasks []Task) Schedule {
	n := len(tasks)
	var rev []Step
	for {
		node := info[key]
		if node.parent == "" {
			break
		}
		child := posFromKey(key, n)
		parent := posFromKey(node.parent, n)
		step := Step{}
		for ti := 0; ti < n; ti++ {
			if child[ti] != parent[ti] {
				step.Advance = append(step.Advance, ti)
				step.Table = tasks[ti].Seq[parent[ti]]
			}
		}
		rev = append(rev, step)
		key = node.parent
	}
	s := Schedule{Cost: cost, Steps: make([]Step, len(rev))}
	for i := range rev {
		s.Steps[i] = rev[len(rev)-1-i]
	}
	return s
}

// stateKey packs the position vector into a compact byte string: positions
// are bounded by the dependency-sequence lengths (tiny), so one byte each
// keeps the A* state maps several times smaller than a printable encoding —
// at numSITs=20 the search can hold tens of millions of generated states.
func stateKey(pos []int) string {
	buf := make([]byte, len(pos))
	for i, p := range pos {
		if p > 255 {
			// Fall back to a wide encoding for absurdly long sequences.
			return wideStateKey(pos)
		}
		buf[i] = byte(p)
	}
	return string(buf)
}

func wideStateKey(pos []int) string {
	var sb strings.Builder
	sb.WriteByte(0xff)
	for i, p := range pos {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(p))
	}
	return sb.String()
}

// posFromKey decodes a compact state key back into positions.
func posFromKey(key string, n int) []int {
	pos := make([]int, n)
	if len(key) > 0 && key[0] == 0xff {
		parts := strings.Split(key[1:], ",")
		for i := range pos {
			pos[i], _ = strconv.Atoi(parts[i])
		}
		return pos
	}
	for i := 0; i < n; i++ {
		pos[i] = int(key[i])
	}
	return pos
}

type openItem struct {
	key string
	f   float64
}

type openHeap []openItem

func (q openHeap) Len() int            { return len(q) }
func (q openHeap) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q openHeap) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *openHeap) Push(x interface{}) { *q = append(*q, x.(openItem)) }
func (q *openHeap) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
