package sched

import (
	"strings"
	"testing"
)

// tieEnv builds a deliberately tie-heavy instance: every table has the same
// scan cost and sample size, so many A* states share identical f-values and
// only deterministic tie-breaking keeps the returned schedule stable.
func tieEnv() ([]Task, Env) {
	tasks := []Task{
		{ID: "s1", Seq: []string{"T1", "T2", "T3"}},
		{ID: "s2", Seq: []string{"T2", "T3", "T4"}},
		{ID: "s3", Seq: []string{"T3", "T4", "T1"}},
		{ID: "s4", Seq: []string{"T4", "T1", "T2"}},
	}
	env := Env{
		Cost:       map[string]float64{"T1": 5, "T2": 5, "T3": 5, "T4": 5},
		SampleSize: map[string]float64{"T1": 10, "T2": 10, "T3": 10, "T4": 10},
		Memory:     20,
	}
	return tasks, env
}

// TestSchedulesRunToRunStable: with equal costs the solvers face constant
// f-value ties; successor expansion over sorted table names must make the
// returned schedule identical on every run. A regression here means a map
// range crept back into the expansion or cost-model paths.
func TestSchedulesRunToRunStable(t *testing.T) {
	tasks, env := tieEnv()
	solvers := map[string]func() (Schedule, error){
		"Opt": func() (Schedule, error) {
			s, _, err := Opt(tasks, env)
			return s, err
		},
		"OptAllSubsets": func() (Schedule, error) {
			s, _, err := OptWith(tasks, env, Options{AllSubsets: true})
			return s, err
		},
		"Greedy": func() (Schedule, error) {
			s, _, err := Greedy(tasks, env)
			return s, err
		},
	}
	for name, solve := range solvers {
		first, err := solve()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := Validate(first, tasks, env); err != nil {
			t.Fatalf("%s: invalid schedule: %v", name, err)
		}
		for i := 0; i < 10; i++ {
			again, err := solve()
			if err != nil {
				t.Fatalf("%s run %d: %v", name, i, err)
			}
			if got, want := again.String(), first.String(); got != want {
				t.Fatalf("%s run %d: schedule changed across runs:\n first: %s\n again: %s",
					name, i, want, got)
			}
		}
	}
}

// TestEnvFromSizesDeterministicError: with several invalid tables the
// reported one must not depend on map iteration order.
func TestEnvFromSizesDeterministicError(t *testing.T) {
	sizes := map[string]int{"TB": -1, "TA": -1, "TC": -1, "TD": 100}
	for i := 0; i < 10; i++ {
		_, err := EnvFromSizes(sizes, 0.001, 0.01, 0)
		if err == nil {
			t.Fatal("want error for negative sizes")
		}
		if !strings.Contains(err.Error(), `"TA"`) {
			t.Fatalf("run %d: error should name the first table in sorted order, got: %v", i, err)
		}
	}
}
