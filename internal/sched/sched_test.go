package sched

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// example6 builds the paper's Example 6 instance: three dependency sequences
// (T,S,R), (S,R), (U,R) with Cost(R)=Cost(S)=10 and Cost(T)=Cost(U)=20.
func example6() ([]Task, Env) {
	tasks := []Task{
		{ID: "SIT(R.b|R-S-T-V)", Seq: []string{"T", "S", "R"}},
		{ID: "SIT(R.a|R-S-T) path R-S", Seq: []string{"S", "R"}},
		{ID: "SIT(R.a|R-U-V) path R-U", Seq: []string{"U", "R"}},
	}
	env := Env{
		Cost:       map[string]float64{"R": 10, "S": 10, "T": 20, "U": 20},
		SampleSize: map[string]float64{"R": 10000, "S": 10000, "T": 10000, "U": 10000},
		Memory:     50000,
	}
	return tasks, env
}

func TestExample6Optimal(t *testing.T) {
	tasks, env := example6()
	s, stats, err := Opt(tasks, env)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 60 {
		t.Errorf("optimal cost = %v, want 60 (paper Example 6)", s.Cost)
	}
	if err := Validate(s, tasks, env); err != nil {
		t.Error(err)
	}
	if stats.Expanded == 0 {
		t.Error("no states expanded")
	}
	// Four scans: T/U in some order, then S (shared by tasks 0 and 1), then R
	// (shared by all three).
	if len(s.Steps) != 4 {
		t.Errorf("steps = %v", s.Steps)
	}
	last := s.Steps[len(s.Steps)-1]
	if last.Table != "R" || len(last.Advance) != 3 {
		t.Errorf("final step = %+v, want shared scan of R by all 3 tasks", last)
	}
}

func TestExample6MemoryBound(t *testing.T) {
	tasks, env := example6()
	// Only one sample fits at a time: no sharing possible anywhere, so the
	// optimum degenerates to the Naive cost 40+20+30 = 90.
	env.Memory = 10000
	s, _, err := Opt(tasks, env)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 90 {
		t.Errorf("memory-bound optimal = %v, want 90", s.Cost)
	}
	if err := Validate(s, tasks, env); err != nil {
		t.Error(err)
	}
	// Two samples fit: S and R scans can each serve two tasks. The best plan
	// shares S across tasks 0,1 and R across two of the three: 20+20+10+10+10 = 70.
	env.Memory = 20000
	s, _, err = Opt(tasks, env)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 70 {
		t.Errorf("memory=2 samples optimal = %v, want 70", s.Cost)
	}
	if err := Validate(s, tasks, env); err != nil {
		t.Error(err)
	}
}

func TestNaive(t *testing.T) {
	tasks, env := example6()
	s, err := Naive(tasks, env)
	if err != nil {
		t.Fatal(err)
	}
	if s.Cost != 90 {
		t.Errorf("naive cost = %v, want 90", s.Cost)
	}
	if got := TotalScanCost(tasks, env); got != s.Cost {
		t.Errorf("TotalScanCost = %v, want %v", got, s.Cost)
	}
	if err := Validate(s, tasks, env); err != nil {
		t.Error(err)
	}
}

func TestEnvValidation(t *testing.T) {
	env := Env{
		Cost:       map[string]float64{"R": 10},
		SampleSize: map[string]float64{"R": 100},
		Memory:     1000,
	}
	if _, _, err := Opt([]Task{{ID: "t", Seq: []string{"R", "S"}}}, env); err == nil {
		t.Error("missing table cost: want error")
	}
	if _, _, err := Opt([]Task{{ID: "t", Seq: nil}}, env); err == nil {
		t.Error("empty sequence: want error")
	}
	big := Env{
		Cost:       map[string]float64{"R": 10},
		SampleSize: map[string]float64{"R": 5000},
		Memory:     1000,
	}
	if _, _, err := Opt([]Task{{ID: "t", Seq: []string{"R"}}}, big); err == nil {
		t.Error("sample larger than memory: want error")
	}
	zero := Env{
		Cost:       map[string]float64{"R": 0},
		SampleSize: map[string]float64{"R": 10},
	}
	if _, _, err := Opt([]Task{{ID: "t", Seq: []string{"R"}}}, zero); err == nil {
		t.Error("zero cost: want error")
	}
}

func TestEmptyInstance(t *testing.T) {
	s, _, err := Opt(nil, Env{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Steps) != 0 || s.Cost != 0 {
		t.Errorf("empty instance schedule = %+v", s)
	}
}

// randomInstance generates a small random scheduling instance.
func randomInstance(rng *rand.Rand, numTasks, numTables, maxLen int, memFactor float64) ([]Task, Env) {
	tables := make([]string, numTables)
	env := Env{Cost: map[string]float64{}, SampleSize: map[string]float64{}}
	maxSample := 0.0
	for i := range tables {
		tables[i] = string(rune('A' + i))
		env.Cost[tables[i]] = float64(rng.Intn(20) + 1)
		ss := float64(rng.Intn(50) + 10)
		env.SampleSize[tables[i]] = ss
		if ss > maxSample {
			maxSample = ss
		}
	}
	env.Memory = maxSample * memFactor
	tasks := make([]Task, numTasks)
	for i := range tasks {
		l := rng.Intn(maxLen-1) + 2
		if l > numTables {
			l = numTables
		}
		perm := rng.Perm(numTables)
		seq := make([]string, l)
		for j := 0; j < l; j++ {
			seq[j] = tables[perm[j]]
		}
		tasks[i] = Task{ID: string(rune('0' + i)), Seq: seq}
	}
	return tasks, env
}

// TestOptMatchesBruteForce: the dominance-pruned A* must agree with the
// exhaustive all-subsets Dijkstra on random small instances, with and without
// binding memory.
func TestOptMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		memFactor := []float64{1.0, 1.5, 3, 100}[trial%4]
		tasks, env := randomInstance(rng, 3, 4, 3, memFactor)
		opt, _, err := Opt(tasks, env)
		if err != nil {
			t.Fatal(err)
		}
		bf, err := BruteForce(tasks, env)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(opt.Cost-bf.Cost) > 1e-9 {
			t.Fatalf("trial %d: Opt %v != BruteForce %v (tasks %v, M=%v)",
				trial, opt.Cost, bf.Cost, tasks, env.Memory)
		}
		if err := Validate(opt, tasks, env); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAllSubsetsSameOptimum: the paper-literal successor generation reaches
// the same optimum as the pruned default.
func TestAllSubsetsSameOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 15; trial++ {
		tasks, env := randomInstance(rng, 3, 4, 3, 1.5)
		pruned, _, err := Opt(tasks, env)
		if err != nil {
			t.Fatal(err)
		}
		literal, _, err := OptWith(tasks, env, Options{AllSubsets: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pruned.Cost-literal.Cost) > 1e-9 {
			t.Fatalf("trial %d: pruned %v != all-subsets %v", trial, pruned.Cost, literal.Cost)
		}
	}
}

// TestHeuristicAdmissible: A* with the heuristic equals Dijkstra.
func TestHeuristicAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		tasks, env := randomInstance(rng, 3, 4, 4, 2)
		astar, sa, err := Opt(tasks, env)
		if err != nil {
			t.Fatal(err)
		}
		dij, sd, err := OptWith(tasks, env, Options{DisableHeuristic: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(astar.Cost-dij.Cost) > 1e-9 {
			t.Fatalf("trial %d: A* %v != Dijkstra %v", trial, astar.Cost, dij.Cost)
		}
		if sa.Expanded > sd.Expanded {
			t.Errorf("trial %d: heuristic expanded more (%d) than Dijkstra (%d)", trial, sa.Expanded, sd.Expanded)
		}
	}
}

// TestGreedyAndHybrid: both produce valid schedules with cost between the
// optimum and Naive.
func TestGreedyAndHybrid(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		tasks, env := randomInstance(rng, 4, 5, 4, 2)
		opt, _, err := Opt(tasks, env)
		if err != nil {
			t.Fatal(err)
		}
		g, _, err := Greedy(tasks, env)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(g, tasks, env); err != nil {
			t.Fatalf("greedy schedule invalid: %v", err)
		}
		if g.Cost < opt.Cost-1e-9 {
			t.Fatalf("greedy (%v) beat the optimum (%v)?", g.Cost, opt.Cost)
		}
		naiveCost := TotalScanCost(tasks, env)
		if g.Cost > naiveCost+1e-9 {
			t.Errorf("greedy (%v) worse than naive (%v)", g.Cost, naiveCost)
		}
		h, _, err := Hybrid(tasks, env, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if err := Validate(h, tasks, env); err != nil {
			t.Fatalf("hybrid schedule invalid: %v", err)
		}
		if h.Cost < opt.Cost-1e-9 {
			t.Fatalf("hybrid (%v) beat the optimum (%v)?", h.Cost, opt.Cost)
		}
	}
	if _, _, err := Hybrid(nil, Env{}, 0); err == nil {
		t.Error("non-positive hybrid budget: want error")
	}
}

// TestHybridSwitches: with a tiny budget hybrid must switch to greedy mode on
// a big instance and still return a valid schedule.
func TestHybridSwitches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tasks, env := randomInstance(rng, 10, 8, 6, 1.2)
	h, stats, err := Hybrid(tasks, env, time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(h, tasks, env); err != nil {
		t.Fatal(err)
	}
	if !stats.SwitchedToGreedy {
		t.Log("hybrid finished within a microsecond; switch not exercised (machine too fast)")
	}
}

func TestValidateCatchesBadSchedules(t *testing.T) {
	tasks, env := example6()
	good, _, err := Opt(tasks, env)
	if err != nil {
		t.Fatal(err)
	}
	// Wrong cost.
	bad := good
	bad.Cost += 5
	if err := Validate(bad, tasks, env); err == nil {
		t.Error("wrong cost: want error")
	}
	// Missing step.
	bad = Schedule{Steps: good.Steps[:len(good.Steps)-1], Cost: good.Cost - 10}
	if err := Validate(bad, tasks, env); err == nil {
		t.Error("incomplete schedule: want error")
	}
	// Step advancing nothing.
	bad = Schedule{Steps: append([]Step{{Table: "T", Advance: nil}}, good.Steps...), Cost: good.Cost + 20}
	if err := Validate(bad, tasks, env); err == nil {
		t.Error("empty advance: want error")
	}
	// Memory violation.
	env2 := env
	env2.Memory = 10000
	if err := Validate(good, tasks, env2); err == nil {
		t.Error("memory violation: want error")
	}
	// Wrong table for a task.
	bad = Schedule{Steps: []Step{{Table: "R", Advance: []int{0}}}, Cost: 10}
	if err := Validate(bad, tasks, env); err == nil {
		t.Error("out-of-order advance: want error")
	}
	// Duplicate advance.
	bad = Schedule{Steps: []Step{{Table: "T", Advance: []int{0, 0}}}, Cost: 20}
	if err := Validate(bad, tasks, env); err == nil {
		t.Error("duplicate advance: want error")
	}
	// Unknown task index.
	bad = Schedule{Steps: []Step{{Table: "T", Advance: []int{9}}}, Cost: 20}
	if err := Validate(bad, tasks, env); err == nil {
		t.Error("unknown task: want error")
	}
}

func TestExpansionBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tasks, env := randomInstance(rng, 8, 8, 6, 1.2)
	if _, _, err := OptWith(tasks, env, Options{MaxExpansions: 3}); err == nil {
		t.Error("tiny expansion budget: want error")
	}
}

// TestSharingBeatsNaive: on instances with heavy overlap the optimal schedule
// must be strictly cheaper than Naive (the premise of Section 4).
func TestSharingBeatsNaive(t *testing.T) {
	tasks := []Task{
		{ID: "1", Seq: []string{"S", "R"}},
		{ID: "2", Seq: []string{"S", "R"}},
		{ID: "3", Seq: []string{"S", "R"}},
	}
	env := Env{
		Cost:       map[string]float64{"R": 10, "S": 10},
		SampleSize: map[string]float64{"R": 1, "S": 1},
		Memory:     10,
	}
	opt, _, err := Opt(tasks, env)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cost != 20 {
		t.Errorf("fully shared cost = %v, want 20", opt.Cost)
	}
	if naive := TotalScanCost(tasks, env); naive != 60 {
		t.Errorf("naive = %v, want 60", naive)
	}
}

func TestScheduleString(t *testing.T) {
	s := Schedule{Cost: 30, Steps: []Step{
		{Table: "S", Advance: []int{0, 1}},
		{Table: "R", Advance: []int{0}},
	}}
	got := s.String()
	for _, want := range []string{"cost=30", "scan S -> 0, 1", "scan R -> 0"} {
		if !strings.Contains(got, want) {
			t.Errorf("String() = %q, missing %q", got, want)
		}
	}
}

func TestEnvFromSizes(t *testing.T) {
	env, err := EnvFromSizes(map[string]int{"R": 50000, "S": 100}, 1.0/1000, 0.1, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if env.Cost["R"] != 50 || env.SampleSize["R"] != 5000 {
		t.Errorf("R cost/sample = %v/%v", env.Cost["R"], env.SampleSize["R"])
	}
	// Floors kick in for tiny tables.
	if env.Cost["S"] != 1 {
		t.Errorf("S cost = %v, want floor 1", env.Cost["S"])
	}
	if env.SampleSize["S"] != 10 {
		t.Errorf("S sample = %v, want 10", env.SampleSize["S"])
	}
	if env.Memory != 5000 {
		t.Errorf("memory = %v", env.Memory)
	}
	if _, err := EnvFromSizes(nil, 0, 0.1, 0); err == nil {
		t.Error("zero cost per row: want error")
	}
	if _, err := EnvFromSizes(map[string]int{"R": -1}, 0.001, 0.1, 0); err == nil {
		t.Error("negative size: want error")
	}
}
