package sched

import (
	"math"
	"math/rand"
	"testing"

	"github.com/sitstats/sits/internal/scs"
)

// TestUnboundedMemoryEqualsWeightedSCS: with M unbounded the multi-SIT
// scheduling problem degenerates to the plain weighted Shortest Common
// Supersequence of the dependency sequences (Section 4.3, "If the amount of
// available memory is unbounded, the optimization problem can be very easily
// mapped to a weighted version of SCS"). The two solvers are independent
// implementations; their optimal costs must agree.
func TestUnboundedMemoryEqualsWeightedSCS(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		numTables := rng.Intn(4) + 3
		tables := make([]string, numTables)
		env := Env{Cost: map[string]float64{}, SampleSize: map[string]float64{}, Memory: 0}
		cost := map[string]float64{}
		for i := range tables {
			tables[i] = string(rune('A' + i))
			c := float64(rng.Intn(9) + 1)
			env.Cost[tables[i]] = c
			env.SampleSize[tables[i]] = 1
			cost[tables[i]] = c
		}
		numTasks := rng.Intn(3) + 2
		tasks := make([]Task, numTasks)
		var seqs [][]string
		for i := range tasks {
			l := rng.Intn(3) + 2
			if l > numTables {
				l = numTables
			}
			perm := rng.Perm(numTables)
			seq := make([]string, l)
			for j := 0; j < l; j++ {
				seq[j] = tables[perm[j]]
			}
			tasks[i] = Task{ID: string(rune('0' + i)), Seq: seq}
			seqs = append(seqs, seq)
		}
		schedRes, _, err := Opt(tasks, env)
		if err != nil {
			t.Fatal(err)
		}
		scsRes, err := scs.Solve(seqs, scs.Options{Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(schedRes.Cost-scsRes.Cost) > 1e-9 {
			t.Fatalf("trial %d: scheduler optimum %v != weighted SCS optimum %v (tasks %v)",
				trial, schedRes.Cost, scsRes.Cost, tasks)
		}
		// The schedule's scan sequence must itself be a common supersequence.
		scans := make([]string, len(schedRes.Steps))
		for i, step := range schedRes.Steps {
			scans[i] = step.Table
		}
		for _, seq := range seqs {
			if !scs.IsSupersequence(scans, seq) {
				t.Fatalf("trial %d: schedule %v is not a supersequence of %v", trial, scans, seq)
			}
		}
	}
}
