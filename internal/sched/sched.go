// Package sched solves the multiple-SIT creation problem of Section 4: given
// a set of SITs (abstracted as dependency sequences of table scans), a
// per-table scan cost, a per-table sample size and a memory budget M, find a
// minimum-cost ordering of shared sequential scans that creates every SIT
// while never exceeding M memory for in-flight samples.
//
// The problem is a memory-constrained, weighted Shortest Common Supersequence
// (Section 4.3). The solvers are:
//
//   - Opt: the A* algorithm of Section 4.3.1, guaranteed optimal.
//   - Greedy: A* with the OPEN list cleared each iteration (Section 4.3.2).
//   - Hybrid: A* that degrades to Greedy after a time budget (Section 4.3.2).
//   - Naive: one-SIT-at-a-time, no scan sharing (the paper's baseline).
//
// By default Opt generates only maximal memory-feasible advance sets, a
// dominance pruning that preserves optimality because advancing more
// sequences at a shared scan never increases the remaining cost; the paper's
// literal all-subsets successor generation (generateSuccessors, Section
// 4.3.1) is available via Options.AllSubsets and is used to cross-check
// optimality in tests.
package sched

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Task is one SIT to create, abstracted as its dependency sequence: the
// tables to scan, in order (earlier scans produce the intermediate SITs later
// scans consume). Sequences with several root-to-leaf paths contribute one
// Task per path; see SITTask for the concrete mapping.
type Task struct {
	ID  string
	Seq []string
}

// Env is the cost model of Section 4.3: per-table scan costs (the paper uses
// Cost(T) = |T|/1000), per-table sample sizes (SampleSize(T) = s*|T|) and the
// memory budget M. Memory <= 0 means unbounded.
type Env struct {
	Cost       map[string]float64
	SampleSize map[string]float64
	Memory     float64
}

// validate checks that every table referenced by the tasks has a cost and a
// sample size, and that each task is individually feasible under M.
func (e Env) validate(tasks []Task) error {
	for _, t := range tasks {
		if len(t.Seq) == 0 {
			return fmt.Errorf("sched: task %q has an empty dependency sequence", t.ID)
		}
		for _, tab := range t.Seq {
			c, ok := e.Cost[tab]
			if !ok {
				return fmt.Errorf("sched: no scan cost for table %q (task %q)", tab, t.ID)
			}
			if c <= 0 {
				return fmt.Errorf("sched: scan cost for table %q must be positive, got %v", tab, c)
			}
			s, ok := e.SampleSize[tab]
			if !ok {
				return fmt.Errorf("sched: no sample size for table %q (task %q)", tab, t.ID)
			}
			if s <= 0 {
				return fmt.Errorf("sched: sample size for table %q must be positive, got %v", tab, s)
			}
			if e.Memory > 0 && s > e.Memory {
				return fmt.Errorf("sched: sample size %v of table %q exceeds memory budget %v; no schedule exists",
					s, tab, e.Memory)
			}
		}
	}
	return nil
}

// Step is one shared sequential scan: the table scanned and the indices of
// the tasks whose dependency sequences advance during it.
type Step struct {
	Table   string
	Advance []int
}

// Schedule is an ordered list of scans creating every task's SIT.
type Schedule struct {
	Steps []Step
	Cost  float64
}

// Stats reports solver effort.
type Stats struct {
	Expanded  int
	Generated int
	Elapsed   time.Duration
	// SwitchedToGreedy is set when Hybrid abandoned optimality.
	SwitchedToGreedy bool
}

// Validate simulates the schedule and checks that it is executable: every
// advance matches the task's next pending table, per-scan sample memory stays
// within budget, every task completes, and the recorded cost matches.
func Validate(s Schedule, tasks []Task, env Env) error {
	if err := env.validate(tasks); err != nil {
		return err
	}
	pos := make([]int, len(tasks))
	cost := 0.0
	for si, step := range s.Steps {
		cost += env.Cost[step.Table]
		if len(step.Advance) == 0 {
			return fmt.Errorf("sched: step %d scans %q but advances nothing", si, step.Table)
		}
		mem := 0.0
		seen := map[int]bool{}
		for _, ti := range step.Advance {
			if ti < 0 || ti >= len(tasks) {
				return fmt.Errorf("sched: step %d advances unknown task %d", si, ti)
			}
			if seen[ti] {
				return fmt.Errorf("sched: step %d advances task %d twice", si, ti)
			}
			seen[ti] = true
			t := tasks[ti]
			if pos[ti] >= len(t.Seq) {
				return fmt.Errorf("sched: step %d advances completed task %q", si, t.ID)
			}
			if t.Seq[pos[ti]] != step.Table {
				return fmt.Errorf("sched: step %d scans %q but task %q expects %q",
					si, step.Table, t.ID, t.Seq[pos[ti]])
			}
			pos[ti]++
			mem += env.SampleSize[step.Table]
		}
		if env.Memory > 0 && mem > env.Memory+1e-9 {
			return fmt.Errorf("sched: step %d uses %v sample memory, budget %v", si, mem, env.Memory)
		}
	}
	for ti, p := range pos {
		if p != len(tasks[ti].Seq) {
			return fmt.Errorf("sched: task %q incomplete (%d of %d scans)", tasks[ti].ID, p, len(tasks[ti].Seq))
		}
	}
	if diff := s.Cost - cost; diff > 1e-6 || diff < -1e-6 {
		return fmt.Errorf("sched: schedule cost %v does not match simulated cost %v", s.Cost, cost)
	}
	return nil
}

// Naive creates each SIT separately with no scan sharing: the baseline of
// Section 5.2. Its cost is the sum over all tasks of their sequences' scan
// costs, and it holds a single sample in memory at any time.
func Naive(tasks []Task, env Env) (Schedule, error) {
	if err := env.validate(tasks); err != nil {
		return Schedule{}, err
	}
	var s Schedule
	for ti, t := range tasks {
		for _, tab := range t.Seq {
			s.Steps = append(s.Steps, Step{Table: tab, Advance: []int{ti}})
			s.Cost += env.Cost[tab]
		}
	}
	return s, nil
}

// TotalScanCost returns the cost of scanning every table in every task once —
// the Naive cost — without building the schedule.
func TotalScanCost(tasks []Task, env Env) float64 {
	total := 0.0
	for _, t := range tasks {
		for _, tab := range t.Seq {
			total += env.Cost[tab]
		}
	}
	return total
}

// sortedTables returns the distinct tables referenced by the tasks, sorted.
func sortedTables(tasks []Task) []string {
	set := map[string]bool{}
	for _, t := range tasks {
		for _, tab := range t.Seq {
			set[tab] = true
		}
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// String renders the schedule compactly: "scan T2 (tasks 0,1); scan T3 (2)".
func (s Schedule) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "schedule{cost=%g", s.Cost)
	for _, st := range s.Steps {
		fmt.Fprintf(&sb, "; scan %s ->", st.Table)
		for i, ti := range st.Advance {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, " %d", ti)
		}
	}
	sb.WriteString("}")
	return sb.String()
}

// EnvFromSizes derives the paper's cost model from table cardinalities:
// Cost(T) = |T| * costPerRow (the paper uses 1/1000, with a floor of one
// unit) and SampleSize(T) = rate * |T| (floored at one tuple).
func EnvFromSizes(sizes map[string]int, costPerRow, sampleRate, memory float64) (Env, error) {
	if costPerRow <= 0 || sampleRate <= 0 {
		return Env{}, fmt.Errorf("sched: cost per row and sample rate must be positive")
	}
	env := Env{Cost: map[string]float64{}, SampleSize: map[string]float64{}, Memory: memory}
	// Visit tables in sorted order so validation errors name the same table
	// on every run regardless of map iteration order.
	names := make([]string, 0, len(sizes))
	for name := range sizes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := sizes[name]
		if n < 0 {
			return Env{}, fmt.Errorf("sched: negative size for table %q", name)
		}
		c := float64(n) * costPerRow
		if c < 1 {
			c = 1
		}
		ss := float64(n) * sampleRate
		if ss < 1 {
			ss = 1
		}
		env.Cost[name] = c
		env.SampleSize[name] = ss
	}
	return env, nil
}
