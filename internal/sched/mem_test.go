package sched

import (
	"math/rand"
	"runtime"
	"testing"
	"time"
)

// TestOptNumSITs20Memory runs one paper-scale instance (numSITs=20) and
// asserts the search completes with bounded heap growth — a regression guard
// for the compact state encoding.
func TestOptNumSITs20Memory(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale instance")
	}
	rng := rand.New(rand.NewSource(1))
	tables := make([]string, 10)
	env := Env{Cost: map[string]float64{}, SampleSize: map[string]float64{}, Memory: 50000}
	sizes := []int{341000, 170000, 113000, 85000, 68000, 57000, 49000, 43000, 38000, 36000}
	for i := range tables {
		tables[i] = string(rune('A' + i))
		env.Cost[tables[i]] = float64(sizes[i]) / 1000
		env.SampleSize[tables[i]] = 0.1 * float64(sizes[i])
	}
	tasks := make([]Task, 20)
	for i := range tasks {
		l := rng.Intn(4) + 2
		perm := rng.Perm(10)
		seq := make([]string, l)
		for j := 0; j < l; j++ {
			seq[j] = tables[perm[j]]
		}
		tasks[i] = Task{ID: string(rune('a' + i)), Seq: seq}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	s, stats, err := Opt(tasks, env)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	if err := Validate(s, tasks, env); err != nil {
		t.Fatal(err)
	}
	grew := after.TotalAlloc - before.TotalAlloc
	t.Logf("cost=%v expanded=%d generated=%d elapsed=%v alloc=%dMB",
		s.Cost, stats.Expanded, stats.Generated, time.Since(start).Round(time.Millisecond), grew>>20)
	if grew > 4<<30 {
		t.Errorf("Opt allocated %d MB on one numSITs=20 instance", grew>>20)
	}
}
