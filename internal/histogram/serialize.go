package histogram

import (
	"encoding/json"
	"fmt"
	"io"
)

// serialized is the stable on-disk form of a histogram. A version field
// guards future format evolution; bucket fields serialize under short names.
type serialized struct {
	Version int                `json:"version"`
	Buckets []serializedBucket `json:"buckets"`
}

type serializedBucket struct {
	Lo       int64   `json:"lo"`
	Hi       int64   `json:"hi"`
	Freq     float64 `json:"f"`
	Distinct float64 `json:"d"`
}

const serializationVersion = 1

// Write serializes the histogram as JSON.
func (h *Histogram) Write(w io.Writer) error {
	s := serialized{Version: serializationVersion, Buckets: make([]serializedBucket, len(h.Buckets))}
	for i, b := range h.Buckets {
		s.Buckets[i] = serializedBucket{Lo: b.Lo, Hi: b.Hi, Freq: b.Freq, Distinct: b.Distinct}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(s)
}

// Read deserializes a histogram previously written with Write and
// validates its invariants.
func Read(r io.Reader) (*Histogram, error) {
	var s serialized
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("histogram: decoding: %w", err)
	}
	if s.Version != serializationVersion {
		return nil, fmt.Errorf("histogram: unsupported serialization version %d", s.Version)
	}
	h := &Histogram{Buckets: make([]Bucket, len(s.Buckets))}
	for i, b := range s.Buckets {
		h.Buckets[i] = Bucket{Lo: b.Lo, Hi: b.Hi, Freq: b.Freq, Distinct: b.Distinct}
	}
	if err := h.Validate(); err != nil {
		return nil, fmt.Errorf("histogram: deserialized histogram invalid: %w", err)
	}
	return h, nil
}
