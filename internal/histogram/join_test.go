package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// exactJoinSize computes |{(r,s) : r == s}| over two multisets.
func exactJoinSize(xs, ys []int64) float64 {
	counts := map[int64]int{}
	for _, x := range xs {
		counts[x]++
	}
	total := 0
	for _, y := range ys {
		total += counts[y]
	}
	return float64(total)
}

// TestJoinCardinalityExactBuckets: with one bucket per value on both sides,
// the containment estimate is exact: per shared value v the aligned piece has
// f1=c1(v), f2=c2(v), d1=d2=1, contributing c1*c2 — the true match count.
func TestJoinCardinalityExactBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]int64, 2000)
	ys := make([]int64, 1500)
	for i := range xs {
		xs[i] = rng.Int63n(50)
	}
	for i := range ys {
		ys[i] = rng.Int63n(50)
	}
	h1, err := FromValues(xs, 1<<20, MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := FromValues(ys, 1<<20, MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	want := exactJoinSize(xs, ys)
	got := JoinCardinality(h1, h2)
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("JoinCardinality = %v, want %v", got, want)
	}
	// JoinHistogram totals must match JoinCardinality.
	jh := JoinHistogram(h1, h2)
	if err := jh.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(jh.TotalFreq()-got) > 1e-6*(got+1) {
		t.Errorf("JoinHistogram total = %v, want %v", jh.TotalFreq(), got)
	}
}

func TestJoinCardinalityDisjoint(t *testing.T) {
	h1 := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 9, Freq: 100, Distinct: 10}}}
	h2 := &Histogram{Buckets: []Bucket{{Lo: 100, Hi: 109, Freq: 100, Distinct: 10}}}
	if got := JoinCardinality(h1, h2); got != 0 {
		t.Errorf("disjoint join = %v, want 0", got)
	}
	if jh := JoinHistogram(h1, h2); jh.NumBuckets() != 0 {
		t.Errorf("disjoint JoinHistogram = %v", jh)
	}
	if got := JoinCardinality(&Histogram{}, h2); got != 0 {
		t.Errorf("empty side join = %v", got)
	}
}

func TestJoinCardinalityContainmentFormula(t *testing.T) {
	// One aligned bucket: f1=100,d1=10 and f2=60,d2=20 over the same range.
	// Containment: 100*60/max(10,20) = 300.
	h1 := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 19, Freq: 100, Distinct: 10}}}
	h2 := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 19, Freq: 60, Distinct: 20}}}
	if got := JoinCardinality(h1, h2); math.Abs(got-300) > 1e-9 {
		t.Errorf("JoinCardinality = %v, want 300", got)
	}
	jh := JoinHistogram(h1, h2)
	if jh.NumBuckets() != 1 {
		t.Fatalf("buckets = %d", jh.NumBuckets())
	}
	if jh.Buckets[0].Distinct != 10 {
		t.Errorf("join distinct = %v, want min(10,20)=10", jh.Buckets[0].Distinct)
	}
}

func TestJoinPartialOverlapSplitsBuckets(t *testing.T) {
	// h1: one wide bucket [0,19]; h2: two buckets [0,9],[10,19]. Alignment
	// must split h1's bucket and weight each half by its covered fraction.
	h1 := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 19, Freq: 200, Distinct: 20}}}
	h2 := &Histogram{Buckets: []Bucket{
		{Lo: 0, Hi: 9, Freq: 30, Distinct: 10},
		{Lo: 10, Hi: 19, Freq: 70, Distinct: 10},
	}}
	// Each half of h1: f=100, d=10. Piece 1: 100*30/10=300. Piece 2:
	// 100*70/10=700. Total 1000.
	if got := JoinCardinality(h1, h2); math.Abs(got-1000) > 1e-9 {
		t.Errorf("JoinCardinality = %v, want 1000", got)
	}
	jh := JoinHistogram(h1, h2)
	if jh.NumBuckets() != 2 {
		t.Errorf("aligned buckets = %d, want 2", jh.NumBuckets())
	}
}

func TestContainmentMultiplicity(t *testing.T) {
	hR := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 9, Freq: 100, Distinct: 10}}}
	hS := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 9, Freq: 50, Distinct: 5}}}
	// dvS(5) <= dvR(10): m = fR/dvR = 10.
	if got := ContainmentMultiplicity(hR, hS, 3); math.Abs(got-10) > 1e-9 {
		t.Errorf("m = %v, want 10", got)
	}
	// Probe side denser in distinct groups (aligned buckets, dvS > dvR):
	// m = fR/dvR * dvR/dvS = fR/dvS, the paper's formula.
	hS2 := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 9, Freq: 50, Distinct: 10}}}
	hR2 := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 9, Freq: 100, Distinct: 5}}}
	if got := ContainmentMultiplicity(hR2, hS2, 3); math.Abs(got-100.0/10.0) > 1e-9 {
		t.Errorf("m = %v, want 10 (fR/dvS with aligned buckets)", got)
	}
	// Unaligned buckets with equal densities (25 distinct over width 40 vs
	// 10 over width 10 is sparser, not denser): no damping, m = fR/dvR.
	hSWide := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 39, Freq: 50, Distinct: 25}}}
	if got := ContainmentMultiplicity(hR, hSWide, 3); math.Abs(got-10) > 1e-9 {
		t.Errorf("m = %v, want 10 (sparser probe side must not damp)", got)
	}
	// Unaligned buckets with equal densities (5 distinct over width 5 vs 10
	// over width 10): no damping either.
	hSNarrowDense := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 4, Freq: 50, Distinct: 5}}}
	if got := ContainmentMultiplicity(hR, hSNarrowDense, 3); math.Abs(got-10) > 1e-9 {
		t.Errorf("m = %v, want 10 (equal densities)", got)
	}
	// Genuinely denser probe side: build density 0.5 (5 distinct over width
	// 10) vs probe density 1 (5 over width 5) damps by 0.5:
	// m = (100/5) * 0.5 = 10.
	hRSparse := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 9, Freq: 100, Distinct: 5}}}
	if got := ContainmentMultiplicity(hRSparse, hSNarrowDense, 3); math.Abs(got-10) > 1e-9 {
		t.Errorf("m = %v, want 10 (density-ratio damping)", got)
	}
	// y outside hR: multiplicity 0.
	if got := ContainmentMultiplicity(hR, hS, 50); got != 0 {
		t.Errorf("m outside hR = %v, want 0", got)
	}
	// y outside hS but inside hR: fall back to fR/dvR.
	hSNarrow := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 4, Freq: 50, Distinct: 5}}}
	if got := ContainmentMultiplicity(hR, hSNarrow, 7); math.Abs(got-10) > 1e-9 {
		t.Errorf("m outside hS = %v, want 10", got)
	}
	// Degenerate zero-distinct bucket contributes nothing.
	hZero := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 9, Freq: 0, Distinct: 0}}}
	if got := ContainmentMultiplicity(hZero, hS, 3); got != 0 {
		t.Errorf("m with zero distinct = %v, want 0", got)
	}
}

// Property: with exact histograms on both sides (one bucket per value), the
// sum of m-Oracle multiplicities over the probe tuples equals the true join
// size — per probe y the oracle returns exactly count_R(y) since dv = 1 in
// both buckets. With coarser histograms the oracle stays non-negative and
// bounded by the containing bucket's frequency.
func TestMultiplicityExactAndBoundedQuick(t *testing.T) {
	f := func(rawX, rawY []uint8, nbR uint8) bool {
		if len(rawX) == 0 || len(rawY) == 0 {
			return true
		}
		xs := make([]int64, len(rawX))
		for i, v := range rawX {
			xs[i] = int64(v % 32)
		}
		ys := make([]int64, len(rawY))
		for i, v := range rawY {
			ys[i] = int64(v % 32)
		}
		hRExact, err := FromValues(xs, 1<<20, MaxDiffArea)
		if err != nil {
			return false
		}
		hSExact, err := FromValues(ys, 1<<20, MaxDiffArea)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, y := range ys {
			sum += ContainmentMultiplicity(hRExact, hSExact, y)
		}
		if math.Abs(sum-exactJoinSize(xs, ys)) > 1e-6*(sum+1) {
			return false
		}
		hR, err := FromValues(xs, int(nbR%10)+1, MaxDiffArea)
		if err != nil {
			return false
		}
		for _, y := range ys {
			m := ContainmentMultiplicity(hR, hSExact, y)
			if m < 0 {
				return false
			}
			if b, ok := hR.Locate(y); ok && m > b.Freq+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: JoinCardinality is symmetric and non-negative.
func TestJoinSymmetricQuick(t *testing.T) {
	f := func(rawX, rawY []uint8, nb1, nb2 uint8) bool {
		xs := make([]int64, len(rawX))
		for i, v := range rawX {
			xs[i] = int64(v)
		}
		ys := make([]int64, len(rawY))
		for i, v := range rawY {
			ys[i] = int64(v)
		}
		h1, err := FromValues(xs, int(nb1%20)+1, MaxDiffArea)
		if err != nil {
			return false
		}
		h2, err := FromValues(ys, int(nb2%20)+1, MaxDiffFreq)
		if err != nil {
			return false
		}
		a := JoinCardinality(h1, h2)
		b := JoinCardinality(h2, h1)
		return a >= 0 && math.Abs(a-b) <= 1e-6*(a+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
