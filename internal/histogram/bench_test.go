package histogram

import (
	"math/rand"
	"testing"
)

func benchHist(b *testing.B, nb int) *Histogram {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 100000)
	for i := range vals {
		vals[i] = rng.Int63n(10000)
	}
	h, err := FromValues(vals, nb, MaxDiffArea)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

// BenchmarkEstimateRange measures the per-query estimation cost.
func BenchmarkEstimateRange(b *testing.B) {
	h := benchHist(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.EstimateRange(int64(i%5000), int64(i%5000)+2000)
	}
}

// BenchmarkLocate measures the m-Oracle's bucket lookup.
func BenchmarkLocate(b *testing.B) {
	h := benchHist(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Locate(int64(i % 10000))
	}
}

// BenchmarkContainmentMultiplicity measures one m-Oracle probe.
func BenchmarkContainmentMultiplicity(b *testing.B) {
	h1 := benchHist(b, 100)
	h2 := benchHist(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ContainmentMultiplicity(h1, h2, int64(i%10000))
	}
}

// BenchmarkJoinCardinality measures the containment join estimate.
func BenchmarkJoinCardinality(b *testing.B) {
	h1 := benchHist(b, 100)
	h2 := benchHist(b, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		JoinCardinality(h1, h2)
	}
}
