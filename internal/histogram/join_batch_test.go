package histogram

import (
	"math/rand"
	"sort"
	"testing"
)

// TestContainmentMultiplicitySortedMatchesScalar: the batched probe must be
// bit-identical to one scalar ContainmentMultiplicity call per value, for
// every construction method and for probes inside, between and outside the
// histograms' bucket ranges.
func TestContainmentMultiplicitySortedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	methods := []Method{MaxDiffArea, MaxDiffFreq, EquiDepth, EquiWidth}
	for trial := 0; trial < 25; trial++ {
		xs := make([]int64, 500)
		ys := make([]int64, 400)
		for i := range xs {
			xs[i] = rng.Int63n(300) - 150
		}
		for i := range ys {
			// Partial overlap so some probes miss hR, hS or both.
			ys[i] = rng.Int63n(300) - 50
		}
		m := methods[trial%len(methods)]
		hR, err := FromValues(xs, 3+trial%12, m)
		if err != nil {
			t.Fatal(err)
		}
		hS, err := FromValues(ys, 2+trial%9, m)
		if err != nil {
			t.Fatal(err)
		}
		probes := make([]int64, 600)
		for i := range probes {
			probes[i] = rng.Int63n(500) - 250
		}
		sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
		out := make([]float64, len(probes))
		ContainmentMultiplicitySorted(hR, hS, probes, out)
		for i, v := range probes {
			if want := ContainmentMultiplicity(hR, hS, v); out[i] != want {
				t.Fatalf("trial %d method %v: batched m(%d) = %v, scalar = %v", trial, m, v, out[i], want)
			}
		}
	}
}

// TestContainmentMultiplicitySortedEdgeCases covers empty probe vectors,
// empty histograms, and all-duplicate probe runs.
func TestContainmentMultiplicitySortedEdgeCases(t *testing.T) {
	empty := &Histogram{}
	h, err := FromValues([]int64{1, 2, 2, 3, 9, 9, 9}, 3, MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	ContainmentMultiplicitySorted(h, h, nil, nil) // must not panic
	probes := []int64{-5, 2, 2, 2, 9, 40}
	out := make([]float64, len(probes))
	ContainmentMultiplicitySorted(empty, h, probes, out)
	for i, m := range out {
		if m != 0 {
			t.Fatalf("empty hR: out[%d] = %v, want 0", i, m)
		}
	}
	ContainmentMultiplicitySorted(h, empty, probes, out)
	for i, v := range probes {
		if want := ContainmentMultiplicity(h, empty, v); out[i] != want {
			t.Fatalf("empty hS: out[%d] = %v, want %v", i, out[i], want)
		}
	}
}
