package histogram

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// sseOf computes the total within-bucket frequency variance of a bucketing.
func sseOf(pairs []ValueFreq, h *Histogram) float64 {
	total := 0.0
	for _, b := range h.Buckets {
		var fs []float64
		for _, p := range pairs {
			if b.Contains(p.Value) {
				fs = append(fs, p.Freq)
			}
		}
		mean := 0.0
		for _, f := range fs {
			mean += f
		}
		mean /= float64(len(fs))
		for _, f := range fs {
			total += (f - mean) * (f - mean)
		}
	}
	return total
}

func TestVOptimalBasics(t *testing.T) {
	if _, err := FromPairsVOptimal(nil, 0); err == nil {
		t.Error("nb=0: want error")
	}
	if _, err := FromPairsVOptimal([]ValueFreq{{2, 1}, {1, 1}}, 3); err == nil {
		t.Error("unsorted: want error")
	}
	if _, err := FromPairsVOptimal([]ValueFreq{{1, math.NaN()}}, 3); err == nil {
		t.Error("NaN freq: want error")
	}
	h, err := FromPairsVOptimal(nil, 5)
	if err != nil || h.NumBuckets() != 0 {
		t.Errorf("empty input: %v, %v", h, err)
	}
	// nb >= m is exact.
	pairs := []ValueFreq{{1, 3}, {5, 2}, {9, 7}}
	h, err = FromPairsVOptimal(pairs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 3 || h.EstimateEq(9) != 7 {
		t.Errorf("exact case: %v", h)
	}
}

func TestVOptimalSplitsAtVariance(t *testing.T) {
	// Two flat plateaus: frequencies 10,10,10 then 100,100,100. With 2
	// buckets the optimal split is exactly between them (SSE 0).
	pairs := []ValueFreq{{1, 10}, {2, 10}, {3, 10}, {4, 100}, {5, 100}, {6, 100}}
	h, err := FromPairsVOptimal(pairs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 2 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	if h.Buckets[0].Hi != 3 || h.Buckets[1].Lo != 4 {
		t.Errorf("split = %v", h.Buckets)
	}
	if got := sseOf(pairs, h); got > 1e-9 {
		t.Errorf("SSE = %v, want 0", got)
	}
}

// TestVOptimalBeatsOthersOnSSE: V-Optimal's defining property — its
// within-bucket variance is minimal, so no other construction can beat it.
func TestVOptimalBeatsOthersOnSSE(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(200)
	}
	pairs := Tally(vals)
	const nb = 10
	vopt, err := FromPairsVOptimal(pairs, nb)
	if err != nil {
		t.Fatal(err)
	}
	vsse := sseOf(pairs, vopt)
	for _, m := range []Method{MaxDiffArea, MaxDiffFreq, EquiDepth, EquiWidth} {
		h, err := FromPairs(pairs, nb, m)
		if err != nil {
			t.Fatal(err)
		}
		if s := sseOf(pairs, h); s < vsse-1e-6 {
			t.Errorf("%v SSE %v beats V-Optimal %v", m, s, vsse)
		}
	}
}

// Property: V-Optimal preserves totals, respects the budget, and validates.
func TestVOptimalQuick(t *testing.T) {
	f := func(raw []uint8, nbSeed uint8) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v % 64)
		}
		nb := int(nbSeed%15) + 1
		h, err := FromValuesVOptimal(vals, nb)
		if err != nil {
			return false
		}
		if h.Validate() != nil || h.NumBuckets() > nb {
			return false
		}
		return math.Abs(h.TotalFreq()-float64(len(vals))) < 1e-6*float64(len(vals)+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestMerge(t *testing.T) {
	a := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 9, Freq: 100, Distinct: 10}}}
	b := &Histogram{Buckets: []Bucket{{Lo: 5, Hi: 14, Freq: 50, Distinct: 10}}}
	m, err := Merge(a, b, 100, MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := m.TotalFreq(); math.Abs(got-150) > 1e-6 {
		t.Errorf("merged total = %v, want 150", got)
	}
	// Range estimates add up.
	for _, r := range [][2]int64{{0, 4}, {5, 9}, {10, 14}, {0, 14}} {
		want := a.EstimateRange(r[0], r[1]) + b.EstimateRange(r[0], r[1])
		if got := m.EstimateRange(r[0], r[1]); math.Abs(got-want) > 1e-6 {
			t.Errorf("range %v: merged %v, want %v", r, got, want)
		}
	}
	empty, err := Merge(&Histogram{}, &Histogram{}, 10, MaxDiffArea)
	if err != nil || empty.NumBuckets() != 0 {
		t.Errorf("empty merge: %v, %v", empty, err)
	}
}

func TestMergeRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	mk := func(seed int64) *Histogram {
		vals := make([]int64, 2000)
		for i := range vals {
			vals[i] = rng.Int63n(500)
		}
		h, err := FromValues(vals, 40, MaxDiffArea)
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := mk(1), mk(2)
	m, err := Merge(a, b, 20, MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumBuckets() > 20 {
		t.Errorf("merged buckets = %d > 20", m.NumBuckets())
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
	if math.Abs(m.TotalFreq()-(a.TotalFreq()+b.TotalFreq())) > 1e-6*m.TotalFreq() {
		t.Errorf("merged total = %v, want %v", m.TotalFreq(), a.TotalFreq()+b.TotalFreq())
	}
}

func TestRebucket(t *testing.T) {
	h := &Histogram{Buckets: []Bucket{
		{Lo: 0, Hi: 1, Freq: 5, Distinct: 2},
		{Lo: 2, Hi: 3, Freq: 5, Distinct: 2},
		{Lo: 4, Hi: 5, Freq: 100, Distinct: 2},
		{Lo: 6, Hi: 7, Freq: 100, Distinct: 2},
	}}
	r, err := h.Rebucket(3, MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumBuckets() != 3 {
		t.Fatalf("buckets = %d", r.NumBuckets())
	}
	// The two small buckets merge first.
	if r.Buckets[0].Lo != 0 || r.Buckets[0].Hi != 3 || r.Buckets[0].Freq != 10 {
		t.Errorf("first merged bucket = %+v", r.Buckets[0])
	}
	if _, err := h.Rebucket(0, MaxDiffArea); err == nil {
		t.Error("nb=0: want error")
	}
	// Original untouched.
	if h.NumBuckets() != 4 {
		t.Error("Rebucket mutated the receiver")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	vals := make([]int64, 3000)
	for i := range vals {
		vals[i] = rng.Int63n(1000) - 500
	}
	h, err := FromValues(vals, 50, MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Buckets) != len(h.Buckets) {
		t.Fatalf("bucket count changed: %d vs %d", len(back.Buckets), len(h.Buckets))
	}
	for i := range h.Buckets {
		if back.Buckets[i] != h.Buckets[i] {
			t.Errorf("bucket %d changed: %+v vs %+v", i, back.Buckets[i], h.Buckets[i])
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(strings.NewReader("not json")); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := Read(strings.NewReader(`{"version":99,"buckets":[]}`)); err == nil {
		t.Error("bad version: want error")
	}
	// Overlapping buckets fail validation on read.
	bad := `{"version":1,"buckets":[{"lo":0,"hi":5,"f":1,"d":1},{"lo":3,"hi":9,"f":1,"d":1}]}`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Error("invalid buckets: want error")
	}
}
