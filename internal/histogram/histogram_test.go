package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromValues(t *testing.T, vals []int64, nb int, m Method) *Histogram {
	t.Helper()
	h, err := FromValues(vals, nb, m)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatalf("invalid histogram: %v (%v)", err, h)
	}
	return h
}

func TestTally(t *testing.T) {
	pairs := Tally([]int64{3, 1, 3, 3, 2})
	want := []ValueFreq{{1, 1}, {2, 1}, {3, 3}}
	if len(pairs) != len(want) {
		t.Fatalf("pairs = %v", pairs)
	}
	for i := range want {
		if pairs[i] != want[i] {
			t.Errorf("pairs[%d] = %v, want %v", i, pairs[i], want[i])
		}
	}
	if got := Tally(nil); len(got) != 0 {
		t.Errorf("Tally(nil) = %v", got)
	}
	if got := TallyMap(map[int64]float64{5: 0, 6: -1, 7: 2}); len(got) != 1 || got[0].Value != 7 {
		t.Errorf("TallyMap should drop non-positive freqs: %v", got)
	}
}

func TestFromPairsErrors(t *testing.T) {
	if _, err := FromPairs(nil, 0, MaxDiffArea); err == nil {
		t.Error("nb=0: want error")
	}
	if _, err := FromPairs([]ValueFreq{{2, 1}, {1, 1}}, 4, MaxDiffArea); err == nil {
		t.Error("unsorted pairs: want error")
	}
	if _, err := FromPairs([]ValueFreq{{1, -2}}, 4, MaxDiffArea); err == nil {
		t.Error("negative freq: want error")
	}
	if _, err := FromPairs([]ValueFreq{{1, math.NaN()}}, 4, MaxDiffArea); err == nil {
		t.Error("NaN freq: want error")
	}
	if _, err := FromPairs([]ValueFreq{{1, 1}}, 4, Method(99)); err == nil {
		t.Error("unknown method: want error")
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := mustFromValues(t, nil, 10, MaxDiffArea)
	if h.NumBuckets() != 0 || h.TotalFreq() != 0 {
		t.Errorf("empty histogram: %v", h)
	}
	if _, ok := h.Min(); ok {
		t.Error("Min of empty: want ok=false")
	}
	if _, ok := h.Max(); ok {
		t.Error("Max of empty: want ok=false")
	}
	if got := h.EstimateRange(0, 100); got != 0 {
		t.Errorf("EstimateRange on empty = %v", got)
	}
	if got := h.ScaleTo(50); got.NumBuckets() != 0 {
		t.Errorf("ScaleTo on empty = %v", got)
	}
}

func TestExactWhenEnoughBuckets(t *testing.T) {
	vals := []int64{1, 1, 2, 5, 5, 5, 9}
	for _, m := range []Method{MaxDiffArea, MaxDiffFreq, EquiDepth, EquiWidth} {
		h := mustFromValues(t, vals, 100, m)
		// With nb >= distinct values MaxDiff is exact (one bucket per value);
		// other methods may merge but must still preserve totals.
		if got := h.TotalFreq(); got != 7 {
			t.Errorf("%v: TotalFreq = %v, want 7", m, got)
		}
		if m == MaxDiffArea || m == MaxDiffFreq {
			if h.NumBuckets() != 4 {
				t.Errorf("%v: buckets = %d, want 4 (exact)", m, h.NumBuckets())
			}
			if got := h.EstimateEq(5); got != 3 {
				t.Errorf("%v: EstimateEq(5) = %v, want 3", m, got)
			}
			if got := h.EstimateEq(3); got != 0 {
				t.Errorf("%v: EstimateEq(3) = %v, want 0 (gap)", m, got)
			}
		}
	}
}

func TestBucketBudgetRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vals := make([]int64, 5000)
	for i := range vals {
		vals[i] = rng.Int63n(1000)
	}
	for _, m := range []Method{MaxDiffArea, MaxDiffFreq, EquiDepth, EquiWidth} {
		for _, nb := range []int{1, 2, 7, 50} {
			h := mustFromValues(t, vals, nb, m)
			if h.NumBuckets() > nb {
				t.Errorf("%v nb=%d: got %d buckets", m, nb, h.NumBuckets())
			}
			if math.Abs(h.TotalFreq()-5000) > 1e-6 {
				t.Errorf("%v nb=%d: TotalFreq = %v", m, nb, h.TotalFreq())
			}
		}
	}
}

func TestEstimateRange(t *testing.T) {
	// Single bucket [0,9] freq 100, distinct 10.
	h := &Histogram{Buckets: []Bucket{{Lo: 0, Hi: 9, Freq: 100, Distinct: 10}}}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		lo, hi int64
		want   float64
	}{
		{0, 9, 100},
		{0, 4, 50},
		{5, 9, 50},
		{-10, 100, 100},
		{3, 3, 10},
		{10, 20, 0},
		{-5, -1, 0},
		{5, 4, 0},
	}
	for _, c := range cases {
		if got := h.EstimateRange(c.lo, c.hi); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("EstimateRange(%d,%d) = %v, want %v", c.lo, c.hi, got, c.want)
		}
	}
	if got := h.EstimateLess(5); math.Abs(got-50) > 1e-9 {
		t.Errorf("EstimateLess(5) = %v, want 50", got)
	}
}

func TestLocate(t *testing.T) {
	h := &Histogram{Buckets: []Bucket{
		{Lo: 0, Hi: 4, Freq: 10, Distinct: 5},
		{Lo: 10, Hi: 14, Freq: 20, Distinct: 5},
	}}
	if b, ok := h.Locate(2); !ok || b.Lo != 0 {
		t.Errorf("Locate(2) = %v,%v", b, ok)
	}
	if b, ok := h.Locate(10); !ok || b.Lo != 10 {
		t.Errorf("Locate(10) = %v,%v", b, ok)
	}
	for _, v := range []int64{-1, 5, 9, 15} {
		if _, ok := h.Locate(v); ok {
			t.Errorf("Locate(%d): want ok=false", v)
		}
	}
}

func TestScale(t *testing.T) {
	h := &Histogram{Buckets: []Bucket{
		{Lo: 0, Hi: 9, Freq: 80, Distinct: 10},
		{Lo: 10, Hi: 19, Freq: 20, Distinct: 10},
	}}
	s := h.ScaleTo(50)
	if math.Abs(s.TotalFreq()-50) > 1e-9 {
		t.Errorf("ScaleTo total = %v", s.TotalFreq())
	}
	if math.Abs(s.Buckets[0].Freq-40) > 1e-9 || math.Abs(s.Buckets[1].Freq-10) > 1e-9 {
		t.Errorf("scaled buckets = %v", s.Buckets)
	}
	// Distinct clamped to freq when freq drops below it.
	tiny := h.ScaleTo(5)
	for _, b := range tiny.Buckets {
		if b.Distinct > b.Freq {
			t.Errorf("distinct %v > freq %v after scaling", b.Distinct, b.Freq)
		}
	}
	// Original untouched.
	if h.TotalFreq() != 100 {
		t.Errorf("original mutated: %v", h.TotalFreq())
	}
	c := h.Clone()
	c.Buckets[0].Freq = 0
	if h.Buckets[0].Freq != 80 {
		t.Error("Clone shares storage")
	}
}

func TestValidateCatchesBadHistograms(t *testing.T) {
	bad := []*Histogram{
		{Buckets: []Bucket{{Lo: 5, Hi: 4}}},
		{Buckets: []Bucket{{Lo: 0, Hi: 4, Freq: -1}}},
		{Buckets: []Bucket{{Lo: 0, Hi: 4, Freq: math.NaN()}}},
		{Buckets: []Bucket{{Lo: 0, Hi: 4, Freq: 10, Distinct: 6}}},
		{Buckets: []Bucket{{Lo: 0, Hi: 4, Freq: 1, Distinct: 1}, {Lo: 4, Hi: 8, Freq: 1, Distinct: 1}}},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MaxDiffArea: "maxdiff-area",
		MaxDiffFreq: "maxdiff-freq",
		EquiDepth:   "equidepth",
		EquiWidth:   "equiwidth",
		Method(42):  "Method(42)",
	}
	for m, want := range names {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestMaxDiffPlacesBoundaryAtSpike(t *testing.T) {
	// Values 1..10 with freq 1, plus value 20 with freq 1000: the big
	// frequency jump should earn its own bucket with only 2 buckets allowed.
	var pairs []ValueFreq
	for v := int64(1); v <= 10; v++ {
		pairs = append(pairs, ValueFreq{v, 1})
	}
	pairs = append(pairs, ValueFreq{20, 1000})
	h, err := FromPairs(pairs, 2, MaxDiffFreq)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumBuckets() != 2 {
		t.Fatalf("buckets = %d", h.NumBuckets())
	}
	if h.Buckets[1].Lo != 20 || h.Buckets[1].Freq != 1000 || h.Buckets[1].Distinct != 1 {
		t.Errorf("spike bucket = %+v", h.Buckets[1])
	}
}

// Property: for any data and bucket budget, construction preserves total
// frequency, respects the budget, validates, and estimates the full range as
// the total frequency.
func TestConstructionInvariantsQuick(t *testing.T) {
	methods := []Method{MaxDiffArea, MaxDiffFreq, EquiDepth, EquiWidth}
	f := func(raw []int16, nbSeed uint8) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		nb := int(nbSeed%60) + 1
		for _, m := range methods {
			h, err := FromValues(vals, nb, m)
			if err != nil {
				return false
			}
			if h.Validate() != nil {
				return false
			}
			if h.NumBuckets() > nb {
				return false
			}
			if math.Abs(h.TotalFreq()-float64(len(vals))) > 1e-6*float64(len(vals)+1) {
				return false
			}
			full := h.EstimateRange(math.MinInt16, math.MaxInt16)
			if math.Abs(full-float64(len(vals))) > 1e-6*float64(len(vals)+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: range estimates are monotone in range width and never negative.
func TestEstimateMonotoneQuick(t *testing.T) {
	f := func(raw []int16, a, b, c int16) bool {
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		h, err := FromValues(vals, 10, MaxDiffArea)
		if err != nil {
			return false
		}
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		inner := h.EstimateRange(lo, hi)
		outer := h.EstimateRange(lo-int64(uint16(c)%100), hi+int64(uint16(c)%100))
		return inner >= 0 && outer >= inner-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
