// Package histogram implements the statistics substrate the paper builds on:
// single-attribute bucket histograms with frequency and distinct-value counts
// per bucket, the MaxDiff construction family the paper uses ("a variant of
// MaxDiff histograms [14] which are natively supported in Microsoft SQL
// Server 2000", Section 5.1), equi-depth and equi-width constructions for
// ablation, range-cardinality estimation under the uniform-spread assumption,
// containment-assumption join estimation, and independence-assumption
// propagation (scaling).
package histogram

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Bucket is one histogram bucket over the inclusive integer value range
// [Lo, Hi]. Freq is the (possibly fractional, when derived from estimation)
// number of tuples in the range, Distinct the number of distinct values.
type Bucket struct {
	Lo, Hi   int64
	Freq     float64
	Distinct float64
}

// Width returns the number of integer values covered by the bucket.
func (b Bucket) Width() float64 { return float64(b.Hi-b.Lo) + 1 }

// Contains reports whether v lies in the bucket's range.
func (b Bucket) Contains(v int64) bool { return v >= b.Lo && v <= b.Hi }

// Histogram is an ordered sequence of non-overlapping buckets.
type Histogram struct {
	Buckets []Bucket
}

// ValueFreq is a (value, frequency) pair; construction inputs are sequences
// of these sorted by value. Fractional frequencies arise when building
// histograms over estimated intermediate results (e.g. SweepFull streams).
type ValueFreq struct {
	Value int64
	Freq  float64
}

// Method selects a histogram construction algorithm.
type Method int

const (
	// MaxDiffArea is MaxDiff(V,A) of Poosala et al.: bucket boundaries are
	// placed at the largest differences in "area" (frequency times spread)
	// between adjacent attribute values. This is the default and the variant
	// the paper's experiments use.
	MaxDiffArea Method = iota
	// MaxDiffFreq is MaxDiff(V,F): boundaries at the largest differences in
	// frequency between adjacent values.
	MaxDiffFreq
	// EquiDepth places boundaries so each bucket holds roughly equal total
	// frequency.
	EquiDepth
	// EquiWidth places boundaries so each bucket covers an equal value range.
	EquiWidth
	// VOptimal minimizes total within-bucket frequency variance via dynamic
	// programming (O(m^2 nb) over m distinct values; see FromPairsVOptimal).
	VOptimal
)

// String returns the method name.
func (m Method) String() string {
	switch m {
	case MaxDiffArea:
		return "maxdiff-area"
	case MaxDiffFreq:
		return "maxdiff-freq"
	case EquiDepth:
		return "equidepth"
	case EquiWidth:
		return "equiwidth"
	case VOptimal:
		return "v-optimal"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// FromValues builds a histogram with at most nb buckets over raw values.
func FromValues(vals []int64, nb int, m Method) (*Histogram, error) {
	return FromPairs(Tally(vals), nb, m)
}

// Tally aggregates raw values into sorted (value, frequency) pairs.
func Tally(vals []int64) []ValueFreq {
	counts := make(map[int64]float64, len(vals))
	for _, v := range vals {
		counts[v]++
	}
	return TallyMap(counts)
}

// TallyMap converts a value->frequency map into sorted pairs, dropping
// non-positive frequencies.
func TallyMap(counts map[int64]float64) []ValueFreq {
	pairs := make([]ValueFreq, 0, len(counts))
	for v, f := range counts {
		if f > 0 {
			pairs = append(pairs, ValueFreq{Value: v, Freq: f})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Value < pairs[j].Value })
	return pairs
}

// FromPairs builds a histogram with at most nb buckets from sorted
// (value, frequency) pairs.
func FromPairs(pairs []ValueFreq, nb int, m Method) (*Histogram, error) {
	if nb <= 0 {
		return nil, fmt.Errorf("histogram: bucket count %d must be positive", nb)
	}
	for i := range pairs {
		if pairs[i].Freq < 0 || math.IsNaN(pairs[i].Freq) || math.IsInf(pairs[i].Freq, 0) {
			return nil, fmt.Errorf("histogram: invalid frequency %v for value %d", pairs[i].Freq, pairs[i].Value)
		}
		if i > 0 && pairs[i].Value <= pairs[i-1].Value {
			return nil, fmt.Errorf("histogram: pairs not strictly sorted at index %d", i)
		}
	}
	if len(pairs) == 0 {
		return &Histogram{}, nil
	}
	var breaks []int
	switch m {
	case MaxDiffArea, MaxDiffFreq:
		breaks = maxDiffBreaks(pairs, nb, m == MaxDiffArea)
	case EquiDepth:
		breaks = equiDepthBreaks(pairs, nb)
	case EquiWidth:
		breaks = equiWidthBreaks(pairs, nb)
	case VOptimal:
		return FromPairsVOptimal(pairs, nb)
	default:
		return nil, fmt.Errorf("histogram: unknown method %v", m)
	}
	return fromBreaks(pairs, breaks), nil
}

// fromBreaks builds buckets from break positions: a break at i starts a new
// bucket at pairs[i]. Position 0 is always an implicit break.
func fromBreaks(pairs []ValueFreq, breaks []int) *Histogram {
	sort.Ints(breaks)
	h := &Histogram{}
	start := 0
	flush := func(end int) { // pairs[start:end] become one bucket
		if end <= start {
			return
		}
		b := Bucket{Lo: pairs[start].Value, Hi: pairs[end-1].Value}
		for _, p := range pairs[start:end] {
			b.Freq += p.Freq
			b.Distinct++
		}
		h.Buckets = append(h.Buckets, b)
		start = end
	}
	for _, br := range breaks {
		if br > start && br < len(pairs) {
			flush(br)
		}
	}
	flush(len(pairs))
	return h
}

// maxDiffBreaks places nb-1 boundaries at the largest adjacent differences in
// area (or frequency). The "area" of value v_i is f_i * spread_i where
// spread_i = v_{i+1} - v_i (the last value's spread is taken as 1).
func maxDiffBreaks(pairs []ValueFreq, nb int, useArea bool) []int {
	n := len(pairs)
	if n <= nb {
		// One bucket per value: exact histogram.
		breaks := make([]int, n)
		for i := range breaks {
			breaks[i] = i
		}
		return breaks
	}
	metric := make([]float64, n)
	for i := 0; i < n; i++ {
		m := pairs[i].Freq
		if useArea {
			spread := 1.0
			if i+1 < n {
				spread = float64(pairs[i+1].Value - pairs[i].Value)
			}
			m *= spread
		}
		metric[i] = m
	}
	type diff struct {
		pos int // break before pairs[pos]
		d   float64
	}
	diffs := make([]diff, 0, n-1)
	for i := 0; i+1 < n; i++ {
		diffs = append(diffs, diff{pos: i + 1, d: math.Abs(metric[i+1] - metric[i])})
	}
	sort.Slice(diffs, func(i, j int) bool {
		if diffs[i].d != diffs[j].d {
			return diffs[i].d > diffs[j].d
		}
		return diffs[i].pos < diffs[j].pos // deterministic tie-break
	})
	breaks := make([]int, 0, nb-1)
	for i := 0; i < nb-1 && i < len(diffs); i++ {
		breaks = append(breaks, diffs[i].pos)
	}
	return breaks
}

// equiDepthBreaks places boundaries so each bucket carries roughly total/nb
// frequency.
func equiDepthBreaks(pairs []ValueFreq, nb int) []int {
	total := 0.0
	for _, p := range pairs {
		total += p.Freq
	}
	target := total / float64(nb)
	if target <= 0 {
		return nil
	}
	var breaks []int
	acc := 0.0
	for i, p := range pairs {
		acc += p.Freq
		if acc >= target && i+1 < len(pairs) && len(breaks) < nb-1 {
			breaks = append(breaks, i+1)
			acc = 0
		}
	}
	return breaks
}

// equiWidthBreaks places boundaries so each bucket covers an equal slice of
// the overall value range.
func equiWidthBreaks(pairs []ValueFreq, nb int) []int {
	lo := pairs[0].Value
	hi := pairs[len(pairs)-1].Value
	width := float64(hi-lo+1) / float64(nb)
	if width <= 0 {
		return nil
	}
	var breaks []int
	next := 1
	for i, p := range pairs {
		for next < nb && float64(p.Value-lo) >= float64(next)*width {
			if i > 0 {
				breaks = append(breaks, i)
			}
			next++
		}
	}
	return breaks
}

// NumBuckets returns the number of buckets.
func (h *Histogram) NumBuckets() int { return len(h.Buckets) }

// TotalFreq returns the sum of bucket frequencies (the estimated relation
// cardinality the histogram describes).
func (h *Histogram) TotalFreq() float64 {
	t := 0.0
	for _, b := range h.Buckets {
		t += b.Freq
	}
	return t
}

// TotalDistinct returns the sum of per-bucket distinct counts.
func (h *Histogram) TotalDistinct() float64 {
	t := 0.0
	for _, b := range h.Buckets {
		t += b.Distinct
	}
	return t
}

// Min returns the smallest covered value; ok is false for empty histograms.
func (h *Histogram) Min() (int64, bool) {
	if len(h.Buckets) == 0 {
		return 0, false
	}
	return h.Buckets[0].Lo, true
}

// Max returns the largest covered value; ok is false for empty histograms.
func (h *Histogram) Max() (int64, bool) {
	if len(h.Buckets) == 0 {
		return 0, false
	}
	return h.Buckets[len(h.Buckets)-1].Hi, true
}

// Locate returns the bucket containing v, or ok=false when v falls outside
// every bucket (before the first, after the last, or in a gap).
func (h *Histogram) Locate(v int64) (Bucket, bool) {
	i := sort.Search(len(h.Buckets), func(i int) bool { return h.Buckets[i].Hi >= v })
	if i >= len(h.Buckets) || !h.Buckets[i].Contains(v) {
		return Bucket{}, false
	}
	return h.Buckets[i], true
}

// EstimateEq estimates the number of tuples with value exactly v, using the
// uniform-spread assumption inside the containing bucket.
func (h *Histogram) EstimateEq(v int64) float64 {
	b, ok := h.Locate(v)
	if !ok || b.Distinct == 0 {
		return 0
	}
	return b.Freq / b.Distinct
}

// EstimateRange estimates the number of tuples with lo <= value <= hi under
// the uniform-spread assumption.
func (h *Histogram) EstimateRange(lo, hi int64) float64 {
	if hi < lo {
		return 0
	}
	est := 0.0
	for _, b := range h.Buckets {
		if b.Hi < lo || b.Lo > hi {
			continue
		}
		oLo, oHi := b.Lo, b.Hi
		if lo > oLo {
			oLo = lo
		}
		if hi < oHi {
			oHi = hi
		}
		frac := (float64(oHi-oLo) + 1) / b.Width()
		est += b.Freq * frac
	}
	return est
}

// EstimateLess estimates the number of tuples with value < c.
func (h *Histogram) EstimateLess(c int64) float64 {
	return h.EstimateRange(math.MinInt64, c-1)
}

// ScaleTo returns a copy whose total frequency equals total, implementing the
// independence-assumption propagation step of Section 2.1: "bucket
// frequencies are uniformly scaled down so that the sum of all frequencies in
// the propagated histogram equals the estimated cardinality of the join".
// Distinct counts are clamped so they never exceed the scaled frequency.
func (h *Histogram) ScaleTo(total float64) *Histogram {
	cur := h.TotalFreq()
	if cur == 0 {
		return &Histogram{}
	}
	return h.Scale(total / cur)
}

// Scale returns a copy with all frequencies multiplied by factor.
func (h *Histogram) Scale(factor float64) *Histogram {
	out := &Histogram{Buckets: make([]Bucket, len(h.Buckets))}
	copy(out.Buckets, h.Buckets)
	for i := range out.Buckets {
		out.Buckets[i].Freq *= factor
		if out.Buckets[i].Distinct > out.Buckets[i].Freq {
			out.Buckets[i].Distinct = out.Buckets[i].Freq
		}
	}
	return out
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	out := &Histogram{Buckets: make([]Bucket, len(h.Buckets))}
	copy(out.Buckets, h.Buckets)
	return out
}

// Validate checks structural invariants: buckets ordered, non-overlapping,
// with non-negative frequencies and distinct counts no larger than width or
// frequency (where frequency is at least 1).
func (h *Histogram) Validate() error {
	for i, b := range h.Buckets {
		if b.Hi < b.Lo {
			return fmt.Errorf("histogram: bucket %d has Hi < Lo (%d < %d)", i, b.Hi, b.Lo)
		}
		if b.Freq < 0 || math.IsNaN(b.Freq) || math.IsInf(b.Freq, 0) {
			return fmt.Errorf("histogram: bucket %d has invalid frequency %v", i, b.Freq)
		}
		if b.Distinct < 0 || b.Distinct > b.Width() {
			return fmt.Errorf("histogram: bucket %d distinct %v out of [0,%v]", i, b.Distinct, b.Width())
		}
		if i > 0 && h.Buckets[i-1].Hi >= b.Lo {
			return fmt.Errorf("histogram: buckets %d and %d overlap or are unordered", i-1, i)
		}
	}
	return nil
}

// String renders a compact textual form, useful in tools and tests.
func (h *Histogram) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "histogram{%d buckets, freq=%.1f", len(h.Buckets), h.TotalFreq())
	for i, b := range h.Buckets {
		if i >= 8 {
			sb.WriteString(", ...")
			break
		}
		fmt.Fprintf(&sb, ", [%d,%d]:f=%.1f,d=%.0f", b.Lo, b.Hi, b.Freq, b.Distinct)
	}
	sb.WriteString("}")
	return sb.String()
}
