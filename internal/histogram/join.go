package histogram

// This file implements the containment-assumption join estimation of
// Section 2.1: "the buckets of each histogram are aligned and a per-bucket
// estimation takes place, followed by an aggregation of all partial results".
// Within each aligned bucket pair, each of the min(dv1, dv2) distinct-value
// groups on the side with fewer groups joins with some group on the other
// side, giving an estimated output of f1*f2/max(dv1, dv2) tuples.

// joinPiece is one aligned value range shared by two histograms, with the
// frequency/distinct mass each side contributes to the range under the
// uniform-spread assumption.
type joinPiece struct {
	lo, hi int64
	f1, d1 float64
	f2, d2 float64
}

// alignBuckets intersects the bucket boundaries of h1 and h2 and returns the
// aligned pieces. Value ranges covered by only one histogram produce no
// pieces: under the containment assumption they contribute no join matches.
func alignBuckets(h1, h2 *Histogram) []joinPiece {
	var pieces []joinPiece
	i, j := 0, 0
	for i < len(h1.Buckets) && j < len(h2.Buckets) {
		b1, b2 := h1.Buckets[i], h2.Buckets[j]
		lo, hi := b1.Lo, b1.Hi
		if b2.Lo > lo {
			lo = b2.Lo
		}
		if b2.Hi < hi {
			hi = b2.Hi
		}
		if lo <= hi {
			frac1 := (float64(hi-lo) + 1) / b1.Width()
			frac2 := (float64(hi-lo) + 1) / b2.Width()
			pieces = append(pieces, joinPiece{
				lo: lo, hi: hi,
				f1: b1.Freq * frac1, d1: b1.Distinct * frac1,
				f2: b2.Freq * frac2, d2: b2.Distinct * frac2,
			})
		}
		if b1.Hi <= b2.Hi {
			i++
		} else {
			j++
		}
	}
	return pieces
}

// JoinCardinality estimates |R join S| on an equality predicate whose two
// sides are described by h1 and h2, under the containment assumption.
func JoinCardinality(h1, h2 *Histogram) float64 {
	card := 0.0
	for _, p := range alignBuckets(h1, h2) {
		card += pieceJoinFreq(p)
	}
	return card
}

func pieceJoinFreq(p joinPiece) float64 {
	maxD := p.d1
	if p.d2 > maxD {
		maxD = p.d2
	}
	if maxD <= 0 {
		return 0
	}
	return p.f1 * p.f2 / maxD
}

// JoinHistogram estimates the distribution of the join attribute in the
// result of the equi-join described by h1 and h2: one bucket per aligned
// piece with the containment-assumption join frequency and min(dv1, dv2)
// distinct values. The result's TotalFreq equals JoinCardinality(h1, h2).
func JoinHistogram(h1, h2 *Histogram) *Histogram {
	out := &Histogram{}
	for _, p := range alignBuckets(h1, h2) {
		f := pieceJoinFreq(p)
		if f <= 0 {
			continue
		}
		d := p.d1
		if p.d2 < d {
			d = p.d2
		}
		width := float64(p.hi-p.lo) + 1
		if d > width {
			d = width
		}
		if d > f {
			d = f
		}
		out.Buckets = append(out.Buckets, Bucket{Lo: p.lo, Hi: p.hi, Freq: f, Distinct: d})
	}
	return out
}

// ContainmentMultiplicity is the histogram-based m-Oracle estimate of
// Section 3.1.1: the expected number of tuples of R (described by hR over the
// join attribute R.x) matching a probe value y drawn from S (described by hS
// over S.y). The paper derives, for aligned buckets,
//
//	m(y) = f_{R,y} / max(dv_{R,y}, dv_{S,y})
//
// i.e. f_{R,y}/dv_{R,y} when the probe side has no more distinct-value groups
// than the build side (containment guarantees a match), damped by
// dv_{R,y}/dv_{S,y} otherwise (the probability y falls in a matching group).
// The two buckets b_{R,y} and b_{S,y} generally cover different value ranges,
// so comparing raw distinct counts systematically overstates the probe side
// whenever its bucket is wider; group counts are therefore compared as
// densities (distinct values per unit of value range), which reduces exactly
// to the paper's formula for equal-width buckets and removes the bias for
// unaligned ones.
//
// The multiplicity is 0 when y falls outside hR (no matching tuples possible
// under containment) and f_{R,y}/dv_{R,y} when y falls outside hS (no
// competing groups on the probe side).
func ContainmentMultiplicity(hR, hS *Histogram, y int64) float64 {
	bR, ok := hR.Locate(y)
	if !ok || bR.Distinct <= 0 {
		return 0
	}
	m := bR.Freq / bR.Distinct
	if bS, ok := hS.Locate(y); ok && bS.Distinct > 0 {
		densR := bR.Distinct / bR.Width()
		densS := bS.Distinct / bS.Width()
		if densS > densR {
			m *= densR / densS
		}
	}
	return m
}

// ContainmentMultiplicitySorted is the batched m-Oracle probe: it fills
// out[i] = ContainmentMultiplicity(hR, hS, vals[i]) for an ascending vals
// slice. Because the probes are sorted, both histograms are walked with
// forward bucket cursors — each bucket list is traversed at most once per
// call instead of one binary search per probe — and runs of equal values
// reuse the previous answer. The arithmetic per probe is identical to the
// scalar ContainmentMultiplicity, so results are bit-identical.
func ContainmentMultiplicitySorted(hR, hS *Histogram, vals []int64, out []float64) {
	iR, iS := 0, 0
	for k, v := range vals {
		if k > 0 && v == vals[k-1] {
			out[k] = out[k-1]
			continue
		}
		for iR < len(hR.Buckets) && hR.Buckets[iR].Hi < v {
			iR++
		}
		if iR >= len(hR.Buckets) || !hR.Buckets[iR].Contains(v) || hR.Buckets[iR].Distinct <= 0 {
			out[k] = 0
			continue
		}
		bR := hR.Buckets[iR]
		m := bR.Freq / bR.Distinct
		for iS < len(hS.Buckets) && hS.Buckets[iS].Hi < v {
			iS++
		}
		if iS < len(hS.Buckets) && hS.Buckets[iS].Contains(v) && hS.Buckets[iS].Distinct > 0 {
			bS := hS.Buckets[iS]
			densR := bR.Distinct / bR.Width()
			densS := bS.Distinct / bS.Width()
			if densS > densR {
				m *= densR / densS
			}
		}
		out[k] = m
	}
}
