package histogram

import (
	"fmt"
	"math"
	"sort"
)

// FromPairsVOptimal builds a V-Optimal histogram: bucket boundaries minimize
// the total within-bucket variance of frequencies (Jagadish et al.'s dynamic
// program). V-Optimal histograms are the accuracy gold standard the MaxDiff
// family approximates cheaply; the repository uses them as an ablation
// baseline (see BenchmarkAblationHistogram and the accuracy tests).
//
// The dynamic program is O(m^2 * nb) over m distinct values, so this
// construction is only practical for domains up to a few thousand distinct
// values — exactly the regime of the paper's evaluation.
func FromPairsVOptimal(pairs []ValueFreq, nb int) (*Histogram, error) {
	if nb <= 0 {
		return nil, fmt.Errorf("histogram: bucket count %d must be positive", nb)
	}
	for i := range pairs {
		if pairs[i].Freq < 0 || math.IsNaN(pairs[i].Freq) || math.IsInf(pairs[i].Freq, 0) {
			return nil, fmt.Errorf("histogram: invalid frequency %v for value %d", pairs[i].Freq, pairs[i].Value)
		}
		if i > 0 && pairs[i].Value <= pairs[i-1].Value {
			return nil, fmt.Errorf("histogram: pairs not strictly sorted at index %d", i)
		}
	}
	m := len(pairs)
	if m == 0 {
		return &Histogram{}, nil
	}
	if nb >= m {
		return fromBreaks(pairs, identityBreaks(m)), nil
	}

	// Prefix sums of f and f^2 for O(1) SSE of any [i, j) segment.
	sum := make([]float64, m+1)
	sq := make([]float64, m+1)
	for i, p := range pairs {
		sum[i+1] = sum[i] + p.Freq
		sq[i+1] = sq[i] + p.Freq*p.Freq
	}
	sse := func(i, j int) float64 { // segment pairs[i:j], j > i
		n := float64(j - i)
		s := sum[j] - sum[i]
		return (sq[j] - sq[i]) - s*s/n
	}

	// dp[k][j] = minimal total SSE of splitting pairs[0:j] into k buckets.
	const inf = math.MaxFloat64
	dp := make([][]float64, nb+1)
	cut := make([][]int, nb+1)
	for k := range dp {
		dp[k] = make([]float64, m+1)
		cut[k] = make([]int, m+1)
		for j := range dp[k] {
			dp[k][j] = inf
		}
	}
	dp[0][0] = 0
	for k := 1; k <= nb; k++ {
		for j := k; j <= m; j++ {
			for i := k - 1; i < j; i++ {
				if dp[k-1][i] == inf {
					continue
				}
				if c := dp[k-1][i] + sse(i, j); c < dp[k][j] {
					dp[k][j] = c
					cut[k][j] = i
				}
			}
		}
	}
	// Trace back the break positions.
	breaks := make([]int, 0, nb)
	j := m
	for k := nb; k >= 1; k-- {
		i := cut[k][j]
		breaks = append(breaks, i)
		j = i
	}
	return fromBreaks(pairs, breaks), nil
}

// FromValuesVOptimal is FromPairsVOptimal over raw values.
func FromValuesVOptimal(vals []int64, nb int) (*Histogram, error) {
	return FromPairsVOptimal(Tally(vals), nb)
}

func identityBreaks(m int) []int {
	breaks := make([]int, m)
	for i := range breaks {
		breaks[i] = i
	}
	return breaks
}

// Merge combines two histograms describing disjoint tuple sets of the same
// attribute (e.g. partitions built in parallel): the result's estimate for
// any range is the sum of the inputs' estimates, re-bucketized to at most nb
// buckets with the given construction method. Distinct counts are summed per
// aligned piece and capped at the piece width.
func Merge(a, b *Histogram, nb int, m Method) (*Histogram, error) {
	// Split both inputs on the union of their bucket boundaries; each aligned
	// piece carries the summed frequency and distinct estimates of the two
	// sides, then the result is reduced back to the bucket budget.
	var bkts []Bucket
	bkts = append(bkts, a.Buckets...)
	bkts = append(bkts, b.Buckets...)
	if len(bkts) == 0 {
		return &Histogram{}, nil
	}
	// Collect all boundary edges.
	edges := map[int64]struct{}{}
	for _, bk := range bkts {
		edges[bk.Lo] = struct{}{}
		edges[bk.Hi+1] = struct{}{}
	}
	cuts := make([]int64, 0, len(edges))
	for e := range edges {
		cuts = append(cuts, e)
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	var merged []Bucket
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]-1
		if hi < lo {
			continue
		}
		f := a.EstimateRange(lo, hi) + b.EstimateRange(lo, hi)
		if f <= 0 {
			continue
		}
		d := rangeDistinct(a, lo, hi) + rangeDistinct(b, lo, hi)
		width := float64(hi-lo) + 1
		if d > width {
			d = width
		}
		if d > f {
			d = f
		}
		merged = append(merged, Bucket{Lo: lo, Hi: hi, Freq: f, Distinct: d})
	}
	out := &Histogram{Buckets: merged}
	if out.NumBuckets() <= nb {
		return out, nil
	}
	return out.Rebucket(nb, m)
}

// rangeDistinct estimates the distinct values of h within [lo, hi] under the
// uniform-spread assumption.
func rangeDistinct(h *Histogram, lo, hi int64) float64 {
	if hi < lo {
		return 0
	}
	d := 0.0
	for _, b := range h.Buckets {
		if b.Hi < lo || b.Lo > hi {
			continue
		}
		oLo, oHi := b.Lo, b.Hi
		if lo > oLo {
			oLo = lo
		}
		if hi < oHi {
			oHi = hi
		}
		d += b.Distinct * ((float64(oHi-oLo) + 1) / b.Width())
	}
	return d
}

// Rebucket reduces the histogram to at most nb buckets by greedily merging
// adjacent buckets with the smallest combined frequency until the budget is
// met (method is reserved for future strategies; the greedy merge preserves
// totals for every method).
func (h *Histogram) Rebucket(nb int, m Method) (*Histogram, error) {
	if nb <= 0 {
		return nil, fmt.Errorf("histogram: bucket count %d must be positive", nb)
	}
	out := h.Clone()
	for out.NumBuckets() > nb {
		// Find the adjacent pair with the smallest combined frequency.
		best := -1
		bestF := math.MaxFloat64
		for i := 0; i+1 < len(out.Buckets); i++ {
			if f := out.Buckets[i].Freq + out.Buckets[i+1].Freq; f < bestF {
				bestF = f
				best = i
			}
		}
		a, b := out.Buckets[best], out.Buckets[best+1]
		mergedB := Bucket{Lo: a.Lo, Hi: b.Hi, Freq: a.Freq + b.Freq, Distinct: a.Distinct + b.Distinct}
		if w := mergedB.Width(); mergedB.Distinct > w {
			mergedB.Distinct = w
		}
		out.Buckets[best] = mergedB
		out.Buckets = append(out.Buckets[:best+1], out.Buckets[best+2:]...)
	}
	return out, nil
}
