package histogram

import (
	"fmt"
	"math"
	"sort"
)

// Hist2D is a two-dimensional equi-depth grid histogram over attribute pairs.
// Section 3.2 of the paper notes that generating queries with several join
// predicates between the same table pair ("R ⋈_{R.w=S.x ∧ R.y=S.z} S")
// require multidimensional histograms for the m-Oracle; this type implements
// that deferred extension. Construction follows the classic PHASED approach:
// equi-depth partitioning on the first attribute, then an independent
// equi-depth partitioning of each slice on the second.
type Hist2D struct {
	// Cells are disjoint rectangles covering the populated part of the
	// domain, row-major by the first attribute's slices.
	Cells []Cell2D
}

// Cell2D is one rectangular bucket of a 2-D histogram.
type Cell2D struct {
	Lo1, Hi1 int64 // inclusive range of the first attribute
	Lo2, Hi2 int64 // inclusive range of the second attribute
	Freq     float64
	// Distinct estimates the number of distinct (v1, v2) pairs in the cell.
	Distinct float64
}

// Width returns the number of integer points covered by the cell.
func (c Cell2D) Width() float64 {
	return (float64(c.Hi1-c.Lo1) + 1) * (float64(c.Hi2-c.Lo2) + 1)
}

// Contains reports whether the point lies in the cell.
func (c Cell2D) Contains(v1, v2 int64) bool {
	return v1 >= c.Lo1 && v1 <= c.Hi1 && v2 >= c.Lo2 && v2 <= c.Hi2
}

// Build2D constructs a PHASED equi-depth 2-D histogram with at most
// slices1 x slices2 cells over the paired columns, which must have equal
// length.
func Build2D(col1, col2 []int64, slices1, slices2 int) (*Hist2D, error) {
	if len(col1) != len(col2) {
		return nil, fmt.Errorf("histogram: Build2D columns have different lengths (%d vs %d)", len(col1), len(col2))
	}
	if slices1 <= 0 || slices2 <= 0 {
		return nil, fmt.Errorf("histogram: Build2D slice counts must be positive")
	}
	n := len(col1)
	if n == 0 {
		return &Hist2D{}, nil
	}
	pts := make([]pair2, n)
	for i := range col1 {
		pts[i] = pair2{col1[i], col2[i]}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].a != pts[j].a {
			return pts[i].a < pts[j].a
		}
		return pts[i].b < pts[j].b
	})
	h := &Hist2D{}
	per1 := (n + slices1 - 1) / slices1
	for start := 0; start < n; {
		end := start + per1
		if end > n {
			end = n
		}
		// Never split a run of equal first-attribute values across slices:
		// extend the slice to the run's end.
		for end < n && pts[end].a == pts[end-1].a {
			end++
		}
		slice := pts[start:end]
		lo1, hi1 := slice[0].a, slice[len(slice)-1].a
		// Second-phase equi-depth over the slice's second attribute.
		bs := make([]int64, len(slice))
		for i, p := range slice {
			bs[i] = p.b
		}
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		per2 := (len(bs) + slices2 - 1) / slices2
		for s2 := 0; s2 < len(bs); {
			e2 := s2 + per2
			if e2 > len(bs) {
				e2 = len(bs)
			}
			for e2 < len(bs) && bs[e2] == bs[e2-1] {
				e2++
			}
			cell := Cell2D{Lo1: lo1, Hi1: hi1, Lo2: bs[s2], Hi2: bs[e2-1], Freq: float64(e2 - s2)}
			cell.Distinct = float64(countDistinctPairs(slice, bs[s2], bs[e2-1]))
			h.Cells = append(h.Cells, cell)
			s2 = e2
		}
		start = end
	}
	return h, nil
}

// pair2 is one (first, second) attribute pair during 2-D construction.
type pair2 struct{ a, b int64 }

func countDistinctPairs(slice []pair2, lo2, hi2 int64) int {
	seen := map[[2]int64]struct{}{}
	for _, p := range slice {
		if p.b >= lo2 && p.b <= hi2 {
			seen[[2]int64{p.a, p.b}] = struct{}{}
		}
	}
	return len(seen)
}

// TotalFreq returns the total tuple count described by the histogram.
func (h *Hist2D) TotalFreq() float64 {
	t := 0.0
	for _, c := range h.Cells {
		t += c.Freq
	}
	return t
}

// NumCells returns the number of cells.
func (h *Hist2D) NumCells() int { return len(h.Cells) }

// EstimateEq estimates the number of tuples with exactly the pair (v1, v2)
// under the uniform-spread assumption inside the containing cell.
func (h *Hist2D) EstimateEq(v1, v2 int64) float64 {
	for _, c := range h.Cells {
		if c.Contains(v1, v2) {
			if c.Distinct <= 0 {
				return 0
			}
			return c.Freq / c.Distinct
		}
	}
	return 0
}

// EstimateRange estimates the number of tuples in the rectangle
// [lo1,hi1] x [lo2,hi2].
func (h *Hist2D) EstimateRange(lo1, hi1, lo2, hi2 int64) float64 {
	if hi1 < lo1 || hi2 < lo2 {
		return 0
	}
	est := 0.0
	for _, c := range h.Cells {
		o1 := overlap(c.Lo1, c.Hi1, lo1, hi1)
		o2 := overlap(c.Lo2, c.Hi2, lo2, hi2)
		if o1 <= 0 || o2 <= 0 {
			continue
		}
		frac := (o1 * o2) / c.Width()
		est += c.Freq * frac
	}
	return est
}

func overlap(aLo, aHi, bLo, bHi int64) float64 {
	lo, hi := aLo, aHi
	if bLo > lo {
		lo = bLo
	}
	if bHi < hi {
		hi = bHi
	}
	if hi < lo {
		return 0
	}
	return float64(hi-lo) + 1
}

// Multiplicity2D is the two-predicate m-Oracle: the expected number of
// R-tuples with (R.w, R.y) = (v1, v2), estimated from hR (a 2-D histogram
// over R's pair) damped by the probe side's distinct-pair density from hS
// (over S's pair), generalizing ContainmentMultiplicity to two dimensions.
func Multiplicity2D(hR, hS *Hist2D, v1, v2 int64) float64 {
	var cR *Cell2D
	for i := range hR.Cells {
		if hR.Cells[i].Contains(v1, v2) {
			cR = &hR.Cells[i]
			break
		}
	}
	if cR == nil || cR.Distinct <= 0 {
		return 0
	}
	m := cR.Freq / cR.Distinct
	for i := range hS.Cells {
		if hS.Cells[i].Contains(v1, v2) && hS.Cells[i].Distinct > 0 {
			densR := cR.Distinct / cR.Width()
			densS := hS.Cells[i].Distinct / hS.Cells[i].Width()
			if densS > densR {
				m *= densR / densS
			}
			break
		}
	}
	return m
}

// Validate checks structural invariants: positive frequencies, distinct
// counts within bounds, and well-formed rectangles. (Cells from the PHASED
// construction may share first-attribute boundaries, so overlap is not
// checked.)
func (h *Hist2D) Validate() error {
	for i, c := range h.Cells {
		if c.Hi1 < c.Lo1 || c.Hi2 < c.Lo2 {
			return fmt.Errorf("histogram: 2-D cell %d has inverted bounds", i)
		}
		if c.Freq < 0 || math.IsNaN(c.Freq) || math.IsInf(c.Freq, 0) {
			return fmt.Errorf("histogram: 2-D cell %d has invalid frequency %v", i, c.Freq)
		}
		if c.Distinct < 0 || c.Distinct > c.Width() || c.Distinct > c.Freq {
			return fmt.Errorf("histogram: 2-D cell %d distinct %v out of bounds", i, c.Distinct)
		}
	}
	return nil
}
