package histogram

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuild2DErrors(t *testing.T) {
	if _, err := Build2D([]int64{1}, []int64{1, 2}, 4, 4); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := Build2D(nil, nil, 0, 4); err == nil {
		t.Error("zero slices: want error")
	}
	h, err := Build2D(nil, nil, 4, 4)
	if err != nil || h.NumCells() != 0 || h.TotalFreq() != 0 {
		t.Errorf("empty input: %v, %v", h, err)
	}
}

func TestBuild2DTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 5000
	c1 := make([]int64, n)
	c2 := make([]int64, n)
	for i := 0; i < n; i++ {
		c1[i] = rng.Int63n(100)
		c2[i] = rng.Int63n(100)
	}
	h, err := Build2D(c1, c2, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(h.TotalFreq()-float64(n)) > 1e-9 {
		t.Errorf("TotalFreq = %v, want %d", h.TotalFreq(), n)
	}
	// Full-domain range estimate equals the total.
	if got := h.EstimateRange(math.MinInt32, math.MaxInt32, math.MinInt32, math.MaxInt32); math.Abs(got-float64(n)) > 1e-6 {
		t.Errorf("full range = %v, want %d", got, n)
	}
	// Quadrant estimates are roughly a quarter each on uniform data.
	q := h.EstimateRange(0, 49, 0, 49)
	if q < 0.15*float64(n) || q > 0.35*float64(n) {
		t.Errorf("quadrant estimate %v, want ~%d", q, n/4)
	}
}

func TestBuild2DCorrelationCaptured(t *testing.T) {
	// Perfectly correlated pair: y == x. A 2-D histogram concentrates mass on
	// the diagonal, so an off-diagonal rectangle should estimate near zero
	// while the 1-D independence product would predict a quarter of the data.
	n := 4000
	c1 := make([]int64, n)
	c2 := make([]int64, n)
	for i := 0; i < n; i++ {
		v := int64(i % 100)
		c1[i], c2[i] = v, v
	}
	h, err := Build2D(c1, c2, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	offDiag := h.EstimateRange(0, 49, 50, 99)
	if offDiag > 0.05*float64(n) {
		t.Errorf("off-diagonal estimate %v should be near zero (independence would say %d)", offDiag, n/4)
	}
	onDiag := h.EstimateRange(0, 49, 0, 49)
	if onDiag < 0.3*float64(n) {
		t.Errorf("on-diagonal estimate %v too small", onDiag)
	}
}

func TestEstimateEq2D(t *testing.T) {
	// Ten copies each of (1,1) and (2,2).
	var c1, c2 []int64
	for i := 0; i < 10; i++ {
		c1 = append(c1, 1, 2)
		c2 = append(c2, 1, 2)
	}
	h, err := Build2D(c1, c2, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.EstimateEq(1, 1); math.Abs(got-10) > 1e-9 {
		t.Errorf("EstimateEq(1,1) = %v, want 10", got)
	}
	if got := h.EstimateEq(50, 50); got != 0 {
		t.Errorf("EstimateEq outside = %v, want 0", got)
	}
}

func TestMultiplicity2D(t *testing.T) {
	// Build side: 20 tuples of (1,1), 5 of (2,2).
	var r1, r2 []int64
	for i := 0; i < 20; i++ {
		r1 = append(r1, 1)
		r2 = append(r2, 1)
	}
	for i := 0; i < 5; i++ {
		r1 = append(r1, 2)
		r2 = append(r2, 2)
	}
	hR, err := Build2D(r1, r2, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	hS, err := Build2D([]int64{1, 2}, []int64{1, 2}, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := Multiplicity2D(hR, hS, 1, 1); math.Abs(got-20) > 1e-9 {
		t.Errorf("m(1,1) = %v, want 20", got)
	}
	if got := Multiplicity2D(hR, hS, 2, 2); math.Abs(got-5) > 1e-9 {
		t.Errorf("m(2,2) = %v, want 5", got)
	}
	if got := Multiplicity2D(hR, hS, 9, 9); got != 0 {
		t.Errorf("m outside = %v, want 0", got)
	}
}

// Property: totals preserved, estimates non-negative and bounded by total.
func TestBuild2DQuick(t *testing.T) {
	f := func(raw []uint8, s1, s2 uint8) bool {
		n := len(raw) / 2
		c1 := make([]int64, n)
		c2 := make([]int64, n)
		for i := 0; i < n; i++ {
			c1[i] = int64(raw[2*i] % 32)
			c2[i] = int64(raw[2*i+1] % 32)
		}
		h, err := Build2D(c1, c2, int(s1%8)+1, int(s2%8)+1)
		if err != nil {
			return false
		}
		if h.Validate() != nil {
			return false
		}
		if math.Abs(h.TotalFreq()-float64(n)) > 1e-6 {
			return false
		}
		est := h.EstimateRange(0, 15, 8, 31)
		return est >= -1e-9 && est <= h.TotalFreq()+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
