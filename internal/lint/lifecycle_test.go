package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSnippet type-checks a one-file package written to a temp dir through
// the real World loader, so snippet tests exercise the same import
// resolution the command uses (module-internal imports included).
func loadSnippet(t *testing.T, src string) *Package {
	t.Helper()
	w := fixtureWorld(t)
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "snippet.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := w.LoadDir(dir, w.ModulePath+"/lintfixture/snippet")
	if err != nil {
		t.Fatalf("load snippet: %v\n%s", err, src)
	}
	return p
}

// TestReintroducedGrantLeakCaught un-fixes the PR-8 shared-scan shape: the
// real sit/parallel.go acquires gov.Grant("scan-scratch") and defers Close
// before fanning out. Deleting the defer and adding an early error return —
// exactly the bug class the hand-audit fixed — must produce a grantleak
// diagnostic at the Grant call; restoring the defer must silence it.
func TestReintroducedGrantLeakCaught(t *testing.T) {
	const unfixed = `package snippet

import (
	"errors"

	"github.com/sitstats/sits/internal/mem"
)

func sharedScan(gov *mem.Governor, nchunks int) error {
	grant := gov.Grant("scan-scratch")
	if nchunks == 0 {
		return errors.New("empty table")
	}
	grant.Close()
	return nil
}
`
	p := loadSnippet(t, unfixed)
	diags := runGrantLeak(p)
	if len(diags) != 1 {
		t.Fatalf("un-fixed shared-scan shape: want 1 grantleak finding, got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `grant "grant"`) {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}

	fixed := strings.Replace(unfixed,
		"\tif nchunks == 0 {",
		"\tdefer grant.Close()\n\tif nchunks == 0 {", 1)
	fixed = strings.Replace(fixed, "\tgrant.Close()\n\treturn nil", "\treturn nil", 1)
	if fixed == unfixed {
		t.Fatal("fix rewrite did not apply")
	}
	if diags := runGrantLeak(loadSnippet(t, fixed)); len(diags) != 0 {
		t.Fatalf("fixed shape should be clean, got %v", diags)
	}
}

// TestReintroducedPlanLeakCaught un-fixes the exec.CardinalityOpts shape:
// PlanBatch, an error return from a follow-up step, ClosePlan only at the
// end. PR 8 fixed this exact pattern by inserting `defer ClosePlan(op)`
// right after the PlanBatch error check.
func TestReintroducedPlanLeakCaught(t *testing.T) {
	const unfixed = `package snippet

type batchOp struct{}

func (o *batchOp) ClosePlan()       {}
func (o *batchOp) NextBatch() bool  { return false }

func ClosePlan(op interface{ ClosePlan() }) { op.ClosePlan() }

type catalog struct{}

func PlanBatch(cat *catalog) (*batchOp, error) { return &batchOp{}, nil }

func columnIndex(cat *catalog) (int, error) { return 0, nil }

func attrValues(cat *catalog) ([]int64, error) {
	op, err := PlanBatch(cat)
	if err != nil {
		return nil, err
	}
	idx, err := columnIndex(cat)
	if err != nil {
		return nil, err
	}
	_ = idx
	var out []int64
	for op.NextBatch() {
		out = append(out, 0)
	}
	ClosePlan(op)
	return out, nil
}
`
	p := loadSnippet(t, unfixed)
	diags := runPlanClose(p)
	if len(diags) != 1 {
		t.Fatalf("un-fixed AttrValues shape: want 1 planclose finding, got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `plan "op"`) {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}

	fixed := strings.Replace(unfixed,
		"\tidx, err := columnIndex(cat)",
		"\tdefer ClosePlan(op)\n\tidx, err := columnIndex(cat)", 1)
	fixed = strings.Replace(fixed, "\tClosePlan(op)\n\treturn out, nil", "\treturn out, nil", 1)
	if diags := runPlanClose(loadSnippet(t, fixed)); len(diags) != 0 {
		t.Fatalf("fixed shape should be clean, got %v", diags)
	}
}

// TestTransfersDirectiveScope: the directive discharges only the named
// variable and only at its own position — a second leak in the same
// function stays reported.
func TestTransfersDirectiveScope(t *testing.T) {
	const src = `package snippet

import "github.com/sitstats/sits/internal/mem"

type sink struct {
	a, b *mem.Grant
}

func two(gov *mem.Governor) *sink {
	a := gov.Grant("a")
	b := gov.Grant("b")
	s := &sink{}
	//statcheck:transfers a sink drains a
	s.a = a
	s.b = b
	return s
}
`
	diags := runGrantLeak(loadSnippet(t, src))
	if len(diags) != 1 {
		t.Fatalf("want exactly the undeclared hand-off reported, got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `"b"`) {
		t.Errorf("surviving finding should name b: %s", diags[0].Message)
	}
}
