// Package lint is a from-scratch static-analysis engine for this repository,
// built exclusively on the standard library's go/ast, go/parser, go/token and
// go/types packages (no golang.org/x/tools — the module's zero-dependency
// invariant extends to its tooling). It machine-checks the properties the
// codebase otherwise enforces only by convention:
//
//   - bit-identical SIT streams at any parallelism (no map-iteration-order
//     dependent output, no wall-clock or global-randomness inputs),
//   - zero per-row allocation in the batch executor's hot paths,
//   - per-worker scratch isolation across the worker-pool fan-outs,
//   - resource lifecycles under the shared memory Governor: grants,
//     reservations, and operator plans released on every path (grantleak,
//     planclose — built on the cfg.go/dataflow.go flow-sensitive layer),
//     atomically-accessed fields never touched plainly (atomicmix), and no
//     pool task blocking on the pool (poolblock).
//
// The engine loads every package of the module, type-checks it with a source
// importer, and runs a registry of checks that emit file:line diagnostics.
//
// # Annotation grammar
//
// Four comment directives steer the checks:
//
//	//statcheck:hot                       — marks a function as a hot path:
//	                                        the hotalloc check forbids
//	                                        allocation inside it.
//	//statcheck:scratch                   — marks a type as per-worker
//	                                        scratch: the scratchshare check
//	                                        forbids it from crossing into a
//	                                        spawned goroutine.
//	//statcheck:ignore <check>[,<check>] [reason]
//	                                      — suppresses findings of the named
//	                                        check(s). A trailing comment covers
//	                                        its own line; a comment alone on a
//	                                        line covers the line directly below.
//	//statcheck:transfers <var>[,<var>] [reason]
//	                                      — declares that the covered statement
//	                                        hands ownership of the named
//	                                        variables' resources elsewhere (a
//	                                        spill job, a long-lived struct):
//	                                        the lifecycle checks stop demanding
//	                                        a close on this function's paths.
//	                                        Positional like ignore.
//
// hot and scratch attach to the declaration they document; ignore and
// transfers are positional and apply only at their own location, so every
// suppression or hand-off is visible next to the code it excuses.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding: a position, the check that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Check is one registered analysis: a name (used in ignore directives and
// -checks filters), a one-line description, and the function run per package.
type Check struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// AllChecks returns the full check registry.
func AllChecks() []Check {
	return []Check{
		checkMapRange(),
		checkHotAlloc(),
		checkRawRand(),
		checkScratchShare(),
		checkDroppedErr(),
		checkGrantLeak(),
		checkPlanClose(),
		checkAtomicMix(),
		checkPoolBlock(),
	}
}

// Run executes the checks over the packages, drops findings suppressed by
// //statcheck:ignore directives, and returns the survivors sorted by position.
func Run(pkgs []*Package, checks []Check) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		for _, c := range checks {
			for _, d := range c.Run(p) {
				if p.suppressed(d) {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return out
}
