package lint

// This file builds per-function control-flow graphs over go/ast, the
// foundation of the flow-sensitive lifecycle checks (grantleak, planclose).
// The builder is deliberately small: blocks hold statements in execution
// order, if/for conditions sit on the block that evaluates them (with the
// true successor first), break/continue/goto/return become edges, and defer
// statements are collected in registration order for the dataflow engine to
// replay as exit actions. Panic terminates into the exit block (deferred
// closes still run); os.Exit and log.Fatal* terminate with no exit edge
// (nothing runs after them, so nothing can leak past them).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// cfgBlock is one basic block: statements executed in order, then a branch.
// When cond is non-nil the block ends in a two-way branch — succs[0] is the
// condition-true edge, succs[1] the condition-false edge. With a nil cond
// every successor receives the same flow facts (multi-way switch/select
// dispatch, loop back-edges, plain fallthrough into a join).
type cfgBlock struct {
	index int
	stmts []ast.Node
	cond  ast.Expr
	succs []*cfgBlock
}

// funcCFG is one function body's graph plus the lexically registered defers.
type funcCFG struct {
	blocks []*cfgBlock
	entry  *cfgBlock
	exit   *cfgBlock
	defers []*ast.DeferStmt
}

// cfgLabel records the targets a named label exposes: block for goto, and
// the enclosing loop/switch join and post blocks for labeled break/continue.
type cfgLabel struct {
	block *cfgBlock
	brk   *cfgBlock
	cont  *cfgBlock
}

type cfgBuilder struct {
	info *types.Info
	cfg  *funcCFG
	cur  *cfgBlock

	breaks    []*cfgBlock // innermost-last break targets
	continues []*cfgBlock // innermost-last continue targets
	fall      *cfgBlock   // fallthrough target while building a case body

	labels       map[string]*cfgLabel
	pendingGotos []pendingGoto
	pendingLabel string // label naming the next loop/switch being built
}

type pendingGoto struct {
	from *cfgBlock
	name string
}

// buildCFG constructs the CFG of a function body. info may be nil; it is
// used only to recognize the panic builtin and the os.Exit/log.Fatal
// terminators.
func buildCFG(body *ast.BlockStmt, info *types.Info) *funcCFG {
	b := &cfgBuilder{
		info:   info,
		cfg:    &funcCFG{},
		labels: map[string]*cfgLabel{},
	}
	b.cfg.entry = b.newBlock()
	b.cfg.exit = &cfgBlock{}
	b.cur = b.cfg.entry
	b.buildList(body.List)
	b.edge(b.cur, b.cfg.exit)
	for _, g := range b.pendingGotos {
		if l := b.labels[g.name]; l != nil {
			b.edge(g.from, l.block)
		}
	}
	b.finish()
	return b.cfg
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// terminate ends the current block (its edges are already placed) and parks
// subsequent statements in a fresh unreachable block.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) buildList(stmts []ast.Stmt) {
	for _, s := range stmts {
		b.buildStmt(s)
	}
}

func (b *cfgBuilder) buildStmt(s ast.Stmt) {
	switch stmt := s.(type) {
	case *ast.BlockStmt:
		b.buildList(stmt.List)

	case *ast.IfStmt:
		if stmt.Init != nil {
			b.cur.stmts = append(b.cur.stmts, stmt.Init)
		}
		condBlk := b.cur
		condBlk.cond = stmt.Cond
		thenBlk := b.newBlock()
		join := b.newBlock()
		b.edge(condBlk, thenBlk) // true edge first
		b.cur = thenBlk
		b.buildStmt(stmt.Body)
		b.edge(b.cur, join)
		if stmt.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.buildStmt(stmt.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if stmt.Init != nil {
			b.cur.stmts = append(b.cur.stmts, stmt.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		join := b.newBlock()
		post := head
		if stmt.Post != nil {
			post = b.newBlock()
			post.stmts = append(post.stmts, stmt.Post)
			b.edge(post, head)
		}
		b.edge(b.cur, head)
		if stmt.Cond != nil {
			head.cond = stmt.Cond
			b.edge(head, body)
			b.edge(head, join)
		} else {
			b.edge(head, body)
		}
		b.setLabel(label, join, post)
		b.pushLoop(join, post)
		b.cur = body
		b.buildStmt(stmt.Body)
		b.popLoop()
		b.edge(b.cur, post)
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		head.stmts = append(head.stmts, stmt)
		body := b.newBlock()
		join := b.newBlock()
		b.edge(b.cur, head)
		b.edge(head, body)
		b.edge(head, join)
		b.setLabel(label, join, head)
		b.pushLoop(join, head)
		b.cur = body
		b.buildStmt(stmt.Body)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if stmt.Init != nil {
			b.cur.stmts = append(b.cur.stmts, stmt.Init)
		}
		if stmt.Tag != nil {
			b.cur.stmts = append(b.cur.stmts, stmt.Tag)
		}
		b.buildCases(label, stmt.Body.List, true)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if stmt.Init != nil {
			b.cur.stmts = append(b.cur.stmts, stmt.Init)
		}
		b.cur.stmts = append(b.cur.stmts, stmt.Assign)
		b.buildCases(label, stmt.Body.List, true)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.buildCases(label, stmt.Body.List, false)

	case *ast.LabeledStmt:
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[stmt.Label.Name] = &cfgLabel{block: target}
		b.pendingLabel = stmt.Label.Name
		b.buildStmt(stmt.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.cur.stmts = append(b.cur.stmts, stmt)
		b.edge(b.cur, b.cfg.exit)
		b.terminate()

	case *ast.BranchStmt:
		b.cur.stmts = append(b.cur.stmts, stmt)
		switch stmt.Tok {
		case token.BREAK:
			if stmt.Label != nil {
				if l := b.labels[stmt.Label.Name]; l != nil {
					b.edge(b.cur, l.brk)
				}
			} else if len(b.breaks) > 0 {
				b.edge(b.cur, b.breaks[len(b.breaks)-1])
			}
		case token.CONTINUE:
			if stmt.Label != nil {
				if l := b.labels[stmt.Label.Name]; l != nil {
					b.edge(b.cur, l.cont)
				}
			} else if len(b.continues) > 0 {
				b.edge(b.cur, b.continues[len(b.continues)-1])
			}
		case token.GOTO:
			if l := b.labels[stmt.Label.Name]; l != nil {
				b.edge(b.cur, l.block)
			} else {
				b.pendingGotos = append(b.pendingGotos, pendingGoto{from: b.cur, name: stmt.Label.Name})
			}
		case token.FALLTHROUGH:
			b.edge(b.cur, b.fall)
		}
		b.terminate()

	case *ast.DeferStmt:
		b.cfg.defers = append(b.cfg.defers, stmt)
		b.cur.stmts = append(b.cur.stmts, stmt)

	case *ast.ExprStmt:
		b.cur.stmts = append(b.cur.stmts, stmt)
		if call, ok := unparen(stmt.X).(*ast.CallExpr); ok {
			if b.isPanic(call) {
				b.edge(b.cur, b.cfg.exit) // defers run on the panic path
				b.terminate()
			} else if b.isNoReturn(call) {
				b.terminate() // os.Exit: no deferred closes, no leak past it
			}
		}

	default:
		b.cur.stmts = append(b.cur.stmts, stmt)
	}
}

// buildCases builds the clause blocks of a switch/type-switch/select. When
// fallthroughOK, a fallthrough in clause i edges into clause i+1's block.
// defaultFalls: a switch without a default clause can fall through to the
// join without entering any case; a select without default cannot.
func (b *cfgBuilder) buildCases(label string, clauses []ast.Stmt, isSwitch bool) {
	dispatch := b.cur
	join := b.newBlock()
	b.setLabel(label, join, nil)

	hasDefault := false
	caseBlocks := make([]*cfgBlock, len(clauses))
	var caseBodies [][]ast.Stmt
	for i, c := range clauses {
		caseBlocks[i] = b.newBlock()
		b.edge(dispatch, caseBlocks[i])
		switch cl := c.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				caseBlocks[i].stmts = append(caseBlocks[i].stmts, e)
			}
			caseBodies = append(caseBodies, cl.Body)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				caseBlocks[i].stmts = append(caseBlocks[i].stmts, cl.Comm)
			}
			caseBodies = append(caseBodies, cl.Body)
		}
	}
	if isSwitch && !hasDefault {
		b.edge(dispatch, join)
	}
	if len(clauses) == 0 {
		if !isSwitch {
			b.terminate() // select{} blocks forever
			b.cur = join  // join unreachable, kept for symmetry
			return
		}
		b.cur = join
		return
	}
	b.breaks = append(b.breaks, join)
	for i := range clauses {
		b.cur = caseBlocks[i]
		if isSwitch && i+1 < len(clauses) {
			b.fall = caseBlocks[i+1]
		} else {
			b.fall = nil
		}
		b.buildList(caseBodies[i])
		b.edge(b.cur, join)
	}
	b.fall = nil
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = join
}

func (b *cfgBuilder) pushLoop(brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// takeLabel consumes the pending label attached to the construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

// setLabel records the break/continue targets of a labeled loop or switch.
func (b *cfgBuilder) setLabel(name string, brk, cont *cfgBlock) {
	if name == "" {
		return
	}
	if l := b.labels[name]; l != nil {
		l.brk, l.cont = brk, cont
	}
}

// isPanic reports whether the call invokes the panic builtin.
func (b *cfgBuilder) isPanic(call *ast.CallExpr) bool {
	if b.info == nil {
		id, ok := unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return isBuiltin(b.info, call, "panic")
}

// isNoReturn reports whether the call never returns and runs no defers:
// os.Exit, runtime.Goexit (which does run defers, but control never reaches
// the exit of this function normally; treating it as a dead end errs on the
// quiet side), and log.Fatal*.
func (b *cfgBuilder) isNoReturn(call *ast.CallExpr) bool {
	if b.info == nil {
		return false
	}
	fn := calleeFunc(b.info, call)
	if fn == nil {
		return false
	}
	switch pkgPathOf(fn) {
	case "os":
		return fn.Name() == "Exit"
	case "runtime":
		return fn.Name() == "Goexit"
	case "log":
		return strings.HasPrefix(fn.Name(), "Fatal")
	}
	return false
}

// finish prunes unreachable empty scaffolding blocks, appends the exit block
// and assigns stable indices (entry first, exit last, construction order in
// between) so golden renderings are deterministic.
func (b *cfgBuilder) finish() {
	preds := map[*cfgBlock]int{}
	for _, blk := range b.cfg.blocks {
		for _, s := range blk.succs {
			preds[s]++
		}
	}
	// Iteratively drop empty, pred-less, non-entry blocks: removing one can
	// strand another (an unreachable chain left by consecutive terminators).
	for {
		removed := false
		kept := b.cfg.blocks[:0]
		for _, blk := range b.cfg.blocks {
			if blk != b.cfg.entry && preds[blk] == 0 && len(blk.stmts) == 0 && blk.cond == nil {
				for _, s := range blk.succs {
					preds[s]--
				}
				removed = true
				continue
			}
			kept = append(kept, blk)
		}
		b.cfg.blocks = kept
		if !removed {
			break
		}
	}
	b.cfg.blocks = append(b.cfg.blocks, b.cfg.exit)
	for i, blk := range b.cfg.blocks {
		blk.index = i
	}
}

// String renders the CFG compactly for golden tests: one line per block with
// statement kinds, the branch condition if any, and successor indices.
func (c *funcCFG) String() string {
	var sb strings.Builder
	for _, blk := range c.blocks {
		fmt.Fprintf(&sb, "b%d:", blk.index)
		if blk == c.exit {
			sb.WriteString(" exit")
			if len(c.defers) > 0 {
				fmt.Fprintf(&sb, " (defers: %d)", len(c.defers))
			}
		}
		for _, s := range blk.stmts {
			sb.WriteString(" ")
			sb.WriteString(nodeKind(s))
		}
		if blk.cond != nil {
			fmt.Fprintf(&sb, " [if %s]", types.ExprString(blk.cond))
		}
		if len(blk.succs) > 0 {
			ids := make([]string, len(blk.succs))
			for i, s := range blk.succs {
				ids[i] = fmt.Sprintf("b%d", s.index)
			}
			// Branch blocks keep true/false edge order; plain blocks sort for
			// stability.
			if blk.cond == nil {
				sort.Strings(ids)
			}
			fmt.Fprintf(&sb, " -> %s", strings.Join(ids, " "))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeKind names a statement/expression for CFG renderings.
func nodeKind(n ast.Node) string {
	switch s := n.(type) {
	case *ast.AssignStmt:
		return "assign"
	case *ast.DeclStmt:
		return "decl"
	case *ast.ReturnStmt:
		return "return"
	case *ast.DeferStmt:
		return "defer"
	case *ast.GoStmt:
		return "go"
	case *ast.SendStmt:
		return "send"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.BranchStmt:
		return strings.ToLower(s.Tok.String())
	case *ast.RangeStmt:
		return "range"
	case *ast.ExprStmt:
		if _, ok := unparen(s.X).(*ast.CallExpr); ok {
			return "call"
		}
		return "expr"
	case *ast.EmptyStmt:
		return "empty"
	case ast.Expr:
		return "expr"
	default:
		return strings.TrimPrefix(strings.ToLower(fmt.Sprintf("%T", n)), "*ast.")
	}
}
