package lint

// grantleak: every memory-governor acquisition must be released on all paths.
//
// Two fact kinds ride the lifecycle engine:
//
//   - "grant": the *Grant returned by Governor.Grant must reach Grant.Close
//     on every path out of the function (PR 5's accounting contract — an
//     unclosed grant strands its bytes in Governor.used forever once N
//     builders share one Governor).
//   - "reservation": bytes admitted on a grant by Reserve / TryReserve /
//     Force must reach Release or Close. Reservations are tracked only on
//     grants opened in the same function — reserving on a parameter or field
//     grant is the owner's ledger, not this function's obligation.
//
// Matching is structural (receiver type *named* Governor / Grant), so the
// check binds against internal/mem without the lint package importing it and
// fixtures can declare their own mock types.

import (
	"fmt"
	"go/ast"
	"go/types"
)

func checkGrantLeak() Check {
	return Check{
		Name: "grantleak",
		Doc:  "governor grants and reservations must be released on every path",
		Run:  runGrantLeak,
	}
}

func runGrantLeak(p *Package) []Diagnostic {
	return runLifecycle(p, lifecycleSpec{
		check:      "grantleak",
		open:       grantOpen,
		closeKinds: grantCloseKinds,
		leakMsg: func(f *lcFact) string {
			closer := "Close"
			if f.kind == "reservation" {
				closer = "Release"
			}
			return fmt.Sprintf("%s %q may leak %s", f.what, f.name, leakSuffix(f, closer))
		},
	})
}

// grantOpen classifies Governor.Grant (result-bound) and the reservation
// methods on Grant (receiver-bound).
func grantOpen(p *Package, call *ast.CallExpr) (lcOpen, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lcOpen{}, false
	}
	recvType := receiverTypeOf(p, sel)
	if recvType == nil {
		return lcOpen{}, false
	}
	switch sel.Sel.Name {
	case "Grant":
		if typeNameIs(recvType, "Governor") && typeNameIs(firstResultType(p.Info, call), "Grant") {
			return lcOpen{kind: "grant", what: "grant"}, true
		}
	case "Reserve":
		if typeNameIs(recvType, "Grant") {
			return lcOpen{kind: "reservation", what: "reservation", resIsRecv: true,
				requiresKind: "grant", conditional: true}, true
		}
	case "TryReserve":
		if typeNameIs(recvType, "Grant") {
			return lcOpen{kind: "reservation", what: "reservation", resIsRecv: true,
				requiresKind: "grant", conditional: true}, true
		}
	case "Force":
		if typeNameIs(recvType, "Grant") {
			return lcOpen{kind: "reservation", what: "reservation", resIsRecv: true,
				requiresKind: "grant"}, true
		}
	}
	return lcOpen{}, false
}

// grantCloseKinds recognizes res.Close() (kills grant and reservation) and
// res.Release(n) (kills reservation).
func grantCloseKinds(p *Package, call *ast.CallExpr, res types.Object) []string {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok || p.Info.Uses[id] != res {
		return nil
	}
	switch sel.Sel.Name {
	case "Close":
		return []string{"grant", "reservation"}
	case "Release":
		return []string{"reservation"}
	}
	return nil
}

// receiverTypeOf returns the type of a method call's receiver expression,
// or nil when the selector is a package-qualified name.
func receiverTypeOf(p *Package, sel *ast.SelectorExpr) types.Type {
	if id, ok := unparen(sel.X).(*ast.Ident); ok {
		if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
			return nil
		}
	}
	tv, ok := p.Info.Types[sel.X]
	if !ok {
		return nil
	}
	return tv.Type
}
