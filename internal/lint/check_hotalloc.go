package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkHotAlloc flags allocation inside functions annotated //statcheck:hot:
//
//   - make/new calls and slice/map composite literals, unless they sit under
//     a capacity guard (an if whose condition consults cap() or len()), which
//     is the sanctioned amortized-growth idiom;
//   - append whose result is not assigned back to the slice it extends
//     (silent reallocation that defeats buffer reuse);
//   - function literals (closure allocation, and a comparator call per
//     element when handed to sort);
//   - arguments implicitly boxed into interface parameters (fmt-style calls
//     and oracles taken by interface value allocate per call).
//
// Hot functions are checked non-transitively: the annotation marks exactly
// the bodies that must stay allocation-free.
func checkHotAlloc() Check {
	return Check{
		Name: "hotalloc",
		Doc:  "allocation inside a //statcheck:hot function",
		Run:  runHotAlloc,
	}
}

func runHotAlloc(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, fd := range p.Hot {
		if fd.Body == nil {
			continue
		}
		name := funcName(fd)
		walkStack(fd.Body, func(n ast.Node, stack []ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncLit:
				out = append(out, p.diag("hotalloc", node,
					fmt.Sprintf("closure allocated in hot function %s", name)))
				return false // the literal's body is not the hot path itself
			case *ast.CompositeLit:
				t := p.Info.TypeOf(node)
				if t == nil {
					return true
				}
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					if !underCapacityGuard(stack) {
						out = append(out, p.diag("hotalloc", node,
							fmt.Sprintf("unguarded %s literal allocates in hot function %s", kindWord(t), name)))
					}
				}
			case *ast.CallExpr:
				out = append(out, hotAllocCall(p, node, stack, name)...)
			}
			return true
		})
	}
	return out
}

func hotAllocCall(p *Package, call *ast.CallExpr, stack []ast.Node, name string) []Diagnostic {
	var out []Diagnostic
	switch {
	case isBuiltin(p.Info, call, "make"), isBuiltin(p.Info, call, "new"):
		if !underCapacityGuard(stack) {
			out = append(out, p.diag("hotalloc", call,
				fmt.Sprintf("unguarded %s allocates in hot function %s; reuse a scratch buffer or guard growth with a cap() check",
					unparen(call.Fun).(*ast.Ident).Name, name)))
		}
	case isBuiltin(p.Info, call, "append"):
		if d, bad := appendNotInPlace(p, call, stack); bad {
			out = append(out, p.diag("hotalloc", call, fmt.Sprintf("%s in hot function %s", d, name)))
		}
	case isConversion(p.Info, call):
		if t := p.Info.TypeOf(call); t != nil && types.IsInterface(t) {
			out = append(out, p.diag("hotalloc", call,
				fmt.Sprintf("conversion to interface boxes its operand in hot function %s", name)))
		}
	default:
		out = append(out, boxedArgs(p, call, name)...)
	}
	return out
}

// appendNotInPlace reports appends whose result does not flow back into the
// first argument (x = append(x, ...) is the only allocation-safe shape once x
// is preallocated).
func appendNotInPlace(p *Package, call *ast.CallExpr, stack []ast.Node) (string, bool) {
	if len(call.Args) == 0 {
		return "", false
	}
	src := types.ExprString(unparen(call.Args[0]))
	if len(stack) > 0 {
		if as, ok := stack[len(stack)-1].(*ast.AssignStmt); ok {
			for i, rhs := range as.Rhs {
				if unparen(rhs) == call && i < len(as.Lhs) {
					if types.ExprString(unparen(as.Lhs[i])) == src {
						return "", false
					}
					return fmt.Sprintf("append(%s, ...) assigned to %s may reallocate per call",
						src, types.ExprString(unparen(as.Lhs[i]))), true
				}
			}
		}
	}
	return fmt.Sprintf("append(%s, ...) result discarded or passed on; assign it back to %s", src, src), true
}

// boxedArgs flags arguments whose static type is concrete but whose parameter
// is an interface: each such call boxes the value.
func boxedArgs(p *Package, call *ast.CallExpr, name string) []Diagnostic {
	sigT := p.Info.TypeOf(call.Fun)
	if sigT == nil {
		return nil
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return nil
	}
	var out []Diagnostic
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
			if call.Ellipsis.IsValid() {
				pt = nil // forwarding a slice, no per-element boxing
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		out = append(out, p.diag("hotalloc", arg,
			fmt.Sprintf("argument boxed into interface parameter in hot function %s", name)))
	}
	return out
}

// underCapacityGuard reports whether any enclosing if-statement's condition
// consults cap() or len() — the amortized-growth escape hatch.
func underCapacityGuard(stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
				guarded = true
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

func kindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	default:
		return "composite"
	}
}
