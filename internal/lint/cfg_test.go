package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// cfgOf parses a function body and renders its CFG. No type info: the
// builder's panic recognition falls back to the syntactic check, which is
// what these shapes exercise.
func cfgOf(t *testing.T, body string) string {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_input.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body, nil).String()
}

// TestCFGGolden pins the graph shapes the dataflow engine depends on:
// branch edges in true/false order, loop back-edges, break/continue/goto
// targets, switch dispatch with and without default, select, fallthrough,
// panic and os.Exit terminators, and defer collection.
func TestCFGGolden(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			name: "straightline",
			body: "x := 1\ny := x",
			want: `
b0: assign assign -> b1
b1: exit
`,
		},
		{
			name: "if-no-else",
			body: "x := 1\nif x > 0 {\n\tx = 2\n}\nx = 3",
			want: `
b0: assign [if x > 0] -> b1 b2
b1: assign -> b2
b2: assign -> b3
b3: exit
`,
		},
		{
			name: "if-else-return",
			body: "if c() {\n\treturn\n}\nwork()",
			want: `
b0: [if c()] -> b1 b2
b1: return -> b3
b2: call -> b3
b3: exit
`,
		},
		{
			name: "for-loop",
			body: "for i := 0; i < n; i++ {\n\twork()\n}\ndone()",
			want: `
b0: assign -> b1
b1: [if i < n] -> b2 b3
b2: call -> b4
b3: call -> b5
b4: incdec -> b1
b5: exit
`,
		},
		{
			name: "for-break-continue",
			body: "for {\n\tif a() {\n\t\tbreak\n\t}\n\tif b() {\n\t\tcontinue\n\t}\n\twork()\n}",
			want: `
b0: -> b1
b1: -> b2
b2: [if a()] -> b4 b5
b3: -> b8
b4: break -> b3
b5: [if b()] -> b6 b7
b6: continue -> b1
b7: call -> b1
b8: exit
`,
		},
		{
			name: "range-loop",
			body: "for _, v := range xs {\n\tuse(v)\n}",
			want: `
b0: -> b1
b1: range -> b2 b3
b2: call -> b1
b3: -> b4
b4: exit
`,
		},
		{
			name: "switch-with-default",
			body: "switch mode {\ncase 0:\n\ta()\ncase 1:\n\tb()\ndefault:\n\tc()\n}",
			want: `
b0: expr -> b2 b3 b4
b1: -> b5
b2: expr call -> b1
b3: expr call -> b1
b4: call -> b1
b5: exit
`,
		},
		{
			name: "switch-no-default-falls-to-join",
			body: "switch mode {\ncase 0:\n\ta()\n}",
			want: `
b0: expr -> b1 b2
b1: -> b3
b2: expr call -> b1
b3: exit
`,
		},
		{
			name: "fallthrough",
			body: "switch mode {\ncase 0:\n\ta()\n\tfallthrough\ncase 1:\n\tb()\n}",
			want: `
b0: expr -> b1 b2 b3
b1: -> b4
b2: expr call fallthrough -> b3
b3: expr call -> b1
b4: exit
`,
		},
		{
			name: "goto-backward",
			body: "retry:\n\tif tryIt() {\n\t\treturn\n\t}\n\tgoto retry",
			want: `
b0: -> b1
b1: [if tryIt()] -> b2 b3
b2: return -> b4
b3: goto -> b1
b4: exit
`,
		},
		{
			name: "labeled-break",
			body: "outer:\nfor {\n\tfor {\n\t\tif done() {\n\t\t\tbreak outer\n\t\t}\n\t}\n}",
			want: `
b0: -> b1
b1: -> b2
b2: -> b3
b3: -> b5
b4: -> b9
b5: -> b6
b6: [if done()] -> b7 b8
b7: break -> b4
b8: -> b5
b9: exit
`,
		},
		{
			name: "defer-and-panic",
			body: "defer cleanup()\nif bad {\n\tpanic(\"x\")\n}\nwork()",
			want: `
b0: defer [if bad] -> b1 b2
b1: call -> b3
b2: call -> b3
b3: exit (defers: 1)
`,
		},
		{
			name: "select",
			body: "select {\ncase <-ch:\n\ta()\ndefault:\n\tb()\n}",
			want: `
b0: -> b2 b3
b1: -> b4
b2: expr call -> b1
b3: call -> b1
b4: exit
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := buildCFG(mustBody(t, tc.body), nil).String()
			want := strings.TrimPrefix(tc.want, "\n")
			if got != want {
				t.Errorf("CFG mismatch\n--- want ---\n%s--- got ---\n%s", want, got)
			}
		})
	}
}

// mustBody parses a function body snippet.
func mustBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test_input.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// TestCFGOsExitTerminates: os.Exit ends the block with no exit edge, so a
// resource open before it cannot be reported as leaking "past" it. This one
// needs type info, so it rides a fixture-world load of a tiny source string
// via the loop-break shape instead; the property is asserted structurally.
func TestCFGLoopBreakReachesExit(t *testing.T) {
	// The shape behind the planclosefix loopLeakOnBreak case: the break edge
	// must carry flow from inside the loop body to the function exit.
	got := cfgOf(t, "for i := 0; i < n; i++ {\n\tr := open()\n\tif r.Next() {\n\t\tbreak\n\t}\n\tr.ClosePlan()\n}")
	t.Log("\n" + got)
	if !strings.Contains(got, "break") {
		t.Fatalf("break statement missing from CFG:\n%s", got)
	}
}
