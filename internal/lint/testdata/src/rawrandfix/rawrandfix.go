// Package rawrandfix seeds rawrand violations: global math/rand draws and
// wall-clock reads, next to the allowed explicitly-seeded generator.
package rawrandfix

import (
	"math/rand"
	"time"
)

// Jitter draws from the global source and the wall clock.
func Jitter() int64 {
	n := rand.Int63n(100)                      // want rawrand
	stamp := time.Now().UnixNano()             // want rawrand
	elapsed := time.Since(time.Unix(0, stamp)) // want rawrand
	return n + int64(elapsed)
}

// Seeded threads an explicitly seeded generator: methods on a *rand.Rand are
// deterministic given the seed and must not be reported.
func Seeded(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Int63n(100)
}
