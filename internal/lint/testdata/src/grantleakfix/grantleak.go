// Package grantleakfix seeds grantleak violations and pins the allowed
// lifecycles. It imports the real internal/mem package so the check is
// proven to bind against the actual Governor/Grant types, not just mocks.
package grantleakfix

import (
	"errors"

	"github.com/sitstats/sits/internal/mem"
)

// job stands in for a spill task that takes over a grant.
type job struct {
	g *mem.Grant
}

func work() {}

// leakOnEarlyReturn: the error path returns without closing the grant.
func leakOnEarlyReturn(gov *mem.Governor, fail bool) error {
	g := gov.Grant("scan") // want grantleak
	if fail {
		return errors.New("boom")
	}
	g.Close()
	return nil
}

// closedAllPaths closes on both branches: clean.
func closedAllPaths(gov *mem.Governor, fail bool) error {
	g := gov.Grant("scan")
	if fail {
		g.Close()
		return errors.New("boom")
	}
	g.Close()
	return nil
}

// deferClose covers every path, panics included: clean.
func deferClose(gov *mem.Governor, fail bool) error {
	g := gov.Grant("scan")
	defer g.Close()
	if fail {
		return errors.New("boom")
	}
	return nil
}

// switchLeak leaks through one case of a switch.
func switchLeak(gov *mem.Governor, mode int) {
	g := gov.Grant("scan") // want grantleak
	switch mode {
	case 0:
		g.Close()
	case 1:
		work() // leak: falls to the join without closing
	default:
		g.Close()
	}
}

// forceLeak takes a reservation with Force and returns without Release or
// Close: both the grant and the reservation leak.
func forceLeak(gov *mem.Governor, n int64) {
	g := gov.Grant("sort") // want grantleak
	g.Force(n)             // want grantleak
	work()
}

// tryReserveBranch: the reservation exists only on the success edge, and
// both it and the grant are released there; the failure edge closes the
// grant. Clean.
func tryReserveBranch(gov *mem.Governor, n int64) bool {
	g := gov.Grant("sort")
	if !g.TryReserve(n) {
		g.Close()
		return false
	}
	g.Release(n)
	g.Close()
	return true
}

// reserveChecked binds the ok result; the failure branch never holds the
// reservation, and Close covers the rest. Clean.
func reserveChecked(gov *mem.Governor, n int64) error {
	g := gov.Grant("sort")
	defer g.Close()
	ok, err := g.Reserve(n)
	if err != nil || !ok {
		return err
	}
	g.Release(n)
	return nil
}

// loopLeak reserves each iteration but releases only on the last: the
// back-edge carries an open reservation and the loop may exit right after a
// Force.
func loopLeak(gov *mem.Governor, sizes []int64) {
	g := gov.Grant("runs") // want grantleak
	for _, n := range sizes {
		g.Force(n) // want grantleak
		work()
	}
}

// storeLeak parks the grant in a struct without declaring the hand-off:
// storing for later does not discharge the obligation.
func storeLeak(gov *mem.Governor) *job {
	g := gov.Grant("spill") // want grantleak
	return &job{g: g}
}

// storeTransferred declares the same hand-off with a transfers directive:
// the job owns the grant now. Clean.
func storeTransferred(gov *mem.Governor) *job {
	g := gov.Grant("spill")
	//statcheck:transfers g the spill job closes it when drained
	return &job{g: g}
}

// handoffByCall passes the grant to another function, which takes over the
// obligation (intraprocedural boundary). Clean by policy.
func handoffByCall(gov *mem.Governor) {
	g := gov.Grant("scan")
	adopt(g)
}

func adopt(g *mem.Grant) {
	g.Close()
}

// suppressedLeak is the twin of leakOnEarlyReturn with the finding
// suppressed in place; the fixture's exact-match harness proves the
// directive silences exactly this line and nothing else.
func suppressedLeak(gov *mem.Governor, fail bool) error {
	g := gov.Grant("scan") //statcheck:ignore grantleak fixture: deliberate leak, freed at process exit
	if fail {
		return errors.New("boom")
	}
	g.Close()
	return nil
}

// panicGuarded: the panic path runs deferred closes. Clean.
func panicGuarded(gov *mem.Governor, bad bool) {
	g := gov.Grant("scan")
	defer g.Close()
	if bad {
		panic("invariant")
	}
	work()
}
