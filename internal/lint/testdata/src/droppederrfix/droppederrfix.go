// Package droppederrfix seeds droppederr violations: silently discarded
// errors from io and encoding calls, next to the handled and
// explicitly-discarded allowed forms.
package droppederrfix

import (
	"bufio"
	"encoding/json"
	"os"
)

// Persist drops every error that carries data loss.
func Persist(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want droppederr
	w := bufio.NewWriter(f)
	json.NewEncoder(w).Encode(v) // want droppederr
	w.Flush()                    // want droppederr
	return nil
}

// PersistChecked handles or explicitly discards every error: allowed.
func PersistChecked(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
