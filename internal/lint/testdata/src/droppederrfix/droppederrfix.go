// Package droppederrfix seeds droppederr violations: silently discarded
// errors from io and encoding calls, next to the handled and
// explicitly-discarded allowed forms.
package droppederrfix

import (
	"bufio"
	"encoding/json"
	"os"
)

// Persist drops every error that carries data loss.
func Persist(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want droppederr
	w := bufio.NewWriter(f)
	json.NewEncoder(w).Encode(v) // want droppederr
	w.Flush()                    // want droppederr
	return nil
}

// SpillRun mimics a run-store spill writer: the temp file's Close and
// Remove errors are exactly the data-loss path of an external run store,
// where a truncated run silently corrupts a spilled partition.
func SpillRun(dir string, data []byte) error {
	f, err := os.CreateTemp(dir, "*.run")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()           // want droppederr
		os.Remove(f.Name()) // want droppederr
		return err
	}
	f.Close() // want droppederr
	return nil
}

// SpillRunChecked propagates the Close error and discards cleanup errors
// explicitly: allowed.
func SpillRunChecked(dir string, data []byte) error {
	f, err := os.CreateTemp(dir, "*.run")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = os.Remove(f.Name())
		return err
	}
	return f.Close()
}

// PersistChecked handles or explicitly discards every error: allowed.
func PersistChecked(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
