// Package poolblockfix seeds poolblock violations with a structural Pool
// mock: the check matches any type named Pool, so the fixture needs no
// import of internal/exec.
package poolblockfix

// Pool mirrors the exec.Pool surface the check cares about.
type Pool struct{}

func (p *Pool) Submit(task func())                  {}
func (p *Pool) ForkJoin(tasks []func())             {}
func (p *Pool) ForkJoinWidth(w int, tasks []func()) {}
func (p *Pool) Close()                              {}

// Default mirrors exec.Default.
func Default() *Pool { return &Pool{} }

type spillJob struct {
	p *Pool
}

// exec is the inline-claim shape: no blocking pool calls.
func (j *spillJob) exec() {}

// nestedFanout blocks the worker on a nested fan-out: the classic deadlock.
func nestedFanout(p *Pool, tasks []func()) {
	p.Submit(func() {
		p.ForkJoin(tasks) // want poolblock
	})
}

// viaDefault reaches the pool through the package accessor instead of a
// captured variable; still the same pool, still flagged.
func viaDefault(tasks []func()) {
	Default().Submit(func() {
		Default().ForkJoinWidth(2, tasks) // want poolblock
	})
}

// closeFromTask: closing the pool from one of its own workers waits on
// itself.
func closeFromTask(p *Pool) {
	p.Submit(func() {
		p.Close() // want poolblock
	})
}

// nestedLiteral: the blocking call hides one literal deeper; the worker may
// run it inline, so it is still flagged.
func nestedLiteral(p *Pool, tasks []func()) {
	p.Submit(func() {
		drain := func() {
			p.ForkJoin(tasks) // want poolblock
		}
		drain()
	})
}

// resubmitOK: Submit from a task never blocks (it only enqueues). Clean.
func resubmitOK(p *Pool) {
	p.Submit(func() {
		p.Submit(func() {})
	})
}

// methodValueOK submits a method value: the sanctioned inline-claim
// hand-off carries no literal to inspect. Clean by design.
func methodValueOK(p *Pool, j *spillJob) {
	p.Submit(j.exec)
}

// outsideOK: blocking entry points are fine outside submitted tasks.
func outsideOK(p *Pool, tasks []func()) {
	p.ForkJoin(tasks)
	p.Close()
}
