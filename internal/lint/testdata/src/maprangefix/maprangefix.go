// Package maprangefix seeds maprange violations: it is loaded by lint_test.go
// under a fake import path inside a result-producing package so the check
// applies. Lines carrying want-markers must be reported.
package maprangefix

import "sort"

// Emit ranges the map straight into the result: order-nondeterministic.
func Emit(weights map[string]float64) []string {
	var out []string
	for k := range weights { // want maprange
		out = append(out, k)
	}
	return out
}

// EmitSorted collects then sorts before use: the sanctioned idiom.
func EmitSorted(weights map[string]float64) []string {
	var out []string
	for k := range weights {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum folds floats in iteration order; float addition is not associative, so
// the total depends on the order even though no keys are emitted.
func Sum(weights map[string]float64) float64 {
	total := 0.0
	for _, w := range weights { // want maprange
		total += w
	}
	return total
}

// SortedBefore sorts a different slice before the loop; the loop's own output
// is still unsorted, so the range is a finding.
func SortedBefore(weights map[string]float64, other []string) []string {
	sort.Strings(other)
	var out []string
	for k := range weights { // want maprange
		out = append(out, k)
	}
	return out
}
