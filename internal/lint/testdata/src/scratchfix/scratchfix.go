// Package scratchfix seeds scratchshare violations: per-worker scratch
// escaping into goroutines (by argument and by closure capture) and sync
// primitives copied by value.
package scratchfix

import "sync"

type workScratch struct {
	m []float64
}

// buffers is scratch by annotation rather than by name.
//
//statcheck:scratch
type buffers struct {
	tmp []int64
}

func work(s *workScratch) { _ = s }

// Fan shares one scratch across every worker.
func Fan(jobs []int, s *workScratch, b *buffers) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go work(s) // want scratchshare
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = b.tmp // want scratchshare
	}()
	wg.Wait()
}

// Isolated declares a private scratch inside each worker: allowed.
func Isolated(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s workScratch
			_ = s
		}()
	}
	wg.Wait()
}

// CopyLock takes the WaitGroup by value, silently copying its state.
func CopyLock(wg sync.WaitGroup) { // want scratchshare
	wg.Wait()
}
