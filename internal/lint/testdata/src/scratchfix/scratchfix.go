// Package scratchfix seeds scratchshare violations: per-worker scratch
// escaping into goroutines (by argument and by closure capture) and sync
// primitives copied by value.
package scratchfix

import "sync"

type workScratch struct {
	m []float64
}

// buffers is scratch by annotation rather than by name.
//
//statcheck:scratch
type buffers struct {
	tmp []int64
}

func work(s *workScratch) { _ = s }

// Fan shares one scratch across every worker.
func Fan(jobs []int, s *workScratch, b *buffers) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go work(s) // want scratchshare
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = b.tmp // want scratchshare
	}()
	wg.Wait()
}

// spillScratch mimics a per-partition spill writer's row buffer: one
// buffered writer per partition, never shared across partition workers.
type spillScratch struct {
	row []int64
}

func writePartition(s *spillScratch) { _ = s.row }

// SpillPartitions hands one shared spill-writer scratch to every partition
// worker — concurrent appends interleave rows across partitions.
func SpillPartitions(parts []int, s *spillScratch) {
	var wg sync.WaitGroup
	for range parts {
		wg.Add(1)
		go writePartition(s) // want scratchshare
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = s.row // want scratchshare
	}()
	wg.Wait()
}

// SpillPartitionsIsolated forks a private writer scratch per partition:
// allowed.
func SpillPartitionsIsolated(parts []int) {
	var wg sync.WaitGroup
	for range parts {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s spillScratch
			writePartition(&s)
		}()
	}
	wg.Wait()
}

// Isolated declares a private scratch inside each worker: allowed.
func Isolated(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s workScratch
			_ = s
		}()
	}
	wg.Wait()
}

// CopyLock takes the WaitGroup by value, silently copying its state.
func CopyLock(wg sync.WaitGroup) { // want scratchshare
	wg.Wait()
}

// pool mimics the exec worker pool's submission surface: a closure handed to
// any of these methods runs on an arbitrary worker.
type pool struct{}

func (pool) Submit(fn func())                         { fn() }
func (pool) ForkJoin(n int, fn func(int))             { fn(0) }
func (pool) ForkJoinWidth(n, width int, fn func(int)) { fn(0) }

// PoolShared hands one scratch to every pool task — the same violation as a
// bare `go` statement, routed through the pool's submission methods.
func PoolShared(p pool, jobs []int) {
	var s workScratch
	for range jobs {
		p.Submit(func() {
			_ = s.m // want scratchshare
		})
	}
	p.ForkJoin(len(jobs), func(i int) {
		_ = s.m // want scratchshare
	})
	p.ForkJoinWidth(len(jobs), 2, func(i int) {
		_ = s.m // want scratchshare
	})
}

// PoolIsolated declares a private scratch inside each pool task: allowed.
func PoolIsolated(p pool, jobs []int) {
	p.ForkJoin(len(jobs), func(i int) {
		var s workScratch
		_ = s.m
	})
}
