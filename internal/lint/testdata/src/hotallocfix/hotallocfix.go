// Package hotallocfix seeds hotalloc violations inside //statcheck:hot
// functions, alongside the two sanctioned shapes: capacity-guarded growth and
// in-place append.
package hotallocfix

import "sort"

type buf struct {
	vals []int64
}

// grow is the sanctioned amortized-growth idiom: the make sits under a cap()
// guard, so it must not be reported.
//
//statcheck:hot
func (b *buf) grow(n int) {
	if cap(b.vals) < n {
		b.vals = make([]int64, n)
	}
	b.vals = b.vals[:n]
}

func sink(v interface{}) { _ = v }

//statcheck:hot
func (b *buf) fill(src []int64) {
	scratch := make([]int64, len(src)) // want hotalloc
	copy(scratch, src)
	counts := map[int64]int{} // want hotalloc
	for _, v := range src {
		counts[v]++
	}
	pairs := []int64{1, 2, 3} // want hotalloc
	_ = pairs
	b.vals = append(b.vals, src...)
	extended := append(b.vals, 9) // want hotalloc
	_ = extended
	sort.Slice(src, func(i, j int) bool { return src[i] < src[j] }) // want hotalloc hotalloc
	sink(src[0])                                                    // want hotalloc
}

// cold is unannotated: it may allocate freely.
func cold(n int) []int64 {
	return make([]int64, n)
}
