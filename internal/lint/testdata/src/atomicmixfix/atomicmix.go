// Package atomicmixfix seeds atomicmix violations: fields driven through
// sync/atomic in one place and touched plainly in another.
package atomicmixfix

import "sync/atomic"

// counter mixes an atomically-driven field (n) with a plain one (hits).
type counter struct {
	n    int64
	hits int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) snapshot() int64 {
	return atomic.LoadInt64(&c.n) // clean: atomic read
}

func (c *counter) badRead() int64 {
	return c.n // want atomicmix
}

func (c *counter) badWrite() {
	c.n = 0 // want atomicmix
}

func (c *counter) plainField() int64 {
	return c.hits // clean: hits is never touched atomically
}

func newCounter() *counter {
	return &counter{n: 0, hits: 0} // clean: keyed init before publication
}

// epoch is a package-level variable driven by CAS.
var epoch uint64

func bumpEpoch() {
	for {
		old := atomic.LoadUint64(&epoch)
		if atomic.CompareAndSwapUint64(&epoch, old, old+1) {
			return
		}
	}
}

func badEpochPeek() uint64 {
	return epoch // want atomicmix
}

// box holds an atomic value type; whole-value overwrite bypasses it.
type box struct {
	v atomic.Int64
}

func (b *box) load() int64 { return b.v.Load() } // clean: method access

func reset(b *box) {
	b.v = atomic.Int64{} // want atomicmix
}
