// Package planclosefix seeds planclose violations. The plan type is
// declared locally with a ClosePlan method — the check matches the
// exec.PlanCloser shape structurally, so the fixture proves it needs no
// import of internal/exec.
package planclosefix

import "errors"

// rows is a stand-in operator tree satisfying the PlanCloser shape.
type rows struct {
	closed bool
}

func (r *rows) ClosePlan() { r.closed = true }
func (r *rows) Next() bool { return false }
func (r *rows) use()       {}

// ClosePlan mirrors exec.ClosePlan: the free-function close protocol.
func ClosePlan(op interface{ ClosePlan() }) {
	if op != nil {
		op.ClosePlan()
	}
}

type catalog struct{}

// PlanBatch mirrors exec.PlanBatch by name.
func PlanBatch(c *catalog) (*rows, error) {
	if c == nil {
		return nil, errors.New("no catalog")
	}
	return &rows{}, nil
}

// open returns a PlanCloser-shaped value plus an error.
func open(fail bool) (*rows, error) {
	if fail {
		return nil, errors.New("boom")
	}
	return &rows{}, nil
}

// newRows is a single-result constructor.
func newRows() *rows { return &rows{} }

// leakBetweenOpenAndClose is the PR-8 shape: an error return between
// PlanBatch and ClosePlan strands the plan (and the grant bytes its
// constructors reserved).
func leakBetweenOpenAndClose(c *catalog, validate func() error) error {
	op, err := PlanBatch(c) // want planclose
	if err != nil {
		return err
	}
	if err := validate(); err != nil {
		return err
	}
	ClosePlan(op)
	return nil
}

// deferredClose is the fixed shape: defer immediately after the error
// check covers every later path. Clean.
func deferredClose(c *catalog, validate func() error) error {
	op, err := PlanBatch(c)
	if err != nil {
		return err
	}
	defer ClosePlan(op)
	return validate()
}

// errPathOnly proves the error-branch kill: on err != nil the plan is nil
// and there is nothing to close. Clean.
func errPathOnly(fail bool) error {
	r, err := open(fail)
	if err != nil {
		return err
	}
	r.ClosePlan()
	return nil
}

// methodClose closes via the method form. Clean.
func methodClose() {
	r := newRows()
	r.ClosePlan()
}

// leakPlainConstructor: single-result constructor, no close on any path.
func leakPlainConstructor() bool {
	r := newRows() // want planclose
	return r.Next()
}

// returned hands the plan to the caller: ownership leaves with it. Clean.
func returned(fail bool) (*rows, error) {
	r, err := open(fail)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// discarded drops the constructed plan on the floor at statement position.
func discarded() {
	newRows() // want planclose
}

// nilChecked proves the nil-branch kill on the resource itself. Clean.
func nilChecked() {
	r := newRows()
	if r == nil {
		return
	}
	r.ClosePlan()
}

// loopReopen rebinds the plan each iteration and closes inside the loop;
// the back edge carries no open fact. Clean.
func loopReopen(n int) {
	for i := 0; i < n; i++ {
		r := newRows()
		r.use()
		r.ClosePlan()
	}
}

// loopLeakOnBreak closes after the loop but breaks out early past a fresh
// open in a nested branch.
func loopLeakOnBreak(n int) {
	for i := 0; i < n; i++ {
		r := newRows() // want planclose
		if r.Next() {
			break // leak: r open on the break edge
		}
		r.ClosePlan()
	}
}
