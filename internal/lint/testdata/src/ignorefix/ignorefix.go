// Package ignorefix carries two identical rawrand violations, one excused
// with //statcheck:ignore: exactly the other one must be reported.
package ignorefix

import "time"

// Stamp reads the wall clock twice; only the first read is excused.
func Stamp() (int64, int64) {
	a := time.Now().UnixNano() //statcheck:ignore rawrand excused in fixture
	b := time.Now().UnixNano() // want rawrand
	return a, b
}
