package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// mapRangeTargets names the result-producing packages: anything these
// packages emit (histograms, schedules, recommendations, join output) must be
// independent of Go's randomized map iteration order.
var mapRangeTargets = []string{
	"/internal/exec",
	"/internal/sit",
	"/internal/histogram",
	"/internal/sched",
	"/internal/scs",
	"/internal/advisor",
}

// checkMapRange flags `for ... range m` over a map in result-producing
// packages. A range is allowed when the loop only feeds slices that are
// sorted later in the same function (the collect-then-sort idiom); anything
// else — in particular loops that emit, accumulate floats, or append to
// output in iteration order — is a finding. Loops whose order is provably
// irrelevant carry a //statcheck:ignore maprange directive.
func checkMapRange() Check {
	return Check{
		Name: "maprange",
		Doc:  "unsorted iteration over a map in a result-producing package",
		Run:  runMapRange,
	}
}

func runMapRange(p *Package) []Diagnostic {
	if !pathTargeted(p.Path, mapRangeTargets) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedSliceExprs(p, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := p.Info.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if rangeFeedsSortedSlice(p, rs, sorted) {
					return true
				}
				out = append(out, p.diag("maprange", rs,
					"map iterated in nondeterministic order; sort the keys first or append to a slice that is sorted before use"))
				return true
			})
		}
	}
	return out
}

func pathTargeted(path string, targets []string) bool {
	for _, t := range targets {
		if strings.Contains(path, t) {
			return true
		}
	}
	return false
}

// sortedSliceExprs collects the textual form of every expression passed to a
// slice-sorting call (sort.Strings, sort.Slice, ...) in the body, keyed to
// the call's position.
func sortedSliceExprs(p *Package, body *ast.BlockStmt) map[string][]ast.Node {
	out := map[string][]ast.Node{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil {
			return true
		}
		pkg := pkgPathOf(fn)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		switch fn.Name() {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable",
			"Sort", "SortFunc", "SortStableFunc", "Stable":
			key := types.ExprString(unparen(call.Args[0]))
			out[key] = append(out[key], call)
		}
		return true
	})
	return out
}

// rangeFeedsSortedSlice reports whether the range loop's only writes are
// appends to slices that are sorted after the loop ends.
func rangeFeedsSortedSlice(p *Package, rs *ast.RangeStmt, sorted map[string][]ast.Node) bool {
	appended := map[string]bool{}
	found := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isBuiltin(p.Info, call, "append") {
			return true
		}
		appended[types.ExprString(unparen(as.Lhs[0]))] = true
		found = true
		return true
	})
	if !found {
		return false
	}
	for expr := range appended {
		ok := false
		for _, site := range sorted[expr] {
			if site.Pos() > rs.End() {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}
