package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// checkScratchShare enforces per-worker scratch isolation:
//
//   - values of a scratch type (annotated //statcheck:scratch, or any named
//     type whose name contains "scratch") must not be captured by or passed
//     into a goroutine launched with `go`, nor into a task closure handed to
//     the worker pool (Submit, ForkJoin, ForkJoinWidth) — every worker forks
//     its own;
//   - sync primitives (Mutex, WaitGroup, Once, ...) must not be taken by
//     value as parameters or receivers, which silently copies their state.
func checkScratchShare() Check {
	return Check{
		Name: "scratchshare",
		Doc:  "per-worker scratch escaping into a goroutine or pool task, or sync types copied by value",
		Run:  runScratchShare,
	}
}

// poolSubmitNames are the methods that hand a closure to the shared worker
// pool; a closure passed to any of them runs on an arbitrary worker, so it is
// held to the same scratch-isolation rule as a `go` statement.
var poolSubmitNames = map[string]bool{
	"Submit":        true,
	"ForkJoin":      true,
	"ForkJoinWidth": true,
}

func runScratchShare(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.GoStmt:
				out = append(out, goStmtScratch(p, node)...)
			case *ast.CallExpr:
				out = append(out, poolSubmitScratch(p, node)...)
			case *ast.FuncDecl:
				out = append(out, syncByValue(p, node)...)
			}
			return true
		})
	}
	return out
}

// goStmtScratch flags scratch-typed variables that cross into a spawned
// goroutine, either as call arguments or as free variables of a closure.
func goStmtScratch(p *Package, g *ast.GoStmt) []Diagnostic {
	var out []Diagnostic
	for _, arg := range g.Call.Args {
		if t := p.Info.TypeOf(arg); t != nil && p.isScratchType(t) {
			out = append(out, p.diag("scratchshare", arg, fmt.Sprintf(
				"per-worker scratch %s passed into a goroutine; fork a private scratch inside the worker instead",
				types.ExprString(arg))))
		}
	}
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		out = append(out, closureScratchCaptures(p, lit, "goroutine")...)
	}
	return out
}

// poolSubmitScratch applies the goroutine rule to task closures handed to the
// worker pool: a func literal passed to Submit/ForkJoin/ForkJoinWidth runs on
// an arbitrary pool worker, so scratch captured from the enclosing scope
// would be shared across concurrent claims.
func poolSubmitScratch(p *Package, call *ast.CallExpr) []Diagnostic {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !poolSubmitNames[sel.Sel.Name] {
		return nil
	}
	var out []Diagnostic
	for _, arg := range call.Args {
		if lit, ok := unparen(arg).(*ast.FuncLit); ok {
			out = append(out, closureScratchCaptures(p, lit, "pool task")...)
		}
	}
	return out
}

// closureScratchCaptures flags scratch-typed free variables of a worker
// closure; variables declared inside the literal are private and fine.
func closureScratchCaptures(p *Package, lit *ast.FuncLit, context string) []Diagnostic {
	var out []Diagnostic
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || seen[obj] {
			return true
		}
		if within(obj.Pos(), lit) {
			return true // declared inside the worker: private
		}
		if p.isScratchType(obj.Type()) {
			seen[obj] = true
			out = append(out, p.diag("scratchshare", id, fmt.Sprintf(
				"per-worker scratch %q captured by a %s closure; declare it inside the worker", id.Name, context)))
		}
		return true
	})
	return out
}

// isScratchType reports whether t (or its pointee) is a scratch type: either
// annotated //statcheck:scratch in this package, or named like one.
func (p *Package) isScratchType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if p.Scratch[named.Obj()] {
		return true
	}
	return strings.Contains(strings.ToLower(named.Obj().Name()), "scratch")
}

// syncByValue flags receivers and parameters that copy a sync primitive.
func syncByValue(p *Package, fd *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	fields := []*ast.Field{}
	if fd.Recv != nil {
		fields = append(fields, fd.Recv.List...)
	}
	if fd.Type.Params != nil {
		fields = append(fields, fd.Type.Params.List...)
	}
	for _, field := range fields {
		t := p.Info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if containsSyncType(t, map[types.Type]bool{}) {
			out = append(out, p.diag("scratchshare", field, fmt.Sprintf(
				"%s copies a sync primitive by value in %s; pass a pointer", types.ExprString(field.Type), funcName(fd))))
		}
	}
	return out
}

// containsSyncType reports whether t transitively embeds a type declared in
// sync or sync/atomic (all of which are invalid to copy once used).
func containsSyncType(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if pkg := u.Obj().Pkg(); pkg != nil {
			if path := pkg.Path(); path == "sync" || path == "sync/atomic" {
				return true
			}
		}
		return containsSyncType(u.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsSyncType(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsSyncType(u.Elem(), seen)
	}
	return false
}
