package lint

// poolblock: a closure submitted to the worker pool must not itself block on
// pool entry points.
//
// exec.Pool workers are a fixed set; a task that calls ForkJoin (or
// otherwise waits for pool capacity) from inside a worker can deadlock the
// moment every worker is doing the same — the exact nested-fan-out hazard
// the spill path's inline-claim pattern (waitSpills draining jobs on the
// waiting goroutine via CAS) exists to dodge. The check walks every func
// literal passed to Pool.Submit and flags calls to blocking pool methods on
// any Pool-typed receiver inside it, nested literals included (they may run
// inline on the worker).
//
// The sanctioned escape hatches are invisible to the check by construction:
// submitting a method value (Submit(j.exec)) carries no literal to inspect,
// and the inline-claim loop never calls a blocking entry point.

import (
	"fmt"
	"go/ast"
)

func checkPoolBlock() Check {
	return Check{
		Name: "poolblock",
		Doc:  "pool-submitted closures must not call blocking pool entry points (ForkJoin/Wait/Close)",
		Run:  runPoolBlock,
	}
}

// poolBlockingNames are the Pool methods that wait for pool capacity or
// quiescence; calling any of them from a pool worker risks deadlock.
var poolBlockingNames = map[string]bool{
	"ForkJoin":      true,
	"ForkJoinWidth": true,
	"Wait":          true,
	"Close":         true,
	"Idle":          true,
}

func runPoolBlock(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Submit" {
				return true
			}
			if !typeNameIs(receiverTypeOf(p, sel), "Pool") {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := unparen(arg).(*ast.FuncLit); ok {
					out = append(out, poolLitBlocking(p, lit)...)
				}
			}
			return true
		})
	}
	return out
}

// poolLitBlocking flags blocking pool calls anywhere inside a submitted
// literal, including nested literals (a worker may invoke them inline).
func poolLitBlocking(p *Package, lit *ast.FuncLit) []Diagnostic {
	var out []Diagnostic
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !poolBlockingNames[sel.Sel.Name] {
			return true
		}
		if !typeNameIs(receiverTypeOf(p, sel), "Pool") {
			return true
		}
		out = append(out, p.diag("poolblock", call, fmt.Sprintf(
			"pool task calls Pool.%s; blocking on the pool from a worker deadlocks when all workers do — drain inline (inline-claim, like waitSpills) or restructure the fan-out",
			sel.Sel.Name)))
		return true
	})
	return out
}
