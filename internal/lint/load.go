package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package plus the lint annotations
// harvested from its comments.
type Package struct {
	Path  string // import path
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File // non-test files only
	Types *types.Package
	Info  *types.Info

	// Hot holds the functions annotated //statcheck:hot.
	Hot []*ast.FuncDecl
	// Scratch holds the type objects annotated //statcheck:scratch.
	Scratch map[types.Object]bool

	// ignores maps filename -> ignore directives, from //statcheck:ignore.
	ignores map[string][]ignoreDirective
	// transfers maps filename -> ownership hand-off declarations, from
	// //statcheck:transfers.
	transfers map[string][]transferDirective
}

type ignoreDirective struct {
	line int
	// standalone means the directive is alone on its line (no code before
	// it), so it excuses the line below; trailing directives excuse only
	// their own line.
	standalone bool
	checks     map[string]bool
}

// suppressed reports whether an ignore directive for the diagnostic's check
// covers the diagnostic's line: any directive covers its own line, and a
// standalone directive additionally covers the line directly below it.
func (p *Package) suppressed(d Diagnostic) bool {
	for _, ig := range p.ignores[d.Pos.Filename] {
		if !ig.checks[d.Check] {
			continue
		}
		if ig.line == d.Pos.Line || (ig.standalone && ig.line == d.Pos.Line-1) {
			return true
		}
	}
	return false
}

// World loads and caches the module's packages. Module-internal imports are
// resolved against the module tree and type-checked from source; standard
// library imports go through go/importer's source importer (the toolchain
// ships no pre-compiled export data, and compiling stdlib from source keeps
// the loader pure go/* stdlib).
type World struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
	std     types.Importer
}

// NewWorld creates a loader rooted at the module directory containing go.mod.
func NewWorld(moduleRoot string) (*World, error) {
	abs, err := filepath.Abs(moduleRoot)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	w := &World{
		Fset:       token.NewFileSet(),
		ModuleRoot: abs,
		ModulePath: modPath,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
	}
	w.std = importer.ForCompiler(w.Fset, "source", nil)
	return w, nil
}

// FindModuleRoot walks upward from dir to the nearest directory containing a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: %s has no module directive", gomod)
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else from the stdlib source importer.
func (w *World) Import(path string) (*types.Package, error) {
	if path == w.ModulePath || strings.HasPrefix(path, w.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, w.ModulePath), "/")
		p, err := w.LoadDir(filepath.Join(w.ModuleRoot, rel), path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return w.std.Import(path)
}

// LoadDir parses and type-checks the package in dir under the given import
// path (cached per path).
func (w *World) LoadDir(dir, path string) (*Package, error) {
	if p, ok := w.pkgs[path]; ok {
		return p, nil
	}
	if w.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	w.loading[path] = true
	defer delete(w.loading, path)

	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	names, err := goFileNames(absDir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", absDir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(w.Fset, filepath.Join(absDir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: w}
	tpkg, err := conf.Check(path, w.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Dir:   absDir,
		Fset:  w.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	p.collectAnnotations()
	w.pkgs[path] = p
	return p, nil
}

// goFileNames lists the buildable non-test Go files of dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// LoadPatterns resolves go-style package patterns ("./...", "./internal/sit",
// "dir") relative to baseDir into loaded packages, skipping testdata and
// hidden directories.
func (w *World) LoadPatterns(baseDir string, patterns []string) ([]*Package, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			root := filepath.Join(baseDir, rest)
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				names, err := goFileNames(path)
				if err != nil {
					return err
				}
				if len(names) > 0 {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		add(filepath.Join(baseDir, pat))
	}
	var pkgs []*Package
	for _, dir := range dirs {
		path, err := w.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		p, err := w.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// importPathFor maps a directory inside the module to its import path.
func (w *World) importPathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(w.ModuleRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, w.ModuleRoot)
	}
	if rel == "." {
		return w.ModulePath, nil
	}
	return w.ModulePath + "/" + filepath.ToSlash(rel), nil
}
