package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// walkStack traverses root depth-first, invoking fn with each node and the
// stack of its ancestors (outermost first, not including the node itself).
// Returning false skips the node's children.
type stackVisitor struct {
	stack []ast.Node
	fn    func(n ast.Node, stack []ast.Node) bool
}

func (v *stackVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		v.stack = v.stack[:len(v.stack)-1]
		return nil
	}
	if !v.fn(n, v.stack) {
		return nil
	}
	v.stack = append(v.stack, n)
	return v
}

func walkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	ast.Walk(&stackVisitor{fn: fn}, root)
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// diag builds a diagnostic at the node's position.
func (p *Package) diag(check string, n ast.Node, msg string) Diagnostic {
	return Diagnostic{Pos: p.Fset.Position(n.Pos()), Check: check, Message: msg}
}

// funcName renders a FuncDecl's display name, including a receiver type.
func funcName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// calleeFunc resolves a call expression to the *types.Func it invokes, or nil
// for builtins, conversions, and calls of function-typed values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// isConversion reports whether the call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// returnsErrorLast reports whether the call's (possibly multi-valued) result
// ends in an error.
func returnsErrorLast(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() > 0 && isErrorType(t.At(t.Len()-1).Type())
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// pkgPathOf returns the import path of the object's defining package
// ("" for universe-scope objects).
func pkgPathOf(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// within reports whether pos lies inside the node's source extent.
func within(pos token.Pos, n ast.Node) bool {
	return n.Pos() <= pos && pos < n.End()
}
