package lint

// atomicmix: a variable or struct field accessed through sync/atomic
// anywhere in the package must never be read or written plainly elsewhere in
// the same package. Mixing the two silently downgrades the atomic accesses —
// the plain side tears and races, and the race detector only catches it when
// the interleaving actually happens. The Registry epoch and the Grant.used
// CAS ledger are exactly this shape.
//
// Two rules:
//
//   - For raw-word atomics (atomic.AddInt64(&x.f, ...) etc.): every other
//     appearance of x.f must itself be a sync/atomic call argument. Keyed
//     composite-literal initialization is allowed — construction before
//     publication is the sanctioned pattern.
//   - For atomic value types (atomic.Int64, atomic.Bool, atomic.Pointer,
//     sync/atomic's Value, ...): whole-value assignment after construction
//     (g.used = atomic.Int64{}) replaces the word non-atomically and is
//     flagged wherever it appears.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

func checkAtomicMix() Check {
	return Check{
		Name: "atomicmix",
		Doc:  "fields accessed via sync/atomic must not also be accessed plainly",
		Run:  runAtomicMix,
	}
}

func runAtomicMix(p *Package) []Diagnostic {
	// Pass 1: collect every object (field or package/local var) whose
	// address is taken as the pointer argument of a sync/atomic call.
	atomicObjs := map[types.Object]bool{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(p, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if obj := addressedObj(p, un.X); obj != nil {
					atomicObjs[obj] = true
				}
			}
			return true
		})
	}

	var out []Diagnostic
	for _, f := range p.Files {
		walkStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch node := n.(type) {
			case *ast.Ident:
				obj := p.Info.Uses[node]
				if obj == nil || !atomicObjs[obj] {
					return true
				}
				if plainAtomicUse(p, node, stack) {
					out = append(out, p.diag("atomicmix", node, fmt.Sprintf(
						"%q is accessed with sync/atomic elsewhere in this package; plain access races with the atomic side — use atomic.Load/Store here",
						node.Name)))
				}
			case *ast.AssignStmt:
				for _, d := range atomicValueOverwrites(p, node) {
					out = append(out, d)
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos.Offset < out[j].Pos.Offset })
	return out
}

// isAtomicCall reports whether the call invokes a sync/atomic package-level
// function (AddInt64, LoadPointer, CompareAndSwapUint32, ...).
func isAtomicCall(p *Package, call *ast.CallExpr) bool {
	fn := calleeFunc(p.Info, call)
	return fn != nil && pkgPathOf(fn) == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// addressedObj resolves the operand of a unary & used as an atomic pointer
// argument: a struct field selector (&x.f) or a plain variable (&v).
func addressedObj(p *Package, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return p.Info.Uses[x.Sel]
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// plainAtomicUse reports whether this mention of an atomically-accessed
// object is a forbidden plain access: anything that is not (a) an argument
// of a sync/atomic call, (b) a keyed composite-literal initialization, or
// (c) the field's declaration.
func plainAtomicUse(p *Package, id *ast.Ident, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.CallExpr:
			if isAtomicCall(p, parent) {
				return false
			}
		case *ast.KeyValueExpr:
			if parent.Key == id {
				return false // construction-time init before publication
			}
		case *ast.Field, *ast.StructType:
			return false // the declaration itself
		}
	}
	return true
}

// atomicValueOverwrites flags assignments that replace a whole atomic value
// type (atomic.Int64{}, atomic.Value, ...) after construction.
func atomicValueOverwrites(p *Package, stmt *ast.AssignStmt) []Diagnostic {
	if stmt.Tok != token.ASSIGN {
		return nil // := declares a fresh local; copying in is vet's (copylocks) beat
	}
	var out []Diagnostic
	for _, lhs := range stmt.Lhs {
		target := unparen(lhs)
		if _, ok := target.(*ast.SelectorExpr); !ok {
			if _, ok := target.(*ast.IndexExpr); !ok {
				continue
			}
		}
		t := p.Info.TypeOf(target)
		if t == nil || !isAtomicValueType(t) {
			continue
		}
		out = append(out, p.diag("atomicmix", lhs, fmt.Sprintf(
			"whole-value assignment to %s replaces an atomic value non-atomically; use its Store method",
			types.ExprString(target))))
	}
	return out
}

// isAtomicValueType reports whether t is a named type declared in
// sync/atomic (Int64, Uint32, Bool, Pointer[T], Value, ...).
func isAtomicValueType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}
