package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// fixtureWorld loads testdata fixture packages through the same World the
// command uses, so the tests exercise the real loader and source importer.
func fixtureWorld(t *testing.T) *World {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorld(root)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// fixtures maps each fixture directory to the fake import path it is loaded
// under. maprangefix sits under a /internal/exec path so the path-targeted
// maprange check applies to it; the rest use neutral paths.
func fixtures(w *World) map[string]string {
	return map[string]string{
		"maprangefix":   w.ModulePath + "/internal/exec/lintfixture/maprangefix",
		"hotallocfix":   w.ModulePath + "/lintfixture/hotallocfix",
		"rawrandfix":    w.ModulePath + "/lintfixture/rawrandfix",
		"scratchfix":    w.ModulePath + "/lintfixture/scratchfix",
		"droppederrfix": w.ModulePath + "/lintfixture/droppederrfix",
		"ignorefix":     w.ModulePath + "/lintfixture/ignorefix",
		"grantleakfix":  w.ModulePath + "/lintfixture/grantleakfix",
		"planclosefix":  w.ModulePath + "/lintfixture/planclosefix",
		"atomicmixfix":  w.ModulePath + "/lintfixture/atomicmixfix",
		"poolblockfix":  w.ModulePath + "/lintfixture/poolblockfix",
	}
}

// wantMarkers scans a fixture directory for `// want <check> [<check>...]`
// markers and returns the expected findings as "file:line" -> sorted check
// names.
func wantMarkers(t *testing.T, dir string) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := sc.Text()
			i := strings.Index(text, "// want ")
			if i < 0 {
				continue
			}
			checks := strings.Fields(text[i+len("// want "):])
			if len(checks) == 0 {
				t.Fatalf("%s:%d: empty want marker", e.Name(), line)
			}
			key := fmt.Sprintf("%s:%d", e.Name(), line)
			out[key] = append(out[key], checks...)
			sort.Strings(out[key])
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	return out
}

// TestChecksAgainstFixtures: every check must report exactly the findings its
// fixture marks with `// want` — same file, same line, same check — and
// nothing else. This both proves each check fires on its seeded violations
// and pins the allowed idioms (capacity-guarded growth, collect-then-sort,
// seeded generators, explicit discards) as non-findings.
func TestChecksAgainstFixtures(t *testing.T) {
	w := fixtureWorld(t)
	for name, importPath := range fixtures(w) {
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", name)
			p, err := w.LoadDir(dir, importPath)
			if err != nil {
				t.Fatal(err)
			}
			got := map[string][]string{}
			for _, d := range Run([]*Package{p}, AllChecks()) {
				key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
				got[key] = append(got[key], d.Check)
				sort.Strings(got[key])
			}
			want := wantMarkers(t, dir)
			for key, checks := range want {
				if !reflect.DeepEqual(got[key], checks) {
					t.Errorf("%s: want %v, got %v", key, checks, got[key])
				}
			}
			for key, checks := range got {
				if _, ok := want[key]; !ok {
					t.Errorf("%s: unexpected finding(s) %v", key, checks)
				}
			}
		})
	}
}

// TestIgnoreSuppressesExactlyOne: the ignorefix fixture holds two identical
// violations, one carrying //statcheck:ignore rawrand — exactly one finding
// must survive.
func TestIgnoreSuppressesExactlyOne(t *testing.T) {
	w := fixtureWorld(t)
	p, err := w.LoadDir(filepath.Join("testdata", "src", "ignorefix"), fixtures(w)["ignorefix"])
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{p}, AllChecks())
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 finding after suppression, got %d: %v", len(diags), diags)
	}
	if d := diags[0]; d.Check != "rawrand" {
		t.Fatalf("surviving finding should be rawrand, got %+v", d)
	}
}

// TestCheckSelection: every registered check has a unique, non-empty name and
// a doc line (the -checks flag and -list output depend on both).
func TestCheckSelection(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range AllChecks() {
		if c.Name == "" || c.Doc == "" || c.Run == nil {
			t.Errorf("check %+v incomplete", c.Name)
		}
		if seen[c.Name] {
			t.Errorf("duplicate check name %q", c.Name)
		}
		seen[c.Name] = true
	}
	if len(seen) < 9 {
		t.Errorf("expected at least 9 registered checks, got %d", len(seen))
	}
}

// TestDiagnosticsSorted: Run must return findings in file/line/column order
// regardless of check registration order, so CI output is stable.
func TestDiagnosticsSorted(t *testing.T) {
	w := fixtureWorld(t)
	var pkgs []*Package
	for name, importPath := range fixtures(w) {
		p, err := w.LoadDir(filepath.Join("testdata", "src", name), importPath)
		if err != nil {
			t.Fatal(err)
		}
		pkgs = append(pkgs, p)
	}
	diags := Run(pkgs, AllChecks())
	if len(diags) == 0 {
		t.Fatal("fixtures should produce findings")
	}
	sorted := sort.SliceIsSorted(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	if !sorted {
		t.Error("diagnostics not sorted by file/line/column")
	}
}
