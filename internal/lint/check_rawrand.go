package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// rawRandAllowed names the math/rand package-level functions that construct
// explicitly seeded generators rather than touching the global source.
var rawRandAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

// checkRawRand flags nondeterministic inputs in non-test code: calls to the
// global math/rand source (rand.Intn, rand.Seed, ...) and wall-clock reads
// (time.Now, time.Since). Experiment output must be reproducible from the
// configured seed alone; methods on an explicitly seeded *rand.Rand are fine.
// Wall-clock timing columns (solver elapsed times) are inherently
// nondeterministic and carry //statcheck:ignore rawrand directives at the
// point of use.
func checkRawRand() Check {
	return Check{
		Name: "rawrand",
		Doc:  "global math/rand source or wall-clock read in seed-deterministic code",
		Run:  runRawRand,
	}
}

func runRawRand(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			switch pkg := pkgPathOf(fn); {
			case pkg == "math/rand" || pkg == "math/rand/v2":
				if !rawRandAllowed[fn.Name()] {
					out = append(out, p.diag("rawrand", sel, fmt.Sprintf(
						"%s.%s draws from the global math/rand source; thread an explicitly seeded *rand.Rand instead",
						pathBase(pkg), fn.Name())))
				}
			case pkg == "time" && (fn.Name() == "Now" || fn.Name() == "Since"):
				out = append(out, p.diag("rawrand", sel, fmt.Sprintf(
					"time.%s reads the wall clock; experiment output must be seed-deterministic", fn.Name())))
			}
			return true
		})
	}
	return out
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
