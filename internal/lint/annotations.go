package lint

import (
	"go/ast"
	"go/types"
	"os"
	"strings"
)

const (
	directiveHot     = "statcheck:hot"
	directiveScratch = "statcheck:scratch"
	directiveIgnore  = "statcheck:ignore"
)

// collectAnnotations harvests the package's statcheck directives: hot
// functions, scratch types, and positional ignore entries.
func (p *Package) collectAnnotations() {
	p.Scratch = map[types.Object]bool{}
	p.ignores = map[string][]ignoreDirective{}
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		src, srcErr := os.ReadFile(filename)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, directiveIgnore)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				checks := map[string]bool{}
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						checks[name] = true
					}
				}
				pos := p.Fset.Position(c.Pos())
				p.ignores[filename] = append(p.ignores[filename], ignoreDirective{
					line:       pos.Line,
					standalone: srcErr == nil && standaloneAt(src, pos.Offset),
					checks:     checks,
				})
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if hasDirective(d.Doc, directiveHot) {
					p.Hot = append(p.Hot, d)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasDirective(ts.Doc, directiveScratch) || hasDirective(d.Doc, directiveScratch) {
						if obj := p.Info.Defs[ts.Name]; obj != nil {
							p.Scratch[obj] = true
						}
					}
				}
			}
		}
	}
}

// standaloneAt reports whether the comment starting at offset is alone on its
// source line (only whitespace precedes it).
func standaloneAt(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	start := offset
	for start > 0 && src[start-1] != '\n' {
		start--
	}
	return len(strings.TrimSpace(string(src[start:offset]))) == 0
}

// hasDirective reports whether the comment group contains the directive as a
// full "//statcheck:..." line.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
