package lint

import (
	"go/ast"
	"go/types"
	"os"
	"strings"
)

const (
	directiveHot       = "statcheck:hot"
	directiveScratch   = "statcheck:scratch"
	directiveIgnore    = "statcheck:ignore"
	directiveTransfers = "statcheck:transfers"
)

// collectAnnotations harvests the package's statcheck directives: hot
// functions, scratch types, and positional ignore entries.
func (p *Package) collectAnnotations() {
	p.Scratch = map[types.Object]bool{}
	p.ignores = map[string][]ignoreDirective{}
	p.transfers = map[string][]transferDirective{}
	for _, f := range p.Files {
		filename := p.Fset.Position(f.Pos()).Filename
		src, srcErr := os.ReadFile(filename)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if rest, ok := strings.CutPrefix(text, directiveTransfers); ok {
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						continue
					}
					names := map[string]bool{}
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							names[name] = true
						}
					}
					pos := p.Fset.Position(c.Pos())
					p.transfers[filename] = append(p.transfers[filename], transferDirective{
						line:       pos.Line,
						standalone: srcErr == nil && standaloneAt(src, pos.Offset),
						names:      names,
					})
					continue
				}
				rest, ok := strings.CutPrefix(text, directiveIgnore)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				checks := map[string]bool{}
				for _, name := range strings.Split(fields[0], ",") {
					if name != "" {
						checks[name] = true
					}
				}
				pos := p.Fset.Position(c.Pos())
				p.ignores[filename] = append(p.ignores[filename], ignoreDirective{
					line:       pos.Line,
					standalone: srcErr == nil && standaloneAt(src, pos.Offset),
					checks:     checks,
				})
			}
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if hasDirective(d.Doc, directiveHot) {
					p.Hot = append(p.Hot, d)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if hasDirective(ts.Doc, directiveScratch) || hasDirective(d.Doc, directiveScratch) {
						if obj := p.Info.Defs[ts.Name]; obj != nil {
							p.Scratch[obj] = true
						}
					}
				}
			}
		}
	}
}

// transferDirective is one //statcheck:transfers <var>[,<var>] [reason]
// declaration: the lifecycle checks treat a statement it covers as handing
// ownership of the named variables' resources elsewhere (a spill job, a
// long-lived struct), discharging the close obligation. Positional like
// ignore: a trailing directive covers its own line, a standalone one the
// line below.
type transferDirective struct {
	line       int
	standalone bool
	names      map[string]bool
}

// transferredAt reports whether a transfers directive naming the variable
// covers the given line.
func (p *Package) transferredAt(filename string, line int, name string) bool {
	for _, tr := range p.transfers[filename] {
		if !tr.names[name] {
			continue
		}
		if tr.line == line || (tr.standalone && tr.line == line-1) {
			return true
		}
	}
	return false
}

// standaloneAt reports whether the comment starting at offset is alone on its
// source line (only whitespace precedes it).
func standaloneAt(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	start := offset
	for start > 0 && src[start-1] != '\n' {
		start--
	}
	return len(strings.TrimSpace(string(src[start:offset]))) == 0
}

// hasDirective reports whether the comment group contains the directive as a
// full "//statcheck:..." line.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
