package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// droppedErrPkgs are the io and encoding packages whose errors carry data
// loss: a discarded Close/Flush/Write/Encode error can silently truncate
// persisted statistics or experiment tables.
var droppedErrPkgs = map[string]bool{
	"io":              true,
	"os":              true,
	"bufio":           true,
	"text/tabwriter":  true,
	"encoding/json":   true,
	"encoding/csv":    true,
	"encoding/gob":    true,
	"encoding/binary": true,
	"encoding/xml":    true,
	"compress/gzip":   true,
	"compress/flate":  true,
	"compress/zlib":   true,
	"archive/tar":     true,
	"archive/zip":     true,
}

// checkDroppedErr flags statement-position calls (including deferred ones)
// that silently discard an error returned by an io or encoding package.
// Explicit discards (`_ = f.Close()`) are allowed: the point is that every
// dropped error is visibly deliberate.
func checkDroppedErr() Check {
	return Check{
		Name: "droppederr",
		Doc:  "discarded error from an io/encoding call",
		Run:  runDroppedErr,
	}
}

func runDroppedErr(p *Package) []Diagnostic {
	var out []Diagnostic
	check := func(call *ast.CallExpr, deferred bool) {
		if !returnsErrorLast(p.Info, call) {
			return
		}
		fn := calleeFunc(p.Info, call)
		if fn == nil || !droppedErrPkgs[pkgPathOf(fn)] {
			return
		}
		how := "discards"
		if deferred {
			how = "defers and discards"
		}
		out = append(out, p.diag("droppederr", call, fmt.Sprintf(
			"%s the error from %s.%s; handle it or discard explicitly with `_ =`",
			how, pathBase(pkgPathOf(fn)), fn.Name())))
	}
	for _, f := range p.Files {
		if strings.HasSuffix(p.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(stmt.X).(*ast.CallExpr); ok {
					check(call, false)
				}
			case *ast.DeferStmt:
				check(stmt.Call, true)
			case *ast.GoStmt:
				check(stmt.Call, false)
			}
			return true
		})
	}
	return out
}
