package lint

// planclose: operator trees must be closed on every path.
//
// The PR-8 leak class: PlanBatch materializes an operator tree whose
// constructors took grant reservations; an error return between PlanBatch
// and ClosePlan strands those bytes in the shared Governor. The check
// tracks, per function, any locally-bound value that either
//
//   - came from a call to a function named PlanBatch, or
//   - has ClosePlan in its method set (the exec.PlanCloser shape, matched
//     structurally so fixtures need not import internal/exec),
//
// and requires a ClosePlan(res) / res.ClosePlan() / res.Close() call on
// every path to exit, `defer` included.

import (
	"fmt"
	"go/ast"
	"go/types"
)

func checkPlanClose() Check {
	return Check{
		Name: "planclose",
		Doc:  "operator plans (PlanBatch results / PlanCloser values) must be closed on every path",
		Run:  runPlanClose,
	}
}

func runPlanClose(p *Package) []Diagnostic {
	return runLifecycle(p, lifecycleSpec{
		check:      "planclose",
		open:       planOpen,
		closeKinds: planCloseKinds,
		leakMsg: func(f *lcFact) string {
			return fmt.Sprintf("%s %q may escape %s", f.what, f.name, leakSuffix(f, "ClosePlan"))
		},
	})
}

// planOpen classifies plan-producing calls: any call named PlanBatch, or any
// call (not a method on an already-tracked value) whose first result's
// method set contains ClosePlan.
func planOpen(p *Package, call *ast.CallExpr) (lcOpen, bool) {
	name := calleeName(call)
	if name == "" {
		return lcOpen{}, false
	}
	res := firstResultType(p.Info, call)
	if name == "PlanBatch" {
		return lcOpen{kind: "plan", what: "plan"}, true
	}
	// Closing methods and accessors on a plan also return the plan's type;
	// only constructor-shaped names open a fact, so `op.ClosePlan()` or a
	// getter doesn't re-open what it touches.
	if hasMethod(res, "ClosePlan") && name != "ClosePlan" && name != "Close" {
		return lcOpen{kind: "plan", what: "plan"}, true
	}
	return lcOpen{}, false
}

// planCloseKinds recognizes ClosePlan(res) free-function calls and
// res.ClosePlan() / res.Close() method calls.
func planCloseKinds(p *Package, call *ast.CallExpr, res types.Object) []string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name != "ClosePlan" {
			return nil
		}
		for _, arg := range call.Args {
			if id, ok := unparen(arg).(*ast.Ident); ok && p.Info.Uses[id] == res {
				return []string{"plan"}
			}
		}
	case *ast.SelectorExpr:
		if fun.Sel.Name == "ClosePlan" {
			// Qualified exec.ClosePlan(res): selector on a package name.
			if id, ok := unparen(fun.X).(*ast.Ident); ok {
				if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
					for _, arg := range call.Args {
						if aid, ok := unparen(arg).(*ast.Ident); ok && p.Info.Uses[aid] == res {
							return []string{"plan"}
						}
					}
					return nil
				}
			}
		}
		if fun.Sel.Name != "ClosePlan" && fun.Sel.Name != "Close" {
			return nil
		}
		if id, ok := unparen(fun.X).(*ast.Ident); ok && p.Info.Uses[id] == res {
			return []string{"plan"}
		}
	}
	return nil
}

// calleeName returns the bare name a call invokes ("PlanBatch" for both
// PlanBatch(...) and exec.PlanBatch(...) and recv.PlanBatch(...)), or "".
func calleeName(call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
