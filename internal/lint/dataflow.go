package lint

// This file is the forward may-reach dataflow solver the lifecycle checks
// (grantleak, planclose) run over the CFGs of cfg.go. It tracks "open
// resource" facts per local variable — a grant opened by Governor.Grant, a
// reservation admitted by Reserve/TryReserve/Force, an operator tree
// returned by PlanBatch — and reports every resource for which SOME path
// reaches the function exit with the fact still open.
//
// The analysis is deliberately intraprocedural and humble about ownership:
//
//   - Paths where the resource is provably absent are pruned: the true
//     branch of `if err != nil` kills facts whose paired error came from the
//     same assignment, `if res == nil` kills on the nil branch, and the
//     failure branch of a TryReserve-style conditional open never gains the
//     reservation.
//   - Ownership visibly leaves the function — the resource is returned,
//     passed as a call argument, copied to another variable, or sent on a
//     channel — the fact is killed: the receiving code is responsible now.
//   - Ownership is stored for later — the resource is placed in a composite
//     literal, assigned to a struct field or map/slice element, or captured
//     by a closure — the fact SURVIVES unless a close call on the resource
//     is visible somewhere in the function (including inside the closure),
//     or the hand-off is declared with a //statcheck:transfers directive.
//     This is the shape the PR-8 grant leaks hid in.
//   - defer is an exit action: deferred close calls (direct or inside a
//     deferred closure) kill at the exit block, whatever the registration
//     order, so `defer ClosePlan(op)` covers every path including panics.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// lcOpen describes one resource-opening call recognized by a lifecycle spec.
type lcOpen struct {
	// kind partitions facts on one variable: "grant" vs "reservation" for
	// grantleak, "plan" for planclose. Close calls kill by kind.
	kind string
	// what is the human noun for diagnostics ("grant", "reservation", ...).
	what string
	// resIsRecv: the tracked resource is the call's receiver (a reservation
	// on an existing grant) rather than the call's first result.
	resIsRecv bool
	// requiresKind: for receiver opens, only track when the receiver already
	// carries a fact of this kind (reservations only on locally-opened
	// grants — reservations on borrowed parameter grants are the caller's).
	requiresKind string
	// conditional: the call reports success as a bool (TryReserve/Reserve);
	// the open happens only on the success branch when the result is
	// branched on.
	conditional bool
}

// lifecycleSpec parameterizes the solver for one check.
type lifecycleSpec struct {
	check string
	// open classifies a call as resource-opening.
	open func(p *Package, call *ast.CallExpr) (lcOpen, bool)
	// closeKinds returns the fact kinds a call closes for resource res
	// (nil/empty = not a close). res is the object the fact is keyed on.
	closeKinds func(p *Package, call *ast.CallExpr, res types.Object) []string
	// leakMsg renders the diagnostic for a leaked fact.
	leakMsg func(f *lcFact) string
}

// lcFact is one open resource bound to a local variable.
type lcFact struct {
	res  types.Object // the variable holding the resource (fact key, with kind)
	kind string
	what string
	err  types.Object // error result of the opening assignment, if any
	ok   types.Object // bool result of a conditional open, if any
	pos  token.Pos    // the opening call, where the leak is reported
	name string       // source name of res, for messages
}

type lcKey struct {
	res  types.Object
	kind string
}

type lcFacts map[lcKey]*lcFact

func (f lcFacts) clone() lcFacts {
	out := make(lcFacts, len(f))
	for k, v := range f {
		out[k] = v
	}
	return out
}

// merge unions other into f, reporting whether f grew.
func (f lcFacts) merge(other lcFacts) bool {
	grew := false
	for k, v := range other {
		if _, ok := f[k]; !ok {
			f[k] = v
			grew = true
		}
	}
	return grew
}

// killRes removes every fact (any kind) keyed on res.
func (f lcFacts) killRes(res types.Object) {
	for k := range f {
		if k.res == res {
			delete(f, k)
		}
	}
}

// runLifecycle analyzes every function body of the package — declarations
// and function literals, each as its own intraprocedural scope — and returns
// the leak diagnostics of the spec.
func runLifecycle(p *Package, spec lifecycleSpec) []Diagnostic {
	a := &lifecycleAnalysis{p: p, spec: spec, reported: map[token.Pos]bool{}}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.analyze(fd.Body)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				a.analyze(lit.Body)
			}
			return true
		})
	}
	sort.Slice(a.out, func(i, j int) bool { return a.out[i].Pos.Offset < a.out[j].Pos.Offset })
	return a.out
}

type lifecycleAnalysis struct {
	p        *Package
	spec     lifecycleSpec
	body     *ast.BlockStmt // the function body being analyzed
	out      []Diagnostic
	reported map[token.Pos]bool // dedup: one diagnostic per opening call
}

func (a *lifecycleAnalysis) report(f *lcFact) {
	if a.reported[f.pos] {
		return
	}
	a.reported[f.pos] = true
	a.out = append(a.out, Diagnostic{
		Pos:     a.p.Fset.Position(f.pos),
		Check:   a.spec.check,
		Message: a.spec.leakMsg(f),
	})
}

// analyze solves the may-reach fixpoint over one function body and reports
// facts still open at exit after the deferred closes run.
func (a *lifecycleAnalysis) analyze(body *ast.BlockStmt) {
	prevBody := a.body
	a.body = body
	defer func() { a.body = prevBody }()

	cfg := buildCFG(body, a.p.Info)
	ins := make([]lcFacts, len(cfg.blocks))
	for i := range ins {
		ins[i] = lcFacts{}
	}
	work := []*cfgBlock{cfg.entry}
	queued := make([]bool, len(cfg.blocks))
	visited := make([]bool, len(cfg.blocks))
	queued[cfg.entry.index] = true
	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		queued[blk.index] = false
		visited[blk.index] = true
		facts := ins[blk.index].clone()
		for _, n := range blk.stmts {
			a.transfer(n, facts)
		}
		// A successor runs when its in-facts grow — or on first reach, so
		// opens seeded deep in the graph execute even under empty facts.
		push := func(succ *cfgBlock, f lcFacts) {
			grew := ins[succ.index].merge(f)
			if (grew || !visited[succ.index]) && !queued[succ.index] {
				queued[succ.index] = true
				work = append(work, succ)
			}
		}
		if blk.cond != nil && len(blk.succs) == 2 {
			// Closes/escapes inside the condition expression apply to both
			// branches; the branch-sensitive gens and kills come after.
			a.applyCallsAndEscapes(blk.cond, facts)
			t, f := facts.clone(), facts.clone()
			a.applyBranch(blk.cond, true, t)
			a.applyBranch(blk.cond, false, f)
			push(blk.succs[0], t)
			push(blk.succs[1], f)
		} else {
			if blk.cond != nil {
				a.applyCallsAndEscapes(blk.cond, facts)
			}
			for _, succ := range blk.succs {
				push(succ, facts)
			}
		}
	}
	// Exit: replay the lexically registered defers as close actions, then
	// report what is still open. A defer registered under a condition is a
	// may-close — the quiet direction for a leak checker.
	exitFacts := ins[cfg.exit.index]
	for _, d := range cfg.defers {
		a.applyCloses(d.Call, exitFacts)
	}
	leaks := make([]*lcFact, 0, len(exitFacts))
	for _, f := range exitFacts {
		leaks = append(leaks, f)
	}
	sort.Slice(leaks, func(i, j int) bool { return leaks[i].pos < leaks[j].pos })
	for _, f := range leaks {
		a.report(f)
	}
}

// transfer applies one statement to the fact set: transfers directives,
// close calls, opening assignments, and escape kills, in that order.
func (a *lifecycleAnalysis) transfer(n ast.Node, facts lcFacts) {
	if d, ok := n.(*ast.DeferStmt); ok {
		// Defers act at exit; their arguments are not escapes either — a
		// deferred non-close call holding the resource would be flagged as a
		// leak, which is the honest answer.
		_ = d
		return
	}
	a.applyTransfersDirective(n, facts)
	a.clearPairings(n, facts)
	a.applyCallsAndEscapes(n, facts)
	a.applyOpens(n, facts)
}

// clearPairings severs err/ok pairings whose variable this statement
// reassigns: after `idx, err := nextStep()`, a later `if err != nil` says
// nothing about the resource opened by the EARLIER call that first bound
// err. Facts are copy-on-write here — the *lcFact pointers are shared
// across block fact-sets, so the paired fact is replaced, never mutated.
func (a *lifecycleAnalysis) clearPairings(n ast.Node, facts lcFacts) {
	var targets []ast.Expr
	switch stmt := n.(type) {
	case *ast.AssignStmt:
		targets = stmt.Lhs
	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, s := range gd.Specs {
				if vs, ok := s.(*ast.ValueSpec); ok {
					for _, id := range vs.Names {
						targets = append(targets, id)
					}
				}
			}
		}
	default:
		return
	}
	for _, lhs := range targets {
		obj := a.localVar(lhs)
		if obj == nil {
			continue
		}
		for key, f := range facts {
			if f.err == obj || f.ok == obj {
				nf := *f
				if f.err == obj {
					nf.err = nil
				}
				if f.ok == obj {
					nf.ok = nil
				}
				facts[key] = &nf
			}
		}
	}
}

// applyCallsAndEscapes walks the statement (including closure bodies for
// close detection) applying close kills and escape kills.
func (a *lifecycleAnalysis) applyCallsAndEscapes(n ast.Node, facts lcFacts) {
	a.applyCloses(n, facts)
	a.applyEscapes(n, facts)
}

// applyCloses kills fact kinds closed by any call under n, including calls
// inside function literals: a closure that visibly releases the resource is
// the sanctioned hand-off shape (the flushRunAsync pattern), and whether the
// closure has run by exit is beyond an intraprocedural analysis — may-close
// is the quiet direction.
func (a *lifecycleAnalysis) applyCloses(n ast.Node, facts lcFacts) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		for key, f := range facts {
			for _, kind := range a.spec.closeKinds(a.p, call, f.res) {
				if key.kind == kind {
					delete(facts, key)
				}
			}
		}
		return true
	})
}

// applyOpens recognizes statement-level resource-opening calls and binds
// their facts. Only top-level forms are tracked — `x := open(...)`,
// `var x = open(...)`, `x, err := open(...)`, `ok := recv.Open(...)`, and a
// bare `recv.Open(...)` / discarded `open(...)` statement — so chained or
// nested opens stay out of scope (documented limit).
func (a *lifecycleAnalysis) applyOpens(n ast.Node, facts lcFacts) {
	switch stmt := n.(type) {
	case *ast.AssignStmt:
		if len(stmt.Rhs) != 1 {
			return
		}
		call, ok := unparen(stmt.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		a.bindOpen(stmt.Lhs, call, facts)
	case *ast.DeclStmt:
		gd, ok := stmt.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, s := range gd.Specs {
			vs, ok := s.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 1 {
				continue
			}
			call, ok := unparen(vs.Values[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			lhs := make([]ast.Expr, len(vs.Names))
			for i, id := range vs.Names {
				lhs[i] = id
			}
			a.bindOpen(lhs, call, facts)
		}
	case *ast.ExprStmt:
		call, ok := unparen(stmt.X).(*ast.CallExpr)
		if !ok {
			return
		}
		a.bindOpen(nil, call, facts)
	}
}

// bindOpen applies one recognized open call: facts for receiver opens,
// result-bound opens, and an immediate diagnostic when a created resource is
// discarded outright.
func (a *lifecycleAnalysis) bindOpen(lhs []ast.Expr, call *ast.CallExpr, facts lcFacts) {
	o, ok := a.spec.open(a.p, call)
	if !ok {
		return
	}
	if o.resIsRecv {
		recv := a.receiverObj(call)
		if recv == nil {
			return
		}
		if o.requiresKind != "" {
			if _, held := facts[lcKey{res: recv, kind: o.requiresKind}]; !held {
				return
			}
		}
		f := &lcFact{res: recv, kind: o.kind, what: o.what, pos: call.Pos(), name: recv.Name()}
		if o.conditional && len(lhs) >= 1 {
			if obj := a.localVar(lhs[0]); obj != nil && isBoolType(obj.Type()) {
				f.ok = obj
			}
		}
		facts[lcKey{res: recv, kind: o.kind}] = f
		return
	}
	if len(lhs) == 0 {
		// Created resource discarded at statement position: leaks immediately.
		a.report(&lcFact{kind: o.kind, what: o.what, pos: call.Pos(), name: "result"})
		return
	}
	res := a.localVar(lhs[0])
	if res == nil {
		if id, isIdent := unparen(lhs[0]).(*ast.Ident); isIdent && id.Name == "_" {
			a.report(&lcFact{kind: o.kind, what: o.what, pos: call.Pos(), name: "_"})
		}
		// Bound to a field/index: untracked (the structure owns it now).
		return
	}
	// Rebinding a variable drops whatever it held.
	facts.killRes(res)
	f := &lcFact{res: res, kind: o.kind, what: o.what, pos: call.Pos(), name: res.Name()}
	if last := lhs[len(lhs)-1]; len(lhs) > 1 {
		if obj := a.localVar(last); obj != nil && isErrorType(obj.Type()) {
			f.err = obj
		}
	}
	facts[lcKey{res: res, kind: o.kind}] = f
}

// receiverObj resolves the receiver variable of a method call (`x.M(...)`).
func (a *lifecycleAnalysis) receiverObj(call *ast.CallExpr) types.Object {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := a.p.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// localVar resolves an assignment target to the local variable it names.
func (a *lifecycleAnalysis) localVar(e ast.Expr) types.Object {
	id, ok := unparen(e).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := a.p.Info.Defs[id]; obj != nil {
		return obj
	}
	if v, ok := a.p.Info.Uses[id].(*types.Var); ok && !v.IsField() {
		return v
	}
	return nil
}

// applyEscapes kills facts whose resource visibly leaves the function:
// returned, passed as a call argument, reassigned to another variable, sent
// on a channel, or address-taken. Mentions inside function literals are not
// escapes (the closure shares this function's obligation — see applyCloses),
// and composite-literal / field-store placements deliberately survive: those
// are the hand-off shapes that need an explicit close, a transfers
// directive, or a visible closure release.
func (a *lifecycleAnalysis) applyEscapes(n ast.Node, facts lcFacts) {
	if len(facts) == 0 {
		return
	}
	tracked := map[types.Object]bool{}
	for k := range facts {
		tracked[k.res] = true
	}
	walkStack(n, func(m ast.Node, stack []ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := a.p.Info.Uses[id].(*types.Var)
		if !ok || !tracked[obj] {
			return true
		}
		if a.escapesAt(id, obj, stack) {
			facts.killRes(obj)
			delete(tracked, obj)
		}
		return true
	})
}

// escapesAt classifies one use of a tracked variable given its ancestor
// stack (outermost first).
func (a *lifecycleAnalysis) escapesAt(id *ast.Ident, obj types.Object, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.FuncLit:
			return false // closure capture: obligation stays here
		case *ast.SelectorExpr:
			// x.M(...) receiver or x.field read: not an escape by itself.
			if unparen(parent.X) == id || parent.X == id {
				return false
			}
		case *ast.CallExpr:
			// Argument to a call whose close-kinds didn't already kill it:
			// the callee may take ownership — hand it the obligation.
			for _, arg := range parent.Args {
				if containsIdent(arg, id) {
					return true
				}
			}
			return false
		case *ast.ReturnStmt:
			return true
		case *ast.SendStmt:
			return true
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				return true
			}
		case *ast.BinaryExpr:
			// Comparisons (nil checks, equality) are reads, not escapes.
			return false
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return false // stored for later: fact survives (see doc above)
		case *ast.IndexExpr:
			return false // m[k] read or element store: fact survives
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if containsIdent(lhs, id) {
					return false // reassignment target handled by bindOpen/kill
				}
			}
			// On the RHS. Anything nested (composite literal, call argument)
			// was already classified by an inner ancestor; reaching here means
			// the resource is a direct RHS operand. A copy into a plain
			// variable hands the obligation to the new name; a store into a
			// field or element is "kept for later" and the fact survives.
			for ri, rhs := range parent.Rhs {
				if !containsIdent(rhs, id) {
					continue
				}
				target := ri
				if len(parent.Lhs) != len(parent.Rhs) {
					target = 0
				}
				if target >= len(parent.Lhs) {
					return false
				}
				_, plainVar := unparen(parent.Lhs[target]).(*ast.Ident)
				return plainVar
			}
			return false
		case *ast.RangeStmt, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt,
			*ast.TypeSwitchStmt, *ast.CaseClause, *ast.BlockStmt, *ast.ExprStmt:
			return false
		}
	}
	return false
}

// containsIdent reports whether the exact identifier node appears under e.
func containsIdent(e ast.Node, id *ast.Ident) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if n == id {
			found = true
		}
		return !found
	})
	return found
}

// applyBranch prunes facts along one edge of a two-way branch and generates
// conditional opens on their success edge.
func (a *lifecycleAnalysis) applyBranch(cond ast.Expr, taken bool, facts lcFacts) {
	switch e := unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			a.applyBranch(e.X, !taken, facts)
		}
	case *ast.Ident:
		// `if ok` on a conditional open's result: the failure branch never
		// acquired the resource.
		obj, ok := a.p.Info.Uses[e].(*types.Var)
		if !ok {
			return
		}
		for key, f := range facts {
			if f.ok == obj && !taken {
				delete(facts, key)
			}
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if taken { // both operands true on the taken edge
				a.applyBranch(e.X, true, facts)
				a.applyBranch(e.Y, true, facts)
			}
		case token.LOR:
			if !taken { // both operands false on the fallthrough edge
				a.applyBranch(e.X, false, facts)
				a.applyBranch(e.Y, false, facts)
			}
		case token.EQL, token.NEQ:
			id, isNilCmp := nilComparison(e)
			if !isNilCmp {
				return
			}
			obj, ok := a.p.Info.Uses[id].(*types.Var)
			if !ok {
				return
			}
			// isNilBranch: on this edge, id is known nil.
			isNilBranch := (e.Op == token.EQL) == taken
			for key, f := range facts {
				if f.res == obj && isNilBranch {
					delete(facts, key) // nil resource: nothing to close
				}
				if f.err == obj && !isNilBranch {
					delete(facts, key) // non-nil error: open call failed
				}
			}
		}
	case *ast.CallExpr:
		// `if gr.TryReserve(n)` / (negated, handled above): the reservation
		// exists only on the success edge.
		o, ok := a.spec.open(a.p, e)
		if !ok || !o.conditional || !o.resIsRecv || !taken {
			return
		}
		recv := a.receiverObj(e)
		if recv == nil {
			return
		}
		if o.requiresKind != "" {
			if _, held := facts[lcKey{res: recv, kind: o.requiresKind}]; !held {
				return
			}
		}
		facts[lcKey{res: recv, kind: o.kind}] = &lcFact{
			res: recv, kind: o.kind, what: o.what, pos: e.Pos(), name: recv.Name(),
		}
	}
}

// nilComparison matches `x == nil` / `x != nil` (either operand order) and
// returns the non-nil identifier.
func nilComparison(e *ast.BinaryExpr) (*ast.Ident, bool) {
	x, y := unparen(e.X), unparen(e.Y)
	if isNilIdent(y) {
		if id, ok := x.(*ast.Ident); ok {
			return id, true
		}
	}
	if isNilIdent(x) {
		if id, ok := y.(*ast.Ident); ok {
			return id, true
		}
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// applyTransfersDirective kills facts whose variable a //statcheck:transfers
// directive covering this statement's line names — the declared ownership
// hand-off (e.g. a reservation stolen into a spill job).
func (a *lifecycleAnalysis) applyTransfersDirective(n ast.Node, facts lcFacts) {
	if len(facts) == 0 {
		return
	}
	pos := a.p.Fset.Position(n.Pos())
	for key, f := range facts {
		if a.p.transferredAt(pos.Filename, pos.Line, f.name) {
			delete(facts, key)
		}
	}
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

// namedType returns the named type of t, unwrapping one pointer.
func namedType(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// typeNameIs reports whether t (or its pointee) is a named type with the
// given name.
func typeNameIs(t types.Type, name string) bool {
	named := namedType(t)
	return named != nil && named.Obj().Name() == name
}

// firstResultType returns the type of a call's first result, or nil.
func firstResultType(info *types.Info, call *ast.CallExpr) types.Type {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return nil
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return nil
		}
		return tuple.At(0).Type()
	}
	return tv.Type
}

// hasMethod reports whether t's method set (value or pointer receiver)
// contains a niladic method with the given name.
func hasMethod(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

// leakSuffix renders the shared tail of a lifecycle diagnostic.
func leakSuffix(f *lcFact, closer string) string {
	return fmt.Sprintf("on some path to return; add defer %s.%s(), close it on the early-exit path, or declare the hand-off with //statcheck:transfers %s",
		f.name, closer, f.name)
}
