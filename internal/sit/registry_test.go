package sit

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/mem"
	"github.com/sitstats/sits/internal/query"
)

func chainCatalog(t *testing.T) *data.Catalog {
	t.Helper()
	cat, err := datagen.ChainDB(datagen.DefaultChainConfig())
	if err != nil {
		t.Fatal(err)
	}
	return cat
}

func mustSpec(t *testing.T, text string) query.SITSpec {
	t.Helper()
	spec, err := query.ParseSIT(text)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

var registrySpecs = []string{
	"T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev",
	"T3.a | T2 JOIN T3 ON T2.jnext = T3.jprev",
	"T4.a | T3 JOIN T4 ON T3.jnext = T4.jprev",
	"T3.a | T1 JOIN T2 ON T1.jnext = T2.jprev JOIN T3 ON T2.jnext = T3.jprev",
}

// TestRegistrySingleFlight asserts that concurrent Gets for one spec share
// exactly one build: every caller receives the same served *SIT instance.
func TestRegistrySingleFlight(t *testing.T) {
	reg, err := NewRegistry(chainCatalog(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	spec := mustSpec(t, registrySpecs[0])

	const callers = 32
	results := make([]*SIT, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := reg.Get(spec, Sweep)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = s
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different SIT instance: duplicate build slipped past single-flight", i)
		}
	}
	if n := reg.Len(); n != 1 {
		t.Fatalf("registry serves %d SITs, want 1", n)
	}
	if e := reg.Epoch(); e != 1 {
		t.Fatalf("epoch %d after one published build, want 1", e)
	}
}

// TestRegistryConcurrentBuildsSharedGovernor drives N concurrent builders —
// separate Builder instances plus a registry, all reserving against one
// shared Governor — and asserts the global Peak stays within the budget
// while every build succeeds. Run under -race this is the shared-ledger
// accounting test.
func TestRegistryConcurrentBuildsSharedGovernor(t *testing.T) {
	const budget = 256 << 20
	gov := mem.NewGovernor(budget)
	defer func() {
		if err := gov.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	cat := chainCatalog(t)
	cfg := DefaultConfig()
	cfg.Governor = gov
	cfg.Parallelism = 2

	reg, err := NewRegistry(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	// Builders on private catalogs sharing the governor: concurrent
	// Materialize builds run executor plans whose operators all reserve
	// from the same ledger.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := NewBuilder(chainCatalog(t), cfg)
			if err != nil {
				errs <- err
				return
			}
			defer func() {
				if err := b.Close(); err != nil {
					errs <- err
				}
			}()
			spec, err := query.ParseSIT(registrySpecs[i%len(registrySpecs)])
			if err != nil {
				errs <- err
				return
			}
			if _, err := b.Build(spec, Materialize); err != nil {
				errs <- fmt.Errorf("builder %d: %w", i, err)
			}
		}(i)
	}
	// The registry builds the full spec list concurrently on the same ledger.
	for _, text := range registrySpecs {
		wg.Add(1)
		go func(text string) {
			defer wg.Done()
			if _, err := reg.Get(mustSpec(t, text), SweepFull); err != nil {
				errs <- err
			}
		}(text)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if peak := gov.Peak(); peak <= 0 || peak > budget {
		t.Fatalf("shared governor peak %d outside (0, %d]", peak, budget)
	}
	if used := gov.Used(); used != 0 {
		t.Fatalf("shared governor still holds %d bytes after all builders closed", used)
	}
	// The shared governor must survive every builder's Close.
	probe := gov.Grant("probe")
	if !probe.TryReserve(1) {
		t.Fatal("shared governor unusable after builder Close")
	}
	probe.Close()
}

// TestRegistryRefreshPublishesNewEpoch grows a base table past the staleness
// threshold and asserts Refresh rebuilds the affected SIT, bumps the epoch,
// and leaves concurrent readers undisturbed.
func TestRegistryRefreshPublishesNewEpoch(t *testing.T) {
	cat := chainCatalog(t)
	reg, err := NewRegistry(cat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	spec := mustSpec(t, registrySpecs[0])
	before, err := reg.Get(spec, SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	epoch0 := reg.Epoch()

	// Fresh catalog: a sweep must rebuild nothing and keep the epoch.
	rebuilt, err := reg.Refresh(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 0 || reg.Epoch() != epoch0 {
		t.Fatalf("fresh sweep rebuilt %v and moved epoch %d -> %d", rebuilt, epoch0, reg.Epoch())
	}

	// Readers hammer the snapshot while the catalog mutates and refreshes.
	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				if s, ok := reg.Lookup(spec, SweepFull); !ok || s == nil {
					t.Error("served SIT vanished during refresh")
					return
				}
				snap, _ := reg.Snapshot()
				if len(snap) == 0 {
					t.Error("empty snapshot during refresh")
					return
				}
			}
		}()
	}

	growTable(t, cat, "T1", 0.5)
	rebuilt, err = reg.Refresh(0.2)
	close(stopReaders)
	readers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 1 || rebuilt[0] != spec.String() {
		t.Fatalf("rebuilt %v, want [%s]", rebuilt, spec.String())
	}
	if reg.Epoch() != epoch0+1 {
		t.Fatalf("epoch %d after refresh, want %d", reg.Epoch(), epoch0+1)
	}
	after, ok := reg.Lookup(spec, SweepFull)
	if !ok {
		t.Fatal("refreshed SIT missing from snapshot")
	}
	if after == before {
		t.Fatal("refresh served the stale SIT instance unchanged")
	}
	st := reg.Stats()
	if st.RefreshSweeps != 2 || st.RefreshRebuilt != 1 {
		t.Fatalf("stats %+v, want 2 sweeps / 1 rebuilt", st)
	}
}

// TestRegistryBackgroundRefresh runs the refresher loop against a mutating
// catalog and asserts it publishes a new epoch on its own, then quiesces on
// Close.
func TestRegistryBackgroundRefresh(t *testing.T) {
	cat := chainCatalog(t)
	reg, err := NewRegistry(cat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	spec := mustSpec(t, registrySpecs[0])
	if _, err := reg.Get(spec, SweepFull); err != nil {
		t.Fatal(err)
	}
	epoch0 := reg.Epoch()
	if err := reg.StartRefresh(5*time.Millisecond, 0.2); err != nil {
		t.Fatal(err)
	}
	if err := reg.StartRefresh(5*time.Millisecond, 0.2); err == nil {
		t.Fatal("second StartRefresh must fail while the first runs")
	}
	growTable(t, cat, "T1", 0.5)
	deadline := time.After(5 * time.Second)
	for reg.Epoch() == epoch0 {
		select {
		case <-deadline:
			t.Fatal("background refresher never published a new epoch")
		case <-time.After(time.Millisecond):
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := reg.Get(spec, Sweep); err == nil {
		t.Fatal("Get after Close must fail")
	}
	if _, err := reg.Refresh(0.2); err == nil {
		t.Fatal("Refresh after Close must fail")
	}
}

// TestRegistryAdoptReplacesServedSet adopts a persisted-style SIT and
// asserts it replaces the served instance under a new epoch.
func TestRegistryAdoptReplacesServedSet(t *testing.T) {
	reg, err := NewRegistry(chainCatalog(t), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	spec := mustSpec(t, registrySpecs[0])
	built, err := reg.Get(spec, SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	epoch := reg.Epoch()
	adopted := &SIT{Spec: built.Spec, Hist: built.Hist, Method: built.Method, EstimatedCard: built.EstimatedCard}
	if err := reg.Adopt([]*SIT{adopted}); err != nil {
		t.Fatal(err)
	}
	if reg.Epoch() != epoch+1 {
		t.Fatalf("epoch %d after Adopt, want %d", reg.Epoch(), epoch+1)
	}
	got, ok := reg.Lookup(spec, SweepFull)
	if !ok || got != adopted {
		t.Fatal("Adopt did not replace the served SIT")
	}
}

// growTable appends frac more rows (copies of row 0) to the named in-memory
// table, driving its staleness growth past any threshold below frac.
func growTable(t *testing.T, cat *data.Catalog, name string, frac float64) {
	t.Helper()
	tab, err := cat.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	row, err := tab.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	n := int(frac * float64(tab.NumRows()))
	for i := 0; i < n; i++ {
		if err := tab.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
}
