package sit

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/mem"
	"github.com/sitstats/sits/internal/query"
)

// Registry is the concurrent SIT catalog of the statistics service: the
// long-lived, shared counterpart of the one-shot Builder. It separates the
// build machinery (the Builder, which caches base histograms, indexes and
// intermediate SITs but is single-threaded) from the served statistics,
// which live in an immutable epoch-swapped snapshot:
//
//   - Readers (estimate requests) call Lookup/Snapshot/Epoch, which read one
//     atomic pointer and never block, no matter how many builds or refreshes
//     are in flight.
//   - Writers (Get builds, Adopt, Refresh) serialize on the builder, then
//     publish a fresh snapshot with an incremented epoch. The epoch is the
//     invalidation signal estimate caches key on: any change to the served
//     SIT set — a new SIT, an adopted set, a staleness rebuild — moves the
//     epoch forward and strands cache entries keyed to the old one.
//   - Concurrent Get calls for the same spec are single-flighted: one caller
//     builds, the rest wait for its result.
//
// A background refresher (StartRefresh) periodically re-checks every served
// SIT against the catalog with the builder's staleness tracking and rebuilds
// drifted ones with their original method. Close quiesces the refresher and
// releases the builder's spill resources.
type Registry struct {
	builderMu sync.Mutex // serializes every use of the single-threaded builder
	builder   *Builder

	set atomic.Pointer[sitSet] // current served snapshot; swapped under builderMu

	flightMu sync.Mutex // guards inflight
	inflight map[string]*flight

	closed atomic.Bool
	stop   chan struct{}

	refreshMu      sync.Mutex // guards refresher start/stop state
	refresherDone  chan struct{}
	refreshSweeps  atomic.Int64 // completed staleness sweeps
	refreshRebuilt atomic.Int64 // SITs rebuilt by staleness sweeps
}

// sitSet is one immutable epoch of the served catalog.
type sitSet struct {
	epoch uint64
	sits  map[string]*SIT // cacheKey(spec, method) -> SIT
	// statGen counts, per table, the published changes to the SIT subset
	// mentioning that table: adding, removing, or replacing a SIT bumps the
	// counter of every table in its generating expression. Prepared estimator
	// plans pin these counters (plus the tables' data generations), so a
	// publish that does not touch a plan's tables leaves the plan valid —
	// the per-table refinement of the all-invalidating epoch.
	statGen map[string]uint64
}

// flight is one in-progress single-flighted build.
type flight struct {
	done chan struct{}
	s    *SIT
	err  error
}

// NewRegistry creates a concurrent SIT catalog over the data catalog. The
// configuration is the Builder's; inject Config.Governor to share one
// process-wide memory budget with other registries and operators.
func NewRegistry(cat *data.Catalog, cfg Config) (*Registry, error) {
	b, err := NewBuilder(cat, cfg)
	if err != nil {
		return nil, err
	}
	r := &Registry{
		builder:  b,
		inflight: map[string]*flight{},
		stop:     make(chan struct{}),
	}
	r.set.Store(&sitSet{sits: map[string]*SIT{}, statGen: map[string]uint64{}})
	return r, nil
}

// Catalog returns the data catalog the registry serves statistics over.
func (r *Registry) Catalog() *data.Catalog { return r.builder.Catalog() }

// Governor returns the memory governor every build reserves against (shared
// or builder-private), or nil when un-budgeted.
func (r *Registry) Governor() *mem.Governor { return r.builder.Governor() }

// Epoch returns the current snapshot's epoch. It increments on every change
// to the served SIT set; estimate caches include it in their keys so a swap
// strands every entry computed against the previous set.
func (r *Registry) Epoch() uint64 { return r.set.Load().epoch }

// Len returns the number of served SITs.
func (r *Registry) Len() int { return len(r.set.Load().sits) }

// Lookup returns the served SIT for the spec and method without building.
// It is lock-free and safe under any concurrency.
func (r *Registry) Lookup(spec query.SITSpec, m Method) (*SIT, bool) {
	s, ok := r.set.Load().sits[cacheKey(spec, m)]
	return s, ok
}

// Snapshot returns the served SITs of the current epoch in deterministic
// (key-sorted) order, plus the epoch they belong to. The slice is fresh; the
// SITs are the served instances and must be treated as immutable.
func (r *Registry) Snapshot() ([]*SIT, uint64) {
	set := r.set.Load()
	keys := make([]string, 0, len(set.sits))
	for k := range set.sits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*SIT, len(keys))
	for i, k := range keys {
		out[i] = set.sits[k]
	}
	return out, set.epoch
}

// publish swaps in a snapshot with the given SIT map and the next epoch, and
// bumps the per-table stat generation of every table whose SIT subset
// changed (an entry added, removed, or replaced by a different *SIT).
// Callers must hold builderMu, which makes the read-modify-write atomic with
// respect to other publishers.
func (r *Registry) publish(sits map[string]*SIT) {
	cur := r.set.Load()
	changed := map[string]bool{}
	for k, s := range sits { //statcheck:ignore maprange set diff collects into a map, order-independent
		if old, ok := cur.sits[k]; !ok || old != s {
			for _, t := range s.Spec.Expr.Tables() {
				changed[t] = true
			}
		}
	}
	for k, s := range cur.sits { //statcheck:ignore maprange set diff collects into a map, order-independent
		if _, ok := sits[k]; !ok {
			for _, t := range s.Spec.Expr.Tables() {
				changed[t] = true
			}
		}
	}
	statGen := cur.statGen
	if len(changed) > 0 {
		statGen = make(map[string]uint64, len(cur.statGen)+len(changed))
		for t, g := range cur.statGen { //statcheck:ignore maprange map-to-map copy, order-independent
			statGen[t] = g
		}
		for t := range changed { //statcheck:ignore maprange per-key counter bumps, order-independent
			statGen[t]++
		}
	}
	r.set.Store(&sitSet{epoch: cur.epoch + 1, sits: sits, statGen: statGen})
}

// cloneSet copies the current served map for copy-on-write publication.
// Callers must hold builderMu.
func (r *Registry) cloneSet() map[string]*SIT {
	cur := r.set.Load().sits
	next := make(map[string]*SIT, len(cur)+1)
	for k, s := range cur { //statcheck:ignore maprange map-to-map copy, order-independent
		next[k] = s
	}
	return next
}

// StatGen returns the table's SIT-set generation: the number of published
// changes (additions, removals, replacements) to the served SITs whose
// generating expression mentions the table. Lock-free.
func (r *Registry) StatGen(table string) uint64 {
	return r.set.Load().statGen[table]
}

// PlanPin renders the invalidation fingerprint a prepared estimator plan
// pins: for every table of the expression, the table's data generation and
// its SIT-set generation, read from one snapshot. Equal pins mean a fresh
// preparation would resolve the identical statistics — neither the data nor
// the SIT subset over any of the plan's tables changed — so a cached plan
// with a matching pin probes bit-identically to cold estimation. A publish
// or mutation that does not touch the plan's tables leaves its pin (and the
// plan) valid, unlike the epoch-keyed result cache, which strands all
// entries on every publish.
func (r *Registry) PlanPin(expr *query.Expr) (string, error) {
	if expr == nil {
		return "", fmt.Errorf("sit: PlanPin needs an expression")
	}
	set := r.set.Load()
	cat := r.builder.Catalog()
	var sb strings.Builder
	for _, name := range expr.Tables() {
		t, err := cat.Table(name)
		if err != nil {
			return "", err
		}
		sb.WriteString(name)
		sb.WriteByte('@')
		sb.WriteString(strconv.FormatUint(t.Generation(), 10))
		sb.WriteByte('#')
		sb.WriteString(strconv.FormatUint(set.statGen[name], 10))
		sb.WriteByte(0)
	}
	return sb.String(), nil
}

// Get returns the served SIT for the spec, building and publishing it on
// first use. Concurrent calls for the same (spec, method) are deduplicated:
// exactly one caller runs the build, the others wait for its result. Builds
// of distinct specs serialize on the builder but never block readers.
func (r *Registry) Get(spec query.SITSpec, m Method) (*SIT, error) {
	if s, ok := r.Lookup(spec, m); ok {
		return s, nil
	}
	if r.closed.Load() {
		return nil, fmt.Errorf("sit: registry is closed")
	}
	key := cacheKey(spec, m)
	r.flightMu.Lock()
	if f, ok := r.inflight[key]; ok {
		r.flightMu.Unlock()
		<-f.done
		return f.s, f.err
	}
	f := &flight{done: make(chan struct{})}
	r.inflight[key] = f
	r.flightMu.Unlock()

	r.builderMu.Lock()
	// The snapshot may have gained the SIT while we queued for the builder
	// (an Adopt or a refresh); serve it rather than rebuilding.
	if s, ok := r.Lookup(spec, m); ok {
		f.s = s
	} else {
		f.s, f.err = r.builder.Build(spec, m)
		if f.err == nil {
			next := r.cloneSet()
			next[key] = f.s
			r.publish(next)
		}
	}
	r.builderMu.Unlock()

	close(f.done)
	r.flightMu.Lock()
	delete(r.inflight, key)
	r.flightMu.Unlock()
	return f.s, f.err
}

// Adopt publishes externally built SITs (e.g. loaded from a persisted set)
// into the served snapshot and the builder's cache, replacing same-spec
// entries. One epoch swap covers the whole batch.
func (r *Registry) Adopt(sits []*SIT) error {
	if len(sits) == 0 {
		return nil
	}
	if r.closed.Load() {
		return fmt.Errorf("sit: registry is closed")
	}
	r.builderMu.Lock()
	defer r.builderMu.Unlock()
	if err := r.builder.AdoptCached(sits); err != nil {
		return err
	}
	next := r.cloneSet()
	for _, s := range sits {
		next[cacheKey(s.Spec, s.Method)] = s
	}
	r.publish(next)
	return nil
}

// Refresh runs one staleness sweep: every served SIT whose base tables
// drifted beyond threshold (relative row-count growth, e.g. 0.2 for 20%) is
// rebuilt with its original method, and the refreshed set is published as a
// new epoch. It returns the spec strings of the rebuilt SITs, sorted; an
// empty result means the epoch did not move.
func (r *Registry) Refresh(threshold float64) ([]string, error) {
	if r.closed.Load() {
		return nil, fmt.Errorf("sit: registry is closed")
	}
	r.builderMu.Lock()
	defer r.builderMu.Unlock()

	set := r.set.Load()
	keys := make([]string, 0, len(set.sits))
	for k := range set.sits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sits := make([]*SIT, len(keys))
	for i, k := range keys {
		sits[i] = set.sits[k]
	}

	refreshed, rebuilt, err := r.builder.RefreshStale(sits, threshold)
	if err != nil {
		return nil, err
	}
	r.refreshSweeps.Add(1)
	if len(rebuilt) == 0 {
		return nil, nil
	}
	next := make(map[string]*SIT, len(keys))
	for i, k := range keys {
		next[k] = refreshed[i]
	}
	r.publish(next)
	r.refreshRebuilt.Add(int64(len(rebuilt)))
	return rebuilt, nil
}

// RegistryStats is a point-in-time view of the registry for monitoring.
// The memory fields read the shared governor, so under one injected
// Config.Governor they report the whole process: MemPeak never exceeding
// MemBudget is the budget invariant, observable live.
type RegistryStats struct {
	Epoch          uint64 `json:"epoch"`
	SITs           int    `json:"sits"`
	RefreshSweeps  int64  `json:"refresh_sweeps"`
	RefreshRebuilt int64  `json:"refresh_rebuilt"`
	MemBudget      int64  `json:"mem_budget"`
	MemUsed        int64  `json:"mem_used"`
	MemPeak        int64  `json:"mem_peak"`
}

// Stats returns monitoring counters.
func (r *Registry) Stats() RegistryStats {
	set := r.set.Load()
	gov := r.builder.Governor()
	return RegistryStats{
		Epoch:          set.epoch,
		SITs:           len(set.sits),
		RefreshSweeps:  r.refreshSweeps.Load(),
		RefreshRebuilt: r.refreshRebuilt.Load(),
		MemBudget:      gov.Budget(),
		MemUsed:        gov.Used(),
		MemPeak:        gov.Peak(),
	}
}

// StartRefresh launches the background refresher: every interval it runs one
// Refresh(threshold) sweep. At most one refresher runs per registry; Close
// quiesces it. Sweep errors are counted but do not stop the loop — the next
// tick retries against the then-current catalog.
func (r *Registry) StartRefresh(interval time.Duration, threshold float64) error {
	if interval <= 0 {
		return fmt.Errorf("sit: refresh interval must be positive, got %v", interval)
	}
	if threshold < 0 {
		return fmt.Errorf("sit: staleness threshold must be non-negative")
	}
	if r.closed.Load() {
		return fmt.Errorf("sit: registry is closed")
	}
	r.refreshMu.Lock()
	defer r.refreshMu.Unlock()
	if r.refresherDone != nil {
		return fmt.Errorf("sit: refresher already running")
	}
	done := make(chan struct{})
	r.refresherDone = done
	go func() {
		defer close(done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-r.stop:
				return
			case <-ticker.C:
				// Errors (e.g. a table dropped mid-sweep) leave the previous
				// epoch serving; the next tick re-runs the sweep.
				_, _ = r.Refresh(threshold)
			}
		}
	}()
	return nil
}

// Close quiesces the background refresher (waiting for an in-flight sweep to
// finish) and releases the builder's spill resources. A shared governor
// injected through Config.Governor stays open for its other users. Close is
// idempotent; Get/Adopt/Refresh fail after it.
func (r *Registry) Close() error {
	if r.closed.Swap(true) {
		return nil
	}
	close(r.stop)
	r.refreshMu.Lock()
	done := r.refresherDone
	r.refreshMu.Unlock()
	if done != nil {
		<-done
	}
	r.builderMu.Lock()
	defer r.builderMu.Unlock()
	return r.builder.Close()
}

// WithBuilder runs f with exclusive access to the registry's builder. The
// builder's caches (base histograms, indexes, intermediate SITs) are not
// concurrency-safe, so everything that touches them — notably cardinality
// estimation's base-histogram fallback — must run inside this critical
// section. Lock-free readers (Lookup, Snapshot) are unaffected.
func (r *Registry) WithBuilder(f func(*Builder) error) error {
	r.builderMu.Lock()
	defer r.builderMu.Unlock()
	return f(r.builder)
}
