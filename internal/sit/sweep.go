package sit

import (
	"fmt"
	"sort"

	"github.com/sitstats/sits/internal/btree"
	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/sample"
)

// oracle is the m-Oracle of Section 3.1: it estimates (or computes) the
// multiplicity of the scanned tuple's join-attribute value(s) in the joined
// relation. Single-predicate oracles receive one value; the 2-D oracle for
// double-predicate edges receives the tuple's pair.
type oracle interface {
	multiplicity(vals []int64) float64
}

// batchOracle is the vectorized m-Oracle contract: multiplicityBatch fills
// out[i] with the multiplicity of vals[i] (out and vals have equal length).
// Implementations sort a permutation of the probe vector and answer it in
// ascending order — histogram oracles then walk their bucket lists once per
// chunk and index oracles follow the B+tree leaf chain with one descent per
// distinct-key jump — and scatter the answers back through the permutation.
// Every answer is bit-identical to the scalar multiplicity call.
//
// The caller supplies the probeScratch backing the argsort and answer
// buffers: oracles are shared across scanning goroutines and must hold no
// per-probe state of their own.
type batchOracle interface {
	multiplicityBatch(vals []int64, out []float64, s *probeScratch)
}

// sortedProbe argsorts the probe vector: perm is the index permutation and
// sorted[i] = vals[perm[i]] ascending. It uses a stable LSD radix sort
// (signed order via sign-bit flip) rather than a comparison sort — chunk
// probe vectors are a few thousand elements, where comparator closures cost
// more than the batched walk saves. One pre-scan builds all eight byte
// histograms, and passes whose byte is constant across the vector are
// skipped, so vectors from a narrow key domain need only one or two scatter
// passes.
//
// The returned slices alias the scratch and are valid until its next use.
//
//statcheck:hot
func (s *probeScratch) sortedProbe(vals []int64) (perm []int32, sorted []int64) {
	n := len(vals)
	if n == 0 {
		return nil, nil
	}
	s.growProbe(n)
	keys := s.keys
	perm = s.perm
	for i, v := range vals {
		keys[i] = uint64(v) ^ (1 << 63)
		perm[i] = int32(i)
	}
	var counts [8][256]int32
	for _, k := range keys {
		for b := uint(0); b < 8; b++ {
			counts[b][byte(k>>(8*b))]++
		}
	}
	src, dst := keys, s.keys2
	ps, pd := perm, s.perm2
	for b := uint(0); b < 8; b++ {
		c := &counts[b]
		if c[byte(keys[0]>>(8*b))] == int32(n) {
			continue // byte constant across the vector
		}
		var offs [256]int32
		sum := int32(0)
		for v := 0; v < 256; v++ {
			offs[v] = sum
			sum += c[v]
		}
		for i := 0; i < n; i++ {
			k := src[i]
			d := byte(k >> (8 * b))
			o := offs[d]
			offs[d] = o + 1
			dst[o] = k
			pd[o] = ps[i]
		}
		src, dst = dst, src
		ps, pd = pd, ps
	}
	sorted = s.sorted
	for i, k := range src {
		sorted[i] = int64(k ^ (1 << 63))
	}
	return ps, sorted
}

// histOracle implements getMultiplicity of Section 3.1.1: the expected
// multiplicity under the containment assumption, computed from the histogram
// over the joined side (child: a base histogram or an intermediate SIT) and
// the base histogram over the scanned attribute (parent).
type histOracle struct {
	child, parent *histogram.Histogram
}

func (o histOracle) multiplicity(vals []int64) float64 {
	return histogram.ContainmentMultiplicity(o.child, o.parent, vals[0])
}

//statcheck:hot
func (o histOracle) multiplicityBatch(vals []int64, out []float64, s *probeScratch) {
	perm, sorted := s.sortedProbe(vals)
	ms := s.f64[:len(sorted)]
	histogram.ContainmentMultiplicitySorted(o.child, o.parent, sorted, ms)
	for i, p := range perm {
		out[p] = ms[i]
	}
}

// indexOracle implements the SweepIndex m-Oracle: an exact duplicate count
// from a B+tree over the joined base table's attribute.
type indexOracle struct {
	idx *btree.Tree
}

func (o indexOracle) multiplicity(vals []int64) float64 {
	return float64(o.idx.Count(vals[0]))
}

//statcheck:hot
func (o indexOracle) multiplicityBatch(vals []int64, out []float64, s *probeScratch) {
	perm, sorted := s.sortedProbe(vals)
	counts := s.i64[:len(sorted)]
	o.idx.CountsSorted(sorted, counts)
	for i, p := range perm {
		out[p] = float64(counts[i])
	}
}

// oracle2D answers double-predicate edges from two-dimensional histograms
// over the child and parent attribute pairs — the multidimensional-histogram
// extension Section 3.2 defers. It avoids the between-predicate independence
// approximation that multiplying two 1-D oracles would introduce.
type oracle2D struct {
	child, parent *histogram.Hist2D
}

func (o oracle2D) multiplicity(vals []int64) float64 {
	return histogram.Multiplicity2D(o.child, o.parent, vals[0], vals[1])
}

// consumer absorbs the streamed (value, multiplicity) pairs of Sweep's step 3
// and produces the final histogram. Parallel scans never call add on a shared
// consumer: each scan partition streams into a private shard obtained from
// fork, and completed shards are folded back with merge.
type consumer interface {
	add(v int64, m float64)
	// result returns the histogram (with nb buckets, built by method) and the
	// total streamed mass (the estimated cardinality of the generating
	// query's result).
	result(nb int, method histogram.Method) (*histogram.Histogram, float64, error)
	// fork returns a private shard consumer for scan partition i. Shard seeds
	// are derived deterministically from the root consumer's seed and i, so a
	// scan partitioned the same way always produces the same shards. fork only
	// reads immutable state and is safe to call concurrently (for distinct i).
	fork(i int) (consumer, error)
	// merge folds a completed shard produced by fork back into the receiver.
	// Callers must merge shards in partition order so merges that are
	// sensitive to ordering (floating-point accumulation) stay deterministic.
	merge(shard consumer) error
	// perChunk reports whether shards must be created per scan chunk and
	// merged in chunk index order — which makes the result independent of the
	// worker count, since chunk boundaries are fixed — rather than one shard
	// per worker. Exact consumers are per-chunk; sampled consumers shard per
	// worker (one reservoir per worker, deterministic for a fixed count).
	perChunk() bool
}

// sampledConsumer is Sweep's default: stochastic-rounding reservoir sampling
// (Algorithm R over the replicated stream) followed by a histogram over the
// sample, scaled to the streamed mass. Per-bucket distinct counts are
// corrected with the GEE estimator (the sampling assumption of Section 2.1).
type sampledConsumer struct {
	res  *sample.Reservoir
	mass float64
	est  sample.DistinctEstimator
	seed int64
}

func newSampledConsumer(k int, seed int64, est sample.DistinctEstimator) (*sampledConsumer, error) {
	r, err := sample.NewReservoir(k, seed)
	if err != nil {
		return nil, err
	}
	return &sampledConsumer{res: r, est: est, seed: seed}, nil
}

func (c *sampledConsumer) add(v int64, m float64) {
	if m <= 0 {
		return
	}
	c.mass += m
	c.res.AddWeighted(v, m)
}

func (c *sampledConsumer) result(nb int, method histogram.Method) (*histogram.Histogram, float64, error) {
	h, err := histogramFromSample(c.res.Sample(), c.mass, nb, method, c.est)
	return h, c.mass, err
}

func (c *sampledConsumer) fork(i int) (consumer, error) {
	return newSampledConsumer(c.res.Cap(), shardSeed(c.seed, i), c.est)
}

func (c *sampledConsumer) merge(shard consumer) error {
	s, ok := shard.(*sampledConsumer)
	if !ok {
		return fmt.Errorf("sit: cannot merge %T into sampled consumer", shard)
	}
	c.mass += s.mass
	return c.res.Merge(s.res)
}

func (c *sampledConsumer) perChunk() bool { return false }

// weightedConsumer is the weighted-reservoir variant (extension): fractional
// multiplicities are consumed directly, avoiding rounding noise.
type weightedConsumer struct {
	res  *sample.WeightedReservoir
	est  sample.DistinctEstimator
	seed int64
}

func newWeightedConsumer(k int, seed int64, est sample.DistinctEstimator) (*weightedConsumer, error) {
	r, err := sample.NewWeightedReservoir(k, seed)
	if err != nil {
		return nil, err
	}
	return &weightedConsumer{res: r, est: est, seed: seed}, nil
}

func (c *weightedConsumer) add(v int64, m float64) { c.res.Add(v, m) }

func (c *weightedConsumer) result(nb int, method histogram.Method) (*histogram.Histogram, float64, error) {
	h, err := histogramFromSample(c.res.Sample(), c.res.Mass(), nb, method, c.est)
	return h, c.res.Mass(), err
}

func (c *weightedConsumer) fork(i int) (consumer, error) {
	return newWeightedConsumer(c.res.Cap(), shardSeed(c.seed, i), c.est)
}

func (c *weightedConsumer) merge(shard consumer) error {
	s, ok := shard.(*weightedConsumer)
	if !ok {
		return fmt.Errorf("sit: cannot merge %T into weighted consumer", shard)
	}
	return c.res.Merge(s.res)
}

func (c *weightedConsumer) perChunk() bool { return false }

// histogramFromSample builds a histogram over sample values, scales it to the
// full stream mass, and replaces per-bucket distinct counts with estimates
// (GEE by default) against the scaled bucket populations.
func histogramFromSample(vals []int64, mass float64, nb int, method histogram.Method, est sample.DistinctEstimator) (*histogram.Histogram, error) {
	h, err := histogram.FromValues(vals, nb, method)
	if err != nil {
		return nil, err
	}
	if h.NumBuckets() == 0 || mass <= 0 {
		return &histogram.Histogram{}, nil
	}
	scaled := h.ScaleTo(mass)
	// Buckets are sorted and disjoint, so one sorted copy of the sample and a
	// single merge pass assign every value to its bucket; the estimators are
	// frequency-based and insensitive to the order of their input.
	sorted := make([]int64, len(vals))
	copy(sorted, vals)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	next := 0
	for i := range scaled.Buckets {
		b := &scaled.Buckets[i]
		for next < len(sorted) && sorted[next] < b.Lo {
			next++
		}
		end := next
		for end < len(sorted) && sorted[end] <= b.Hi {
			end++
		}
		d, err := sample.EstimateDistinctWith(est, sorted[next:end], int64(b.Freq+0.5))
		if err != nil {
			return nil, err
		}
		next = end
		if d > b.Width() {
			d = b.Width()
		}
		if d > b.Freq {
			d = b.Freq
		}
		b.Distinct = d
	}
	return scaled, nil
}

// fullConsumer aggregates the whole stream exactly as a value -> total weight
// map (SweepFull and SweepExact: no sampling assumption). This mirrors the
// paper's "materialize the temporary table" with the aggregation done on the
// fly, which is equivalent for histogram construction.
type fullConsumer struct {
	weights map[int64]float64
	mass    float64
}

func newFullConsumer() *fullConsumer {
	return &fullConsumer{weights: map[int64]float64{}}
}

func (c *fullConsumer) add(v int64, m float64) {
	if m <= 0 {
		return
	}
	c.weights[v] += m
	c.mass += m
}

func (c *fullConsumer) result(nb int, method histogram.Method) (*histogram.Histogram, float64, error) {
	h, err := histogram.FromPairs(histogram.TallyMap(c.weights), nb, method)
	return h, c.mass, err
}

func (c *fullConsumer) fork(int) (consumer, error) { return newFullConsumer(), nil }

func (c *fullConsumer) merge(shard consumer) error {
	s, ok := shard.(*fullConsumer)
	if !ok {
		return fmt.Errorf("sit: cannot merge %T into full consumer", shard)
	}
	for v, w := range s.weights { //statcheck:ignore maprange keyed float transfer, each sum is per-key independent
		c.weights[v] += w
	}
	c.mass += s.mass
	return nil
}

// perChunk is true: exact consumers aggregate each fixed-size chunk into its
// own partial weight map and merge the partials in chunk order, so the final
// per-value sums group identically at every parallelism level (bit-identical
// SweepFull/SweepExact output).
func (c *fullConsumer) perChunk() bool { return true }

// resetShard clears the consumer for reuse as the next chunk's scratch shard,
// keeping the map's allocated buckets (serial scans merge after every chunk,
// so one scratch per job suffices instead of one allocation per chunk).
func (c *fullConsumer) resetShard() {
	clear(c.weights)
	c.mass = 0
}

// jobPred is one join edge of the scan: the scanned table's attribute(s)
// and the oracle that answers multiplicities for them. cols caches the
// attributes' integer offsets into the shared scan's column set (resolved
// once per scan by resolveColumns), so the per-tuple loop never touches a
// name map. bo is the oracle's batched interface when the predicate can be
// probed per chunk (single attribute and the oracle supports it); nil forces
// the per-row fallback (2-D oracles).
type jobPred struct {
	attrs []string
	o     oracle
	bo    batchOracle
	cols  []int
}

// newJobPred wires a predicate, enabling batched probing for single-attribute
// predicates whose oracle implements batchOracle.
func newJobPred(attrs []string, o oracle) jobPred {
	p := jobPred{attrs: attrs, o: o}
	if bo, ok := o.(batchOracle); ok && len(attrs) == 1 {
		p.bo = bo
	}
	return p
}

// scanJob is one SIT produced by a shared sequential scan (Section 4's
// "sharing the same sequential scan to build more than one SIT"): the target
// attribute whose values are streamed, the per-predicate oracles whose
// multiplicities are multiplied (acyclic multi-child case, Section 3.2), and
// the consumer that absorbs the stream. targetCol is the target attribute's
// resolved column offset.
type scanJob struct {
	targetAttr string
	targetCol  int
	preds      []jobPred
	cons       consumer
}
