package sit

import (
	"github.com/sitstats/sits/internal/btree"
	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/sample"
)

// oracle is the m-Oracle of Section 3.1: it estimates (or computes) the
// multiplicity of the scanned tuple's join-attribute value(s) in the joined
// relation. Single-predicate oracles receive one value; the 2-D oracle for
// double-predicate edges receives the tuple's pair.
type oracle interface {
	multiplicity(vals []int64) float64
}

// histOracle implements getMultiplicity of Section 3.1.1: the expected
// multiplicity under the containment assumption, computed from the histogram
// over the joined side (child: a base histogram or an intermediate SIT) and
// the base histogram over the scanned attribute (parent).
type histOracle struct {
	child, parent *histogram.Histogram
}

func (o histOracle) multiplicity(vals []int64) float64 {
	return histogram.ContainmentMultiplicity(o.child, o.parent, vals[0])
}

// indexOracle implements the SweepIndex m-Oracle: an exact duplicate count
// from a B+tree over the joined base table's attribute.
type indexOracle struct {
	idx *btree.Tree
}

func (o indexOracle) multiplicity(vals []int64) float64 {
	return float64(o.idx.Count(vals[0]))
}

// oracle2D answers double-predicate edges from two-dimensional histograms
// over the child and parent attribute pairs — the multidimensional-histogram
// extension Section 3.2 defers. It avoids the between-predicate independence
// approximation that multiplying two 1-D oracles would introduce.
type oracle2D struct {
	child, parent *histogram.Hist2D
}

func (o oracle2D) multiplicity(vals []int64) float64 {
	return histogram.Multiplicity2D(o.child, o.parent, vals[0], vals[1])
}

// consumer absorbs the streamed (value, multiplicity) pairs of Sweep's step 3
// and produces the final histogram.
type consumer interface {
	add(v int64, m float64)
	// result returns the histogram (with nb buckets, built by method) and the
	// total streamed mass (the estimated cardinality of the generating
	// query's result).
	result(nb int, method histogram.Method) (*histogram.Histogram, float64, error)
}

// sampledConsumer is Sweep's default: stochastic-rounding reservoir sampling
// (Algorithm R over the replicated stream) followed by a histogram over the
// sample, scaled to the streamed mass. Per-bucket distinct counts are
// corrected with the GEE estimator (the sampling assumption of Section 2.1).
type sampledConsumer struct {
	res  *sample.Reservoir
	mass float64
	est  sample.DistinctEstimator
}

func newSampledConsumer(k int, seed int64, est sample.DistinctEstimator) (*sampledConsumer, error) {
	r, err := sample.NewReservoir(k, seed)
	if err != nil {
		return nil, err
	}
	return &sampledConsumer{res: r, est: est}, nil
}

func (c *sampledConsumer) add(v int64, m float64) {
	if m <= 0 {
		return
	}
	c.mass += m
	c.res.AddWeighted(v, m)
}

func (c *sampledConsumer) result(nb int, method histogram.Method) (*histogram.Histogram, float64, error) {
	h, err := histogramFromSample(c.res.Sample(), c.mass, nb, method, c.est)
	return h, c.mass, err
}

// weightedConsumer is the weighted-reservoir variant (extension): fractional
// multiplicities are consumed directly, avoiding rounding noise.
type weightedConsumer struct {
	res *sample.WeightedReservoir
	est sample.DistinctEstimator
}

func newWeightedConsumer(k int, seed int64, est sample.DistinctEstimator) (*weightedConsumer, error) {
	r, err := sample.NewWeightedReservoir(k, seed)
	if err != nil {
		return nil, err
	}
	return &weightedConsumer{res: r, est: est}, nil
}

func (c *weightedConsumer) add(v int64, m float64) { c.res.Add(v, m) }

func (c *weightedConsumer) result(nb int, method histogram.Method) (*histogram.Histogram, float64, error) {
	h, err := histogramFromSample(c.res.Sample(), c.res.Mass(), nb, method, c.est)
	return h, c.res.Mass(), err
}

// histogramFromSample builds a histogram over sample values, scales it to the
// full stream mass, and replaces per-bucket distinct counts with estimates
// (GEE by default) against the scaled bucket populations.
func histogramFromSample(vals []int64, mass float64, nb int, method histogram.Method, est sample.DistinctEstimator) (*histogram.Histogram, error) {
	h, err := histogram.FromValues(vals, nb, method)
	if err != nil {
		return nil, err
	}
	if h.NumBuckets() == 0 || mass <= 0 {
		return &histogram.Histogram{}, nil
	}
	scaled := h.ScaleTo(mass)
	for i := range scaled.Buckets {
		b := &scaled.Buckets[i]
		var inBucket []int64
		for _, v := range vals {
			if b.Contains(v) {
				inBucket = append(inBucket, v)
			}
		}
		d, err := sample.EstimateDistinctWith(est, inBucket, int64(b.Freq+0.5))
		if err != nil {
			return nil, err
		}
		if d > b.Width() {
			d = b.Width()
		}
		if d > b.Freq {
			d = b.Freq
		}
		b.Distinct = d
	}
	return scaled, nil
}

// fullConsumer aggregates the whole stream exactly as a value -> total weight
// map (SweepFull and SweepExact: no sampling assumption). This mirrors the
// paper's "materialize the temporary table" with the aggregation done on the
// fly, which is equivalent for histogram construction.
type fullConsumer struct {
	weights map[int64]float64
	mass    float64
}

func newFullConsumer() *fullConsumer {
	return &fullConsumer{weights: map[int64]float64{}}
}

func (c *fullConsumer) add(v int64, m float64) {
	if m <= 0 {
		return
	}
	c.weights[v] += m
	c.mass += m
}

func (c *fullConsumer) result(nb int, method histogram.Method) (*histogram.Histogram, float64, error) {
	h, err := histogram.FromPairs(histogram.TallyMap(c.weights), nb, method)
	return h, c.mass, err
}

// jobPred is one join edge of the scan: the scanned table's attribute(s)
// and the oracle that answers multiplicities for them.
type jobPred struct {
	attrs []string
	o     oracle
}

// scanJob is one SIT produced by a shared sequential scan (Section 4's
// "sharing the same sequential scan to build more than one SIT"): the target
// attribute whose values are streamed, the per-predicate oracles whose
// multiplicities are multiplied (acyclic multi-child case, Section 3.2), and
// the consumer that absorbs the stream.
type scanJob struct {
	targetAttr string
	preds      []jobPred
	cons       consumer
}

// runSharedScan performs one sequential scan over the table and feeds every
// job. Per tuple and job, the multiplicity is the product of the per-
// predicate oracle answers; the job's target value is streamed with that
// multiplicity.
func runSharedScan(t *data.Table, jobs []*scanJob) error {
	// Collect the union of required columns.
	colIdx := map[string]int{}
	var cols []string
	need := func(c string) {
		if _, ok := colIdx[c]; !ok {
			colIdx[c] = len(cols)
			cols = append(cols, c)
		}
	}
	for _, j := range jobs {
		need(j.targetAttr)
		for _, p := range j.preds {
			for _, a := range p.attrs {
				need(a)
			}
		}
	}
	sc, err := t.Scan(cols...)
	if err != nil {
		return err
	}
	vbuf := make([]int64, 4)
	for sc.Next() {
		row := sc.Row()
		for _, j := range jobs {
			m := 1.0
			for _, p := range j.preds {
				vals := vbuf[:0]
				for _, a := range p.attrs {
					vals = append(vals, row[colIdx[a]])
				}
				m *= p.o.multiplicity(vals)
				if m == 0 {
					break
				}
			}
			if m > 0 {
				j.cons.add(row[colIdx[j.targetAttr]], m)
			}
		}
	}
	return nil
}
