package sit

import (
	"bytes"
	"math"
	"testing"

	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/exec"
	"github.com/sitstats/sits/internal/query"
)

func TestCheckStaleness(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	spec := singleJoinSpec(t)
	s, err := b.Build(spec, SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.CheckStaleness(s, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Stale {
		t.Errorf("fresh SIT reported stale: %+v", st)
	}
	// Grow R by 50%: past the 20% threshold.
	r := cat.MustTable("R")
	for i := 0; i < 3; i++ {
		r.AppendRow(5)
	}
	st, err = b.CheckStaleness(s, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Stale {
		t.Errorf("grown base table not reported stale: %+v", st)
	}
	if g := st.Growth["R"]; math.Abs(g-0.5) > 1e-9 {
		t.Errorf("R growth = %v, want 0.5", g)
	}
	if g := st.Growth["S"]; g != 0 {
		t.Errorf("S growth = %v, want 0", g)
	}
	// Validation.
	if _, err := b.CheckStaleness(nil, 0.2); err == nil {
		t.Error("nil SIT: want error")
	}
	if _, err := b.CheckStaleness(s, -1); err == nil {
		t.Error("negative threshold: want error")
	}
}

func TestLoadedSITsReportStale(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	s, err := b.Build(singleJoinSpec(t), SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSITs(&buf, []*SIT{s}); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSITs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.CheckStaleness(loaded[0], 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Stale {
		t.Error("SIT without a snapshot should report stale (conservative)")
	}
}

func TestRefreshStale(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	spec := singleJoinSpec(t)
	s, err := b.Build(spec, SweepExact)
	if err != nil {
		t.Fatal(err)
	}
	before := s.EstimatedCard // exact: 9
	// Append matching rows: the true join grows.
	r := cat.MustTable("R")
	for i := 0; i < 6; i++ {
		r.AppendRow(4) // joins the S row (4, 40)
	}
	refreshed, rebuilt, err := b.RefreshStale([]*SIT{s}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 1 {
		t.Fatalf("rebuilt = %v", rebuilt)
	}
	if refreshed[0] == s {
		t.Fatal("stale SIT not rebuilt")
	}
	if refreshed[0].EstimatedCard != before+6 {
		t.Errorf("refreshed cardinality = %v, want %v", refreshed[0].EstimatedCard, before+6)
	}
	// A fresh SIT passes through untouched and nothing is rebuilt again.
	again, rebuilt2, err := b.RefreshStale(refreshed, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt2) != 0 || again[0] != refreshed[0] {
		t.Errorf("second refresh rebuilt %v", rebuilt2)
	}
}

func TestRefreshStaleInvalidatesSharedIntermediates(t *testing.T) {
	cfg := datagen.DefaultChainConfig()
	cfg.Rows = []int{300, 250, 200, 150}
	cfg.Domain = 50
	cat, err := datagen.ChainDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t, cat)
	e3, err := query.Chain([]string{"T1", "T2", "T3"}, []string{"jnext", "jnext"}, []string{"jprev", "jprev"})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := query.NewSITSpec("T3", "a", e3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Build(spec, SweepExact)
	if err != nil {
		t.Fatal(err)
	}
	// Grow T1 substantially: the intermediate SIT(T2.jnext | T1⋈T2) is stale.
	t1 := cat.MustTable("T1")
	n := t1.NumRows()
	jn := t1.MustColumn("jnext")
	for i := 0; i < n; i++ {
		t1.AppendRow(jn[i%len(jn)], 1, 1, 1)
	}
	refreshed, rebuilt, err := b.RefreshStale([]*SIT{s}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 1 {
		t.Fatalf("rebuilt = %v", rebuilt)
	}
	// SweepExact is exact: the refreshed cardinality must match the new truth.
	truth, err := exec.Cardinality(cat, e3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(refreshed[0].EstimatedCard-float64(truth)) > 1e-6*float64(truth) {
		t.Errorf("refreshed card %v != true %d (stale intermediate reused?)",
			refreshed[0].EstimatedCard, truth)
	}
}
