package sit

import (
	"fmt"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/exec"
	"github.com/sitstats/sits/internal/mem"
)

// This file is the chunked, parallel execution engine behind the Sweep
// family. The paper's cost argument (Section 4) is that one sequential scan
// amortizes over many SITs; the engine additionally spreads that scan over
// the machine: the table's fixed chunk grid is split into contiguous
// windows, one per fork-join morsel on the shared exec pool; every morsel
// streams its window through a private data.ChunkReader (zero-copy
// sub-slices for in-memory tables, on-demand block decode for segment-backed
// ones) into private consumer shards, and the shards are merged back in
// deterministic partition order. Per-worker probe scratch and segment decode
// buffers are accounted against the builder's memory governor through one
// pooled grant, so budget Peak reflects the scan's real footprint at high
// parallelism.
//
// Determinism contract:
//
//   - Exact consumers (SweepFull, SweepExact) shard per chunk and merge in
//     chunk index order. Chunk boundaries depend only on the table size, so
//     the result is bit-identical at every parallelism level, including the
//     serial one.
//   - Sampled consumers (Sweep, SweepIndex) shard per worker with seeds
//     derived from the builder's seed sequence, so results are deterministic
//     for a fixed parallelism level; a single worker feeds the root consumer
//     directly and reproduces the original serial implementation bit for bit.

// scanChunkRows is the fixed chunk granularity of shared scans. It is
// independent of the worker count so that chunk boundaries — and therefore
// the per-chunk partial aggregations of the exact consumers — are identical
// at every parallelism level.
const scanChunkRows = 4096

// shardSeed derives the deterministic seed of shard i from a consumer's base
// seed. The splitmix64-style mixing keeps neighbouring shards' generator
// streams uncorrelated.
func shardSeed(base int64, i int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// resolveColumns collects the union of the jobs' required columns and caches
// each job's target and predicate attribute offsets into that union, so the
// per-tuple loops index column slices directly instead of consulting a name
// map per value.
func resolveColumns(jobs []*scanJob) []string {
	colIdx := map[string]int{}
	var cols []string
	need := func(c string) int {
		if i, ok := colIdx[c]; ok {
			return i
		}
		colIdx[c] = len(cols)
		cols = append(cols, c)
		return len(cols) - 1
	}
	for _, j := range jobs {
		j.targetCol = need(j.targetAttr)
		for pi := range j.preds {
			p := &j.preds[pi]
			p.cols = p.cols[:0]
			for _, a := range p.attrs {
				p.cols = append(p.cols, need(a))
			}
		}
	}
	return cols
}

// probeScratch holds the per-scanner buffers reused across chunks: m
// accumulates the per-row predicate product, tmp receives one predicate's
// batched answers before they are folded into m, and the remaining slices
// back the radix argsort and answer vectors of the batched m-Oracles. One
// scratch lives per scanning goroutine and is handed down through every
// batched probe, so feedChunk allocates nothing per chunk. The oracles
// themselves are shared across workers and must stay stateless — scratch is
// always caller-supplied, never stored on an oracle.
//
//statcheck:scratch
type probeScratch struct {
	// grant accounts the scratch buffers against the builder's memory
	// governor; it is the scan's single pooled grant, shared (atomically) by
	// every worker's scratch. nil means un-budgeted.
	grant *mem.Grant

	m, tmp []float64
	// radix argsort buffers (sortedProbe): biased keys and permutation plus
	// their ping-pong partners, and the decoded ascending values.
	keys, keys2 []uint64
	perm, perm2 []int32
	sorted      []int64
	// answer buffers for multiplicityBatch: per-sorted-probe multiplicities
	// (histogram oracles) and duplicate counts (index oracles).
	f64 []float64
	i64 []int64
}

//statcheck:hot
func (s *probeScratch) grow(n int) {
	if cap(s.m) < n {
		// m and tmp: 2 float64 slices, net of the buffers being replaced.
		s.grant.Force(16 * int64(n-cap(s.m)))
		s.m = make([]float64, n)
		s.tmp = make([]float64, n)
	}
	s.m = s.m[:n]
	s.tmp = s.tmp[:n]
}

// growProbe sizes the argsort and answer buffers for an n-element probe
// vector; called by sortedProbe so direct multiplicityBatch callers need no
// setup beyond a zero-value scratch.
//
//statcheck:hot
func (s *probeScratch) growProbe(n int) {
	if cap(s.keys) < n {
		// keys/keys2/sorted/f64/i64 at 8 B and perm/perm2 at 4 B per element,
		// net of the buffers being replaced.
		s.grant.Force(48 * int64(n-cap(s.keys)))
		s.keys = make([]uint64, n)
		s.keys2 = make([]uint64, n)
		s.perm = make([]int32, n)
		s.perm2 = make([]int32, n)
		s.sorted = make([]int64, n)
		s.f64 = make([]float64, n)
		s.i64 = make([]int64, n)
	}
	s.keys = s.keys[:n]
	s.keys2 = s.keys2[:n]
	s.perm = s.perm[:n]
	s.perm2 = s.perm2[:n]
	s.sorted = s.sorted[:n]
	s.f64 = s.f64[:n]
	s.i64 = s.i64[:n]
}

// feedChunk streams one chunk into the given per-job consumers (dst[i]
// absorbs jobs[i]'s stream). Per tuple and job, the multiplicity is the
// product of the per-predicate oracle answers; the job's target value is
// streamed with that multiplicity.
//
// Predicates whose oracle implements batchOracle are probed once per chunk
// over the whole column sub-slice instead of once per row; 2-D oracles fall
// back to the per-row path. The per-consumer stream is unchanged: values
// arrive in ascending row order with multiplicities that are bit-identical
// to the row-at-a-time computation (the product is accumulated in the same
// predicate order, 1*x == x, and rows whose running product hits zero are
// skipped in both forms).
//
//statcheck:hot
func feedChunk(ch data.Chunk, jobs []*scanJob, dst []consumer, s *probeScratch) {
	n := ch.Len()
	s.grow(n)
	var vbuf [4]int64
	for ji, j := range jobs {
		m := s.m
		// Single batchable predicate: probe straight into m.
		if len(j.preds) == 1 && j.preds[0].bo != nil {
			j.preds[0].bo.multiplicityBatch(ch.Cols[j.preds[0].cols[0]], m, s)
		} else {
			for r := range m {
				m[r] = 1
			}
			for pi := range j.preds {
				p := &j.preds[pi]
				if p.bo != nil {
					p.bo.multiplicityBatch(ch.Cols[p.cols[0]], s.tmp, s)
					for r := range m {
						m[r] *= s.tmp[r]
					}
					continue
				}
				for r := 0; r < n; r++ {
					if m[r] == 0 {
						continue
					}
					vals := vbuf[:0]
					for _, c := range p.cols {
						vals = append(vals, ch.Cols[c][r])
					}
					m[r] *= p.o.multiplicity(vals)
				}
			}
		}
		target := ch.Cols[j.targetCol]
		cons := dst[ji]
		for r := 0; r < n; r++ {
			if mv := m[r]; mv > 0 {
				cons.add(target[r], mv)
			}
		}
	}
}

// runSharedScan performs one sequential scan over the table and feeds every
// job, using up to parallelism pool workers (0 = GOMAXPROCS; the worker
// count is additionally capped by the number of chunks, so small tables run
// serially). Scratch is un-budgeted; see runSharedScanGov.
func runSharedScan(t *data.Table, jobs []*scanJob, parallelism int) error {
	return runSharedScanGov(t, jobs, parallelism, nil)
}

// runSharedScanGov is runSharedScan with the per-worker probe scratch
// accounted against gov through one pooled grant, released when the scan
// completes. A nil governor means unlimited.
//
// The scan streams the table through data.ChunkReader windows instead of an
// eager chunk array, so a segment-backed table is never materialized: each
// worker decodes blocks into its own reader's scratch (accounted on the same
// pooled grant) as it goes. Chunk Seq numbers come from the table's global
// chunk grid, so the Seq-ordered merge — and the results — are identical
// between in-memory and segment-backed tables at every parallelism.
func runSharedScanGov(t *data.Table, jobs []*scanJob, parallelism int, gov *mem.Governor) error {
	if len(jobs) == 0 {
		return nil
	}
	cols := resolveColumns(jobs)
	for _, c := range cols {
		if !t.HasColumn(c) {
			return fmt.Errorf("sit: table %q has no column %q", t.Name(), c)
		}
	}
	nchunks := t.NumChunks(scanChunkRows)
	if nchunks == 0 {
		return nil
	}
	grant := gov.Grant("scan-scratch")
	defer grant.Close()
	workers := exec.ResolveParallelism(parallelism)
	if workers > nchunks {
		workers = nchunks
	}
	if workers <= 1 {
		return scanSerial(t, cols, nchunks, jobs, grant)
	}
	return scanParallel(t, cols, nchunks, jobs, workers, grant)
}

// shardReuser is implemented by shard consumers that can be cleared and fed
// again, letting the serial scan reuse one scratch shard per job instead of
// allocating one per chunk.
type shardReuser interface {
	resetShard()
}

// scanSerial feeds every chunk in order from the calling goroutine. Sampled
// consumers receive the rows directly — exactly the original single-threaded
// behavior — while exact consumers still aggregate per chunk and merge in
// chunk order, so the serial result matches the parallel one bit for bit.
func scanSerial(t *data.Table, cols []string, nchunks int, jobs []*scanJob, grant *mem.Grant) error {
	rd, err := t.OpenChunksSpec(scanChunkRows, data.ScanSpec{Grant: grant}, cols...)
	if err != nil {
		return err
	}
	defer rd.Close() //statcheck:ignore droppederr read-only reader; scan errors surface from Next
	dst := make([]consumer, len(jobs))
	chunked := false
	for i, j := range jobs {
		dst[i] = j.cons
		if j.cons.perChunk() {
			chunked = true
		}
	}
	scratch := probeScratch{grant: grant}
	// With a single chunk the chunk-order fold degenerates: merging one
	// partial into an empty root adds 0 + x per value, which is bit-identical
	// to accumulating in the root directly, so skip the scratch shards.
	if !chunked || nchunks == 1 {
		for {
			ch, ok, err := rd.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			feedChunk(ch, jobs, dst, &scratch)
		}
	}
	first := true
	for {
		ch, ok, err := rd.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		for i, j := range jobs {
			if !j.cons.perChunk() {
				continue
			}
			if !first {
				if r, ok := dst[i].(shardReuser); ok {
					r.resetShard()
					continue
				}
			}
			shard, err := j.cons.fork(ch.Seq)
			if err != nil {
				return err
			}
			dst[i] = shard
		}
		first = false
		feedChunk(ch, jobs, dst, &scratch)
		for i, j := range jobs {
			if !j.cons.perChunk() {
				continue
			}
			if err := j.cons.merge(dst[i]); err != nil {
				return err
			}
		}
	}
}

// scanParallel partitions the chunk grid into contiguous windows, one per
// worker, streams each window through a private ChunkReader as a fork-join
// morsel on the shared exec pool into private consumer shards, and merges
// the shards back in partition order (chunk Seq order for per-chunk
// consumers, worker order otherwise). Window boundaries depend only on
// (nchunks, workers), so the merge order — and for exact consumers the
// result itself — is independent of pool scheduling.
func scanParallel(t *data.Table, cols []string, nchunks int, jobs []*scanJob, workers int, grant *mem.Grant) error {
	chunkShards := make([][]consumer, len(jobs))
	workerShards := make([][]consumer, len(jobs))
	for ji, j := range jobs {
		if j.cons.perChunk() {
			chunkShards[ji] = make([]consumer, nchunks)
		} else {
			workerShards[ji] = make([]consumer, workers)
		}
	}
	errs := make([]error, workers)
	exec.Default().ForkJoinWidth(workers, workers, func(w int) {
		lo, hi := w*nchunks/workers, (w+1)*nchunks/workers
		if lo == hi {
			return
		}
		rd, err := t.OpenChunksSpec(scanChunkRows, data.ScanSpec{Grant: grant, Lo: lo, Hi: hi}, cols...)
		if err != nil {
			errs[w] = err
			return
		}
		defer rd.Close() //statcheck:ignore droppederr read-only reader; scan errors surface from Next
		dst := make([]consumer, len(jobs))
		scratch := probeScratch{grant: grant}
		for ji, j := range jobs {
			if j.cons.perChunk() {
				continue
			}
			shard, err := j.cons.fork(w)
			if err != nil {
				errs[w] = err
				return
			}
			workerShards[ji][w] = shard
			dst[ji] = shard
		}
		for {
			ch, ok, err := rd.Next()
			if err != nil {
				errs[w] = err
				return
			}
			if !ok {
				return
			}
			for ji, j := range jobs {
				if !j.cons.perChunk() {
					continue
				}
				shard, err := j.cons.fork(ch.Seq)
				if err != nil {
					errs[w] = err
					return
				}
				chunkShards[ji][ch.Seq] = shard
				dst[ji] = shard
			}
			feedChunk(ch, jobs, dst, &scratch)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for ji, j := range jobs {
		shards := workerShards[ji]
		if j.cons.perChunk() {
			shards = chunkShards[ji]
		}
		for _, s := range shards {
			if err := j.cons.merge(s); err != nil {
				return err
			}
		}
	}
	return nil
}
