package sit

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	spec := singleJoinSpec(t)
	var sits []*SIT
	for _, m := range []Method{Sweep, SweepFull, HistSIT} {
		s, err := b.Build(spec, m)
		if err != nil {
			t.Fatal(err)
		}
		sits = append(sits, s)
	}
	var buf bytes.Buffer
	if err := SaveSITs(&buf, sits); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSITs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(sits) {
		t.Fatalf("loaded %d SITs, want %d", len(back), len(sits))
	}
	for i := range sits {
		if back[i].Spec.Canonical() != sits[i].Spec.Canonical() {
			t.Errorf("SIT %d spec changed: %s vs %s", i, back[i].Spec.String(), sits[i].Spec.String())
		}
		if back[i].Method != sits[i].Method {
			t.Errorf("SIT %d method changed: %v vs %v", i, back[i].Method, sits[i].Method)
		}
		if back[i].EstimatedCard != sits[i].EstimatedCard {
			t.Errorf("SIT %d cardinality changed", i)
		}
		if !reflect.DeepEqual(back[i].Hist.Buckets, sits[i].Hist.Buckets) {
			t.Errorf("SIT %d histogram changed", i)
		}
	}
}

func TestSaveLoadErrors(t *testing.T) {
	if err := SaveSITs(&bytes.Buffer{}, []*SIT{nil}); err == nil {
		t.Error("nil SIT: want error")
	}
	if _, err := LoadSITs(strings.NewReader("not json")); err == nil {
		t.Error("garbage: want error")
	}
	if _, err := LoadSITs(strings.NewReader(`{"version":9,"sits":[]}`)); err == nil {
		t.Error("bad version: want error")
	}
	bad := `{"version":1,"sits":[{"spec":"nonsense","method":"Sweep","estimated_card":1,"histogram":{"version":1,"buckets":[]}}]}`
	if _, err := LoadSITs(strings.NewReader(bad)); err == nil {
		t.Error("unparseable spec: want error")
	}
	bad = `{"version":1,"sits":[{"spec":"S.a | R JOIN S ON R.x = S.y","method":"Bogus","estimated_card":1,"histogram":{"version":1,"buckets":[]}}]}`
	if _, err := LoadSITs(strings.NewReader(bad)); err == nil {
		t.Error("unknown method: want error")
	}
	bad = `{"version":1,"sits":[{"spec":"S.a | R JOIN S ON R.x = S.y","method":"Sweep","estimated_card":-5,"histogram":{"version":1,"buckets":[]}}]}`
	if _, err := LoadSITs(strings.NewReader(bad)); err == nil {
		t.Error("negative cardinality: want error")
	}
}

func TestAdoptCached(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	spec := singleJoinSpec(t)
	s, err := b.Build(spec, SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveSITs(&buf, []*SIT{s}); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSITs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b2 := newBuilder(t, cat)
	if err := b2.AdoptCached(loaded); err != nil {
		t.Fatal(err)
	}
	got, err := b2.Build(spec, SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	if got != loaded[0] {
		t.Error("Build did not return the adopted SIT")
	}
	if err := b2.AdoptCached([]*SIT{nil}); err == nil {
		t.Error("adopt nil: want error")
	}
}

func TestParseMethodRoundTrip(t *testing.T) {
	for _, m := range []Method{HistSIT, Sweep, SweepIndex, SweepFull, SweepExact, Materialize} {
		got, err := parseMethod(m.String())
		if err != nil || got != m {
			t.Errorf("parseMethod(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := parseMethod("nope"); err == nil {
		t.Error("unknown method: want error")
	}
}
