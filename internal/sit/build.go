package sit

import (
	"fmt"

	"github.com/sitstats/sits/internal/exec"
	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/query"
)

// Build creates a SIT for the spec with the given method. Base-table specs
// return the plain base histogram regardless of method. Results (including
// every intermediate SIT of multi-join expressions) are cached per method, so
// subsequent builds that share sub-expressions reuse earlier scans.
func (b *Builder) Build(spec query.SITSpec, m Method) (*SIT, error) {
	if cached, ok := b.Cached(spec, m); ok {
		return cached, nil
	}
	s, err := b.build(spec, m, b.cfg.Buckets)
	if err != nil {
		return nil, err
	}
	b.sits[cacheKey(spec, m)] = s
	return s, nil
}

// BuildGroup creates several SITs whose join-trees are rooted at the same
// table, sharing a single sequential scan over that table (the scan sharing
// of Section 4, Example 3). Intermediate SITs required by the group are built
// (or fetched from cache) first; they may scan other tables. Base-table specs
// are not allowed in a group.
func (b *Builder) BuildGroup(specs []query.SITSpec, m Method) ([]*SIT, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	root := specs[0].Table
	for _, s := range specs {
		if s.IsBase() {
			return nil, fmt.Errorf("sit: BuildGroup got base-table spec %s", s.String())
		}
		if s.Table != root {
			return nil, fmt.Errorf("sit: BuildGroup specs must share the root table: %q vs %q", root, s.Table)
		}
	}
	if m == HistSIT || m == Materialize {
		// These methods do not scan, so there is nothing to share.
		out := make([]*SIT, len(specs))
		for i, s := range specs {
			sit, err := b.Build(s, m)
			if err != nil {
				return nil, err
			}
			out[i] = sit
		}
		return out, nil
	}
	out := make([]*SIT, len(specs))
	var jobs []*scanJob
	var jobSpecs []query.SITSpec
	for i, s := range specs {
		if cached, ok := b.Cached(s, m); ok {
			out[i] = cached
			continue
		}
		job, err := b.prepareJob(s, m, b.cfg.Buckets)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
		jobSpecs = append(jobSpecs, s)
	}
	if len(jobs) > 0 {
		t, err := b.cat.Table(root)
		if err != nil {
			return nil, err
		}
		if err := runSharedScanGov(t, jobs, b.cfg.Parallelism, b.gov); err != nil {
			return nil, err
		}
	}
	ji := 0
	for i := range specs {
		if out[i] != nil {
			continue
		}
		s, err := b.finishJob(jobSpecs[ji], m, jobs[ji], b.cfg.Buckets)
		if err != nil {
			return nil, err
		}
		b.sits[cacheKey(specs[i], m)] = s
		out[i] = s
		ji++
	}
	return out, nil
}

// build dispatches a single (uncached) SIT construction. nb is the bucket
// budget for this SIT; intermediate SITs of exact methods use an unbounded
// budget so exactness is preserved through the recursion.
func (b *Builder) build(spec query.SITSpec, m Method, nb int) (*SIT, error) {
	if spec.IsBase() {
		h, err := b.baseHistogramN(spec.Table, spec.Attr, nb)
		if err != nil {
			return nil, err
		}
		return b.stamp(&SIT{Spec: spec, Hist: h, Method: m, EstimatedCard: h.TotalFreq()})
	}
	if !spec.Expr.IsAcyclic() {
		return nil, fmt.Errorf("sit: generating query %q is cyclic; only acyclic-join queries are supported", spec.Expr.String())
	}
	switch m {
	case HistSIT:
		return b.histSIT(spec)
	case Materialize:
		return b.materializeSIT(spec, nb)
	case Sweep, SweepIndex, SweepFull, SweepExact:
		job, err := b.prepareJob(spec, m, nb)
		if err != nil {
			return nil, err
		}
		t, err := b.cat.Table(spec.Table)
		if err != nil {
			return nil, err
		}
		if err := runSharedScanGov(t, []*scanJob{job}, b.cfg.Parallelism, b.gov); err != nil {
			return nil, err
		}
		return b.finishJob(spec, m, job, nb)
	default:
		return nil, fmt.Errorf("sit: unknown creation method %v", m)
	}
}

// prepareJob builds the scan job for the root of the spec's join-tree:
// it recursively ensures every child's intermediate SIT (or base histogram /
// index) exists and wires up the per-predicate oracles and the stream
// consumer. The caller performs the actual scan (possibly shared).
func (b *Builder) prepareJob(spec query.SITSpec, m Method, nb int) (*scanJob, error) {
	jt, err := spec.Expr.JoinTree(spec.Table)
	if err != nil {
		return nil, err
	}
	job := &scanJob{targetAttr: spec.Attr}
	for _, edge := range jt.Children {
		if b.cfg.Use2DOracles && len(edge.Preds) == 2 && edge.Child.IsLeaf() &&
			(m == Sweep || m == SweepFull) {
			// Double-predicate edge to a base table: answer both predicates
			// jointly from 2-D histograms (Section 3.2's multidimensional-
			// histogram extension) instead of multiplying independent 1-D
			// oracles.
			o, err := b.oracle2DFor(jt.Table, edge)
			if err != nil {
				return nil, err
			}
			job.preds = append(job.preds, newJobPred(
				[]string{edge.Preds[0].ParentAttr, edge.Preds[1].ParentAttr}, o))
			continue
		}
		for _, pred := range edge.Preds {
			o, err := b.childOracle(jt.Table, edge.Child, pred, m)
			if err != nil {
				return nil, err
			}
			job.preds = append(job.preds, newJobPred([]string{pred.ParentAttr}, o))
		}
	}
	job.cons, err = b.newConsumer(spec.Table, m)
	if err != nil {
		return nil, err
	}
	return job, nil
}

// finishJob converts a completed scan job into a SIT.
func (b *Builder) finishJob(spec query.SITSpec, m Method, job *scanJob, nb int) (*SIT, error) {
	h, mass, err := job.cons.result(nb, b.cfg.HistMethod)
	if err != nil {
		return nil, err
	}
	return b.stamp(&SIT{Spec: spec, Hist: h, Method: m, EstimatedCard: mass})
}

// stamp records the base-table sizes the SIT was built against.
func (b *Builder) stamp(s *SIT) (*SIT, error) {
	snap, err := b.snapshotFor(s.Spec.Expr.Tables())
	if err != nil {
		return nil, err
	}
	s.builtAgainst = snap
	return s, nil
}

// childOracle returns the m-Oracle answering multiplicities of the scanned
// table's pred.ParentAttr values in the child subtree's result.
func (b *Builder) childOracle(parentTable string, child *query.JoinTree, pred query.AttrPair, m Method) (oracle, error) {
	exactMethod := m == SweepIndex || m == SweepExact
	if child.IsLeaf() && exactMethod {
		// The joined side is a base table: exact index lookups (SweepIndex).
		idx, err := b.Index(child.Table, pred.ChildAttr)
		if err != nil {
			return nil, err
		}
		return indexOracle{idx: idx}, nil
	}
	// Histogram oracle: child side histogram is either a base histogram
	// (leaf) or the child subtree's intermediate SIT, built recursively.
	childNB := b.cfg.Buckets
	if m == SweepExact {
		childNB = exactBuckets
	}
	var childHist *histogram.Histogram
	if child.IsLeaf() {
		h, err := b.baseHistogramN(child.Table, pred.ChildAttr, childNB)
		if err != nil {
			return nil, err
		}
		childHist = h
	} else {
		childExpr, err := child.SubtreeExpr()
		if err != nil {
			return nil, err
		}
		childSpec, err := query.NewSITSpec(child.Table, pred.ChildAttr, childExpr)
		if err != nil {
			return nil, err
		}
		key := cacheKey(childSpec, m)
		cached, ok := b.sits[key]
		if !ok {
			cached, err = b.build(childSpec, m, childNB)
			if err != nil {
				return nil, err
			}
			b.sits[key] = cached
		}
		childHist = cached.Hist
	}
	// The parent-side histogram participates through max(dv_child, dv_parent)
	// in the containment formula; SweepExact keeps it exact too so the oracle
	// degenerates to the exact per-value count of the child result.
	parentHist, err := b.baseHistogramN(parentTable, pred.ParentAttr, childNB)
	if err != nil {
		return nil, err
	}
	return histOracle{child: childHist, parent: parentHist}, nil
}

// oracle2DFor builds (and caches) the 2-D histograms answering a
// double-predicate edge jointly.
func (b *Builder) oracle2DFor(parentTable string, edge query.JoinTreeChild) (oracle, error) {
	child, err := b.hist2D(edge.Child.Table, edge.Preds[0].ChildAttr, edge.Preds[1].ChildAttr)
	if err != nil {
		return nil, err
	}
	parent, err := b.hist2D(parentTable, edge.Preds[0].ParentAttr, edge.Preds[1].ParentAttr)
	if err != nil {
		return nil, err
	}
	return oracle2D{child: child, parent: parent}, nil
}

// newConsumer creates the stream consumer matching the method: reservoir
// sampling for Sweep/SweepIndex, exact aggregation for SweepFull/SweepExact.
func (b *Builder) newConsumer(table string, m Method) (consumer, error) {
	switch m {
	case SweepFull, SweepExact:
		return newFullConsumer(), nil
	case Sweep, SweepIndex:
		k, err := b.SampleSize(table)
		if err != nil {
			return nil, err
		}
		if b.cfg.WeightedSampling {
			return newWeightedConsumer(k, b.nextSeed(), b.cfg.Distinct)
		}
		return newSampledConsumer(k, b.nextSeed(), b.cfg.Distinct)
	default:
		return nil, fmt.Errorf("sit: method %v does not stream", m)
	}
}

// materializeSIT executes the generating query with the executor and builds
// the histogram over the actual attribute values: the ground-truth SIT.
func (b *Builder) materializeSIT(spec query.SITSpec, nb int) (*SIT, error) {
	vals, err := exec.AttrValuesOpts(b.cat, spec.Expr, spec.Table, spec.Attr,
		exec.Options{Parallelism: b.cfg.Parallelism, BatchSize: b.cfg.BatchSize, Gov: b.gov})
	if err != nil {
		return nil, err
	}
	h, err := histogram.FromValues(vals, nb, b.cfg.HistMethod)
	if err != nil {
		return nil, err
	}
	return b.stamp(&SIT{Spec: spec, Hist: h, Method: Materialize, EstimatedCard: float64(len(vals))})
}

// histSIT implements the traditional optimizer baseline of Section 2.1: the
// SIT's histogram is obtained purely from base-table histograms by estimating
// the join cardinality bottom-up with the containment assumption and scaling
// the target attribute's base histogram to it (independence assumption). No
// data is accessed.
func (b *Builder) histSIT(spec query.SITSpec) (*SIT, error) {
	jt, err := spec.Expr.JoinTree(spec.Table)
	if err != nil {
		return nil, err
	}
	card, hist, err := b.propagate(jt, spec.Attr)
	if err != nil {
		return nil, err
	}
	return b.stamp(&SIT{Spec: spec, Hist: hist, Method: HistSIT, EstimatedCard: card})
}

// EstimateJoinCard estimates the generating expression's result cardinality
// purely from base-table histograms (the Hist-SIT propagation machinery of
// Section 2.1), without touching data or building a SIT. It is the fallback
// the cardinality-estimation wrapper uses when no SIT matches.
func (b *Builder) EstimateJoinCard(expr *query.Expr) (float64, error) {
	root := expr.Tables()[0]
	t, err := b.cat.Table(root)
	if err != nil {
		return 0, err
	}
	if expr.NumTables() == 1 {
		return float64(t.NumRows()), nil
	}
	jt, err := expr.JoinTree(root)
	if err != nil {
		return 0, err
	}
	// Any attribute of the root works: propagation scales it but the
	// cardinality estimate does not depend on which one is carried along.
	card, _, err := b.propagate(jt, t.ColumnNames()[0])
	return card, err
}

// propagate estimates the cardinality of the subtree's join result and the
// propagated histogram over node.attr in that result. The first predicate of
// each edge joins the child relation in (containment assumption, with the
// parent side scaled to the running cardinality under independence); any
// additional predicates between the same table pair are treated as
// independent filters whose selectivity multiplies the running cardinality.
func (b *Builder) propagate(node *query.JoinTree, attr string) (float64, *histogram.Histogram, error) {
	attrHist, err := b.BaseHistogram(node.Table, attr)
	if err != nil {
		return 0, nil, err
	}
	card := attrHist.TotalFreq() // |node.Table|
	for _, edge := range node.Children {
		for i, pred := range edge.Preds {
			parentHist, err := b.BaseHistogram(node.Table, pred.ParentAttr)
			if err != nil {
				return 0, nil, err
			}
			var childHist *histogram.Histogram
			if edge.Child.IsLeaf() {
				childHist, err = b.BaseHistogram(edge.Child.Table, pred.ChildAttr)
				if err != nil {
					return 0, nil, err
				}
			} else {
				_, childHist, err = b.propagate(edge.Child, pred.ChildAttr)
				if err != nil {
					return 0, nil, err
				}
			}
			if i == 0 {
				card = histogram.JoinCardinality(parentHist.ScaleTo(card), childHist)
				continue
			}
			denom := parentHist.TotalFreq() * childHist.TotalFreq()
			if denom > 0 {
				card *= histogram.JoinCardinality(parentHist, childHist) / denom
			}
		}
	}
	return card, attrHist.ScaleTo(card), nil
}
