package sit

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/exec"
	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sample"
	"github.com/sitstats/sits/internal/workload"
)

func newBuilder(t *testing.T, cat *data.Catalog) *Builder {
	t.Helper()
	b, err := NewBuilder(cat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func makeTable(t *testing.T, name string, cols []string, rows [][]int64) *data.Table {
	t.Helper()
	tab := data.MustNewTable(name, cols...)
	for _, r := range rows {
		if err := tab.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// smallJoinCatalog: R(x), S(y,a) with known join result.
func smallJoinCatalog(t *testing.T) *data.Catalog {
	t.Helper()
	cat := data.NewCatalog()
	cat.MustAdd(makeTable(t, "R", []string{"x"},
		[][]int64{{1}, {1}, {2}, {3}, {3}, {3}}))
	cat.MustAdd(makeTable(t, "S", []string{"y", "a"},
		[][]int64{{1, 10}, {2, 20}, {3, 30}, {4, 40}, {3, 50}}))
	return cat
}

func singleJoinSpec(t *testing.T) query.SITSpec {
	t.Helper()
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	spec, err := query.NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestConfigValidation(t *testing.T) {
	cat := data.NewCatalog()
	if _, err := NewBuilder(nil, DefaultConfig()); err == nil {
		t.Error("nil catalog: want error")
	}
	bad := DefaultConfig()
	bad.Buckets = 0
	if _, err := NewBuilder(cat, bad); err == nil {
		t.Error("zero buckets: want error")
	}
	bad = DefaultConfig()
	bad.SampleRate = 0
	if _, err := NewBuilder(cat, bad); err == nil {
		t.Error("zero sample rate: want error")
	}
	bad = DefaultConfig()
	bad.SampleRate = 1.5
	if _, err := NewBuilder(cat, bad); err == nil {
		t.Error("sample rate > 1: want error")
	}
	bad = DefaultConfig()
	bad.MinSample = 0
	if _, err := NewBuilder(cat, bad); err == nil {
		t.Error("zero min sample: want error")
	}
}

func TestMethodString(t *testing.T) {
	want := map[Method]string{
		HistSIT: "Hist-SIT", Sweep: "Sweep", SweepIndex: "SweepIndex",
		SweepFull: "SweepFull", SweepExact: "SweepExact", Materialize: "Materialize",
		Method(42): "Method(42)",
	}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
	if len(Methods()) != 5 {
		t.Errorf("Methods() = %v", Methods())
	}
}

func TestBaseSpec(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	base, _ := query.NewBaseExpr("S")
	spec, err := query.NewSITSpec("S", "a", base)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{HistSIT, Sweep, SweepExact} {
		s, err := b.Build(spec, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if math.Abs(s.Hist.TotalFreq()-5) > 1e-9 {
			t.Errorf("%v: base SIT total = %v, want 5", m, s.Hist.TotalFreq())
		}
	}
}

// TestSweepExactEqualsMaterializeSingleJoin: the core exactness claim of
// Section 3.1.2 — SweepExact's histogram is identical to executing the query
// and building a histogram over the result.
func TestSweepExactEqualsMaterializeSingleJoin(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	spec := singleJoinSpec(t)
	exact, err := b.Build(spec, SweepExact)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := b.Build(spec, Materialize)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exact.Hist.Buckets, mat.Hist.Buckets) {
		t.Errorf("SweepExact != Materialize:\n%v\n%v", exact.Hist, mat.Hist)
	}
	// True result: y=1 matches 2 R-rows (a=10 twice), y=2 one (a=20), both
	// y=3 rows match 3 each (a=30 x3, a=50 x3), y=4 none. |result| = 9.
	if exact.EstimatedCard != 9 {
		t.Errorf("EstimatedCard = %v, want 9", exact.EstimatedCard)
	}
	if got := exact.EstimateRange(30, 50); math.Abs(got-6) > 1e-9 {
		t.Errorf("EstimateRange(30,50) = %v, want 6 (30x3 + 50x3)", got)
	}
}

func TestSweepFullExactOnTinyData(t *testing.T) {
	// With nb=100 > distinct values, base histograms are exact, so even the
	// histogram m-Oracle is exact and SweepFull matches Materialize.
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	spec := singleJoinSpec(t)
	full, err := b.Build(spec, SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := b.Build(spec, Materialize)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(full.Hist.Buckets, mat.Hist.Buckets) {
		t.Errorf("SweepFull != Materialize on exact-histogram data:\n%v\n%v", full.Hist, mat.Hist)
	}
}

func TestSweepExactEqualsMaterializeChain(t *testing.T) {
	cfg := datagen.DefaultChainConfig()
	cfg.Rows = []int{400, 300, 250, 200}
	cfg.Domain = 60
	cat, err := datagen.ChainDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t, cat)
	for _, tables := range [][]string{{"T1", "T2"}, {"T1", "T2", "T3"}, {"T1", "T2", "T3", "T4"}} {
		outs := make([]string, len(tables)-1)
		ins := make([]string, len(tables)-1)
		for i := range outs {
			outs[i] = "jnext"
			ins[i] = "jprev"
		}
		e, err := query.Chain(tables, outs, ins)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := query.NewSITSpec(tables[len(tables)-1], "a", e)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := b.Build(spec, SweepExact)
		if err != nil {
			t.Fatal(err)
		}
		mat, err := b.Build(spec, Materialize)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(exact.EstimatedCard-mat.EstimatedCard) > 1e-6*(mat.EstimatedCard+1) {
			t.Errorf("%d-way: SweepExact card %v != true %v", len(tables), exact.EstimatedCard, mat.EstimatedCard)
		}
		// Compare the distributions on range estimates over the SIT domain.
		lo, hasLo := mat.Hist.Min()
		hi, _ := mat.Hist.Max()
		if !hasLo {
			t.Fatalf("%d-way: empty ground truth", len(tables))
		}
		step := (hi - lo + 1) / 10
		if step < 1 {
			step = 1
		}
		for a := lo; a < hi; a += step {
			g, w := exact.EstimateRange(a, a+step-1), mat.Hist.EstimateRange(a, a+step-1)
			if math.Abs(g-w) > 1e-6*(w+1) {
				t.Errorf("%d-way: range [%d,%d): SweepExact %v != Materialize %v", len(tables), a, a+step, g, w)
			}
		}
	}
}

// TestSweepExactEqualsMaterializeStar: acyclic (non-chain) generating query;
// multiplicities multiply across children (Section 3.2).
func TestSweepExactEqualsMaterializeStar(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cat := data.NewCatalog()
	root := data.MustNewTable("C", "j1", "j2", "a")
	for i := 0; i < 500; i++ {
		root.AppendRow(rng.Int63n(30), rng.Int63n(30), rng.Int63n(200))
	}
	cat.MustAdd(root)
	s1 := data.MustNewTable("D1", "k")
	s2 := data.MustNewTable("D2", "k")
	for i := 0; i < 400; i++ {
		s1.AppendRow(rng.Int63n(30))
		s2.AppendRow(rng.Int63n(30))
	}
	cat.MustAdd(s1)
	cat.MustAdd(s2)
	e, err := query.NewExpr(
		query.JoinPred{LeftTable: "C", LeftAttr: "j1", RightTable: "D1", RightAttr: "k"},
		query.JoinPred{LeftTable: "C", LeftAttr: "j2", RightTable: "D2", RightAttr: "k"},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := query.NewSITSpec("C", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t, cat)
	exact, err := b.Build(spec, SweepExact)
	if err != nil {
		t.Fatal(err)
	}
	trueCard, err := exec.Cardinality(cat, e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.EstimatedCard-float64(trueCard)) > 1e-6*float64(trueCard+1) {
		t.Errorf("star SweepExact card = %v, true %d", exact.EstimatedCard, trueCard)
	}
}

// TestDeepTreeSIT: SIT over a height-2 join tree (Figure 4 shape) built with
// every technique; sanity-check cardinalities against the executor.
func TestDeepTreeSIT(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	cat := data.NewCatalog()
	mk := func(name string, cols ...string) *data.Table {
		tab := data.MustNewTable(name, cols...)
		for i := 0; i < 300; i++ {
			row := make([]int64, len(cols))
			for j := range row {
				row[j] = rng.Int63n(25)
			}
			tab.AppendRow(row...)
		}
		cat.MustAdd(tab)
		return tab
	}
	mk("R", "r1", "r2", "a")
	mk("S", "s1")
	mk("T", "t1", "t2")
	mk("V", "v1")
	e, err := query.NewExpr(
		query.JoinPred{LeftTable: "R", LeftAttr: "r1", RightTable: "S", RightAttr: "s1"},
		query.JoinPred{LeftTable: "R", LeftAttr: "r2", RightTable: "T", RightAttr: "t1"},
		query.JoinPred{LeftTable: "T", LeftAttr: "t2", RightTable: "V", RightAttr: "v1"},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := query.NewSITSpec("R", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	trueCard, err := exec.Cardinality(cat, e)
	if err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t, cat)
	for _, m := range Methods() {
		s, err := b.Build(spec, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if err := s.Hist.Validate(); err != nil {
			t.Errorf("%v: invalid histogram: %v", m, err)
		}
		if s.EstimatedCard <= 0 {
			t.Errorf("%v: non-positive estimated cardinality", m)
		}
		// Uniform independent data: every technique should be within 2x.
		ratio := s.EstimatedCard / float64(trueCard)
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%v: estimated card %v vs true %d (ratio %.2f)", m, s.EstimatedCard, trueCard, ratio)
		}
	}
	exact, _ := b.Build(spec, SweepExact)
	if math.Abs(exact.EstimatedCard-float64(trueCard)) > 1e-6*float64(trueCard+1) {
		t.Errorf("SweepExact card = %v, true %d", exact.EstimatedCard, trueCard)
	}
}

func TestCyclicExprRejected(t *testing.T) {
	cat := data.NewCatalog()
	for _, n := range []string{"R", "S", "T"} {
		cat.MustAdd(makeTable(t, n, []string{"x", "y"}, [][]int64{{1, 1}}))
	}
	e := query.MustNewExpr(
		query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "x"},
		query.JoinPred{LeftTable: "S", LeftAttr: "y", RightTable: "T", RightAttr: "y"},
		query.JoinPred{LeftTable: "T", LeftAttr: "x", RightTable: "R", RightAttr: "y"},
	)
	spec, err := query.NewSITSpec("R", "x", e)
	if err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t, cat)
	if _, err := b.Build(spec, Sweep); err == nil {
		t.Error("cyclic generating query: want error")
	}
}

func TestCaching(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	spec := singleJoinSpec(t)
	s1, err := b.Build(spec, Sweep)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := b.Build(spec, Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("second Build did not hit the cache")
	}
	if _, ok := b.Cached(spec, Sweep); !ok {
		t.Error("Cached lookup failed")
	}
	if _, ok := b.Cached(spec, SweepFull); ok {
		t.Error("cache leaked across methods")
	}
	b.InvalidateCache()
	if _, ok := b.Cached(spec, Sweep); ok {
		t.Error("InvalidateCache left entries")
	}
}

func TestBuildGroupSharesScanAndMatchesIndividual(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	specA, _ := query.NewSITSpec("S", "a", e)
	specY, _ := query.NewSITSpec("S", "y", e)
	group, err := b.BuildGroup([]query.SITSpec{specA, specY}, SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	if len(group) != 2 {
		t.Fatalf("group size = %d", len(group))
	}
	b2 := newBuilder(t, cat)
	for i, spec := range []query.SITSpec{specA, specY} {
		solo, err := b2.Build(spec, SweepFull)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(group[i].Hist.Buckets, solo.Hist.Buckets) {
			t.Errorf("group[%d] != individual build", i)
		}
	}
	// Error cases.
	otherRoot := query.MustNewExpr(query.JoinPred{LeftTable: "S", LeftAttr: "y", RightTable: "R", RightAttr: "x"})
	specR, _ := query.NewSITSpec("R", "x", otherRoot)
	if _, err := b.BuildGroup([]query.SITSpec{specA, specR}, Sweep); err == nil {
		t.Error("mixed roots: want error")
	}
	base, _ := query.NewBaseExpr("S")
	baseSpec, _ := query.NewSITSpec("S", "a", base)
	if _, err := b.BuildGroup([]query.SITSpec{baseSpec}, Sweep); err == nil {
		t.Error("base spec in group: want error")
	}
	if out, err := b.BuildGroup(nil, Sweep); err != nil || out != nil {
		t.Errorf("empty group = %v, %v", out, err)
	}
}

func TestSampleSize(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	k, err := b.SampleSize("S")
	if err != nil {
		t.Fatal(err)
	}
	if k != b.cfg.MinSample { // 10% of 5 rows floors at MinSample
		t.Errorf("SampleSize = %d, want MinSample %d", k, b.cfg.MinSample)
	}
	if _, err := b.SampleSize("nope"); err == nil {
		t.Error("missing table: want error")
	}
}

// Property: SweepExact equals Materialize (bucket-for-bucket) on random
// single-join inputs.
func TestSweepExactEqualsMaterializeQuick(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		if len(xs) == 0 || len(ys) == 0 {
			return true
		}
		cat := data.NewCatalog()
		r := data.MustNewTable("R", "x")
		for _, v := range xs {
			r.AppendRow(int64(v % 16))
		}
		s := data.MustNewTable("S", "y", "a")
		for i, v := range ys {
			s.AppendRow(int64(v%16), int64(i%7))
		}
		cat.MustAdd(r)
		cat.MustAdd(s)
		b, err := NewBuilder(cat, DefaultConfig())
		if err != nil {
			return false
		}
		e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
		spec, err := query.NewSITSpec("S", "a", e)
		if err != nil {
			return false
		}
		exact, err := b.Build(spec, SweepExact)
		if err != nil {
			return false
		}
		mat, err := b.Build(spec, Materialize)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(exact.Hist.Buckets, mat.Hist.Buckets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSweepBeatsHistSITUnderCorrelation reproduces the qualitative claim of
// Figure 7: with skewed, correlated join attributes the Sweep family yields
// far better range estimates than histogram propagation.
func TestSweepBeatsHistSITUnderCorrelation(t *testing.T) {
	cfg := datagen.DefaultChainConfig()
	cfg.Rows = []int{1500, 1200, 1000, 800}
	cat, err := datagen.ChainDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := query.Chain([]string{"T1", "T2", "T3"}, []string{"jnext", "jnext"}, []string{"jprev", "jprev"})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := query.NewSITSpec("T3", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t, cat)
	truth, err := exec.AttrValues(cat, e, "T3", "a")
	if err != nil {
		t.Fatal(err)
	}
	tr := workload.NewTruth(truth)
	rng := rand.New(rand.NewSource(99))
	queries, err := workload.RandomRangeQueries(rng, 1, int64(cfg.Domain)+int64(cfg.CorrNoise), 500)
	if err != nil {
		t.Fatal(err)
	}
	evalErr := func(s *SIT) float64 {
		res, err := workload.Evaluate(s, tr, queries)
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgRelError
	}
	sw, err := b.Build(spec, Sweep)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := b.Build(spec, HistSIT)
	if err != nil {
		t.Fatal(err)
	}
	sweepErr, histErr := evalErr(sw), evalErr(hs)
	t.Logf("avg relative error: Sweep=%.3f Hist-SIT=%.3f", sweepErr, histErr)
	if sweepErr >= histErr {
		t.Errorf("Sweep (%.3f) should beat Hist-SIT (%.3f) under correlation", sweepErr, histErr)
	}
}

func TestWeightedSamplingVariant(t *testing.T) {
	cat := smallJoinCatalog(t)
	cfg := DefaultConfig()
	cfg.WeightedSampling = true
	b, err := NewBuilder(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Build(singleJoinSpec(t), Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Hist.Validate(); err != nil {
		t.Error(err)
	}
	if math.Abs(s.EstimatedCard-9) > 1e-9 {
		t.Errorf("weighted Sweep card = %v, want 9 (exact oracle on tiny data)", s.EstimatedCard)
	}
}

func TestHistogramOracleRespectsConfigMethod(t *testing.T) {
	cat := smallJoinCatalog(t)
	cfg := DefaultConfig()
	cfg.HistMethod = histogram.EquiDepth
	b, err := NewBuilder(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Build(singleJoinSpec(t), SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Hist.Validate(); err != nil {
		t.Error(err)
	}
}

// TestOracle2DBeatsIndependentProduct: with two perfectly correlated join
// predicates between the same table pair, multiplying independent 1-D oracles
// overestimates the multiplicity enormously, while the 2-D oracle captures
// the joint distribution (Section 3.2's deferred multidimensional-histogram
// extension).
func TestOracle2DBeatsIndependentProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cat := data.NewCatalog()
	r := data.MustNewTable("R", "w", "y")
	s := data.MustNewTable("S", "x", "z", "a")
	for i := 0; i < 2000; i++ {
		v := rng.Int63n(40)
		r.AppendRow(v, v) // w == y always
	}
	for i := 0; i < 1500; i++ {
		v := rng.Int63n(40)
		s.AppendRow(v, v, rng.Int63n(300))
	}
	cat.MustAdd(r)
	cat.MustAdd(s)
	e, err := query.NewExpr(
		query.JoinPred{LeftTable: "R", LeftAttr: "w", RightTable: "S", RightAttr: "x"},
		query.JoinPred{LeftTable: "R", LeftAttr: "y", RightTable: "S", RightAttr: "z"},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := query.NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	trueCard, err := exec.Cardinality(cat, e)
	if err != nil {
		t.Fatal(err)
	}

	indep, err := NewBuilder(cat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	indepSIT, err := indep.Build(spec, SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	cfg2d := DefaultConfig()
	cfg2d.Use2DOracles = true
	joint, err := NewBuilder(cat, cfg2d)
	if err != nil {
		t.Fatal(err)
	}
	jointSIT, err := joint.Build(spec, SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	errOf := func(card float64) float64 {
		return math.Abs(card-float64(trueCard)) / float64(trueCard)
	}
	t.Logf("true=%d independent=%.0f joint2D=%.0f", trueCard, indepSIT.EstimatedCard, jointSIT.EstimatedCard)
	if errOf(jointSIT.EstimatedCard) >= errOf(indepSIT.EstimatedCard) {
		t.Errorf("2-D oracle (%.0f) should beat independent product (%.0f) against true %d",
			jointSIT.EstimatedCard, indepSIT.EstimatedCard, trueCard)
	}
	if errOf(jointSIT.EstimatedCard) > 0.5 {
		t.Errorf("2-D oracle cardinality off by %.0f%%", 100*errOf(jointSIT.EstimatedCard))
	}
}

func TestConfig2DValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Use2DOracles = true
	cfg.Slices2D = 0
	if _, err := NewBuilder(data.NewCatalog(), cfg); err == nil {
		t.Error("Use2DOracles with zero slices: want error")
	}
}

// TestBuildFailureInjection: structurally bad inputs surface as errors, not
// panics.
func TestBuildFailureInjection(t *testing.T) {
	cat := smallJoinCatalog(t)
	b := newBuilder(t, cat)
	// Join attribute missing from the table.
	badExpr := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "nope", RightTable: "S", RightAttr: "y"})
	badSpec, err := query.NewSITSpec("S", "a", badExpr)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		if _, err := b.Build(badSpec, m); err == nil {
			t.Errorf("%v: missing join attribute: want error", m)
		}
	}
	// Target attribute missing.
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	noAttr, err := query.NewSITSpec("S", "zz", e)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range Methods() {
		if _, err := b.Build(noAttr, m); err == nil {
			t.Errorf("%v: missing target attribute: want error", m)
		}
	}
	// Table missing from the catalog.
	ghost := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "ZZ", RightAttr: "y"})
	ghostSpec, err := query.NewSITSpec("ZZ", "a", ghost)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(ghostSpec, Sweep); err == nil {
		t.Error("missing table: want error")
	}
	if _, err := b.BaseHistogram("R", "nope"); err == nil {
		t.Error("BaseHistogram on missing attr: want error")
	}
	if _, err := b.Index("ZZ", "x"); err == nil {
		t.Error("Index on missing table: want error")
	}
}

// TestBuildOnEmptyTables: empty inputs produce empty (but valid) SITs.
func TestBuildOnEmptyTables(t *testing.T) {
	cat := data.NewCatalog()
	cat.MustAdd(data.MustNewTable("R", "x"))
	cat.MustAdd(data.MustNewTable("S", "y", "a"))
	b := newBuilder(t, cat)
	spec := singleJoinSpec(t)
	for _, m := range Methods() {
		s, err := b.Build(spec, m)
		if err != nil {
			t.Fatalf("%v on empty tables: %v", m, err)
		}
		if s.EstimatedCard != 0 {
			t.Errorf("%v: empty tables gave cardinality %v", m, s.EstimatedCard)
		}
		if err := s.Hist.Validate(); err != nil {
			t.Errorf("%v: invalid empty histogram: %v", m, err)
		}
	}
}

// TestDistinctEstimatorConfig: the configurable estimator is exercised by
// the sampled consumers without changing totals.
func TestDistinctEstimatorConfig(t *testing.T) {
	cfg := datagen.DefaultChainConfig()
	cfg.Rows = []int{800, 600, 500, 400}
	cat, err := datagen.ChainDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := query.Chain([]string{"T1", "T2"}, []string{"jnext"}, []string{"jprev"})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := query.NewSITSpec("T2", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	var cards []float64
	for _, est := range []sample.DistinctEstimator{sample.GEE, sample.Chao, sample.Jackknife} {
		bcfg := DefaultConfig()
		bcfg.Distinct = est
		b, err := NewBuilder(cat, bcfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := b.Build(spec, Sweep)
		if err != nil {
			t.Fatalf("%v: %v", est, err)
		}
		if err := s.Hist.Validate(); err != nil {
			t.Errorf("%v: %v", est, err)
		}
		cards = append(cards, s.EstimatedCard)
	}
	// The estimator affects distinct counts, never the streamed mass.
	for i := 1; i < len(cards); i++ {
		if cards[i] != cards[0] {
			t.Errorf("estimated cardinality changed with distinct estimator: %v", cards)
		}
	}
}

// TestSweepMassMatchesSweepFull: Sweep and SweepFull consume the same oracle
// stream; sampling only affects the histogram's shape, never the streamed
// mass, so their estimated cardinalities must agree exactly.
func TestSweepMassMatchesSweepFull(t *testing.T) {
	cfg := datagen.DefaultChainConfig()
	cfg.Rows = []int{600, 500, 400, 300}
	cat, err := datagen.ChainDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, way := range []int{2, 3} {
		tables := make([]string, way)
		outs := make([]string, way-1)
		ins := make([]string, way-1)
		for i := range tables {
			tables[i] = datagen.ChainTableName(i + 1)
		}
		for i := range outs {
			outs[i] = "jnext"
			ins[i] = "jprev"
		}
		e, err := query.Chain(tables, outs, ins)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := query.NewSITSpec(tables[way-1], "a", e)
		if err != nil {
			t.Fatal(err)
		}
		// Fresh builders so Sweep's intermediates are sampled independently
		// of SweepFull's: only compare at way=2 where no intermediate SIT
		// exists; at way=3 the sampled intermediate histogram changes the
		// final oracle, so only rough agreement is expected.
		b1 := newBuilder(t, cat)
		sweep, err := b1.Build(spec, Sweep)
		if err != nil {
			t.Fatal(err)
		}
		b2 := newBuilder(t, cat)
		full, err := b2.Build(spec, SweepFull)
		if err != nil {
			t.Fatal(err)
		}
		if way == 2 {
			if math.Abs(sweep.EstimatedCard-full.EstimatedCard) > 1e-9 {
				t.Errorf("way=%d: Sweep mass %v != SweepFull mass %v",
					way, sweep.EstimatedCard, full.EstimatedCard)
			}
		} else {
			ratio := sweep.EstimatedCard / full.EstimatedCard
			if ratio < 0.5 || ratio > 2 {
				t.Errorf("way=%d: Sweep mass %v vs SweepFull mass %v (ratio %.2f)",
					way, sweep.EstimatedCard, full.EstimatedCard, ratio)
			}
		}
	}
}
