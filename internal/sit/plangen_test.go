package sit

import (
	"testing"

	"github.com/sitstats/sits/internal/query"
)

// TestStatGenBumpsExactly asserts per-table stat generations move exactly
// for the tables of changed SITs: a Get over {T1,T2} leaves T3/T4 alone, a
// refresh that rebuilds SITs over {T2,T3} leaves an unrelated T4 SIT's
// generation alone, and an Adopt bumps only the adopted SITs' tables.
func TestStatGenBumpsExactly(t *testing.T) {
	cat := chainCatalog(t)
	reg, err := NewRegistry(cat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	gens := func() map[string]uint64 {
		out := map[string]uint64{}
		for _, tb := range []string{"T1", "T2", "T3", "T4"} {
			out[tb] = reg.StatGen(tb)
		}
		return out
	}
	if g := gens(); g["T1"] != 0 || g["T2"] != 0 || g["T3"] != 0 || g["T4"] != 0 {
		t.Fatalf("fresh registry has non-zero stat gens: %v", g)
	}

	// Building a SIT over T1 JOIN T2 bumps exactly T1 and T2.
	if _, err := reg.Get(mustSpec(t, registrySpecs[0]), SweepFull); err != nil {
		t.Fatal(err)
	}
	if g := gens(); g["T1"] != 1 || g["T2"] != 1 || g["T3"] != 0 || g["T4"] != 0 {
		t.Fatalf("after Get over T1,T2: %v, want T1/T2 bumped only", g)
	}

	// Building over T3 JOIN T4 leaves T1/T2 alone.
	if _, err := reg.Get(mustSpec(t, registrySpecs[2]), SweepFull); err != nil {
		t.Fatal(err)
	}
	if g := gens(); g["T1"] != 1 || g["T2"] != 1 || g["T3"] != 1 || g["T4"] != 1 {
		t.Fatalf("after Get over T3,T4: %v", g)
	}

	// Growing T2 past the threshold and refreshing rebuilds only the T1-T2
	// SIT: T3/T4's subset is untouched.
	t2 := cat.MustTable("T2")
	row, err := t2.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := 0, t2.NumRows()/2; i < n; i++ {
		if err := t2.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := reg.Refresh(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) != 1 {
		t.Fatalf("refresh rebuilt %v, want exactly the T1-T2 SIT", rebuilt)
	}
	if g := gens(); g["T1"] != 2 || g["T2"] != 2 || g["T3"] != 1 || g["T4"] != 1 {
		t.Fatalf("after refresh rebuilding T1-T2: %v", g)
	}

	// Adopting a replacement for the T3-T4 SIT bumps exactly T3 and T4.
	s, ok := reg.Lookup(mustSpec(t, registrySpecs[2]), SweepFull)
	if !ok {
		t.Fatal("T3-T4 SIT not served")
	}
	clone := *s
	if err := reg.Adopt([]*SIT{&clone}); err != nil {
		t.Fatal(err)
	}
	if g := gens(); g["T1"] != 2 || g["T2"] != 2 || g["T3"] != 2 || g["T4"] != 2 {
		t.Fatalf("after adopt over T3,T4: %v", g)
	}
}

// TestPlanPin asserts the pin covers exactly the expression's tables and
// moves with both invalidation inputs: the data generation and the SIT-set
// generation.
func TestPlanPin(t *testing.T) {
	cat := chainCatalog(t)
	reg, err := NewRegistry(cat, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	expr12, err := query.ParseExpr("T1 JOIN T2 ON T1.jnext = T2.jprev")
	if err != nil {
		t.Fatal(err)
	}
	expr34, err := query.ParseExpr("T3 JOIN T4 ON T3.jnext = T4.jprev")
	if err != nil {
		t.Fatal(err)
	}
	pin12, err := reg.PlanPin(expr12)
	if err != nil {
		t.Fatal(err)
	}
	pin34, err := reg.PlanPin(expr34)
	if err != nil {
		t.Fatal(err)
	}

	// A SIT build over T1-T2 moves pin12 but not pin34.
	if _, err := reg.Get(mustSpec(t, registrySpecs[0]), SweepFull); err != nil {
		t.Fatal(err)
	}
	if p, err := reg.PlanPin(expr12); err != nil || p == pin12 {
		t.Fatalf("pin over T1,T2 unchanged after SIT build (err %v)", err)
	}
	if p, err := reg.PlanPin(expr34); err != nil || p != pin34 {
		t.Fatalf("pin over T3,T4 moved by an unrelated build (err %v)", err)
	}

	// A data mutation of T3 moves pin34 only.
	pin12, err = reg.PlanPin(expr12)
	if err != nil {
		t.Fatal(err)
	}
	t3 := cat.MustTable("T3")
	row, err := t3.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t3.AppendRow(row...); err != nil {
		t.Fatal(err)
	}
	if p, err := reg.PlanPin(expr34); err != nil || p == pin34 {
		t.Fatalf("pin over T3,T4 unchanged after T3 mutation (err %v)", err)
	}
	if p, err := reg.PlanPin(expr12); err != nil || p != pin12 {
		t.Fatalf("pin over T1,T2 moved by a T3 mutation (err %v)", err)
	}

	if _, err := reg.PlanPin(nil); err == nil {
		t.Fatal("nil expression: want error")
	}
}
