package sit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/query"
)

// persistedSIT is the stable on-disk form of one SIT: the spec in its
// parseable textual notation, the creation method by name, and the histogram
// in the histogram package's serialization format.
type persistedSIT struct {
	Spec          string          `json:"spec"`
	Method        string          `json:"method"`
	EstimatedCard float64         `json:"estimated_card"`
	Histogram     json.RawMessage `json:"histogram"`
}

type persistedSet struct {
	Version int            `json:"version"`
	SITs    []persistedSIT `json:"sits"`
}

const persistVersion = 1

// SaveSITs serializes a set of SITs as JSON; LoadSITs restores them. This is
// the persistence layer a deployment needs between statistics-creation runs
// and optimization time.
func SaveSITs(w io.Writer, sits []*SIT) error {
	set := persistedSet{Version: persistVersion}
	for _, s := range sits {
		if s == nil || s.Hist == nil {
			return fmt.Errorf("sit: cannot persist nil SIT")
		}
		var hb bytes.Buffer
		if err := s.Hist.Write(&hb); err != nil {
			return err
		}
		set.SITs = append(set.SITs, persistedSIT{
			Spec:          specText(s.Spec),
			Method:        s.Method.String(),
			EstimatedCard: s.EstimatedCard,
			Histogram:     json.RawMessage(hb.Bytes()),
		})
	}
	return json.NewEncoder(w).Encode(set)
}

// specText renders a spec in the "T.a | <expr>" notation ParseSIT accepts.
func specText(spec query.SITSpec) string {
	return fmt.Sprintf("%s.%s | %s", spec.Table, spec.Attr, spec.Expr.String())
}

// LoadSITs restores SITs written by SaveSITs, validating each histogram.
func LoadSITs(r io.Reader) ([]*SIT, error) {
	var set persistedSet
	if err := json.NewDecoder(r).Decode(&set); err != nil {
		return nil, fmt.Errorf("sit: decoding persisted SITs: %w", err)
	}
	if set.Version != persistVersion {
		return nil, fmt.Errorf("sit: unsupported persistence version %d", set.Version)
	}
	out := make([]*SIT, 0, len(set.SITs))
	for i, p := range set.SITs {
		spec, err := query.ParseSIT(p.Spec)
		if err != nil {
			return nil, fmt.Errorf("sit: persisted SIT %d: %w", i, err)
		}
		m, err := parseMethod(p.Method)
		if err != nil {
			return nil, fmt.Errorf("sit: persisted SIT %d: %w", i, err)
		}
		h, err := histogram.Read(bytes.NewReader(p.Histogram))
		if err != nil {
			return nil, fmt.Errorf("sit: persisted SIT %d: %w", i, err)
		}
		if p.EstimatedCard < 0 {
			return nil, fmt.Errorf("sit: persisted SIT %d has negative cardinality", i)
		}
		out = append(out, &SIT{Spec: spec, Hist: h, Method: m, EstimatedCard: p.EstimatedCard})
	}
	return out, nil
}

// parseMethod inverts Method.String.
func parseMethod(name string) (Method, error) {
	for _, m := range []Method{HistSIT, Sweep, SweepIndex, SweepFull, SweepExact, Materialize} {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("sit: unknown creation method %q", name)
}

// AdoptCached inserts externally loaded SITs into the builder's cache so
// subsequent Build calls (and intermediate-SIT lookups) reuse them.
func (b *Builder) AdoptCached(sits []*SIT) error {
	for _, s := range sits {
		if s == nil || s.Hist == nil {
			return fmt.Errorf("sit: cannot adopt nil SIT")
		}
		if err := s.Hist.Validate(); err != nil {
			return fmt.Errorf("sit: adopting %s: %w", s.Spec.String(), err)
		}
		b.sits[cacheKey(s.Spec, s.Method)] = s
	}
	return nil
}
