package sit

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/query"
)

// benchCatalog builds R(x) and a wide S(y, a1..a4) with enough rows for the
// chunked engine to fan out (~49 chunks at 200k rows).
func benchCatalog(b *testing.B, rows int) *data.Catalog {
	b.Helper()
	rng := rand.New(rand.NewSource(17))
	r := data.MustNewTable("R", "x")
	for i := 0; i < 2000; i++ {
		if err := r.AppendRow(rng.Int63n(1000)); err != nil {
			b.Fatal(err)
		}
	}
	s := data.MustNewTable("S", "y", "a1", "a2", "a3", "a4")
	for i := 0; i < rows; i++ {
		if err := s.AppendRow(rng.Int63n(1000), rng.Int63n(5000), rng.Int63n(5000),
			rng.Int63n(5000), rng.Int63n(5000)); err != nil {
			b.Fatal(err)
		}
	}
	cat := data.NewCatalog()
	cat.MustAdd(r)
	cat.MustAdd(s)
	return cat
}

// BenchmarkSharedScan measures the shared-scan engine itself: jobs are
// prepared outside the timer (oracles and base histograms come from the
// builder's caches after the first iteration), and each iteration performs
// one chunked scan of S feeding every job's consumer.
func BenchmarkSharedScan(b *testing.B) {
	const rows = 200000
	cat := benchCatalog(b, rows)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	allSpecs := make([]query.SITSpec, 4)
	for i := range allSpecs {
		spec, err := query.NewSITSpec("S", fmt.Sprintf("a%d", i+1), e)
		if err != nil {
			b.Fatal(err)
		}
		allSpecs[i] = spec
	}
	for _, nJobs := range []int{1, 4} {
		for _, p := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("jobs=%d/parallel=%d", nJobs, p), func(b *testing.B) {
				cfg := DefaultConfig()
				cfg.Parallelism = p
				builder, err := NewBuilder(cat, cfg)
				if err != nil {
					b.Fatal(err)
				}
				tab := cat.MustTable("S")
				specs := allSpecs[:nJobs]
				// Warm the builder's base-histogram and index caches so the
				// timed loop measures scans, not oracle construction.
				if _, err := builder.prepareJob(specs[0], Sweep, cfg.Buckets); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					jobs := make([]*scanJob, len(specs))
					for ji, spec := range specs {
						job, err := builder.prepareJob(spec, Sweep, cfg.Buckets)
						if err != nil {
							b.Fatal(err)
						}
						jobs[ji] = job
					}
					if err := runSharedScan(tab, jobs, p); err != nil {
						b.Fatal(err)
					}
				}
				b.SetBytes(int64(rows * 8 * (1 + len(specs))))
			})
		}
	}
}

// BenchmarkSweepFull is the end-to-end SIT-creation path: Builder.Build with
// the exact full-scan technique, including the vectorized materialization of
// the generating query's value vector. The SIT cache is invalidated between
// iterations so every iteration rebuilds; base histograms and indexes stay
// cached as in steady-state use.
func BenchmarkSweepFull(b *testing.B) {
	const rows = 200000
	cat := benchCatalog(b, rows)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	spec, err := query.NewSITSpec("S", "a1", e)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 2} {
		b.Run(fmt.Sprintf("parallel=%d", p), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Parallelism = p
			builder, err := NewBuilder(cat, cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := builder.Build(spec, SweepFull); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				builder.InvalidateCache()
				if _, err := builder.Build(spec, SweepFull); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSharedScanExact exercises the per-chunk fork/merge path of the
// exact consumers (SweepFull), whose aggregation is the heaviest per-row work.
func BenchmarkSharedScanExact(b *testing.B) {
	const rows = 200000
	cat := benchCatalog(b, rows)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	spec, err := query.NewSITSpec("S", "a1", e)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("parallel=%d", p), func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.Parallelism = p
			builder, err := NewBuilder(cat, cfg)
			if err != nil {
				b.Fatal(err)
			}
			tab := cat.MustTable("S")
			if _, err := builder.prepareJob(spec, SweepFull, cfg.Buckets); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				job, err := builder.prepareJob(spec, SweepFull, cfg.Buckets)
				if err != nil {
					b.Fatal(err)
				}
				if err := runSharedScan(tab, []*scanJob{job}, p); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(rows * 16))
		})
	}
}
