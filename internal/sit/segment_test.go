package sit

import (
	"path/filepath"
	"testing"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/query"
)

// segmentCatalog writes cat's S table to a segment file and returns a catalog
// where S is segment-backed (streamed off disk) while R stays in memory.
func segmentCatalog(t *testing.T, cat *data.Catalog) *data.Catalog {
	t.Helper()
	s, err := cat.Table("S")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s.seg")
	if err := data.WriteSegment(path, s); err != nil {
		t.Fatal(err)
	}
	seg, err := data.OpenSegmentTable(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { seg.Close() })
	r, err := cat.Table("R")
	if err != nil {
		t.Fatal(err)
	}
	out := data.NewCatalog()
	out.MustAdd(r)
	out.MustAdd(seg)
	return out
}

// TestSegmentScanMatchesInMemory is the out-of-core acceptance bar: SweepFull
// and SweepExact over a streamed segment table must be bit-identical to the
// in-memory path at pool widths {1, 4} × budgets {unlimited, quarter working
// set}. The segment path decodes blocks on demand into reader-owned buffers,
// so any drift in chunk boundaries, Seq numbering, or decode output shows up
// here as a histogram mismatch.
func TestSegmentScanMatchesInMemory(t *testing.T) {
	cat := multiChunkCatalog(t, 3*scanChunkRows+123)
	segCat := segmentCatalog(t, cat)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	spec, err := query.NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.Table("S")
	if err != nil {
		t.Fatal(err)
	}
	ws := int64(s.NumRows()) * int64(s.NumCols()) * 8
	build := func(c *data.Catalog, m Method, parallelism int, budget int64) *SIT {
		cfg := DefaultConfig()
		cfg.Parallelism = parallelism
		cfg.MemBudget = budget
		b, err := NewBuilder(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := b.Build(spec, m)
		if err != nil {
			t.Fatalf("%v width=%d budget=%d: %v", m, parallelism, budget, err)
		}
		return out
	}
	for _, m := range []Method{SweepFull, SweepExact} {
		want := build(cat, m, 1, 0)
		for _, budget := range []int64{0, ws / 4} {
			for _, p := range []int{1, 4} {
				if got := build(segCat, m, p, budget); !sameSIT(want, got) {
					t.Errorf("%v width=%d budget=%d over segment differs from in-memory: card %v vs %v",
						m, p, budget, got.EstimatedCard, want.EstimatedCard)
				}
				if got := build(cat, m, p, budget); !sameSIT(want, got) {
					t.Errorf("%v width=%d budget=%d in-memory differs from serial: card %v vs %v",
						m, p, budget, got.EstimatedCard, want.EstimatedCard)
				}
			}
		}
	}
}

// TestSegmentScanBoundedMemory builds a SIT over a segment table several
// times larger than the memory budget and checks the governor's peak stays a
// small fraction of the table's working set: the scan must stream block
// scratch, not materialize columns into accounted memory.
func TestSegmentScanBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("large streamed build")
	}
	const rows = 512 * scanChunkRows // ~2.1M rows, ~32 MiB working set
	y := make([]int64, rows)
	a := make([]int64, rows)
	for i := range y {
		y[i] = int64(i*2654435761) % 100000
		if y[i] < 0 {
			y[i] += 100000
		}
		a[i] = int64(i % 2048)
	}
	s := data.MustNewTable("S", "y", "a")
	if err := s.AppendColumns(y, a); err != nil {
		t.Fatal(err)
	}
	r := data.MustNewTable("R", "x")
	for i := 0; i < 2000; i++ {
		if err := r.AppendRow(int64(i * 50 % 100000)); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "big.seg")
	if err := data.WriteSegment(path, s); err != nil {
		t.Fatal(err)
	}
	seg, err := data.OpenSegmentTable(path)
	if err != nil {
		t.Fatal(err)
	}
	defer seg.Close()
	cat := data.NewCatalog()
	cat.MustAdd(r)
	cat.MustAdd(seg)

	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	spec, err := query.NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	ws := int64(rows) * 2 * 8
	cfg := DefaultConfig()
	cfg.Parallelism = 4
	cfg.MemBudget = ws / 8
	b, err := NewBuilder(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(spec, SweepFull); err != nil {
		t.Fatal(err)
	}
	peak := b.Governor().Peak()
	if peak == 0 {
		t.Fatal("governor saw no usage: scan scratch is unaccounted")
	}
	if peak > ws/4 {
		t.Fatalf("governor peak %d exceeds a quarter of the %d-byte working set: scan is materializing, not streaming", peak, ws)
	}
}
