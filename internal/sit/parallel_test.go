package sit

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/exec"
	"github.com/sitstats/sits/internal/query"
)

// multiChunkCatalog builds R(x), S(y, a) with S spanning several scan chunks
// (rows > scanChunkRows), so shared scans genuinely fan out across workers.
func multiChunkCatalog(t testing.TB, rows int) *data.Catalog {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	r := data.MustNewTable("R", "x")
	for i := 0; i < rows/8; i++ {
		if err := r.AppendRow(rng.Int63n(500)); err != nil {
			t.Fatal(err)
		}
	}
	s := data.MustNewTable("S", "y", "a")
	for i := 0; i < rows; i++ {
		if err := s.AppendRow(rng.Int63n(500), rng.Int63n(2000)); err != nil {
			t.Fatal(err)
		}
	}
	cat := data.NewCatalog()
	cat.MustAdd(r)
	cat.MustAdd(s)
	return cat
}

func buildAt(t *testing.T, cat *data.Catalog, spec query.SITSpec, m Method, parallelism int) *SIT {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Parallelism = parallelism
	b, err := NewBuilder(cat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Build(spec, m)
	if err != nil {
		t.Fatalf("%v at parallelism %d: %v", m, parallelism, err)
	}
	return s
}

func sameSIT(a, b *SIT) bool {
	return a.EstimatedCard == b.EstimatedCard && reflect.DeepEqual(a.Hist, b.Hist)
}

// TestExactMethodsBitIdenticalAcrossParallelism: SweepFull and SweepExact
// aggregate per fixed-size chunk and merge in chunk order, so their SITs must
// be bit-identical at every parallelism level — the acceptance bar of the
// chunked engine.
func TestExactMethodsBitIdenticalAcrossParallelism(t *testing.T) {
	cat := multiChunkCatalog(t, 3*scanChunkRows+123)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	spec, err := query.NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{SweepFull, SweepExact} {
		serial := buildAt(t, cat, spec, m, 1)
		for _, p := range []int{2, 8} {
			got := buildAt(t, cat, spec, m, p)
			if !sameSIT(serial, got) {
				t.Errorf("%v: parallelism %d differs from serial: card %v vs %v",
					m, p, got.EstimatedCard, serial.EstimatedCard)
			}
		}
	}
}

// TestExactMethodsWidthBudgetMatrix is the full determinism property of the
// pooled engine: SweepFull and SweepExact must be bit-identical across pool
// widths {1,2,4,8} × memory budgets {unlimited, quarter working set}. The
// quarter budget pushes the executor's joins into spill paths while the
// shared-scan scratch stays Force-accounted on the same governor.
func TestExactMethodsWidthBudgetMatrix(t *testing.T) {
	cat := multiChunkCatalog(t, 3*scanChunkRows+123)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	spec, err := query.NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	s, err := cat.Table("S")
	if err != nil {
		t.Fatal(err)
	}
	ws := int64(s.NumRows()) * int64(s.NumCols()) * 8
	build := func(m Method, parallelism int, budget int64) *SIT {
		cfg := DefaultConfig()
		cfg.Parallelism = parallelism
		cfg.MemBudget = budget
		b, err := NewBuilder(cat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := b.Build(spec, m)
		if err != nil {
			t.Fatalf("%v width=%d budget=%d: %v", m, parallelism, budget, err)
		}
		return out
	}
	for _, m := range []Method{SweepFull, SweepExact} {
		serial := build(m, 1, 0)
		for _, budget := range []int64{0, ws / 4} {
			for _, p := range []int{1, 2, 4, 8} {
				if got := build(m, p, budget); !sameSIT(serial, got) {
					t.Errorf("%v width=%d budget=%d differs from serial: card %v vs %v",
						m, p, budget, got.EstimatedCard, serial.EstimatedCard)
				}
			}
		}
	}
}

// TestSampledMethodsDeterministicAtFixedParallelism: Sweep and SweepIndex
// shard their reservoirs per worker, so two runs with the same seed and the
// same parallelism level must agree bit for bit.
func TestSampledMethodsDeterministicAtFixedParallelism(t *testing.T) {
	cat := multiChunkCatalog(t, 2*scanChunkRows+57)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	spec, err := query.NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{Sweep, SweepIndex} {
		for _, p := range []int{1, 2, 8} {
			first := buildAt(t, cat, spec, m, p)
			second := buildAt(t, cat, spec, m, p)
			if !sameSIT(first, second) {
				t.Errorf("%v at parallelism %d: two identically-seeded runs differ", m, p)
			}
		}
	}
}

// TestParallelSweepStatisticallySound: the sharded reservoirs must still
// produce an accurate SIT — the merged sample's total mass tracks the exact
// join cardinality within sampling noise.
func TestParallelSweepStatisticallySound(t *testing.T) {
	cat := multiChunkCatalog(t, 2*scanChunkRows+57)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	spec, err := query.NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	exact := buildAt(t, cat, spec, SweepExact, 4)
	for _, p := range []int{1, 4} {
		got := buildAt(t, cat, spec, Sweep, p)
		ratio := got.EstimatedCard / exact.EstimatedCard
		if ratio < 0.9 || ratio > 1.1 {
			t.Errorf("Sweep at parallelism %d: card %v vs exact %v (ratio %.3f)",
				p, got.EstimatedCard, exact.EstimatedCard, ratio)
		}
	}
}

// TestBuildGroupParallelMatchesSerialExact: grouped shared scans go through
// the same engine; exact methods must be unaffected by the worker count.
func TestBuildGroupParallelMatchesSerialExact(t *testing.T) {
	cat := multiChunkCatalog(t, 2*scanChunkRows+31)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	specA, err := query.NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	specY, err := query.NewSITSpec("S", "y", e)
	if err != nil {
		t.Fatal(err)
	}
	specs := []query.SITSpec{specA, specY}
	group := func(p int) []*SIT {
		cfg := DefaultConfig()
		cfg.Parallelism = p
		b, err := NewBuilder(cat, cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := b.BuildGroup(specs, SweepFull)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := group(1)
	parallel := group(8)
	for i := range specs {
		if !sameSIT(serial[i], parallel[i]) {
			t.Errorf("group SIT %d differs between serial and parallel", i)
		}
	}
}

func TestConfigRejectsNegativeParallelism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallelism = -1
	if _, err := NewBuilder(data.NewCatalog(), cfg); err == nil {
		t.Error("negative parallelism: want error")
	}
}

func TestResolveParallelism(t *testing.T) {
	if got := exec.ResolveParallelism(3); got != 3 {
		t.Errorf("ResolveParallelism(3) = %d", got)
	}
	if got := exec.ResolveParallelism(0); got < 1 {
		t.Errorf("ResolveParallelism(0) = %d, want >= 1", got)
	}
}

// shardSeed must give every shard a distinct seed (collisions would correlate
// neighbouring workers' sampling streams).
func TestShardSeedsDistinct(t *testing.T) {
	seen := map[int64]int{}
	for _, base := range []int64{0, 1, 42, -7} {
		for i := 0; i < 64; i++ {
			s := shardSeed(base, i)
			if prev, dup := seen[s]; dup {
				t.Fatalf("shardSeed collision: %d (shard %d) repeats seed of shard %d", s, i, prev)
			}
			seen[s] = i
		}
	}
}
