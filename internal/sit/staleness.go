package sit

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sitstats/sits/internal/query"
)

// Statistics go stale as base data grows. The tables in this repository are
// append-only, so staleness is fully captured by comparing each base table's
// row count against a snapshot taken when the SIT was built — the standard
// row-modification-counter heuristic relational systems use to trigger
// statistics refresh.

// snapshot records the base-table cardinalities a SIT was built against.
type snapshot map[string]int

// Staleness describes how far a SIT has drifted from its base tables.
type Staleness struct {
	// Stale is set when any referenced table changed size beyond the
	// threshold.
	Stale bool
	// Growth maps each referenced table to its relative growth since the
	// SIT was built (0.25 = 25% more rows).
	Growth map[string]float64
}

// snapshotFor captures the current sizes of the spec's tables.
func (b *Builder) snapshotFor(tables []string) (snapshot, error) {
	snap := snapshot{}
	for _, name := range tables {
		t, err := b.cat.Table(name)
		if err != nil {
			return nil, err
		}
		snap[name] = t.NumRows()
	}
	return snap, nil
}

// CheckStaleness compares a SIT's recorded base-table sizes with the current
// catalog. A SIT is considered stale when any of its tables grew by more than
// threshold (e.g. 0.2 for 20%, the classic auto-update trigger). SITs built
// before staleness tracking (or loaded without snapshots) report stale so
// callers err on the side of refreshing.
func (b *Builder) CheckStaleness(s *SIT, threshold float64) (Staleness, error) {
	if s == nil {
		return Staleness{}, fmt.Errorf("sit: cannot check nil SIT")
	}
	if threshold < 0 {
		return Staleness{}, fmt.Errorf("sit: staleness threshold must be non-negative")
	}
	out := Staleness{Growth: map[string]float64{}}
	if s.builtAgainst == nil {
		out.Stale = true
		return out, nil
	}
	for _, name := range s.Spec.Expr.Tables() {
		t, err := b.cat.Table(name)
		if err != nil {
			return Staleness{}, err
		}
		was, ok := s.builtAgainst[name]
		if !ok {
			out.Stale = true
			out.Growth[name] = 1
			continue
		}
		growth := 0.0
		if was > 0 {
			growth = float64(t.NumRows()-was) / float64(was)
		} else if t.NumRows() > 0 {
			growth = 1
		}
		if growth < 0 {
			growth = -growth // shrinkage counts as drift too
		}
		out.Growth[name] = growth
		if growth > threshold {
			out.Stale = true
		}
	}
	return out, nil
}

// RefreshStale rebuilds every given SIT whose staleness exceeds the threshold
// with its original creation method, returning the refreshed set (fresh SITs
// are passed through unchanged) and the names of the specs that were rebuilt.
func (b *Builder) RefreshStale(sits []*SIT, threshold float64) ([]*SIT, []string, error) {
	out := make([]*SIT, len(sits))
	var rebuilt []string
	for i, s := range sits {
		st, err := b.CheckStaleness(s, threshold)
		if err != nil {
			return nil, nil, err
		}
		if !st.Stale {
			out[i] = s
			continue
		}
		// Drop every cached SIT (including intermediates) that touches any of
		// the stale SIT's tables, so the rebuild cannot silently reuse stale
		// intermediate results; likewise the base histograms, 2-D histograms
		// and indexes of those tables.
		for key, cached := range b.sits { //statcheck:ignore maprange per-key delete, order-independent
			if sharesTable(cached.Spec, s.Spec) {
				delete(b.sits, key)
			}
		}
		for _, table := range s.Spec.Expr.Tables() {
			prefix := table + "."
			for key := range b.base { //statcheck:ignore maprange per-key delete, order-independent
				if strings.HasPrefix(key, prefix) {
					delete(b.base, key)
				}
			}
			for key := range b.h2d { //statcheck:ignore maprange per-key delete, order-independent
				if strings.HasPrefix(key, prefix) {
					delete(b.h2d, key)
				}
			}
			for key := range b.idx { //statcheck:ignore maprange per-key delete, order-independent
				if strings.HasPrefix(key, prefix) {
					delete(b.idx, key)
				}
			}
		}
		fresh, err := b.Build(s.Spec, s.Method)
		if err != nil {
			return nil, nil, err
		}
		out[i] = fresh
		rebuilt = append(rebuilt, s.Spec.String())
	}
	sort.Strings(rebuilt)
	return out, rebuilt, nil
}

// sharesTable reports whether two specs reference a common base table.
func sharesTable(a, b query.SITSpec) bool {
	for _, t := range a.Expr.Tables() {
		if b.Expr.HasTable(t) {
			return true
		}
	}
	return false
}
