package sit

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/sitstats/sits/internal/btree"
	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/query"
)

func randVals(rng *rand.Rand, n int, lo, span int64) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = lo + rng.Int63n(span)
	}
	return out
}

// TestMultiplicityBatchMatchesScalar: each batched oracle must return, per
// element of an unsorted probe vector, exactly the float the scalar
// multiplicity call returns — including probes outside both histograms and
// absent from the index.
func TestMultiplicityBatchMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := randVals(rng, 900, -150, 300)
	ys := randVals(rng, 700, -50, 300)
	hR, err := histogram.FromValues(xs, 9, histogram.MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	hS, err := histogram.FromValues(ys, 6, histogram.MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	oracles := map[string]interface {
		oracle
		batchOracle
	}{
		"hist":  histOracle{child: hR, parent: hS},
		"index": indexOracle{idx: btree.Build(xs)},
	}
	probes := randVals(rng, 1500, -400, 800) // unsorted, duplicates, misses
	var scratch probeScratch
	for name, o := range oracles {
		out := make([]float64, len(probes))
		o.multiplicityBatch(probes, out, &scratch)
		for i, v := range probes {
			if want := o.multiplicity([]int64{v}); out[i] != want {
				t.Fatalf("%s: batch m(%d) = %v, scalar = %v", name, v, out[i], want)
			}
		}
	}
	var empty []int64
	oracles["hist"].multiplicityBatch(empty, nil, &scratch) // must not panic
}

// vmPair records one consumer add call.
type vmPair struct {
	v int64
	m float64
}

// recorder is a consumer that records its exact add stream, so two scan
// implementations can be compared call for call.
type recorder struct {
	pairs   []vmPair
	chunked bool
}

func (r *recorder) add(v int64, m float64) { r.pairs = append(r.pairs, vmPair{v, m}) }
func (r *recorder) result(int, histogram.Method) (*histogram.Histogram, float64, error) {
	return nil, 0, nil
}
func (r *recorder) fork(int) (consumer, error) { return &recorder{chunked: r.chunked}, nil }
func (r *recorder) merge(shard consumer) error {
	r.pairs = append(r.pairs, shard.(*recorder).pairs...)
	return nil
}
func (r *recorder) perChunk() bool { return r.chunked }

// feedChunkRowRef is the pre-refactor row-at-a-time feedChunk, kept as the
// bit-identity reference for the batched implementation.
func feedChunkRowRef(ch data.Chunk, jobs []*scanJob, dst []consumer) {
	n := ch.Len()
	var vbuf [4]int64
	for r := 0; r < n; r++ {
		for ji, j := range jobs {
			m := 1.0
			for pi := range j.preds {
				p := &j.preds[pi]
				vals := vbuf[:0]
				for _, c := range p.cols {
					vals = append(vals, ch.Cols[c][r])
				}
				m *= p.o.multiplicity(vals)
				if m == 0 {
					break
				}
			}
			if m > 0 {
				dst[ji].add(ch.Cols[j.targetCol][r], m)
			}
		}
	}
}

// probeJobs builds a mixed job set: a single batchable histogram predicate
// (the straight-into-scratch fast path), a single index predicate, a
// two-predicate job (batched product path), and a job mixing a 2-D oracle
// (row fallback) with a batchable one.
func probeJobs(t *testing.T, rng *rand.Rand) []*scanJob {
	t.Helper()
	xs := randVals(rng, 800, -100, 200)
	ys := randVals(rng, 600, -60, 200)
	hR, err := histogram.FromValues(xs, 8, histogram.MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	hS, err := histogram.FromValues(ys, 5, histogram.MaxDiffArea)
	if err != nil {
		t.Fatal(err)
	}
	h2R, err := histogram.Build2D(xs, randVals(rng, 800, 0, 50), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	h2S, err := histogram.Build2D(ys, randVals(rng, 600, 0, 50), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	ho := histOracle{child: hR, parent: hS}
	io := indexOracle{idx: btree.Build(xs)}
	o2 := oracle2D{child: h2R, parent: h2S}
	return []*scanJob{
		{targetAttr: "a", preds: []jobPred{newJobPred([]string{"u"}, ho)}},
		{targetAttr: "a", preds: []jobPred{newJobPred([]string{"v"}, io)}},
		{targetAttr: "b", preds: []jobPred{newJobPred([]string{"u"}, ho), newJobPred([]string{"v"}, io)}},
		{targetAttr: "a", preds: []jobPred{newJobPred([]string{"u", "w"}, o2), newJobPred([]string{"v"}, ho)}},
	}
}

// TestFeedChunkMatchesRowReference: the vectorized feedChunk must issue the
// exact same (value, multiplicity) stream to every consumer as the row loop.
func TestFeedChunkMatchesRowReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	jobs := probeJobs(t, rng)
	cols := resolveColumns(jobs)
	for _, n := range []int{0, 1, 37, 4096} {
		ch := data.Chunk{Cols: make([][]int64, len(cols))}
		for c := range cols {
			ch.Cols[c] = randVals(rng, n, -300, 600)
		}
		got := make([]consumer, len(jobs))
		want := make([]consumer, len(jobs))
		for i := range jobs {
			got[i], want[i] = &recorder{}, &recorder{}
		}
		var scratch probeScratch
		feedChunk(ch, jobs, got, &scratch)
		feedChunkRowRef(ch, jobs, want)
		for i := range jobs {
			g, w := got[i].(*recorder).pairs, want[i].(*recorder).pairs
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("chunk len %d job %d: batched stream (%d adds) != row stream (%d adds)",
					n, i, len(g), len(w))
			}
		}
	}
}

// stripBatch returns a deep copy of jobs with every predicate's batched
// interface removed, forcing feedChunk down the row fallback.
func stripBatch(jobs []*scanJob) []*scanJob {
	out := make([]*scanJob, len(jobs))
	for i, j := range jobs {
		cp := *j
		cp.preds = make([]jobPred, len(j.preds))
		for pi, p := range j.preds {
			cp.preds[pi] = jobPred{attrs: p.attrs, o: p.o}
		}
		out[i] = &cp
	}
	return out
}

// TestSharedScanBatchedProbingBitIdentical: a full shared scan over a
// multi-chunk table must deliver identical consumer streams whether the
// oracles are probed per chunk or per row, at serial and parallel worker
// counts.
func TestSharedScanBatchedProbingBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tab := data.MustNewTable("T", "a", "b", "u", "v", "w")
	for i := 0; i < 2*scanChunkRows+391; i++ {
		if err := tab.AppendRow(rng.Int63n(2000), rng.Int63n(2000),
			rng.Int63n(400)-200, rng.Int63n(400)-200, rng.Int63n(50)); err != nil {
			t.Fatal(err)
		}
	}
	for _, par := range []int{1, 4} {
		run := func(jobs []*scanJob, chunked bool) [][]vmPair {
			cons := make([]*recorder, len(jobs))
			for i, j := range jobs {
				cons[i] = &recorder{chunked: chunked}
				j.cons = cons[i]
			}
			if err := runSharedScan(tab, jobs, par); err != nil {
				t.Fatal(err)
			}
			out := make([][]vmPair, len(cons))
			for i, c := range cons {
				out[i] = c.pairs
			}
			return out
		}
		for _, chunked := range []bool{false, true} {
			batched := run(probeJobs(t, rand.New(rand.NewSource(6))), chunked)
			rowwise := run(stripBatch(probeJobs(t, rand.New(rand.NewSource(6)))), chunked)
			if !reflect.DeepEqual(batched, rowwise) {
				t.Fatalf("parallelism %d chunked %v: batched scan stream != row scan stream", par, chunked)
			}
		}
	}
}

// TestSweepMethodsStableUnderBatchedProbing: the acceptance bar of the
// batched m-Oracle path — Sweep, SweepFull and SweepIndex stay deterministic
// at parallelism 1 and 4, and SweepFull additionally matches across the two
// levels (its consumers aggregate per fixed chunk).
func TestSweepMethodsStableUnderBatchedProbing(t *testing.T) {
	cat := multiChunkCatalog(t, 2*scanChunkRows+57)
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	spec, err := query.NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{Sweep, SweepFull, SweepIndex} {
		var perLevel []*SIT
		for _, par := range []int{1, 4} {
			first := buildAt(t, cat, spec, m, par)
			second := buildAt(t, cat, spec, m, par)
			if !sameSIT(first, second) {
				t.Errorf("%v at parallelism %d: two identically-seeded builds differ", m, par)
			}
			perLevel = append(perLevel, first)
		}
		if m == SweepFull && !sameSIT(perLevel[0], perLevel[1]) {
			t.Errorf("SweepFull: parallelism 1 and 4 disagree: card %v vs %v",
				perLevel[0].EstimatedCard, perLevel[1].EstimatedCard)
		}
	}
}
