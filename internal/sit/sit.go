// Package sit is the core of the reproduction: it implements SITs
// (statistics on query expressions, Definition 1 of the paper) and the
// family of creation techniques of Section 3 —
//
//   - Sweep: one sequential scan per non-root join-tree table, histogram
//     m-Oracle (containment assumption), reservoir sampling.
//   - SweepIndex: exact index-based multiplicities where the joined side is a
//     base table (drops the containment assumption at the leaves).
//   - SweepFull: no sampling; the streamed multiset is aggregated exactly
//     (drops the sampling assumption).
//   - SweepExact: index multiplicities + no sampling + exact intermediate
//     distributions; provably equal to materializing the generating query
//     and building the histogram over the result.
//   - HistSIT: the traditional optimizer baseline that propagates base-table
//     histograms through the join plan under the independence and
//     containment assumptions (Section 2.1), touching no data.
//   - Materialize: executes the generating query with the executor and
//     builds the histogram over the materialized result (ground truth).
//
// Chain and general acyclic-join generating queries are handled by the
// join-tree unfolding of Section 3.2: intermediate SITs are built bottom-up
// in post-order and feed the m-Oracles of their parents.
package sit

import (
	"fmt"
	"math"

	"github.com/sitstats/sits/internal/btree"
	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/mem"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sample"
)

// Method selects a SIT creation technique.
type Method int

const (
	// HistSIT propagates base-table histograms (the optimizer baseline).
	HistSIT Method = iota
	// Sweep is the paper's main technique (Section 3.1).
	Sweep
	// SweepIndex replaces the histogram m-Oracle with exact index lookups.
	SweepIndex
	// SweepFull omits reservoir sampling.
	SweepFull
	// SweepExact combines SweepIndex and SweepFull with exact intermediates.
	SweepExact
	// Materialize executes the generating query and builds the histogram
	// over the actual result.
	Materialize
)

// String returns the technique name as used in the paper's figures.
func (m Method) String() string {
	switch m {
	case HistSIT:
		return "Hist-SIT"
	case Sweep:
		return "Sweep"
	case SweepIndex:
		return "SweepIndex"
	case SweepFull:
		return "SweepFull"
	case SweepExact:
		return "SweepExact"
	case Materialize:
		return "Materialize"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Methods lists all creation techniques in the order the paper compares them.
func Methods() []Method {
	return []Method{HistSIT, Sweep, SweepIndex, SweepFull, SweepExact}
}

// SIT is a statistic over a query expression: the histogram approximates the
// distribution of Spec.Table.Spec.Attr in the result of Spec.Expr.
type SIT struct {
	Spec query.SITSpec
	Hist *histogram.Histogram
	// Method records how the SIT was created.
	Method Method
	// EstimatedCard is the creation-time estimate of |Spec.Expr|; for exact
	// methods it equals the true cardinality.
	EstimatedCard float64
	// builtAgainst snapshots the base-table sizes at creation time for
	// staleness tracking; nil for SITs loaded without snapshots.
	builtAgainst snapshot
}

// EstimateRange estimates |sigma_{lo <= attr <= hi}(Q)| from the SIT.
func (s *SIT) EstimateRange(lo, hi int64) float64 { return s.Hist.EstimateRange(lo, hi) }

// Config parameterizes a Builder.
type Config struct {
	// Buckets is the histogram bucket budget (the paper's default nb = 100).
	Buckets int
	// HistMethod is the histogram construction algorithm (default
	// MaxDiffArea, the paper's MaxDiff variant).
	HistMethod histogram.Method
	// SampleRate is the reservoir size as a fraction of the scanned table
	// (the paper's default is 10%).
	SampleRate float64
	// MinSample floors the reservoir size so tiny tables still sample.
	MinSample int
	// Seed drives sampling.
	Seed int64
	// WeightedSampling switches Sweep/SweepIndex from stochastic-rounding
	// Algorithm R to an Efraimidis-Spirakis weighted reservoir (extension).
	WeightedSampling bool
	// Use2DOracles answers double-predicate join edges to base tables from
	// two-dimensional histograms instead of multiplying independent 1-D
	// oracles (the multidimensional-histogram extension of Section 3.2).
	Use2DOracles bool
	// Slices2D is the per-dimension slice count of the 2-D histograms
	// (default 16, i.e. up to 256 cells).
	Slices2D int
	// Distinct selects the distinct-value estimator applied to sampled
	// buckets (default GEE; see the sample package).
	Distinct sample.DistinctEstimator
	// Parallelism is the builder's pool width (exec.ResolveParallelism): it
	// caps the fork-join fan-out of the shared sequential scans and of the
	// generating-query pipelines, all running on the process-wide exec pool.
	// 0 uses GOMAXPROCS, 1 runs fully serially (bit-identical to the original
	// single-threaded implementation), n > 1 uses at most n workers. Exact
	// methods (SweepFull, SweepExact) produce bit-identical SITs at every
	// parallelism level; sampled methods (Sweep, SweepIndex) are deterministic
	// for a fixed parallelism level.
	Parallelism int
	// BatchSize overrides the executor's rows-per-batch granularity when
	// materializing generating queries (0 = adaptive from the plan's column
	// width; see exec.AdaptiveBatchSize).
	BatchSize int
	// MemBudget caps the executor's operator memory in bytes (0 = unlimited,
	// the previous behavior). Under a budget, hash-join build sides spill into
	// grace partitioning and sorts become external merge sorts; results are
	// bit-identical at any budget. Spill files live in a temp directory owned
	// by the builder and are removed by Close.
	MemBudget int64
	// Governor injects a shared memory governor instead of the private one a
	// positive MemBudget creates: every Builder (and service request) handed
	// the same Governor reserves against one process-wide byte budget, the
	// steady-state regime a statistics server runs in. A shared governor is
	// not owned by the builder — Close leaves it (and its spill store) alone —
	// and it overrides MemBudget/SpillCompress, which configure only
	// builder-private governors.
	Governor *mem.Governor
	// SpillCompress encodes spill runs with the SRN2 block codec instead of
	// raw SRN1 (DefaultConfig turns it on). Spilled operators read either
	// format transparently; the flag only affects runs written by this
	// builder. Results are bit-identical either way.
	SpillCompress bool
}

// DefaultConfig returns the paper's experimental defaults.
func DefaultConfig() Config {
	return Config{
		Buckets:       100,
		HistMethod:    histogram.MaxDiffArea,
		SampleRate:    0.10,
		MinSample:     100,
		Seed:          1,
		Slices2D:      16,
		SpillCompress: true,
	}
}

func (c Config) validate() error {
	if c.Buckets <= 0 {
		return fmt.Errorf("sit: config needs positive bucket count, got %d", c.Buckets)
	}
	if c.SampleRate <= 0 || c.SampleRate > 1 {
		return fmt.Errorf("sit: sample rate %v out of (0,1]", c.SampleRate)
	}
	if c.MinSample < 1 {
		return fmt.Errorf("sit: minimum sample size %d must be >= 1", c.MinSample)
	}
	if c.Use2DOracles && c.Slices2D < 1 {
		return fmt.Errorf("sit: 2-D oracle slice count %d must be >= 1", c.Slices2D)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("sit: parallelism %d must be >= 0 (0 = GOMAXPROCS)", c.Parallelism)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("sit: batch size %d must be >= 0 (0 = adaptive)", c.BatchSize)
	}
	if c.MemBudget < 0 {
		return fmt.Errorf("sit: memory budget %d must be >= 0 (0 = unlimited)", c.MemBudget)
	}
	return nil
}

// Builder creates SITs over a catalog. It caches base-table histograms,
// B+tree indexes, and intermediate SITs (per method), so repeated builds and
// shared sub-expressions are computed once.
type Builder struct {
	cat  *data.Catalog
	cfg  Config
	base map[string]*histogram.Histogram // "T.a" -> base histogram
	h2d  map[string]*histogram.Hist2D    // "T.a1.a2" -> 2-D histogram
	idx  map[string]*btree.Tree          // "T.a" -> index
	sits map[string]*SIT                 // method + canonical spec -> SIT
	seed int64                           // per-reservoir seed sequence
	gov  *mem.Governor                   // shared (cfg.Governor) or private (cfg.MemBudget > 0)
	// ownsGov marks a builder-private governor: Close tears it down. A
	// governor injected through cfg.Governor is shared across builders and
	// outlives each of them.
	ownsGov bool
}

// NewBuilder creates a Builder over the catalog.
func NewBuilder(cat *data.Catalog, cfg Config) (*Builder, error) {
	if cat == nil {
		return nil, fmt.Errorf("sit: NewBuilder needs a catalog")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	b := &Builder{
		cat:  cat,
		cfg:  cfg,
		base: map[string]*histogram.Histogram{},
		h2d:  map[string]*histogram.Hist2D{},
		idx:  map[string]*btree.Tree{},
		sits: map[string]*SIT{},
		seed: cfg.Seed,
	}
	switch {
	case cfg.Governor != nil:
		b.gov = cfg.Governor
	case cfg.MemBudget > 0:
		b.gov = mem.NewGovernor(cfg.MemBudget)
		b.gov.SetSpillCompression(cfg.SpillCompress)
		b.ownsGov = true
	}
	return b, nil
}

// Governor returns the builder's memory governor — the shared one injected
// through Config.Governor, the private one created for Config.MemBudget, or
// nil when the builder is un-budgeted.
func (b *Builder) Governor() *mem.Governor { return b.gov }

// Close releases the builder's spill resources (the governor's run-store temp
// directory) when the builder owns its governor; a governor shared through
// Config.Governor is left running for its other builders. It is safe on an
// un-budgeted builder and safe to call twice; the builder must not execute
// further plans afterwards.
func (b *Builder) Close() error {
	if !b.ownsGov {
		return nil
	}
	return b.gov.Close()
}

// hist2D returns (building and caching on first use) the 2-D histogram over
// the table's attribute pair.
func (b *Builder) hist2D(table, attr1, attr2 string) (*histogram.Hist2D, error) {
	key := table + "." + attr1 + "." + attr2
	if h, ok := b.h2d[key]; ok {
		return h, nil
	}
	t, err := b.cat.Table(table)
	if err != nil {
		return nil, err
	}
	c1, err := t.Column(attr1)
	if err != nil {
		return nil, err
	}
	c2, err := t.Column(attr2)
	if err != nil {
		return nil, err
	}
	h, err := histogram.Build2D(c1, c2, b.cfg.Slices2D, b.cfg.Slices2D)
	if err != nil {
		return nil, err
	}
	b.h2d[key] = h
	return h, nil
}

// Catalog returns the data catalog the builder operates on.
func (b *Builder) Catalog() *data.Catalog { return b.cat }

// Config returns the builder configuration.
func (b *Builder) Config() Config { return b.cfg }

// nextSeed returns a fresh deterministic seed for a reservoir.
func (b *Builder) nextSeed() int64 {
	b.seed++
	return b.seed
}

// BaseHistogram returns (building and caching on first use) the base-table
// histogram over table.attr with the configured bucket budget.
func (b *Builder) BaseHistogram(table, attr string) (*histogram.Histogram, error) {
	return b.baseHistogramN(table, attr, b.cfg.Buckets)
}

// baseHistogramN builds a base histogram with an explicit bucket budget;
// SweepExact uses an effectively unbounded budget for exactness.
func (b *Builder) baseHistogramN(table, attr string, nb int) (*histogram.Histogram, error) {
	key := fmt.Sprintf("%s.%s#%d", table, attr, nb)
	if h, ok := b.base[key]; ok {
		return h, nil
	}
	t, err := b.cat.Table(table)
	if err != nil {
		return nil, err
	}
	vals, err := t.Column(attr)
	if err != nil {
		return nil, err
	}
	h, err := histogram.FromValues(vals, nb, b.cfg.HistMethod)
	if err != nil {
		return nil, err
	}
	b.base[key] = h
	return h, nil
}

// Index returns (building and caching on first use) a B+tree over table.attr
// for exact multiplicity lookups.
func (b *Builder) Index(table, attr string) (*btree.Tree, error) {
	key := table + "." + attr
	if t, ok := b.idx[key]; ok {
		return t, nil
	}
	tab, err := b.cat.Table(table)
	if err != nil {
		return nil, err
	}
	vals, err := tab.Column(attr)
	if err != nil {
		return nil, err
	}
	tree := btree.Build(vals)
	b.idx[key] = tree
	return tree, nil
}

// Cached returns the cached SIT for a spec and method, if present.
func (b *Builder) Cached(spec query.SITSpec, m Method) (*SIT, bool) {
	s, ok := b.sits[cacheKey(spec, m)]
	return s, ok
}

// InvalidateCache drops all cached SITs (but keeps base histograms and
// indexes, which only depend on the immutable base data).
func (b *Builder) InvalidateCache() { b.sits = map[string]*SIT{} }

func cacheKey(spec query.SITSpec, m Method) string {
	return m.String() + "|" + spec.Canonical()
}

// SampleSize returns the reservoir capacity used when scanning the table:
// max(MinSample, SampleRate * |table|). This is the SampleSize(T) quantity of
// the scheduling cost model (Section 4.3).
func (b *Builder) SampleSize(table string) (int, error) {
	t, err := b.cat.Table(table)
	if err != nil {
		return 0, err
	}
	k := int(b.cfg.SampleRate * float64(t.NumRows()))
	if k < b.cfg.MinSample {
		k = b.cfg.MinSample
	}
	return k, nil
}

// exactBuckets is the "unbounded" bucket budget used by exact paths.
const exactBuckets = math.MaxInt32
