package scs

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func seq(s string) []string {
	out := make([]string, len(s))
	for i, r := range s {
		out[i] = string(r)
	}
	return out
}

func TestPaperExample4(t *testing.T) {
	// Example 4: SCS({abdc, bca}) has length 5 (abdca is one solution).
	res, err := Solve([][]string{seq("abdc"), seq("bca")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 5 || len(res.Sequence) != 5 {
		t.Errorf("cost = %v, seq = %v, want length 5", res.Cost, res.Sequence)
	}
	for _, in := range [][]string{seq("abdc"), seq("bca")} {
		if !IsSupersequence(res.Sequence, in) {
			t.Errorf("%v is not a supersequence of %v", res.Sequence, in)
		}
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	res, err := Solve(nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequence) != 0 || res.Cost != 0 {
		t.Errorf("empty instance: %v", res)
	}
	res, err = Solve([][]string{{}, {}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sequence) != 0 {
		t.Errorf("all-empty sequences: %v", res.Sequence)
	}
	res, err = Solve([][]string{seq("abc")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Sequence, seq("abc")) {
		t.Errorf("single sequence should be its own SCS: %v", res.Sequence)
	}
	if _, err := Solve([][]string{{""}}, Options{}); err == nil {
		t.Error("empty symbol: want error")
	}
}

func TestIdenticalSequences(t *testing.T) {
	res, err := Solve([][]string{seq("xyz"), seq("xyz"), seq("xyz")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 3 {
		t.Errorf("identical sequences: cost %v, want 3", res.Cost)
	}
}

func TestDisjointSequences(t *testing.T) {
	res, err := Solve([][]string{seq("ab"), seq("cd")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 4 {
		t.Errorf("disjoint sequences: cost %v, want 4", res.Cost)
	}
}

func TestWeighted(t *testing.T) {
	// Sequences {ab, ba}: SCSs of length 3 are aba and bab. With a costing
	// 10 and b costing 1, bab (cost 12) beats aba (cost 21).
	res, err := Solve([][]string{seq("ab"), seq("ba")}, Options{
		Cost: map[string]float64{"a": 10, "b": 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Sequence, seq("bab")) {
		t.Errorf("weighted SCS = %v, want [b a b]", res.Sequence)
	}
	if res.Cost != 12 {
		t.Errorf("cost = %v, want 12", res.Cost)
	}
	if _, err := Solve([][]string{seq("ab")}, Options{Cost: map[string]float64{"a": 1}}); err == nil {
		t.Error("missing symbol cost: want error")
	}
	if _, err := Solve([][]string{seq("a")}, Options{Cost: map[string]float64{"a": -1}}); err == nil {
		t.Error("non-positive cost: want error")
	}
}

func TestExpansionBudget(t *testing.T) {
	seqs := [][]string{seq("abcabcabc"), seq("cbacbacba"), seq("bacbacbac")}
	if _, err := Solve(seqs, Options{MaxExpansions: 2}); err == nil {
		t.Error("tiny expansion budget: want error")
	}
}

func TestHeuristicMatchesDijkstra(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	letters := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(3) + 2
		seqs := make([][]string, n)
		for i := range seqs {
			l := rng.Intn(5) + 1
			s := make([]string, l)
			for j := range s {
				s[j] = letters[rng.Intn(len(letters))]
			}
			seqs[i] = s
		}
		cost := map[string]float64{"a": 1, "b": 2, "c": 3, "d": 1.5}
		astar, err := Solve(seqs, Options{Cost: cost})
		if err != nil {
			t.Fatal(err)
		}
		dij, err := Solve(seqs, Options{Cost: cost, DisableHeuristic: true})
		if err != nil {
			t.Fatal(err)
		}
		if astar.Cost != dij.Cost {
			t.Fatalf("trial %d: A* cost %v != Dijkstra cost %v (seqs %v)", trial, astar.Cost, dij.Cost, seqs)
		}
		if astar.Stats.Expanded > dij.Stats.Expanded {
			t.Errorf("trial %d: heuristic expanded more states (%d) than Dijkstra (%d)",
				trial, astar.Stats.Expanded, dij.Stats.Expanded)
		}
	}
}

func TestIsSupersequence(t *testing.T) {
	cases := []struct {
		super, sub string
		want       bool
	}{
		{"abdca", "abdc", true},
		{"abdca", "bca", true},
		{"abdca", "cab", false},
		{"", "", true},
		{"abc", "", true},
		{"", "a", false},
		{"aab", "ab", true},
	}
	for _, c := range cases {
		if got := IsSupersequence(seq(c.super), seq(c.sub)); got != c.want {
			t.Errorf("IsSupersequence(%q,%q) = %v, want %v", c.super, c.sub, got, c.want)
		}
	}
}

// Property: the solution is a common supersequence, its length is at least
// the longest input and at most the total input length, and unit cost equals
// length.
func TestSolveQuick(t *testing.T) {
	letters := []string{"a", "b", "c"}
	f := func(raw [][]byte) bool {
		if len(raw) > 4 {
			raw = raw[:4]
		}
		var seqs [][]string
		total, longest := 0, 0
		for _, r := range raw {
			if len(r) > 6 {
				r = r[:6]
			}
			s := make([]string, len(r))
			for i, b := range r {
				s[i] = letters[int(b)%len(letters)]
			}
			seqs = append(seqs, s)
			total += len(s)
			if len(s) > longest {
				longest = len(s)
			}
		}
		res, err := Solve(seqs, Options{})
		if err != nil {
			return false
		}
		if int(res.Cost) != len(res.Sequence) {
			return false
		}
		if len(res.Sequence) < longest || len(res.Sequence) > total {
			return false
		}
		for _, s := range seqs {
			if !IsSupersequence(res.Sequence, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
