package scs

import (
	"math/rand"
	"testing"
)

// BenchmarkSolve measures the SCS A* on moderate random instances.
func BenchmarkSolve(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	letters := []string{"a", "b", "c", "d", "e", "f"}
	seqs := make([][]string, 6)
	for i := range seqs {
		s := make([]string, 5)
		for j := range s {
			s[j] = letters[rng.Intn(len(letters))]
		}
		seqs[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(seqs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
