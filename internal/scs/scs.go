// Package scs solves the Shortest Common Supersequence problem of Section
// 4.1/4.2: given a set of sequences, find a minimum-cost sequence containing
// each input as a subsequence. The solver is the A* formulation of Nicosia &
// Oriolo adapted in the paper: states are vectors of per-sequence positions,
// an edge labelled c advances every sequence whose next element is c, and the
// admissible heuristic is h(u) = sum_c cost(c) * o(u,c) where o(u,c) is the
// maximum number of occurrences of c in any remaining suffix.
//
// The package is symbol-cost weighted (the unweighted problem is the special
// case cost == 1) and also exposes a Dijkstra mode (heuristic off) used to
// cross-check optimality in tests. The memory-constrained variant needed for
// multi-SIT scheduling lives in package sched, which generalizes the
// successor relation.
package scs

import (
	"container/heap"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Options tunes the solver.
type Options struct {
	// Cost maps each symbol to its weight; symbols absent from a non-nil map
	// are an error. A nil map means unit costs (classic SCS).
	Cost map[string]float64
	// DisableHeuristic turns A* into Dijkstra (used to validate the
	// heuristic's admissibility in tests).
	DisableHeuristic bool
	// MaxExpansions aborts the search after expanding this many states
	// (0 = unlimited).
	MaxExpansions int
}

// Stats reports search effort.
type Stats struct {
	Expanded  int
	Generated int
}

// Result is a solved SCS instance.
type Result struct {
	// Sequence is an optimal common supersequence.
	Sequence []string
	// Cost is its total symbol cost (its length under unit costs).
	Cost  float64
	Stats Stats
}

// Solve finds a minimum-cost common supersequence of seqs. Empty input (or
// all-empty sequences) yields an empty supersequence.
func Solve(seqs [][]string, opts Options) (Result, error) {
	syms := map[string]bool{}
	for _, s := range seqs {
		for _, c := range s {
			if c == "" {
				return Result{}, fmt.Errorf("scs: empty symbol in input")
			}
			syms[c] = true
		}
	}
	// symList is sorted so every downstream walk — cost validation, the
	// floating-point heuristic sum, successor generation — is independent of
	// map iteration order; with equal-cost ties the A* result is then stable
	// run to run.
	symList := make([]string, 0, len(syms))
	for c := range syms {
		symList = append(symList, c)
	}
	sort.Strings(symList)
	cost := func(c string) float64 { return 1 }
	if opts.Cost != nil {
		for _, c := range symList {
			if w, ok := opts.Cost[c]; !ok {
				return Result{}, fmt.Errorf("scs: no cost for symbol %q", c)
			} else if w <= 0 {
				return Result{}, fmt.Errorf("scs: cost for symbol %q must be positive, got %v", c, w)
			}
		}
		cost = func(c string) float64 { return opts.Cost[c] }
	}

	// suffix counts: cnt[i][p][c] = occurrences of c in seqs[i][p:].
	cnt := make([]map[string][]int, len(seqs))
	for i, s := range seqs {
		cnt[i] = map[string][]int{}
		for _, c := range symList {
			counts := make([]int, len(s)+1)
			for p := len(s) - 1; p >= 0; p-- {
				counts[p] = counts[p+1]
				if s[p] == c {
					counts[p]++
				}
			}
			cnt[i][c] = counts
		}
	}
	h := func(pos []int) float64 {
		total := 0.0
		for _, c := range symList {
			o := 0
			for i := range seqs {
				if n := cnt[i][c][pos[i]]; n > o {
					o = n
				}
			}
			total += cost(c) * float64(o)
		}
		return total
	}
	if opts.DisableHeuristic {
		h = func([]int) float64 { return 0 }
	}

	start := make([]int, len(seqs))
	goal := func(pos []int) bool {
		for i, p := range pos {
			if p < len(seqs[i]) {
				return false
			}
		}
		return true
	}

	info := map[string]*nodeInfo{}
	startKey := keyOf(start)
	info[startKey] = &nodeInfo{}
	pq := &priorityQueue{}
	heap.Push(pq, pqItem{key: startKey, pos: start, f: h(start)})
	stats := Stats{Generated: 1}

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(pqItem)
		ci := info[cur.key]
		if ci.closed {
			continue
		}
		ci.closed = true
		stats.Expanded++
		if opts.MaxExpansions > 0 && stats.Expanded > opts.MaxExpansions {
			return Result{}, fmt.Errorf("scs: expansion budget %d exhausted", opts.MaxExpansions)
		}
		if goal(cur.pos) {
			return Result{Sequence: reconstruct(info, cur.key), Cost: ci.g, Stats: stats}, nil
		}
		// Successors: one per distinct next symbol, advancing every sequence
		// whose next element is that symbol (dominant in unconstrained SCS).
		// Symbols expand in sorted order so ties in f are broken identically
		// on every run.
		seen := map[string]bool{}
		var next []string
		for i, p := range cur.pos {
			if p < len(seqs[i]) {
				if c := seqs[i][p]; !seen[c] {
					seen[c] = true
					next = append(next, c)
				}
			}
		}
		sort.Strings(next)
		for _, c := range next {
			npos := make([]int, len(cur.pos))
			copy(npos, cur.pos)
			for i, p := range npos {
				if p < len(seqs[i]) && seqs[i][p] == c {
					npos[i] = p + 1
				}
			}
			nk := keyOf(npos)
			ng := ci.g + cost(c)
			ni, seen := info[nk]
			if seen && (ni.closed || ni.g <= ng) {
				continue
			}
			if !seen {
				ni = &nodeInfo{}
				info[nk] = ni
			}
			ni.g = ng
			ni.parent = cur.key
			ni.label = c
			heap.Push(pq, pqItem{key: nk, pos: npos, f: ng + h(npos)})
			stats.Generated++
		}
	}
	return Result{}, fmt.Errorf("scs: search exhausted without reaching the goal")
}

func reconstruct(info map[string]*nodeInfo, key string) []string {
	var rev []string
	for {
		n := info[key]
		if n.label == "" {
			break
		}
		rev = append(rev, n.label)
		key = n.parent
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// nodeInfo is the per-state bookkeeping of the A* search.
type nodeInfo struct {
	g      float64
	parent string
	label  string
	closed bool
}

func keyOf(pos []int) string {
	var sb strings.Builder
	for i, p := range pos {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(p))
	}
	return sb.String()
}

// IsSupersequence reports whether super contains sub as a subsequence.
func IsSupersequence(super, sub []string) bool {
	j := 0
	for _, c := range super {
		if j < len(sub) && sub[j] == c {
			j++
		}
	}
	return j == len(sub)
}

type pqItem struct {
	key string
	pos []int
	f   float64
}

type priorityQueue []pqItem

func (q priorityQueue) Len() int            { return len(q) }
func (q priorityQueue) Less(i, j int) bool  { return q[i].f < q[j].f }
func (q priorityQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *priorityQueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *priorityQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}
