package scs

import (
	"reflect"
	"testing"
)

// TestSolveRunToRunStable: unit costs make every optimal supersequence of
// these inputs cost the same, so A* is all ties; sorted successor generation
// must pin the returned sequence. A regression here means symbol or successor
// enumeration fell back to map iteration order.
func TestSolveRunToRunStable(t *testing.T) {
	seqs := [][]string{
		{"a", "b", "c", "d"},
		{"b", "c", "d", "a"},
		{"c", "d", "a", "b"},
		{"d", "a", "b", "c"},
	}
	first, err := Solve(seqs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seqs {
		if !IsSupersequence(first.Sequence, s) {
			t.Fatalf("result %v is not a supersequence of %v", first.Sequence, s)
		}
	}
	for i := 0; i < 20; i++ {
		again, err := Solve(seqs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again.Cost != first.Cost {
			t.Fatalf("run %d: cost %v != %v", i, again.Cost, first.Cost)
		}
		if !reflect.DeepEqual(again.Sequence, first.Sequence) {
			t.Fatalf("run %d: sequence changed across runs:\n first: %v\n again: %v",
				i, first.Sequence, again.Sequence)
		}
	}
}

// TestSolveDeterministicCostError: with several symbols missing from the
// cost map, the reported symbol must not depend on map iteration order (the
// symbol list is validated in sorted order).
func TestSolveDeterministicCostError(t *testing.T) {
	seqs := [][]string{{"z", "y", "x"}, {"x", "z"}}
	for i := 0; i < 10; i++ {
		_, err := Solve(seqs, Options{Cost: map[string]float64{"z": 1}})
		if err == nil {
			t.Fatal("want error for missing costs")
		}
		want := `scs: no cost for symbol "x"`
		if err.Error() != want {
			t.Fatalf("run %d: got %q, want %q", i, err, want)
		}
	}
}
