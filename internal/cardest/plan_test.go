package cardest

import (
	"reflect"
	"testing"

	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sit"
)

// TestPlanMatchesEstimate asserts the prepare/execute split is invisible: a
// plan prepared once and executed with many constant sets answers
// bit-identically to one-shot Estimate calls, both before and after SITs are
// registered.
func TestPlanMatchesEstimate(t *testing.T) {
	b, e, expr := correlatedSetup(t)
	spec, err := query.NewSITSpec("T2", "a", expr)
	if err != nil {
		t.Fatal(err)
	}
	s, err := b.Build(spec, sit.SweepFull)
	if err != nil {
		t.Fatal(err)
	}

	ranges := [][2]int64{{0, 900}, {100, 1500}, {500, 501}, {0, 1 << 40}}
	for _, registered := range []bool{false, true} {
		if registered {
			if err := e.Register(s); err != nil {
				t.Fatal(err)
			}
		}
		cols := []PredColumn{{Table: "T2", Attr: "a"}, {Table: "T1", Attr: "b"}}
		plan, err := e.Prepare(expr, cols)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range ranges {
			preds := []Predicate{
				{Table: "T2", Attr: "a", Lo: r[0], Hi: r[1]},
				{Table: "T1", Attr: "b", Lo: 0, Hi: 5000},
			}
			fromPlan, err := plan.Execute(preds)
			if err != nil {
				t.Fatal(err)
			}
			oneShot, err := e.Estimate(SPJQuery{Expr: expr, Preds: preds})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fromPlan, oneShot) {
				t.Fatalf("registered=%v range %v: plan execute diverges from Estimate:\nplan %+v\nest  %+v",
					registered, r, fromPlan, oneShot)
			}
			if registered && fromPlan.Sources[0].Stat != s.Spec.String() {
				t.Fatalf("plan did not resolve the registered SIT: %+v", fromPlan.Sources[0])
			}
		}
	}
}

// TestPlanNoPredicates covers the predicate-free shape: the plan carries only
// the join cardinality.
func TestPlanNoPredicates(t *testing.T) {
	_, e, expr := correlatedSetup(t)
	plan, err := e.Prepare(expr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NumSlots() != 0 {
		t.Fatalf("slots %d, want 0", plan.NumSlots())
	}
	got, err := plan.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.Estimate(SPJQuery{Expr: expr})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("predicate-free plan diverges: %+v vs %+v", got, want)
	}
}

// TestPlanValidation covers shape mismatches between Prepare and Execute.
func TestPlanValidation(t *testing.T) {
	_, e, expr := correlatedSetup(t)
	if _, err := e.Prepare(nil, nil); err == nil {
		t.Error("nil expr: want error")
	}
	if _, err := e.Prepare(expr, []PredColumn{{Table: "ZZ", Attr: "a"}}); err == nil {
		t.Error("column outside query: want error")
	}
	plan, err := e.Prepare(expr, []PredColumn{{Table: "T2", Attr: "a"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Execute(nil); err == nil {
		t.Error("arity mismatch: want error")
	}
	if _, err := plan.Execute([]Predicate{{Table: "T1", Attr: "b", Lo: 0, Hi: 1}}); err == nil {
		t.Error("column mismatch: want error")
	}
	if _, err := plan.Execute([]Predicate{{Table: "T2", Attr: "a", Lo: 5, Hi: 1}}); err == nil {
		t.Error("empty range: want error")
	}
}

// TestShapeKey asserts shape keys are order-insensitive in the columns and
// distinguish different shapes.
func TestShapeKey(t *testing.T) {
	_, _, expr := correlatedSetup(t)
	a := ShapeKey(expr, []PredColumn{{"T2", "a"}, {"T1", "b"}})
	b := ShapeKey(expr, []PredColumn{{"T1", "b"}, {"T2", "a"}})
	if a != b {
		t.Fatalf("permuted columns changed the shape key:\n%q\n%q", a, b)
	}
	if c := ShapeKey(expr, []PredColumn{{"T2", "a"}}); c == a {
		t.Fatal("dropping a column kept the shape key")
	}
	if d := ShapeKey(expr, nil); d != expr.Canonical() {
		t.Fatalf("empty shape key %q, want canonical expr %q", d, expr.Canonical())
	}
}
