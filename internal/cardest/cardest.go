// Package cardest is the optimizer-integration layer reviewed in Section
// 2.2: a cardinality-estimation module for SPJ queries that transparently
// exploits applicable SITs and falls back to traditional base-histogram
// propagation when none match. It plays the role of the "wrapper on top of
// the original cardinality estimation module" of the paper's reference [2]:
// given an SPJ query (an acyclic join expression plus range predicates), it
// rewrites the estimation to use the most specific registered SIT per
// predicate — the materialized-view-style matching is done on canonical
// expression forms.
package cardest

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sit"
)

// Predicate is one inclusive range predicate lo <= Table.Attr <= hi.
type Predicate struct {
	Table, Attr string
	Lo, Hi      int64
}

// String renders the predicate.
func (p Predicate) String() string {
	return fmt.Sprintf("%d <= %s.%s <= %d", p.Lo, p.Table, p.Attr, p.Hi)
}

// SPJQuery is a select-project-join query: an acyclic join generating
// expression and a conjunction of range predicates over its tables.
type SPJQuery struct {
	Expr  *query.Expr
	Preds []Predicate
}

// PredSource records which statistic answered one predicate's selectivity.
type PredSource struct {
	Pred Predicate
	// Stat names the statistic used: "SIT(...)" or "base histogram T.a".
	Stat string
	// Tables is the number of tables covered by the statistic's expression
	// (1 for base histograms); more tables means fewer propagation steps.
	Tables int
	// Selectivity is the predicate's estimated selectivity.
	Selectivity float64
}

// Estimate is a cardinality estimate together with its provenance.
type Estimate struct {
	// Cardinality is the estimated result size of the SPJ query.
	Cardinality float64
	// JoinCard is the estimated cardinality of the join before predicates.
	JoinCard float64
	// JoinStat names the statistic that provided JoinCard.
	JoinStat string
	// Sources records the statistic used per predicate.
	Sources []PredSource
}

// Estimator estimates SPJ query cardinalities using registered SITs.
type Estimator struct {
	b    *sit.Builder
	sits map[string][]*sit.SIT // canonical expr -> SITs over that expr
}

// New creates an estimator over the builder's catalog and base statistics.
func New(b *sit.Builder) (*Estimator, error) {
	if b == nil {
		return nil, fmt.Errorf("cardest: New needs a builder")
	}
	return &Estimator{b: b, sits: map[string][]*sit.SIT{}}, nil
}

// Register makes a SIT available for matching. Registering a second SIT with
// the same spec replaces the first.
func (e *Estimator) Register(s *sit.SIT) error {
	if s == nil || s.Hist == nil {
		return fmt.Errorf("cardest: cannot register nil SIT")
	}
	key := s.Spec.Expr.Canonical()
	for i, old := range e.sits[key] {
		if old.Spec.Canonical() == s.Spec.Canonical() {
			e.sits[key][i] = s
			return nil
		}
	}
	e.sits[key] = append(e.sits[key], s)
	return nil
}

// Registered returns the number of registered SITs.
func (e *Estimator) Registered() int {
	n := 0
	for _, l := range e.sits {
		n += len(l)
	}
	return n
}

// Estimate estimates the cardinality of the SPJ query as
//
//	card(join) * product over predicates of selectivity(p)
//
// where card(join) comes from a SIT over the full expression when one is
// registered (any attribute) and base-histogram propagation otherwise, and
// each predicate's selectivity comes from the most specific applicable SIT —
// the registered SIT over the predicate's attribute whose expression is the
// largest sub-expression of the query — falling back to the attribute's
// base-table histogram (the traditional estimation of Section 2.1).
//
// Estimate is the one-shot composition of the two-phase API: it prepares a
// plan for the query's shape and executes it with the query's constants, so
// its answers are bit-identical to a cached plan probed with the same
// constants.
func (e *Estimator) Estimate(q SPJQuery) (Estimate, error) {
	if q.Expr == nil {
		return Estimate{}, fmt.Errorf("cardest: query needs a join expression")
	}
	for _, p := range q.Preds {
		if !q.Expr.HasTable(p.Table) {
			return Estimate{}, fmt.Errorf("cardest: predicate %q references table outside the query", p.String())
		}
		if p.Hi < p.Lo {
			return Estimate{}, fmt.Errorf("cardest: predicate %q has an empty range", p.String())
		}
	}
	plan, err := e.Prepare(q.Expr, Columns(q.Preds))
	if err != nil {
		return Estimate{}, err
	}
	return plan.Execute(q.Preds)
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// predSet returns the normalized predicate strings of an expression.
func predSet(e *query.Expr) map[string]bool {
	set := map[string]bool{}
	for _, part := range strings.Split(exprPreds(e), "\x00") {
		if part != "" {
			set[part] = true
		}
	}
	return set
}

func exprPreds(e *query.Expr) string {
	var parts []string
	for _, j := range e.Joins() {
		// Normalize by routing through canonical form of a 1-join expr:
		// cheaper to normalize directly.
		lt, la, rt, ra := j.LeftTable, j.LeftAttr, j.RightTable, j.RightAttr
		if lt > rt || (lt == rt && la > ra) {
			lt, la, rt, ra = rt, ra, lt, la
		}
		parts = append(parts, fmt.Sprintf("%s.%s=%s.%s", lt, la, rt, ra))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x00")
}

// isSubExpression reports whether sub's tables and predicates are contained
// in q's: the condition for the SIT to be applicable to the query (the
// materialized-view matching of Section 2.2, restricted to join expressions).
func isSubExpression(sub, q *query.Expr, qPreds map[string]bool) bool {
	for _, t := range sub.Tables() {
		if !q.HasTable(t) {
			return false
		}
	}
	for p := range predSet(sub) {
		if !qPreds[p] {
			return false
		}
	}
	return true
}
