package cardest

import (
	"fmt"
	"sort"
	"strings"

	"github.com/sitstats/sits/internal/histogram"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sit"
)

// This file is the prepare half of the estimator's prepare/execute split.
// Preparation does everything that depends only on the query *shape* — the
// join expression and the predicate columns, not the predicate constants:
// canonicalization, candidate-SIT enumeration and ranking, and resolution of
// the exact histograms the estimate will probe. The result is an immutable
// EstimatorPlan whose Execute probes those histograms with concrete
// constants, allocation-free on the probing path. Serving layers cache plans
// per shape so a constant change re-probes instead of re-matching.

// PredColumn is the shape of one predicate: the column it constrains,
// without the constants.
type PredColumn struct {
	Table, Attr string
}

// Columns extracts the predicate columns (the conjunction's shape) from
// concrete predicates, in order.
func Columns(preds []Predicate) []PredColumn {
	if len(preds) == 0 {
		return nil
	}
	cols := make([]PredColumn, len(preds))
	for i, p := range preds {
		cols[i] = PredColumn{Table: p.Table, Attr: p.Attr}
	}
	return cols
}

// ShapeKey renders the canonical form of a query shape: the expression's
// canonical string plus the sorted predicate columns, NUL-separated. Two
// queries with the same shape key prepare to interchangeable plans.
func ShapeKey(expr *query.Expr, cols []PredColumn) string {
	sorted := append([]PredColumn(nil), cols...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Table != sorted[j].Table {
			return sorted[i].Table < sorted[j].Table
		}
		return sorted[i].Attr < sorted[j].Attr
	})
	var sb strings.Builder
	sb.WriteString(expr.Canonical())
	for _, c := range sorted {
		sb.WriteByte(0)
		sb.WriteString(c.Table)
		sb.WriteByte('.')
		sb.WriteString(c.Attr)
	}
	return sb.String()
}

// planSlot is one predicate position's resolved statistic: the histogram the
// execute phase probes, with its provenance and precomputed total mass. The
// histogram is immutable, so total is bit-identical to recomputing
// TotalFreq() at probe time.
type planSlot struct {
	col    PredColumn
	stat   string
	tables int
	hist   *histogram.Histogram
	total  float64
}

// EstimatorPlan is the immutable prepared state for one query shape. It pins
// the statistics that were resolved at preparation time (SIT histograms or
// base-table fallbacks); Execute probes them with concrete constants.
// A plan reflects the estimator's registered SIT set at Prepare time —
// callers that mutate the set (Register) or the underlying tables are
// responsible for re-preparing, which serving layers do by keying cached
// plans on the registry's per-table generations.
type EstimatorPlan struct {
	exprCanonical string
	joinCard      float64
	joinStat      string
	slots         []planSlot
}

// Prepare compiles the estimation of one query shape: it resolves the join
// cardinality (from a SIT over the exact expression, or base-histogram
// propagation) and, for every predicate column, the most specific applicable
// statistic — exactly the matching Estimate performs, hoisted out of the
// per-request path. The returned plan is immutable and safe for concurrent
// Execute calls.
func (e *Estimator) Prepare(expr *query.Expr, cols []PredColumn) (*EstimatorPlan, error) {
	if expr == nil {
		return nil, fmt.Errorf("cardest: Prepare needs a join expression")
	}
	for _, c := range cols {
		if !expr.HasTable(c.Table) {
			return nil, fmt.Errorf("cardest: predicate column %s.%s references table outside the query", c.Table, c.Attr)
		}
	}
	p := &EstimatorPlan{exprCanonical: expr.Canonical()}

	// Join cardinality: prefer any SIT over the exact expression.
	if matches := e.sits[p.exprCanonical]; len(matches) > 0 {
		p.joinCard = matches[0].EstimatedCard
		p.joinStat = matches[0].Spec.String()
	} else {
		card, err := e.b.EstimateJoinCard(expr)
		if err != nil {
			return nil, err
		}
		p.joinCard = card
		p.joinStat = "base-histogram propagation"
	}

	if len(cols) == 0 {
		return p, nil
	}
	p.slots = make([]planSlot, len(cols))
	qPreds := predSet(expr)
	// Candidate expressions are scanned in sorted canonical order so that a
	// tie on specificity (two applicable SITs over the same number of tables)
	// always resolves to the same statistic: repeated preparations — and a
	// serving cache comparing plan-hit probes against cold estimation — see
	// bit-identical results regardless of map iteration order.
	keys := make([]string, 0, len(e.sits))
	for k := range e.sits {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, c := range cols {
		slot, err := e.resolveSlot(expr, qPreds, keys, c)
		if err != nil {
			return nil, err
		}
		p.slots[i] = slot
	}
	return p, nil
}

// resolveSlot finds the most specific statistic for one predicate column.
func (e *Estimator) resolveSlot(expr *query.Expr, qPreds map[string]bool, keys []string, c PredColumn) (planSlot, error) {
	var best *sit.SIT
	for _, k := range keys {
		for _, s := range e.sits[k] {
			if s.Spec.Table != c.Table || s.Spec.Attr != c.Attr {
				continue
			}
			if !isSubExpression(s.Spec.Expr, expr, qPreds) {
				continue
			}
			if best == nil || s.Spec.Expr.NumTables() > best.Spec.Expr.NumTables() {
				best = s
			}
		}
	}
	if best != nil {
		return planSlot{
			col:    c,
			stat:   best.Spec.String(),
			tables: best.Spec.Expr.NumTables(),
			hist:   best.Hist,
			total:  best.Hist.TotalFreq(),
		}, nil
	}
	h, err := e.b.BaseHistogram(c.Table, c.Attr)
	if err != nil {
		return planSlot{}, err
	}
	return planSlot{
		col:    c,
		stat:   fmt.Sprintf("base histogram %s.%s", c.Table, c.Attr),
		tables: 1,
		hist:   h,
		total:  h.TotalFreq(),
	}, nil
}

// Execute probes the plan's resolved histograms with concrete predicate
// constants and assembles the estimate. The predicates must match the plan's
// columns positionally (the shape the plan was prepared for); selectivities
// multiply in slot order, so an estimate is bit-identical to what a cold
// Prepare+Execute of the same normalized query would produce.
func (p *EstimatorPlan) Execute(preds []Predicate) (Estimate, error) {
	if len(preds) != len(p.slots) {
		return Estimate{}, fmt.Errorf("cardest: plan prepared for %d predicates, got %d", len(p.slots), len(preds))
	}
	for i, pr := range preds {
		if pr.Table != p.slots[i].col.Table || pr.Attr != p.slots[i].col.Attr {
			return Estimate{}, fmt.Errorf("cardest: predicate %d is over %s.%s, plan slot expects %s.%s",
				i, pr.Table, pr.Attr, p.slots[i].col.Table, p.slots[i].col.Attr)
		}
		if pr.Hi < pr.Lo {
			return Estimate{}, fmt.Errorf("cardest: predicate %q has an empty range", pr.String())
		}
	}
	out := Estimate{JoinCard: p.joinCard, JoinStat: p.joinStat, Cardinality: p.joinCard}
	if len(preds) == 0 {
		return out, nil
	}
	out.Sources = make([]PredSource, len(preds))
	p.probe(preds, out.Sources)
	for i := range out.Sources {
		out.Cardinality *= out.Sources[i].Selectivity
	}
	return out, nil
}

// probe fills one PredSource per predicate by probing the slot histograms.
// This is the execute phase's kernel: no matching, no candidate enumeration,
// no allocation — just range probes against already-resolved histograms.
//
//statcheck:hot
func (p *EstimatorPlan) probe(preds []Predicate, out []PredSource) {
	for i := range preds {
		s := &p.slots[i]
		sel := 1.0
		if s.total > 0 {
			sel = s.hist.EstimateRange(preds[i].Lo, preds[i].Hi) / s.total
		}
		out[i] = PredSource{
			Pred:        preds[i],
			Stat:        s.stat,
			Tables:      s.tables,
			Selectivity: clampSel(sel),
		}
	}
}

// NumSlots returns the number of predicate positions the plan was prepared
// for.
func (p *EstimatorPlan) NumSlots() int { return len(p.slots) }

// JoinStat names the statistic that provided the plan's join cardinality.
func (p *EstimatorPlan) JoinStat() string { return p.joinStat }
