package cardest

import (
	"math"
	"strings"
	"testing"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/exec"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sit"
)

// correlatedSetup builds a 2-table join with strongly correlated join/SIT
// attributes (the scenario where base-histogram propagation fails), plus a
// builder and estimator.
func correlatedSetup(t *testing.T) (*sit.Builder, *Estimator, *query.Expr) {
	t.Helper()
	cfg := datagen.DefaultChainConfig()
	cfg.Tables = 2
	cfg.Rows = []int{4000, 3000}
	cat, err := datagen.ChainDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sit.NewBuilder(cat, sit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	expr, err := query.NewExpr(query.JoinPred{LeftTable: "T1", LeftAttr: "jnext", RightTable: "T2", RightAttr: "jprev"})
	if err != nil {
		t.Fatal(err)
	}
	return b, e, expr
}

func TestEstimateValidation(t *testing.T) {
	_, e, expr := correlatedSetup(t)
	if _, err := e.Estimate(SPJQuery{}); err == nil {
		t.Error("nil expr: want error")
	}
	if _, err := e.Estimate(SPJQuery{Expr: expr, Preds: []Predicate{{Table: "ZZ", Attr: "a", Lo: 0, Hi: 1}}}); err == nil {
		t.Error("predicate outside query: want error")
	}
	if _, err := e.Estimate(SPJQuery{Expr: expr, Preds: []Predicate{{Table: "T2", Attr: "a", Lo: 5, Hi: 1}}}); err == nil {
		t.Error("empty range: want error")
	}
}

func TestRegisterValidation(t *testing.T) {
	_, e, _ := correlatedSetup(t)
	if err := e.Register(nil); err == nil {
		t.Error("nil SIT: want error")
	}
	if e.Registered() != 0 {
		t.Errorf("Registered = %d", e.Registered())
	}
}

func TestSITImprovesEstimate(t *testing.T) {
	b, e, expr := correlatedSetup(t)
	spec, err := query.NewSITSpec("T2", "a", expr)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth for a selective predicate over the correlated attribute.
	pred := Predicate{Table: "T2", Attr: "a", Lo: 1, Hi: 20}
	trueCard, err := exec.RangeCardinality(b.Catalog(), expr, "T2", "a", pred.Lo, pred.Hi)
	if err != nil {
		t.Fatal(err)
	}
	q := SPJQuery{Expr: expr, Preds: []Predicate{pred}}

	before, err := e.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if before.JoinStat != "base-histogram propagation" {
		t.Errorf("JoinStat before = %q", before.JoinStat)
	}
	if len(before.Sources) != 1 || !strings.HasPrefix(before.Sources[0].Stat, "base histogram") {
		t.Errorf("sources before = %+v", before.Sources)
	}

	s, err := b.Build(spec, sit.SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(s); err != nil {
		t.Fatal(err)
	}
	if e.Registered() != 1 {
		t.Errorf("Registered = %d", e.Registered())
	}
	after, err := e.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(after.Sources[0].Stat, "SIT(") {
		t.Errorf("sources after = %+v", after.Sources)
	}
	errBefore := math.Abs(before.Cardinality - float64(trueCard))
	errAfter := math.Abs(after.Cardinality - float64(trueCard))
	t.Logf("true=%d before=%.0f after=%.0f", trueCard, before.Cardinality, after.Cardinality)
	if errAfter >= errBefore {
		t.Errorf("SIT did not improve the estimate: |%v-%d| vs |%v-%d|",
			after.Cardinality, trueCard, before.Cardinality, trueCard)
	}
}

func TestMostSpecificSITWins(t *testing.T) {
	cfg := datagen.DefaultChainConfig()
	cfg.Tables = 3
	cfg.Rows = []int{2000, 1500, 1000}
	cat, err := datagen.ChainDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sit.NewBuilder(cat, sit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	full, err := query.Chain([]string{"T1", "T2", "T3"}, []string{"jnext", "jnext"}, []string{"jprev", "jprev"})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := query.NewExpr(query.JoinPred{LeftTable: "T2", LeftAttr: "jnext", RightTable: "T3", RightAttr: "jprev"})
	if err != nil {
		t.Fatal(err)
	}
	subSpec, _ := query.NewSITSpec("T3", "a", sub)
	fullSpec, _ := query.NewSITSpec("T3", "a", full)
	subSIT, err := b.Build(subSpec, sit.SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	fullSIT, err := b.Build(fullSpec, sit.SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(subSIT); err != nil {
		t.Fatal(err)
	}
	q := SPJQuery{Expr: full, Preds: []Predicate{{Table: "T3", Attr: "a", Lo: 1, Hi: 50}}}
	est, err := e.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sources[0].Tables != 2 {
		t.Errorf("expected 2-table sub-SIT match, got %+v", est.Sources[0])
	}
	if err := e.Register(fullSIT); err != nil {
		t.Fatal(err)
	}
	est, err = e.Estimate(q)
	if err != nil {
		t.Fatal(err)
	}
	if est.Sources[0].Tables != 3 {
		t.Errorf("expected 3-table SIT to win, got %+v", est.Sources[0])
	}
	if est.JoinStat == "base-histogram propagation" {
		t.Errorf("full-expression SIT should provide the join cardinality")
	}
	// Re-registering replaces, not duplicates.
	if err := e.Register(fullSIT); err != nil {
		t.Fatal(err)
	}
	if e.Registered() != 2 {
		t.Errorf("Registered = %d, want 2", e.Registered())
	}
}

func TestInapplicableSITIgnored(t *testing.T) {
	b, e, expr := correlatedSetup(t)
	// A SIT over a different join predicate (T1.b instead of T1.jnext) must
	// not match the query.
	other, err := query.NewExpr(query.JoinPred{LeftTable: "T1", LeftAttr: "b", RightTable: "T2", RightAttr: "jprev"})
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := query.NewSITSpec("T2", "a", other)
	s, err := b.Build(spec, sit.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(s); err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate(SPJQuery{Expr: expr, Preds: []Predicate{{Table: "T2", Attr: "a", Lo: 1, Hi: 30}}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(est.Sources[0].Stat, "base histogram") {
		t.Errorf("inapplicable SIT was used: %+v", est.Sources[0])
	}
}

func TestBaseTableQuery(t *testing.T) {
	cat := data.NewCatalog()
	tab := data.MustNewTable("R", "a")
	for i := int64(0); i < 100; i++ {
		tab.AppendRow(i % 10)
	}
	cat.MustAdd(tab)
	b, err := sit.NewBuilder(cat, sit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(b)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := query.NewBaseExpr("R")
	est, err := e.Estimate(SPJQuery{Expr: base, Preds: []Predicate{{Table: "R", Attr: "a", Lo: 0, Hi: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.JoinCard-100) > 1e-9 {
		t.Errorf("JoinCard = %v, want 100", est.JoinCard)
	}
	if math.Abs(est.Cardinality-50) > 1e-9 {
		t.Errorf("Cardinality = %v, want 50", est.Cardinality)
	}
}

func TestMultiplePredicates(t *testing.T) {
	b, e, expr := correlatedSetup(t)
	spec, _ := query.NewSITSpec("T2", "a", expr)
	s, err := b.Build(spec, sit.SweepFull)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Register(s); err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate(SPJQuery{Expr: expr, Preds: []Predicate{
		{Table: "T2", Attr: "a", Lo: 1, Hi: 100},
		{Table: "T2", Attr: "b", Lo: 1, Hi: 5000},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(est.Sources) != 2 {
		t.Fatalf("sources = %+v", est.Sources)
	}
	if est.Cardinality > est.JoinCard {
		t.Errorf("predicates increased cardinality: %v > %v", est.Cardinality, est.JoinCard)
	}
	for _, src := range est.Sources {
		if src.Selectivity < 0 || src.Selectivity > 1 {
			t.Errorf("selectivity out of [0,1]: %+v", src)
		}
	}
}
