package datagen

import (
	"fmt"
	"math/rand"

	"github.com/sitstats/sits/internal/data"
)

// Distribution selects how an attribute's values are drawn.
type Distribution int

const (
	// Uniform draws values uniformly from [1, Domain].
	Uniform Distribution = iota
	// Zipfian draws values from a generalized Zipf(Z) over [1, Domain].
	Zipfian
	// CorrelatedWith derives the attribute from another attribute of the same
	// table plus uniform noise in [-Noise, +Noise].
	CorrelatedWith
)

// AttrSpec describes one attribute of a synthetic table.
type AttrSpec struct {
	Name string
	Dist Distribution
	// Domain is the size of the value domain for Uniform and Zipfian.
	Domain int
	// Z is the Zipf exponent for Zipfian attributes.
	Z float64
	// Base names the source attribute for CorrelatedWith.
	Base string
	// Noise is the half-width of the uniform noise for CorrelatedWith.
	Noise int
	// Perm optionally fixes the Zipfian rank->value permutation (see
	// NewZipfWithPerm); nil maps rank i to value i.
	Perm []int64
}

// TableSpec describes one synthetic table.
type TableSpec struct {
	Name  string
	Rows  int
	Attrs []AttrSpec
}

// GenerateTable materializes a table from its spec using the given rng.
// CorrelatedWith attributes may reference any attribute declared earlier in
// the spec.
func GenerateTable(rng *rand.Rand, spec TableSpec) (*data.Table, error) {
	if spec.Rows < 0 {
		return nil, fmt.Errorf("datagen: table %q: negative row count %d", spec.Name, spec.Rows)
	}
	names := make([]string, len(spec.Attrs))
	for i, a := range spec.Attrs {
		names[i] = a.Name
	}
	t, err := data.NewTable(spec.Name, names...)
	if err != nil {
		return nil, err
	}
	generated := make(map[string][]int64, len(spec.Attrs))
	for _, a := range spec.Attrs {
		var vals []int64
		switch a.Dist {
		case Uniform:
			vals, err = UniformValues(rng, spec.Rows, a.Domain)
		case Zipfian:
			if a.Perm != nil {
				var zf *Zipf
				zf, err = NewZipfWithPerm(rng, a.Domain, a.Z, a.Perm)
				if err == nil {
					vals = zf.Values(spec.Rows)
				}
			} else {
				vals, err = ZipfValues(rng, spec.Rows, a.Domain, a.Z)
			}
		case CorrelatedWith:
			base, ok := generated[a.Base]
			if !ok {
				return nil, fmt.Errorf("datagen: table %q attr %q: base attribute %q not generated yet",
					spec.Name, a.Name, a.Base)
			}
			vals = Correlated(rng, base, a.Noise)
		default:
			return nil, fmt.Errorf("datagen: table %q attr %q: unknown distribution %d", spec.Name, a.Name, a.Dist)
		}
		if err != nil {
			return nil, fmt.Errorf("datagen: table %q attr %q: %w", spec.Name, a.Name, err)
		}
		if err := t.SetColumn(a.Name, vals); err != nil {
			return nil, err
		}
		generated[a.Name] = vals
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// ChainConfig parameterizes the paper's single-SIT evaluation database
// (Section 5.1): four tables forming a join chain
//
//	T1 -(T1.jnext = T2.jprev)- T2 -(T2.jnext = T3.jprev)- T3 - ... - T4
//
// with 10,000 to 100,000 tuples per table, three to five attributes each,
// join attributes drawn either zipfian (skewed experiments, z = 1) or
// uniform (independence-holds experiment), and the SIT attribute of each
// table correlated with its incoming join attribute so that the independence
// assumption fails exactly as in the paper's Figure 7 setting.
type ChainConfig struct {
	// Tables is the number of tables in the chain (the paper uses 4).
	Tables int
	// Rows holds per-table row counts; len(Rows) must equal Tables.
	Rows []int
	// Domain is the join-attribute value domain size.
	Domain int
	// JoinZ is the Zipf exponent of the join attributes; 0 means uniform.
	JoinZ float64
	// CorrelateSIT correlates each table's "a" attribute with its jprev join
	// attribute (noise CorrNoise); when false, "a" is independent uniform.
	CorrelateSIT bool
	// CorrNoise is the correlation noise half-width.
	CorrNoise int
	// PayloadDomain is the domain of the independent payload attributes.
	PayloadDomain int
	// Seed drives all random draws.
	Seed int64
}

// DefaultChainConfig returns the configuration used to regenerate Figure 7:
// 4 tables forming a chain with skewed join attributes (z = 1) and SIT
// attributes correlated with the join attributes. Row counts are scaled down
// from the paper's 10k-100k band because self-similar zipfian equi-joins grow
// multiplicatively (roughly |T|·sum(p_i^2) per additional join, about
// 2%-3% of |T| at z = 1): these sizes keep the materialized 4-way ground
// truth in the low millions of tuples so every figure regenerates in seconds
// while preserving the skew and correlation that drive the paper's result.
func DefaultChainConfig() ChainConfig {
	return ChainConfig{
		Tables:        4,
		Rows:          []int{1000, 800, 600, 500},
		Domain:        2000,
		JoinZ:         1.0,
		CorrelateSIT:  true,
		CorrNoise:     200,
		PayloadDomain: 10000,
		Seed:          42,
	}
}

// ChainTableName returns the name of the i-th (1-based) chain table.
func ChainTableName(i int) string { return fmt.Sprintf("T%d", i) }

// ChainDB builds the chain-join evaluation database. Every table Ti has
// columns:
//
//	jprev — join attribute matching T(i-1).jnext (absent on T1)
//	jnext — join attribute matching T(i+1).jprev (absent on the last table)
//	a     — the SIT target attribute (correlated with jprev when configured)
//	b, c  — independent payload attributes
//
// so each table has the paper's three to five attributes.
func ChainDB(cfg ChainConfig) (*data.Catalog, error) {
	if cfg.Tables < 2 {
		return nil, fmt.Errorf("datagen: ChainDB needs at least 2 tables, got %d", cfg.Tables)
	}
	if len(cfg.Rows) != cfg.Tables {
		return nil, fmt.Errorf("datagen: ChainDB got %d row counts for %d tables", len(cfg.Rows), cfg.Tables)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// One shared rank->value permutation for all join attributes: heavy
	// values coincide across tables (so joins are genuinely skewed) but are
	// scattered over the whole domain rather than clustered at its low end.
	joinPerm := Permutation(rand.New(rand.NewSource(cfg.Seed+1)), cfg.Domain)
	cat := data.NewCatalog()
	for i := 1; i <= cfg.Tables; i++ {
		var attrs []AttrSpec
		joinDist := Zipfian
		if cfg.JoinZ == 0 {
			joinDist = Uniform
		}
		if i > 1 {
			attrs = append(attrs, AttrSpec{Name: "jprev", Dist: joinDist, Domain: cfg.Domain, Z: cfg.JoinZ, Perm: joinPerm})
		}
		if i < cfg.Tables {
			attrs = append(attrs, AttrSpec{Name: "jnext", Dist: joinDist, Domain: cfg.Domain, Z: cfg.JoinZ, Perm: joinPerm})
		}
		aSpec := AttrSpec{Name: "a", Dist: Uniform, Domain: cfg.PayloadDomain}
		if cfg.CorrelateSIT && i > 1 {
			aSpec = AttrSpec{Name: "a", Dist: CorrelatedWith, Base: "jprev", Noise: cfg.CorrNoise}
		}
		attrs = append(attrs, aSpec)
		attrs = append(attrs,
			AttrSpec{Name: "b", Dist: Uniform, Domain: cfg.PayloadDomain},
			AttrSpec{Name: "c", Dist: Zipfian, Domain: cfg.PayloadDomain, Z: 0.5},
		)
		t, err := GenerateTable(rng, TableSpec{Name: ChainTableName(i), Rows: cfg.Rows[i-1], Attrs: attrs})
		if err != nil {
			return nil, err
		}
		if err := cat.Add(t); err != nil {
			return nil, err
		}
	}
	return cat, nil
}
