package datagen

import (
	"fmt"
	"math/rand"

	"github.com/sitstats/sits/internal/data"
)

// StarConfig parameterizes a star/snowflake-shaped synthetic database used to
// exercise SITs over acyclic, non-chain generating queries (Section 3.2's
// join trees): one fact table with skewed foreign keys into several
// dimensions, one of which chains into a sub-dimension.
type StarConfig struct {
	// FactRows is the size of the fact table F.
	FactRows int
	// DimRows holds the sizes of the dimension tables D1..Dn; the paper-style
	// SIT attribute "a" lives on F and correlates with the first dimension's
	// key.
	DimRows []int
	// DimDomains holds the key domain of each dimension (values drawn
	// zipfian on the fact side, uniform with duplicates on the dimension
	// side).
	DimDomains []int
	// SubDimRows, when positive, snowflakes the first dimension: D1 gains a
	// foreign key into a sub-dimension E of this size.
	SubDimRows int
	// KeyZ is the zipf exponent of the fact table's foreign keys.
	KeyZ float64
	// CorrNoise is the half-width of the noise correlating F.a with the
	// first foreign key.
	CorrNoise int
	// Seed drives all draws.
	Seed int64
}

// DefaultStarConfig returns a snowflake with two dimensions, sized to keep
// the full join in the hundreds of thousands of tuples.
func DefaultStarConfig() StarConfig {
	return StarConfig{
		FactRows:   4000,
		DimRows:    []int{900, 700},
		DimDomains: []int{300, 250},
		SubDimRows: 200,
		KeyZ:       1.0,
		CorrNoise:  40,
		Seed:       17,
	}
}

// StarDB materializes the star/snowflake database:
//
//	F(k1, k2, ..., a)   — fact; ki joins Di.id; a correlates with k1
//	Di(id[, e])         — dimensions; D1 gains e joining E.id when snowflaked
//	E(id)               — sub-dimension (optional)
func StarDB(cfg StarConfig) (*data.Catalog, error) {
	if cfg.FactRows <= 0 || len(cfg.DimRows) == 0 {
		return nil, fmt.Errorf("datagen: StarDB needs a fact table and at least one dimension")
	}
	if len(cfg.DimRows) != len(cfg.DimDomains) {
		return nil, fmt.Errorf("datagen: StarDB got %d dimension sizes and %d domains",
			len(cfg.DimRows), len(cfg.DimDomains))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := data.NewCatalog()

	// Fact table.
	factCols := make([]string, 0, len(cfg.DimRows)+1)
	for i := range cfg.DimRows {
		factCols = append(factCols, fmt.Sprintf("k%d", i+1))
	}
	factCols = append(factCols, "a")
	fact, err := data.NewTable("F", factCols...)
	if err != nil {
		return nil, err
	}
	keys := make([][]int64, len(cfg.DimRows))
	for i, domain := range cfg.DimDomains {
		keys[i], err = ZipfValues(rng, cfg.FactRows, domain, cfg.KeyZ)
		if err != nil {
			return nil, err
		}
	}
	aVals := Correlated(rng, keys[0], cfg.CorrNoise)
	row := make([]int64, len(factCols))
	for r := 0; r < cfg.FactRows; r++ {
		for i := range keys {
			row[i] = keys[i][r]
		}
		row[len(row)-1] = aVals[r]
		if err := fact.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	if err := cat.Add(fact); err != nil {
		return nil, err
	}

	// Dimensions: ids drawn with half the fact side's skew (same unshuffled
	// rank order), so the keys that are frequent in F also have the most
	// dimension rows — join fan-out then correlates with the SIT attribute,
	// which is exactly the effect that breaks histogram propagation.
	for i, n := range cfg.DimRows {
		name := fmt.Sprintf("D%d", i+1)
		cols := []string{"id"}
		snowflaked := i == 0 && cfg.SubDimRows > 0
		if snowflaked {
			cols = append(cols, "e")
		}
		dim, err := data.NewTable(name, cols...)
		if err != nil {
			return nil, err
		}
		ids, err := ZipfValues(rng, n, cfg.DimDomains[i], cfg.KeyZ/2)
		if err != nil {
			return nil, err
		}
		var es []int64
		if snowflaked {
			es, err = ZipfValues(rng, n, cfg.SubDimRows, cfg.KeyZ)
			if err != nil {
				return nil, err
			}
		}
		for r := 0; r < n; r++ {
			if snowflaked {
				err = dim.AppendRow(ids[r], es[r])
			} else {
				err = dim.AppendRow(ids[r])
			}
			if err != nil {
				return nil, err
			}
		}
		if err := cat.Add(dim); err != nil {
			return nil, err
		}
	}

	if cfg.SubDimRows > 0 {
		sub, err := data.NewTable("E", "id")
		if err != nil {
			return nil, err
		}
		ids, err := UniformValues(rng, cfg.SubDimRows, cfg.SubDimRows)
		if err != nil {
			return nil, err
		}
		for _, id := range ids {
			if err := sub.AppendRow(id); err != nil {
				return nil, err
			}
		}
		if err := cat.Add(sub); err != nil {
			return nil, err
		}
	}
	return cat, nil
}
