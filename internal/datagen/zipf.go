// Package datagen generates the synthetic data sets used by the paper's
// evaluation (Section 5). It provides deterministic, seeded generators for
// generalized Zipf distributions (any skew parameter z >= 0, unlike
// math/rand.Zipf which requires s > 1), uniform distributions, and attribute
// correlation, plus builders for the paper's 4-table experimental database.
package datagen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Zipf draws values from a generalized Zipf distribution over the integer
// domain [1, n]: P(rank i) proportional to 1/i^z. z = 0 degenerates to the
// uniform distribution; the paper's experiments use z in [0.1, 1].
//
// Ranks are mapped to domain values by a permutation chosen at construction
// time when shuffle is enabled, so that heavy hitters are not always the
// smallest values; with shuffle disabled rank i maps to value i, which keeps
// skew aligned with value order (useful for readable tests).
type Zipf struct {
	rng  *rand.Rand
	cdf  []float64 // cdf[i] = P(rank <= i+1)
	perm []int64   // rank (0-based) -> value in [1, n]
}

// NewZipfWithPerm creates a generalized Zipf generator over [1, n] with
// exponent z whose rank->value mapping is the supplied permutation of
// [1, n]. Sharing one permutation across several columns makes their heavy
// values coincide — the foreign-key-like skew alignment the chain-join
// database needs — while still scattering the heavy values over the whole
// domain instead of clustering them at its low end.
func NewZipfWithPerm(rng *rand.Rand, n int, z float64, perm []int64) (*Zipf, error) {
	if len(perm) != n {
		return nil, fmt.Errorf("datagen: NewZipfWithPerm permutation has %d entries, want %d", len(perm), n)
	}
	zf, err := NewZipf(rng, n, z, false)
	if err != nil {
		return nil, err
	}
	zf.perm = perm
	return zf, nil
}

// Permutation returns a shuffled copy of [1, n] usable with NewZipfWithPerm.
func Permutation(rng *rand.Rand, n int) []int64 {
	perm := make([]int64, n)
	for i := range perm {
		perm[i] = int64(i + 1)
	}
	rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	return perm
}

// NewZipf creates a generalized Zipf generator over [1, n] with exponent z.
func NewZipf(rng *rand.Rand, n int, z float64, shuffle bool) (*Zipf, error) {
	if rng == nil {
		return nil, fmt.Errorf("datagen: NewZipf needs a non-nil rng")
	}
	if n <= 0 {
		return nil, fmt.Errorf("datagen: NewZipf domain size %d must be positive", n)
	}
	if z < 0 || math.IsNaN(z) || math.IsInf(z, 0) {
		return nil, fmt.Errorf("datagen: NewZipf exponent %v must be finite and non-negative", z)
	}
	zf := &Zipf{rng: rng}
	zf.cdf = make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), z)
		zf.cdf[i-1] = sum
	}
	for i := range zf.cdf {
		zf.cdf[i] /= sum
	}
	zf.perm = make([]int64, n)
	for i := range zf.perm {
		zf.perm[i] = int64(i + 1)
	}
	if shuffle {
		rng.Shuffle(n, func(i, j int) { zf.perm[i], zf.perm[j] = zf.perm[j], zf.perm[i] })
	}
	return zf, nil
}

// Next draws one value.
func (zf *Zipf) Next() int64 {
	u := zf.rng.Float64()
	i := sort.SearchFloat64s(zf.cdf, u)
	if i >= len(zf.perm) {
		i = len(zf.perm) - 1
	}
	return zf.perm[i]
}

// Values draws count values.
func (zf *Zipf) Values(count int) []int64 {
	out := make([]int64, count)
	for i := range out {
		out[i] = zf.Next()
	}
	return out
}

// ZipfValues is a convenience wrapper: count draws from Zipf([1, domain], z)
// without rank shuffling.
func ZipfValues(rng *rand.Rand, count, domain int, z float64) ([]int64, error) {
	zf, err := NewZipf(rng, domain, z, false)
	if err != nil {
		return nil, err
	}
	return zf.Values(count), nil
}

// UniformValues draws count values uniformly from [1, domain].
func UniformValues(rng *rand.Rand, count, domain int) ([]int64, error) {
	if domain <= 0 {
		return nil, fmt.Errorf("datagen: UniformValues domain %d must be positive", domain)
	}
	out := make([]int64, count)
	for i := range out {
		out[i] = rng.Int63n(int64(domain)) + 1
	}
	return out, nil
}

// Correlated derives a column correlated with base: each output value is its
// base value plus uniform noise in [-noise, +noise]. noise = 0 yields a copy.
// Correlation between a join attribute and the SIT attribute is exactly what
// breaks the independence assumption in the paper's Figure 7 experiments.
func Correlated(rng *rand.Rand, base []int64, noise int) []int64 {
	out := make([]int64, len(base))
	for i, v := range base {
		if noise > 0 {
			v += rng.Int63n(int64(2*noise+1)) - int64(noise)
		}
		out[i] = v
	}
	return out
}

// ZipfSizes splits total into n positive sizes following a Zipf(z)
// distribution over ranks, largest first. It is used by the scheduling
// experiments, where the paper draws table cardinalities from a zipfian with
// z = 1 and a combined size of one million tuples (Section 5.2).
func ZipfSizes(total, n int, z float64) ([]int, error) {
	if n <= 0 || total < n {
		return nil, fmt.Errorf("datagen: ZipfSizes needs total >= n > 0, got total=%d n=%d", total, n)
	}
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), z)
		sum += weights[i]
	}
	sizes := make([]int, n)
	assigned := 0
	for i := range sizes {
		sizes[i] = int(float64(total) * weights[i] / sum)
		if sizes[i] < 1 {
			sizes[i] = 1
		}
		assigned += sizes[i]
	}
	// Distribute rounding leftovers (positive or negative) over the largest
	// tables, keeping every size at least 1.
	for i := 0; assigned != total; i = (i + 1) % n {
		if assigned < total {
			sizes[i]++
			assigned++
		} else if sizes[i] > 1 {
			sizes[i]--
			assigned--
		}
	}
	return sizes, nil
}
