package datagen

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZipfErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewZipf(nil, 10, 1, false); err == nil {
		t.Error("nil rng: want error")
	}
	if _, err := NewZipf(rng, 0, 1, false); err == nil {
		t.Error("zero domain: want error")
	}
	if _, err := NewZipf(rng, 10, -1, false); err == nil {
		t.Error("negative z: want error")
	}
	if _, err := NewZipf(rng, 10, math.NaN(), false); err == nil {
		t.Error("NaN z: want error")
	}
	if _, err := NewZipf(rng, 10, math.Inf(1), false); err == nil {
		t.Error("Inf z: want error")
	}
}

func TestZipfInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	zf, err := NewZipf(rng, 100, 1.0, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		v := zf.Next()
		if v < 1 || v > 100 {
			t.Fatalf("value %d out of [1,100]", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	// With z = 1 and no shuffle, rank 1 maps to value 1 and should dominate:
	// P(1)/P(10) = 10. Check the empirical ratio is clearly skewed.
	rng := rand.New(rand.NewSource(3))
	vals, err := ZipfValues(rng, 200000, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for _, v := range vals {
		counts[v]++
	}
	if counts[1] < 5*counts[10] {
		t.Errorf("expected strong skew: count(1)=%d count(10)=%d", counts[1], counts[10])
	}
	// Harmonic normalization: P(1) = 1/H_100 ~ 0.1928.
	p1 := float64(counts[1]) / float64(len(vals))
	if p1 < 0.17 || p1 > 0.22 {
		t.Errorf("P(value 1) = %.4f, want ~0.193", p1)
	}
}

func TestZipfZeroIsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals, err := ZipfValues(rng, 100000, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int64]int{}
	for _, v := range vals {
		counts[v]++
	}
	for v := int64(1); v <= 10; v++ {
		p := float64(counts[v]) / float64(len(vals))
		if p < 0.08 || p > 0.12 {
			t.Errorf("P(%d) = %.4f, want ~0.1", v, p)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a, err := ZipfValues(rand.New(rand.NewSource(9)), 1000, 50, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ZipfValues(rand.New(rand.NewSource(9)), 1000, 50, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestUniformValues(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals, err := UniformValues(rng, 10000, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if v < 1 || v > 7 {
			t.Fatalf("value %d out of [1,7]", v)
		}
	}
	if _, err := UniformValues(rng, 10, 0); err == nil {
		t.Error("zero domain: want error")
	}
}

func TestCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := []int64{10, 20, 30}
	exact := Correlated(rng, base, 0)
	for i := range base {
		if exact[i] != base[i] {
			t.Errorf("noise=0 should copy: got %v", exact)
		}
	}
	noisy := Correlated(rng, base, 5)
	for i := range base {
		if d := noisy[i] - base[i]; d < -5 || d > 5 {
			t.Errorf("noise out of bounds at %d: %d", i, d)
		}
	}
}

func TestZipfSizes(t *testing.T) {
	sizes, err := ZipfSizes(1000000, 10, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, s := range sizes {
		if s < 1 {
			t.Errorf("size[%d] = %d < 1", i, s)
		}
		total += s
	}
	if total != 1000000 {
		t.Errorf("total = %d, want 1000000", total)
	}
	// Largest first, roughly 1/i weights.
	if sizes[0] < 3*sizes[9] {
		t.Errorf("expected skewed sizes, got %v", sizes)
	}
	if _, err := ZipfSizes(5, 10, 1); err == nil {
		t.Error("total < n: want error")
	}
}

// Property: ZipfSizes always sums to total and keeps every entry positive.
func TestZipfSizesQuick(t *testing.T) {
	f := func(totalSeed, nSeed uint16, z8 uint8) bool {
		n := int(nSeed%20) + 1
		total := n + int(totalSeed)
		z := float64(z8%30) / 10.0
		sizes, err := ZipfSizes(total, n, z)
		if err != nil {
			return false
		}
		sum := 0
		for _, s := range sizes {
			if s < 1 {
				return false
			}
			sum += s
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGenerateTable(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	spec := TableSpec{
		Name: "R",
		Rows: 500,
		Attrs: []AttrSpec{
			{Name: "x", Dist: Zipfian, Domain: 100, Z: 1},
			{Name: "a", Dist: CorrelatedWith, Base: "x", Noise: 3},
			{Name: "b", Dist: Uniform, Domain: 50},
		},
	}
	tab, err := GenerateTable(rng, spec)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 500 || tab.NumCols() != 3 {
		t.Fatalf("shape = %dx%d", tab.NumRows(), tab.NumCols())
	}
	x := tab.MustColumn("x")
	a := tab.MustColumn("a")
	for i := range x {
		if d := a[i] - x[i]; d < -3 || d > 3 {
			t.Fatalf("correlation noise out of bounds at %d", i)
		}
	}

	bad := TableSpec{Name: "R", Rows: 10, Attrs: []AttrSpec{
		{Name: "a", Dist: CorrelatedWith, Base: "missing"},
	}}
	if _, err := GenerateTable(rng, bad); err == nil {
		t.Error("correlate with missing base: want error")
	}
	if _, err := GenerateTable(rng, TableSpec{Name: "R", Rows: -1}); err == nil {
		t.Error("negative rows: want error")
	}
}

func TestChainDB(t *testing.T) {
	cfg := DefaultChainConfig()
	cfg.Rows = []int{2000, 1500, 1000, 500}
	cat, err := ChainDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 4 {
		t.Fatalf("tables = %d, want 4", cat.Len())
	}
	t1 := cat.MustTable("T1")
	if t1.HasColumn("jprev") {
		t.Error("T1 should not have jprev")
	}
	if !t1.HasColumn("jnext") || !t1.HasColumn("a") {
		t.Error("T1 missing jnext/a")
	}
	t4 := cat.MustTable("T4")
	if t4.HasColumn("jnext") {
		t.Error("last table should not have jnext")
	}
	if !t4.HasColumn("jprev") {
		t.Error("T4 missing jprev")
	}
	// SIT attribute correlated with jprev on non-first tables.
	jp := t4.MustColumn("jprev")
	a := t4.MustColumn("a")
	for i := range jp {
		if d := a[i] - jp[i]; d < -int64(cfg.CorrNoise) || d > int64(cfg.CorrNoise) {
			t.Fatalf("T4.a not correlated with jprev at row %d", i)
		}
	}
	if err := cat.Validate(); err != nil {
		t.Error(err)
	}

	cfg.Tables = 1
	cfg.Rows = []int{10}
	if _, err := ChainDB(cfg); err == nil {
		t.Error("1-table chain: want error")
	}
	cfg.Tables = 3
	if _, err := ChainDB(cfg); err == nil {
		t.Error("row-count mismatch: want error")
	}
}

func TestStarDB(t *testing.T) {
	cfg := DefaultStarConfig()
	cfg.FactRows = 500
	cfg.DimRows = []int{200, 150}
	cfg.SubDimRows = 50
	cat, err := StarDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Len() != 4 { // F, D1, D2, E
		t.Fatalf("tables = %v", cat.Names())
	}
	f := cat.MustTable("F")
	if !f.HasColumn("k1") || !f.HasColumn("k2") || !f.HasColumn("a") {
		t.Errorf("F columns = %v", f.ColumnNames())
	}
	if f.NumRows() != 500 {
		t.Errorf("F rows = %d", f.NumRows())
	}
	d1 := cat.MustTable("D1")
	if !d1.HasColumn("e") {
		t.Error("snowflaked D1 missing e")
	}
	d2 := cat.MustTable("D2")
	if d2.HasColumn("e") {
		t.Error("D2 should not be snowflaked")
	}
	// a correlates with k1.
	k1 := f.MustColumn("k1")
	a := f.MustColumn("a")
	for i := range k1 {
		if d := a[i] - k1[i]; d < -int64(cfg.CorrNoise) || d > int64(cfg.CorrNoise) {
			t.Fatalf("a not correlated with k1 at row %d", i)
		}
	}
	if err := cat.Validate(); err != nil {
		t.Error(err)
	}

	// No snowflake when SubDimRows = 0.
	cfg.SubDimRows = 0
	cat, err = StarDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cat.Has("E") || cat.MustTable("D1").HasColumn("e") {
		t.Error("unexpected snowflake")
	}

	// Validation errors.
	if _, err := StarDB(StarConfig{}); err == nil {
		t.Error("empty config: want error")
	}
	bad := DefaultStarConfig()
	bad.DimDomains = bad.DimDomains[:1]
	if _, err := StarDB(bad); err == nil {
		t.Error("mismatched domains: want error")
	}
}
