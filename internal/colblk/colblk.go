// Package colblk is the block codec shared by the on-disk storage layers:
// the columnar segment files of internal/data and the compressed (SRN2)
// spill runs of internal/mem. A block is one column's slice of up to a few
// thousand int64 values; the codec encodes each block independently with the
// cheapest of three encodings, chosen per block by a trial sizing pass:
//
//   - EncRaw: 8-byte little-endian values, the fallback for incompressible
//     blocks (the encoded size is exactly 8*n bytes).
//   - EncConst: a single 8-byte value repeated n times; common for
//     low-cardinality dimension columns and padding.
//   - EncDelta: zigzag-varint deltas from the previous value (the first
//     value is a zigzag-varint of itself). Sorted and near-sorted columns
//     (row ids, timestamps, clustered keys) shrink to 1-2 bytes per value.
//
// Deltas are computed in two's-complement wraparound arithmetic, so the
// encoding is total: any int64 sequence round-trips, including sequences
// whose differences overflow int64. The codec performs no checksumming —
// containers (segment blocks, run-store batches) CRC their framing, which
// covers the encoded payload. Decode errors are sentinel values so the hot
// loops stay allocation-free; containers wrap them with file context.
package colblk

import (
	"encoding/binary"
	"errors"
	"math/bits"
)

// Encoding identifiers, stored by containers alongside each block.
const (
	// EncRaw is 8-byte little-endian values.
	EncRaw byte = 0
	// EncConst is one 8-byte little-endian value repeated for the block.
	EncConst byte = 1
	// EncDelta is zigzag-varint deltas from the previous value.
	EncDelta byte = 2
)

// Decode failure sentinels. Decode never returns a partial block: any size
// or framing mismatch yields one of these and no values.
var (
	// ErrBadEncoding marks an encoding byte the codec does not know.
	ErrBadEncoding = errors.New("colblk: unknown encoding")
	// ErrBlockSize marks a payload whose byte length disagrees with the
	// declared value count.
	ErrBlockSize = errors.New("colblk: payload size disagrees with value count")
	// ErrTruncated marks a varint stream that ends mid-value.
	ErrTruncated = errors.New("colblk: block truncated mid-value")
)

// zigzag maps signed deltas to unsigned varint-friendly space: small
// magnitudes of either sign get small codes.
//
//statcheck:hot
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

//statcheck:hot
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// uvarintLen returns the number of bytes binary.PutUvarint uses for u.
//
//statcheck:hot
func uvarintLen(u uint64) int { return (bits.Len64(u|1) + 6) / 7 }

// Choose sizes the candidate encodings for one block and returns the
// smallest, with its encoded byte size. Blocks must be non-empty.
//
//statcheck:hot
func Choose(vals []int64) (enc byte, size int) {
	raw := 8 * len(vals)
	constant := true
	prev := int64(0)
	delta := 0
	for i, v := range vals {
		if v != vals[0] {
			constant = false
		}
		if i == 0 {
			delta += uvarintLen(zigzag(v))
		} else {
			delta += uvarintLen(zigzag(int64(uint64(v) - uint64(prev))))
		}
		prev = v
	}
	if constant {
		return EncConst, 8
	}
	if delta < raw {
		return EncDelta, delta
	}
	return EncRaw, raw
}

// Append encodes vals with enc and appends the payload to dst, returning the
// extended slice. enc must come from Choose over the same values (EncConst
// in particular asserts all values are equal only via Choose).
//
//statcheck:hot
func Append(dst []byte, enc byte, vals []int64) []byte {
	switch enc {
	case EncRaw:
		off := len(dst)
		dst = grow(dst, 8*len(vals))
		for _, v := range vals {
			binary.LittleEndian.PutUint64(dst[off:], uint64(v))
			off += 8
		}
		return dst
	case EncConst:
		off := len(dst)
		dst = grow(dst, 8)
		binary.LittleEndian.PutUint64(dst[off:], uint64(vals[0]))
		return dst
	case EncDelta:
		off := len(dst)
		dst = grow(dst, binary.MaxVarintLen64*len(vals))
		prev := int64(0)
		for i, v := range vals {
			var z uint64
			if i == 0 {
				z = zigzag(v)
			} else {
				z = zigzag(int64(uint64(v) - uint64(prev)))
			}
			off += binary.PutUvarint(dst[off:], z)
			prev = v
		}
		return dst[:off]
	default:
		// Encoding bytes come from Choose; anything else is caller error.
		panic(ErrBadEncoding)
	}
}

// grow extends dst by n bytes (reallocating only when capacity is short) and
// returns the extended slice; the new bytes are uninitialized scratch for the
// caller to fill.
//
//statcheck:hot
func grow(dst []byte, n int) []byte {
	if cap(dst)-len(dst) < n {
		out := make([]byte, len(dst), 2*len(dst)+n)
		copy(out, dst)
		dst = out
	}
	return dst[:len(dst)+n]
}

// Decode decodes an n-value block payload into dst (reusing its capacity)
// and returns the decoded slice. The payload must be exactly one block: a
// short, long, or malformed payload is an error, never a partial result.
//
//statcheck:hot
func Decode(dst []int64, enc byte, src []byte, n int) ([]int64, error) {
	if n < 0 {
		return nil, ErrBlockSize
	}
	if cap(dst) < n {
		dst = make([]int64, n)
	}
	dst = dst[:n]
	switch enc {
	case EncRaw:
		if len(src) != 8*n {
			return nil, ErrBlockSize
		}
		for i := range dst {
			dst[i] = int64(binary.LittleEndian.Uint64(src[8*i:]))
		}
		return dst, nil
	case EncConst:
		if len(src) != 8 {
			return nil, ErrBlockSize
		}
		v := int64(binary.LittleEndian.Uint64(src))
		for i := range dst {
			dst[i] = v
		}
		return dst, nil
	case EncDelta:
		prev := uint64(0)
		off := 0
		for i := 0; i < n; i++ {
			z, k := binary.Uvarint(src[off:])
			if k <= 0 {
				return nil, ErrTruncated
			}
			off += k
			prev += uint64(unzigzag(z))
			dst[i] = int64(prev)
		}
		if off != len(src) {
			return nil, ErrBlockSize
		}
		return dst, nil
	default:
		return nil, ErrBadEncoding
	}
}

// MaxEncodedLen bounds the encoded size of an n-value block across all
// encodings; containers use it to size write buffers.
func MaxEncodedLen(n int) int { return binary.MaxVarintLen64 * n }

// MinMax returns the extrema of a non-empty block; segment footers store
// them for range-filter block skipping.
//
//statcheck:hot
func MinMax(vals []int64) (minV, maxV int64) {
	minV, maxV = vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	return minV, maxV
}
