package colblk

import (
	"encoding/binary"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// roundTrip encodes vals with the chosen encoding and decodes it back,
// asserting the payload size matches Choose's trial sizing exactly.
func roundTrip(t *testing.T, vals []int64) {
	t.Helper()
	enc, size := Choose(vals)
	payload := Append(nil, enc, vals)
	if len(payload) != size {
		t.Fatalf("Choose sized enc %d at %d bytes, Append produced %d", enc, size, len(payload))
	}
	got, err := Decode(nil, enc, payload, len(vals))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(got) != len(vals) {
		t.Fatalf("Decode returned %d values, want %d", len(got), len(vals))
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: got %d, want %d (enc %d)", i, got[i], vals[i], enc)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	cases := map[string][]int64{
		"single":        {42},
		"constant":      {7, 7, 7, 7, 7, 7},
		"constant-neg":  {-3, -3, -3},
		"sorted":        {1, 2, 3, 4, 5, 100, 101, 102},
		"descending":    {100, 90, 80, 70, 0, -10},
		"mixed-sign":    {-5, 9, -13, 2, 0, 44, -1},
		"extremes":      {math.MinInt64, math.MaxInt64, 0, math.MinInt64, math.MaxInt64},
		"overflow-step": {math.MinInt64, math.MaxInt64},
		"zeros":         {0, 0, 0, 0},
	}
	for name, vals := range cases {
		t.Run(name, func(t *testing.T) { roundTrip(t, vals) })
	}
}

func TestRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1)) //statcheck:ignore rawrand seeded test data
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(4096)
		vals := make([]int64, n)
		switch trial % 4 {
		case 0: // full-range noise: raw should win
			for i := range vals {
				vals[i] = int64(rng.Uint64())
			}
		case 1: // near-sorted: delta should win
			v := int64(rng.Intn(1000))
			for i := range vals {
				v += int64(rng.Intn(16))
				vals[i] = v
			}
		case 2: // constant
			c := int64(rng.Uint64())
			for i := range vals {
				vals[i] = c
			}
		case 3: // small magnitudes either sign
			for i := range vals {
				vals[i] = int64(rng.Intn(200) - 100)
			}
		}
		roundTrip(t, vals)
	}
}

func TestChoosePicks(t *testing.T) {
	constant := []int64{5, 5, 5, 5, 5, 5, 5, 5}
	if enc, size := Choose(constant); enc != EncConst || size != 8 {
		t.Fatalf("constant block: got enc %d size %d, want EncConst 8", enc, size)
	}
	sorted := make([]int64, 1000)
	for i := range sorted {
		sorted[i] = int64(i) * 3
	}
	if enc, size := Choose(sorted); enc != EncDelta || size >= 8*len(sorted) {
		t.Fatalf("sorted block: got enc %d size %d, want EncDelta smaller than raw", enc, size)
	}
	rng := rand.New(rand.NewSource(2)) //statcheck:ignore rawrand seeded test data
	noise := make([]int64, 1000)
	for i := range noise {
		noise[i] = int64(rng.Uint64())
	}
	if enc, size := Choose(noise); enc != EncRaw || size != 8*len(noise) {
		t.Fatalf("noise block: got enc %d size %d, want EncRaw %d", enc, size, 8*len(noise))
	}
}

func TestDecodeReuse(t *testing.T) {
	vals := []int64{10, 20, 30, 40}
	enc, _ := Choose(vals)
	payload := Append(nil, enc, vals)
	scratch := make([]int64, 0, 16)
	got, err := Decode(scratch, enc, payload, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("Decode did not reuse caller capacity")
	}
}

func TestAppendExtends(t *testing.T) {
	a := []int64{1, 2, 3}
	b := []int64{9, 9, 9}
	encA, sizeA := Choose(a)
	encB, sizeB := Choose(b)
	buf := Append(nil, encA, a)
	buf = Append(buf, encB, b)
	if len(buf) != sizeA+sizeB {
		t.Fatalf("concatenated payload %d bytes, want %d", len(buf), sizeA+sizeB)
	}
	gotA, err := Decode(nil, encA, buf[:sizeA], len(a))
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := Decode(nil, encB, buf[sizeA:], len(b))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if gotA[i] != a[i] || gotB[i] != b[i] {
			t.Fatalf("concatenated round-trip mismatch at %d", i)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	vals := []int64{1, 5, 2, 8, 3}
	for _, enc := range []byte{EncRaw, EncDelta} {
		payload := Append(nil, enc, vals)
		if _, err := Decode(nil, enc, payload[:len(payload)-1], len(vals)); err == nil {
			t.Fatalf("enc %d: short payload not rejected", enc)
		}
		long := append(append([]byte(nil), payload...), 0)
		if _, err := Decode(nil, enc, long, len(vals)); err == nil {
			t.Fatalf("enc %d: trailing bytes not rejected", enc)
		}
	}
	if _, err := Decode(nil, EncConst, []byte{1, 2, 3}, 4); !errors.Is(err, ErrBlockSize) {
		t.Fatalf("const wrong size: got %v, want ErrBlockSize", err)
	}
	if _, err := Decode(nil, 77, []byte{0}, 1); !errors.Is(err, ErrBadEncoding) {
		t.Fatalf("unknown encoding: got %v, want ErrBadEncoding", err)
	}
	if _, err := Decode(nil, EncRaw, nil, -1); !errors.Is(err, ErrBlockSize) {
		t.Fatalf("negative count: got %v, want ErrBlockSize", err)
	}
	// A truncated varint stream must fail mid-value, not under-fill.
	big := Append(nil, EncDelta, []int64{math.MaxInt64})
	if _, err := Decode(nil, EncDelta, big[:1], 1); !errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-varint truncation: got %v, want ErrTruncated", err)
	}
}

func TestAppendUnknownEncodingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Append with unknown encoding did not panic")
		}
	}()
	Append(nil, 99, []int64{1})
}

func TestUvarintLenMatchesPutUvarint(t *testing.T) {
	var buf [binary.MaxVarintLen64]byte
	probes := []uint64{0, 1, 127, 128, 1 << 14, 1<<14 - 1, 1 << 21, 1 << 63, math.MaxUint64}
	for _, u := range probes {
		if got, want := uvarintLen(u), binary.PutUvarint(buf[:], u); got != want {
			t.Fatalf("uvarintLen(%d) = %d, PutUvarint wrote %d", u, got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	minV, maxV := MinMax([]int64{3, -7, 12, 0, 12, -7})
	if minV != -7 || maxV != 12 {
		t.Fatalf("MinMax = (%d, %d), want (-7, 12)", minV, maxV)
	}
	minV, maxV = MinMax([]int64{5})
	if minV != 5 || maxV != 5 {
		t.Fatalf("MinMax single = (%d, %d), want (5, 5)", minV, maxV)
	}
}

func TestMaxEncodedLenBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3)) //statcheck:ignore rawrand seeded test data
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(1024)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Uint64())
		}
		enc, size := Choose(vals)
		if size > MaxEncodedLen(n) {
			t.Fatalf("enc %d sized %d exceeds MaxEncodedLen(%d) = %d", enc, size, n, MaxEncodedLen(n))
		}
	}
}

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 8 {
			return
		}
		vals := make([]int64, len(raw)/8)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		roundTrip(t, vals)
	})
}

func BenchmarkEncode(b *testing.B) {
	vals := make([]int64, 4096)
	v := int64(0)
	rng := rand.New(rand.NewSource(4)) //statcheck:ignore rawrand seeded bench data
	for i := range vals {
		v += int64(rng.Intn(32))
		vals[i] = v
	}
	buf := make([]byte, 0, MaxEncodedLen(len(vals)))
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, _ := Choose(vals)
		buf = Append(buf[:0], enc, vals)
	}
}

func BenchmarkDecode(b *testing.B) {
	vals := make([]int64, 4096)
	v := int64(0)
	rng := rand.New(rand.NewSource(5)) //statcheck:ignore rawrand seeded bench data
	for i := range vals {
		v += int64(rng.Intn(32))
		vals[i] = v
	}
	enc, _ := Choose(vals)
	payload := Append(nil, enc, vals)
	dst := make([]int64, 0, len(vals))
	b.SetBytes(int64(8 * len(vals)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = Decode(dst, enc, payload, len(vals))
		if err != nil {
			b.Fatal(err)
		}
	}
}
