// Package workload implements the evaluation methodology of Section 5.1:
// random range queries over a SIT's domain and the relative-error metric
// between actual and estimated cardinalities ("we issued 1,000 random range
// queries over the SIT domain ... and calculated the relative error between
// the actual and estimated cardinalities").
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RangeQuery is one inclusive range predicate lo <= attr <= hi over the SIT's
// attribute; it stands for the SPJ query sigma_{lo<=attr<=hi}(Q).
type RangeQuery struct {
	Lo, Hi int64
}

// RandomRangeQueries draws n random inclusive ranges within [lo, hi]: the
// left endpoint uniform in the domain and the right endpoint uniform between
// the left endpoint and the domain maximum.
func RandomRangeQueries(rng *rand.Rand, lo, hi int64, n int) ([]RangeQuery, error) {
	if hi < lo {
		return nil, fmt.Errorf("workload: empty domain [%d,%d]", lo, hi)
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: query count %d must be positive", n)
	}
	out := make([]RangeQuery, n)
	width := hi - lo + 1
	for i := range out {
		a := lo + rng.Int63n(width)
		b := a + rng.Int63n(hi-a+1)
		out[i] = RangeQuery{Lo: a, Hi: b}
	}
	return out, nil
}

// FilteredRangeQueries draws random range queries like RandomRangeQueries
// but keeps only those whose true result cardinality is at least minCount, so
// relative errors measure estimation quality rather than divide-by-nearly-
// zero artifacts in sparse regions of the domain. It gives up (returning an
// error) when the acceptance rate is too low to collect n queries within
// 1000*n draws.
func FilteredRangeQueries(rng *rand.Rand, lo, hi int64, n int, minCount int64, truth *Truth) ([]RangeQuery, error) {
	if hi < lo {
		return nil, fmt.Errorf("workload: empty domain [%d,%d]", lo, hi)
	}
	if n <= 0 {
		return nil, fmt.Errorf("workload: query count %d must be positive", n)
	}
	if truth == nil {
		return nil, fmt.Errorf("workload: FilteredRangeQueries needs ground truth")
	}
	out := make([]RangeQuery, 0, n)
	width := hi - lo + 1
	for attempts := 0; len(out) < n; attempts++ {
		if attempts > 1000*n {
			return nil, fmt.Errorf("workload: could not find %d queries with >= %d results (got %d)", n, minCount, len(out))
		}
		a := lo + rng.Int63n(width)
		b := a + rng.Int63n(hi-a+1)
		q := RangeQuery{Lo: a, Hi: b}
		if truth.Count(q) >= minCount {
			out = append(out, q)
		}
	}
	return out, nil
}

// RelativeError returns |actual - estimated| / max(actual, 1). Clamping the
// denominator avoids division by zero on empty ranges while still penalizing
// spurious estimates.
func RelativeError(actual, estimated float64) float64 {
	den := actual
	if den < 1 {
		den = 1
	}
	return math.Abs(actual-estimated) / den
}

// Truth answers exact range counts over a materialized attribute value
// multiset in O(log n) per query.
type Truth struct {
	sorted []int64
}

// NewTruth indexes the exact attribute values of the generating query's
// result (as produced by exec.AttrValues).
func NewTruth(vals []int64) *Truth {
	s := make([]int64, len(vals))
	copy(s, vals)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return &Truth{sorted: s}
}

// Count returns |{v : lo <= v <= hi}|.
func (t *Truth) Count(q RangeQuery) int64 {
	lo := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i] >= q.Lo })
	hi := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i] > q.Hi })
	return int64(hi - lo)
}

// Len returns the total number of indexed values (the true cardinality of the
// generating query's result).
func (t *Truth) Len() int { return len(t.sorted) }

// Min returns the smallest value; ok=false when empty.
func (t *Truth) Min() (int64, bool) {
	if len(t.sorted) == 0 {
		return 0, false
	}
	return t.sorted[0], true
}

// Max returns the largest value; ok=false when empty.
func (t *Truth) Max() (int64, bool) {
	if len(t.sorted) == 0 {
		return 0, false
	}
	return t.sorted[len(t.sorted)-1], true
}

// Estimator is anything that can estimate range cardinalities — a SIT, a
// propagated histogram, or a full cardinality-estimation module.
type Estimator interface {
	EstimateRange(lo, hi int64) float64
}

// Result aggregates the error metrics of one technique over a query batch.
type Result struct {
	Queries int
	// AvgRelError is the mean relative error (the paper's Figure 7 metric).
	AvgRelError float64
	// MedianRelError is the median relative error.
	MedianRelError float64
	// MaxRelError is the worst-case relative error.
	MaxRelError float64
}

// Evaluate runs every query against the estimator and the ground truth and
// aggregates relative errors.
func Evaluate(est Estimator, truth *Truth, queries []RangeQuery) (Result, error) {
	if len(queries) == 0 {
		return Result{}, fmt.Errorf("workload: no queries to evaluate")
	}
	errs := make([]float64, len(queries))
	var sum, maxE float64
	for i, q := range queries {
		actual := float64(truth.Count(q))
		estimated := est.EstimateRange(q.Lo, q.Hi)
		e := RelativeError(actual, estimated)
		errs[i] = e
		sum += e
		if e > maxE {
			maxE = e
		}
	}
	sort.Float64s(errs)
	med := errs[len(errs)/2]
	if len(errs)%2 == 0 {
		med = (errs[len(errs)/2-1] + errs[len(errs)/2]) / 2
	}
	return Result{
		Queries:        len(queries),
		AvgRelError:    sum / float64(len(queries)),
		MedianRelError: med,
		MaxRelError:    maxE,
	}, nil
}
