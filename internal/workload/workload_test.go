package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomRangeQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	qs, err := RandomRangeQueries(rng, 10, 100, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 500 {
		t.Fatalf("count = %d", len(qs))
	}
	for _, q := range qs {
		if q.Lo < 10 || q.Hi > 100 || q.Lo > q.Hi {
			t.Fatalf("bad query %+v", q)
		}
	}
	if _, err := RandomRangeQueries(rng, 5, 4, 10); err == nil {
		t.Error("empty domain: want error")
	}
	if _, err := RandomRangeQueries(rng, 0, 10, 0); err == nil {
		t.Error("zero queries: want error")
	}
	// Degenerate single-point domain works.
	qs, err = RandomRangeQueries(rng, 7, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Lo != 7 || q.Hi != 7 {
			t.Errorf("degenerate query %+v", q)
		}
	}
}

func TestRelativeError(t *testing.T) {
	cases := []struct{ act, est, want float64 }{
		{100, 100, 0},
		{100, 150, 0.5},
		{100, 50, 0.5},
		{0, 5, 5},     // clamped denominator
		{0.5, 2, 1.5}, // |0.5-2|/max(0.5,1)
	}
	for _, c := range cases {
		if got := RelativeError(c.act, c.est); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("RelativeError(%v,%v) = %v, want %v", c.act, c.est, got, c.want)
		}
	}
}

func TestTruth(t *testing.T) {
	tr := NewTruth([]int64{5, 1, 3, 3, 9})
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
	if lo, ok := tr.Min(); !ok || lo != 1 {
		t.Errorf("Min = %d,%v", lo, ok)
	}
	if hi, ok := tr.Max(); !ok || hi != 9 {
		t.Errorf("Max = %d,%v", hi, ok)
	}
	cases := []struct {
		q    RangeQuery
		want int64
	}{
		{RangeQuery{1, 9}, 5},
		{RangeQuery{3, 3}, 2},
		{RangeQuery{4, 8}, 1},
		{RangeQuery{10, 20}, 0},
		{RangeQuery{-5, 0}, 0},
	}
	for _, c := range cases {
		if got := tr.Count(c.q); got != c.want {
			t.Errorf("Count(%+v) = %d, want %d", c.q, got, c.want)
		}
	}
	empty := NewTruth(nil)
	if _, ok := empty.Min(); ok {
		t.Error("empty Min: want ok=false")
	}
	if _, ok := empty.Max(); ok {
		t.Error("empty Max: want ok=false")
	}
}

// Property: Truth.Count matches a linear scan for arbitrary data and ranges.
func TestTruthQuick(t *testing.T) {
	f := func(vals []int16, lo, hi int16) bool {
		v64 := make([]int64, len(vals))
		for i, v := range vals {
			v64[i] = int64(v)
		}
		tr := NewTruth(v64)
		l, h := int64(lo), int64(hi)
		if l > h {
			l, h = h, l
		}
		var want int64
		for _, v := range v64 {
			if v >= l && v <= h {
				want++
			}
		}
		return tr.Count(RangeQuery{l, h}) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

type constEstimator float64

func (c constEstimator) EstimateRange(lo, hi int64) float64 { return float64(c) }

type perfectEstimator struct{ tr *Truth }

func (p perfectEstimator) EstimateRange(lo, hi int64) float64 {
	return float64(p.tr.Count(RangeQuery{lo, hi}))
}

func TestEvaluate(t *testing.T) {
	tr := NewTruth([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	rng := rand.New(rand.NewSource(2))
	qs, err := RandomRangeQueries(rng, 1, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	perfect, err := Evaluate(perfectEstimator{tr}, tr, qs)
	if err != nil {
		t.Fatal(err)
	}
	if perfect.AvgRelError != 0 || perfect.MaxRelError != 0 || perfect.MedianRelError != 0 {
		t.Errorf("perfect estimator errors = %+v", perfect)
	}
	if perfect.Queries != 100 {
		t.Errorf("Queries = %d", perfect.Queries)
	}
	bad, err := Evaluate(constEstimator(1000), tr, qs)
	if err != nil {
		t.Fatal(err)
	}
	if bad.AvgRelError <= perfect.AvgRelError {
		t.Error("bad estimator should have larger error")
	}
	if bad.MaxRelError < bad.MedianRelError {
		t.Error("max < median")
	}
	if _, err := Evaluate(constEstimator(0), tr, nil); err == nil {
		t.Error("no queries: want error")
	}
}
