// Package advisor proposes which SITs to create for a given query workload,
// under a creation-cost budget. The paper's companion work ([2], reviewed in
// Section 2.2) selects SITs with a workload-driven MNSA-style analysis; this
// package implements a simplified, self-contained stand-in so the library
// covers the full lifecycle — enumerate candidates from the workload, score
// them, pick a set under a budget, schedule their creation (package sched)
// and build them (package sit). It is an extension beyond the paper's scope
// and is flagged as such in DESIGN.md.
//
// Candidate enumeration: every range predicate T.a of every workload query
// contributes SIT(T.a | E) for each connected sub-expression E of the query's
// join expression that contains T and at least one join. Scoring: a heuristic
// benefit combining how many workload queries the SIT applies to, how many
// joins its expression spans (more joins mean more propagation steps
// avoided), and the estimated cardinality amplification between the base
// table and the expression's result (big intermediate results are where
// propagated estimates drift). Selection: greedy by benefit density until the
// budget is spent.
package advisor

import (
	"fmt"
	"math"
	"sort"

	"github.com/sitstats/sits/internal/cardest"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sched"
	"github.com/sitstats/sits/internal/sit"
)

// Config tunes candidate enumeration and scoring.
type Config struct {
	// MaxJoinTables caps the size of candidate generating expressions
	// (default 4).
	MaxJoinTables int
	// CostPerRow converts scanned rows to creation-cost units (default
	// 1/1000, the paper's Cost(T) = |T|/1000).
	CostPerRow float64
}

// DefaultConfig returns the default advisor configuration.
func DefaultConfig() Config {
	return Config{MaxJoinTables: 4, CostPerRow: 1.0 / 1000}
}

// Candidate is one proposed SIT with its estimated benefit and creation cost.
type Candidate struct {
	Spec query.SITSpec
	// Queries lists the workload indices the SIT applies to.
	Queries []int
	// Benefit is the heuristic usefulness score (higher is better).
	Benefit float64
	// Cost is the estimated creation cost: the summed scan costs of the
	// SIT's dependency sequences.
	Cost float64
}

// Advisor enumerates and scores SIT candidates over a builder's catalog.
type Advisor struct {
	b   *sit.Builder
	cfg Config
}

// New creates an advisor.
func New(b *sit.Builder, cfg Config) (*Advisor, error) {
	if b == nil {
		return nil, fmt.Errorf("advisor: New needs a builder")
	}
	if cfg.MaxJoinTables < 2 {
		return nil, fmt.Errorf("advisor: MaxJoinTables %d must be at least 2", cfg.MaxJoinTables)
	}
	if cfg.CostPerRow <= 0 {
		return nil, fmt.Errorf("advisor: CostPerRow must be positive")
	}
	return &Advisor{b: b, cfg: cfg}, nil
}

// Candidates enumerates and scores the SIT candidates for the workload,
// sorted by benefit density (benefit/cost) descending.
func (a *Advisor) Candidates(workload []cardest.SPJQuery) ([]Candidate, error) {
	byKey := map[string]*Candidate{}
	for qi, q := range workload {
		if q.Expr == nil {
			return nil, fmt.Errorf("advisor: workload query %d has no expression", qi)
		}
		for _, p := range q.Preds {
			if !q.Expr.HasTable(p.Table) {
				return nil, fmt.Errorf("advisor: workload query %d predicate on %s.%s outside its expression",
					qi, p.Table, p.Attr)
			}
			subs, err := q.Expr.ConnectedSubExprs(p.Table, a.cfg.MaxJoinTables)
			if err != nil {
				return nil, err
			}
			for _, sub := range subs {
				spec, err := query.NewSITSpec(p.Table, p.Attr, sub)
				if err != nil {
					return nil, err
				}
				key := spec.Canonical()
				c, ok := byKey[key]
				if !ok {
					cost, err := a.creationCost(spec)
					if err != nil {
						return nil, err
					}
					benefit, err := a.benefit(spec)
					if err != nil {
						return nil, err
					}
					c = &Candidate{Spec: spec, Cost: cost, Benefit: 0}
					c.Benefit = benefit
					byKey[key] = c
				}
				if len(c.Queries) == 0 || c.Queries[len(c.Queries)-1] != qi {
					c.Queries = append(c.Queries, qi)
				}
			}
		}
	}
	out := make([]Candidate, 0, len(byKey))
	for _, c := range byKey {
		// Applicability multiplier: a SIT matching many workload queries
		// amortizes its creation cost.
		c.Benefit *= float64(len(c.Queries))
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		di := out[i].Benefit / out[i].Cost
		dj := out[j].Benefit / out[j].Cost
		if di != dj {
			return di > dj
		}
		return out[i].Spec.Canonical() < out[j].Spec.Canonical() // deterministic
	})
	return out, nil
}

// benefit scores a candidate: join count times the log-scale amplification of
// the expression's estimated result over the SIT attribute's base table.
func (a *Advisor) benefit(spec query.SITSpec) (float64, error) {
	joins := float64(len(spec.Expr.Joins()))
	card, err := a.b.EstimateJoinCard(spec.Expr)
	if err != nil {
		return 0, err
	}
	base, err := a.b.Catalog().Table(spec.Table)
	if err != nil {
		return 0, err
	}
	amp := 1.0
	if n := float64(base.NumRows()); n > 0 && card > n {
		amp = card / n
	}
	return joins * math.Log2(1+amp), nil
}

// creationCost sums the scan costs of the spec's dependency sequences.
func (a *Advisor) creationCost(spec query.SITSpec) (float64, error) {
	seqs, err := spec.DependencySequences()
	if err != nil {
		return 0, err
	}
	cost := 0.0
	for _, seq := range seqs {
		for _, table := range seq {
			t, err := a.b.Catalog().Table(table)
			if err != nil {
				return 0, err
			}
			cost += a.cfg.CostPerRow * float64(t.NumRows())
		}
	}
	if cost <= 0 {
		cost = a.cfg.CostPerRow // base statistics are nearly free but not free
	}
	return cost, nil
}

// Select greedily picks candidates by benefit density until the creation
// budget is exhausted. Candidates must be sorted as returned by Candidates.
func Select(cands []Candidate, budget float64) []Candidate {
	var out []Candidate
	remaining := budget
	for _, c := range cands {
		if c.Cost <= remaining {
			out = append(out, c)
			remaining -= c.Cost
		}
	}
	return out
}

// CreationTasks converts selected chain-shaped candidates into schedulable
// SIT tasks; bushier candidates are returned separately for direct builds.
func CreationTasks(selected []Candidate) (tasks []sched.SITTask, direct []query.SITSpec) {
	for _, c := range selected {
		st, err := sched.NewSITTask(c.Spec)
		if err != nil {
			direct = append(direct, c.Spec)
			continue
		}
		tasks = append(tasks, st)
	}
	return tasks, direct
}
