package advisor

import (
	"testing"
)

// TestCandidatesRunToRunStable: the recommendation list (order, specs,
// scores) must be identical on every call — candidates are accumulated in a
// map keyed by canonical spec, so a regression here means the sorted
// emission of that map was lost.
func TestCandidatesRunToRunStable(t *testing.T) {
	b, w := chainWorkload(t)
	a, err := New(b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, err := a.Candidates(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 {
		t.Fatal("workload produced no candidates")
	}
	for i := 0; i < 5; i++ {
		again, err := a.Candidates(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(again) != len(first) {
			t.Fatalf("run %d: %d candidates, first run had %d", i, len(again), len(first))
		}
		for c := range first {
			f, g := first[c], again[c]
			if f.Spec.Canonical() != g.Spec.Canonical() || f.Benefit != g.Benefit || f.Cost != g.Cost {
				t.Fatalf("run %d: candidate %d changed: %+v vs %+v", i, c, f, g)
			}
		}
	}
}
