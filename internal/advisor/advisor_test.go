package advisor

import (
	"testing"

	"github.com/sitstats/sits/internal/cardest"
	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sched"
	"github.com/sitstats/sits/internal/sit"
)

func chainWorkload(t *testing.T) (*sit.Builder, []cardest.SPJQuery) {
	t.Helper()
	cfg := datagen.DefaultChainConfig()
	cfg.Rows = []int{800, 600, 500, 400}
	cat, err := datagen.ChainDB(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sit.NewBuilder(cat, sit.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	e2, err := query.Chain([]string{"T1", "T2"}, []string{"jnext"}, []string{"jprev"})
	if err != nil {
		t.Fatal(err)
	}
	e3, err := query.Chain([]string{"T1", "T2", "T3"}, []string{"jnext", "jnext"}, []string{"jprev", "jprev"})
	if err != nil {
		t.Fatal(err)
	}
	w := []cardest.SPJQuery{
		{Expr: e2, Preds: []cardest.Predicate{{Table: "T2", Attr: "a", Lo: 1, Hi: 100}}},
		{Expr: e3, Preds: []cardest.Predicate{{Table: "T3", Attr: "a", Lo: 1, Hi: 100}}},
		{Expr: e2, Preds: []cardest.Predicate{{Table: "T2", Attr: "a", Lo: 200, Hi: 300}}},
	}
	return b, w
}

func TestNewValidation(t *testing.T) {
	b, _ := chainWorkload(t)
	if _, err := New(nil, DefaultConfig()); err == nil {
		t.Error("nil builder: want error")
	}
	bad := DefaultConfig()
	bad.MaxJoinTables = 1
	if _, err := New(b, bad); err == nil {
		t.Error("MaxJoinTables=1: want error")
	}
	bad = DefaultConfig()
	bad.CostPerRow = 0
	if _, err := New(b, bad); err == nil {
		t.Error("CostPerRow=0: want error")
	}
}

func TestCandidatesEnumeration(t *testing.T) {
	b, w := chainWorkload(t)
	a, err := New(b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cands, err := a.Candidates(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// The 3-way query should yield SIT(T3.a | T2⋈T3) and SIT(T3.a | T1⋈T2⋈T3).
	byKey := map[string]Candidate{}
	for _, c := range cands {
		byKey[c.Spec.Canonical()] = c
		if c.Cost <= 0 || c.Benefit <= 0 {
			t.Errorf("candidate %s has cost %v benefit %v", c.Spec.String(), c.Cost, c.Benefit)
		}
	}
	sub, _ := query.NewExpr(query.JoinPred{LeftTable: "T2", LeftAttr: "jnext", RightTable: "T3", RightAttr: "jprev"})
	subSpec, _ := query.NewSITSpec("T3", "a", sub)
	if _, ok := byKey[subSpec.Canonical()]; !ok {
		t.Errorf("missing sub-expression candidate %s", subSpec.String())
	}
	full := w[1].Expr
	fullSpec, _ := query.NewSITSpec("T3", "a", full)
	if _, ok := byKey[fullSpec.Canonical()]; !ok {
		t.Errorf("missing full-expression candidate %s", fullSpec.String())
	}
	// SIT(T2.a | T1⋈T2) is shared by queries 0 and 2.
	shared, _ := query.NewSITSpec("T2", "a", w[0].Expr)
	c, ok := byKey[shared.Canonical()]
	if !ok {
		t.Fatalf("missing shared candidate %s", shared.String())
	}
	if len(c.Queries) != 2 {
		t.Errorf("shared candidate applies to %v, want 2 queries", c.Queries)
	}
	// Sorted by benefit density descending.
	for i := 1; i < len(cands); i++ {
		if cands[i-1].Benefit/cands[i-1].Cost < cands[i].Benefit/cands[i].Cost-1e-12 {
			t.Errorf("candidates not sorted by density at %d", i)
		}
	}
}

func TestCandidatesValidation(t *testing.T) {
	b, w := chainWorkload(t)
	a, err := New(b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Candidates([]cardest.SPJQuery{{}}); err == nil {
		t.Error("nil expr: want error")
	}
	bad := w[0]
	bad.Preds = []cardest.Predicate{{Table: "ZZ", Attr: "a"}}
	if _, err := a.Candidates([]cardest.SPJQuery{bad}); err == nil {
		t.Error("predicate outside expr: want error")
	}
}

func TestMaxJoinTablesCap(t *testing.T) {
	b, w := chainWorkload(t)
	cfg := DefaultConfig()
	cfg.MaxJoinTables = 2
	a, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cands, err := a.Candidates(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Spec.Expr.NumTables() > 2 {
			t.Errorf("candidate %s exceeds the table cap", c.Spec.String())
		}
	}
}

func TestSelectBudget(t *testing.T) {
	cands := []Candidate{
		{Benefit: 10, Cost: 5},
		{Benefit: 6, Cost: 4},
		{Benefit: 1, Cost: 2},
	}
	sel := Select(cands, 7)
	if len(sel) != 2 || sel[0].Cost != 5 || sel[1].Cost != 2 {
		t.Errorf("Select = %+v", sel)
	}
	if got := Select(cands, 0); got != nil {
		t.Errorf("zero budget = %+v", got)
	}
	total := 0.0
	for _, c := range Select(cands, 100) {
		total += c.Cost
	}
	if total != 11 {
		t.Errorf("unbounded budget picked cost %v", total)
	}
}

func TestCreationTasksSplit(t *testing.T) {
	b, w := chainWorkload(t)
	a, err := New(b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cands, err := a.Candidates(w)
	if err != nil {
		t.Fatal(err)
	}
	tasks, direct := CreationTasks(cands)
	if len(tasks) == 0 {
		t.Fatal("no schedulable tasks")
	}
	if len(tasks)+len(direct) != len(cands) {
		t.Errorf("tasks %d + direct %d != candidates %d", len(tasks), len(direct), len(cands))
	}
	// Chain candidates are all schedulable in this workload.
	if len(direct) != 0 {
		t.Errorf("unexpected direct builds: %v", direct)
	}
	_ = sched.Tasks(tasks)
}

// TestEndToEnd: advisor -> scheduler -> builder -> estimator improves the
// workload's estimates.
func TestEndToEnd(t *testing.T) {
	b, w := chainWorkload(t)
	a, err := New(b, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cands, err := a.Candidates(w)
	if err != nil {
		t.Fatal(err)
	}
	selected := Select(cands, 5.0) // enough for a couple of SITs
	if len(selected) == 0 {
		t.Fatal("budget selected nothing")
	}
	tasks, direct := CreationTasks(selected)
	if len(direct) != 0 {
		t.Fatalf("unexpected direct builds: %v", direct)
	}
	env := sched.Env{Cost: map[string]float64{}, SampleSize: map[string]float64{}, Memory: 0}
	for _, name := range b.Catalog().Names() {
		tab, err := b.Catalog().Table(name)
		if err != nil {
			t.Fatal(err)
		}
		env.Cost[name] = float64(tab.NumRows()) / 1000
		env.SampleSize[name] = 0.1 * float64(tab.NumRows())
	}
	schedule, _, err := sched.Opt(sched.Tasks(tasks), env)
	if err != nil {
		t.Fatal(err)
	}
	built, err := sched.Execute(schedule, tasks, b, sit.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	est, err := cardest.New(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range built {
		if err := est.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	// Every workload query whose predicate attribute got a SIT should now be
	// answered from a SIT, not a base histogram.
	improved := 0
	for _, q := range w {
		res, err := est.Estimate(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range res.Sources {
			if src.Tables > 1 {
				improved++
			}
		}
	}
	if improved == 0 {
		t.Error("no workload query used a SIT after advisor selection")
	}
}
