package query

import (
	"testing"
)

func TestParseExprBase(t *testing.T) {
	e, err := ParseExpr("  R  ")
	if err != nil {
		t.Fatal(err)
	}
	if e.NumTables() != 1 || !e.HasTable("R") {
		t.Errorf("tables = %v", e.Tables())
	}
}

func TestParseExprSingleJoin(t *testing.T) {
	e, err := ParseExpr("R JOIN S ON R.x = S.y")
	if err != nil {
		t.Fatal(err)
	}
	want := MustNewExpr(pred("R", "x", "S", "y"))
	if !e.Equal(want) {
		t.Errorf("parsed %q, want %q", e.Canonical(), want.Canonical())
	}
}

func TestParseExprMultiJoinAndKeywordCase(t *testing.T) {
	e, err := ParseExpr("R join S on R.x = S.y JOIN T ON S.z = T.w AND S.u = T.v")
	if err != nil {
		t.Fatal(err)
	}
	want := MustNewExpr(
		pred("R", "x", "S", "y"),
		pred("S", "z", "T", "w"),
		pred("S", "u", "T", "v"),
	)
	if !e.Equal(want) {
		t.Errorf("parsed %q, want %q", e.Canonical(), want.Canonical())
	}
}

func TestParseSIT(t *testing.T) {
	s, err := ParseSIT("S.a | R JOIN S ON R.x = S.y")
	if err != nil {
		t.Fatal(err)
	}
	if s.Table != "S" || s.Attr != "a" {
		t.Errorf("target = %s.%s", s.Table, s.Attr)
	}
	if s.Expr.NumTables() != 2 {
		t.Errorf("expr tables = %v", s.Expr.Tables())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                          // empty
		"R JOIN S",                  // missing ON
		"R JOIN S ON R.x",           // missing =
		"R JOIN S ON R.x = S",       // unqualified right side
		"R JOIN S ON R.x = S.y AND", // dangling AND
		"R JOIN S ON x = y",         // unqualified attrs
		"R S",                       // missing JOIN keyword
		"R JOIN S ON R.x = R.y",     // self join
		"R JOIN S ON T.x = U.y",     // predicate tables disconnected from R
		"R @ S",                     // bad character
	}
	for _, s := range bad {
		if _, err := ParseExpr(s); err == nil {
			t.Errorf("ParseExpr(%q): want error", s)
		}
	}
	badSIT := []string{
		"no pipe here",
		"S.a",                           // no expression
		".a | R JOIN S ON R.x = S.y",    // empty table
		"S. | R JOIN S ON R.x = S.y",    // empty attr
		"Z.a | R JOIN S ON R.x = S.y",   // target table not in expr
		"S.a.b | R JOIN S ON R.x = S.y", // too many dots
	}
	for _, s := range badSIT {
		if _, err := ParseSIT(s); err == nil {
			t.Errorf("ParseSIT(%q): want error", s)
		}
	}
}

func TestParseLeadingTableMustConnect(t *testing.T) {
	// Leading table X never appears in the predicates.
	if _, err := ParseExpr("X JOIN S ON R.x = S.y"); err == nil {
		t.Error("leading table not in predicates: want error")
	}
}

func TestParseUnderscoreAndDigits(t *testing.T) {
	e, err := ParseExpr("T_1 JOIN T_2 ON T_1.col_9 = T_2.col_1")
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasTable("T_1") || !e.HasTable("T_2") {
		t.Errorf("tables = %v", e.Tables())
	}
}
