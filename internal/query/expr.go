// Package query models the generating query expressions SITs are defined
// over (Definition 1 of the paper): sets of tables connected by equality join
// predicates. It provides join graphs, acyclicity checking, the join-tree
// construction of Section 3.2 (rooted at the table holding the SIT's
// attribute), the dependency sequences of Section 4.3 that drive multi-SIT
// scheduling, a canonical form used for materialized-view-style SIT matching
// in the cardinality estimator, and a small text parser for tools.
package query

import (
	"fmt"
	"sort"
	"strings"
)

// JoinPred is one equality join predicate LeftTable.LeftAttr = RightTable.RightAttr.
type JoinPred struct {
	LeftTable, LeftAttr   string
	RightTable, RightAttr string
}

// String renders the predicate as "R.x = S.y".
func (p JoinPred) String() string {
	return fmt.Sprintf("%s.%s = %s.%s", p.LeftTable, p.LeftAttr, p.RightTable, p.RightAttr)
}

// normalized returns the predicate with its two sides in lexicographic order,
// so equal predicates written in either direction compare equal.
func (p JoinPred) normalized() JoinPred {
	if p.LeftTable > p.RightTable || (p.LeftTable == p.RightTable && p.LeftAttr > p.RightAttr) {
		return JoinPred{
			LeftTable: p.RightTable, LeftAttr: p.RightAttr,
			RightTable: p.LeftTable, RightAttr: p.LeftAttr,
		}
	}
	return p
}

func (p JoinPred) validate() error {
	if p.LeftTable == "" || p.LeftAttr == "" || p.RightTable == "" || p.RightAttr == "" {
		return fmt.Errorf("query: join predicate %q has empty components", p.String())
	}
	if p.LeftTable == p.RightTable {
		return fmt.Errorf("query: self-join predicate %q not supported", p.String())
	}
	return nil
}

// Expr is a join generating query expression over a set of tables. A valid
// Expr is connected; SIT creation additionally requires it to be acyclic.
// An Expr over a single table with no joins represents a base table (whose
// "SIT" is an ordinary base-table histogram).
type Expr struct {
	tables []string // sorted, unique
	joins  []JoinPred
}

// NewExpr builds an expression from join predicates; the table set is
// derived from the predicates. Use NewBaseExpr for single-table expressions.
func NewExpr(joins ...JoinPred) (*Expr, error) {
	if len(joins) == 0 {
		return nil, fmt.Errorf("query: NewExpr needs at least one join predicate; use NewBaseExpr for base tables")
	}
	set := map[string]bool{}
	for _, j := range joins {
		if err := j.validate(); err != nil {
			return nil, err
		}
		set[j.LeftTable] = true
		set[j.RightTable] = true
	}
	e := &Expr{joins: append([]JoinPred(nil), joins...)}
	for t := range set {
		e.tables = append(e.tables, t)
	}
	sort.Strings(e.tables)
	if !e.connected() {
		return nil, fmt.Errorf("query: expression %q is not connected", e.String())
	}
	return e, nil
}

// MustNewExpr is NewExpr that panics on error.
func MustNewExpr(joins ...JoinPred) *Expr {
	e, err := NewExpr(joins...)
	if err != nil {
		panic(err)
	}
	return e
}

// NewBaseExpr builds the trivial expression over a single base table.
func NewBaseExpr(table string) (*Expr, error) {
	if table == "" {
		return nil, fmt.Errorf("query: base expression needs a table name")
	}
	return &Expr{tables: []string{table}}, nil
}

// Chain builds the left-deep chain expression
// tables[0] ⋈ tables[1] ⋈ ... where the i-th join predicate is
// tables[i].outAttrs[i] = tables[i+1].inAttrs[i].
func Chain(tables, outAttrs, inAttrs []string) (*Expr, error) {
	if len(tables) < 2 {
		return nil, fmt.Errorf("query: Chain needs at least 2 tables")
	}
	if len(outAttrs) != len(tables)-1 || len(inAttrs) != len(tables)-1 {
		return nil, fmt.Errorf("query: Chain needs %d join attribute pairs, got %d/%d",
			len(tables)-1, len(outAttrs), len(inAttrs))
	}
	joins := make([]JoinPred, len(tables)-1)
	for i := 0; i < len(tables)-1; i++ {
		joins[i] = JoinPred{
			LeftTable: tables[i], LeftAttr: outAttrs[i],
			RightTable: tables[i+1], RightAttr: inAttrs[i],
		}
	}
	return NewExpr(joins...)
}

// Tables returns the sorted table names of the expression.
func (e *Expr) Tables() []string { return append([]string(nil), e.tables...) }

// Joins returns the join predicates of the expression.
func (e *Expr) Joins() []JoinPred { return append([]JoinPred(nil), e.joins...) }

// NumTables returns the number of tables.
func (e *Expr) NumTables() int { return len(e.tables) }

// HasTable reports whether the expression references the table.
func (e *Expr) HasTable(t string) bool {
	i := sort.SearchStrings(e.tables, t)
	return i < len(e.tables) && e.tables[i] == t
}

// adjacency returns, per table, the set of neighboring tables (collapsing
// multiple predicates between the same pair into one edge).
func (e *Expr) adjacency() map[string]map[string]bool {
	adj := map[string]map[string]bool{}
	for _, t := range e.tables {
		adj[t] = map[string]bool{}
	}
	for _, j := range e.joins {
		adj[j.LeftTable][j.RightTable] = true
		adj[j.RightTable][j.LeftTable] = true
	}
	return adj
}

func (e *Expr) connected() bool {
	if len(e.tables) == 0 {
		return false
	}
	adj := e.adjacency()
	seen := map[string]bool{e.tables[0]: true}
	stack := []string{e.tables[0]}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for n := range adj[t] {
			if !seen[n] {
				seen[n] = true
				stack = append(stack, n)
			}
		}
	}
	return len(seen) == len(e.tables)
}

// IsAcyclic reports whether the join graph is acyclic (a tree, since valid
// expressions are connected): the class of generating queries Sweep handles
// (Section 3.2).
func (e *Expr) IsAcyclic() bool {
	// A connected graph is a tree iff #edges == #nodes - 1, counting
	// multi-predicate table pairs once.
	edges := map[[2]string]bool{}
	for _, j := range e.joins {
		n := j.normalized()
		edges[[2]string{n.LeftTable, n.RightTable}] = true
	}
	return len(edges) == len(e.tables)-1
}

// Canonical returns a normalized string form usable as a map key: equal
// expressions (same tables and predicates, in any order or direction) yield
// equal canonical strings.
func (e *Expr) Canonical() string {
	preds := make([]string, len(e.joins))
	for i, j := range e.joins {
		preds[i] = j.normalized().String()
	}
	sort.Strings(preds)
	return strings.Join(e.tables, ",") + "{" + strings.Join(preds, " AND ") + "}"
}

// Equal reports whether two expressions are semantically equal.
func (e *Expr) Equal(o *Expr) bool {
	return o != nil && e.Canonical() == o.Canonical()
}

// String renders the expression in parseable form:
// "T1 JOIN T2 ON T1.x = T2.y JOIN T3 ON ...". Predicates are emitted in a
// deterministic order following a traversal from the lexicographically first
// table.
func (e *Expr) String() string {
	if len(e.joins) == 0 {
		return e.tables[0]
	}
	var sb strings.Builder
	emitted := map[string]bool{}
	sb.WriteString(e.tables[0])
	emitted[e.tables[0]] = true
	remaining := append([]JoinPred(nil), e.joins...)
	for len(remaining) > 0 {
		progress := false
		for i, j := range remaining {
			if emitted[j.LeftTable] || emitted[j.RightTable] {
				newT := j.RightTable
				if !emitted[j.LeftTable] {
					newT = j.LeftTable
				}
				if !emitted[newT] {
					fmt.Fprintf(&sb, " JOIN %s ON %s", newT, j.String())
					emitted[newT] = true
				} else {
					fmt.Fprintf(&sb, " AND %s", j.String())
				}
				remaining = append(remaining[:i], remaining[i+1:]...)
				progress = true
				break
			}
		}
		if !progress { // unreachable for connected expressions
			break
		}
	}
	return sb.String()
}

// SITSpec names a statistic over a query expression: SIT(Table.Attr | Expr),
// per Definition 1.
type SITSpec struct {
	Table string
	Attr  string
	Expr  *Expr
}

// NewSITSpec validates that the attribute's table appears in the expression.
func NewSITSpec(table, attr string, expr *Expr) (SITSpec, error) {
	if table == "" || attr == "" {
		return SITSpec{}, fmt.Errorf("query: SIT spec needs table and attribute")
	}
	if expr == nil {
		return SITSpec{}, fmt.Errorf("query: SIT spec needs a generating expression")
	}
	if !expr.HasTable(table) {
		return SITSpec{}, fmt.Errorf("query: SIT attribute table %q not in expression %q", table, expr.String())
	}
	return SITSpec{Table: table, Attr: attr, Expr: expr}, nil
}

// String renders "SIT(T.a | <expr>)".
func (s SITSpec) String() string {
	return fmt.Sprintf("SIT(%s.%s | %s)", s.Table, s.Attr, s.Expr.String())
}

// Canonical returns a map key identifying the SIT up to expression
// normalization.
func (s SITSpec) Canonical() string {
	return s.Table + "." + s.Attr + "|" + s.Expr.Canonical()
}

// IsBase reports whether the spec denotes an ordinary base-table statistic.
func (s SITSpec) IsBase() bool { return len(s.Expr.joins) == 0 }

// ConnectedSubExprs enumerates the connected sub-expressions of e that
// contain the anchor table and at least one join predicate, up to maxTables
// tables. Multi-predicate edges are kept intact (an edge's predicates are
// either all in or all out), and sub-expressions that would close a cycle are
// skipped, so every result is a valid acyclic generating query when e is
// acyclic. The enumeration is the candidate space for SIT matching and
// advisor-style selection.
func (e *Expr) ConnectedSubExprs(anchor string, maxTables int) ([]*Expr, error) {
	if !e.HasTable(anchor) {
		return nil, fmt.Errorf("query: anchor table %q not in expression %q", anchor, e.String())
	}
	if maxTables < 2 {
		return nil, fmt.Errorf("query: maxTables %d must be at least 2", maxTables)
	}
	type edge struct {
		t1, t2 string
		preds  []JoinPred
	}
	edgeIdx := map[[2]string]int{}
	var edges []edge
	for _, j := range e.joins {
		a, b := j.LeftTable, j.RightTable
		if a > b {
			a, b = b, a
		}
		k := [2]string{a, b}
		if i, ok := edgeIdx[k]; ok {
			edges[i].preds = append(edges[i].preds, j)
			continue
		}
		edgeIdx[k] = len(edges)
		edges = append(edges, edge{t1: a, t2: b, preds: []JoinPred{j}})
	}
	seen := map[string]bool{}
	var out []*Expr
	inSet := map[int]bool{}
	var grow func(tables map[string]bool, used []int) error
	grow = func(tables map[string]bool, used []int) error {
		if len(used) > 0 {
			var preds []JoinPred
			for _, ei := range used {
				preds = append(preds, edges[ei].preds...)
			}
			sub, err := NewExpr(preds...)
			if err != nil {
				return err
			}
			if key := sub.Canonical(); !seen[key] {
				seen[key] = true
				out = append(out, sub)
			}
		}
		if len(tables) >= maxTables {
			return nil
		}
		for ei, ed := range edges {
			if inSet[ei] {
				continue
			}
			in1, in2 := tables[ed.t1], tables[ed.t2]
			if in1 == in2 { // disconnected, or both in (would close a cycle)
				continue
			}
			newTable := ed.t1
			if in1 {
				newTable = ed.t2
			}
			tables[newTable] = true
			inSet[ei] = true
			if err := grow(tables, append(used, ei)); err != nil {
				return err
			}
			delete(tables, newTable)
			delete(inSet, ei)
		}
		return nil
	}
	if err := grow(map[string]bool{anchor: true}, nil); err != nil {
		return nil, err
	}
	return out, nil
}
