package query

import (
	"reflect"
	"strings"
	"testing"
)

func pred(lt, la, rt, ra string) JoinPred {
	return JoinPred{LeftTable: lt, LeftAttr: la, RightTable: rt, RightAttr: ra}
}

func TestNewExprValidation(t *testing.T) {
	if _, err := NewExpr(); err == nil {
		t.Error("no joins: want error")
	}
	if _, err := NewExpr(pred("R", "x", "R", "y")); err == nil {
		t.Error("self join: want error")
	}
	if _, err := NewExpr(pred("", "x", "S", "y")); err == nil {
		t.Error("empty table: want error")
	}
	// Disconnected: R-S and T-U.
	if _, err := NewExpr(pred("R", "x", "S", "y"), pred("T", "x", "U", "y")); err == nil {
		t.Error("disconnected: want error")
	}
}

func TestBaseExpr(t *testing.T) {
	e, err := NewBaseExpr("R")
	if err != nil {
		t.Fatal(err)
	}
	if e.NumTables() != 1 || !e.HasTable("R") || e.HasTable("S") {
		t.Errorf("base expr tables: %v", e.Tables())
	}
	if !e.IsAcyclic() {
		t.Error("base expr should be acyclic")
	}
	if e.String() != "R" {
		t.Errorf("String = %q", e.String())
	}
	if _, err := NewBaseExpr(""); err == nil {
		t.Error("empty base: want error")
	}
}

func TestChain(t *testing.T) {
	e, err := Chain([]string{"R", "S", "T"}, []string{"r1", "s2"}, []string{"s1", "t1"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(e.Tables(), []string{"R", "S", "T"}) {
		t.Errorf("tables = %v", e.Tables())
	}
	if len(e.Joins()) != 2 {
		t.Errorf("joins = %v", e.Joins())
	}
	if !e.IsAcyclic() {
		t.Error("chain should be acyclic")
	}
	if _, err := Chain([]string{"R"}, nil, nil); err == nil {
		t.Error("1-table chain: want error")
	}
	if _, err := Chain([]string{"R", "S"}, []string{"a", "b"}, []string{"c"}); err == nil {
		t.Error("attr count mismatch: want error")
	}
}

func TestIsAcyclic(t *testing.T) {
	tri, err := NewExpr(
		pred("R", "x", "S", "y"),
		pred("S", "z", "T", "w"),
		pred("T", "v", "R", "u"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if tri.IsAcyclic() {
		t.Error("triangle should be cyclic")
	}
	// Two predicates between the same pair: still acyclic (one edge).
	multi, err := NewExpr(pred("R", "w", "S", "x"), pred("R", "y", "S", "z"))
	if err != nil {
		t.Fatal(err)
	}
	if !multi.IsAcyclic() {
		t.Error("multi-predicate pair should count as one edge")
	}
}

func TestCanonicalAndEqual(t *testing.T) {
	a := MustNewExpr(pred("R", "x", "S", "y"), pred("S", "z", "T", "w"))
	b := MustNewExpr(pred("T", "w", "S", "z"), pred("S", "y", "R", "x")) // reversed & reordered
	if a.Canonical() != b.Canonical() {
		t.Errorf("canonical mismatch:\n%s\n%s", a.Canonical(), b.Canonical())
	}
	if !a.Equal(b) {
		t.Error("Equal = false for equivalent expressions")
	}
	c := MustNewExpr(pred("R", "x", "S", "y"))
	if a.Equal(c) || a.Equal(nil) {
		t.Error("Equal = true for different expressions")
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	exprs := []*Expr{
		MustNewExpr(pred("R", "x", "S", "y")),
		MustNewExpr(pred("R", "x", "S", "y"), pred("S", "z", "T", "w")),
		MustNewExpr(pred("R", "r1", "S", "s1"), pred("R", "r2", "U", "u1"), pred("U", "u2", "V", "v1")),
		MustNewExpr(pred("R", "w", "S", "x"), pred("R", "y", "S", "z")),
	}
	for _, e := range exprs {
		back, err := ParseExpr(e.String())
		if err != nil {
			t.Errorf("reparsing %q: %v", e.String(), err)
			continue
		}
		if !e.Equal(back) {
			t.Errorf("round trip changed expression: %q -> %q", e.Canonical(), back.Canonical())
		}
	}
}

func TestSITSpec(t *testing.T) {
	e := MustNewExpr(pred("R", "x", "S", "y"))
	s, err := NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	if s.IsBase() {
		t.Error("join SIT reported as base")
	}
	if got := s.String(); !strings.HasPrefix(got, "SIT(S.a | ") {
		t.Errorf("String = %q", got)
	}
	if _, err := NewSITSpec("T", "a", e); err == nil {
		t.Error("attr table not in expr: want error")
	}
	if _, err := NewSITSpec("", "a", e); err == nil {
		t.Error("empty table: want error")
	}
	if _, err := NewSITSpec("S", "a", nil); err == nil {
		t.Error("nil expr: want error")
	}
	base, _ := NewBaseExpr("R")
	bs, err := NewSITSpec("R", "a", base)
	if err != nil {
		t.Fatal(err)
	}
	if !bs.IsBase() {
		t.Error("base SIT not reported as base")
	}
	// Canonical keys distinguish attribute and expression.
	s2, _ := NewSITSpec("S", "b", e)
	if s.Canonical() == s2.Canonical() {
		t.Error("different attrs share canonical key")
	}
}

func TestConnectedSubExprs(t *testing.T) {
	// Chain R-S-T anchored at T: {S-T}, {R-S-T}.
	chain, err := Chain([]string{"R", "S", "T"}, []string{"r1", "s2"}, []string{"s1", "t1"})
	if err != nil {
		t.Fatal(err)
	}
	subs, err := chain.ConnectedSubExprs("T", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 2 {
		t.Fatalf("subs = %d, want 2", len(subs))
	}
	sizes := map[int]bool{}
	for _, s := range subs {
		if !s.HasTable("T") {
			t.Errorf("sub-expression %q missing anchor", s.String())
		}
		sizes[s.NumTables()] = true
	}
	if !sizes[2] || !sizes[3] {
		t.Errorf("expected 2- and 3-table sub-expressions")
	}
	// maxTables caps enumeration.
	subs, err = chain.ConnectedSubExprs("T", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || subs[0].NumTables() != 2 {
		t.Errorf("capped subs = %v", subs)
	}
	// Star anchored at the hub: edges in every combination.
	star := MustNewExpr(
		pred("C", "j1", "D1", "k"),
		pred("C", "j2", "D2", "k"),
	)
	subs, err = star.ConnectedSubExprs("C", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 3 { // {C,D1}, {C,D2}, {C,D1,D2}
		t.Errorf("star subs = %d, want 3", len(subs))
	}
	// Anchored at a leaf, the single-edge sub without the anchor is excluded.
	subs, err = star.ConnectedSubExprs("D1", 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range subs {
		if !s.HasTable("D1") {
			t.Errorf("leaf-anchored sub %q missing anchor", s.String())
		}
	}
	if len(subs) != 2 { // {C,D1}, {C,D1,D2}
		t.Errorf("leaf-anchored subs = %d, want 2", len(subs))
	}
	// Errors.
	if _, err := chain.ConnectedSubExprs("ZZ", 4); err == nil {
		t.Error("bad anchor: want error")
	}
	if _, err := chain.ConnectedSubExprs("T", 1); err == nil {
		t.Error("maxTables < 2: want error")
	}
	// Multi-predicate edges stay intact.
	multi := MustNewExpr(pred("R", "w", "S", "x"), pred("R", "y", "S", "z"))
	subs, err = multi.ConnectedSubExprs("S", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(subs) != 1 || len(subs[0].Joins()) != 2 {
		t.Errorf("multi-pred subs = %v", subs)
	}
}
