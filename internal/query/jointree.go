package query

import (
	"fmt"
	"sort"
	"strings"
)

// AttrPair is one parent/child attribute pair of a join-tree edge.
type AttrPair struct {
	ParentAttr string
	ChildAttr  string
}

// JoinTree is the rooted form of an acyclic join graph (Section 3.2): the
// root is the table holding the SIT's attribute and each edge carries the
// join predicate(s) between a node and its parent. When several predicates
// connect the same table pair the edge carries them all; the builder treats
// the extra predicates as independent filters (the paper defers the exact
// treatment to multidimensional histograms).
type JoinTree struct {
	Table    string
	Children []JoinTreeChild
}

// JoinTreeChild is one child subtree together with the attribute pairs that
// join it to its parent.
type JoinTreeChild struct {
	Preds []AttrPair
	Child *JoinTree
}

// JoinTree roots the expression's join graph at the given table. It fails if
// the expression is cyclic or the root table is not part of the expression.
func (e *Expr) JoinTree(root string) (*JoinTree, error) {
	if !e.HasTable(root) {
		return nil, fmt.Errorf("query: join-tree root %q not in expression %q", root, e.String())
	}
	if !e.IsAcyclic() {
		return nil, fmt.Errorf("query: expression %q is cyclic; Sweep handles acyclic-join queries only", e.String())
	}
	// Group predicates by unordered table pair.
	type edgeKey [2]string
	preds := map[edgeKey][]JoinPred{}
	for _, j := range e.joins {
		n := j.normalized()
		k := edgeKey{n.LeftTable, n.RightTable}
		preds[k] = append(preds[k], n)
	}
	adj := e.adjacency()
	visited := map[string]bool{root: true}
	var build func(table string) *JoinTree
	build = func(table string) *JoinTree {
		node := &JoinTree{Table: table}
		var neighbors []string
		for n := range adj[table] {
			neighbors = append(neighbors, n)
		}
		sort.Strings(neighbors)
		for _, n := range neighbors {
			if visited[n] {
				continue
			}
			visited[n] = true
			k := edgeKey{table, n}
			if table > n {
				k = edgeKey{n, table}
			}
			var pairs []AttrPair
			for _, p := range preds[k] {
				if p.LeftTable == table {
					pairs = append(pairs, AttrPair{ParentAttr: p.LeftAttr, ChildAttr: p.RightAttr})
				} else {
					pairs = append(pairs, AttrPair{ParentAttr: p.RightAttr, ChildAttr: p.LeftAttr})
				}
			}
			node.Children = append(node.Children, JoinTreeChild{Preds: pairs, Child: build(n)})
		}
		return node
	}
	return build(root), nil
}

// IsLeaf reports whether the node has no children.
func (jt *JoinTree) IsLeaf() bool { return len(jt.Children) == 0 }

// Height returns the number of edges on the longest root-to-leaf path.
func (jt *JoinTree) Height() int {
	h := 0
	for _, c := range jt.Children {
		if ch := c.Child.Height() + 1; ch > h {
			h = ch
		}
	}
	return h
}

// Size returns the number of nodes in the subtree.
func (jt *JoinTree) Size() int {
	n := 1
	for _, c := range jt.Children {
		n += c.Child.Size()
	}
	return n
}

// String renders the tree as "root(childA(...), childB)".
func (jt *JoinTree) String() string {
	if jt.IsLeaf() {
		return jt.Table
	}
	parts := make([]string, len(jt.Children))
	for i, c := range jt.Children {
		parts[i] = c.Child.String()
	}
	return jt.Table + "(" + strings.Join(parts, ",") + ")"
}

// SubtreeExpr reconstructs the generating expression of the subtree rooted at
// this node: the join of all tables in the subtree on the subtree's
// predicates. A leaf yields a base-table expression. This is the generating
// query of the intermediate SIT built when this node's table is scanned
// (Section 3.2).
func (jt *JoinTree) SubtreeExpr() (*Expr, error) {
	var preds []JoinPred
	var collect func(n *JoinTree)
	collect = func(n *JoinTree) {
		for _, e := range n.Children {
			for _, p := range e.Preds {
				preds = append(preds, JoinPred{
					LeftTable: n.Table, LeftAttr: p.ParentAttr,
					RightTable: e.Child.Table, RightAttr: p.ChildAttr,
				})
			}
			collect(e.Child)
		}
	}
	collect(jt)
	if len(preds) == 0 {
		return NewBaseExpr(jt.Table)
	}
	return NewExpr(preds...)
}

// DependencySequences returns one sequence of tables per distinct
// root-to-leaf path of the join-tree, in *scan order*: the deepest internal
// node first and the root last, with leaves omitted (leaves only contribute
// base-table histograms, never a Sweep scan — Section 3.2). These are the
// input sequences to the multi-SIT scheduling problem of Section 4.3; a table
// earlier in a sequence must be scanned before every later one, because its
// scan produces the intermediate SIT the later scan's m-Oracle consumes.
//
// Identical sequences arising from sibling leaves are deduplicated: one scan
// of their shared parent builds the single intermediate SIT both paths need.
func (jt *JoinTree) DependencySequences() [][]string {
	var out [][]string
	seen := map[string]bool{}
	var walk func(node *JoinTree, pathFromRoot []string)
	walk = func(node *JoinTree, pathFromRoot []string) {
		if node.IsLeaf() {
			// pathFromRoot holds root..parent-of-leaf; scan order reverses it.
			seq := make([]string, len(pathFromRoot))
			for i, t := range pathFromRoot {
				seq[len(pathFromRoot)-1-i] = t
			}
			key := strings.Join(seq, "\x00")
			if !seen[key] {
				seen[key] = true
				out = append(out, seq)
			}
			return
		}
		for _, c := range node.Children {
			walk(c.Child, append(pathFromRoot, node.Table))
		}
	}
	walk(jt, nil)
	return out
}

// DependencySequences derives the scheduling sequences for a SIT spec by
// rooting the join-tree at the SIT attribute's table. Base-table specs
// involve no Sweep scans and return nil.
func (s SITSpec) DependencySequences() ([][]string, error) {
	if s.IsBase() {
		return nil, nil
	}
	jt, err := s.Expr.JoinTree(s.Table)
	if err != nil {
		return nil, err
	}
	return jt.DependencySequences(), nil
}
