package query

import (
	"reflect"
	"testing"
)

// figure6b builds the acyclic query of the paper's Figure 6(b):
// R joins S (S joins T), and R joins U (U joins V).
func figure6b(t *testing.T) *Expr {
	t.Helper()
	e, err := NewExpr(
		pred("R", "r1", "S", "s1"),
		pred("S", "s2", "T", "t1"),
		pred("R", "r2", "U", "u1"),
		pred("U", "u2", "V", "v1"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestJoinTreeSingleJoin(t *testing.T) {
	e := MustNewExpr(pred("R", "x", "S", "y"))
	jt, err := e.JoinTree("S")
	if err != nil {
		t.Fatal(err)
	}
	if jt.Table != "S" || len(jt.Children) != 1 {
		t.Fatalf("tree = %s", jt.String())
	}
	c := jt.Children[0]
	if c.Child.Table != "R" || !c.Child.IsLeaf() {
		t.Errorf("child = %s", c.Child.String())
	}
	if len(c.Preds) != 1 || c.Preds[0] != (AttrPair{ParentAttr: "y", ChildAttr: "x"}) {
		t.Errorf("edge preds = %v", c.Preds)
	}
	if jt.Height() != 1 || jt.Size() != 2 {
		t.Errorf("height=%d size=%d", jt.Height(), jt.Size())
	}
}

func TestJoinTreeErrors(t *testing.T) {
	e := MustNewExpr(pred("R", "x", "S", "y"))
	if _, err := e.JoinTree("T"); err == nil {
		t.Error("root not in expr: want error")
	}
	cyc := MustNewExpr(
		pred("R", "x", "S", "y"),
		pred("S", "z", "T", "w"),
		pred("T", "v", "R", "u"),
	)
	if _, err := cyc.JoinTree("R"); err == nil {
		t.Error("cyclic expr: want error")
	}
}

func TestJoinTreeFigure6b(t *testing.T) {
	jt, err := figure6b(t).JoinTree("R")
	if err != nil {
		t.Fatal(err)
	}
	if jt.Table != "R" || len(jt.Children) != 2 {
		t.Fatalf("tree = %s", jt.String())
	}
	if got := jt.String(); got != "R(S(T),U(V))" {
		t.Errorf("tree = %q, want R(S(T),U(V))", got)
	}
	if jt.Height() != 2 || jt.Size() != 5 {
		t.Errorf("height=%d size=%d", jt.Height(), jt.Size())
	}
}

func TestDependencySequencesChain(t *testing.T) {
	// SIT(U.a | R ⋈ S ⋈ T ⋈ U), Example 2: scans S, then T, then U.
	e, err := Chain(
		[]string{"R", "S", "T", "U"},
		[]string{"r1", "s2", "t2"},
		[]string{"s1", "t1", "u1"},
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewSITSpec("U", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := spec.DependencySequences()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"S", "T", "U"}}
	if !reflect.DeepEqual(seqs, want) {
		t.Errorf("sequences = %v, want %v", seqs, want)
	}
	// The same chain with the SIT attribute on R scans T, S, R (Example 6,
	// Figure 6(a) analogue).
	specR, err := NewSITSpec("R", "b", e)
	if err != nil {
		t.Fatal(err)
	}
	seqsR, err := specR.DependencySequences()
	if err != nil {
		t.Fatal(err)
	}
	wantR := [][]string{{"T", "S", "R"}}
	if !reflect.DeepEqual(seqsR, wantR) {
		t.Errorf("sequences = %v, want %v", seqsR, wantR)
	}
}

func TestDependencySequencesFigure6b(t *testing.T) {
	// Figure 6(b): SIT(R.a | ...): paths R-S-T and R-U-V give scan orders
	// (S,R) and (U,R).
	spec, err := NewSITSpec("R", "a", figure6b(t))
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := spec.DependencySequences()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"S", "R"}, {"U", "R"}}
	if !reflect.DeepEqual(seqs, want) {
		t.Errorf("sequences = %v, want %v", seqs, want)
	}
}

func TestDependencySequencesSingleJoinAndBase(t *testing.T) {
	e := MustNewExpr(pred("R", "x", "S", "y"))
	spec, err := NewSITSpec("S", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := spec.DependencySequences()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs, [][]string{{"S"}}) {
		t.Errorf("sequences = %v, want [[S]]", seqs)
	}
	base, _ := NewBaseExpr("R")
	bspec, _ := NewSITSpec("R", "a", base)
	bseqs, err := bspec.DependencySequences()
	if err != nil {
		t.Fatal(err)
	}
	if bseqs != nil {
		t.Errorf("base sequences = %v, want nil", bseqs)
	}
}

func TestDependencySequencesDedup(t *testing.T) {
	// Root R with child S that has two leaf children T and U: both paths
	// yield scan order (S,R); only one sequence should remain.
	e, err := NewExpr(
		pred("R", "r1", "S", "s1"),
		pred("S", "s2", "T", "t1"),
		pred("S", "s3", "U", "u1"),
	)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewSITSpec("R", "a", e)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := spec.DependencySequences()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs, [][]string{{"S", "R"}}) {
		t.Errorf("sequences = %v, want [[S R]]", seqs)
	}
}

func TestMultiPredicateEdgeCarriesAllPairs(t *testing.T) {
	e := MustNewExpr(pred("R", "w", "S", "x"), pred("R", "y", "S", "z"))
	jt, err := e.JoinTree("S")
	if err != nil {
		t.Fatal(err)
	}
	if len(jt.Children) != 1 || len(jt.Children[0].Preds) != 2 {
		t.Fatalf("tree = %s preds = %v", jt.String(), jt.Children[0].Preds)
	}
	for _, p := range jt.Children[0].Preds {
		if p.ParentAttr != "x" && p.ParentAttr != "z" {
			t.Errorf("parent attr %q should belong to S", p.ParentAttr)
		}
	}
}
