package query

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseSIT parses the textual SIT notation used by the command-line tools:
//
//	T.a | R JOIN S ON R.x = S.y JOIN T ON S.z = T.w
//
// The part before '|' names the statistic's table and attribute; the part
// after it is a generating expression as accepted by ParseExpr. The keywords
// JOIN, ON and AND are case-insensitive.
func ParseSIT(s string) (SITSpec, error) {
	parts := strings.SplitN(s, "|", 2)
	if len(parts) != 2 {
		return SITSpec{}, fmt.Errorf("query: SIT spec %q must have the form \"T.a | <expr>\"", s)
	}
	table, attr, err := parseQualifiedAttr(strings.TrimSpace(parts[0]))
	if err != nil {
		return SITSpec{}, err
	}
	expr, err := ParseExpr(parts[1])
	if err != nil {
		return SITSpec{}, err
	}
	return NewSITSpec(table, attr, expr)
}

// ParseExpr parses a join generating expression:
//
//	R JOIN S ON R.x = S.y [AND R.w = S.z] JOIN T ON S.u = T.v ...
//
// A bare table name parses as a base-table expression.
func ParseExpr(s string) (*Expr, error) {
	toks, err := tokenize(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseExpr()
}

type token struct {
	kind string // "word", ".", "=", keyword ("JOIN", "ON", "AND")
	text string
}

func tokenize(s string) ([]token, error) {
	var toks []token
	i := 0
	rs := []rune(s)
	for i < len(rs) {
		r := rs[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '.':
			toks = append(toks, token{kind: "."})
			i++
		case r == '=':
			toks = append(toks, token{kind: "="})
			i++
		case unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_':
			j := i
			for j < len(rs) && (unicode.IsLetter(rs[j]) || unicode.IsDigit(rs[j]) || rs[j] == '_') {
				j++
			}
			word := string(rs[i:j])
			switch strings.ToUpper(word) {
			case "JOIN", "ON", "AND":
				toks = append(toks, token{kind: strings.ToUpper(word)})
			default:
				toks = append(toks, token{kind: "word", text: word})
			}
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", r, i)
		}
	}
	return toks, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token {
	if p.pos >= len(p.toks) {
		return token{kind: "eof"}
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(kind string) (token, error) {
	t := p.next()
	if t.kind != kind {
		return t, fmt.Errorf("query: expected %s, got %s %q (token %d)", kind, t.kind, t.text, p.pos)
	}
	return t, nil
}

func (p *parser) parseExpr() (*Expr, error) {
	first, err := p.expect("word")
	if err != nil {
		return nil, err
	}
	if p.peek().kind == "eof" {
		return NewBaseExpr(first.text)
	}
	var joins []JoinPred
	for p.peek().kind != "eof" {
		if _, err := p.expect("JOIN"); err != nil {
			return nil, err
		}
		if _, err := p.expect("word"); err != nil {
			return nil, err
		}
		if _, err := p.expect("ON"); err != nil {
			return nil, err
		}
		for {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			joins = append(joins, pred)
			if p.peek().kind != "AND" {
				break
			}
			p.next()
		}
	}
	expr, err := NewExpr(joins...)
	if err != nil {
		return nil, err
	}
	if !expr.HasTable(first.text) {
		return nil, fmt.Errorf("query: leading table %q not referenced by any join predicate", first.text)
	}
	return expr, nil
}

func (p *parser) parsePred() (JoinPred, error) {
	lt, la, err := p.parseAttrRef()
	if err != nil {
		return JoinPred{}, err
	}
	if _, err := p.expect("="); err != nil {
		return JoinPred{}, err
	}
	rt, ra, err := p.parseAttrRef()
	if err != nil {
		return JoinPred{}, err
	}
	pred := JoinPred{LeftTable: lt, LeftAttr: la, RightTable: rt, RightAttr: ra}
	return pred, pred.validate()
}

func (p *parser) parseAttrRef() (table, attr string, err error) {
	t, err := p.expect("word")
	if err != nil {
		return "", "", err
	}
	if _, err := p.expect("."); err != nil {
		return "", "", err
	}
	a, err := p.expect("word")
	if err != nil {
		return "", "", err
	}
	return t.text, a.text, nil
}

func parseQualifiedAttr(s string) (table, attr string, err error) {
	parts := strings.Split(s, ".")
	if len(parts) != 2 || strings.TrimSpace(parts[0]) == "" || strings.TrimSpace(parts[1]) == "" {
		return "", "", fmt.Errorf("query: %q is not a qualified attribute (want T.a)", s)
	}
	return strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), nil
}
