// Package mem is the memory-governance layer of the engine: a process-wide
// byte-budget Governor with per-operator grants, and a run store that spills
// columnar batches to checksummed temp files when a grant is denied.
//
// The execution operators (hash join build sides, sort buffers) reserve their
// working memory through a Grant before growing it. When the budget is
// exhausted the reservation is denied and the operator spills part of its
// state to the run store, releasing the bytes it no longer holds in RAM; the
// engine's core invariant is that spilling never changes results — output is
// bit-identical to the in-memory execution at any parallelism and any budget,
// including pathological 1-byte budgets.
//
// All methods are safe on a nil *Governor and a nil *Grant, which behave as
// an unlimited budget: operators thread the governor through unconditionally
// and pay no branches for the common un-budgeted configuration.
package mem

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Governor owns one byte budget shared by every operator of an engine run —
// and, since the engine became a long-lived service, by every concurrent
// Builder of the process ("one budget across the engine"). Operators obtain
// per-operator Grants and reserve/release bytes through them; the Governor
// tracks the total and the high-water mark. A budget of 0 means unlimited:
// every reservation is admitted and nothing ever spills.
//
// The ledger is lock-free: used and peak are atomics updated by CAS loops,
// so thousands of concurrent requests admitting and releasing scratch do not
// serialize on a mutex. The mutex only guards the lazily created run store.
type Governor struct {
	budget int64 // immutable after construction
	used   atomic.Int64
	peak   atomic.Int64

	// spillRaw disables SRN2 spill compression for the governor's run
	// store; the zero value means compression on.
	spillRaw atomic.Bool

	mu        sync.Mutex // guards store/storeErr
	store     *RunStore
	storeErr  error
	storeOnce sync.Once
}

// SetSpillCompression switches the governor's run store between SRN2
// compressed spill runs (on, the default) and raw SRN1. Safe on a nil
// governor and before or after the store's first use.
func (g *Governor) SetSpillCompression(on bool) {
	if g == nil {
		return
	}
	g.spillRaw.Store(!on)
	g.mu.Lock()
	store := g.store
	g.mu.Unlock()
	if store != nil {
		store.SetCompression(on)
	}
}

// NewGovernor creates a Governor with the given byte budget (0 = unlimited).
func NewGovernor(budget int64) *Governor {
	if budget < 0 {
		budget = 0
	}
	return &Governor{budget: budget}
}

// Unlimited reports whether the governor admits every reservation. A nil
// governor is unlimited.
func (g *Governor) Unlimited() bool { return g == nil || g.budget == 0 }

// Budget returns the configured byte budget (0 = unlimited).
func (g *Governor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// Used returns the currently reserved bytes.
func (g *Governor) Used() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Peak returns the high-water mark of reserved bytes over the governor's
// lifetime, the quantity budget-compliance tests assert against.
func (g *Governor) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// reserve attempts to admit n bytes. force admits even past the budget (for
// bounded operator scratch that has no spill alternative). The admission
// check and the ledger update are one CAS, so concurrent reservations can
// never jointly overshoot the budget.
func (g *Governor) reserve(n int64, force bool) bool {
	if g == nil || n <= 0 {
		return true
	}
	for {
		u := g.used.Load()
		if !force && g.budget > 0 && u+n > g.budget {
			return false
		}
		if g.used.CompareAndSwap(u, u+n) {
			g.bumpPeak(u + n)
			return true
		}
	}
}

// bumpPeak raises the high-water mark to at least v. Peak is monotone, so a
// lost CAS race against a larger concurrent value needs no retry.
func (g *Governor) bumpPeak(v int64) {
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

func (g *Governor) release(n int64) {
	if g == nil || n <= 0 {
		return
	}
	for {
		u := g.used.Load()
		m := n
		if m > u {
			m = u // clamp: never drive the ledger negative
		}
		if m == 0 || g.used.CompareAndSwap(u, u-m) {
			return
		}
	}
}

// Runs returns the governor's run store, creating its temp directory on
// first use. Spill files live there until Close.
func (g *Governor) Runs() (*RunStore, error) {
	if g == nil {
		return nil, fmt.Errorf("mem: nil governor has no run store")
	}
	g.storeOnce.Do(func() {
		store, err := NewRunStore("")
		if store != nil {
			store.SetCompression(!g.spillRaw.Load())
		}
		g.mu.Lock()
		g.store, g.storeErr = store, err
		g.mu.Unlock()
	})
	return g.store, g.storeErr
}

// Close releases the governor's run store (removing every spill file and the
// temp directory). It is safe on a nil governor and safe to call twice.
func (g *Governor) Close() error {
	if g == nil {
		return nil
	}
	g.mu.Lock()
	store := g.store
	g.store = nil
	g.mu.Unlock()
	if store == nil {
		return nil
	}
	return store.Close()
}

// Grant is one operator's window onto the governor: it tracks the bytes the
// operator holds so Close can release any remainder, and carries the
// operator's spill callback. A nil Grant admits everything. Reservation and
// release are safe for concurrent use, so one pooled grant can account the
// scratch of every worker in a parallel fan-out.
type Grant struct {
	g    *Governor
	name string
	used atomic.Int64
	// spill is invoked when a reservation is denied; it should free memory
	// (by spilling state to the run store and calling Release) and return
	// nil, after which the reservation is retried once.
	spill func() error
}

// Grant opens a named per-operator grant. The name appears in diagnostics
// only. Works on a nil governor, returning a grant that admits everything.
func (g *Governor) Grant(name string) *Grant {
	return &Grant{g: g, name: name}
}

// SetSpill installs the grant's spill callback, invoked by Reserve when the
// budget denies a reservation.
func (gr *Grant) SetSpill(f func() error) {
	if gr != nil {
		gr.spill = f
	}
}

// TryReserve attempts to reserve n bytes without spilling. It reports
// whether the bytes were admitted.
func (gr *Grant) TryReserve(n int64) bool {
	if gr == nil {
		return true
	}
	if !gr.g.reserve(n, false) {
		return false
	}
	gr.used.Add(n)
	return true
}

// Reserve reserves n bytes, invoking the grant's spill callback once if the
// budget denies the request, then retrying. It reports whether the bytes fit
// the budget; on false the caller must shed state itself (or use Force for
// bounded scratch).
func (gr *Grant) Reserve(n int64) (bool, error) {
	if gr.TryReserve(n) {
		return true, nil
	}
	if gr.spill != nil {
		if err := gr.spill(); err != nil {
			return false, err
		}
		if gr.TryReserve(n) {
			return true, nil
		}
	}
	return false, nil
}

// Force reserves n bytes unconditionally. It is for small bounded scratch
// (read buffers, cursors) that has no spill alternative; the bytes still
// count toward Used and Peak.
func (gr *Grant) Force(n int64) {
	if gr == nil {
		return
	}
	gr.g.reserve(n, true)
	gr.used.Add(n)
}

// Release returns n reserved bytes to the budget, clamped to what the grant
// actually holds.
func (gr *Grant) Release(n int64) {
	if gr == nil || n <= 0 {
		return
	}
	for {
		u := gr.used.Load()
		m := n
		if m > u {
			m = u
		}
		if m <= 0 {
			return
		}
		if gr.used.CompareAndSwap(u, u-m) {
			gr.g.release(m)
			return
		}
	}
}

// Used returns the bytes currently held by this grant.
func (gr *Grant) Used() int64 {
	if gr == nil {
		return 0
	}
	return gr.used.Load()
}

// Close releases everything the grant still holds.
func (gr *Grant) Close() {
	if gr == nil {
		return
	}
	gr.g.release(gr.used.Swap(0))
}

// ParseBytes parses a human byte-size string: a non-negative integer with an
// optional binary suffix K, M, G, or T (case-insensitive, optionally
// followed by "B" or "iB", e.g. "512M", "2GiB", "64kb"). "0" means
// unlimited.
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("mem: empty size")
	}
	upper := strings.ToUpper(t)
	mult := int64(1)
	for _, suf := range []struct {
		tag string
		m   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30}, {"TIB", 1 << 40},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"TB", 1 << 40},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"T", 1 << 40},
		{"B", 1},
	} {
		if strings.HasSuffix(upper, suf.tag) {
			mult = suf.m
			upper = strings.TrimSuffix(upper, suf.tag)
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(upper), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("mem: bad size %q: %v", s, err)
	}
	if n < 0 {
		return 0, fmt.Errorf("mem: size %q must be non-negative", s)
	}
	if mult > 1 && n > (1<<62)/mult {
		return 0, fmt.Errorf("mem: size %q overflows", s)
	}
	return n * mult, nil
}
