package mem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"github.com/sitstats/sits/internal/colblk"
)

// Run-store file formats. A run is a sequence of column-major batches of
// int64 values, written little-endian and checksummed per batch. Two formats
// share the store; readers pick by magic, so a store can read runs written
// either way:
//
// SRN1 (raw):
//
//	header:  magic "SRN1" (4 bytes) | ncols uint32
//	batch:   nrows uint32 | ncols x nrows x int64 (column 0 first) | crc32 uint32
//
// SRN2 (compressed, the default):
//
//	header:  magic "SRN2" (4 bytes) | ncols uint32
//	batch:   nrows uint32 | blen uint32 | body | crc32 uint32
//	body:    per column: enc uint8 | plen uint32 | colblk payload (plen bytes)
//
// where enc is a colblk encoding picked per column per batch by trial sizing
// (colblk.Choose), so sorted keys and low-cardinality columns shrink toward
// 1-2 bytes per value while incompressible payloads stay at raw size plus
// 5 bytes per column of framing. The CRC is IEEE crc32 over everything in
// the batch before it (including the nrows/blen heads), so a truncated or
// bit-flipped spill file is detected at read time instead of silently
// producing wrong statistics. Row-major payloads (join build rows, sequenced
// probe/output rows) are stored as single-column runs whose writer appends
// whole rows, so batch boundaries always align with row boundaries.

const (
	runMagic  = "SRN1"
	runMagic2 = "SRN2"
)

// encScratch pools per-batch encode/decode buffers across all writers and
// readers of the process, so short-lived spill runs (one per grace-join
// partition, one per sort run) stop allocating a fresh frame buffer each.
var encScratch = sync.Pool{New: func() any { return new([]byte) }}

// RunStats aggregates a store's spill volume: bytes that actually hit disk
// versus the raw 8-bytes-per-value size of the same batches. The ratio is
// the codec's win on the spill path.
type RunStats struct {
	// SpilledBytes counts encoded batch bytes written, CRCs included.
	SpilledBytes int64
	// RawBytes counts the same batches at 8 bytes per value.
	RawBytes int64
}

// Ratio returns SpilledBytes/RawBytes, or 1 when nothing was written.
func (s RunStats) Ratio() float64 {
	if s.RawBytes == 0 {
		return 1
	}
	return float64(s.SpilledBytes) / float64(s.RawBytes)
}

// RunStore hands out spill files inside one temp directory. File names are
// deterministic — a zero-padded sequence number plus the caller's tag — so a
// run's identity is stable across a process run and directory listings are
// diagnosable. Close removes the directory and everything in it.
type RunStore struct {
	dir string

	// rawOnly disables the SRN2 codec for new runs; the zero value means
	// compression on. Readers always detect the format by magic.
	rawOnly atomic.Bool

	written atomic.Int64
	raw     atomic.Int64

	mu  sync.Mutex
	seq int
}

// NewRunStore creates a run store rooted at dir; with dir == "" a fresh
// temp directory is created under the system temp dir. New runs are
// SRN2-compressed unless SetCompression(false).
func NewRunStore(dir string) (*RunStore, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "sits-spill-")
		if err != nil {
			return nil, fmt.Errorf("mem: create spill dir: %v", err)
		}
		dir = d
	}
	return &RunStore{dir: dir}, nil
}

// SetCompression switches new runs between SRN2 (on, the default) and raw
// SRN1 (off). Runs already created keep the format they were opened with.
func (s *RunStore) SetCompression(on bool) { s.rawOnly.Store(!on) }

// Compressed reports whether new runs use the SRN2 codec.
func (s *RunStore) Compressed() bool { return !s.rawOnly.Load() }

// Stats returns the store's cumulative spill volume across all runs.
func (s *RunStore) Stats() RunStats {
	return RunStats{SpilledBytes: s.written.Load(), RawBytes: s.raw.Load()}
}

// Dir returns the store's spill directory.
func (s *RunStore) Dir() string { return s.dir }

// Close removes the spill directory and every run in it.
func (s *RunStore) Close() error {
	if err := os.RemoveAll(s.dir); err != nil {
		return fmt.Errorf("mem: remove spill dir: %v", err)
	}
	return nil
}

// next returns the store's next deterministic file path for tag.
func (s *RunStore) next(tag string) string {
	s.mu.Lock()
	n := s.seq
	s.seq++
	s.mu.Unlock()
	return filepath.Join(s.dir, fmt.Sprintf("%06d-%s.run", n, tag))
}

// Create opens a writer for a new run of ncols columns. tag names the run's
// role ("sortrun", "build-p3", ...) in its file name. The run's format (SRN2
// or raw SRN1) is the store's compression setting at creation time.
func (s *RunStore) Create(tag string, ncols int) (*RunWriter, error) {
	if ncols <= 0 {
		return nil, fmt.Errorf("mem: run needs at least one column, got %d", ncols)
	}
	path := s.next(tag)
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("mem: create run %s: %v", path, err)
	}
	w := &RunWriter{
		run:      Run{store: s, path: path, ncols: ncols},
		f:        f,
		compress: s.Compressed(),
	}
	var hdr [8]byte
	if w.compress {
		copy(hdr[:4], runMagic2)
	} else {
		copy(hdr[:4], runMagic)
	}
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ncols))
	if _, err := f.Write(hdr[:]); err != nil {
		w.abort()
		return nil, fmt.Errorf("mem: write run header: %v", err)
	}
	return w, nil
}

// Run identifies a finished spill run: its file, column count and row count.
type Run struct {
	store *RunStore
	path  string
	ncols int
	rows  int64
}

// Rows returns the number of rows written to the run.
func (r *Run) Rows() int64 { return r.rows }

// NCols returns the run's column count.
func (r *Run) NCols() int { return r.ncols }

// Path returns the run's file path.
func (r *Run) Path() string { return r.path }

// Remove deletes the run's file; reopening the run afterwards fails. Removing
// an already-removed run is an error surfaced to the caller, not ignored.
func (r *Run) Remove() error {
	if err := os.Remove(r.path); err != nil {
		return fmt.Errorf("mem: remove run: %v", err)
	}
	return nil
}

// RunWriter streams column batches into a run file.
type RunWriter struct {
	run      Run
	f        *os.File
	bw       *bufio.Writer
	compress bool
	scratch  *[]byte // pooled frame buffer, returned on Finish/abort
	err      error
}

// abort closes and removes a half-written run, keeping the first error.
func (w *RunWriter) abort() {
	if w.f == nil {
		return
	}
	// Both failures matter on the error path, but the write error that led
	// here is the root cause the caller sees.
	_ = w.f.Close()
	_ = os.Remove(w.run.path)
	w.f = nil
	w.putScratch()
}

func (w *RunWriter) putScratch() {
	if w.scratch != nil {
		encScratch.Put(w.scratch)
		w.scratch = nil
	}
}

// writer returns the buffered writer, created on the first batch with a size
// derived from that batch's encoded footprint (clamped to [4KiB, 1MiB]) so
// tiny row-major runs don't carry 64KiB buffers and wide sort runs don't
// flush every few rows.
func (w *RunWriter) writer(batchBytes int) *bufio.Writer {
	if w.bw == nil {
		size := 1 << 12
		for size < batchBytes && size < 1<<20 {
			size <<= 1
		}
		w.bw = bufio.NewWriterSize(w.f, size)
	}
	return w.bw
}

// WriteColumns appends one batch: cols must have the run's declared column
// count, all of equal length. The batch is encoded little-endian (SRN2
// codec frames or raw SRN1, per the store setting at Create) and
// checksummed; writers own their buffers, so cols may be reused immediately.
func (w *RunWriter) WriteColumns(cols [][]int64) error {
	if w.err != nil {
		return w.err
	}
	if len(cols) != w.run.ncols {
		return fmt.Errorf("mem: run %s: WriteColumns got %d columns, want %d", w.run.path, len(cols), w.run.ncols)
	}
	n := len(cols[0])
	for _, c := range cols[1:] {
		if len(c) != n {
			return fmt.Errorf("mem: run %s: ragged batch (%d vs %d rows)", w.run.path, len(c), n)
		}
	}
	if n == 0 {
		return nil
	}
	if w.scratch == nil {
		w.scratch = encScratch.Get().(*[]byte)
	}
	var buf []byte
	if w.compress {
		buf = w.encodeFrame((*w.scratch)[:0], cols, n)
	} else {
		buf = w.encodeRaw(*w.scratch, cols, n)
	}
	*w.scratch = buf[:0]
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(buf))
	bw := w.writer(len(buf) + 4)
	if _, err := bw.Write(buf); err == nil {
		_, w.err = bw.Write(tail[:])
	} else {
		w.err = err
	}
	if w.err != nil {
		w.abort()
		return fmt.Errorf("mem: write run %s: %v", w.run.path, w.err)
	}
	w.run.rows += int64(n)
	w.run.store.written.Add(int64(len(buf) + 4))
	w.run.store.raw.Add(int64(8 * n * w.run.ncols))
	return nil
}

// encodeFrame builds an SRN2 batch frame (heads + per-column codec blocks)
// in buf, excluding the trailing CRC.
func (w *RunWriter) encodeFrame(buf []byte, cols [][]int64, n int) []byte {
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // nrows, blen back-patched below
	for _, c := range cols {
		enc, size := colblk.Choose(c)
		var ch [5]byte
		ch[0] = enc
		binary.LittleEndian.PutUint32(ch[1:], uint32(size))
		buf = append(buf, ch[:]...)
		buf = colblk.Append(buf, enc, c)
	}
	binary.LittleEndian.PutUint32(buf, uint32(n))
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(buf)-8))
	return buf
}

// encodeRaw builds a raw SRN1 batch (nrows head + 8-byte values) in scratch,
// excluding the trailing CRC.
func (w *RunWriter) encodeRaw(scratch []byte, cols [][]int64, n int) []byte {
	need := 4 + 8*n*w.run.ncols
	if cap(scratch) < need {
		scratch = make([]byte, need)
	}
	buf := scratch[:need]
	binary.LittleEndian.PutUint32(buf, uint32(n))
	off := 4
	for _, c := range cols {
		for _, v := range c {
			binary.LittleEndian.PutUint64(buf[off:], uint64(v))
			off += 8
		}
	}
	return buf
}

// Finish flushes and closes the run file, returning the immutable run
// handle.
func (w *RunWriter) Finish() (*Run, error) {
	if w.err != nil {
		return nil, w.err
	}
	w.putScratch()
	if w.bw != nil {
		if err := w.bw.Flush(); err != nil {
			w.err = err
			w.abort()
			return nil, fmt.Errorf("mem: flush run %s: %v", w.run.path, err)
		}
	}
	if err := w.f.Close(); err != nil {
		w.err = err
		// The file is already closed (possibly with lost data); remove it so
		// a later Open cannot read a torn run.
		_ = os.Remove(w.run.path)
		w.f = nil
		return nil, fmt.Errorf("mem: close run %s: %v", w.run.path, err)
	}
	w.f = nil
	run := w.run
	return &run, nil
}

// Open opens the run for sequential reading. The format is detected from the
// file's magic, so SRN1 runs written before compression (or with it off)
// read back through the same API as SRN2 runs.
func (r *Run) Open() (*RunReader, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("mem: open run: %v", err)
	}
	rd := &RunReader{f: f, br: bufio.NewReaderSize(f, 1<<16)}
	var hdr [8]byte
	if _, err := io.ReadFull(rd.br, hdr[:]); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("mem: read run header %s: %v", r.path, err)
	}
	switch string(hdr[:4]) {
	case runMagic:
	case runMagic2:
		rd.compressed = true
	default:
		_ = f.Close()
		return nil, fmt.Errorf("mem: run %s: bad magic %q", r.path, hdr[:4])
	}
	nc := int(binary.LittleEndian.Uint32(hdr[4:]))
	if nc != r.ncols {
		_ = f.Close()
		return nil, fmt.Errorf("mem: run %s: header says %d columns, handle says %d", r.path, nc, r.ncols)
	}
	rd.ncols = nc
	rd.path = r.path
	rd.cols = make([][]int64, nc)
	return rd, nil
}

// RunReader streams a run's batches back in write order.
type RunReader struct {
	f          *os.File
	br         *bufio.Reader
	path       string
	ncols      int
	compressed bool
	cols       [][]int64
	scratch    []byte
}

// Next returns the next batch's columns, or io.EOF after the last batch. The
// returned slices are reused by the following Next call.
func (r *RunReader) Next() ([][]int64, error) {
	if r.compressed {
		return r.nextCompressed()
	}
	var head [4]byte
	if _, err := io.ReadFull(r.br, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("mem: read run %s: %v", r.path, err)
	}
	n := int(binary.LittleEndian.Uint32(head[:]))
	need := 8*n*r.ncols + 4
	if cap(r.scratch) < need {
		r.scratch = make([]byte, need)
	}
	buf := r.scratch[:need]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, fmt.Errorf("mem: run %s truncated: %v", r.path, err)
	}
	sum := crc32.ChecksumIEEE(head[:])
	sum = crc32.Update(sum, crc32.IEEETable, buf[:need-4])
	if got := binary.LittleEndian.Uint32(buf[need-4:]); got != sum {
		return nil, fmt.Errorf("mem: run %s: batch checksum mismatch (file %08x, computed %08x)", r.path, got, sum)
	}
	off := 0
	for c := 0; c < r.ncols; c++ {
		if cap(r.cols[c]) < n {
			r.cols[c] = make([]int64, n)
		}
		col := r.cols[c][:n]
		for i := 0; i < n; i++ {
			col[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		r.cols[c] = col
	}
	return r.cols, nil
}

// nextCompressed reads one SRN2 frame: slurp the whole frame by its declared
// length, verify the CRC, then decode the per-column codec blocks.
func (r *RunReader) nextCompressed() ([][]int64, error) {
	var head [8]byte
	if _, err := io.ReadFull(r.br, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("mem: read run %s: %v", r.path, err)
	}
	n := int(binary.LittleEndian.Uint32(head[:]))
	blen := int(binary.LittleEndian.Uint32(head[4:]))
	need := blen + 4
	if cap(r.scratch) < need {
		r.scratch = make([]byte, need)
	}
	buf := r.scratch[:need]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, fmt.Errorf("mem: run %s truncated: %v", r.path, err)
	}
	sum := crc32.ChecksumIEEE(head[:])
	sum = crc32.Update(sum, crc32.IEEETable, buf[:blen])
	if got := binary.LittleEndian.Uint32(buf[blen:]); got != sum {
		return nil, fmt.Errorf("mem: run %s: batch checksum mismatch (file %08x, computed %08x)", r.path, got, sum)
	}
	body := buf[:blen]
	off := 0
	for c := 0; c < r.ncols; c++ {
		if off+5 > len(body) {
			return nil, fmt.Errorf("mem: run %s: batch body truncated at column %d", r.path, c)
		}
		enc := body[off]
		plen := int(binary.LittleEndian.Uint32(body[off+1:]))
		off += 5
		if plen < 0 || off+plen > len(body) {
			return nil, fmt.Errorf("mem: run %s: column %d payload overruns batch body", r.path, c)
		}
		col, err := colblk.Decode(r.cols[c], enc, body[off:off+plen], n)
		if err != nil {
			return nil, fmt.Errorf("mem: run %s: decode column %d: %w", r.path, c, err)
		}
		r.cols[c] = col
		off += plen
	}
	if off != len(body) {
		return nil, fmt.Errorf("mem: run %s: %d trailing bytes after last column", r.path, len(body)-off)
	}
	return r.cols, nil
}

// Close closes the underlying file.
func (r *RunReader) Close() error {
	if r.f == nil {
		return nil
	}
	f := r.f
	r.f = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("mem: close run %s: %v", r.path, err)
	}
	return nil
}
