package mem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Run-store file format. A run is a sequence of column-major batches of
// int64 values, written little-endian and checksummed per batch:
//
//	header:  magic "SRN1" (4 bytes) | ncols uint32
//	batch:   nrows uint32 | ncols x nrows x int64 (column 0 first) | crc32 uint32
//	...      (batches repeat; a clean EOF after a whole batch ends the run)
//
// The CRC is IEEE crc32 over the batch's nrows header and payload, so a
// truncated or corrupted spill file is detected at read time instead of
// silently producing wrong statistics. Row-major payloads (join build rows,
// sequenced probe/output rows) are stored as single-column runs whose writer
// appends whole rows, so batch boundaries always align with row boundaries.

const runMagic = "SRN1"

// RunStore hands out spill files inside one temp directory. File names are
// deterministic — a zero-padded sequence number plus the caller's tag — so a
// run's identity is stable across a process run and directory listings are
// diagnosable. Close removes the directory and everything in it.
type RunStore struct {
	dir string

	mu  sync.Mutex
	seq int
}

// NewRunStore creates a run store rooted at dir; with dir == "" a fresh
// temp directory is created under the system temp dir.
func NewRunStore(dir string) (*RunStore, error) {
	if dir == "" {
		d, err := os.MkdirTemp("", "sits-spill-")
		if err != nil {
			return nil, fmt.Errorf("mem: create spill dir: %v", err)
		}
		dir = d
	}
	return &RunStore{dir: dir}, nil
}

// Dir returns the store's spill directory.
func (s *RunStore) Dir() string { return s.dir }

// Close removes the spill directory and every run in it.
func (s *RunStore) Close() error {
	if err := os.RemoveAll(s.dir); err != nil {
		return fmt.Errorf("mem: remove spill dir: %v", err)
	}
	return nil
}

// next returns the store's next deterministic file path for tag.
func (s *RunStore) next(tag string) string {
	s.mu.Lock()
	n := s.seq
	s.seq++
	s.mu.Unlock()
	return filepath.Join(s.dir, fmt.Sprintf("%06d-%s.run", n, tag))
}

// Create opens a writer for a new run of ncols columns. tag names the run's
// role ("sortrun", "build-p3", ...) in its file name.
func (s *RunStore) Create(tag string, ncols int) (*RunWriter, error) {
	if ncols <= 0 {
		return nil, fmt.Errorf("mem: run needs at least one column, got %d", ncols)
	}
	path := s.next(tag)
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("mem: create run %s: %v", path, err)
	}
	w := &RunWriter{
		run: Run{store: s, path: path, ncols: ncols},
		f:   f,
		bw:  bufio.NewWriterSize(f, 1<<16),
	}
	var hdr [8]byte
	copy(hdr[:4], runMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(ncols))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.abort()
		return nil, fmt.Errorf("mem: write run header: %v", err)
	}
	return w, nil
}

// Run identifies a finished spill run: its file, column count and row count.
type Run struct {
	store *RunStore
	path  string
	ncols int
	rows  int64
}

// Rows returns the number of rows written to the run.
func (r *Run) Rows() int64 { return r.rows }

// NCols returns the run's column count.
func (r *Run) NCols() int { return r.ncols }

// Path returns the run's file path.
func (r *Run) Path() string { return r.path }

// Remove deletes the run's file; reopening the run afterwards fails. Removing
// an already-removed run is an error surfaced to the caller, not ignored.
func (r *Run) Remove() error {
	if err := os.Remove(r.path); err != nil {
		return fmt.Errorf("mem: remove run: %v", err)
	}
	return nil
}

// RunWriter streams column batches into a run file.
type RunWriter struct {
	run     Run
	f       *os.File
	bw      *bufio.Writer
	scratch []byte
	err     error
}

// abort closes and removes a half-written run, keeping the first error.
func (w *RunWriter) abort() {
	if w.f == nil {
		return
	}
	// Both failures matter on the error path, but the write error that led
	// here is the root cause the caller sees.
	_ = w.f.Close()
	_ = os.Remove(w.run.path)
	w.f = nil
}

// WriteColumns appends one batch: cols must have the run's declared column
// count, all of equal length. The batch is encoded little-endian and
// checksummed; writers own their buffers, so cols may be reused immediately.
func (w *RunWriter) WriteColumns(cols [][]int64) error {
	if w.err != nil {
		return w.err
	}
	if len(cols) != w.run.ncols {
		return fmt.Errorf("mem: run %s: WriteColumns got %d columns, want %d", w.run.path, len(cols), w.run.ncols)
	}
	n := len(cols[0])
	for _, c := range cols[1:] {
		if len(c) != n {
			return fmt.Errorf("mem: run %s: ragged batch (%d vs %d rows)", w.run.path, len(c), n)
		}
	}
	if n == 0 {
		return nil
	}
	need := 4 + 8*n*w.run.ncols
	if cap(w.scratch) < need {
		w.scratch = make([]byte, need)
	}
	buf := w.scratch[:need]
	binary.LittleEndian.PutUint32(buf, uint32(n))
	off := 4
	for _, c := range cols {
		for _, v := range c {
			binary.LittleEndian.PutUint64(buf[off:], uint64(v))
			off += 8
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc32.ChecksumIEEE(buf))
	if _, err := w.bw.Write(buf); err == nil {
		_, w.err = w.bw.Write(tail[:])
	} else {
		w.err = err
	}
	if w.err != nil {
		w.abort()
		return fmt.Errorf("mem: write run %s: %v", w.run.path, w.err)
	}
	w.run.rows += int64(n)
	return nil
}

// Finish flushes and closes the run file, returning the immutable run
// handle.
func (w *RunWriter) Finish() (*Run, error) {
	if w.err != nil {
		return nil, w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		w.abort()
		return nil, fmt.Errorf("mem: flush run %s: %v", w.run.path, err)
	}
	if err := w.f.Close(); err != nil {
		w.err = err
		// The file is already closed (possibly with lost data); remove it so
		// a later Open cannot read a torn run.
		_ = os.Remove(w.run.path)
		w.f = nil
		return nil, fmt.Errorf("mem: close run %s: %v", w.run.path, err)
	}
	w.f = nil
	run := w.run
	return &run, nil
}

// Open opens the run for sequential reading.
func (r *Run) Open() (*RunReader, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("mem: open run: %v", err)
	}
	rd := &RunReader{f: f, br: bufio.NewReaderSize(f, 1<<16)}
	var hdr [8]byte
	if _, err := io.ReadFull(rd.br, hdr[:]); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("mem: read run header %s: %v", r.path, err)
	}
	if string(hdr[:4]) != runMagic {
		_ = f.Close()
		return nil, fmt.Errorf("mem: run %s: bad magic %q", r.path, hdr[:4])
	}
	nc := int(binary.LittleEndian.Uint32(hdr[4:]))
	if nc != r.ncols {
		_ = f.Close()
		return nil, fmt.Errorf("mem: run %s: header says %d columns, handle says %d", r.path, nc, r.ncols)
	}
	rd.ncols = nc
	rd.path = r.path
	rd.cols = make([][]int64, nc)
	return rd, nil
}

// RunReader streams a run's batches back in write order.
type RunReader struct {
	f       *os.File
	br      *bufio.Reader
	path    string
	ncols   int
	cols    [][]int64
	scratch []byte
}

// Next returns the next batch's columns, or io.EOF after the last batch. The
// returned slices are reused by the following Next call.
func (r *RunReader) Next() ([][]int64, error) {
	var head [4]byte
	if _, err := io.ReadFull(r.br, head[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("mem: read run %s: %v", r.path, err)
	}
	n := int(binary.LittleEndian.Uint32(head[:]))
	need := 8*n*r.ncols + 4
	if cap(r.scratch) < need {
		r.scratch = make([]byte, need)
	}
	buf := r.scratch[:need]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, fmt.Errorf("mem: run %s truncated: %v", r.path, err)
	}
	sum := crc32.ChecksumIEEE(head[:])
	sum = crc32.Update(sum, crc32.IEEETable, buf[:need-4])
	if got := binary.LittleEndian.Uint32(buf[need-4:]); got != sum {
		return nil, fmt.Errorf("mem: run %s: batch checksum mismatch (file %08x, computed %08x)", r.path, got, sum)
	}
	off := 0
	for c := 0; c < r.ncols; c++ {
		if cap(r.cols[c]) < n {
			r.cols[c] = make([]int64, n)
		}
		col := r.cols[c][:n]
		for i := 0; i < n; i++ {
			col[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		r.cols[c] = col
	}
	return r.cols, nil
}

// Close closes the underlying file.
func (r *RunReader) Close() error {
	if r.f == nil {
		return nil
	}
	f := r.f
	r.f = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("mem: close run %s: %v", r.path, err)
	}
	return nil
}
