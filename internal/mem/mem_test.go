package mem

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func TestParseBytes(t *testing.T) {
	cases := map[string]int64{
		"0":      0,
		"123":    123,
		"1K":     1024,
		"512M":   512 << 20,
		"2G":     2 << 30,
		"1T":     1 << 40,
		"64kb":   64 << 10,
		"2GiB":   2 << 30,
		"10B":    10,
		" 7 M ":  7 << 20,
		"128MiB": 128 << 20,
	}
	for in, want := range cases {
		got, err := ParseBytes(in)
		if err != nil {
			t.Errorf("ParseBytes(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseBytes(%q) = %d, want %d", in, got, want)
		}
	}
	for _, bad := range []string{"", "x", "-1", "12Q", "9999999999999G"} {
		if _, err := ParseBytes(bad); err == nil {
			t.Errorf("ParseBytes(%q) unexpectedly succeeded", bad)
		}
	}
}

func TestGovernorAccounting(t *testing.T) {
	g := NewGovernor(1000)
	gr := g.Grant("op")
	if !gr.TryReserve(600) {
		t.Fatal("first reservation denied")
	}
	if gr.TryReserve(600) {
		t.Fatal("over-budget reservation admitted")
	}
	if got := g.Used(); got != 600 {
		t.Fatalf("Used = %d, want 600", got)
	}
	gr.Release(200)
	if !gr.TryReserve(500) {
		t.Fatal("reservation denied after release")
	}
	if got, want := g.Used(), int64(900); got != want {
		t.Fatalf("Used = %d, want %d", got, want)
	}
	gr.Force(500) // scratch overcommit is admitted and accounted
	if got, want := g.Used(), int64(1400); got != want {
		t.Fatalf("Used after Force = %d, want %d", got, want)
	}
	gr.Close()
	if got := g.Used(); got != 0 {
		t.Fatalf("Used after grant close = %d, want 0", got)
	}
	if got, want := g.Peak(), int64(1400); got != want {
		t.Fatalf("Peak = %d, want %d", got, want)
	}
}

func TestGovernorSpillCallback(t *testing.T) {
	g := NewGovernor(100)
	gr := g.Grant("op")
	spills := 0
	gr.SetSpill(func() error {
		spills++
		gr.Release(gr.Used()) // shed everything
		return nil
	})
	if ok, err := gr.Reserve(80); err != nil || !ok {
		t.Fatalf("Reserve(80) = %v, %v", ok, err)
	}
	// Denied once, spill callback frees the 80, retry succeeds.
	if ok, err := gr.Reserve(90); err != nil || !ok {
		t.Fatalf("Reserve(90) = %v, %v; want spill-then-admit", ok, err)
	}
	if spills != 1 {
		t.Fatalf("spill callback ran %d times, want 1", spills)
	}
	// Request larger than the whole budget: spill cannot help.
	if ok, err := gr.Reserve(200); err != nil || ok {
		t.Fatalf("Reserve(200) = %v, %v; want denied", ok, err)
	}
}

func TestNilGovernorIsUnlimited(t *testing.T) {
	var g *Governor
	if !g.Unlimited() {
		t.Fatal("nil governor not unlimited")
	}
	gr := g.Grant("op")
	if !gr.TryReserve(1 << 40) {
		t.Fatal("nil-governor reservation denied")
	}
	gr.Release(1)
	gr.Close()
	if err := g.Close(); err != nil {
		t.Fatalf("nil governor Close: %v", err)
	}
	var ngr *Grant
	if !ngr.TryReserve(5) {
		t.Fatal("nil grant denied")
	}
	ngr.Close()
}

func TestRunRoundTrip(t *testing.T) {
	store, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := store.Create("trip", 2)
	if err != nil {
		t.Fatal(err)
	}
	batches := [][][]int64{
		{{1, 2, 3}, {-4, -5, -6}},
		{{7}, {8}},
		{{}, {}}, // empty batches are dropped, not written
		{{9, 10}, {11, 12}},
	}
	for _, b := range batches {
		if err := w.WriteColumns(b); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run.Rows() != 6 {
		t.Fatalf("run rows = %d, want 6", run.Rows())
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	var got [][]int64 = [][]int64{nil, nil}
	for {
		cols, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		for c := range cols {
			got[c] = append(got[c], cols[c]...)
		}
	}
	if err := rd.Close(); err != nil {
		t.Fatal(err)
	}
	want := [][]int64{{1, 2, 3, 7, 9, 10}, {-4, -5, -6, 8, 11, 12}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip = %v, want %v", got, want)
	}
	if err := run.Remove(); err != nil {
		t.Fatal(err)
	}
	if _, err := run.Open(); err == nil {
		t.Fatal("open after Remove unexpectedly succeeded")
	}
}

// TestRunCorruptionDetected flips one payload byte and expects the CRC to
// catch it.
func TestRunCorruptionDetected(t *testing.T) {
	store, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w, err := store.Create("crc", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteColumns([][]int64{{100, 200, 300}}); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(run.Path())
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-7] ^= 0x40 // inside the last value's bytes
	if err := os.WriteFile(run.Path(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rd.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if _, err := rd.Next(); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted batch read error = %v, want checksum mismatch", err)
	}
}

func TestRunStoreDeterministicNamesAndClose(t *testing.T) {
	g := NewGovernor(1)
	store, err := g.Runs()
	if err != nil {
		t.Fatal(err)
	}
	w1, err := store.Create("build-p0", 1)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := store.Create("build-p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if base := filepath.Base(w1.run.path); base != "000000-build-p0.run" {
		t.Fatalf("first run name = %q", base)
	}
	if base := filepath.Base(w2.run.path); base != "000001-build-p1.run" {
		t.Fatalf("second run name = %q", base)
	}
	if err := w1.WriteColumns([][]int64{{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := w1.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := w2.Finish(); err != nil {
		t.Fatal(err)
	}
	dir := store.Dir()
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir still exists after Close (stat err = %v)", err)
	}
	// Close is idempotent.
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRunFormatsAndStats writes the same batches compressed and raw and
// checks both read back identically, that the compressed run is smaller on
// sorted data, and that the store's stats reflect the encoded sizes.
func TestRunFormatsAndStats(t *testing.T) {
	cols := [][]int64{make([]int64, 2048), make([]int64, 2048)}
	for i := range cols[0] {
		cols[0][i] = int64(i) * 3 // sorted: delta-friendly
		cols[1][i] = 42           // constant
	}
	write := func(store *RunStore, tag string) *Run {
		t.Helper()
		w, err := store.Create(tag, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteColumns(cols); err != nil {
			t.Fatal(err)
		}
		run, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	readAll := func(run *Run) [][]int64 {
		t.Helper()
		rd, err := run.Open()
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := rd.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		out := [][]int64{nil, nil}
		for {
			batch, err := rd.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for c := range batch {
				out[c] = append(out[c], batch[c]...)
			}
		}
		return out
	}

	store, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !store.Compressed() {
		t.Fatal("new store should default to SRN2 compression")
	}
	comp := write(store, "srn2")
	store.SetCompression(false)
	rawRun := write(store, "srn1")
	gotComp, gotRaw := readAll(comp), readAll(rawRun)
	if !reflect.DeepEqual(gotComp, gotRaw) || !reflect.DeepEqual(gotComp, cols) {
		t.Fatal("compressed and raw runs decode differently")
	}
	ci, err := os.Stat(comp.Path())
	if err != nil {
		t.Fatal(err)
	}
	ri, err := os.Stat(rawRun.Path())
	if err != nil {
		t.Fatal(err)
	}
	if ci.Size() >= ri.Size()/4 {
		t.Fatalf("SRN2 run %d bytes vs SRN1 %d: expected >4x shrink on sorted+const data", ci.Size(), ri.Size())
	}
	st := store.Stats()
	if st.RawBytes != 2*2*2048*8 {
		t.Fatalf("RawBytes = %d, want %d", st.RawBytes, 2*2*2048*8)
	}
	wantSpilled := (ci.Size() - 8) + (ri.Size() - 8) // batch frames, minus file headers
	if st.SpilledBytes != wantSpilled {
		t.Fatalf("SpilledBytes = %d, want %d", st.SpilledBytes, wantSpilled)
	}
	if st.Ratio() >= 1 {
		t.Fatalf("stats ratio = %v, want < 1", st.Ratio())
	}
}

// TestRunSRN1BackCompat hand-writes an SRN1 file with the old raw layout and
// reads it through the auto-detecting reader.
func TestRunSRN1BackCompat(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "000000-legacy.run")
	vals := []int64{5, -9, 1 << 40}
	var buf []byte
	buf = append(buf, "SRN1"...)
	buf = binary.LittleEndian.AppendUint32(buf, 1) // ncols
	var frame []byte
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(vals)))
	for _, v := range vals {
		frame = binary.LittleEndian.AppendUint64(frame, uint64(v))
	}
	buf = append(buf, frame...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(frame))
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	run := &Run{path: path, ncols: 1, rows: int64(len(vals))}
	rd, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := rd.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	cols, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cols[0], vals) {
		t.Fatalf("legacy SRN1 read = %v, want %v", cols[0], vals)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("after last batch: %v, want EOF", err)
	}
}

// TestRunSRN2Corruption bit-flips and truncates an SRN2 run and expects
// checksum / truncation errors, never silent wrong values.
func TestRunSRN2Corruption(t *testing.T) {
	store, err := NewRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	write := func(tag string) *Run {
		t.Helper()
		w, err := store.Create(tag, 2)
		if err != nil {
			t.Fatal(err)
		}
		cols := [][]int64{make([]int64, 512), make([]int64, 512)}
		for i := range cols[0] {
			cols[0][i] = int64(i)
			cols[1][i] = int64(i * i)
		}
		if err := w.WriteColumns(cols); err != nil {
			t.Fatal(err)
		}
		run, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		return run
	}

	t.Run("bitflip", func(t *testing.T) {
		run := write("flip")
		raw, err := os.ReadFile(run.Path())
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x08 // mid-frame payload byte
		if err := os.WriteFile(run.Path(), raw, 0o644); err != nil {
			t.Fatal(err)
		}
		rd, err := run.Open()
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := rd.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		if _, err := rd.Next(); err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("bit-flipped SRN2 read = %v, want checksum mismatch", err)
		}
	})
	t.Run("truncate", func(t *testing.T) {
		run := write("trunc")
		raw, err := os.ReadFile(run.Path())
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(run.Path(), raw[:len(raw)-5], 0o644); err != nil {
			t.Fatal(err)
		}
		rd, err := run.Open()
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := rd.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		if _, err := rd.Next(); err == nil || !strings.Contains(err.Error(), "truncated") {
			t.Fatalf("truncated SRN2 read = %v, want truncation error", err)
		}
	})
}

// TestGovernorSpillCompressionToggle checks the governor forwards the
// setting to its lazily-created store, in either call order.
func TestGovernorSpillCompressionToggle(t *testing.T) {
	g := NewGovernor(1)
	g.SetSpillCompression(false)
	store, err := g.Runs()
	if err != nil {
		t.Fatal(err)
	}
	if store.Compressed() {
		t.Fatal("store compressed despite SetSpillCompression(false) before Runs")
	}
	g.SetSpillCompression(true)
	if !store.Compressed() {
		t.Fatal("store raw despite SetSpillCompression(true) after Runs")
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	var nilGov *Governor
	nilGov.SetSpillCompression(false) // must not panic
}

// TestGovernorConcurrentGrants hammers one shared Governor from many
// goroutines — the ledger workload N concurrent Builders produce — and
// asserts the lock-free accounting stays exact: no reservation is admitted
// past the budget, Peak never exceeds it, and once every grant closes the
// ledger reads zero. Run under -race this is the shared-governor safety test.
func TestGovernorConcurrentGrants(t *testing.T) {
	const (
		budget  = 1 << 20
		workers = 16
		iters   = 500
		chunk   = budget / workers / 4 // every worker's reservation always fits
	)
	g := NewGovernor(budget)
	defer func() {
		if err := g.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gr := g.Grant("worker")
			defer gr.Close()
			held := int64(0)
			for i := 0; i < iters; i++ {
				switch {
				case i%7 == 3 && held > 0:
					gr.Release(held)
					held = 0
				case gr.TryReserve(chunk):
					held += chunk
				}
				if u := g.Used(); u > budget {
					t.Errorf("worker %d: used %d exceeds budget %d", w, u, budget)
					return
				}
			}
			// Half the workers leave bytes for Grant.Close to reclaim.
			if w%2 == 0 && held > 0 {
				gr.Release(held)
			}
		}(w)
	}
	wg.Wait()

	if p := g.Peak(); p <= 0 || p > budget {
		t.Fatalf("peak %d outside (0, %d]", p, budget)
	}
	if u := g.Used(); u != 0 {
		t.Fatalf("ledger holds %d bytes after every grant closed", u)
	}
	// Over-release must clamp, not underflow.
	gr := g.Grant("clamp")
	gr.Force(64)
	gr.Release(1 << 30)
	if u := g.Used(); u != 0 {
		t.Fatalf("over-release left %d bytes", u)
	}
	gr.Close()
}
