package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"github.com/sitstats/sits/internal/cardest"
)

// planCache is a bounded LRU map from query shape keys to prepared estimator
// plans. Unlike the result cache — whose keys embed every input so stale
// entries are simply stranded — the plan cache keeps at most one plan per
// shape and validates it on lookup against the pin it was prepared under
// (the registry's per-table data and SIT-set generations). A pin mismatch
// means some table the plan resolved statistics over changed: the entry is
// evicted on the spot and the caller re-prepares. Eviction is therefore
// exact — a publish or mutation kills precisely the plans that pinned the
// affected tables, and plans over untouched tables keep hitting across
// epoch bumps.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	// evictions counts entries removed for any reason other than
	// replacement: stale-pin invalidations and LRU capacity evictions.
	evictions atomic.Int64
}

// planEntry is one resident prepared plan.
type planEntry struct {
	shape string
	pin   string
	plan  *cardest.EstimatorPlan
}

func newPlanCache(max int) *planCache {
	return &planCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached plan for the shape if its pin still matches,
// promoting it to most recently used. A resident plan with a stale pin is
// evicted and reported as a miss.
func (c *planCache) get(shape, pin string) (*cardest.EstimatorPlan, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[shape]
	if !ok {
		return nil, false
	}
	e := el.Value.(*planEntry)
	if e.pin != pin {
		c.order.Remove(el)
		delete(c.entries, shape)
		c.evictions.Add(1)
		return nil, false
	}
	c.order.MoveToFront(el)
	return e.plan, true
}

// put inserts or replaces the plan for the shape, evicting from the LRU tail
// past the size bound.
func (c *planCache) put(shape, pin string, plan *cardest.EstimatorPlan) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[shape]; ok {
		e := el.Value.(*planEntry)
		e.pin, e.plan = pin, plan
		c.order.MoveToFront(el)
		return
	}
	c.entries[shape] = c.order.PushFront(&planEntry{shape: shape, pin: pin, plan: plan})
	for len(c.entries) > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*planEntry).shape)
		c.evictions.Add(1)
	}
}

// len returns the resident plan count.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// evicted returns the cumulative stale-pin + LRU eviction count.
func (c *planCache) evicted() int64 { return c.evictions.Load() }
