package serve

import (
	"container/list"
	"sync"

	"github.com/sitstats/sits/internal/cardest"
)

// estimateCache is a bounded LRU map from request keys to estimates. Keys
// embed everything an estimate depends on — the canonical expression, the
// normalized predicates, the registry epoch, and the base-table generation
// counters — so invalidation is structural: any change to the served SIT set
// or the underlying data moves the key, the stale entry simply stops being
// addressed, and the LRU bound reclaims it. The cache itself never has to
// guess whether an entry is still valid.
type estimateCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used
}

// cacheEntry is one resident estimate.
type cacheEntry struct {
	key string
	est cardest.Estimate
}

func newEstimateCache(max int) *estimateCache {
	return &estimateCache{
		max:     max,
		entries: make(map[string]*list.Element),
		order:   list.New(),
	}
}

// get returns the cached estimate for key, promoting it to most recently
// used. The estimate is shared — callers must treat it as immutable.
func (c *estimateCache) get(key string) (cardest.Estimate, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return cardest.Estimate{}, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).est, true
}

// put inserts or refreshes the estimate for key, evicting from the LRU tail
// past the size bound.
func (c *estimateCache) put(key string, est cardest.Estimate) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).est = est
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, est: est})
	for len(c.entries) > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
	}
}

// len returns the resident entry count.
func (c *estimateCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
