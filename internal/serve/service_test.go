package serve

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/sitstats/sits/internal/cardest"
	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sit"
)

var serveSpecs = []string{
	"T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev",
	"T3.a | T2 JOIN T3 ON T2.jnext = T3.jprev",
	"T3.a | T1 JOIN T2 ON T1.jnext = T2.jprev JOIN T3 ON T2.jnext = T3.jprev",
}

// newChainService builds a registry over a fresh chain DB, populates it with
// the test SIT set, and fronts it with a service.
func newChainService(t *testing.T, scfg sit.Config, cfg Config) (*Service, *data.Catalog) {
	t.Helper()
	cat, err := datagen.ChainDB(datagen.DefaultChainConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := sit.NewRegistry(cat, scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	})
	for _, text := range serveSpecs {
		spec, err := query.ParseSIT(text)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Get(spec, sit.SweepFull); err != nil {
			t.Fatal(err)
		}
	}
	svc, err := NewService(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, cat
}

func mustExpr(t *testing.T, s string) *query.Expr {
	t.Helper()
	e, err := query.ParseExpr(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testQueries(t *testing.T) []cardest.SPJQuery {
	t.Helper()
	join2 := mustExpr(t, "T1 JOIN T2 ON T1.jnext = T2.jprev")
	join3 := mustExpr(t, "T1 JOIN T2 ON T1.jnext = T2.jprev JOIN T3 ON T2.jnext = T3.jprev")
	return []cardest.SPJQuery{
		{Expr: join2, Preds: []cardest.Predicate{{Table: "T2", Attr: "a", Lo: 0, Hi: 900}}},
		{Expr: join2, Preds: []cardest.Predicate{
			{Table: "T2", Attr: "a", Lo: 100, Hi: 1500},
			{Table: "T1", Attr: "b", Lo: 0, Hi: 5000},
		}},
		{Expr: join3, Preds: []cardest.Predicate{
			{Table: "T3", Attr: "a", Lo: 0, Hi: 1200},
			{Table: "T2", Attr: "a", Lo: 50, Hi: 1900},
		}},
		{Expr: join3, Preds: nil},
	}
}

// shifted returns the query with every predicate range moved by delta: the
// same shape (expression + columns) with different constants, so a service
// that has the shape's plan cached answers it from the plan tier.
func shifted(q cardest.SPJQuery, delta int64) cardest.SPJQuery {
	preds := append([]cardest.Predicate(nil), q.Preds...)
	for i := range preds {
		preds[i].Lo += delta
		preds[i].Hi += delta
	}
	return cardest.SPJQuery{Expr: q.Expr, Preds: preds}
}

// quarterWS is roughly a quarter of the default chain database's working set
// (2900 rows x 4 columns x 8 bytes): tight enough that builds and estimates
// run through the governor's spill machinery.
const quarterWS = 24 << 10

// TestTieredEstimatesBitIdentical asserts the core serving guarantee: no
// tier ever changes an answer. For every query the cold estimate, the result
// hit, the plan hit (same shape, shifted constants), a permuted-predicate
// request, and an uncached service's answers must all be bit-identical —
// across execution widths {1, 4} and memory budgets {unlimited, quarter-WS}.
func TestTieredEstimatesBitIdentical(t *testing.T) {
	var configs []sit.Config
	for _, par := range []int{1, 4} {
		for _, budget := range []int64{0, quarterWS} {
			c := sit.DefaultConfig()
			c.Parallelism = par
			c.MemBudget = budget
			configs = append(configs, c)
		}
	}
	var baseline, baselineShift []cardest.Estimate
	for ci, scfg := range configs {
		cached, _ := newChainService(t, scfg, Config{})
		uncached, err := NewService(cached.Registry(), Config{CacheEntries: -1, PlanCacheEntries: -1})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range testQueries(t) {
			cold, tier, err := cached.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			if tier != TierCold {
				t.Fatalf("config %d query %d: first request served from %v, want cold", ci, qi, tier)
			}
			hit, tier, err := cached.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			if tier != TierResult {
				t.Fatalf("config %d query %d: repeat request served from %v, want result-hit", ci, qi, tier)
			}
			raw, tier, err := uncached.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			if tier != TierCold {
				t.Fatalf("config %d query %d: uncached service answered from %v", ci, qi, tier)
			}
			if !reflect.DeepEqual(cold, hit) || !reflect.DeepEqual(cold, raw) {
				t.Fatalf("config %d query %d: cached and uncached estimates diverge:\ncold %+v\nhit  %+v\nraw  %+v",
					ci, qi, cold, hit, raw)
			}
			if len(q.Preds) > 1 {
				perm := cardest.SPJQuery{Expr: q.Expr, Preds: []cardest.Predicate{q.Preds[1], q.Preds[0]}}
				got, tier, err := cached.Estimate(perm)
				if err != nil {
					t.Fatal(err)
				}
				if tier != TierResult {
					t.Fatalf("config %d query %d: permuted predicates served from %v, want result-hit", ci, qi, tier)
				}
				if !reflect.DeepEqual(got, cold) {
					t.Fatalf("config %d query %d: permuted predicates changed the estimate", ci, qi)
				}
			}
			// Same shape, new constants: must execute the cached plan, and the
			// probe must be bit-identical to a full cold estimation.
			var planned cardest.Estimate
			if len(q.Preds) > 0 {
				qv := shifted(q, 7)
				var tier Tier
				planned, tier, err = cached.Estimate(qv)
				if err != nil {
					t.Fatal(err)
				}
				if tier != TierPlan {
					t.Fatalf("config %d query %d: shifted constants served from %v, want plan-hit", ci, qi, tier)
				}
				rawShift, _, err := uncached.Estimate(qv)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(planned, rawShift) {
					t.Fatalf("config %d query %d: plan-hit diverges from cold estimation:\nplan %+v\ncold %+v",
						ci, qi, planned, rawShift)
				}
				// The plan tier populates the result cache too.
				if _, tier, err := cached.Estimate(qv); err != nil || tier != TierResult {
					t.Fatalf("config %d query %d: repeat of plan-hit served from %v err=%v", ci, qi, tier, err)
				}
			}
			// Estimates must not depend on the build configuration either.
			if ci == 0 {
				baseline = append(baseline, cold)
				baselineShift = append(baselineShift, planned)
			} else if !reflect.DeepEqual(cold, baseline[qi]) || !reflect.DeepEqual(planned, baselineShift[qi]) {
				t.Fatalf("query %d: estimate differs between configs:\n%+v\n%+v", qi, cold, baseline[qi])
			}
		}
	}
}

// TestCacheInvalidation asserts both invalidation keys: a base-table
// mutation (generation bump) and a SIT refresh (epoch bump) each force the
// next identical request to recompute — through the cold tier, because the
// plan pinned the mutated tables and is evicted too.
func TestCacheInvalidation(t *testing.T) {
	svc, cat := newChainService(t, sit.DefaultConfig(), Config{})
	q := testQueries(t)[0]

	if _, tier, err := svc.Estimate(q); err != nil || tier != TierCold {
		t.Fatalf("first estimate: tier=%v err=%v", tier, err)
	}
	if _, tier, err := svc.Estimate(q); err != nil || tier != TierResult {
		t.Fatalf("repeat estimate: tier=%v err=%v", tier, err)
	}

	// A mutation anywhere in the query's tables moves the generation, the
	// result key, and the plan pin.
	t1 := cat.MustTable("T1")
	row, err := t1.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.AppendRow(row...); err != nil {
		t.Fatal(err)
	}
	if _, tier, err := svc.Estimate(q); err != nil || tier != TierCold {
		t.Fatalf("estimate after mutation: tier=%v err=%v (stale entry served)", tier, err)
	}

	// A refresh that rebuilds SITs moves the epoch and the SIT-set generation
	// of every rebuilt table.
	n := t1.NumRows() / 2
	for i := 0; i < n; i++ {
		if err := t1.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := svc.Registry().Refresh(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) == 0 {
		t.Fatal("refresh rebuilt nothing after 50% growth")
	}
	if _, tier, err := svc.Estimate(q); err != nil || tier != TierCold {
		t.Fatalf("estimate after refresh: tier=%v err=%v (pre-refresh entry served)", tier, err)
	}
	st := svc.Stats()
	if st.Hits != 1 || st.PlanHits != 0 || st.Misses != 3 {
		t.Fatalf("stats %+v, want 1 hit / 0 plan hits / 3 misses", st)
	}
	// Both invalidations evicted the plan for this shape: once on the data
	// generation, once on the SIT-set generation.
	if st.PlanEvictions != 2 {
		t.Fatalf("plan evictions %d, want 2", st.PlanEvictions)
	}
}

// TestPlanInvalidationExact asserts the plan cache's headline property over
// the result cache: invalidation is exact. Mutations, adoptions, and
// refreshes evict precisely the plans that pinned the affected tables, and a
// plan over untouched tables keeps serving across every one of them.
func TestPlanInvalidationExact(t *testing.T) {
	svc, cat := newChainService(t, sit.DefaultConfig(), Config{})
	qA := testQueries(t)[0] // T1 JOIN T2, pred on T2.a
	qB := cardest.SPJQuery{ // base-table expression over T4 only
		Expr:  mustExpr(t, "T4"),
		Preds: []cardest.Predicate{{Table: "T4", Attr: "b", Lo: 0, Hi: 5000}},
	}
	expect := func(step string, q cardest.SPJQuery, want Tier) {
		t.Helper()
		if _, tier, err := svc.Estimate(q); err != nil || tier != want {
			t.Fatalf("%s: tier=%v err=%v, want %v", step, tier, err, want)
		}
	}
	appendRow := func(name string) {
		t.Helper()
		tbl := cat.MustTable(name)
		row, err := tbl.Row(0)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}

	expect("cold A", qA, TierCold)
	expect("cold B", qB, TierCold)
	expect("warm A", shifted(qA, 1), TierPlan)
	expect("warm B", shifted(qB, 1), TierPlan)

	// Mutating T1 kills exactly the plan pinning T1 (qA); the T4 plan serves on.
	appendRow("T1")
	expect("A after T1 mutation", shifted(qA, 2), TierCold)
	expect("B after T1 mutation", shifted(qB, 2), TierPlan)

	// Adopting a replacement SIT over T2-T3 moves those tables' SIT-set
	// generations: qA pins T2, so its plan dies; T4 is untouched.
	sits, _ := svc.Registry().Snapshot()
	var clone *sit.SIT
	for _, s := range sits {
		if s.Spec.Table == "T3" && s.Spec.Expr.NumTables() == 2 {
			c := *s
			clone = &c
		}
	}
	if clone == nil {
		t.Fatal("T2-T3 SIT not found in snapshot")
	}
	if err := svc.Registry().Adopt([]*sit.SIT{clone}); err != nil {
		t.Fatal(err)
	}
	expect("A after adopt", shifted(qA, 3), TierCold)
	expect("B after adopt", shifted(qB, 3), TierPlan)

	// Mutating T4 kills exactly the T4 plan; qA's freshly re-prepared plan
	// survives.
	appendRow("T4")
	expect("B after T4 mutation", shifted(qB, 4), TierCold)
	expect("A after T4 mutation", shifted(qA, 4), TierPlan)

	// A staleness refresh rebuilds SITs over the grown T2; no SIT spans T4,
	// so the T4 plan keeps serving across the epoch bump.
	t2 := cat.MustTable("T2")
	row, err := t2.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := 0, t2.NumRows()/2; i < n; i++ {
		if err := t2.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := svc.Registry().Refresh(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) == 0 {
		t.Fatal("refresh rebuilt nothing after 50% growth")
	}
	expect("A after refresh", shifted(qA, 5), TierCold)
	expect("B after refresh", shifted(qB, 5), TierPlan)

	st := svc.Stats()
	if st.Misses != 6 || st.PlanHits != 6 || st.Hits != 0 {
		t.Fatalf("stats %+v, want 6 cold / 6 plan hits / 0 result hits", st)
	}
	if st.PlanEvictions != 4 {
		t.Fatalf("plan evictions %d, want exactly 4 (T1 mutation, adopt, T4 mutation, refresh)", st.PlanEvictions)
	}
	if st.PlanEntries != 2 {
		t.Fatalf("plan entries %d, want 2", st.PlanEntries)
	}
}

// TestCacheSingleFlight fires identical concurrent requests at a cold cache
// and asserts exactly one recomputes: the rest either hit a fast tier or
// find the first request's entry when they reach the builder.
func TestCacheSingleFlight(t *testing.T) {
	svc, _ := newChainService(t, sit.DefaultConfig(), Config{})
	q := testQueries(t)[2]

	const callers = 32
	results := make([]cardest.Estimate, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			est, _, err := svc.Estimate(q)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = est
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d got a different estimate", i)
		}
	}
	// A racer that reaches tier 2 between the first request's publish and its
	// own result-cache probe may legitimately score a plan hit; either fast
	// tier proves it skipped recomputation.
	st := svc.Stats()
	if st.Misses != 1 || st.Hits+st.PlanHits != callers-1 {
		t.Fatalf("stats %+v, want exactly 1 miss and %d fast-tier hits", st, callers-1)
	}
}

// TestCacheLRUEviction bounds the result cache at two entries and asserts
// the least-recently-used one is evicted — and then answered by the plan
// tier, whose (shape-keyed) entry is still resident.
func TestCacheLRUEviction(t *testing.T) {
	svc, _ := newChainService(t, sit.DefaultConfig(), Config{CacheEntries: 2})
	qs := testQueries(t)
	for _, q := range qs[:3] {
		if _, tier, err := svc.Estimate(q); err != nil || tier != TierCold {
			t.Fatalf("cold estimate: tier=%v err=%v", tier, err)
		}
	}
	if n := svc.Stats().Entries; n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// qs[0] was the LRU victim; qs[2] is still resident.
	if _, tier, err := svc.Estimate(qs[2]); err != nil || tier != TierResult {
		t.Fatalf("resident entry: tier=%v err=%v", tier, err)
	}
	if _, tier, err := svc.Estimate(qs[0]); err != nil || tier != TierPlan {
		t.Fatalf("evicted entry: tier=%v err=%v, want plan-hit fallback", tier, err)
	}
}

// TestPlanCacheLRU bounds the plan cache at two shapes (result cache off)
// and asserts LRU eviction forces the evicted shape back through the cold
// tier.
func TestPlanCacheLRU(t *testing.T) {
	svc, _ := newChainService(t, sit.DefaultConfig(), Config{CacheEntries: -1, PlanCacheEntries: 2})
	qs := testQueries(t)
	for _, q := range qs[:3] {
		if _, tier, err := svc.Estimate(q); err != nil || tier != TierCold {
			t.Fatalf("cold estimate: tier=%v err=%v", tier, err)
		}
	}
	st := svc.Stats()
	if st.PlanEntries != 2 || st.PlanEvictions != 1 {
		t.Fatalf("stats %+v, want 2 plan entries and 1 eviction", st)
	}
	if _, tier, err := svc.Estimate(qs[2]); err != nil || tier != TierPlan {
		t.Fatalf("resident plan: tier=%v err=%v", tier, err)
	}
	if _, tier, err := svc.Estimate(qs[0]); err != nil || tier != TierCold {
		t.Fatalf("evicted plan: tier=%v err=%v", tier, err)
	}
}

// TestShedOverload exercises the overload path deterministically: with the
// builder held and the governor starved, a cold request past the queue bound
// fails fast with ErrOverloaded, queued requests complete once the builder
// frees, and the fast tiers keep answering throughout.
func TestShedOverload(t *testing.T) {
	cat, err := datagen.ChainDB(datagen.DefaultChainConfig())
	if err != nil {
		t.Fatal(err)
	}
	scfg := sit.DefaultConfig()
	scfg.MemBudget = 1 // any probe fails: the governor is always under pressure
	reg, err := sit.NewRegistry(cat, scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	})
	svc, err := NewService(reg, Config{ShedQueue: 1})
	if err != nil {
		t.Fatal(err)
	}
	q := testQueries(t)[0]

	// Occupy the builder so cold requests queue behind it.
	release := make(chan struct{})
	held := make(chan struct{})
	builderDone := make(chan error, 1)
	go func() {
		builderDone <- reg.WithBuilder(func(*sit.Builder) error {
			close(held)
			<-release
			return nil
		})
	}()
	<-held

	// One cold request queues on the held builder.
	type result struct {
		est  cardest.Estimate
		tier Tier
		err  error
	}
	first := make(chan result, 1)
	go func() {
		est, tier, err := svc.Estimate(q)
		first <- result{est, tier, err}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().Queued < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued on the builder")
		}
		time.Sleep(time.Millisecond)
	}

	// The next cold request is past the queue bound under pressure: shed.
	if _, _, err := svc.Estimate(q); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded request returned %v, want ErrOverloaded", err)
	}
	if st := svc.Stats(); st.Sheds != 1 {
		t.Fatalf("stats %+v, want 1 shed", st)
	}

	// Release the builder: the queued request completes normally.
	close(release)
	if err := <-builderDone; err != nil {
		t.Fatal(err)
	}
	r := <-first
	if r.err != nil || r.tier != TierCold {
		t.Fatalf("queued request: tier=%v err=%v", r.tier, r.err)
	}

	// Fast tiers are never shed, even under permanent budget pressure.
	got, tier, err := svc.Estimate(q)
	if err != nil || tier != TierResult {
		t.Fatalf("result tier under pressure: tier=%v err=%v", tier, err)
	}
	if !reflect.DeepEqual(got, r.est) {
		t.Fatal("cached answer diverges from the queued computation")
	}
	if _, tier, err := svc.Estimate(shifted(q, 1)); err != nil || tier != TierPlan {
		t.Fatalf("plan tier under pressure: tier=%v err=%v", tier, err)
	}
	if st := svc.Stats(); st.Sheds != 1 || st.Queued != 0 {
		t.Fatalf("final stats %+v, want 1 shed and an empty queue", st)
	}
}

// TestServiceErrors covers request and configuration validation.
func TestServiceErrors(t *testing.T) {
	svc, _ := newChainService(t, sit.DefaultConfig(), Config{})
	if _, _, err := svc.Estimate(cardest.SPJQuery{}); err == nil {
		t.Fatal("nil expression must fail")
	}
	q := cardest.SPJQuery{
		Expr:  mustExpr(t, "T1 JOIN T2 ON T1.jnext = T2.jprev"),
		Preds: []cardest.Predicate{{Table: "T4", Attr: "a", Lo: 0, Hi: 1}},
	}
	if _, _, err := svc.Estimate(q); err == nil {
		t.Fatal("predicate outside the expression must fail")
	}
	if _, err := NewService(nil, Config{}); err == nil {
		t.Fatal("nil registry must fail")
	}
	if _, err := NewService(svc.Registry(), Config{ShedQueue: -1}); err == nil {
		t.Fatal("negative shed queue must fail")
	}
}
