package serve

import (
	"reflect"
	"sync"
	"testing"

	"github.com/sitstats/sits/internal/cardest"
	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/datagen"
	"github.com/sitstats/sits/internal/query"
	"github.com/sitstats/sits/internal/sit"
)

var serveSpecs = []string{
	"T2.a | T1 JOIN T2 ON T1.jnext = T2.jprev",
	"T3.a | T2 JOIN T3 ON T2.jnext = T3.jprev",
	"T3.a | T1 JOIN T2 ON T1.jnext = T2.jprev JOIN T3 ON T2.jnext = T3.jprev",
}

// newChainService builds a registry over a fresh chain DB, populates it with
// the test SIT set, and fronts it with a service.
func newChainService(t *testing.T, scfg sit.Config, cfg Config) (*Service, *data.Catalog) {
	t.Helper()
	cat, err := datagen.ChainDB(datagen.DefaultChainConfig())
	if err != nil {
		t.Fatal(err)
	}
	reg, err := sit.NewRegistry(cat, scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := reg.Close(); err != nil {
			t.Fatal(err)
		}
	})
	for _, text := range serveSpecs {
		spec, err := query.ParseSIT(text)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := reg.Get(spec, sit.SweepFull); err != nil {
			t.Fatal(err)
		}
	}
	svc, err := NewService(reg, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return svc, cat
}

func mustExpr(t *testing.T, s string) *query.Expr {
	t.Helper()
	e, err := query.ParseExpr(s)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testQueries(t *testing.T) []cardest.SPJQuery {
	t.Helper()
	join2 := mustExpr(t, "T1 JOIN T2 ON T1.jnext = T2.jprev")
	join3 := mustExpr(t, "T1 JOIN T2 ON T1.jnext = T2.jprev JOIN T3 ON T2.jnext = T3.jprev")
	return []cardest.SPJQuery{
		{Expr: join2, Preds: []cardest.Predicate{{Table: "T2", Attr: "a", Lo: 0, Hi: 900}}},
		{Expr: join2, Preds: []cardest.Predicate{
			{Table: "T2", Attr: "a", Lo: 100, Hi: 1500},
			{Table: "T1", Attr: "b", Lo: 0, Hi: 5000},
		}},
		{Expr: join3, Preds: []cardest.Predicate{
			{Table: "T3", Attr: "a", Lo: 0, Hi: 1200},
			{Table: "T2", Attr: "a", Lo: 50, Hi: 1900},
		}},
		{Expr: join3, Preds: nil},
	}
}

// TestCachedEstimatesBitIdentical asserts the core serving guarantee: the
// cache never changes an answer. For every query the miss, the subsequent
// hit, an uncached service's answer, and a permuted-predicate request must
// all be bit-identical — across execution widths and memory budgets.
func TestCachedEstimatesBitIdentical(t *testing.T) {
	configs := []sit.Config{
		sit.DefaultConfig(),
		func() sit.Config {
			c := sit.DefaultConfig()
			c.Parallelism = 2
			c.MemBudget = 64 << 20
			return c
		}(),
	}
	var baseline []cardest.Estimate
	for ci, scfg := range configs {
		cached, _ := newChainService(t, scfg, Config{})
		uncached, err := NewService(cached.Registry(), Config{CacheEntries: -1})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range testQueries(t) {
			miss, wasHit, err := cached.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			if wasHit {
				t.Fatalf("config %d query %d: first request reported a cache hit", ci, qi)
			}
			hit, wasHit, err := cached.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			if !wasHit {
				t.Fatalf("config %d query %d: second request missed the cache", ci, qi)
			}
			raw, _, err := uncached.Estimate(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(miss, hit) || !reflect.DeepEqual(miss, raw) {
				t.Fatalf("config %d query %d: cached and uncached estimates diverge:\nmiss %+v\nhit  %+v\nraw  %+v",
					ci, qi, miss, hit, raw)
			}
			if len(q.Preds) > 1 {
				perm := cardest.SPJQuery{Expr: q.Expr, Preds: []cardest.Predicate{q.Preds[1], q.Preds[0]}}
				got, wasHit, err := cached.Estimate(perm)
				if err != nil {
					t.Fatal(err)
				}
				if !wasHit {
					t.Fatalf("config %d query %d: permuted predicates missed the shared entry", ci, qi)
				}
				if !reflect.DeepEqual(got, miss) {
					t.Fatalf("config %d query %d: permuted predicates changed the estimate", ci, qi)
				}
			}
			// Estimates must not depend on the build configuration either.
			if ci == 0 {
				baseline = append(baseline, miss)
			} else if !reflect.DeepEqual(miss, baseline[qi]) {
				t.Fatalf("query %d: estimate differs between configs:\n%+v\n%+v", qi, miss, baseline[qi])
			}
		}
	}
}

// TestCacheInvalidation asserts both invalidation keys: a base-table
// mutation (generation bump) and a SIT refresh (epoch bump) each force the
// next identical request to recompute.
func TestCacheInvalidation(t *testing.T) {
	svc, cat := newChainService(t, sit.DefaultConfig(), Config{})
	q := testQueries(t)[0]

	if _, hit, err := svc.Estimate(q); err != nil || hit {
		t.Fatalf("first estimate: hit=%v err=%v", hit, err)
	}
	if _, hit, err := svc.Estimate(q); err != nil || !hit {
		t.Fatalf("repeat estimate: hit=%v err=%v", hit, err)
	}

	// A mutation anywhere in the query's tables moves the generation and the key.
	t1 := cat.MustTable("T1")
	row, err := t1.Row(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.AppendRow(row...); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := svc.Estimate(q); err != nil || hit {
		t.Fatalf("estimate after mutation: hit=%v err=%v (stale entry served)", hit, err)
	}

	// A refresh that rebuilds SITs moves the epoch and every key with it.
	n := t1.NumRows() / 2
	for i := 0; i < n; i++ {
		if err := t1.AppendRow(row...); err != nil {
			t.Fatal(err)
		}
	}
	rebuilt, err := svc.Registry().Refresh(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rebuilt) == 0 {
		t.Fatal("refresh rebuilt nothing after 50% growth")
	}
	if _, hit, err := svc.Estimate(q); err != nil || hit {
		t.Fatalf("estimate after refresh: hit=%v err=%v (pre-refresh entry served)", hit, err)
	}
	st := svc.Stats()
	if st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("stats %+v, want 1 hit / 3 misses", st)
	}
}

// TestCacheSingleFlight fires identical concurrent requests at a cold cache
// and asserts exactly one recomputes: the rest either hit the fast path or
// find the first request's entry when they reach the builder.
func TestCacheSingleFlight(t *testing.T) {
	svc, _ := newChainService(t, sit.DefaultConfig(), Config{})
	q := testQueries(t)[2]

	const callers = 32
	results := make([]cardest.Estimate, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			est, _, err := svc.Estimate(q)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = est
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d got a different estimate", i)
		}
	}
	st := svc.Stats()
	if st.Misses != 1 || st.Hits != callers-1 {
		t.Fatalf("stats %+v, want exactly 1 miss and %d hits", st, callers-1)
	}
}

// TestCacheLRUEviction bounds the cache at two entries and asserts the
// least-recently-used one is evicted.
func TestCacheLRUEviction(t *testing.T) {
	svc, _ := newChainService(t, sit.DefaultConfig(), Config{CacheEntries: 2})
	qs := testQueries(t)
	for _, q := range qs[:3] {
		if _, hit, err := svc.Estimate(q); err != nil || hit {
			t.Fatalf("cold estimate: hit=%v err=%v", hit, err)
		}
	}
	if n := svc.Stats().Entries; n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// qs[0] was the LRU victim; qs[2] is still resident.
	if _, hit, err := svc.Estimate(qs[2]); err != nil || !hit {
		t.Fatalf("resident entry: hit=%v err=%v", hit, err)
	}
	if _, hit, err := svc.Estimate(qs[0]); err != nil || hit {
		t.Fatalf("evicted entry: hit=%v err=%v", hit, err)
	}
}

// TestServiceErrors covers request validation.
func TestServiceErrors(t *testing.T) {
	svc, _ := newChainService(t, sit.DefaultConfig(), Config{})
	if _, _, err := svc.Estimate(cardest.SPJQuery{}); err == nil {
		t.Fatal("nil expression must fail")
	}
	q := cardest.SPJQuery{
		Expr:  mustExpr(t, "T1 JOIN T2 ON T1.jnext = T2.jprev"),
		Preds: []cardest.Predicate{{Table: "T4", Attr: "a", Lo: 0, Hi: 1}},
	}
	if _, _, err := svc.Estimate(q); err == nil {
		t.Fatal("predicate outside the expression must fail")
	}
	if _, err := NewService(nil, Config{}); err == nil {
		t.Fatal("nil registry must fail")
	}
}
