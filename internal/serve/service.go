// Package serve is the serving layer of the statistics service: it answers
// SPJ cardinality-estimation requests from a sit.Registry's served SIT set,
// fronted by a bounded LRU cache keyed on the canonical form of the query
// expression. Cache hits are answered without touching the builder at all;
// misses serialize through the registry's single-threaded build machinery
// (whose base-histogram fallback mutates builder caches) and publish their
// result for every later identical request. Keys embed the registry epoch
// and the base tables' generation counters, so a SIT refresh or a table
// mutation strands stale entries instead of serving them.
package serve

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/sitstats/sits/internal/cardest"
	"github.com/sitstats/sits/internal/sit"
)

// DefaultCacheEntries bounds the estimate cache when Config.CacheEntries is
// zero. One entry holds one Estimate (a few hundred bytes), so the default
// stays small next to any realistic SIT set.
const DefaultCacheEntries = 4096

// Config parameterizes the serving layer.
type Config struct {
	// CacheEntries bounds the estimate cache: 0 uses DefaultCacheEntries,
	// a negative value disables caching (every request recomputes).
	CacheEntries int
}

// Service answers estimation requests over a registry's served SIT set.
type Service struct {
	reg   *sit.Registry
	cache *estimateCache // nil when caching is disabled

	// est is the estimator for the epoch it was built against, rebuilt
	// lazily when the registry publishes a new epoch. It is only swapped
	// while holding the registry's builder lock; the pointer itself is
	// atomic so Stats can peek without taking it.
	est atomic.Pointer[epochEstimator]

	hits, misses atomic.Int64
}

// epochEstimator pins an estimator to the registry epoch whose SIT set it
// has registered.
type epochEstimator struct {
	epoch uint64
	est   *cardest.Estimator
}

// NewService creates a serving layer over the registry.
func NewService(reg *sit.Registry, cfg Config) (*Service, error) {
	if reg == nil {
		return nil, fmt.Errorf("serve: NewService needs a registry")
	}
	s := &Service{reg: reg}
	switch {
	case cfg.CacheEntries == 0:
		s.cache = newEstimateCache(DefaultCacheEntries)
	case cfg.CacheEntries > 0:
		s.cache = newEstimateCache(cfg.CacheEntries)
	}
	return s, nil
}

// Registry returns the SIT catalog the service estimates from.
func (s *Service) Registry() *sit.Registry { return s.reg }

// Estimate answers one SPJ estimation request. It reports whether the answer
// came from the cache; cached estimates are bit-identical to what
// recomputation would return, because the cache key pins every input the
// computation reads (expression, predicates, SIT epoch, table generations)
// and predicate order is normalized before estimation. The returned Estimate
// is shared with the cache and must be treated as immutable.
func (s *Service) Estimate(q cardest.SPJQuery) (cardest.Estimate, bool, error) {
	if q.Expr == nil {
		return cardest.Estimate{}, false, fmt.Errorf("serve: request needs a join expression")
	}
	nq := normalize(q)
	if s.cache != nil {
		key, err := s.key(nq)
		if err != nil {
			return cardest.Estimate{}, false, err
		}
		if est, ok := s.cache.get(key); ok {
			s.hits.Add(1)
			return est, true, nil
		}
	}
	var (
		out cardest.Estimate
		hit bool
	)
	err := s.reg.WithBuilder(func(b *sit.Builder) error {
		// Re-key and re-check under the builder lock: epoch swaps happen
		// under this lock, so the key is now stable against refreshes, and a
		// request that queued behind an identical miss finds that miss's
		// freshly published entry here instead of recomputing it.
		var key string
		if s.cache != nil {
			var err error
			if key, err = s.key(nq); err != nil {
				return err
			}
			if est, ok := s.cache.get(key); ok {
				out, hit = est, true
				return nil
			}
		}
		est, err := s.estimator(b)
		if err != nil {
			return err
		}
		if out, err = est.Estimate(nq); err != nil {
			return err
		}
		if s.cache != nil {
			s.cache.put(key, out)
		}
		return nil
	})
	if err != nil {
		return cardest.Estimate{}, false, err
	}
	if hit {
		s.hits.Add(1)
	} else {
		s.misses.Add(1)
	}
	return out, hit, nil
}

// estimator returns the estimator for the registry's current epoch,
// rebuilding it from a fresh snapshot when a build or refresh has moved the
// epoch on. Callers must hold the registry's builder lock (WithBuilder).
func (s *Service) estimator(b *sit.Builder) (*cardest.Estimator, error) {
	sits, epoch := s.reg.Snapshot()
	if cur := s.est.Load(); cur != nil && cur.epoch == epoch {
		return cur.est, nil
	}
	est, err := cardest.New(b)
	if err != nil {
		return nil, err
	}
	// Snapshot order is key-sorted, so registration — and therefore any
	// order-sensitive tie-breaking inside the estimator — is deterministic.
	for _, x := range sits {
		if err := est.Register(x); err != nil {
			return nil, err
		}
	}
	s.est.Store(&epochEstimator{epoch: epoch, est: est})
	return est, nil
}

// key renders the request's full input fingerprint: canonical expression,
// normalized predicates, registry epoch, and the generation counter of every
// base table the expression touches. NUL separates fields — it cannot appear
// in table or attribute names.
func (s *Service) key(q cardest.SPJQuery) (string, error) {
	var sb strings.Builder
	sb.WriteString(q.Expr.Canonical())
	for _, p := range q.Preds {
		sb.WriteByte(0)
		sb.WriteString(p.Table)
		sb.WriteByte('.')
		sb.WriteString(p.Attr)
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(p.Lo, 10))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(p.Hi, 10))
	}
	sb.WriteByte(0)
	sb.WriteString("e")
	sb.WriteString(strconv.FormatUint(s.reg.Epoch(), 10))
	cat := s.reg.Catalog()
	for _, name := range q.Expr.Tables() {
		t, err := cat.Table(name)
		if err != nil {
			return "", err
		}
		sb.WriteByte(0)
		sb.WriteString(name)
		sb.WriteByte('@')
		sb.WriteString(strconv.FormatUint(t.Generation(), 10))
	}
	return sb.String(), nil
}

// normalize returns the query with its predicates in canonical (sorted)
// order, so permutations of one conjunction share a cache entry and the
// selectivity product multiplies in one deterministic order — float
// multiplication is not associative-commutative in rounding, so this is part
// of the bit-identity guarantee, not just a cache-sharing optimization.
func normalize(q cardest.SPJQuery) cardest.SPJQuery {
	if len(q.Preds) < 2 {
		return q
	}
	preds := append([]cardest.Predicate(nil), q.Preds...)
	sort.Slice(preds, func(i, j int) bool {
		a, b := preds[i], preds[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return a.Hi < b.Hi
	})
	return cardest.SPJQuery{Expr: q.Expr, Preds: preds}
}

// Stats is a point-in-time view of the serving layer for monitoring.
type Stats struct {
	Hits     int64             `json:"hits"`
	Misses   int64             `json:"misses"`
	HitRate  float64           `json:"hit_rate"`
	Entries  int               `json:"entries"`
	Registry sit.RegistryStats `json:"registry"`
}

// Stats returns serving counters plus the registry's.
func (s *Service) Stats() Stats {
	st := Stats{
		Hits:     s.hits.Load(),
		Misses:   s.misses.Load(),
		Registry: s.reg.Stats(),
	}
	if total := st.Hits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits) / float64(total)
	}
	if s.cache != nil {
		st.Entries = s.cache.len()
	}
	return st
}
