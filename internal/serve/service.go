// Package serve is the serving layer of the statistics service: it answers
// SPJ cardinality-estimation requests from a sit.Registry's served SIT set
// through a three-tier pipeline, cheapest first:
//
//  1. Result cache — a bounded LRU keyed on the full request fingerprint
//     (canonical expression, normalized predicates with constants, registry
//     epoch, base-table generations). A hit returns the stored estimate
//     untouched.
//  2. Plan cache — a bounded LRU keyed on the query *shape* (canonical
//     expression + predicate columns, without constants). A hit executes the
//     prepared cardest.EstimatorPlan: allocation-free histogram probes with
//     the request's constants, no builder lock, no SIT matching. Entries are
//     validated against the registry's per-table pin, so a refresh or
//     mutation that did not touch a plan's tables leaves it serving across
//     epoch bumps.
//  3. Cold — serialize through the registry's single-threaded build
//     machinery, prepare a fresh plan, execute it, and publish both the plan
//     and the result for later requests.
//
// All three tiers are bit-identical: a result hit is the stored execute
// output, a plan hit re-runs the exact float operations cold estimation
// would, and preparation is deterministic. Under memory pressure the cold
// tier sheds: when the governor cannot admit a nominal build reservation and
// too many cold requests are already queued on the builder, Estimate fails
// fast with ErrOverloaded instead of queueing unboundedly.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/sitstats/sits/internal/cardest"
	"github.com/sitstats/sits/internal/mem"
	"github.com/sitstats/sits/internal/sit"
)

// DefaultCacheEntries bounds the estimate result cache when
// Config.CacheEntries is zero. One entry holds one Estimate (a few hundred
// bytes), so the default stays small next to any realistic SIT set.
const DefaultCacheEntries = 4096

// DefaultPlanCacheEntries bounds the plan cache when Config.PlanCacheEntries
// is zero. Shapes are far fewer than constant combinations — one workload
// template is one shape — so the plan cache can be much smaller than the
// result cache.
const DefaultPlanCacheEntries = 1024

// shedProbeBytes is the nominal first reservation of an estimation-triggered
// build. When the shared governor cannot admit even this much, every build
// queued behind the busy builder will run fully spilled; past the queue
// threshold the service sheds instead.
const shedProbeBytes = 64 << 10

// ErrOverloaded is returned by Estimate when the service sheds a cold
// request under budget pressure: the governor cannot admit a nominal build
// reservation and the cold queue is at or past Config.ShedQueue. The request
// was not estimated; clients should retry after a backoff.
var ErrOverloaded = errors.New("serve: overloaded, estimation shed")

// Tier identifies which serving tier answered a request.
type Tier int

const (
	// TierCold means the request serialized through the builder: the plan
	// was prepared (SIT matching, candidate ranking) and executed.
	TierCold Tier = iota
	// TierPlan means a cached prepared plan was executed with the request's
	// constants: histogram probes only, no matching, no builder lock.
	TierPlan
	// TierResult means the full result was served from the estimate cache.
	TierResult
)

// String returns the tier name as reported in serving responses.
func (t Tier) String() string {
	switch t {
	case TierCold:
		return "cold"
	case TierPlan:
		return "plan-hit"
	case TierResult:
		return "result-hit"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// Config parameterizes the serving layer.
type Config struct {
	// CacheEntries bounds the estimate result cache: 0 uses
	// DefaultCacheEntries, a negative value disables result caching.
	CacheEntries int
	// PlanCacheEntries bounds the prepared-plan cache: 0 uses
	// DefaultPlanCacheEntries, a negative value disables plan caching
	// (every result miss re-prepares under the builder lock).
	PlanCacheEntries int
	// ShedQueue enables overload shedding when positive: a cold request
	// arriving while at least ShedQueue cold requests are already queued on
	// the builder *and* the governor is under budget pressure fails fast
	// with ErrOverloaded instead of queueing. 0 disables shedding (cold
	// requests queue unboundedly, the previous behavior).
	ShedQueue int
}

// Service answers estimation requests over a registry's served SIT set.
type Service struct {
	reg   *sit.Registry
	cfg   Config
	cache *estimateCache // nil when result caching is disabled
	plans *planCache     // nil when plan caching is disabled

	// est is the estimator for the epoch it was built against, rebuilt
	// lazily when the registry publishes a new epoch. It is only swapped
	// while holding the registry's builder lock; the pointer itself is
	// atomic so Stats can peek without taking it.
	est atomic.Pointer[epochEstimator]

	hits, misses atomic.Int64 // result-cache hits / cold estimations
	planHits     atomic.Int64 // plan-cache hits (result-cache misses)
	sheds        atomic.Int64 // cold requests rejected with ErrOverloaded
	queued       atomic.Int64 // cold requests currently queued on the builder
}

// epochEstimator pins an estimator to the registry epoch whose SIT set it
// has registered.
type epochEstimator struct {
	epoch uint64
	est   *cardest.Estimator
}

// NewService creates a serving layer over the registry.
func NewService(reg *sit.Registry, cfg Config) (*Service, error) {
	if reg == nil {
		return nil, fmt.Errorf("serve: NewService needs a registry")
	}
	if cfg.ShedQueue < 0 {
		return nil, fmt.Errorf("serve: shed queue depth %d must be >= 0 (0 = no shedding)", cfg.ShedQueue)
	}
	s := &Service{reg: reg, cfg: cfg}
	switch {
	case cfg.CacheEntries == 0:
		s.cache = newEstimateCache(DefaultCacheEntries)
	case cfg.CacheEntries > 0:
		s.cache = newEstimateCache(cfg.CacheEntries)
	}
	switch {
	case cfg.PlanCacheEntries == 0:
		s.plans = newPlanCache(DefaultPlanCacheEntries)
	case cfg.PlanCacheEntries > 0:
		s.plans = newPlanCache(cfg.PlanCacheEntries)
	}
	return s, nil
}

// Registry returns the SIT catalog the service estimates from.
func (s *Service) Registry() *sit.Registry { return s.reg }

// Estimate answers one SPJ estimation request and reports which tier
// answered it. Estimates from every tier are bit-identical: the caches pin
// every input the computation reads (expression, predicates, SIT set,
// table generations), predicate order is normalized before estimation, and
// plan execution replays exactly the float operations cold estimation
// performs. The returned Estimate is shared with the result cache and must
// be treated as immutable.
//
// Under budget pressure (see Config.ShedQueue) a request that would need a
// cold estimation may fail with ErrOverloaded instead of queueing on the
// builder.
func (s *Service) Estimate(q cardest.SPJQuery) (cardest.Estimate, Tier, error) {
	if q.Expr == nil {
		return cardest.Estimate{}, TierCold, fmt.Errorf("serve: request needs a join expression")
	}
	nq := normalize(q)

	// Tier 1: result cache.
	var resultKey string
	if s.cache != nil {
		var err error
		if resultKey, err = s.key(nq); err != nil {
			return cardest.Estimate{}, TierCold, err
		}
		if est, ok := s.cache.get(resultKey); ok {
			s.hits.Add(1)
			return est, TierResult, nil
		}
	}

	// Tier 2: plan cache — lock-free. The pin and the result key may
	// straddle a concurrent publish, but a matching pin proves the plan
	// resolves the statistics a fresh preparation would, so the executed
	// result is correct for the pin's snapshot; a result key from an older
	// epoch merely strands the stored entry.
	var shape string
	if s.plans != nil {
		shape = cardest.ShapeKey(nq.Expr, cardest.Columns(nq.Preds))
		pin, err := s.reg.PlanPin(nq.Expr)
		if err != nil {
			return cardest.Estimate{}, TierCold, err
		}
		if plan, ok := s.plans.get(shape, pin); ok {
			out, err := plan.Execute(nq.Preds)
			if err != nil {
				return cardest.Estimate{}, TierPlan, err
			}
			s.planHits.Add(1)
			if s.cache != nil {
				s.cache.put(resultKey, out)
			}
			return out, TierPlan, nil
		}
	}

	// Tier 3: cold — shed under pressure, otherwise queue on the builder.
	if s.cfg.ShedQueue > 0 && s.queued.Load() >= int64(s.cfg.ShedQueue) && underPressure(s.reg.Governor()) {
		s.sheds.Add(1)
		return cardest.Estimate{}, TierCold, ErrOverloaded
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)

	var (
		out  cardest.Estimate
		tier = TierCold
	)
	err := s.reg.WithBuilder(func(b *sit.Builder) error {
		// Re-key and re-check under the builder lock: epoch swaps happen
		// under this lock, so the keys are now stable against refreshes, and
		// a request that queued behind an identical miss finds that miss's
		// freshly published result or plan here instead of recomputing it.
		var key string
		if s.cache != nil {
			var err error
			if key, err = s.key(nq); err != nil {
				return err
			}
			if est, ok := s.cache.get(key); ok {
				out, tier = est, TierResult
				return nil
			}
		}
		var pin string
		if s.plans != nil {
			var err error
			if pin, err = s.reg.PlanPin(nq.Expr); err != nil {
				return err
			}
			if plan, ok := s.plans.get(shape, pin); ok {
				est, err := plan.Execute(nq.Preds)
				if err != nil {
					return err
				}
				out, tier = est, TierPlan
				if s.cache != nil {
					s.cache.put(key, out)
				}
				return nil
			}
		}
		est, err := s.estimator(b)
		if err != nil {
			return err
		}
		plan, err := est.Prepare(nq.Expr, cardest.Columns(nq.Preds))
		if err != nil {
			return err
		}
		if out, err = plan.Execute(nq.Preds); err != nil {
			return err
		}
		if s.plans != nil {
			s.plans.put(shape, pin, plan)
		}
		if s.cache != nil {
			s.cache.put(key, out)
		}
		return nil
	})
	if err != nil {
		return cardest.Estimate{}, TierCold, err
	}
	switch tier {
	case TierResult:
		s.hits.Add(1)
	case TierPlan:
		s.planHits.Add(1)
	default:
		s.misses.Add(1)
	}
	return out, tier, nil
}

// underPressure reports whether the governor is too committed to admit a
// nominal build reservation: the budget-pressure half of the shed decision.
func underPressure(g *mem.Governor) bool {
	return !g.Unlimited() && g.Budget()-g.Used() < shedProbeBytes
}

// estimator returns the estimator for the registry's current epoch,
// rebuilding it from a fresh snapshot when a build or refresh has moved the
// epoch on. Callers must hold the registry's builder lock (WithBuilder).
func (s *Service) estimator(b *sit.Builder) (*cardest.Estimator, error) {
	sits, epoch := s.reg.Snapshot()
	if cur := s.est.Load(); cur != nil && cur.epoch == epoch {
		return cur.est, nil
	}
	est, err := cardest.New(b)
	if err != nil {
		return nil, err
	}
	// Snapshot order is key-sorted, so registration — and therefore any
	// order-sensitive tie-breaking inside the estimator — is deterministic.
	for _, x := range sits {
		if err := est.Register(x); err != nil {
			return nil, err
		}
	}
	s.est.Store(&epochEstimator{epoch: epoch, est: est})
	return est, nil
}

// key renders the request's full input fingerprint: canonical expression,
// normalized predicates, registry epoch, and the generation counter of every
// base table the expression touches. NUL separates fields — it cannot appear
// in table or attribute names.
func (s *Service) key(q cardest.SPJQuery) (string, error) {
	var sb strings.Builder
	sb.WriteString(q.Expr.Canonical())
	for _, p := range q.Preds {
		sb.WriteByte(0)
		sb.WriteString(p.Table)
		sb.WriteByte('.')
		sb.WriteString(p.Attr)
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(p.Lo, 10))
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatInt(p.Hi, 10))
	}
	sb.WriteByte(0)
	sb.WriteString("e")
	sb.WriteString(strconv.FormatUint(s.reg.Epoch(), 10))
	cat := s.reg.Catalog()
	for _, name := range q.Expr.Tables() {
		t, err := cat.Table(name)
		if err != nil {
			return "", err
		}
		sb.WriteByte(0)
		sb.WriteString(name)
		sb.WriteByte('@')
		sb.WriteString(strconv.FormatUint(t.Generation(), 10))
	}
	return sb.String(), nil
}

// normalize returns the query with its predicates in canonical (sorted)
// order, so permutations of one conjunction share a cache entry and the
// selectivity product multiplies in one deterministic order — float
// multiplication is not associative-commutative in rounding, so this is part
// of the bit-identity guarantee, not just a cache-sharing optimization.
func normalize(q cardest.SPJQuery) cardest.SPJQuery {
	if len(q.Preds) < 2 {
		return q
	}
	preds := append([]cardest.Predicate(nil), q.Preds...)
	sort.Slice(preds, func(i, j int) bool {
		a, b := preds[i], preds[j]
		if a.Table != b.Table {
			return a.Table < b.Table
		}
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return a.Hi < b.Hi
	})
	return cardest.SPJQuery{Expr: q.Expr, Preds: preds}
}

// Stats is a point-in-time view of the serving layer for monitoring.
type Stats struct {
	// Hits counts result-cache hits; PlanHits counts result misses answered
	// by executing a cached plan; Misses counts cold estimations. HitRate is
	// (Hits + PlanHits) over all answered requests — the fraction that
	// skipped SIT matching.
	Hits     int64   `json:"hits"`
	PlanHits int64   `json:"plan_hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hit_rate"`
	// Entries / PlanEntries are the resident result and plan counts;
	// PlanEvictions counts plans removed by stale pins or LRU pressure.
	Entries       int   `json:"entries"`
	PlanEntries   int   `json:"plan_entries"`
	PlanEvictions int64 `json:"plan_evictions"`
	// Sheds counts cold requests rejected with ErrOverloaded; Queued is the
	// current cold-queue depth the shed decision reads.
	Sheds    int64             `json:"sheds"`
	Queued   int64             `json:"queued"`
	Registry sit.RegistryStats `json:"registry"`
}

// Stats returns serving counters plus the registry's.
func (s *Service) Stats() Stats {
	st := Stats{
		Hits:     s.hits.Load(),
		PlanHits: s.planHits.Load(),
		Misses:   s.misses.Load(),
		Sheds:    s.sheds.Load(),
		Queued:   s.queued.Load(),
		Registry: s.reg.Stats(),
	}
	if total := st.Hits + st.PlanHits + st.Misses; total > 0 {
		st.HitRate = float64(st.Hits+st.PlanHits) / float64(total)
	}
	if s.cache != nil {
		st.Entries = s.cache.len()
	}
	if s.plans != nil {
		st.PlanEntries = s.plans.len()
		st.PlanEvictions = s.plans.evicted()
	}
	return st
}
