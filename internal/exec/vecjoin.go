package exec

import (
	"errors"
	"fmt"
	"sync"

	"github.com/sitstats/sits/internal/mem"
)

// VecHashJoin is the vectorized equi-join: it drains the left (build) input
// batch-wise into a joinTable — flat arena, open-addressing slots, build
// partitioned by hash across workers — and streams the right (probe) input,
// emitting concatenated left-row ++ right-row matches as column batches.
// Matches are emitted per probe row in build-input order, so the output row
// sequence equals the row-at-a-time HashJoin's at every parallelism level.
type VecHashJoin struct {
	left, right BatchOperator
	conds       []JoinCond
	lIdx, rIdx  []int
	cols        []string
	parallelism int
	size        int

	built     bool
	buildOnce sync.Once
	jt        *joinTable

	// Memory governance. gov/grant are nil for un-budgeted joins; buildBytes
	// tracks the arena's reservation, grace is non-nil once the build side
	// overflowed the grant and the join switched to grace partitioning.
	gov        *mem.Governor
	grant      *mem.Grant
	buildBytes int64
	grace      *graceJoin

	// Probe state, persisted across NextBatch calls so a long match chain can
	// span several output batches.
	rb        *Batch  // current right batch
	rpos      int     // logical position within rb
	rrow      int     // physical row of the in-flight probe
	chain     int32   // next chain row to emit (1-based, 0 = none)
	probeVals []int64 // key tuple of the in-flight probe row

	out  Batch
	bufs [][]int64
}

// NewVecHashJoin joins left and right on the conjunction of conds, building
// the hash table with up to `parallelism` workers (0 = GOMAXPROCS, 1 =
// serial). The join result is identical at every parallelism level. Output
// batches are sized adaptively from the join's output width.
func NewVecHashJoin(left, right BatchOperator, parallelism int, conds ...JoinCond) (*VecHashJoin, error) {
	return NewVecHashJoinSize(left, right, parallelism, 0, conds...)
}

// NewVecHashJoinSize is NewVecHashJoin with an explicit output batch size
// (0 = adaptive from the output column count).
func NewVecHashJoinSize(left, right BatchOperator, parallelism, batchSize int, conds ...JoinCond) (*VecHashJoin, error) {
	if len(conds) == 0 {
		return nil, fmt.Errorf("exec: hash join needs at least one condition")
	}
	j := &VecHashJoin{
		left:        left,
		right:       right,
		conds:       conds,
		parallelism: parallelism,
	}
	for _, c := range conds {
		li, err := columnIndex(left.Columns(), c.LeftCol)
		if err != nil {
			return nil, err
		}
		ri, err := columnIndex(right.Columns(), c.RightCol)
		if err != nil {
			return nil, err
		}
		j.lIdx = append(j.lIdx, li)
		j.rIdx = append(j.rIdx, ri)
	}
	j.cols = append(append([]string(nil), left.Columns()...), right.Columns()...)
	if batchSize <= 0 {
		batchSize = AdaptiveBatchSize(len(j.cols))
	}
	j.size = batchSize
	j.probeVals = make([]int64, len(conds))
	j.bufs = make([][]int64, len(j.cols))
	for i := range j.bufs {
		j.bufs[i] = make([]int64, 0, j.size)
	}
	j.out.Cols = make([][]int64, len(j.cols))
	return j, nil
}

// NewVecHashJoinMem is NewVecHashJoinSize with the build side budgeted
// through gov: when the arena exceeds the operator's grant, the join spills
// into grace hash partitioning (see gracejoin.go) and the output stays
// byte-identical to the in-memory join. A nil governor means unlimited.
func NewVecHashJoinMem(left, right BatchOperator, parallelism, batchSize int, gov *mem.Governor, conds ...JoinCond) (*VecHashJoin, error) {
	j, err := NewVecHashJoinSize(left, right, parallelism, batchSize, conds...)
	if err != nil {
		return nil, err
	}
	j.gov = gov
	if gov != nil {
		j.grant = gov.Grant("hashjoin-build")
	}
	return j, nil
}

// Columns implements BatchOperator.
func (j *VecHashJoin) Columns() []string { return j.cols }

func (j *VecHashJoin) build() {
	j.jt = newJoinTable(len(j.left.Columns()), j.lIdx)
	for {
		b, ok := j.left.NextBatch()
		if !ok {
			break
		}
		if j.grace != nil {
			j.grace.addBuildBatch(b)
			continue
		}
		need := int64(b.NumRows()) * int64(j.jt.stride) * 8
		if j.grant.TryReserve(need) {
			j.buildBytes += need
			j.jt.appendBatch(b)
			continue
		}
		j.startGrace()
		j.grace.addBuildBatch(b)
	}
	if j.grace == nil {
		j.jt.build(j.parallelism)
	}
	j.built = true
}

// ensureBuilt drains the build side exactly once; safe to call from several
// goroutines (the parallel Pipeline forces builds on the consumer before the
// first helper spawns, but probe clones may race a late ensureBuilt).
func (j *VecHashJoin) ensureBuilt() { j.buildOnce.Do(j.build) }

// errProbeClone marks a join whose probe side cannot be re-partitioned.
var errProbeClone = errors.New("exec: grace-mode join is not probe-cloneable")

// ProbeClone returns a join that shares this join's built hash table but
// probes an independent right input — the per-morsel stage the parallel
// Pipeline runs. The clone is probe-only: it never builds, reserves, or
// spills, and concurrent clones only read the shared table. Cloning fails
// once the build side has spilled into grace partitioning, because grace
// output order is a global property of a single probe stream; callers fall
// back to the serial chain then.
func (j *VecHashJoin) ProbeClone(right BatchOperator) (*VecHashJoin, error) {
	j.ensureBuilt()
	if j.grace != nil {
		return nil, errProbeClone
	}
	c := &VecHashJoin{
		left:        j.left,
		right:       right,
		conds:       j.conds,
		lIdx:        j.lIdx,
		rIdx:        j.rIdx,
		cols:        j.cols,
		parallelism: 1,
		size:        j.size,
		built:       true,
		jt:          j.jt,
	}
	c.buildOnce.Do(func() {}) // consume the Once: the shared table is final
	c.probeVals = make([]int64, len(j.conds))
	c.bufs = make([][]int64, len(j.cols))
	for i := range c.bufs {
		c.bufs[i] = make([]int64, 0, c.size)
	}
	c.out.Cols = make([][]int64, len(j.cols))
	return c, nil
}

// NextBatch implements BatchOperator. Returned batches hold up to the
// configured batch size and are reused across calls.
//
//statcheck:hot
func (j *VecHashJoin) NextBatch() (*Batch, bool) {
	j.ensureBuilt()
	if j.grace != nil {
		return j.grace.nextBatch()
	}
	nl := j.jt.stride
	for i := range j.bufs {
		j.bufs[i] = j.bufs[i][:0]
	}
	emitted := 0
	for {
		// Drain the in-flight chain first.
		for j.chain != 0 {
			r := j.chain
			j.chain = j.jt.chainNext(r)
			if !j.jt.single && !j.jt.matches(r, j.probeVals) {
				continue
			}
			row := j.jt.buildRow(r)
			for i := 0; i < nl; i++ {
				j.bufs[i] = append(j.bufs[i], row[i])
			}
			for i, c := range j.rb.Cols {
				j.bufs[nl+i] = append(j.bufs[nl+i], c[j.rrow])
			}
			emitted++
			if emitted >= j.size {
				return j.flush(), true
			}
		}
		// Advance to the next probe row, pulling right batches as needed.
		if j.rb == nil || j.rpos >= j.rb.NumRows() {
			rb, ok := j.right.NextBatch()
			if !ok {
				j.rb = nil
				if emitted > 0 {
					return j.flush(), true
				}
				return nil, false
			}
			j.rb, j.rpos = rb, 0
			continue
		}
		r := j.rpos
		if j.rb.Sel != nil {
			r = int(j.rb.Sel[j.rpos])
		}
		j.rpos++
		j.rrow = r
		for i, c := range j.rIdx {
			j.probeVals[i] = j.rb.Cols[c][r]
		}
		key, h := j.jt.probeKeyHash(j.probeVals)
		j.chain = j.jt.probeHead(key, h)
	}
}

func (j *VecHashJoin) flush() *Batch {
	copy(j.out.Cols, j.bufs)
	j.out.Sel = nil
	return &j.out
}

// Reset implements BatchOperator: the hash table (or, in grace mode, the
// spilled output runs) is retained and only the probe stream rewinds,
// matching HashJoin's contract.
func (j *VecHashJoin) Reset() {
	if j.grace != nil {
		j.grace.reset()
		return
	}
	j.right.Reset()
	j.rb, j.rpos, j.chain = nil, 0, 0
}
