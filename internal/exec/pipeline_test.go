package exec

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/mem"
)

// pipelineTable builds a single table wide enough to span many morsels at a
// small batch size.
func pipelineTable(t *testing.T, rows int) *data.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	tab := data.MustNewTable("P", "k", "v", "w")
	tab.Grow(rows)
	for i := 0; i < rows; i++ {
		if err := tab.AppendRow(rng.Int63n(1000), int64(i), rng.Int63n(50)); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// poolWidths is the property matrix of the determinism suite.
var poolWidths = []int{1, 2, 4, 8}

// TestPipelineFilterProjectBitIdentical drives a scan → filter → project
// chain through NewPipeline at every pool width and asserts the emitted row
// stream equals the serial chain's bit for bit.
func TestPipelineFilterProjectBitIdentical(t *testing.T) {
	tab := pipelineTable(t, 10_000)
	const batch = 128
	chain := func(src BatchOperator) (BatchOperator, error) {
		f, err := NewBatchRangeFilter(src, "P.k", 100, 800)
		if err != nil {
			return nil, err
		}
		return NewBatchProject(f, "P.v", "P.k")
	}
	serial := func() BatchOperator {
		op, err := chain(NewBatchScanSize(tab, batch))
		if err != nil {
			t.Fatal(err)
		}
		return op
	}
	ref := drainBatches(t, serial())
	if len(ref) == 0 {
		t.Fatal("reference chain is empty")
	}
	for _, w := range poolWidths {
		pool := NewPool(w)
		op := NewPipeline(pool, tab, w, batch, chain, serial(), nil)
		if got := drainBatches(t, op); !reflect.DeepEqual(got, ref) {
			t.Fatalf("width %d: pipeline diverges from serial (%d vs %d rows)", w, len(got), len(ref))
		}
		// Reset must replay the identical stream.
		op.Reset()
		if got := drainBatches(t, op); !reflect.DeepEqual(got, ref) {
			t.Fatalf("width %d: Reset replay diverges", w)
		}
		pool.Close()
	}
}

// TestPlanBatchPipelineMatrix is the end-to-end determinism property: a
// 3-way chain join planned at pool widths {1,2,4,8} × budgets {unlimited,
// quarter working set} must emit the serial plan's row stream bit for bit —
// including when the budget pushes a join build into grace mode, where the
// pipeline falls back to the serial chain.
func TestPlanBatchPipelineMatrix(t *testing.T) {
	cat, e := chainCatalog(4_000, 400)
	refOp, err := PlanBatch(cat, e, Options{Parallelism: 1, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	ref := drainBatches(t, refOp)
	if len(ref) == 0 {
		t.Fatal("reference plan is empty")
	}
	t2, err := cat.Table("T2")
	if err != nil {
		t.Fatal(err)
	}
	ws := int64(t2.NumRows()) * int64(t2.NumCols()) * 8
	for _, budget := range []int64{0, ws / 4} {
		for _, w := range poolWidths {
			var gov *mem.Governor
			if budget > 0 {
				gov = mem.NewGovernor(budget)
			}
			pool := NewPool(w)
			op, err := PlanBatch(cat, e, Options{Parallelism: w, BatchSize: 128, Gov: gov, Pool: pool})
			if err != nil {
				t.Fatal(err)
			}
			if got := drainBatches(t, op); !reflect.DeepEqual(got, ref) {
				t.Fatalf("budget=%d width=%d: plan diverges from serial (%d vs %d rows)",
					budget, w, len(got), len(ref))
			}
			op.Reset()
			if got := drainBatches(t, op); !reflect.DeepEqual(got, ref) {
				t.Fatalf("budget=%d width=%d: Reset replay diverges", budget, w)
			}
			pool.Close()
			if err := gov.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestPipelineGraceFallback forces the join build side past a tiny budget so
// it spills into grace partitioning, and asserts the pipeline detects the
// un-cloneable stage, falls back to the serial chain, and still emits the
// reference stream.
func TestPipelineGraceFallback(t *testing.T) {
	cat, e := chainCatalog(4_000, 400)
	refOp, err := PlanBatch(cat, e, Options{Parallelism: 1, BatchSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	ref := drainBatches(t, refOp)
	gov := mem.NewGovernor(1)
	op, err := PlanBatch(cat, e, Options{Parallelism: 4, BatchSize: 128, Gov: gov})
	if err != nil {
		t.Fatal(err)
	}
	pl, ok := op.(*Pipeline)
	if !ok {
		t.Fatalf("plan at width 4 should be a *Pipeline, got %T", op)
	}
	if got := drainBatches(t, op); !reflect.DeepEqual(got, ref) {
		t.Fatalf("grace fallback diverges from serial (%d vs %d rows)", len(got), len(ref))
	}
	if !pl.fallback {
		t.Fatal("1-byte budget must force the grace fallback")
	}
	if err := gov.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestVecHashJoinWidthBudgetMatrix extends the spill-equivalence property to
// the full width matrix: build parallelism {1,2,4,8} × budgets {unlimited,
// quarter working set} must reproduce the serial in-memory join bit for bit
// (the quarter budget pushes the build into grace partitioning).
func TestVecHashJoinWidthBudgetMatrix(t *testing.T) {
	l, r := spillJoinTables(t, 3000, 4000)
	cond := JoinCond{LeftCol: "L.k", RightCol: "R.k"}
	refJ, err := NewVecHashJoin(NewBatchScan(l), NewBatchScan(r), 1, cond)
	if err != nil {
		t.Fatal(err)
	}
	ref := drainBatches(t, refJ)
	for _, budget := range []int64{0, tableBytes(l) / 4} {
		for _, w := range poolWidths {
			gov := mem.NewGovernor(budget)
			j, err := NewVecHashJoinMem(NewBatchScan(l), NewBatchScan(r), w, 0, gov, cond)
			if err != nil {
				t.Fatal(err)
			}
			if got := drainBatches(t, j); !reflect.DeepEqual(got, ref) {
				t.Fatalf("budget=%d width=%d: join diverges", budget, w)
			}
			if budget > 0 && j.grace == nil {
				t.Fatalf("budget=%d width=%d: quarter budget did not spill", budget, w)
			}
			if err := gov.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestBatchSortParallelGatherMatchesReference exercises the pool-parallel
// gather path (input larger than one gather block) against the spilled merge
// path and the serial reference.
func TestBatchSortParallelGatherMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tab := data.MustNewTable("G", "k", "v")
	n := gatherBlockRows + 1234
	tab.Grow(n)
	for i := 0; i < n; i++ {
		if err := tab.AppendRow(rng.Int63n(5000), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(gov *mem.Governor) *BatchSort {
		s, err := NewBatchSortMem(NewBatchScan(tab), "G.k", 0, gov, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := drainBatches(t, mk(nil)) // in-memory path: pool-parallel gather
	for i := 1; i < len(ref); i++ {
		if ref[i][0] < ref[i-1][0] {
			t.Fatalf("gather output not sorted at %d", i)
		}
		if ref[i][0] == ref[i-1][0] && ref[i][1] < ref[i-1][1] {
			t.Fatalf("gather output not stable at %d", i)
		}
	}
	ws := int64(n) * 2 * 8
	gov := mem.NewGovernor(ws / 4)
	if got := drainBatches(t, mk(gov)); !reflect.DeepEqual(got, ref) {
		t.Fatal("spilled sort diverges from parallel-gather sort")
	}
	if err := gov.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchScanRange: the morsel source must cover exactly [lo, hi) and
// Reset must rewind to lo, not 0.
func TestBatchScanRange(t *testing.T) {
	tab := pipelineTable(t, 1000)
	s := NewBatchScanRange(tab, 300, 700, 64)
	rows := drainBatches(t, s)
	if len(rows) != 400 {
		t.Fatalf("range scan returned %d rows, want 400", len(rows))
	}
	if rows[0][1] != 300 || rows[399][1] != 699 {
		t.Fatalf("range scan bounds wrong: first v=%d last v=%d", rows[0][1], rows[399][1])
	}
	if s.wholeTable() {
		t.Fatal("partial scan must not report wholeTable")
	}
	s.Reset()
	if again := drainBatches(t, s); !reflect.DeepEqual(again, rows) {
		t.Fatal("Reset did not rewind to the range start")
	}
	if !NewBatchScanRange(tab, 0, tab.NumRows(), 64).wholeTable() {
		t.Fatal("full-range scan must report wholeTable")
	}
}
