// Package exec is a small Volcano-style query executor over the in-memory
// column store. The paper's evaluation needs it twice: to materialize the
// generating query of a SIT so the "actual" attribute distribution is known
// (the evaluation metric of Section 5.1 compares estimated against actual
// cardinalities of 1,000 range queries), and as the reference implementation
// SweepExact must agree with.
//
// Operators expose qualified column names ("T.a") and produce rows as int64
// slices. The multi-way join materializer executes arbitrary connected
// equi-join expressions with hash joins.
package exec

import (
	"fmt"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/mem"
)

// Operator is a pull-based row iterator. Rows returned by Next may be reused
// by subsequent calls; callers that retain rows must copy them.
type Operator interface {
	// Columns returns the qualified output column names.
	Columns() []string
	// Next returns the next row, or ok=false when exhausted.
	Next() (row []int64, ok bool)
	// Reset rewinds the operator so it can be consumed again.
	Reset()
}

func columnIndex(cols []string, name string) (int, error) {
	for i, c := range cols {
		if c == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("exec: no column %q in %v", name, cols)
}

// TableScan reads every row of a table, exposing columns qualified with the
// table's name ("R.x").
type TableScan struct {
	table *data.Table
	cols  []string
	names []string
	pos   int
	row   []int64
	store [][]int64
}

// NewTableScan creates a scan over all columns of the table.
func NewTableScan(t *data.Table) *TableScan {
	names := t.ColumnNames()
	s := &TableScan{
		table: t,
		cols:  make([]string, len(names)),
		names: names,
		row:   make([]int64, len(names)),
		store: make([][]int64, len(names)),
	}
	for i, n := range names {
		s.cols[i] = t.Name() + "." + n
		s.store[i] = t.MustColumn(n)
	}
	return s
}

// Columns implements Operator.
func (s *TableScan) Columns() []string { return s.cols }

// Next implements Operator.
func (s *TableScan) Next() ([]int64, bool) {
	if s.pos >= s.table.NumRows() {
		return nil, false
	}
	for i := range s.store {
		s.row[i] = s.store[i][s.pos]
	}
	s.pos++
	return s.row, true
}

// Reset implements Operator.
func (s *TableScan) Reset() { s.pos = 0 }

// Filter passes through rows satisfying a predicate.
type Filter struct {
	in   Operator
	pred func(row []int64) bool
}

// NewFilter wraps in with an arbitrary row predicate.
func NewFilter(in Operator, pred func(row []int64) bool) *Filter {
	return &Filter{in: in, pred: pred}
}

// NewRangeFilter filters rows to lo <= row[col] <= hi.
func NewRangeFilter(in Operator, col string, lo, hi int64) (*Filter, error) {
	i, err := columnIndex(in.Columns(), col)
	if err != nil {
		return nil, err
	}
	return NewFilter(in, func(row []int64) bool { return row[i] >= lo && row[i] <= hi }), nil
}

// Columns implements Operator.
func (f *Filter) Columns() []string { return f.in.Columns() }

// Next implements Operator.
func (f *Filter) Next() ([]int64, bool) {
	for {
		row, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(row) {
			return row, true
		}
	}
}

// Reset implements Operator.
func (f *Filter) Reset() { f.in.Reset() }

// Project narrows the output to a subset of columns.
type Project struct {
	in   Operator
	idx  []int
	cols []string
	row  []int64
}

// NewProject projects in onto the named columns.
func NewProject(in Operator, cols ...string) (*Project, error) {
	p := &Project{in: in, cols: append([]string(nil), cols...), row: make([]int64, len(cols))}
	for _, c := range cols {
		i, err := columnIndex(in.Columns(), c)
		if err != nil {
			return nil, err
		}
		p.idx = append(p.idx, i)
	}
	return p, nil
}

// Columns implements Operator.
func (p *Project) Columns() []string { return p.cols }

// Next implements Operator.
func (p *Project) Next() ([]int64, bool) {
	row, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	for i, j := range p.idx {
		p.row[i] = row[j]
	}
	return p.row, true
}

// Reset implements Operator.
func (p *Project) Reset() { p.in.Reset() }

// JoinCond is one equality condition between a left and a right column.
type JoinCond struct {
	LeftCol, RightCol string
}

// HashJoin is an in-memory equi-join: it builds a hash table on the left
// input keyed by the join columns and streams the right input, emitting the
// concatenation left-row ++ right-row for every match. The build side lives
// in a flat arena behind an open-addressing table (see joinTable): the build
// phase performs no per-row allocation, and single-condition joins key
// directly on the raw int64 value.
type HashJoin struct {
	left, right Operator
	conds       []JoinCond
	lIdx, rIdx  []int
	cols        []string

	built     bool
	jt        *joinTable
	chain     int32   // next chain row to emit (1-based, 0 = none)
	probeVals []int64 // key tuple of the in-flight probe row
	current   []int64 // copy of the in-flight right row
	row       []int64
}

// NewHashJoin joins left and right on the conjunction of conds.
func NewHashJoin(left, right Operator, conds ...JoinCond) (*HashJoin, error) {
	if len(conds) == 0 {
		return nil, fmt.Errorf("exec: hash join needs at least one condition")
	}
	j := &HashJoin{left: left, right: right, conds: conds}
	for _, c := range conds {
		li, err := columnIndex(left.Columns(), c.LeftCol)
		if err != nil {
			return nil, err
		}
		ri, err := columnIndex(right.Columns(), c.RightCol)
		if err != nil {
			return nil, err
		}
		j.lIdx = append(j.lIdx, li)
		j.rIdx = append(j.rIdx, ri)
	}
	j.cols = append(append([]string(nil), left.Columns()...), right.Columns()...)
	j.row = make([]int64, len(j.cols))
	j.probeVals = make([]int64, len(conds))
	j.current = make([]int64, len(right.Columns()))
	return j, nil
}

func (j *HashJoin) build() {
	j.jt = newJoinTable(len(j.left.Columns()), j.lIdx)
	for {
		row, ok := j.left.Next()
		if !ok {
			break
		}
		j.jt.appendRow(row)
	}
	j.jt.build(1)
	j.built = true
}

// Columns implements Operator.
func (j *HashJoin) Columns() []string { return j.cols }

// Next implements Operator.
func (j *HashJoin) Next() ([]int64, bool) {
	if !j.built {
		j.build()
	}
	for {
		for j.chain != 0 {
			r := j.chain
			j.chain = j.jt.chainNext(r)
			if !j.jt.single && !j.jt.matches(r, j.probeVals) {
				continue
			}
			copy(j.row, j.jt.buildRow(r))
			copy(j.row[j.jt.stride:], j.current)
			return j.row, true
		}
		r, ok := j.right.Next()
		if !ok {
			return nil, false
		}
		copy(j.current, r)
		for i, c := range j.rIdx {
			j.probeVals[i] = r[c]
		}
		key, h := j.jt.probeKeyHash(j.probeVals)
		j.chain = j.jt.probeHead(key, h)
	}
}

// Reset implements Operator.
func (j *HashJoin) Reset() {
	j.right.Reset()
	j.chain = 0
	// The hash table is retained; only the probe side rewinds.
}

// NestedLoopJoin is the brute-force reference join used in tests.
type NestedLoopJoin struct {
	left, right  Operator
	conds        []JoinCond
	lIdx, rIdx   []int
	cols         []string
	lRows        [][]int64
	loaded       bool
	li           int
	currentRight []int64
	row          []int64
}

// NewNestedLoopJoin joins left and right on the conjunction of conds.
func NewNestedLoopJoin(left, right Operator, conds ...JoinCond) (*NestedLoopJoin, error) {
	if len(conds) == 0 {
		return nil, fmt.Errorf("exec: nested loop join needs at least one condition")
	}
	j := &NestedLoopJoin{left: left, right: right, conds: conds}
	for _, c := range conds {
		li, err := columnIndex(left.Columns(), c.LeftCol)
		if err != nil {
			return nil, err
		}
		ri, err := columnIndex(right.Columns(), c.RightCol)
		if err != nil {
			return nil, err
		}
		j.lIdx = append(j.lIdx, li)
		j.rIdx = append(j.rIdx, ri)
	}
	j.cols = append(append([]string(nil), left.Columns()...), right.Columns()...)
	j.row = make([]int64, len(j.cols))
	return j, nil
}

// Columns implements Operator.
func (j *NestedLoopJoin) Columns() []string { return j.cols }

// Next implements Operator.
func (j *NestedLoopJoin) Next() ([]int64, bool) {
	if !j.loaded {
		for {
			row, ok := j.left.Next()
			if !ok {
				break
			}
			cp := make([]int64, len(row))
			copy(cp, row)
			j.lRows = append(j.lRows, cp)
		}
		j.loaded = true
	}
	for {
		if j.li == 0 {
			if _, ok := j.peekRight(); !ok {
				return nil, false
			}
		}
		r := j.currentRight
		for j.li < len(j.lRows) {
			l := j.lRows[j.li]
			j.li++
			match := true
			for c := range j.lIdx {
				if l[j.lIdx[c]] != r[j.rIdx[c]] {
					match = false
					break
				}
			}
			if match {
				copy(j.row, l)
				copy(j.row[len(l):], r)
				return j.row, true
			}
		}
		j.li = 0
		j.currentRight = nil
	}
}

// peekRight returns the in-flight probe row, pulling the next right row when
// none is cached.
func (j *NestedLoopJoin) peekRight() ([]int64, bool) {
	if j.currentRight != nil {
		return j.currentRight, true
	}
	r, ok := j.right.Next()
	if !ok {
		return nil, false
	}
	cp := make([]int64, len(r))
	copy(cp, r)
	j.currentRight = cp
	return cp, true
}

// Reset implements Operator.
func (j *NestedLoopJoin) Reset() {
	j.right.Reset()
	j.li = 0
	j.currentRight = nil
}

// Sort materializes and sorts its input by the given column ascending. It is
// a row view over BatchSort: the sort itself argsorts column vectors (no
// row-major intermediate), and the row interface exists only for callers that
// still consume rows.
type Sort struct {
	*Rows
}

// NewSort sorts in by col ascending.
func NewSort(in Operator, col string) (*Sort, error) {
	return NewSortMem(in, col, nil, nil)
}

// NewSortMem is NewSort with a memory governor (the sort spills sorted runs
// and k-way merges them when its buffer exceeds the budget; nil = unlimited)
// and an optional sorted-run cache. The row stream is identical either way.
func NewSortMem(in Operator, col string, gov *mem.Governor, cache *SortCache) (*Sort, error) {
	bs, err := NewBatchSortMem(batchify(in), col, 0, gov, cache)
	if err != nil {
		return nil, err
	}
	return &Sort{Rows: NewRows(bs)}, nil
}

// NewHashJoinMem is a budget-aware row hash join: a Rows view over the
// grace-capable VecHashJoin, which emits the identical row stream as HashJoin
// at any budget (nil governor = unlimited, never spills).
func NewHashJoinMem(left, right Operator, gov *mem.Governor, conds ...JoinCond) (Operator, error) {
	j, err := NewVecHashJoinMem(batchify(left), batchify(right), 1, 0, gov, conds...)
	if err != nil {
		return nil, err
	}
	return NewRows(j), nil
}

// MergeJoin equi-joins two inputs sorted on their single join columns. It is
// a row view over BatchMergeJoin, which merges the two sorted streams batch
// at a time with run detection for duplicate keys.
type MergeJoin struct {
	*Rows
}

// NewMergeJoin joins two inputs that are sorted ascending on leftCol and
// rightCol respectively.
func NewMergeJoin(left, right Operator, leftCol, rightCol string) (*MergeJoin, error) {
	bj, err := NewBatchMergeJoin(batchify(left), batchify(right), leftCol, rightCol)
	if err != nil {
		return nil, err
	}
	return &MergeJoin{Rows: NewRows(bj)}, nil
}
