package exec

// This file is the plan-close protocol. Operator trees reserve governed
// memory (hash-join arenas, sort buffers, the pipeline's reorder window) and
// create spill runs as they execute, and historically nothing released those
// at end of stream: the Builder owned its Governor outright, so tearing the
// governor down reclaimed everything wholesale. A governor shared across
// concurrent builders (Config.Governor) outlives any one plan, so a drained
// plan that keeps its reservations leaks budget forever. ClosePlan walks the
// tree and returns every grant and spill run a plan still holds.

// PlanCloser is implemented by operators that hold governed resources or
// wrap children that might. ClosePlan releases this operator's reservations
// and spill runs and recursively closes its inputs.
type PlanCloser interface{ ClosePlan() }

// ClosePlan releases the governed memory reservations and spill runs held
// anywhere in an operator tree, recursing through wrapper operators. It is
// safe on any operator (those without governed state are no-ops) and on
// partially-drained plans. The tree must not be used after ClosePlan —
// retained results (materialized tables, drained values) are unaffected.
func ClosePlan(op any) {
	if c, ok := op.(PlanCloser); ok {
		c.ClosePlan()
	}
}

// ClosePlan releases the hash-join build arena's reservation and, when the
// join spilled, its grace-mode output runs, then closes both inputs. Probe
// clones (ProbeClone) share the original's hash table and hold no grant of
// their own; closing the original covers them.
func (j *VecHashJoin) ClosePlan() {
	if j.grace != nil {
		j.grace.close()
		j.grace = nil
	}
	j.jt = nil
	j.grant.Close()
	ClosePlan(j.left)
	ClosePlan(j.right)
}

// close abandons the grace join's spill state: open merge cursors, any
// partition runs still being written (a partially-drained plan), and the
// retained output runs that back Reset replays.
func (g *graceJoin) close() {
	for _, c := range g.cursors {
		if !c.done {
			if err := c.rd.Close(); err != nil {
				spillFail("close output run", err)
			}
		}
	}
	g.cursors, g.lt = nil, nil
	for _, w := range g.buildW {
		g.abandon(w)
	}
	for _, w := range g.probeW {
		g.abandon(w)
	}
	g.buildW, g.probeW = nil, nil
	g.removeRuns(g.outRuns...)
	g.outRuns = nil
}

// abandon finalizes a half-written partition run and removes it.
func (g *graceJoin) abandon(w *spillRun) {
	if w == nil {
		return
	}
	g.removeRuns(w.finish())
}

// ClosePlan releases the sort's buffer/permutation/sorted-copy reservations
// and removes its spilled runs, then closes the input. Outstanding async
// spill tasks are driven to completion first so no task writes to a removed
// store entry.
func (s *BatchSort) ClosePlan() {
	s.waitSpills()
	for _, c := range s.cursors {
		if !c.done {
			if err := c.rd.Close(); err != nil {
				spillFail("close sorted run", err)
			}
		}
	}
	s.cursors, s.lt = nil, nil
	for _, r := range s.runs {
		if r == nil {
			continue
		}
		if err := r.Remove(); err != nil {
			spillFail("remove sorted run", err)
		}
	}
	s.runs = nil
	s.cols, s.bufCols, s.perm = nil, nil, nil
	s.sorted = true // a closed sort must not re-drain its closed input
	s.n, s.pos = 0, 0
	s.grant.Close()
	ClosePlan(s.in)
}

// ClosePlan quiesces the morsel helpers (releasing the reorder window's
// reservations via Reset), closes the pipeline's grant, and closes the
// serial chain — the original operators the per-morsel stages were cloned
// from, which hold the shared hash-table grants.
func (pl *Pipeline) ClosePlan() {
	pl.Reset()
	pl.grant.Close()
	ClosePlan(pl.serial)
}

// The remaining operators hold no governed state of their own; they only
// forward the close to their children.

func (f *BatchFilter) ClosePlan()  { ClosePlan(f.in) }
func (p *BatchProject) ClosePlan() { ClosePlan(p.in) }
func (r *Rows) ClosePlan()         { ClosePlan(r.in) }
func (b *Batches) ClosePlan()      { ClosePlan(b.in) }
func (f *Filter) ClosePlan()       { ClosePlan(f.in) }
func (p *Project) ClosePlan()      { ClosePlan(p.in) }
func (j *BatchMergeJoin) ClosePlan() {
	ClosePlan(j.left)
	ClosePlan(j.right)
}
