package exec

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolveParallelismHelper(t *testing.T) {
	if got := ResolveParallelism(3); got != 3 {
		t.Errorf("ResolveParallelism(3) = %d", got)
	}
	if got := ResolveParallelism(1); got != 1 {
		t.Errorf("ResolveParallelism(1) = %d", got)
	}
	for _, n := range []int{0, -1} {
		if got := ResolveParallelism(n); got != runtime.GOMAXPROCS(0) {
			t.Errorf("ResolveParallelism(%d) = %d, want GOMAXPROCS", n, got)
		}
	}
}

func TestForkJoinComputesEveryIndex(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, n := range []int{1, 2, 7, 100, 1000} {
		out := make([]int64, n)
		p.ForkJoin(n, func(i int) { out[i] = int64(i * i) })
		for i := range out {
			if out[i] != int64(i*i) {
				t.Fatalf("n=%d: out[%d] = %d, want %d", n, i, out[i], i*i)
			}
		}
	}
}

func TestForkJoinWidthOne(t *testing.T) {
	// width 1 must run inline on the caller without touching the pool.
	p := NewPool(4)
	defer p.Close()
	var calls int64
	p.ForkJoinWidth(50, 1, func(i int) { atomic.AddInt64(&calls, 1) })
	if calls != 50 {
		t.Fatalf("calls = %d, want 50", calls)
	}
	if !p.Idle() {
		t.Fatal("pool not idle after inline fork-join")
	}
}

func TestForkJoinNested(t *testing.T) {
	// Nested fork-joins must complete even when the inner fan-out exceeds the
	// pool width: the forker always participates in its own group.
	p := NewPool(2)
	defer p.Close()
	outer := make([]int64, 8)
	p.ForkJoin(8, func(i int) {
		var inner int64
		p.ForkJoin(16, func(j int) { atomic.AddInt64(&inner, int64(j)) })
		outer[i] = inner
	})
	for i, v := range outer {
		if v != 120 {
			t.Fatalf("outer[%d] = %d, want 120", i, v)
		}
	}
}

func TestForkJoinPanicPropagates(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	p.ForkJoin(32, func(i int) {
		if i == 17 {
			panic("boom")
		}
	})
	t.Fatal("ForkJoin returned instead of panicking")
}

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	out := make([]int, 10)
	p.ForkJoin(10, func(i int) { out[i] = i + 1 })
	for i, v := range out {
		if v != i+1 {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	p.Submit(func() { out[0] = -1 })
	if out[0] != -1 {
		t.Fatal("nil-pool Submit did not run inline")
	}
	if p.Width() != 1 || !p.Idle() {
		t.Fatal("nil pool must report width 1 and idle")
	}
	p.Close() // must not panic
}

// TestPoolCloseDrainsAndStopsWorkers is the goroutine-leak check: Close must
// run every queued task and terminate every worker goroutine.
func TestPoolCloseDrainsAndStopsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(4)
	var ran int64
	for i := 0; i < 200; i++ {
		p.Submit(func() { atomic.AddInt64(&ran, 1) })
	}
	p.Close()
	if got := atomic.LoadInt64(&ran); got != 200 {
		t.Fatalf("Close drained %d of 200 tasks", got)
	}
	if !p.Idle() {
		t.Fatal("closed pool reports non-idle")
	}
	// Submissions after Close run inline.
	p.Submit(func() { atomic.AddInt64(&ran, 1) })
	if atomic.LoadInt64(&ran) != 201 {
		t.Fatal("post-Close Submit did not run inline")
	}
	// Workers exit asynchronously after wg.Wait observes them; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutine leak: %d before pool, %d after Close", before, now)
	}
}

func TestPoolIdleAfterWork(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var sum int64
	p.ForkJoin(64, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 64*63/2 {
		t.Fatalf("sum = %d", sum)
	}
	// ForkJoin's join point guarantees the fn calls finished; queued helper
	// task wrappers may still be draining, so poll Idle.
	deadline := time.Now().Add(5 * time.Second)
	for !p.Idle() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !p.Idle() {
		t.Fatal("pool did not drain to idle after fork-join")
	}
}

func TestDefaultPoolSingleton(t *testing.T) {
	a, b := Default(), Default()
	if a != b {
		t.Fatal("Default() must return one process-wide pool")
	}
	if a.Width() != runtime.GOMAXPROCS(0) {
		t.Fatalf("Default width %d, want GOMAXPROCS %d", a.Width(), runtime.GOMAXPROCS(0))
	}
}
