package exec

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"github.com/sitstats/sits/internal/data"
	"github.com/sitstats/sits/internal/query"
)

func makeTable(t *testing.T, name string, cols []string, rows [][]int64) *data.Table {
	t.Helper()
	tab := data.MustNewTable(name, cols...)
	for _, r := range rows {
		if err := tab.AppendRow(r...); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func drain(t *testing.T, op Operator) [][]int64 {
	t.Helper()
	var out [][]int64
	for {
		row, ok := op.Next()
		if !ok {
			return out
		}
		cp := make([]int64, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
}

func sortRows(rows [][]int64) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
}

func TestTableScan(t *testing.T) {
	tab := makeTable(t, "R", []string{"x", "a"}, [][]int64{{1, 10}, {2, 20}})
	s := NewTableScan(tab)
	if !reflect.DeepEqual(s.Columns(), []string{"R.x", "R.a"}) {
		t.Errorf("columns = %v", s.Columns())
	}
	rows := drain(t, s)
	if !reflect.DeepEqual(rows, [][]int64{{1, 10}, {2, 20}}) {
		t.Errorf("rows = %v", rows)
	}
	s.Reset()
	if got := drain(t, s); len(got) != 2 {
		t.Errorf("after Reset: %v", got)
	}
}

func TestFilterAndProject(t *testing.T) {
	tab := makeTable(t, "R", []string{"x", "a"}, [][]int64{{1, 10}, {2, 20}, {3, 30}})
	f, err := NewRangeFilter(NewTableScan(tab), "R.a", 15, 25)
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, f)
	if !reflect.DeepEqual(rows, [][]int64{{2, 20}}) {
		t.Errorf("filtered = %v", rows)
	}
	if _, err := NewRangeFilter(NewTableScan(tab), "R.zz", 0, 1); err == nil {
		t.Error("bad column: want error")
	}

	p, err := NewProject(NewTableScan(tab), "R.a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p.Columns(), []string{"R.a"}) {
		t.Errorf("project columns = %v", p.Columns())
	}
	rows = drain(t, p)
	if !reflect.DeepEqual(rows, [][]int64{{10}, {20}, {30}}) {
		t.Errorf("projected = %v", rows)
	}
	if _, err := NewProject(NewTableScan(tab), "bogus"); err == nil {
		t.Error("bad project column: want error")
	}
}

func TestHashJoinSmall(t *testing.T) {
	r := makeTable(t, "R", []string{"x"}, [][]int64{{1}, {2}, {2}, {5}})
	s := makeTable(t, "S", []string{"y", "a"}, [][]int64{{2, 100}, {3, 200}, {2, 300}, {1, 400}})
	j, err := NewHashJoin(NewTableScan(r), NewTableScan(s), JoinCond{LeftCol: "R.x", RightCol: "S.y"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(j.Columns(), []string{"R.x", "S.y", "S.a"}) {
		t.Errorf("columns = %v", j.Columns())
	}
	rows := drain(t, j)
	sortRows(rows)
	want := [][]int64{
		{1, 1, 400},
		{2, 2, 100}, {2, 2, 100},
		{2, 2, 300}, {2, 2, 300},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("join = %v, want %v", rows, want)
	}
	// Reset re-probes with the retained build side.
	j.Reset()
	if got := drain(t, j); len(got) != 5 {
		t.Errorf("after Reset: %d rows", len(got))
	}
	if _, err := NewHashJoin(NewTableScan(r), NewTableScan(s)); err == nil {
		t.Error("no conditions: want error")
	}
	if _, err := NewHashJoin(NewTableScan(r), NewTableScan(s), JoinCond{LeftCol: "R.q", RightCol: "S.y"}); err == nil {
		t.Error("bad column: want error")
	}
}

// randomJoinInputs builds two random tables for join equivalence testing.
func randomJoinInputs(seed int64, n1, n2, domain int) (*data.Table, *data.Table) {
	rng := rand.New(rand.NewSource(seed))
	r := data.MustNewTable("R", "x", "p")
	for i := 0; i < n1; i++ {
		r.AppendRow(rng.Int63n(int64(domain)), rng.Int63n(100))
	}
	s := data.MustNewTable("S", "y", "q")
	for i := 0; i < n2; i++ {
		s.AppendRow(rng.Int63n(int64(domain)), rng.Int63n(100))
	}
	return r, s
}

// TestJoinEquivalence: hash join, merge join (over sorts) and nested loop
// join must produce identical result multisets.
func TestJoinEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r, s := randomJoinInputs(seed, 200, 150, 20)
		hj, err := NewHashJoin(NewTableScan(r), NewTableScan(s), JoinCond{LeftCol: "R.x", RightCol: "S.y"})
		if err != nil {
			t.Fatal(err)
		}
		nj, err := NewNestedLoopJoin(NewTableScan(r), NewTableScan(s), JoinCond{LeftCol: "R.x", RightCol: "S.y"})
		if err != nil {
			t.Fatal(err)
		}
		ls, err := NewSort(NewTableScan(r), "R.x")
		if err != nil {
			t.Fatal(err)
		}
		rs, err := NewSort(NewTableScan(s), "S.y")
		if err != nil {
			t.Fatal(err)
		}
		mj, err := NewMergeJoin(ls, rs, "R.x", "S.y")
		if err != nil {
			t.Fatal(err)
		}
		h, n, m := drain(t, hj), drain(t, nj), drain(t, mj)
		sortRows(h)
		sortRows(n)
		sortRows(m)
		if !reflect.DeepEqual(h, n) {
			t.Fatalf("seed %d: hash join != nested loop (%d vs %d rows)", seed, len(h), len(n))
		}
		if !reflect.DeepEqual(h, m) {
			t.Fatalf("seed %d: hash join != merge join (%d vs %d rows)", seed, len(h), len(m))
		}
	}
}

// Property: all three joins agree on arbitrary small inputs.
func TestJoinEquivalenceQuick(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		r := data.MustNewTable("R", "x")
		for _, v := range xs {
			r.AppendRow(int64(v % 8))
		}
		s := data.MustNewTable("S", "y")
		for _, v := range ys {
			s.AppendRow(int64(v % 8))
		}
		hj, err := NewHashJoin(NewTableScan(r), NewTableScan(s), JoinCond{LeftCol: "R.x", RightCol: "S.y"})
		if err != nil {
			return false
		}
		nj, err := NewNestedLoopJoin(NewTableScan(r), NewTableScan(s), JoinCond{LeftCol: "R.x", RightCol: "S.y"})
		if err != nil {
			return false
		}
		h := drainQuiet(hj)
		n := drainQuiet(nj)
		sortRows(h)
		sortRows(n)
		return reflect.DeepEqual(h, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func drainQuiet(op Operator) [][]int64 {
	var out [][]int64
	for {
		row, ok := op.Next()
		if !ok {
			return out
		}
		cp := make([]int64, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
}

func TestMergeJoinDuplicatesBothSides(t *testing.T) {
	r := makeTable(t, "R", []string{"x"}, [][]int64{{1}, {1}, {2}})
	s := makeTable(t, "S", []string{"y"}, [][]int64{{1}, {1}, {1}, {2}})
	ls, _ := NewSort(NewTableScan(r), "R.x")
	rs, _ := NewSort(NewTableScan(s), "S.y")
	mj, err := NewMergeJoin(ls, rs, "R.x", "S.y")
	if err != nil {
		t.Fatal(err)
	}
	rows := drain(t, mj)
	if len(rows) != 2*3+1 {
		t.Errorf("merge join rows = %d, want 7", len(rows))
	}
}

func TestPlanAndMaterializeChain(t *testing.T) {
	cat := data.NewCatalog()
	cat.MustAdd(makeTable(t, "R", []string{"x"}, [][]int64{{1}, {2}}))
	cat.MustAdd(makeTable(t, "S", []string{"y", "z", "a"}, [][]int64{{1, 7, 10}, {2, 8, 20}, {2, 7, 30}}))
	cat.MustAdd(makeTable(t, "T", []string{"w", "b"}, [][]int64{{7, 100}, {7, 200}, {8, 300}}))
	e, err := query.Chain([]string{"R", "S", "T"}, []string{"x", "z"}, []string{"y", "w"})
	if err != nil {
		t.Fatal(err)
	}
	card, err := Cardinality(cat, e)
	if err != nil {
		t.Fatal(err)
	}
	// R(1)-S(1,7,10)-T(7,*): 2 rows; R(2)-S(2,8,20)-T(8,300): 1; R(2)-S(2,7,30)-T(7,*): 2.
	if card != 5 {
		t.Errorf("cardinality = %d, want 5", card)
	}
	vals, err := AttrValues(cat, e, "S", "a")
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	if !reflect.DeepEqual(vals, []int64{10, 10, 20, 30, 30}) {
		t.Errorf("S.a values = %v", vals)
	}
	n, err := RangeCardinality(cat, e, "S", "a", 15, 35)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("range cardinality = %d, want 3", n)
	}
	op, err := Plan(cat, e)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := Materialize(op, "RST")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 5 {
		t.Errorf("materialized rows = %d", tab.NumRows())
	}
	if !tab.HasColumn("S_a") {
		t.Errorf("materialized columns = %v", tab.ColumnNames())
	}
}

func TestPlanBaseTable(t *testing.T) {
	cat := data.NewCatalog()
	cat.MustAdd(makeTable(t, "R", []string{"x"}, [][]int64{{1}, {2}}))
	e, err := query.NewBaseExpr("R")
	if err != nil {
		t.Fatal(err)
	}
	card, err := Cardinality(cat, e)
	if err != nil {
		t.Fatal(err)
	}
	if card != 2 {
		t.Errorf("cardinality = %d", card)
	}
}

func TestPlanMultiPredicate(t *testing.T) {
	cat := data.NewCatalog()
	cat.MustAdd(makeTable(t, "R", []string{"w", "y"}, [][]int64{{1, 5}, {1, 6}, {2, 5}}))
	cat.MustAdd(makeTable(t, "S", []string{"x", "z"}, [][]int64{{1, 5}, {1, 7}, {2, 5}}))
	e, err := query.NewExpr(
		query.JoinPred{LeftTable: "R", LeftAttr: "w", RightTable: "S", RightAttr: "x"},
		query.JoinPred{LeftTable: "R", LeftAttr: "y", RightTable: "S", RightAttr: "z"},
	)
	if err != nil {
		t.Fatal(err)
	}
	card, err := Cardinality(cat, e)
	if err != nil {
		t.Fatal(err)
	}
	// Matches: (1,5)-(1,5) and (2,5)-(2,5).
	if card != 2 {
		t.Errorf("multi-predicate cardinality = %d, want 2", card)
	}
}

func TestPlanErrors(t *testing.T) {
	cat := data.NewCatalog()
	cat.MustAdd(makeTable(t, "R", []string{"x"}, nil))
	e := query.MustNewExpr(query.JoinPred{LeftTable: "R", LeftAttr: "x", RightTable: "S", RightAttr: "y"})
	if _, err := Plan(cat, e); err == nil {
		t.Error("missing table S: want error")
	}
	if _, err := AttrValues(cat, e, "S", "a"); err == nil {
		t.Error("AttrValues with missing table: want error")
	}
}
