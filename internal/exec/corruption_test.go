package exec

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/sitstats/sits/internal/mem"
)

// Spilled state lives outside the process, so the engine must never trust it
// blindly: every run frame carries a checksum, and these tests prove that a
// disk that flips a bit or drops a tail turns into a loud spill panic on the
// re-read path — for the external sort and the grace join, in both the
// compressed (SRN2) and raw (SRN1) run formats — never into silently wrong
// rows.

// expectSpillPanic runs fn and asserts it panics with a message mentioning
// substr.
func expectSpillPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected a panic mentioning %q, got none", substr)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not mention %q", msg, substr)
		}
	}()
	fn()
}

// corruptRuns applies damage to every run file in the governor's spill
// directory and returns how many files it touched.
func corruptRuns(t *testing.T, gov *mem.Governor, damage func(path string, size int64)) int {
	t.Helper()
	store, err := gov.Runs()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(store.Dir())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		damage(filepath.Join(store.Dir(), e.Name()), info.Size())
		n++
	}
	return n
}

// flipByte flips one bit in the middle of the file, past the 8-byte header so
// the damage lands in a checksummed frame rather than the magic.
func flipByte(t *testing.T) func(path string, size int64) {
	return func(path string, size int64) {
		t.Helper()
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		off := size / 2
		if off < 8 {
			off = 8
		}
		var b [1]byte
		if _, err := f.ReadAt(b[:], off); err != nil {
			t.Fatal(err)
		}
		b[0] ^= 0x10
		if _, err := f.WriteAt(b[:], off); err != nil {
			t.Fatal(err)
		}
	}
}

// chopTail truncates the file mid-frame, dropping the last few bytes.
func chopTail(t *testing.T) func(path string, size int64) {
	return func(path string, size int64) {
		t.Helper()
		if err := os.Truncate(path, size-5); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExternalSortCorruptRunDetected(t *testing.T) {
	tab, _ := spillJoinTables(t, 4000, 1)
	for _, tc := range []struct {
		name     string
		compress bool
		damage   func(t *testing.T) func(string, int64)
		want     string
	}{
		{"srn2-bitflip", true, flipByte, "checksum"},
		{"srn2-truncated", true, chopTail, "truncated"},
		{"srn1-bitflip", false, flipByte, "checksum"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gov := mem.NewGovernor(1)
			gov.SetSpillCompression(tc.compress)
			s, err := NewBatchSortMem(NewBatchScan(tab), "L.k", 0, gov, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got := drainBatches(t, s); len(got) != tab.NumRows() {
				t.Fatalf("sort emitted %d of %d rows", len(got), tab.NumRows())
			}
			if n := corruptRuns(t, gov, tc.damage(t)); n == 0 {
				t.Fatal("no spilled runs on disk; the corruption is not exercised")
			}
			expectSpillPanic(t, tc.want, func() {
				s.Reset()
				for {
					if _, ok := s.NextBatch(); !ok {
						break
					}
				}
			})
			if err := gov.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestGraceJoinCorruptRunDetected(t *testing.T) {
	l, r := spillJoinTables(t, 3000, 4000)
	cond := JoinCond{LeftCol: "L.k", RightCol: "R.k"}
	for _, tc := range []struct {
		name   string
		damage func(t *testing.T) func(string, int64)
		want   string
	}{
		{"bitflip", flipByte, "checksum"},
		{"truncated", chopTail, "truncated"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gov := mem.NewGovernor(1)
			j, err := NewVecHashJoinMem(NewBatchScan(l), NewBatchScan(r), 2, 0, gov, cond)
			if err != nil {
				t.Fatal(err)
			}
			if got := drainBatches(t, j); len(got) == 0 {
				t.Fatal("join produced no rows; the test data is broken")
			}
			if j.grace == nil {
				t.Fatal("join never spilled; the corruption is not exercised")
			}
			// After completion only the retained output runs remain on disk —
			// exactly what Reset re-merges.
			if n := corruptRuns(t, gov, tc.damage(t)); n == 0 {
				t.Fatal("no spilled runs on disk; the corruption is not exercised")
			}
			expectSpillPanic(t, tc.want, func() {
				j.Reset()
				for {
					if _, ok := j.NextBatch(); !ok {
						break
					}
				}
			})
			if err := gov.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
