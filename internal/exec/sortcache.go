package exec

import (
	"sync"

	"github.com/sitstats/sits/internal/data"
)

// SortCache caches fully sorted column sets per (table, sort column),
// mirroring the builder's join-intermediate cache: repeated merge-join and
// SweepFull plans that sort the same base table on the same attribute skip
// the drain and argsort entirely and serve the cached columns. Entries
// record the table generation they were built against and are invalidated on
// lookup when the table has mutated since (Grow/AppendBatch/... bump the
// generation), so a stale sorted run can never be served.
//
// Only sorts that completed fully in memory are cached: a sort that spilled
// under its memory grant by definition did not fit the budget, and caching
// its merged result would hold the full working set in RAM behind the
// Governor's back.
type SortCache struct {
	mu      sync.Mutex
	entries map[sortCacheKey]*sortCacheEntry
	hits    int64
	misses  int64
}

type sortCacheKey struct {
	table *data.Table
	col   string // qualified sort column ("R.k")
}

type sortCacheEntry struct {
	gen  uint64
	cols [][]int64 // sorted columns, table declaration order
}

// NewSortCache creates an empty sorted-run cache.
func NewSortCache() *SortCache {
	return &SortCache{entries: map[sortCacheKey]*sortCacheEntry{}}
}

// lookup returns the cached sorted columns for (t, col) when present and
// built against generation gen — the generation the consulting scan captured
// when it bound its column slices, so a scan created before a mutation never
// sees columns sorted after it and vice versa. A mismatching entry is
// evicted and counts as a miss. Safe on a nil cache (always a miss).
func (c *SortCache) lookup(t *data.Table, col string, gen uint64) ([][]int64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := sortCacheKey{table: t, col: col}
	e, ok := c.entries[key]
	if ok && e.gen == gen {
		c.hits++
		return e.cols, true
	}
	if ok {
		delete(c.entries, key) // stale: the table mutated since the sort
	}
	c.misses++
	return nil, false
}

// store caches sorted columns built against generation gen. Safe on a nil
// cache (no-op). The cached slices are served to future sorts verbatim and
// must never be mutated.
func (c *SortCache) store(t *data.Table, col string, gen uint64, cols [][]int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[sortCacheKey{table: t, col: col}] = &sortCacheEntry{gen: gen, cols: cols}
}

// Stats returns the cache's lifetime hit and miss counts.
func (c *SortCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of live entries.
func (c *SortCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Clear drops every entry (stats are retained).
func (c *SortCache) Clear() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[sortCacheKey]*sortCacheEntry{}
}
