package exec

import (
	"encoding/binary"
	"reflect"
	"testing"

	"github.com/sitstats/sits/internal/data"
)

// hashSeedInv is the multiplicative inverse of hashSeed modulo 2^64
// (hashSeed is odd), computed by Newton iteration.
func hashSeedInv() uint64 {
	inv := uint64(hashSeed)
	for i := 0; i < 6; i++ {
		inv *= 2 - hashSeed*inv
	}
	return inv
}

// collidingTuple solves for a second tuple (b1, b2) with
// hashVals([a1, a2]) == hashVals([b1, b2]) given any b1 != a1. hashVals for a
// 2-tuple is mix64(mix64(2 ^ a1*seed) ^ a2*seed); mix64 is a bijection, so
// equality reduces to mix64(2^a1*s) ^ a2*s == mix64(2^b1*s) ^ b2*s, which is
// linear in b2*s and solvable exactly because s is invertible mod 2^64.
func collidingTuple(a1, a2, b1 int64) int64 {
	s := uint64(hashSeed)
	inner := func(v1 int64) uint64 { return mix64(2 ^ uint64(v1)*s) }
	d := inner(a1) ^ inner(b1)
	b2 := hashSeedInv() * (uint64(a2)*s ^ d)
	return int64(b2)
}

// TestHashValsCollisionConstruction sanity-checks the collision solver.
func TestHashValsCollisionConstruction(t *testing.T) {
	if hashSeed*hashSeedInv() != 1 {
		t.Fatal("hashSeedInv is not the inverse of hashSeed")
	}
	for _, c := range []struct{ a1, a2, b1 int64 }{
		{1, 2, 3}, {0, 0, 1}, {-5, 17, 9}, {1 << 40, -1, -(1 << 40)},
	} {
		b2 := collidingTuple(c.a1, c.a2, c.b1)
		ha := hashVals([]int64{c.a1, c.a2})
		hb := hashVals([]int64{c.b1, b2})
		if ha != hb {
			t.Fatalf("(%d,%d) vs (%d,%d): hashes %x != %x", c.a1, c.a2, c.b1, b2, ha, hb)
		}
		if c.a1 == c.b1 && c.a2 == b2 {
			t.Fatalf("solver returned the same tuple")
		}
	}
}

// TestJoinTableAdversarialCollisions builds a two-condition join whose build
// side is saturated with distinct key tuples sharing identical 64-bit slot
// keys. Every chain then mixes genuinely different tuples, so a probe that
// skipped the arena verification would emit cross-matches. The output must
// still equal the nested-loop reference exactly.
func TestJoinTableAdversarialCollisions(t *testing.T) {
	r := data.MustNewTable("R", "w", "y", "p")
	s := data.MustNewTable("S", "x", "z", "q")
	var pay int64
	addPair := func(a1, a2, b1 int64) {
		b2 := collidingTuple(a1, a2, b1)
		r.AppendRow(a1, a2, pay)
		r.AppendRow(b1, b2, pay+1)
		// Probe with both tuples of the colliding pair, plus a near-miss that
		// shares neither but reuses one component.
		s.AppendRow(a1, a2, pay+2)
		s.AppendRow(b1, b2, pay+3)
		s.AppendRow(a1, b2, pay+4)
		pay += 5
	}
	for i := int64(0); i < 200; i++ {
		addPair(i, -3*i+7, i+1000)
		addPair(-i, i<<33, i)
	}
	conds := []JoinCond{{LeftCol: "R.w", RightCol: "S.x"}, {LeftCol: "R.y", RightCol: "S.z"}}
	nj := mustNestedLoop(t, NewTableScan(r), NewTableScan(s), conds...)
	want := drain(t, nj)
	sortRows(want)
	if len(want) == 0 {
		t.Fatal("degenerate adversarial input: no true matches")
	}
	for _, p := range []int{1, 4} {
		vj, err := NewVecHashJoin(NewBatchScan(r), NewBatchScan(s), p, conds...)
		if err != nil {
			t.Fatal(err)
		}
		got := drainBatches(t, vj)
		sortRows(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("parallelism %d: %d rows, want %d — slot-key collisions broke verification", p, len(got), len(want))
		}
	}
	hj, err := NewHashJoin(NewTableScan(r), NewTableScan(s), conds...)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, hj)
	sortRows(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("row HashJoin: %d rows, want %d", len(got), len(want))
	}
}

// FuzzJoinTableMultiCond feeds arbitrary byte strings decoded as build/probe
// tuples through the two-condition vectorized hash join and cross-checks the
// result multiset against the nested-loop reference.
func FuzzJoinTableMultiCond(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	// A colliding pair, serialized, so the corpus starts on the hard case.
	seed := make([]byte, 0, 64)
	for _, v := range []int64{5, 9, 6, collidingTuple(5, 9, 6)} {
		seed = binary.LittleEndian.AppendUint64(seed, uint64(v))
	}
	f.Add(append(seed, seed...))
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Decode pairs of int64s; alternate tuples between build and probe.
		var vals []int64
		for i := 0; i+8 <= len(raw) && len(vals) < 400; i += 8 {
			v := int64(binary.LittleEndian.Uint64(raw[i:]))
			vals = append(vals, v, v%17) // second component collides often
		}
		r := data.MustNewTable("R", "w", "y", "p")
		s := data.MustNewTable("S", "x", "z", "q")
		for i := 0; i+1 < len(vals); i += 2 {
			if (i/2)%2 == 0 {
				r.AppendRow(vals[i], vals[i+1], int64(i))
			} else {
				s.AppendRow(vals[i], vals[i+1], int64(i))
			}
		}
		conds := []JoinCond{{LeftCol: "R.w", RightCol: "S.x"}, {LeftCol: "R.y", RightCol: "S.z"}}
		nj, err := NewNestedLoopJoin(NewTableScan(r), NewTableScan(s), conds...)
		if err != nil {
			t.Fatal(err)
		}
		want := drainQuiet(nj)
		sortRows(want)
		vj, err := NewVecHashJoin(NewBatchScan(r), NewBatchScan(s), 2, conds...)
		if err != nil {
			t.Fatal(err)
		}
		var got [][]int64
		for {
			b, ok := vj.NextBatch()
			if !ok {
				break
			}
			n := b.NumRows()
			for i := 0; i < n; i++ {
				row := make([]int64, len(b.Cols))
				phys := i
				if b.Sel != nil {
					phys = int(b.Sel[i])
				}
				for c := range b.Cols {
					row[c] = b.Cols[c][phys]
				}
				got = append(got, row)
			}
		}
		sortRows(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("VecHashJoin multiset != NestedLoopJoin (%d vs %d rows)", len(got), len(want))
		}
	})
}
